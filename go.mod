module conscale

go 1.22
