package conscale_test

import (
	"bytes"
	"strconv"
	"testing"

	"conscale"
)

// These tests exercise the public facade exactly as a downstream user
// would — no internal imports.

func TestPublicQuickstartFlow(t *testing.T) {
	c := conscale.NewCluster(conscale.DefaultClusterConfig())
	w := conscale.NewWarehouse(120 * conscale.Second)
	c.Eng.Every(conscale.Second, func() { c.CollectInto(w) })

	gen := conscale.NewGenerator(c.Eng, conscale.NewRand(1), conscale.GeneratorConfig{
		Trace:     conscale.NewConstantTrace(500, 30*conscale.Second),
		ThinkTime: 3,
	}, c.Submit)
	gen.Start()
	c.Eng.RunUntil(30 * conscale.Second)

	if gen.GoodputTotal() == 0 {
		t.Fatal("no requests completed through the public API")
	}
	if p99 := gen.TailLatency(99, 0); p99 <= 0 {
		t.Fatalf("p99 = %v", p99)
	}
	if len(w.Servers()) != 3 {
		t.Fatalf("warehouse servers = %v", w.Servers())
	}
}

func TestPublicScalingFramework(t *testing.T) {
	cfg := conscale.DefaultClusterConfig()
	cfg.PrepDelay = 5 * conscale.Second
	c := conscale.NewCluster(cfg)
	fw := conscale.NewFramework(c, conscale.DefaultScalingConfig(conscale.ModeEC2))
	fw.Start()

	gen := conscale.NewGenerator(c.Eng, conscale.NewRand(2), conscale.GeneratorConfig{
		Trace:     conscale.NewTrace(conscale.TraceSlowlyVarying, 2500, 120*conscale.Second),
		ThinkTime: 1,
	}, c.Submit)
	gen.Start()
	c.Eng.RunUntil(120 * conscale.Second)
	fw.Stop()

	if c.ReadyCount(conscale.TierApp) < 2 {
		t.Fatalf("framework never scaled: %d app VMs", c.ReadyCount(conscale.TierApp))
	}
	if len(fw.Events()) == 0 {
		t.Fatal("no events logged")
	}
}

func TestPublicSCTEstimator(t *testing.T) {
	est := conscale.NewSCTEstimator(conscale.DefaultSCTConfig())
	var samples []conscale.WindowSample
	for q := 1; q <= 40; q++ {
		tp := 1000.0
		if q < 10 {
			tp = 1000 * float64(q) / 10
		} else if q > 25 {
			tp = 1000 * (1 - 0.03*float64(q-25))
		}
		for i := 0; i < 4; i++ {
			samples = append(samples, conscale.WindowSample{
				Concurrency: float64(q),
				Throughput:  tp,
				RT:          float64(q) / tp,
				Completions: int(tp / 20),
			})
		}
	}
	e, ok := est.Estimate(samples)
	if !ok {
		t.Fatal("estimate failed")
	}
	if e.Optimal() < 7 || e.Optimal() > 13 {
		t.Fatalf("Optimal = %d, want ~10", e.Optimal())
	}
}

func TestPublicTraceNames(t *testing.T) {
	names := conscale.TraceNames()
	if len(names) != 6 {
		t.Fatalf("TraceNames = %v", names)
	}
	for _, n := range names {
		tr := conscale.NewTrace(n, 1000, 60*conscale.Second)
		if tr.Peak() <= 0 {
			t.Fatalf("trace %s has no load", n)
		}
	}
}

func TestPublicRubbosWorkload(t *testing.T) {
	w := conscale.NewRubbosWorkload(conscale.ReadWrite, 1)
	if len(w.Servlets) != 24 {
		t.Fatalf("servlets = %d, want 24", len(w.Servlets))
	}
	sv := w.Pick(conscale.NewRand(3))
	if sv.Name == "" || sv.Queries < 1 {
		t.Fatalf("bad servlet %+v", sv)
	}
}

func TestPublicMgmtAgent(t *testing.T) {
	store := conscale.NewMgmtStore()
	val := 60
	store.Register("app.threads",
		func() string { return strconv.Itoa(val) },
		func(raw string) error {
			n, err := strconv.Atoi(raw)
			if err != nil {
				return err
			}
			val = n
			return nil
		})
	agent, err := conscale.NewMgmtAgent("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	client, err := conscale.MgmtDial(agent.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Set("app.threads", "12"); err != nil {
		t.Fatal(err)
	}
	got, err := client.Get("app.threads")
	if err != nil || got != "12" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestPublicRunAndSweep(t *testing.T) {
	cfg := conscale.DefaultRunConfig(conscale.ModeConScale, conscale.TraceBigSpike)
	cfg.Duration = 120 * conscale.Second
	cfg.MaxUsers = 2000
	res := conscale.Run(cfg)
	if res.Goodput == 0 {
		t.Fatal("run produced nothing")
	}

	scfg := conscale.SweepConfig{Levels: []int{5, 10}, Measure: 2 * conscale.Second}
	sres := conscale.Sweep(scfg)
	if len(sres.Points) != 2 {
		t.Fatalf("sweep points = %d", len(sres.Points))
	}
}

func TestPublicTrainDCM(t *testing.T) {
	p := conscale.TrainDCM(1, conscale.DefaultClusterConfig())
	if p.AppThreads <= 0 || p.DBTotal <= 0 {
		t.Fatalf("profile %+v", p)
	}
}

func TestPublicScaleMode(t *testing.T) {
	cfg := conscale.DefaultScaleConfig(conscale.ModeConScale, 2000)
	cfg.Cells = 2
	cfg.Duration = 30 * conscale.Second
	cfg.WarmupSkip = 8 * conscale.Second
	res := conscale.RunScale(cfg)
	if res.Goodput == 0 || res.Events == 0 {
		t.Fatalf("scale run produced nothing: %+v", res)
	}
	var buf bytes.Buffer
	if err := conscale.WriteScaleReport(&buf, []conscale.ScaleRow{res.Row()}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("conscale-bench/7")) {
		t.Fatalf("report lacks schema: %s", buf.String())
	}
}

func TestPublicStriper(t *testing.T) {
	str := conscale.NewStriper(2, 5*conscale.Millisecond)
	var got []conscale.Time
	str.Shard(0).Send(1, 5*conscale.Millisecond, func() {
		got = append(got, str.Shard(1).Eng.Now())
	})
	str.RunUntil(20 * conscale.Millisecond)
	if len(got) != 1 || got[0] != 5*conscale.Millisecond {
		t.Fatalf("cross-shard delivery: %v", got)
	}
}
