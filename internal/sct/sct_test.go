package sct

import (
	"math"
	"testing"

	"conscale/internal/des"
	"conscale/internal/metrics"
	"conscale/internal/rng"
)

// synthSamples fabricates window tuples following the three-stage curve:
// TP rises linearly to plateau at qlower, holds to qupper, then declines.
// Concurrency visits sweep [1, qmax] with repeats and noise.
func synthSamples(qlower, qupper, qmax int, plateau float64, perBin int, seed uint64) []metrics.WindowSample {
	rnd := rng.New(seed)
	var out []metrics.WindowSample
	t := des.Time(0)
	for q := 1; q <= qmax; q++ {
		var tp float64
		switch {
		case q < qlower:
			tp = plateau * float64(q) / float64(qlower)
		case q <= qupper:
			tp = plateau
		default:
			tp = plateau * math.Max(0.15, 1-0.04*float64(q-qupper))
		}
		for i := 0; i < perBin; i++ {
			noisyTP := tp * (1 + 0.03*(rnd.Float64()-0.5))
			rt := float64(q) / noisyTP
			out = append(out, metrics.WindowSample{
				Start:       t,
				Concurrency: float64(q) + 0.3*(rnd.Float64()-0.5),
				Throughput:  noisyTP,
				RT:          rt,
				Completions: int(noisyTP/20) + 1,
			})
			t += 0.05
		}
	}
	return out
}

func TestEstimateRecoversRange(t *testing.T) {
	samples := synthSamples(10, 30, 60, 5000, 8, 1)
	est, ok := New(Config{}).Estimate(samples)
	if !ok {
		t.Fatal("estimate failed")
	}
	if est.Qlower < 8 || est.Qlower > 11 {
		t.Fatalf("Qlower = %d, want ~10", est.Qlower)
	}
	if est.Qupper < 28 || est.Qupper > 33 {
		t.Fatalf("Qupper = %d, want ~30", est.Qupper)
	}
	if math.Abs(est.PlateauTP-5000)/5000 > 0.05 {
		t.Fatalf("PlateauTP = %v, want ~5000", est.PlateauTP)
	}
	if est.Optimal() != est.Qlower {
		t.Fatalf("Optimal = %d, want Qlower %d", est.Optimal(), est.Qlower)
	}
}

func TestEstimateTracksShiftedCurve(t *testing.T) {
	// Same generator, different knee (the vertical-scaling scenario:
	// Qlower doubles with a second core).
	for _, knee := range []int{5, 10, 20} {
		samples := synthSamples(knee, knee*3, knee*6, 4000, 8, 2)
		est, ok := New(Config{}).Estimate(samples)
		if !ok {
			t.Fatalf("knee %d: estimate failed", knee)
		}
		if est.Qlower < knee-2 || est.Qlower > knee+2 {
			t.Fatalf("knee %d: Qlower = %d", knee, est.Qlower)
		}
	}
}

func TestEstimateRejectsTooFewSamples(t *testing.T) {
	samples := synthSamples(10, 30, 60, 5000, 8, 1)[:20]
	if _, ok := New(Config{}).Estimate(samples); ok {
		t.Fatal("estimate succeeded with too few samples")
	}
}

func TestEstimateRejectsLowDiversity(t *testing.T) {
	// Plenty of samples, but all at the same concurrency.
	var samples []metrics.WindowSample
	for i := 0; i < 200; i++ {
		samples = append(samples, metrics.WindowSample{
			Concurrency: 12, Throughput: 4000, RT: 0.003, Completions: 200,
		})
	}
	if _, ok := New(Config{}).Estimate(samples); ok {
		t.Fatal("estimate succeeded with one concurrency bin")
	}
}

func TestEstimateIgnoresIdleWindows(t *testing.T) {
	samples := synthSamples(10, 30, 60, 5000, 8, 3)
	idle := make([]metrics.WindowSample, 500)
	est1, ok1 := New(Config{}).Estimate(samples)
	est2, ok2 := New(Config{}).Estimate(append(idle, samples...))
	if !ok1 || !ok2 {
		t.Fatal("estimates failed")
	}
	if est1.Qlower != est2.Qlower || est1.Qupper != est2.Qupper {
		t.Fatalf("idle windows changed estimate: %+v vs %+v", est1, est2)
	}
}

func TestEstimateRangeOrdering(t *testing.T) {
	samples := synthSamples(15, 25, 80, 3000, 6, 7)
	est, ok := New(Config{}).Estimate(samples)
	if !ok {
		t.Fatal("estimate failed")
	}
	if est.Qlower > est.Qupper {
		t.Fatalf("Qlower %d > Qupper %d", est.Qlower, est.Qupper)
	}
	if est.Qlower < est.QminSeen || est.Qupper > est.QmaxSeen {
		t.Fatalf("range [%d,%d] outside observed [%d,%d]",
			est.Qlower, est.Qupper, est.QminSeen, est.QmaxSeen)
	}
	if est.Samples == 0 || est.Confidence <= 0 || est.Confidence > 1 {
		t.Fatalf("bad metadata: %+v", est)
	}
}

func TestOptimalNeverBelowOne(t *testing.T) {
	if (Estimate{Qlower: 0}).Optimal() != 1 {
		t.Fatal("Optimal should clamp to 1")
	}
	if (Estimate{Qlower: 7}).Optimal() != 7 {
		t.Fatal("Optimal should pass through Qlower")
	}
}

func TestRTAtQlowerPopulated(t *testing.T) {
	samples := synthSamples(10, 30, 60, 5000, 8, 4)
	est, ok := New(Config{}).Estimate(samples)
	if !ok {
		t.Fatal("estimate failed")
	}
	if est.RTAtQlower <= 0 {
		t.Fatalf("RTAtQlower = %v", est.RTAtQlower)
	}
	// At the plateau knee RT ≈ q/TP ≈ 10/5000 = 2ms.
	if est.RTAtQlower > 0.01 {
		t.Fatalf("RTAtQlower = %v, implausibly high", est.RTAtQlower)
	}
}

func TestScatterSplitsSeries(t *testing.T) {
	samples := synthSamples(10, 20, 40, 1000, 3, 5)
	tp, rt := Scatter(samples)
	if len(tp) != len(samples) || len(rt) != len(samples) {
		t.Fatalf("scatter sizes %d/%d, want %d", len(tp), len(rt), len(samples))
	}
	for i := range tp {
		if tp[i].Concurrency <= 0 || tp[i].Value <= 0 {
			t.Fatalf("bad scatter point %+v", tp[i])
		}
	}
}

func TestScatterSkipsIdle(t *testing.T) {
	samples := []metrics.WindowSample{
		{Concurrency: 0, Throughput: 0, Completions: 0},
		{Concurrency: 5, Throughput: 100, RT: 0.05, Completions: 5},
		{Concurrency: 3, Throughput: 60, RT: math.NaN(), Completions: 3},
	}
	tp, rt := Scatter(samples)
	if len(tp) != 2 {
		t.Fatalf("tp points = %d, want 2", len(tp))
	}
	if len(rt) != 1 {
		t.Fatalf("rt points = %d, want 1 (NaN RT skipped)", len(rt))
	}
}

func TestCurveSortedAndAveraged(t *testing.T) {
	samples := []metrics.WindowSample{
		{Concurrency: 5, Throughput: 100, RT: 0.01, Completions: 5},
		{Concurrency: 5.2, Throughput: 120, RT: 0.02, Completions: 6},
		{Concurrency: 2, Throughput: 50, RT: 0.01, Completions: 2},
	}
	c := Curve(samples)
	if len(c.Concurrency) != 2 {
		t.Fatalf("bins = %d, want 2", len(c.Concurrency))
	}
	if c.Concurrency[0] != 2 || c.Concurrency[1] != 5 {
		t.Fatalf("bins unsorted: %v", c.Concurrency)
	}
	if math.Abs(c.MeanTP[1]-110) > 1e-9 {
		t.Fatalf("bin-5 mean TP = %v, want 110", c.MeanTP[1])
	}
	if c.Count[1] != 2 {
		t.Fatalf("bin-5 count = %d", c.Count[1])
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	e := New(Config{})
	cfg := e.Config()
	def := DefaultConfig()
	if cfg != def {
		t.Fatalf("defaults not applied: %+v vs %+v", cfg, def)
	}
}

func TestCustomConfigRespected(t *testing.T) {
	e := New(Config{Tolerance: 0.10, MinTotalSamples: 5, MinDistinctBins: 2, MinSamplesPerBin: 1})
	samples := synthSamples(4, 8, 12, 500, 2, 9)
	if _, ok := e.Estimate(samples); !ok {
		t.Fatal("permissive config should estimate from small data")
	}
}
