// Package sct implements the paper's core contribution: the online
// Scatter-Concurrency-Throughput model (Section III). From a window of
// fine-grained {concurrency, throughput, response time} tuples it estimates
// the rational concurrency range [Qlower, Qupper] of a server via
// statistical intervention analysis, and recommends Qlower — the minimum
// concurrency achieving maximum throughput — as the optimal soft-resource
// setting (lower concurrency in the stable stage means lower response time).
package sct

import (
	"math"

	"conscale/internal/des"
	"conscale/internal/metrics"
	"conscale/internal/stats"
)

// Config tunes the estimator.
type Config struct {
	// CollectionWindow is the span of history consumed per estimate (the
	// paper's Real-time Metrics Collection phase uses ~3 minutes).
	CollectionWindow des.Time
	// MinSamplesPerBin is the support a concurrency bin needs to
	// participate in the intervention analysis.
	MinSamplesPerBin int
	// Tolerance is the fractional throughput drop still considered "at
	// the plateau".
	Tolerance float64
	// MinTotalSamples is the minimum number of usable tuples before an
	// estimate is attempted at all.
	MinTotalSamples int
	// MinDistinctBins is the minimum concurrency diversity required: a
	// server that only ever ran at one concurrency cannot reveal its
	// curve.
	MinDistinctBins int
}

// DefaultConfig matches the paper's operating point: 3-minute collection,
// 50 ms tuples, 5% plateau tolerance.
func DefaultConfig() Config {
	return Config{
		CollectionWindow: 180 * des.Second,
		MinSamplesPerBin: 3,
		Tolerance:        0.05,
		MinTotalSamples:  40,
		MinDistinctBins:  4,
	}
}

// Estimate is the outcome of one SCT analysis.
type Estimate struct {
	// Qlower and Qupper bound the rational concurrency range.
	Qlower, Qupper int
	// PlateauTP is the sustained maximum throughput (req/s).
	PlateauTP float64
	// RTAtQlower is the mean response time observed in the Qlower bin
	// (seconds), the expected operating latency at the recommendation.
	RTAtQlower float64
	// Confidence is the fraction of well-supported bins in the range.
	Confidence float64
	// Samples is the number of tuples used.
	Samples int
	// QminSeen and QmaxSeen are the observed concurrency extremes.
	QminSeen, QmaxSeen int
	// Saturated reports whether the descending stage was actually
	// observed (well-supported bins exist beyond Qupper). An unsaturated
	// estimate means the server never ran past its plateau in the
	// collection window, so Qlower is only a lower bound on the true
	// optimum — controllers must not tighten allocations below the
	// current setting on such evidence.
	Saturated bool
}

// Optimal returns the recommended soft-resource setting: the lower bound
// of the rational range, never below 1.
func (e Estimate) Optimal() int {
	if e.Qlower < 1 {
		return 1
	}
	return e.Qlower
}

// Estimator turns window samples into rational-range estimates.
type Estimator struct {
	cfg Config
}

// New returns an estimator with the given configuration (zero fields fall
// back to defaults).
func New(cfg Config) *Estimator {
	def := DefaultConfig()
	if cfg.CollectionWindow <= 0 {
		cfg.CollectionWindow = def.CollectionWindow
	}
	if cfg.MinSamplesPerBin <= 0 {
		cfg.MinSamplesPerBin = def.MinSamplesPerBin
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = def.Tolerance
	}
	if cfg.MinTotalSamples <= 0 {
		cfg.MinTotalSamples = def.MinTotalSamples
	}
	if cfg.MinDistinctBins <= 0 {
		cfg.MinDistinctBins = def.MinDistinctBins
	}
	return &Estimator{cfg: cfg}
}

// Config returns the effective configuration.
func (e *Estimator) Config() Config { return e.cfg }

// Bucket maps a concurrency level to its bin key. Low concurrencies get
// unit bins; higher ones get geometrically wider bins (width 2 above 16,
// 4 above 32, ...) because a server under real bursty load dwells either
// low (light load) or pinned at its pool limit (overload) and only passes
// through the middle transiently — unit bins there would be starved below
// MinSamplesPerBin and the knee region would vanish from the analysis.
// The key is the bucket's centre so Qlower/Qupper remain in concurrency
// units.
func Bucket(q int) int {
	width, base := 1, 8
	for q > base {
		width *= 2
		base *= 2
	}
	return (q/width)*width + width/2
}

// Estimate runs the two SCT phases over the tuples. Phase one bins the
// 50 ms samples by bucketed concurrency and averages throughput and
// response time per bin. Phase two locates the rational range with an
// operational variant of the paper's intervention analysis, built on the
// Utilization Law the paper invokes: in the ascending stage throughput
// follows TP(Q) = Q/RT0 (RT0 = the unloaded response time, measured from
// the dense low-concurrency bins), and the stage ends where that asymptote
// crosses the maximum sustainable throughput TPmax (measured as the best
// well-supported bin mean). Qlower is the crossing point — robust even
// when the knee region itself is sparsely visited, which is the common
// case for a server that alternates between light load and being pinned
// at its pool limit.
func (e *Estimator) Estimate(samples []metrics.WindowSample) (Estimate, bool) {
	bins := stats.NewBinSet()
	used := 0
	qmin, qmax := math.MaxInt32, 0
	for _, s := range samples {
		// Windows with no completions carry no throughput information;
		// windows at zero concurrency are idle.
		if s.Completions == 0 || s.Concurrency <= 0 {
			continue
		}
		q := int(s.Concurrency + 0.5)
		if q < 1 {
			q = 1
		}
		rt := s.RT
		if math.IsNaN(rt) {
			rt = 0
		}
		bins.Add(Bucket(q), s.Throughput, rt)
		used++
		if q < qmin {
			qmin = q
		}
		if q > qmax {
			qmax = q
		}
	}
	if used < e.cfg.MinTotalSamples || bins.Len() < e.cfg.MinDistinctBins {
		return Estimate{}, false
	}
	sorted := bins.Sorted()

	// RT0: count-weighted mean response time of the low-concurrency bins
	// (at most the four lowest keys). These are dense under light load
	// and free of queueing.
	rt0Sum, rt0N := 0.0, 0
	for i, b := range sorted {
		if i >= 4 {
			break
		}
		rt0Sum += b.RT.Mean() * float64(b.RT.Count())
		rt0N += b.RT.Count()
	}
	if rt0N == 0 || rt0Sum <= 0 {
		return Estimate{}, false
	}
	rt0 := rt0Sum / float64(rt0N)

	// TPmax: the best bin mean with minimal support (2 samples — the knee
	// is visited only transiently, demanding more support would erase it).
	tpMax, tpMaxKey := 0.0, 0
	for _, b := range sorted {
		if b.TP.Count() < 2 {
			continue
		}
		if m := b.TP.Mean(); m > tpMax {
			tpMax, tpMaxKey = m, b.Key
		}
	}
	if tpMax <= 0 {
		return Estimate{}, false
	}

	qlower := int(tpMax*rt0 + 0.5)
	if qlower < 1 {
		qlower = 1
	}
	if qlower > qmax {
		qlower = qmax
	}

	// Qupper: the largest bin still holding >= (1-tolerance) of TPmax.
	qupper := qlower
	for _, b := range sorted {
		if b.TP.Count() >= 2 && b.Key > qupper && b.TP.Mean() >= (1-e.cfg.Tolerance)*tpMax {
			qupper = b.Key
		}
	}

	// Saturation evidence — both must hold or TPmax is an arrival-rate
	// artefact of a lightly loaded window rather than a capacity point:
	//   1. some bin above Qlower shows real queueing (RT well above RT0),
	//      i.e. the window pushed the server past its knee;
	//   2. TPmax was not observed at the very top of the visited range
	//      (where the curve may still be ascending).
	queueingSeen := false
	for _, b := range sorted {
		if b.Key > qlower && b.RT.Mean() >= 1.5*rt0 {
			queueingSeen = true
			break
		}
	}
	topKey := sorted[len(sorted)-1].Key
	sat := queueingSeen && tpMaxKey < topKey

	est := Estimate{
		Qlower:     qlower,
		Qupper:     qupper,
		PlateauTP:  tpMax,
		RTAtQlower: rt0,
		Confidence: 1,
		Samples:    used,
		QminSeen:   qmin,
		QmaxSeen:   qmax,
		Saturated:  sat,
	}
	return est, true
}

// ScatterPoint is one (concurrency, value) pair for the Fig. 6/7 scatter
// graphs.
type ScatterPoint struct {
	// Concurrency is the x coordinate (windowed mean concurrency).
	Concurrency float64
	// Value is the y coordinate (throughput or response time).
	Value float64
}

// Scatter extracts the throughput-vs-concurrency and RT-vs-concurrency
// point clouds from the tuples (the raw material of the paper's scatter
// plots).
func Scatter(samples []metrics.WindowSample) (tp, rt []ScatterPoint) {
	for _, s := range samples {
		if s.Completions == 0 || s.Concurrency <= 0 {
			continue
		}
		tp = append(tp, ScatterPoint{Concurrency: s.Concurrency, Value: s.Throughput})
		if !math.IsNaN(s.RT) {
			rt = append(rt, ScatterPoint{Concurrency: s.Concurrency, Value: s.RT})
		}
	}
	return tp, rt
}

// BinnedCurve returns the per-concurrency mean throughput and RT curve
// (the blue trend line of Fig. 6), for reporting and plots.
type BinnedCurve struct {
	// Concurrency holds the integer bin centers, ascending.
	Concurrency []int
	// MeanTP is the mean throughput observed in each bin.
	MeanTP []float64
	// MeanRT is the mean response time observed in each bin.
	MeanRT []float64
	// Count is the number of window samples aggregated per bin.
	Count []int
}

// Curve bins the tuples and returns the averaged curve.
func Curve(samples []metrics.WindowSample) BinnedCurve {
	bins := stats.NewBinSet()
	for _, s := range samples {
		if s.Completions == 0 || s.Concurrency <= 0 {
			continue
		}
		q := int(s.Concurrency + 0.5)
		if q < 1 {
			q = 1
		}
		rt := s.RT
		if math.IsNaN(rt) {
			rt = 0
		}
		bins.Add(q, s.Throughput, rt)
	}
	var c BinnedCurve
	for _, b := range bins.Sorted() {
		c.Concurrency = append(c.Concurrency, b.Key)
		c.MeanTP = append(c.MeanTP, b.TP.Mean())
		c.MeanRT = append(c.MeanRT, b.RT.Mean())
		c.Count = append(c.Count, b.TP.Count())
	}
	return c
}
