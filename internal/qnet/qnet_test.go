package qnet

import (
	"math"
	"testing"
	"testing/quick"

	"conscale/internal/rubbos"
)

func single(demand float64, think float64) *Network {
	return &Network{
		Stations:  []Station{{Name: "s", Kind: Queueing, Demand: demand, Servers: 1}},
		ThinkTime: think,
	}
}

func TestSingleStationAtPopulationOne(t *testing.T) {
	net := single(0.1, 0.9)
	r := net.Solve(1)
	// One customer, no queueing: X = 1/(Z+D) = 1/1.0.
	if math.Abs(r.Throughput-1.0) > 1e-12 {
		t.Fatalf("X(1) = %v, want 1", r.Throughput)
	}
	if math.Abs(r.ResponseTime-0.1) > 1e-12 {
		t.Fatalf("R(1) = %v, want 0.1", r.ResponseTime)
	}
}

func TestSingleStationSaturates(t *testing.T) {
	net := single(0.1, 0.9)
	r := net.Solve(100)
	// Asymptote: X -> 1/D = 10.
	if r.Throughput > 10+1e-9 {
		t.Fatalf("X exceeded asymptote: %v", r.Throughput)
	}
	if r.Throughput < 9.9 {
		t.Fatalf("X(100) = %v, want ~10", r.Throughput)
	}
	if r.Utilization[0] < 0.99 {
		t.Fatalf("bottleneck util = %v", r.Utilization[0])
	}
}

func TestThroughputMonotoneInPopulation(t *testing.T) {
	net := &Network{
		Stations: []Station{
			{Name: "a", Kind: Queueing, Demand: 0.05, Servers: 1},
			{Name: "b", Kind: Queueing, Demand: 0.02, Servers: 1},
			{Name: "d", Kind: Delay, Demand: 0.1},
		},
		ThinkTime: 0.5,
	}
	results := net.SolveRange(50)
	for i := 1; i < len(results); i++ {
		if results[i].Throughput < results[i-1].Throughput-1e-12 {
			t.Fatalf("throughput dropped at N=%d", results[i].N)
		}
	}
}

func TestAsymptoticBounds(t *testing.T) {
	net := &Network{
		Stations: []Station{
			{Name: "a", Kind: Queueing, Demand: 0.08, Servers: 1},
			{Name: "b", Kind: Queueing, Demand: 0.03, Servers: 1},
		},
		ThinkTime: 1,
	}
	sumD := 0.11
	for _, r := range net.SolveRange(60) {
		upper := math.Min(1/0.08, float64(r.N)/(1+sumD))
		if r.Throughput > upper+1e-9 {
			t.Fatalf("N=%d: X=%v exceeds bound %v", r.N, r.Throughput, upper)
		}
	}
}

func TestLittlesLawHolds(t *testing.T) {
	net := &Network{
		Stations: []Station{
			{Name: "a", Kind: Queueing, Demand: 0.05, Servers: 1},
			{Name: "d", Kind: Delay, Demand: 0.2},
		},
		ThinkTime: 0.75,
	}
	for _, r := range net.SolveRange(30) {
		// N = X * (Z + R)
		lhs := float64(r.N)
		rhs := r.Throughput * (net.ThinkTime + r.ResponseTime)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("Little's law violated at N=%d: %v vs %v", r.N, lhs, rhs)
		}
	}
}

func TestMultiServerSeidmann(t *testing.T) {
	one := &Network{Stations: []Station{{Name: "c", Kind: Queueing, Demand: 0.1, Servers: 1}}}
	two := &Network{Stations: []Station{{Name: "c", Kind: Queueing, Demand: 0.1, Servers: 2}}}
	if got := two.MaxThroughput(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("2-server max TP = %v, want 20", got)
	}
	if one.MaxThroughput() != 10 {
		t.Fatalf("1-server max TP = %v", one.MaxThroughput())
	}
	// At high population the 2-server station doubles throughput.
	r1, r2 := one.Solve(60), two.Solve(60)
	if r2.Throughput < 1.9*r1.Throughput {
		t.Fatalf("2-server X=%v vs 1-server %v", r2.Throughput, r1.Throughput)
	}
}

func TestDelayStationNeverQueues(t *testing.T) {
	net := &Network{Stations: []Station{{Name: "d", Kind: Delay, Demand: 0.5}}}
	for _, r := range net.SolveRange(40) {
		// Pure delay: X = N/D, R = D.
		if math.Abs(r.ResponseTime-0.5) > 1e-12 {
			t.Fatalf("delay response changed: %v", r.ResponseTime)
		}
		want := float64(r.N) / 0.5
		if math.Abs(r.Throughput-want) > 1e-9 {
			t.Fatalf("N=%d X=%v want %v", r.N, r.Throughput, want)
		}
	}
}

func TestKneePopulation(t *testing.T) {
	// D = {0.1}, Z = 0.9: knee at (0.9+0.1)/0.1 = 10.
	if got := single(0.1, 0.9).KneePopulation(); got != 10 {
		t.Fatalf("knee = %d, want 10", got)
	}
}

func TestSaturationPopulation(t *testing.T) {
	net := single(0.1, 0.9)
	n, ok := net.SaturationPopulation(0.95, 100)
	if !ok {
		t.Fatal("did not saturate")
	}
	// The 95% point of the MVA curve for this network is near the knee.
	if n < 8 || n > 20 {
		t.Fatalf("saturation population = %d", n)
	}
	if _, ok := net.SaturationPopulation(0.999999, 2); ok {
		t.Fatal("saturated within an impossible limit")
	}
}

func TestBottleneckSelection(t *testing.T) {
	net := &Network{Stations: []Station{
		{Name: "small", Kind: Queueing, Demand: 0.01, Servers: 1},
		{Name: "big-but-parallel", Kind: Queueing, Demand: 0.08, Servers: 16},
		{Name: "true-bottleneck", Kind: Queueing, Demand: 0.02, Servers: 1},
		{Name: "delay", Kind: Delay, Demand: 10},
	}}
	if got := net.Bottleneck(); got != 2 {
		t.Fatalf("bottleneck = %d, want 2", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []Network{
		{},
		{Stations: []Station{{Kind: Queueing, Demand: -1, Servers: 1}}},
		{Stations: []Station{{Kind: Queueing, Demand: 1, Servers: 0}}},
		{Stations: []Station{{Kind: Delay, Demand: 1}}, ThinkTime: -1},
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Fatalf("case %d validated", i)
		}
	}
	good := single(0.1, 0)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	single(0.1, 0).Solve(0)
}

// TestAppNetworkPredictsSweepKnee cross-validates the analytic model
// against the paper's measured knees: the MVA saturation population of a
// Tomcat server must land at the same place the discrete-event sweep
// measures (Fig. 3: ~10 at 1 core, ~20 at 2 cores).
func TestAppNetworkPredictsSweepKnee(t *testing.T) {
	wl := rubbos.NewWorkload(rubbos.BrowseOnly, 1)
	for _, tc := range []struct {
		cores          int
		wantLo, wantHi int
	}{
		{1, 7, 13},
		{2, 14, 26},
	} {
		net := AppServerNetwork(wl, tc.cores)
		n, ok := net.SaturationPopulation(0.95, 200)
		if !ok {
			t.Fatalf("cores=%d never saturated", tc.cores)
		}
		if n < tc.wantLo || n > tc.wantHi {
			t.Fatalf("cores=%d: MVA knee=%d, want in [%d,%d]", tc.cores, n, tc.wantLo, tc.wantHi)
		}
	}
}

func TestDBNetworkKneeShiftsWithMix(t *testing.T) {
	browse := DBServerNetwork(rubbos.NewWorkload(rubbos.BrowseOnly, 1), 1, 1)
	rw := DBServerNetwork(rubbos.NewWorkload(rubbos.ReadWrite, 1), 1, 1)
	nb, ok1 := browse.SaturationPopulation(0.95, 200)
	nr, ok2 := rw.SaturationPopulation(0.95, 200)
	if !ok1 || !ok2 {
		t.Fatal("no saturation")
	}
	if nr >= nb {
		t.Fatalf("I/O-intensive knee (%d) should be below browse-only (%d)", nr, nb)
	}
	// Paper Fig. 7a/f: ~10 vs ~5.
	if nb < 7 || nb > 14 {
		t.Fatalf("browse knee = %d", nb)
	}
	if nr < 3 || nr > 9 {
		t.Fatalf("read-write knee = %d", nr)
	}
}

func TestSystemNetworkScalesWithVMs(t *testing.T) {
	wl := rubbos.NewWorkload(rubbos.BrowseOnly, 1)
	one := SystemNetwork(wl, 3, 1, 1, 1, 1, 1, 1, 1)
	three := SystemNetwork(wl, 3, 1, 3, 2, 1, 1, 1, 1)
	if three.MaxThroughput() < 2.5*one.MaxThroughput() {
		t.Fatalf("3-Tomcat system max TP %v vs 1-Tomcat %v",
			three.MaxThroughput(), one.MaxThroughput())
	}
}

// Property: MVA throughput never exceeds either asymptotic bound for any
// valid single-station configuration.
func TestQuickBoundsHold(t *testing.T) {
	f := func(dRaw, zRaw uint16, nRaw uint8) bool {
		d := float64(dRaw%1000+1) / 10000 // (0, 0.1]
		z := float64(zRaw%10000) / 1000   // [0, 10)
		n := int(nRaw%60) + 1
		net := single(d, z)
		r := net.Solve(n)
		upper := math.Min(1/d, float64(n)/(z+d))
		return r.Throughput <= upper+1e-9 && r.Throughput > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: utilisation is bounded by 1 and increases with population.
func TestQuickUtilisationBounded(t *testing.T) {
	f := func(dRaw uint16, nRaw uint8) bool {
		d := float64(dRaw%1000+1) / 10000
		n := int(nRaw%40) + 1
		prev := 0.0
		for _, r := range single(d, 0.05).SolveRange(n) {
			u := r.Utilization[0]
			if u < prev-1e-9 || u > 1+1e-9 {
				return false
			}
			prev = u
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolveRange(b *testing.B) {
	wl := rubbos.NewWorkload(rubbos.BrowseOnly, 1)
	net := SystemNetwork(wl, 3, 1, 3, 2, 1, 1, 1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = net.SolveRange(200)
	}
}
