// Package qnet implements a closed queueing-network solver using exact
// Mean Value Analysis (Reiser & Lavenberg; the textbook the paper cites as
// [13], Lazowska et al., "Quantitative System Performance").
//
// This is the analytic machinery behind the offline profiling that the
// DCM baseline [Wang et al., TPDS 2018] relies on: solve the network for
// increasing customer populations, find where throughput saturates, and
// freeze that population as the server's concurrency setting. The package
// also cross-validates the simulator: the MVA-predicted knee of a tier
// must land where the discrete-event sweep measures it (see the tests),
// which ties the two independent implementations of the same queueing
// structure together.
package qnet

import (
	"fmt"

	"conscale/internal/rubbos"
)

// StationKind distinguishes queueing (FCFS single-queue) stations from
// delay (infinite-server, no queueing) stations.
type StationKind int

// Station kinds.
const (
	// Queueing is a FCFS station where customers may wait.
	Queueing StationKind = iota
	// Delay is an infinite-server station (pure think/dwell time).
	Delay
)

// Station is one service centre of the network.
type Station struct {
	// Name labels the station in results and lookups.
	Name string
	// Kind selects queueing or delay semantics.
	Kind StationKind
	// Demand is the total service demand per customer visit cycle
	// (visit count × per-visit service time), in seconds.
	Demand float64
	// Servers is the number of identical servers at a Queueing station
	// (cores of a CPU, channels of a disk). Values > 1 are handled with
	// the Seidmann approximation: a c-server station behaves like a
	// single-server station with demand D/c plus a delay of D(c-1)/c.
	Servers int
}

// Network is a closed, single-class queueing network.
type Network struct {
	// Stations of the network.
	Stations []Station
	// ThinkTime is the customers' pure think time Z (a delay "station"
	// outside the system), in seconds.
	ThinkTime float64
}

// Result is the MVA solution at one population.
type Result struct {
	// N is the customer population the solution is for.
	N            int
	Throughput   float64   // customers per second
	ResponseTime float64   // seconds per cycle, excluding think time
	QueueLen     []float64 // mean customers at each station
	Utilization  []float64 // station utilisation (0..1 per server)
}

// Validate reports configuration errors.
func (net *Network) Validate() error {
	if len(net.Stations) == 0 {
		return fmt.Errorf("qnet: no stations")
	}
	for i, s := range net.Stations {
		if s.Demand < 0 {
			return fmt.Errorf("qnet: station %d (%s) has negative demand", i, s.Name)
		}
		if s.Kind == Queueing && s.Servers <= 0 {
			return fmt.Errorf("qnet: station %d (%s) needs at least one server", i, s.Name)
		}
	}
	if net.ThinkTime < 0 {
		return fmt.Errorf("qnet: negative think time")
	}
	return nil
}

// effective returns the station list after the Seidmann transformation of
// multi-server stations.
func (net *Network) effective() ([]Station, float64) {
	out := make([]Station, 0, len(net.Stations))
	extraDelay := 0.0
	for _, s := range net.Stations {
		if s.Kind == Delay || s.Servers <= 1 {
			out = append(out, s)
			continue
		}
		c := float64(s.Servers)
		out = append(out, Station{Name: s.Name, Kind: Queueing, Demand: s.Demand / c, Servers: 1})
		extraDelay += s.Demand * (c - 1) / c
	}
	return out, extraDelay
}

// Solve runs exact MVA for population n and returns the solution. It
// panics on invalid networks (Validate first for error returns) and on
// non-positive n.
//
// Solve runs the same recursion as SolveRange but keeps only O(K)
// state (K = station count) instead of materialising all n intermediate
// results — the analytical twin solves at live populations in the tens
// of thousands every tick, where the O(n·K) slice of SolveRange is pure
// waste. The arithmetic (order of operations included) is identical, so
// Solve(n) == SolveRange(n)[n-1] field for field; the equivalence is
// pinned by TestSolveMatchesSolveRange rather than assumed.
func (net *Network) Solve(n int) Result {
	if err := net.Validate(); err != nil {
		panic(err)
	}
	if n <= 0 {
		panic("qnet: non-positive population")
	}
	stations, extraDelay := net.effective()
	k := len(stations)
	queue := make([]float64, k) // Q_k(n-1), starts at 0
	resp := make([]float64, k)
	var res Result

	for pop := 1; pop <= n; pop++ {
		total := 0.0
		for i, s := range stations {
			if s.Kind == Delay {
				resp[i] = s.Demand
			} else {
				resp[i] = s.Demand * (1 + queue[i])
			}
			total += resp[i]
		}
		x := float64(pop) / (net.ThinkTime + extraDelay + total)
		res = Result{
			N:            pop,
			Throughput:   x,
			ResponseTime: total + extraDelay,
			QueueLen:     res.QueueLen,
			Utilization:  res.Utilization,
		}
		if res.QueueLen == nil {
			res.QueueLen = make([]float64, k)
			res.Utilization = make([]float64, k)
		}
		for i, s := range stations {
			queue[i] = x * resp[i]
			res.QueueLen[i] = queue[i]
			if s.Kind == Queueing {
				res.Utilization[i] = x * s.Demand
				if res.Utilization[i] > 1 {
					res.Utilization[i] = 1
				}
			} else {
				res.Utilization[i] = 0
			}
		}
	}
	return res
}

// SolveRange runs exact MVA for populations 1..n and returns all
// solutions (the recursion computes them anyway).
func (net *Network) SolveRange(n int) []Result {
	if err := net.Validate(); err != nil {
		panic(err)
	}
	if n <= 0 {
		panic("qnet: non-positive population")
	}
	stations, extraDelay := net.effective()
	k := len(stations)
	queue := make([]float64, k) // Q_k(n-1), starts at 0
	out := make([]Result, 0, n)

	for pop := 1; pop <= n; pop++ {
		resp := make([]float64, k)
		total := 0.0
		for i, s := range stations {
			if s.Kind == Delay {
				resp[i] = s.Demand
			} else {
				resp[i] = s.Demand * (1 + queue[i])
			}
			total += resp[i]
		}
		x := float64(pop) / (net.ThinkTime + extraDelay + total)
		res := Result{
			N:            pop,
			Throughput:   x,
			ResponseTime: total + extraDelay,
			QueueLen:     make([]float64, k),
			Utilization:  make([]float64, k),
		}
		for i, s := range stations {
			queue[i] = x * resp[i]
			res.QueueLen[i] = queue[i]
			if s.Kind == Queueing {
				res.Utilization[i] = x * s.Demand
				if res.Utilization[i] > 1 {
					res.Utilization[i] = 1
				}
			}
		}
		out = append(out, res)
	}
	return out
}

// MaxThroughput returns the network's asymptotic throughput bound
// 1/Dmax over the queueing stations (per-server demand for multi-server
// stations).
func (net *Network) MaxThroughput() float64 {
	dmax := 0.0
	for _, s := range net.Stations {
		if s.Kind != Queueing {
			continue
		}
		d := s.Demand / float64(s.Servers)
		if d > dmax {
			dmax = d
		}
	}
	if dmax == 0 {
		return 0
	}
	return 1 / dmax
}

// Bottleneck returns the index of the queueing station with the highest
// per-server demand, or -1 when there is none.
func (net *Network) Bottleneck() int {
	best, bestD := -1, 0.0
	for i, s := range net.Stations {
		if s.Kind != Queueing {
			continue
		}
		d := s.Demand / float64(s.Servers)
		if d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// KneePopulation returns the classic balanced-bound knee
// N* = (Z + ΣD) / Dmax — the population at which the asymptotic bounds
// cross, i.e. the smallest population that can saturate the bottleneck.
// This is the analytic counterpart of the SCT model's Qlower.
func (net *Network) KneePopulation() int {
	dmax := 0.0
	sum := net.ThinkTime
	for _, s := range net.Stations {
		sum += s.Demand
		if s.Kind != Queueing {
			continue
		}
		d := s.Demand / float64(s.Servers)
		if d > dmax {
			dmax = d
		}
	}
	if dmax == 0 {
		return 1
	}
	n := int(sum/dmax + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// SaturationPopulation returns the smallest population whose MVA
// throughput reaches the given fraction of the asymptotic maximum
// (fraction 0.95 matches the sweep harness's knee criterion), searching
// up to limit. ok is false if the limit is reached first.
func (net *Network) SaturationPopulation(fraction float64, limit int) (int, bool) {
	if fraction <= 0 || fraction > 1 {
		panic("qnet: fraction out of (0, 1]")
	}
	target := fraction * net.MaxThroughput()
	if target == 0 {
		return 0, false
	}
	for _, r := range net.SolveRange(limit) {
		if r.Throughput >= target {
			return r.N, true
		}
	}
	return 0, false
}

// AppServerNetwork models one Tomcat server of the RUBBoS deployment as a
// closed network: its CPU (multi-core), a delay for its non-CPU dwell, and
// a delay for the synchronous DB round trips (assumed unloaded — the
// profiling setup gives the target server exclusive bottleneck status).
func AppServerNetwork(wl *rubbos.Workload, cores int) *Network {
	m := wl.Means()
	dbRT := m.QueryCPU + m.QueryWait + m.QueryDisk
	return &Network{
		Stations: []Station{
			{Name: "app-cpu", Kind: Queueing, Demand: m.AppCPU, Servers: cores},
			{Name: "app-dwell", Kind: Delay, Demand: m.AppWait},
			{Name: "db-roundtrips", Kind: Delay, Demand: m.Queries * dbRT},
		},
	}
}

// DBServerNetwork models one MySQL server: its CPU (multi-core), its disk,
// and a delay for the per-query protocol dwell.
func DBServerNetwork(wl *rubbos.Workload, cores, diskChans int) *Network {
	m := wl.Means()
	stations := []Station{
		{Name: "db-cpu", Kind: Queueing, Demand: m.QueryCPU, Servers: cores},
		{Name: "db-dwell", Kind: Delay, Demand: m.QueryWait},
	}
	if m.QueryDisk > 0 {
		if diskChans <= 0 {
			diskChans = 1
		}
		stations = append(stations, Station{Name: "db-disk", Kind: Queueing, Demand: m.QueryDisk, Servers: diskChans})
	}
	return &Network{Stations: stations}
}

// SystemNetwork models the whole 3-tier deployment for one end-to-end
// request: web CPU, app CPU, DB CPU and disk (each tier's capacity scaled
// by its VM count via the multi-server approximation), plus the dwells and
// the users' think time.
func SystemNetwork(wl *rubbos.Workload, thinkTime float64, webVMs, appVMs, dbVMs, webCores, appCores, dbCores, diskChans int) *Network {
	m := wl.Means()
	stations := []Station{
		{Name: "web-cpu", Kind: Queueing, Demand: m.WebCPU, Servers: webVMs * webCores},
		{Name: "app-cpu", Kind: Queueing, Demand: m.AppCPU, Servers: appVMs * appCores},
		{Name: "app-dwell", Kind: Delay, Demand: m.AppWait},
		{Name: "db-cpu", Kind: Queueing, Demand: m.Queries * m.QueryCPU, Servers: dbVMs * dbCores},
		{Name: "db-dwell", Kind: Delay, Demand: m.Queries * m.QueryWait},
	}
	if m.QueryDisk > 0 {
		if diskChans <= 0 {
			diskChans = 1
		}
		stations = append(stations, Station{
			Name: "db-disk", Kind: Queueing,
			Demand:  m.Queries * m.QueryDisk,
			Servers: dbVMs * diskChans,
		})
	}
	return &Network{Stations: stations, ThinkTime: thinkTime}
}
