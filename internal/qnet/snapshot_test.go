package qnet

import (
	"math"
	"strings"
	"testing"

	"conscale/internal/rubbos"
)

func liveState() LiveState {
	return LiveState{
		Workload:  rubbos.NewWorkload(rubbos.BrowseOnly, 1),
		ThinkTime: 3,
		WebVMs:    1, AppVMs: 2, DBVMs: 1,
		WebCores: 1, AppCores: 1, DBCores: 1,
		DiskChans: 1,
	}
}

// TestSolveMatchesSolveRange pins the contract ISSUE 9 asks to assert
// rather than assume: the O(K)-memory Solve and the materialising
// SolveRange run the identical recursion, so the last SolveRange entry
// equals Solve field for field — exactly, not within a tolerance,
// because the float operations execute in the same order.
func TestSolveMatchesSolveRange(t *testing.T) {
	nets := []*Network{
		single(0.1, 0.9),
		{
			Stations: []Station{
				{Name: "a", Kind: Queueing, Demand: 0.05, Servers: 3},
				{Name: "d", Kind: Delay, Demand: 0.2},
				{Name: "b", Kind: Queueing, Demand: 0.011, Servers: 1},
			},
			ThinkTime: 0.75,
		},
		SystemNetwork(rubbos.NewWorkload(rubbos.ReadWrite, 1), 3, 2, 3, 2, 1, 1, 1, 2),
	}
	for ni, net := range nets {
		for _, n := range []int{1, 2, 7, 50, 333} {
			want := net.SolveRange(n)[n-1]
			got := net.Solve(n)
			if got.N != want.N || got.Throughput != want.Throughput ||
				got.ResponseTime != want.ResponseTime {
				t.Fatalf("net %d, n=%d: Solve %+v != SolveRange tail %+v", ni, n, got, want)
			}
			for i := range want.QueueLen {
				if got.QueueLen[i] != want.QueueLen[i] {
					t.Fatalf("net %d, n=%d: QueueLen[%d] %v != %v",
						ni, n, i, got.QueueLen[i], want.QueueLen[i])
				}
				if got.Utilization[i] != want.Utilization[i] {
					t.Fatalf("net %d, n=%d: Utilization[%d] %v != %v",
						ni, n, i, got.Utilization[i], want.Utilization[i])
				}
			}
		}
	}
}

func TestSnapshotNetworkMatchesSystemNetwork(t *testing.T) {
	s := liveState()
	net, err := SnapshotNetwork(s)
	if err != nil {
		t.Fatal(err)
	}
	ref := SystemNetwork(s.Workload, s.ThinkTime, s.WebVMs, s.AppVMs, s.DBVMs,
		s.WebCores, s.AppCores, s.DBCores, s.DiskChans)
	// The browse-only mix visits every station, so the snapshot drops
	// nothing and the two constructors agree exactly.
	if len(net.Stations) != len(ref.Stations) {
		t.Fatalf("station count %d vs %d", len(net.Stations), len(ref.Stations))
	}
	for i := range net.Stations {
		if net.Stations[i] != ref.Stations[i] {
			t.Fatalf("station %d: %+v vs %+v", i, net.Stations[i], ref.Stations[i])
		}
	}
	a, b := net.Solve(100), ref.Solve(100)
	if a.Throughput != b.Throughput || a.ResponseTime != b.ResponseTime {
		t.Fatalf("solutions diverge: %+v vs %+v", a, b)
	}
}

// TestSnapshotNetworkDegenerate covers the inputs a mid-run snapshot can
// genuinely produce: a tier dark mid-repair, a missing workload, a
// negative think time. Each must come back as a named error, never a
// panic — the twin surfaces the message as its "regime inapplicable"
// reason.
func TestSnapshotNetworkDegenerate(t *testing.T) {
	cases := []struct {
		name   string
		mut    func(*LiveState)
		substr string
	}{
		{"no workload", func(s *LiveState) { s.Workload = nil }, "without workload"},
		{"web dark", func(s *LiveState) { s.WebVMs = 0 }, "web tier dark"},
		{"app dark mid-repair", func(s *LiveState) { s.AppVMs = 0 }, "app tier dark"},
		{"db dark", func(s *LiveState) { s.DBVMs = -1 }, "db tier dark"},
		{"negative think", func(s *LiveState) { s.ThinkTime = -0.1 }, "negative think"},
		{"zero cores", func(s *LiveState) { s.AppCores = 0 }, "core count"},
	}
	for _, tc := range cases {
		s := liveState()
		tc.mut(&s)
		net, err := SnapshotNetwork(s)
		if err == nil {
			t.Fatalf("%s: no error (net %+v)", tc.name, net)
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.substr)
		}
	}
}

// TestSnapshotDropsZeroVisitStations builds a mix with no disk demand
// and checks the snapshot drops the station entirely instead of keeping
// a zero-demand queueing station, and that StationIndex maps names
// robustly across the drop.
func TestSnapshotDropsZeroVisitStations(t *testing.T) {
	s := liveState()
	s.Workload = rubbos.NewWorkload(rubbos.BrowseOnly, 1)
	m := s.Workload.Means()
	net, err := SnapshotNetwork(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.QueryDisk == 0 {
		if net.StationIndex("db-disk") != -1 {
			t.Fatal("zero-visit db-disk station retained")
		}
	}
	for _, name := range []string{"web-cpu", "app-cpu", "db-cpu"} {
		if net.StationIndex(name) == -1 {
			t.Fatalf("station %s missing", name)
		}
	}
	if net.StationIndex("no-such") != -1 {
		t.Fatal("bogus station found")
	}
	// Synthetic zero-visit corner: a workload object whose mix produces
	// zero app CPU cannot arise from the RUBBoS tables, so exercise the
	// drop through the disk channel instead — any station whose demand
	// is zero must be gone and the solve must still run.
	r := net.Solve(10)
	if len(r.QueueLen) != len(net.Stations) {
		t.Fatalf("result arity %d vs %d stations", len(r.QueueLen), len(net.Stations))
	}
}

// TestSnapshotSinglePopulationEdge pins the N=1 closed-form: one
// customer never queues, so R(1) = ΣD (plus the Seidmann extra delay)
// and X(1) = 1/(Z+R). The tolerance 1e-12 documents that the recursion
// itself introduces only rounding noise at this edge; the model error
// against the DES is measured separately (EXPERIMENTS.md, "Hypothesis
// validation").
func TestSnapshotSinglePopulationEdge(t *testing.T) {
	s := liveState()
	net, err := SnapshotNetwork(s)
	if err != nil {
		t.Fatal(err)
	}
	sumD, extra := 0.0, 0.0
	for _, st := range net.Stations {
		if st.Kind == Queueing && st.Servers > 1 {
			c := float64(st.Servers)
			sumD += st.Demand / c
			extra += st.Demand * (c - 1) / c
			continue
		}
		sumD += st.Demand
	}
	r := net.Solve(1)
	wantR := sumD + extra
	if math.Abs(r.ResponseTime-wantR) > 1e-12 {
		t.Fatalf("R(1) = %v, want %v", r.ResponseTime, wantR)
	}
	wantX := 1 / (s.ThinkTime + wantR)
	if math.Abs(r.Throughput-wantX) > 1e-12 {
		t.Fatalf("X(1) = %v, want %v", r.Throughput, wantX)
	}
}

// TestSnapshotScalesWithRepair walks a repair scenario: the app tier
// loses a VM (3 → 2 → 1), and the model's max throughput must fall
// monotonically while the network stays solvable at every step; at zero
// it must error, not extrapolate.
func TestSnapshotScalesWithRepair(t *testing.T) {
	s := liveState()
	prev := math.Inf(1)
	for vms := 3; vms >= 1; vms-- {
		s.AppVMs = vms
		net, err := SnapshotNetwork(s)
		if err != nil {
			t.Fatalf("AppVMs=%d: %v", vms, err)
		}
		mt := net.MaxThroughput()
		if mt > prev+1e-9 {
			t.Fatalf("max TP rose when capacity shrank: %v -> %v", prev, mt)
		}
		prev = mt
	}
	s.AppVMs = 0
	if _, err := SnapshotNetwork(s); err == nil {
		t.Fatal("dark tier accepted")
	}
}

func BenchmarkSnapshotSolve(b *testing.B) {
	s := liveState()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net, err := SnapshotNetwork(s)
		if err != nil {
			b.Fatal(err)
		}
		_ = net.Solve(2500)
	}
}
