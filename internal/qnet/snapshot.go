package qnet

import (
	"fmt"

	"conscale/internal/rubbos"
)

// LiveState is a moment-in-time capture of the running 3-tier cluster,
// the input of SnapshotNetwork. The analytical twin fills it from
// cluster accessors every tick; tests fill it by hand to probe the
// degenerate corners.
type LiveState struct {
	// Workload is the active servlet mix and dataset scale. Callers must
	// pass the *current* workload object — cluster.SetDatasetScale and
	// SetMix replace the pointer, so holding an old one silently models
	// the wrong demands.
	Workload *rubbos.Workload
	// ThinkTime is the client think time Z in seconds.
	ThinkTime float64
	// WebVMs, AppVMs, DBVMs are the *ready* VM counts per tier. Booting
	// or crashed VMs serve no traffic and must not be counted; a tier
	// with zero ready VMs is "dark" and the model does not apply.
	WebVMs, AppVMs, DBVMs int
	// WebCores, AppCores, DBCores are per-VM core counts.
	WebCores, AppCores, DBCores int
	// DiskChans is the per-DB-VM disk channel count (0 means 1).
	DiskChans int
}

// SnapshotNetwork builds the closed MVA network for a live cluster
// state, returning errors instead of panicking — mid-run states are
// routinely degenerate (a tier dark mid-repair, a workload swap in
// flight) and the twin must classify those as "regime inapplicable",
// not crash the run.
//
// Differences from SystemNetwork, which models a declared configuration:
//
//   - Zero ready VMs in any tier is an error ("tier dark"): a closed
//     network with an unreachable queueing station has no steady state.
//   - Zero-visit stations are dropped, not kept at demand 0: a mix with
//     no DB queries (Means().Queries == 0) simply has no db-cpu/db-disk
//     station, so the Result slices only carry stations that exist. Use
//     (*Network).StationIndex to map names to indices robustly.
//   - All inputs are validated up front with named errors so callers can
//     surface the reason string directly in telemetry.
//
// Numerical error of the solved network is the Seidmann multi-server
// approximation's, not the recursion's: exact MVA is exact for the
// transformed network, and the transform's error is small when stations
// are either lightly loaded or saturated (see snapshot_test.go for the
// pinned bounds at the calibrated operating points).
func SnapshotNetwork(s LiveState) (*Network, error) {
	if s.Workload == nil {
		return nil, fmt.Errorf("qnet: snapshot without workload")
	}
	if s.ThinkTime < 0 {
		return nil, fmt.Errorf("qnet: negative think time %g", s.ThinkTime)
	}
	if s.WebVMs <= 0 {
		return nil, fmt.Errorf("qnet: web tier dark (%d ready VMs)", s.WebVMs)
	}
	if s.AppVMs <= 0 {
		return nil, fmt.Errorf("qnet: app tier dark (%d ready VMs)", s.AppVMs)
	}
	if s.DBVMs <= 0 {
		return nil, fmt.Errorf("qnet: db tier dark (%d ready VMs)", s.DBVMs)
	}
	if s.WebCores <= 0 || s.AppCores <= 0 || s.DBCores <= 0 {
		return nil, fmt.Errorf("qnet: non-positive core count (web %d, app %d, db %d)",
			s.WebCores, s.AppCores, s.DBCores)
	}
	m := s.Workload.Means()
	diskChans := s.DiskChans
	if diskChans <= 0 {
		diskChans = 1
	}
	all := []Station{
		{Name: "web-cpu", Kind: Queueing, Demand: m.WebCPU, Servers: s.WebVMs * s.WebCores},
		{Name: "app-cpu", Kind: Queueing, Demand: m.AppCPU, Servers: s.AppVMs * s.AppCores},
		{Name: "app-dwell", Kind: Delay, Demand: m.AppWait},
		{Name: "db-cpu", Kind: Queueing, Demand: m.Queries * m.QueryCPU, Servers: s.DBVMs * s.DBCores},
		{Name: "db-dwell", Kind: Delay, Demand: m.Queries * m.QueryWait},
		{Name: "db-disk", Kind: Queueing, Demand: m.Queries * m.QueryDisk, Servers: s.DBVMs * diskChans},
	}
	stations := all[:0:0]
	for _, st := range all {
		if st.Demand <= 0 {
			continue // zero-visit station: the mix never touches it
		}
		stations = append(stations, st)
	}
	if len(stations) == 0 {
		return nil, fmt.Errorf("qnet: all stations have zero demand")
	}
	net := &Network{Stations: stations, ThinkTime: s.ThinkTime}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// StationIndex returns the index of the named station in the network's
// Stations slice (and therefore in Result.QueueLen/Utilization), or -1
// when the station does not exist — snapshot networks drop zero-visit
// stations, so positional indexing is not safe across workload mixes.
func (net *Network) StationIndex(name string) int {
	for i, s := range net.Stations {
		if s.Name == name {
			return i
		}
	}
	return -1
}
