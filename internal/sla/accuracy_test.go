package sla

import (
	"math"
	"testing"

	"conscale/internal/des"
	"conscale/internal/rng"
)

// The accuracy contract documented on P2Quantile: on the latency-shaped
// families below (lognormal body, Pareto tail) the streaming estimate
// stays within 5% relative error of the exact quantile at p95 and p99
// once a few tens of thousands of samples have arrived. The exact
// reference is WindowTail with a window spanning the whole stream, which
// doubles this as a cross-check between the two trackers.
const p2RelErrBound = 0.05

func p2AccuracyCase(t *testing.T, name string, gen func(*rng.Source) float64) {
	t.Helper()
	const n = 50000
	for _, p := range []float64{0.95, 0.99} {
		for seed := uint64(1); seed <= 3; seed++ {
			src := rng.New(seed)
			q := NewP2(p)
			// One sample per simulated millisecond; the window outlives
			// the stream, so Percentile is the exact sorted quantile.
			w := NewWindowTail(des.Time(2 * n))
			var now des.Time
			for i := 0; i < n; i++ {
				v := gen(src)
				q.Add(v)
				now = des.Time(i) * 1e-3
				w.Add(now, v)
			}
			exact := w.Percentile(now, p*100)
			if math.IsNaN(exact) || exact <= 0 {
				t.Fatalf("%s: degenerate exact p%.0f = %v", name, p*100, exact)
			}
			rel := math.Abs(q.Value()-exact) / exact
			if rel > p2RelErrBound {
				t.Errorf("%s seed %d: P2 p%.0f=%.4f exact=%.4f rel err %.3f > %.2f",
					name, seed, p*100, q.Value(), exact, rel, p2RelErrBound)
			}
		}
	}
}

// TestP2AccuracyLogNormal stresses the estimator on the distribution web
// response times actually follow: a lognormal with a 100 ms-scale mean
// and wide sigma.
func TestP2AccuracyLogNormal(t *testing.T) {
	p2AccuracyCase(t, "lognormal", func(r *rng.Source) float64 {
		return r.LogNormal(0.1, 1.2)
	})
}

// TestP2AccuracyPareto stresses the estimator on a power-law tail
// (alpha 2.5, 50 ms scale) via inverse-transform sampling — the shape of
// pathological tail-latency regimes.
func TestP2AccuracyPareto(t *testing.T) {
	p2AccuracyCase(t, "pareto", func(r *rng.Source) float64 {
		u := r.Float64()
		return 0.05 * math.Pow(1-u, -1/2.5)
	})
}
