package sla

import (
	"math"
	"testing"

	"conscale/internal/des"
)

// Edge cases of the windowed quantile — the episode detector's input
// signal. These pin the behaviours forensics relies on: NaN for an
// empty window (detector holds state), sane single-sample answers, and
// the step-response flush bound documented on WindowTail.

func TestWindowTailSingleSample(t *testing.T) {
	w := NewWindowTail(10 * des.Second)
	w.Add(5*des.Second, 0.42)
	// Every percentile of a one-sample window is that sample.
	for _, p := range []float64{0, 50, 99, 100} {
		if got := w.Percentile(5*des.Second, p); got != 0.42 {
			t.Fatalf("p%v of single sample = %v, want 0.42", p, got)
		}
	}
	if w.Count() != 1 {
		t.Fatalf("count = %d, want 1", w.Count())
	}
	// Once the sample ages out the window is empty again: NaN, count 0.
	if got := w.Percentile(16*des.Second, 99); !math.IsNaN(got) {
		t.Fatalf("p99 after the sample aged out = %v, want NaN", got)
	}
	if w.Count() != 0 {
		t.Fatalf("count after age-out = %d, want 0", w.Count())
	}
}

func TestWindowTailEmptyAfterDrainRefills(t *testing.T) {
	w := NewWindowTail(5 * des.Second)
	for i := 0; i < 10; i++ {
		w.Add(des.Time(i)*des.Second/2, 0.1)
	}
	if got := w.Percentile(100*des.Second, 99); !math.IsNaN(got) {
		t.Fatalf("drained window p99 = %v, want NaN", got)
	}
	// A drained tracker must accept new samples and answer again.
	w.Add(100*des.Second, 0.7)
	if got := w.Percentile(100*des.Second, 99); got != 0.7 {
		t.Fatalf("refilled window p99 = %v, want 0.7", got)
	}
}

// TestWindowTailStepResponse pins the flush bound: after a step from
// 0.1 s to 1.0 s at 10 samples/s into a 10 s window, the windowed p99
// must land on the new level within ~2% of a window span (p99 needs
// only ~1% of samples at the new level) and the *entire* distribution
// must flush within one full window span.
func TestWindowTailStepResponse(t *testing.T) {
	const window = 10 * des.Second
	const interval = des.Second / 10
	w := NewWindowTail(window)

	now := des.Time(0)
	for ; now < 20*des.Second; now += interval {
		w.Add(now, 0.1)
	}
	stepAt := now
	if got := w.Percentile(stepAt, 99); got != 0.1 {
		t.Fatalf("pre-step p99 = %v, want 0.1", got)
	}

	// Feed the new level and track when p99 first reports it.
	reached := des.Time(-1)
	for ; now < stepAt+12*des.Second; now += interval {
		w.Add(now, 1.0)
		if reached < 0 && w.Percentile(now, 99) == 1.0 {
			reached = now - stepAt
		}
	}
	if reached < 0 {
		t.Fatal("p99 never reached the new level")
	}
	// ~1% of a 100-sample window is 1 sample; rank interpolation needs
	// the top two ranks at the new level, so allow 2% of the span plus
	// one sample interval.
	if limit := window/50 + interval; reached > limit {
		t.Fatalf("p99 reached the step after %v, want <= %v", reached, limit)
	}
	// Flush bound: one full window past the step, even p0 is new-level.
	if got := w.Percentile(stepAt+window+interval, 0); got != 1.0 {
		t.Fatalf("min after a full window span = %v, want 1.0 (flush bound violated)", got)
	}
}

// TestP2StepBiasBound measures the contrast the WindowTail doc comment
// points at: P² markers chase a step asymptotically. After 20k samples
// at 0.1 s followed by 2k at 1.0 s (a full detector-window's worth at
// 10 samples/s is 100 — this is 20 windows), the P² p99 estimate must
// have moved most of the way but is permitted to lag; the bound pinned
// here (within 25% of the new level) is the documented bias envelope.
func TestP2StepBiasBound(t *testing.T) {
	q := NewP2(0.99)
	for i := 0; i < 20000; i++ {
		q.Add(0.1)
	}
	for i := 0; i < 2000; i++ {
		q.Add(1.0)
	}
	got := q.Value()
	if got <= 0.1 {
		t.Fatalf("P2 p99 did not move off the old level: %v", got)
	}
	if got < 0.75 || got > 1.0+1e-9 {
		t.Fatalf("P2 p99 after step = %v, want within 25%% of 1.0", got)
	}
}
