package sla

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"conscale/internal/des"
	"conscale/internal/rng"
)

func exactQuantile(vals []float64, p float64) float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func TestP2AgainstExactUniform(t *testing.T) {
	rnd := rng.New(1)
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		q := NewP2(p)
		var vals []float64
		for i := 0; i < 20000; i++ {
			v := rnd.Float64() * 100
			q.Add(v)
			vals = append(vals, v)
		}
		exact := exactQuantile(vals, p)
		got := q.Value()
		if math.Abs(got-exact) > 2.5 { // 2.5% of the range
			t.Fatalf("p=%v: P2=%v exact=%v", p, got, exact)
		}
	}
}

func TestP2AgainstExactSkewed(t *testing.T) {
	rnd := rng.New(2)
	q := NewP2(0.95)
	var vals []float64
	for i := 0; i < 30000; i++ {
		v := rnd.Exp(10) // heavy right tail
		q.Add(v)
		vals = append(vals, v)
	}
	exact := exactQuantile(vals, 0.95)
	got := q.Value()
	if math.Abs(got-exact)/exact > 0.08 {
		t.Fatalf("exponential p95: P2=%v exact=%v", got, exact)
	}
}

func TestP2SmallCounts(t *testing.T) {
	q := NewP2(0.9)
	if !math.IsNaN(q.Value()) {
		t.Fatal("empty estimator should be NaN")
	}
	q.Add(5)
	if q.Value() != 5 {
		t.Fatalf("one sample: %v", q.Value())
	}
	q.Add(1)
	q.Add(9)
	if v := q.Value(); v < 5 || v > 9 {
		t.Fatalf("three samples p90 = %v", v)
	}
	if q.Count() != 3 {
		t.Fatalf("Count = %d", q.Count())
	}
}

func TestP2MonotoneStream(t *testing.T) {
	q := NewP2(0.5)
	for i := 1; i <= 1001; i++ {
		q.Add(float64(i))
	}
	if got := q.Value(); math.Abs(got-501) > 25 {
		t.Fatalf("median of 1..1001 = %v", got)
	}
}

func TestP2InvalidQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewP2(%v) did not panic", p)
				}
			}()
			NewP2(p)
		}()
	}
}

// Property: the P2 estimate is always within the observed min/max.
func TestQuickP2Bounded(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := (float64(pRaw%98) + 1) / 100
		q := NewP2(p)
		min, max := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r)
			q.Add(v)
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		got := q.Value()
		return got >= min-1e-9 && got <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowTailSliding(t *testing.T) {
	w := NewWindowTail(10)
	for i := 0; i < 100; i++ {
		w.Add(des.Time(i), float64(i))
	}
	// At t=99, the window holds samples from t>=89: values 89..99.
	if got := w.Percentile(99, 0); got != 89 {
		t.Fatalf("window min = %v, want 89", got)
	}
	if got := w.Percentile(99, 100); got != 99 {
		t.Fatalf("window max = %v, want 99", got)
	}
	if got := w.Percentile(99, 50); math.Abs(got-94) > 1 {
		t.Fatalf("window median = %v, want ~94", got)
	}
}

func TestWindowTailEmpty(t *testing.T) {
	w := NewWindowTail(5)
	if !math.IsNaN(w.Percentile(0, 95)) {
		t.Fatal("empty window should be NaN")
	}
	w.Add(1, 10)
	if !math.IsNaN(w.Percentile(100, 95)) {
		t.Fatal("expired window should be NaN")
	}
}

func TestWindowTailCompaction(t *testing.T) {
	w := NewWindowTail(1)
	for i := 0; i < 100000; i++ {
		w.Add(des.Time(i)*0.001, float64(i%97))
	}
	if w.Count() > 1100 {
		t.Fatalf("window retains %d samples for a 1s window at 1kHz", w.Count())
	}
	if cap(w.values) > 1<<16 {
		t.Fatalf("backing store grew unboundedly: cap=%d", cap(w.values))
	}
}

func TestWindowTailPercentileMatchesExact(t *testing.T) {
	rnd := rng.New(7)
	w := NewWindowTail(1000)
	var vals []float64
	for i := 0; i < 5000; i++ {
		v := rnd.Float64() * 50
		w.Add(des.Time(i)*0.01, v)
		vals = append(vals, v)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	got := w.Percentile(49.99, 95)
	exactIdx := int(0.95 * float64(len(sorted)-1))
	if math.Abs(got-sorted[exactIdx]) > 0.5 {
		t.Fatalf("window p95 = %v, exact ~%v", got, sorted[exactIdx])
	}
}

func TestWindowTailNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewWindowTail(0)
}

func BenchmarkP2Add(b *testing.B) {
	q := NewP2(0.99)
	rnd := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Add(rnd.Float64())
	}
}

func BenchmarkWindowTailAdd(b *testing.B) {
	w := NewWindowTail(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Add(des.Time(i)*0.0001, float64(i%1000))
	}
}
