// Package sla provides tail-latency tracking for QoS-driven control: a
// streaming quantile estimator (the P² algorithm of Jain & Chlamtac, CACM
// 1985 — constant memory, no sample storage) and an exact sliding-window
// tail tracker. The paper motivates ConScale with strict web QoS targets
// ("web search requires 99th percentile response time < 300 ms"); these
// trackers let a controller act on the SLA signal directly, which matters
// exactly when the under-allocation effect keeps CPU below any hardware
// threshold while response times burn.
package sla

import (
	"math"
	"sort"

	"conscale/internal/des"
)

// P2Quantile estimates a single quantile of a stream in O(1) memory using
// the P-squared algorithm. The zero value is not usable; call NewP2.
//
// Accuracy: P² carries no worst-case guarantee, but on latency-shaped
// distributions the estimate tracks the exact quantile closely. The
// accuracy tests pin the contract this package relies on: within 5%
// relative error at p95 and p99 on lognormal and Pareto (alpha 2.5)
// streams after ~50k observations (measured worst case ≈ 3.5%, Pareto
// p99). For an exact answer over a bounded horizon, use WindowTail.
type P2Quantile struct {
	p       float64
	count   int
	heights [5]float64
	pos     [5]float64
	desired [5]float64
	incr    [5]float64
	initial []float64
}

// NewP2 returns an estimator for the p-quantile (0 < p < 1).
func NewP2(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("sla: quantile out of (0, 1)")
	}
	q := &P2Quantile{p: p}
	q.incr = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q
}

// Add incorporates one observation.
func (q *P2Quantile) Add(v float64) {
	if q.count < 5 {
		q.initial = append(q.initial, v)
		q.count++
		if q.count == 5 {
			sort.Float64s(q.initial)
			copy(q.heights[:], q.initial)
			for i := range q.pos {
				q.pos[i] = float64(i + 1)
				q.desired[i] = 1 + 4*q.incr[i]
			}
			q.initial = nil
		}
		return
	}
	q.count++

	// Locate the cell containing v and update the extremes.
	var k int
	switch {
	case v < q.heights[0]:
		q.heights[0] = v
		k = 0
	case v >= q.heights[4]:
		q.heights[4] = v
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if v < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.desired {
		q.desired[i] += q.incr[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.desired[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			h := q.parabolic(i, s)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, s)
			}
			q.pos[i] += s
		}
	}
}

func (q *P2Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Count returns the number of observations.
func (q *P2Quantile) Count() int { return q.count }

// Value returns the current quantile estimate (NaN when empty; exact for
// fewer than five observations).
func (q *P2Quantile) Value() float64 {
	if q.count == 0 {
		return math.NaN()
	}
	if q.count < 5 {
		sorted := append([]float64(nil), q.initial...)
		sort.Float64s(sorted)
		idx := int(q.p * float64(len(sorted)))
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx]
	}
	return q.heights[2]
}

// WindowTail tracks exact percentiles over a sliding time window of
// response-time samples — the controller-facing SLA signal.
//
// Step response: after a level shift in the stream, the windowed
// percentile is a mix of old and new samples until the old ones age
// out, so the reported p99 reaches the new level no later than one full
// window span after the step (the flush bound) — and much sooner for
// high percentiles, since p99 needs only ~1% of the window's samples at
// the new level before rank interpolation lands on them. P² has no such
// bound: its markers chase a step asymptotically (see the step-bias
// test for the measured lag), which is why episode detection feeds on
// WindowTail rather than P2Quantile.
type WindowTail struct {
	window des.Time
	times  []des.Time
	values []float64
	head   int // index of the oldest retained sample
}

// NewWindowTail returns a tracker over the given span.
func NewWindowTail(window des.Time) *WindowTail {
	if window <= 0 {
		panic("sla: non-positive window")
	}
	return &WindowTail{window: window}
}

// Add records a sample at time t. Times must be non-decreasing.
func (w *WindowTail) Add(t des.Time, rt float64) {
	w.times = append(w.times, t)
	w.values = append(w.values, rt)
	w.prune(t)
}

func (w *WindowTail) prune(now des.Time) {
	cut := now - w.window
	for w.head < len(w.times) && w.times[w.head] < cut {
		w.head++
	}
	// Compact occasionally so memory stays proportional to the window.
	if w.head > 1024 && w.head*2 > len(w.times) {
		w.times = append(w.times[:0:0], w.times[w.head:]...)
		w.values = append(w.values[:0:0], w.values[w.head:]...)
		w.head = 0
	}
}

// Count returns the samples currently inside the window (as of the last
// Add or Percentile call).
func (w *WindowTail) Count() int { return len(w.times) - w.head }

// Percentile returns the p-th percentile (0..100) of samples in the
// window ending at now; NaN when the window is empty.
func (w *WindowTail) Percentile(now des.Time, p float64) float64 {
	w.prune(now)
	live := w.values[w.head:]
	if len(live) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), live...)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
