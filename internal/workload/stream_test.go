package workload

import (
	"math"
	"runtime"
	"sort"
	"testing"

	"conscale/internal/des"
	"conscale/internal/rng"
	"conscale/internal/stats"
)

// echoSubmitter completes every request after a lognormal-ish service
// time drawn from its own stream, independent of the generator's RNG.
func echoSubmitter(eng *des.Engine, rnd *rng.Source) Submitter {
	return func(done func(ok bool)) {
		d := des.Time(rnd.LogNormal(math.Log(0.050), 0.5))
		eng.After(d, func() { done(true) })
	}
}

func runStreaming(users int, think float64, dur des.Time) *Generator {
	eng := des.New()
	gen := NewGenerator(eng, rng.New(7), GeneratorConfig{
		Trace:     NewConstantTrace(users, dur),
		ThinkTime: think,
		Streaming: true,
	}, echoSubmitter(eng, rng.New(99)))
	gen.Start()
	eng.RunUntil(dur + des.Second)
	return gen
}

func TestStreamingIssuesTraceRate(t *testing.T) {
	const users, think = 2000, 2.0
	gen := runStreaming(users, think, 30*des.Second)
	st := gen.Stream()
	if st == nil {
		t.Fatal("Stream() returned nil in streaming mode")
	}
	want := float64(users) / think * 30 // expected arrivals
	got := float64(st.Issued)
	if got < 0.9*want || got > 1.1*want {
		t.Fatalf("issued %d requests, want ~%.0f (±10%%)", st.Issued, want)
	}
	if st.OK == 0 || st.Errors != 0 {
		t.Fatalf("ok=%d errors=%d, want all-ok completions", st.OK, st.Errors)
	}
	if gen.Samples() != nil {
		t.Fatalf("streaming mode retained %d samples, want none", len(gen.Samples()))
	}
	if gen.GoodputTotal() != int(st.OK) {
		t.Fatalf("GoodputTotal=%d disagrees with stream OK=%d", gen.GoodputTotal(), st.OK)
	}
	if tl := gen.Timeline(); len(tl) < 25 {
		t.Fatalf("timeline has %d points, want ≥25", len(tl))
	}
}

// TestStreamingQuantilesTrackExact drives the same completion stream
// through the P² estimators and an exact percentile, and bounds the gap
// by the documented 5% contract (slack to 8% for the shorter stream).
func TestStreamingQuantilesTrackExact(t *testing.T) {
	eng := des.New()
	svc := rng.New(99)
	var exact []float64
	submit := func(done func(ok bool)) {
		d := des.Time(svc.LogNormal(math.Log(0.050), 0.5))
		eng.After(d, func() { done(true) })
	}
	gen := NewGenerator(eng, rng.New(7), GeneratorConfig{
		Trace:     NewConstantTrace(3000, 60*des.Second),
		ThinkTime: 2,
		Streaming: true,
	}, func(done func(ok bool)) {
		start := eng.Now()
		submit(func(ok bool) {
			exact = append(exact, float64(eng.Now()-start))
			done(ok)
		})
	})
	gen.Start()
	eng.RunUntil(61 * des.Second)
	sort.Float64s(exact)
	for _, p := range []float64{50, 95, 99} {
		want := stats.PercentileSorted(exact, p)
		got := gen.TailLatency(p, 0)
		if rel := math.Abs(got-want) / want; rel > 0.08 {
			t.Fatalf("p%.0f: streaming %.4fs vs exact %.4fs (rel err %.1f%%)", p, got, want, rel*100)
		}
	}
}

func TestStreamingClasses(t *testing.T) {
	eng := des.New()
	gen := NewGenerator(eng, rng.New(3), GeneratorConfig{
		Trace:     NewConstantTrace(1000, 40*des.Second),
		Streaming: true,
		Classes: []Class{
			{Name: "readers", Weight: 3, ThinkTime: 2},
			{Name: "authors", Weight: 1, ThinkTime: 8},
		},
	}, echoSubmitter(eng, rng.New(99)))
	gen.Start()
	eng.RunUntil(41 * des.Second)
	st := gen.Stream()
	if len(st.Classes) != 2 || st.Classes[0].Name != "readers" || st.Classes[1].Name != "authors" {
		t.Fatalf("class table wrong: %+v", st.Classes)
	}
	// Rate ratio readers:authors = (3/4)/2 : (1/4)/8 = 12:1.
	ratio := float64(st.Classes[0].Issued) / float64(st.Classes[1].Issued)
	if ratio < 9 || ratio > 15 {
		t.Fatalf("readers:authors issue ratio %.1f, want ~12", ratio)
	}
}

func TestStreamingTailFromExcludesWarmup(t *testing.T) {
	eng := des.New()
	slow := true
	submit := func(done func(ok bool)) {
		d := des.Time(0.010)
		if slow {
			d = des.Time(5.0) // poison the warmup with huge RTs
		}
		eng.After(d, func() { done(true) })
	}
	eng.At(10*des.Second, func() { slow = false })
	gen := NewGenerator(eng, rng.New(5), GeneratorConfig{
		Trace:     NewConstantTrace(500, 60*des.Second),
		ThinkTime: 1,
		Streaming: true,
		TailFrom:  20 * des.Second,
	}, submit)
	gen.Start()
	eng.RunUntil(61 * des.Second)
	if p99 := gen.TailLatency(99, 0); p99 > 0.1 {
		t.Fatalf("p99=%.3fs contaminated by pre-TailFrom warmup (want ~0.010s)", p99)
	}
	if st := gen.Stream(); st.MaxRT > 0.1 {
		t.Fatalf("MaxRT=%.3fs includes warmup completions", st.MaxRT)
	}
}

func TestStreamingUnsupportedQuantilePanics(t *testing.T) {
	gen := runStreaming(100, 1, des.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("TailLatency(90) in streaming mode did not panic")
		}
	}()
	gen.TailLatency(90, 0)
}

// TestStreamingClientStateO1 is the scale mode's memory-budget
// regression: holding the request rate fixed while growing the notional
// client population 100× must not grow allocations — the population is an
// aggregate arrival process, not per-client structs. A closed-loop
// population at the large count is run for contrast: it must allocate far
// more, since it schedules per-user think events.
func TestStreamingClientStateO1(t *testing.T) {
	const dur = 20 * des.Second
	alloc := func(fn func()) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		fn()
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}
	// Same offered rate (1000 req/s): 1k clients thinking 1 s vs. 100k
	// clients thinking 100 s.
	small := alloc(func() { runStreaming(1_000, 1, dur) })
	big := alloc(func() { runStreaming(100_000, 100, dur) })
	if float64(big) > 1.5*float64(small) {
		t.Fatalf("streaming allocations grew with client count: 1k clients → %d B, 100k clients → %d B", small, big)
	}
	closed := alloc(func() {
		eng := des.New()
		gen := NewGenerator(eng, rng.New(7), GeneratorConfig{
			Trace:     NewConstantTrace(100_000, dur),
			ThinkTime: 100,
		}, echoSubmitter(eng, rng.New(99)))
		gen.Start()
		eng.RunUntil(dur + des.Second)
	})
	if closed < 4*big {
		t.Fatalf("expected closed-loop 100k-client run to allocate ≫ streaming (closed %d B vs streaming %d B)", closed, big)
	}
}
