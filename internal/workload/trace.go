// Package workload provides the six realistic bursty workload traces of the
// paper's evaluation (Fig. 9, categorised from real-world traces by Gandhi
// et al.'s AutoScale work) and the closed-loop user-population generator
// that replays a trace against the n-tier system.
package workload

import (
	"fmt"
	"math"

	"conscale/internal/des"
)

// Trace is a time-varying concurrent-user curve.
type Trace struct {
	// Name labels the trace in reports and CSV artifacts.
	Name string
	// Duration is the total simulated span of the trace.
	Duration des.Time
	// MaxUsers is the population at normalised load 1.0.
	MaxUsers int
	// shape maps normalised time u in [0,1] to normalised load in [0,1].
	shape func(u float64) float64
}

// UsersAt returns the target number of concurrent users at virtual time t.
// Before 0 and after Duration the endpoint values hold.
func (tr *Trace) UsersAt(t des.Time) int {
	u := float64(t / tr.Duration)
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	v := tr.shape(u)
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return int(v*float64(tr.MaxUsers) + 0.5)
}

// Series samples the trace at the given interval, for plotting and the
// Fig. 9 reproduction.
func (tr *Trace) Series(interval des.Time) []int {
	var out []int
	for t := des.Time(0); t <= tr.Duration; t += interval {
		out = append(out, tr.UsersAt(t))
	}
	return out
}

// Peak returns the maximum user count over a 1-second sampling.
func (tr *Trace) Peak() int {
	peak := 0
	for _, v := range tr.Series(des.Second) {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// The six trace names, matching Fig. 9's captions.
const (
	LargeVariations = "large-variations"
	QuicklyVarying  = "quickly-varying"
	SlowlyVarying   = "slowly-varying"
	BigSpike        = "big-spike"
	DualPhase       = "dual-phase"
	SteepTriPhase   = "steep-tri-phase"
)

// Constant names the flat trace (NewConstantTrace's shape) so run
// configurations can request it by name like the six standard traces —
// the hypothesis harness's calibrated steady-state regime. It is not
// part of Names(): the paper's factorials stay six-way.
const Constant = "constant"

// smoothstep is the classic cubic ease between edges a and b.
func smoothstep(a, b, x float64) float64 {
	if x <= a {
		return 0
	}
	if x >= b {
		return 1
	}
	t := (x - a) / (b - a)
	return t * t * (3 - 2*t)
}

// gauss is an un-normalised Gaussian bump.
func gauss(x, center, width float64) float64 {
	d := (x - center) / width
	return math.Exp(-d * d / 2)
}

// NewTrace builds one of the six standard traces with the given peak user
// count and duration. It panics on an unknown name; use Names for the list.
func NewTrace(name string, maxUsers int, duration des.Time) *Trace {
	if maxUsers <= 0 || duration <= 0 {
		panic("workload: non-positive trace parameters")
	}
	var shape func(u float64) float64
	switch name {
	case Constant:
		// Flat load at maxUsers for the whole run.
		shape = func(float64) float64 { return 1 }
	case LargeVariations:
		// Several big swings: three major peaks with deep valleys.
		shape = func(u float64) float64 {
			v := 0.45 + 0.33*math.Sin(2*math.Pi*2.6*u-0.9) + 0.18*math.Sin(2*math.Pi*5.3*u+1.7)
			return 0.12 + 0.88*clamp01(v)
		}
	case QuicklyVarying:
		// Rapid oscillation around a mid level.
		shape = func(u float64) float64 {
			v := 0.5 + 0.28*math.Sin(2*math.Pi*9*u) + 0.16*math.Sin(2*math.Pi*17*u+0.6)
			return 0.10 + 0.80*clamp01(v)
		}
	case SlowlyVarying:
		// One slow rise and fall across the run.
		shape = func(u float64) float64 {
			return 0.15 + 0.85*math.Pow(math.Sin(math.Pi*u), 1.6)
		}
	case BigSpike:
		// Modest baseline with one sudden tall spike near 40% of the run.
		shape = func(u float64) float64 {
			base := 0.28 + 0.06*math.Sin(2*math.Pi*2*u)
			return clamp01(base + 0.72*gauss(u, 0.42, 0.045))
		}
	case DualPhase:
		// Low plateau, steep climb to a high plateau, then descent.
		shape = func(u float64) float64 {
			up := smoothstep(0.35, 0.45, u)
			down := smoothstep(0.82, 0.95, u)
			return 0.25 + 0.65*up - 0.55*down
		}
	case SteepTriPhase:
		// Three steep steps upward, then a cliff at the end.
		shape = func(u float64) float64 {
			v := 0.18 +
				0.30*smoothstep(0.22, 0.27, u) +
				0.42*smoothstep(0.55, 0.60, u) -
				0.70*smoothstep(0.88, 0.93, u)
			return clamp01(v)
		}
	default:
		panic(fmt.Sprintf("workload: unknown trace %q", name))
	}
	return &Trace{Name: name, Duration: duration, MaxUsers: maxUsers, shape: shape}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// NewCustomTrace builds a trace from an arbitrary normalised shape
// function mapping u in [0,1] (fraction of the duration) to load in
// [0,1] (fraction of maxUsers) — the hook external trace files attach
// through.
func NewCustomTrace(name string, maxUsers int, duration des.Time, shape func(u float64) float64) *Trace {
	if maxUsers <= 0 || duration <= 0 {
		panic("workload: non-positive trace parameters")
	}
	if shape == nil {
		panic("workload: nil shape")
	}
	return &Trace{Name: name, Duration: duration, MaxUsers: maxUsers, shape: shape}
}

// NewConstantTrace returns a flat trace holding the given user count for
// the duration — the profiling sweeps' "fixed number of threads" load.
func NewConstantTrace(users int, duration des.Time) *Trace {
	if users <= 0 || duration <= 0 {
		panic("workload: non-positive trace parameters")
	}
	return &Trace{
		Name:     "constant",
		Duration: duration,
		MaxUsers: users,
		shape:    func(float64) float64 { return 1 },
	}
}

// Names returns the six standard trace names in the paper's order.
func Names() []string {
	return []string{LargeVariations, QuicklyVarying, SlowlyVarying, BigSpike, DualPhase, SteepTriPhase}
}

// StandardTraces builds all six traces with the paper's evaluation
// parameters (7500 max users, 12 minutes).
func StandardTraces() []*Trace {
	out := make([]*Trace, 0, 6)
	for _, n := range Names() {
		out = append(out, NewTrace(n, 7500, 720*des.Second))
	}
	return out
}
