package workload

import (
	"math"
	"sort"

	"conscale/internal/des"
	"conscale/internal/rng"
	"conscale/internal/stats"
)

// Submitter delivers one end-to-end request into the system under test and
// invokes done exactly once with the outcome. The cluster provides it; the
// generator stays ignorant of tier wiring.
type Submitter func(done func(ok bool))

// GeneratorConfig configures the closed-loop user population.
type GeneratorConfig struct {
	// Trace is the workload-variation curve driving the population size.
	Trace *Trace
	// ThinkTime is the mean exponential think time between a user's
	// response and next request (RUBBoS uses ~7 s; 0 = closed loop with
	// zero think, used by the fixed-concurrency profiling sweeps).
	ThinkTime float64
	// AdjustEvery is how often the population tracks the trace (default 1 s).
	AdjustEvery des.Time
	// StatsInterval is the client-side aggregation window for the timeline
	// series (default 1 s).
	StatsInterval des.Time
	// OpenLoop switches from the closed-loop user population to open-loop
	// Poisson arrivals: the trace's user curve is converted to a request
	// rate of UsersAt(t)/ThinkTime per second, issued regardless of
	// completions (the paper's "request rate follows a Poisson
	// distribution"). Open-loop load does not self-throttle under
	// overload, which makes queue growth — and tail blowup — harsher.
	OpenLoop bool
	// Abandon, when positive, is the patience limit: responses that
	// arrive after this many seconds count as failures (the user gave
	// up), matching how real visitors experience an overloaded site.
	Abandon float64
	// Streaming switches to the O(1)-memory open-loop population used by
	// the million-client scale mode: one aggregate arrival process whose
	// rate tracks the trace (per class, see Classes), with completions
	// folded into constant-size StreamStats instead of the per-request
	// Sample slice. Samples() returns nil and TailLatency serves only the
	// maintained p50/p95/p99 in this mode; everything else — Timeline,
	// ErrorRate, GoodputTotal — behaves identically. Implies open loop.
	Streaming bool
	// Classes partitions the streaming population into think-time classes
	// (ignored unless Streaming). Empty means one class with ThinkTime.
	Classes []Class
	// TailFrom is the streaming warmup cutoff: completions finishing
	// before it are excluded from the tail estimators and MeanRT
	// (ignored unless Streaming).
	TailFrom des.Time
}

// Sample is one completed end-to-end request.
type Sample struct {
	// Finish is the simulation instant the response arrived.
	Finish des.Time
	// RT is the client-observed response time in seconds.
	RT float64
	// OK is false when the request was rejected or timed out.
	OK bool
}

// TimelinePoint aggregates client-observed behaviour over one interval —
// the rows of the Fig. 1/10/11 timelines.
type TimelinePoint struct {
	Time       des.Time // interval start
	Users      int      // target users at interval start
	Throughput float64  // successful completions per second
	MeanRT     float64  // seconds; NaN if no completions
	Errors     int      // rejected or timed-out requests this interval
}

// Generator replays a trace as a closed-loop user population: each user
// thinks (exponential), issues one request, waits for the response, and
// repeats. Every AdjustEvery the population is adjusted to the trace;
// excess users retire at their next decision point, matching how real
// load generators ramp sessions up and down.
type Generator struct {
	eng    *des.Engine
	rnd    *rng.Source
	cfg    GeneratorConfig
	submit Submitter

	active   int
	retiring int

	samples []Sample
	stream  *StreamStats // non-nil iff cfg.Streaming

	curStart   des.Time
	curOK      int
	curErr     int
	curRTSum   float64
	timeline   []TimelinePoint
	curUsers   int
	statsEvery des.Time
	startAt    des.Time
}

// NewGenerator wires a generator onto the engine. Call Start to begin.
func NewGenerator(eng *des.Engine, rnd *rng.Source, cfg GeneratorConfig, submit Submitter) *Generator {
	if cfg.Trace == nil {
		panic("workload: nil trace")
	}
	if cfg.AdjustEvery <= 0 {
		cfg.AdjustEvery = des.Second
	}
	if cfg.StatsInterval <= 0 {
		cfg.StatsInterval = des.Second
	}
	return &Generator{
		eng:        eng,
		rnd:        rnd,
		cfg:        cfg,
		submit:     submit,
		statsEvery: cfg.StatsInterval,
	}
}

// Start launches the population at the trace's initial level and begins
// tracking the trace until its Duration elapses. The initial population
// ramps in over a few seconds (real user sessions do not all begin at the
// same instant; a synchronous clump would fabricate an overload spike that
// no real trace contains). In open-loop mode it instead schedules Poisson
// arrivals at the trace-derived rate.
func (g *Generator) Start() {
	g.curStart = g.eng.Now()
	g.startAt = g.eng.Now()
	if g.cfg.Streaming {
		g.startStreaming()
		return
	}
	if g.cfg.OpenLoop {
		g.startOpenLoop()
		return
	}
	g.adjust()
	ticker := g.eng.Every(g.cfg.AdjustEvery, g.adjust)
	g.eng.After(g.cfg.Trace.Duration, func() {
		ticker.Stop()
		// Retire everyone so the run drains.
		g.retiring += g.active
		g.active = 0
	})
}

// startOpenLoop schedules independent Poisson arrivals whose rate tracks
// the trace: rate(t) = UsersAt(t)/ThinkTime (each notional user issues a
// request every think time on average).
func (g *Generator) startOpenLoop() {
	think := g.cfg.ThinkTime
	if think <= 0 {
		think = 1
	}
	end := g.startAt + g.cfg.Trace.Duration
	var next func()
	next = func() {
		now := g.eng.Now()
		if now >= end {
			return
		}
		g.curUsers = g.cfg.Trace.UsersAt(now)
		rate := float64(g.curUsers) / think
		if rate <= 0 {
			rate = 0.1
		}
		g.eng.After(des.Time(g.rnd.Exp(1/rate)), func() {
			g.issueOpen()
			next()
		})
	}
	next()
}

// issueOpen fires one open-loop request (no user waits on it).
func (g *Generator) issueOpen() {
	start := g.eng.Now()
	g.submit(func(ok bool) {
		now := g.eng.Now()
		rt := float64(now - start)
		if ok && g.cfg.Abandon > 0 && rt > g.cfg.Abandon {
			ok = false // the user stopped waiting long ago
		}
		g.record(Sample{Finish: now, RT: rt, OK: ok})
	})
}

func (g *Generator) adjust() {
	now := g.eng.Now()
	target := g.cfg.Trace.UsersAt(now)
	g.curUsers = target
	for g.active < target {
		// Re-activate a retiring user instead of spawning when possible.
		if g.retiring > 0 {
			g.retiring--
		} else {
			g.spawnUser()
		}
		g.active++
	}
	if g.active > target {
		g.retiring += g.active - target
		g.active = target
	}
	g.rollStats(now)
}

// initialRamp is the span over which the starting population's first
// requests are spread.
const initialRamp = 10 * des.Second

// spawnUser begins one user's think-request loop.
func (g *Generator) spawnUser() {
	think := g.rnd.Exp(g.cfg.ThinkTime)
	delay := des.Time(think)
	if g.eng.Now() == g.startAt {
		ramp := initialRamp
		if d := g.cfg.Trace.Duration / 10; d < ramp {
			ramp = d
		}
		delay += des.Time(g.rnd.Float64()) * ramp
	}
	g.eng.After(delay, g.userIssue)
}

func (g *Generator) userIssue() {
	if g.retiring > 0 {
		g.retiring--
		return
	}
	start := g.eng.Now()
	g.submit(func(ok bool) {
		now := g.eng.Now()
		rt := float64(now - start)
		if ok && g.cfg.Abandon > 0 && rt > g.cfg.Abandon {
			ok = false // served too late: the user already gave up
		}
		g.record(Sample{Finish: now, RT: rt, OK: ok})
		// Think, then issue again (or retire).
		g.eng.After(des.Time(g.rnd.Exp(g.cfg.ThinkTime)), g.userIssue)
	})
}

func (g *Generator) record(s Sample) {
	g.rollStats(s.Finish)
	if g.stream != nil {
		g.stream.observe(s)
	} else {
		g.samples = append(g.samples, s)
	}
	if s.OK {
		g.curOK++
		g.curRTSum += s.RT
	} else {
		g.curErr++
	}
}

func (g *Generator) rollStats(now des.Time) {
	for now >= g.curStart+g.statsEvery {
		rt := math.NaN()
		if g.curOK > 0 {
			rt = g.curRTSum / float64(g.curOK)
		}
		g.timeline = append(g.timeline, TimelinePoint{
			Time:       g.curStart,
			Users:      g.curUsers,
			Throughput: float64(g.curOK) / float64(g.statsEvery),
			MeanRT:     rt,
			Errors:     g.curErr,
		})
		g.curOK, g.curErr, g.curRTSum = 0, 0, 0
		g.curStart += g.statsEvery
	}
}

// Samples returns all completed request samples so far. In streaming
// mode no samples are retained and it returns nil — use Stream instead.
func (g *Generator) Samples() []Sample { return g.samples }

// Timeline returns the per-interval aggregation, closing intervals up to
// the current simulation time.
func (g *Generator) Timeline() []TimelinePoint {
	g.rollStats(g.eng.Now())
	return g.timeline
}

// Active returns the current active user count (excludes retiring users).
func (g *Generator) Active() int { return g.active }

// TailLatency returns the p-th percentile response time (seconds) over all
// successful samples with Finish >= from — the Table I metric. In
// streaming mode it serves the maintained P² estimates for p ∈ {50, 95,
// 99} (from is fixed at config time by TailFrom and ignored here); other
// percentiles panic.
func (g *Generator) TailLatency(p float64, from des.Time) float64 {
	if g.stream != nil {
		return g.stream.Quantile(p)
	}
	var rts []float64
	for _, s := range g.samples {
		if s.OK && s.Finish >= from {
			rts = append(rts, s.RT)
		}
	}
	sort.Float64s(rts)
	return stats.PercentileSorted(rts, p)
}

// ErrorRate returns the fraction of failed requests over the whole run.
func (g *Generator) ErrorRate() float64 {
	if g.stream != nil {
		total := g.stream.OK + g.stream.Errors
		if total == 0 {
			return 0
		}
		return float64(g.stream.Errors) / float64(total)
	}
	if len(g.samples) == 0 {
		return 0
	}
	errs := 0
	for _, s := range g.samples {
		if !s.OK {
			errs++
		}
	}
	return float64(errs) / float64(len(g.samples))
}

// GoodputTotal returns the count of successful requests.
func (g *Generator) GoodputTotal() int {
	if g.stream != nil {
		return int(g.stream.OK)
	}
	n := 0
	for _, s := range g.samples {
		if s.OK {
			n++
		}
	}
	return n
}
