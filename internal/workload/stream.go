package workload

import (
	"fmt"
	"math"

	"conscale/internal/des"
	"conscale/internal/sla"
)

// Class describes one slice of a streaming open-loop client population:
// a share of the notional users with its own mean think time. The class
// contributes weight/Σweights of the user curve and issues requests at
// users·share/ThinkTime per second. Classes let a single aggregate
// arrival process model heterogeneous populations (readers vs. authors,
// mobile vs. desktop) without a resident struct per client.
type Class struct {
	// Name labels the class in StreamStats; optional.
	Name string
	// Weight is the class's relative share of the user population.
	// Must be positive; weights are normalised internally.
	Weight float64
	// ThinkTime is the class's mean think time in seconds (exponential),
	// i.e. the mean interval between one notional user's requests.
	// Must be positive.
	ThinkTime float64
}

// ClassCount is the per-class slice of StreamStats.
type ClassCount struct {
	// Name is the class label (Class.Name, or "default").
	Name string
	// Issued counts requests the class has issued.
	Issued int64
}

// StreamStats is the constant-memory aggregate a streaming population
// maintains in place of the per-request Sample slice: whole-run counters
// plus P² quantile estimators (p50/p95/p99) over successful completions
// finishing at or after TailFrom. Its size is independent of both the
// client count and the request count — the property the scale mode's
// memory-budget test pins.
type StreamStats struct {
	// Issued counts all requests issued (completions may still be in flight).
	Issued int64
	// OK and Errors count completions over the whole run.
	OK, Errors int64
	// TailFrom is the warmup cutoff: completions before it are counted in
	// OK/Errors but excluded from the tail estimators and MeanRT.
	TailFrom des.Time
	// TailOK counts the successful completions feeding the estimators.
	TailOK int64
	// MaxRT is the largest successful response time past TailFrom (seconds).
	MaxRT float64
	// Classes holds per-class issue counts, in Class order.
	Classes []ClassCount

	rtSum         float64
	p50, p95, p99 *sla.P2Quantile
}

// newStreamStats allocates the aggregate for the given (already
// normalised) classes.
func newStreamStats(classes []Class, tailFrom des.Time) *StreamStats {
	st := &StreamStats{
		TailFrom: tailFrom,
		Classes:  make([]ClassCount, len(classes)),
		p50:      sla.NewP2(0.50),
		p95:      sla.NewP2(0.95),
		p99:      sla.NewP2(0.99),
	}
	for i, c := range classes {
		name := c.Name
		if name == "" {
			name = "default"
		}
		st.Classes[i].Name = name
	}
	return st
}

// observe folds one completion into the aggregate.
func (st *StreamStats) observe(s Sample) {
	if s.OK {
		st.OK++
	} else {
		st.Errors++
	}
	if !s.OK || s.Finish < st.TailFrom {
		return
	}
	st.TailOK++
	st.rtSum += s.RT
	if s.RT > st.MaxRT {
		st.MaxRT = s.RT
	}
	st.p50.Add(s.RT)
	st.p95.Add(s.RT)
	st.p99.Add(s.RT)
}

// MeanRT returns the mean successful response time past TailFrom in
// seconds, or NaN before the first tail completion.
func (st *StreamStats) MeanRT() float64 {
	if st.TailOK == 0 {
		return math.NaN()
	}
	return st.rtSum / float64(st.TailOK)
}

// Quantile returns the streaming estimate of the p-th percentile
// response time (seconds) over successful completions past TailFrom.
// Only the maintained percentiles 50, 95 and 99 are available; any other
// p panics. Estimates follow the P² accuracy contract documented in
// internal/sla (≤5% relative error on latency-shaped streams).
func (st *StreamStats) Quantile(p float64) float64 {
	switch p {
	case 50:
		return st.p50.Value()
	case 95:
		return st.p95.Value()
	case 99:
		return st.p99.Value()
	}
	panic(fmt.Sprintf("workload: streaming population maintains p50/p95/p99, not p%g", p))
}

// Stream returns the streaming aggregate, or nil when the generator is
// not in streaming mode.
func (g *Generator) Stream() *StreamStats { return g.stream }

// startStreaming launches the O(1)-memory open-loop population: a single
// aggregate arrival process whose rate tracks the trace,
// rate(t) = Σ_c UsersAt(t)·w_c/think_c, with each arrival assigned to a
// class in proportion to the class's rate. Nothing is kept per client —
// the scheduled state is one pending arrival event plus the in-flight
// completions — and completions feed StreamStats instead of the Sample
// slice, so memory is independent of the client count.
func (g *Generator) startStreaming() {
	classes := g.cfg.Classes
	if len(classes) == 0 {
		think := g.cfg.ThinkTime
		if think <= 0 {
			think = 1
		}
		classes = []Class{{Name: "default", Weight: 1, ThinkTime: think}}
	}
	wsum := 0.0
	for i, c := range classes {
		if c.Weight <= 0 {
			panic(fmt.Sprintf("workload: class %d has non-positive weight", i))
		}
		if c.ThinkTime <= 0 {
			panic(fmt.Sprintf("workload: class %d has non-positive think time", i))
		}
		wsum += c.Weight
	}
	g.stream = newStreamStats(classes, g.cfg.TailFrom)
	rates := make([]float64, len(classes))
	end := g.startAt + g.cfg.Trace.Duration
	var next func()
	next = func() {
		now := g.eng.Now()
		if now >= end {
			return
		}
		g.curUsers = g.cfg.Trace.UsersAt(now)
		total := 0.0
		for i, c := range classes {
			rates[i] = float64(g.curUsers) * (c.Weight / wsum) / c.ThinkTime
			total += rates[i]
		}
		if total <= 0 {
			total = 0.1 // idle-trace keep-alive, as in the open-loop path
		}
		g.eng.After(des.Time(g.rnd.Exp(1/total)), func() {
			class := 0
			if len(rates) > 1 {
				class = g.rnd.Pick(rates)
			}
			g.issueStream(class)
			next()
		})
	}
	next()
}

// issueStream fires one streaming open-loop request on behalf of a class.
func (g *Generator) issueStream(class int) {
	g.stream.Issued++
	g.stream.Classes[class].Issued++
	start := g.eng.Now()
	g.submit(func(ok bool) {
		now := g.eng.Now()
		rt := float64(now - start)
		if ok && g.cfg.Abandon > 0 && rt > g.cfg.Abandon {
			ok = false // the user stopped waiting long ago
		}
		g.record(Sample{Finish: now, RT: rt, OK: ok})
	})
}
