package workload

import (
	"math"
	"testing"
	"testing/quick"

	"conscale/internal/des"
	"conscale/internal/rng"
)

func TestAllTracesBounded(t *testing.T) {
	for _, tr := range StandardTraces() {
		for i, v := range tr.Series(des.Second) {
			if v < 0 || v > tr.MaxUsers {
				t.Fatalf("%s[%d] = %d out of [0, %d]", tr.Name, i, v, tr.MaxUsers)
			}
		}
	}
}

func TestTraceNamesComplete(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("want 6 traces, got %d", len(names))
	}
	for _, n := range names {
		tr := NewTrace(n, 1000, 720)
		if tr.Name != n {
			t.Fatalf("trace name mismatch: %s", tr.Name)
		}
	}
}

func TestUnknownTracePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTrace("nope", 1000, 720)
}

func TestBadParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTrace(BigSpike, 0, 720)
}

func TestBigSpikeHasSpike(t *testing.T) {
	tr := NewTrace(BigSpike, 7500, 720)
	series := tr.Series(des.Second)
	peak, base := 0, 0
	for i, v := range series {
		if v > peak {
			peak = v
		}
		// Baseline measured well away from the spike (first 20%).
		if i < len(series)/5 && v > base {
			base = v
		}
	}
	if float64(peak) < 2.2*float64(base) {
		t.Fatalf("spike (%d) should tower over baseline (%d)", peak, base)
	}
	if peak < 6000 {
		t.Fatalf("peak = %d, want near MaxUsers", peak)
	}
}

func TestDualPhaseHasTwoLevels(t *testing.T) {
	tr := NewTrace(DualPhase, 1000, 720)
	early := tr.UsersAt(100) // low plateau
	late := tr.UsersAt(450)  // high plateau
	if late < early+300 {
		t.Fatalf("phases not distinct: early=%d late=%d", early, late)
	}
	// Plateaus should be flat: nearby samples close.
	if d := math.Abs(float64(tr.UsersAt(120) - tr.UsersAt(140))); d > 20 {
		t.Fatalf("low plateau not flat (Δ=%v)", d)
	}
}

func TestSteepTriPhaseMonotoneSteps(t *testing.T) {
	tr := NewTrace(SteepTriPhase, 1000, 720)
	l1 := tr.UsersAt(100) // phase 1
	l2 := tr.UsersAt(330) // phase 2
	l3 := tr.UsersAt(550) // phase 3
	if !(l1 < l2 && l2 < l3) {
		t.Fatalf("steps not increasing: %d %d %d", l1, l2, l3)
	}
}

func TestQuicklyVaryingOscillates(t *testing.T) {
	tr := NewTrace(QuicklyVarying, 1000, 720)
	series := tr.Series(des.Second)
	direction, changes := 0, 0
	for i := 1; i < len(series); i++ {
		d := series[i] - series[i-1]
		if d > 0 && direction <= 0 {
			direction, changes = 1, changes+1
		} else if d < 0 && direction >= 0 {
			direction, changes = -1, changes+1
		}
	}
	if changes < 10 {
		t.Fatalf("quickly-varying only changed direction %d times", changes)
	}
}

func TestSlowlyVaryingSinglePeak(t *testing.T) {
	tr := NewTrace(SlowlyVarying, 1000, 720)
	series := tr.Series(10 * des.Second)
	peakIdx := 0
	for i, v := range series {
		if v > series[peakIdx] {
			peakIdx = i
		}
	}
	// Monotone rise to the peak, monotone fall after (tolerating rounding).
	for i := 1; i <= peakIdx; i++ {
		if series[i] < series[i-1]-1 {
			t.Fatalf("dip before peak at %d", i)
		}
	}
	for i := peakIdx + 1; i < len(series); i++ {
		if series[i] > series[i-1]+1 {
			t.Fatalf("rise after peak at %d", i)
		}
	}
}

func TestUsersAtClampsOutOfRange(t *testing.T) {
	tr := NewTrace(LargeVariations, 1000, 720)
	if tr.UsersAt(-5) != tr.UsersAt(0) {
		t.Fatal("pre-start not clamped")
	}
	if tr.UsersAt(100000) != tr.UsersAt(720) {
		t.Fatal("post-end not clamped")
	}
}

// Property: every trace's UsersAt stays within bounds for arbitrary times.
func TestQuickTraceBounds(t *testing.T) {
	traces := StandardTraces()
	f := func(ti uint16, which uint8) bool {
		tr := traces[int(which)%len(traces)]
		v := tr.UsersAt(des.Time(ti))
		return v >= 0 && v <= tr.MaxUsers
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// instantService completes every request after a fixed simulated delay.
type instantService struct {
	eng     *des.Engine
	delay   des.Time
	served  int
	failAll bool
}

func (s *instantService) submit(done func(bool)) {
	s.served++
	ok := !s.failAll
	s.eng.After(s.delay, func() { done(ok) })
}

func constantTrace(users int, dur des.Time) *Trace {
	return &Trace{
		Name:     "const",
		Duration: dur,
		MaxUsers: users,
		shape:    func(float64) float64 { return 1 },
	}
}

func TestGeneratorClosedLoopThroughput(t *testing.T) {
	eng := des.New()
	svc := &instantService{eng: eng, delay: 0.1}
	tr := constantTrace(10, 100)
	g := NewGenerator(eng, rng.New(1), GeneratorConfig{Trace: tr, ThinkTime: 0.9}, svc.submit)
	g.Start()
	eng.Run()
	// Each user cycle = think 0.9 + response 0.1 = 1s → ~10 req/s for 100s.
	total := g.GoodputTotal()
	if total < 800 || total > 1200 {
		t.Fatalf("total completions = %d, want ~1000", total)
	}
}

func TestGeneratorTracksTrace(t *testing.T) {
	eng := des.New()
	svc := &instantService{eng: eng, delay: 0.01}
	tr := &Trace{
		Name:     "step",
		Duration: 100,
		MaxUsers: 100,
		shape: func(u float64) float64 {
			if u < 0.5 {
				return 0.2
			}
			return 1.0
		},
	}
	g := NewGenerator(eng, rng.New(2), GeneratorConfig{Trace: tr, ThinkTime: 1}, svc.submit)
	g.Start()
	eng.RunUntil(40)
	if g.Active() != 20 {
		t.Fatalf("active at t=40 is %d, want 20", g.Active())
	}
	eng.RunUntil(60)
	if g.Active() != 100 {
		t.Fatalf("active at t=60 is %d, want 100", g.Active())
	}
}

func TestGeneratorRetiresUsers(t *testing.T) {
	eng := des.New()
	svc := &instantService{eng: eng, delay: 0.01}
	tr := &Trace{
		Name:     "rampdown",
		Duration: 100,
		MaxUsers: 50,
		shape: func(u float64) float64 {
			if u < 0.3 {
				return 1
			}
			return 0.1
		},
	}
	g := NewGenerator(eng, rng.New(3), GeneratorConfig{Trace: tr, ThinkTime: 0.5}, svc.submit)
	g.Start()
	eng.RunUntil(50)
	if g.Active() != 5 {
		t.Fatalf("active after ramp-down = %d, want 5", g.Active())
	}
	before := svc.served
	eng.RunUntil(60)
	rate := float64(svc.served-before) / 10
	// 5 users × ~2 req/s each ≈ 10/s; far below the 100/s of 50 users.
	if rate > 25 {
		t.Fatalf("request rate after ramp-down = %v/s, retirement broken", rate)
	}
}

func TestGeneratorTimeline(t *testing.T) {
	eng := des.New()
	svc := &instantService{eng: eng, delay: 0.05}
	tr := constantTrace(5, 10)
	g := NewGenerator(eng, rng.New(4), GeneratorConfig{Trace: tr, ThinkTime: 0.45}, svc.submit)
	g.Start()
	eng.Run()
	tl := g.Timeline()
	if len(tl) < 9 {
		t.Fatalf("timeline has %d points, want ~10", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].Time <= tl[i-1].Time {
			t.Fatal("timeline not increasing")
		}
	}
	mid := tl[5]
	if mid.Users != 5 {
		t.Fatalf("timeline users = %d, want 5", mid.Users)
	}
	if mid.Throughput <= 0 {
		t.Fatal("timeline throughput should be positive mid-run")
	}
}

func TestGeneratorErrorTracking(t *testing.T) {
	eng := des.New()
	svc := &instantService{eng: eng, delay: 0.01, failAll: true}
	tr := constantTrace(3, 10)
	g := NewGenerator(eng, rng.New(5), GeneratorConfig{Trace: tr, ThinkTime: 0.5}, svc.submit)
	g.Start()
	eng.Run()
	if g.ErrorRate() != 1 {
		t.Fatalf("ErrorRate = %v, want 1", g.ErrorRate())
	}
	if g.GoodputTotal() != 0 {
		t.Fatalf("GoodputTotal = %d, want 0", g.GoodputTotal())
	}
}

func TestGeneratorTailLatency(t *testing.T) {
	eng := des.New()
	svc := &instantService{eng: eng, delay: 0.2}
	tr := constantTrace(4, 20)
	g := NewGenerator(eng, rng.New(6), GeneratorConfig{Trace: tr, ThinkTime: 0.8}, svc.submit)
	g.Start()
	eng.Run()
	p95 := g.TailLatency(95, 0)
	if math.Abs(p95-0.2) > 0.01 {
		t.Fatalf("p95 = %v, want ~0.2", p95)
	}
	if p99 := g.TailLatency(99, 0); p99 < p95 {
		t.Fatalf("p99 (%v) < p95 (%v)", p99, p95)
	}
}

func TestGeneratorZeroThink(t *testing.T) {
	eng := des.New()
	svc := &instantService{eng: eng, delay: 0.1}
	tr := constantTrace(3, 10)
	g := NewGenerator(eng, rng.New(7), GeneratorConfig{Trace: tr, ThinkTime: 0}, svc.submit)
	g.Start()
	eng.Run()
	// Zero think: each user completes 10 req/s → ~300 total.
	total := g.GoodputTotal()
	if total < 270 || total > 330 {
		t.Fatalf("zero-think completions = %d, want ~300", total)
	}
}

func TestGeneratorNilTracePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGenerator(des.New(), rng.New(1), GeneratorConfig{}, func(func(bool)) {})
}

func TestGeneratorStopsAtTraceEnd(t *testing.T) {
	eng := des.New()
	svc := &instantService{eng: eng, delay: 0.01}
	tr := constantTrace(10, 10)
	g := NewGenerator(eng, rng.New(8), GeneratorConfig{Trace: tr, ThinkTime: 0.2}, svc.submit)
	g.Start()
	end := eng.Run()
	// After Duration, all users retire; the sim drains quickly after 10s.
	if end > 12 {
		t.Fatalf("simulation ran until %v, want shortly after 10", end)
	}
	if g.Active() != 0 {
		t.Fatalf("active at end = %d", g.Active())
	}
}

func TestOpenLoopRateTracksTrace(t *testing.T) {
	eng := des.New()
	svc := &instantService{eng: eng, delay: 0.001}
	tr := constantTrace(100, 60) // 100 users / 2s think = 50 req/s
	g := NewGenerator(eng, rng.New(11), GeneratorConfig{
		Trace: tr, ThinkTime: 2, OpenLoop: true,
	}, svc.submit)
	g.Start()
	eng.Run()
	total := g.GoodputTotal()
	if total < 2400 || total > 3600 { // ~3000 expected
		t.Fatalf("open-loop completions = %d, want ~3000", total)
	}
}

func TestOpenLoopDoesNotSelfThrottle(t *testing.T) {
	// A slow service: closed-loop throughput collapses to users/RT;
	// open-loop keeps issuing at the trace rate regardless.
	eng := des.New()
	slow := &instantService{eng: eng, delay: 2}
	tr := constantTrace(100, 30)
	g := NewGenerator(eng, rng.New(12), GeneratorConfig{
		Trace: tr, ThinkTime: 1, OpenLoop: true,
	}, slow.submit)
	g.Start()
	eng.Run()
	// 100 req/s for 30 s ≈ 3000 submissions despite the 2 s service time.
	if slow.served < 2500 {
		t.Fatalf("open loop issued only %d requests", slow.served)
	}
}

func TestAbandonMarksLateResponses(t *testing.T) {
	eng := des.New()
	slow := &instantService{eng: eng, delay: 0.5}
	tr := constantTrace(5, 20)
	g := NewGenerator(eng, rng.New(13), GeneratorConfig{
		Trace: tr, ThinkTime: 0.5, Abandon: 0.2, // every response is late
	}, slow.submit)
	g.Start()
	eng.Run()
	if g.GoodputTotal() != 0 {
		t.Fatalf("late responses counted as goodput: %d", g.GoodputTotal())
	}
	if g.ErrorRate() != 1 {
		t.Fatalf("ErrorRate = %v, want 1", g.ErrorRate())
	}
}

func TestAbandonGenerousLimitHarmless(t *testing.T) {
	eng := des.New()
	svc := &instantService{eng: eng, delay: 0.01}
	tr := constantTrace(5, 10)
	g := NewGenerator(eng, rng.New(14), GeneratorConfig{
		Trace: tr, ThinkTime: 0.5, Abandon: 10,
	}, svc.submit)
	g.Start()
	eng.Run()
	if g.ErrorRate() != 0 {
		t.Fatalf("fast responses abandoned: %v", g.ErrorRate())
	}
}
