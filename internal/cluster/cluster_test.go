package cluster

import (
	"math"
	"testing"

	"conscale/internal/des"
	"conscale/internal/metrics"
	"conscale/internal/rubbos"
	"conscale/internal/server"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.PrepDelay = 2 * des.Second
	return cfg
}

func TestNewBuildsTopology(t *testing.T) {
	cfg := smallConfig()
	cfg.Web, cfg.App, cfg.DB = 1, 2, 3
	c := New(cfg)
	if got := len(c.Servers(Web)); got != 1 {
		t.Fatalf("web servers = %d", got)
	}
	if got := len(c.Servers(App)); got != 2 {
		t.Fatalf("app servers = %d", got)
	}
	if got := len(c.Servers(DB)); got != 3 {
		t.Fatalf("db servers = %d", got)
	}
	if c.TotalVMs() != 6 {
		t.Fatalf("TotalVMs = %d", c.TotalVMs())
	}
	if c.Balancer(DB).Len() != 3 {
		t.Fatalf("db balancer backends = %d", c.Balancer(DB).Len())
	}
}

func TestInvalidTopologyPanics(t *testing.T) {
	cfg := smallConfig()
	cfg.DB = 0
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(cfg)
}

func TestServerNaming(t *testing.T) {
	c := New(smallConfig())
	if c.Servers(App)[0].Name() != "tomcat1" {
		t.Fatalf("app server name = %s", c.Servers(App)[0].Name())
	}
	if c.Servers(DB)[0].Name() != "mysql1" {
		t.Fatalf("db server name = %s", c.Servers(DB)[0].Name())
	}
	if c.Servers(Web)[0].Name() != "web1" {
		t.Fatalf("web server name = %s", c.Servers(Web)[0].Name())
	}
}

func TestEndToEndRequestCompletes(t *testing.T) {
	c := New(smallConfig())
	okCount := 0
	for i := 0; i < 50; i++ {
		c.Submit(func(ok bool) {
			if ok {
				okCount++
			}
		})
	}
	c.Eng.Run()
	if okCount != 50 {
		t.Fatalf("completed %d/50", okCount)
	}
}

func TestEndToEndResponseTimeReasonable(t *testing.T) {
	c := New(smallConfig())
	var rts []float64
	var start des.Time
	issue := func() {
		start = c.Eng.Now()
		c.Submit(func(ok bool) {
			rts = append(rts, float64(c.Eng.Now()-start))
		})
	}
	// One at a time: unloaded RT = web + app + queries (sequential).
	var next func()
	next = func() {
		if len(rts) >= 20 {
			return
		}
		issue()
	}
	_ = next
	for i := 0; i < 20; i++ {
		c.Eng.After(des.Time(i)*des.Second, issue)
	}
	c.Eng.Run()
	mean := 0.0
	for _, rt := range rts {
		mean += rt
	}
	mean /= float64(len(rts))
	// Analytic unloaded RT ≈ web 0.3ms + appWait 2.8 + appCPU 0.8 +
	// 2×(query 1.8) ≈ 7.5ms. Allow generous spread for jitter.
	if mean < 0.004 || mean > 0.020 {
		t.Fatalf("mean unloaded RT = %v s, want ~0.0075", mean)
	}
}

func TestAddVMHasPreparationDelay(t *testing.T) {
	c := New(smallConfig())
	var readyAt des.Time
	if !c.AddVM(App, func(srv *server.Server) { readyAt = c.Eng.Now() }) {
		t.Fatal("AddVM refused")
	}
	if c.ReadyCount(App) != 1 {
		t.Fatalf("new VM ready before preparation: %d", c.ReadyCount(App))
	}
	if c.TotalVMs() != 4 {
		t.Fatalf("pending VM not counted: TotalVMs = %d", c.TotalVMs())
	}
	c.Eng.RunUntil(5)
	if readyAt != 2 {
		t.Fatalf("VM ready at %v, want 2 (PrepDelay)", readyAt)
	}
	if c.ReadyCount(App) != 2 {
		t.Fatalf("ReadyCount = %d after preparation", c.ReadyCount(App))
	}
	if c.Balancer(App).Len() != 2 {
		t.Fatal("new VM not in balancer")
	}
}

func TestAddVMRespectsCapacity(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxVMsPerTier = 2
	c := New(cfg)
	if !c.AddVM(DB, nil) {
		t.Fatal("first AddVM refused")
	}
	if c.AddVM(DB, nil) {
		t.Fatal("AddVM exceeded MaxVMsPerTier")
	}
}

func TestNewAppVMInheritsSoftResources(t *testing.T) {
	c := New(smallConfig())
	c.SetAppThreads(25)
	c.SetDBConns(15)
	c.AddVM(App, func(srv *server.Server) {
		if srv.ThreadLimit() != 25 {
			t.Errorf("new VM thread limit = %d, want 25", srv.ThreadLimit())
		}
		if srv.CallPool().Limit() != 15 {
			t.Errorf("new VM conn pool = %d, want 15", srv.CallPool().Limit())
		}
	})
	c.Eng.RunUntil(5)
}

func TestRemoveVMDrains(t *testing.T) {
	cfg := smallConfig()
	cfg.App = 2
	c := New(cfg)
	name := c.RemoveVM(App)
	if name == "" {
		t.Fatal("RemoveVM returned empty")
	}
	if c.Balancer(App).Len() != 1 {
		t.Fatal("removed VM still in balancer")
	}
	c.Eng.RunUntil(10)
	if len(c.Servers(App)) != 1 {
		t.Fatalf("drained VM not reaped: %d servers", len(c.Servers(App)))
	}
}

func TestRemoveVMKeepsLastInstance(t *testing.T) {
	c := New(smallConfig())
	if name := c.RemoveVM(DB); name != "" {
		t.Fatalf("removed the last DB VM: %s", name)
	}
}

func TestSetSoftResourcesApplyToAll(t *testing.T) {
	cfg := smallConfig()
	cfg.App = 3
	c := New(cfg)
	c.SetAppThreads(17)
	for _, s := range c.Servers(App) {
		if s.ThreadLimit() != 17 {
			t.Fatalf("server %s limit = %d", s.Name(), s.ThreadLimit())
		}
	}
	c.SetDBConns(9)
	for _, s := range c.Servers(App) {
		if s.CallPool().Limit() != 9 {
			t.Fatalf("server %s pool = %d", s.Name(), s.CallPool().Limit())
		}
	}
	web, app, db := c.SoftResources()
	if web != 1000 || app != 17 || db != 9 {
		t.Fatalf("SoftResources = %d-%d-%d", web, app, db)
	}
}

func TestDBConnPoolCapsDBConcurrency(t *testing.T) {
	cfg := smallConfig()
	cfg.DBConns = 3
	cfg.AppThreads = 100
	c := New(cfg)
	dbSrv := c.Servers(DB)[0]
	maxActive := 0
	for i := 0; i < 60; i++ {
		c.Submit(func(bool) {})
	}
	c.Eng.Every(0.001, func() {
		if dbSrv.Active() > maxActive {
			maxActive = dbSrv.Active()
		}
		if c.Eng.Now() > 3 {
			c.Eng.Stop()
		}
	})
	c.Eng.Run()
	if maxActive > 3 {
		t.Fatalf("DB concurrency %d exceeded single app pool of 3", maxActive)
	}
	if maxActive == 0 {
		t.Fatal("no DB activity observed")
	}
}

func TestCollectIntoWarehouse(t *testing.T) {
	c := New(smallConfig())
	for i := 0; i < 100; i++ {
		c.Submit(func(bool) {})
	}
	c.Eng.Run()
	c.Eng.RunUntil(c.Eng.Now() + 2)
	w := metrics.NewWarehouse(600 * des.Second)
	c.CollectInto(w)
	if len(w.Servers()) != 3 {
		t.Fatalf("warehouse has %d servers, want 3", len(w.Servers()))
	}
	mysqlSamples := w.FineSince("mysql1", 0)
	if len(mysqlSamples) == 0 {
		t.Fatal("no mysql samples collected")
	}
	total := 0
	for _, s := range mysqlSamples {
		total += s.Completions
	}
	// 100 requests × ~2 queries each ≈ 200 DB completions.
	if total < 100 {
		t.Fatalf("mysql completions = %d, want >= 100", total)
	}
	if _, ok := w.MeanCPU("mysql1", 0); !ok {
		t.Fatal("no mysql CPU samples")
	}
}

func TestTierCPUUnderLoad(t *testing.T) {
	c := New(smallConfig())
	stop := false
	var pump func()
	pump = func() {
		if stop {
			return
		}
		for i := 0; i < 20; i++ {
			c.Submit(func(bool) {})
		}
		c.Eng.After(0.01, pump) // 2000 req/s offered: saturates 1/1/1
	}
	c.Eng.At(0, pump)
	c.Eng.At(5, func() { stop = true })
	c.Eng.RunUntil(5)
	if cpu := c.TierCPU(App); cpu < 0.5 {
		t.Fatalf("app tier CPU = %v under saturation, want high", cpu)
	}
}

func TestSetDatasetScaleChangesDemand(t *testing.T) {
	c := New(smallConfig())
	before := c.Workload().Means().AppCPU
	c.SetDatasetScale(2)
	after := c.Workload().Means().AppCPU
	if after <= before {
		t.Fatalf("dataset enlarge did not raise app demand: %v -> %v", before, after)
	}
}

func TestSetMixSwitchesWorkload(t *testing.T) {
	c := New(smallConfig())
	c.SetMix(rubbos.ReadWrite)
	if c.Workload().MixMode != rubbos.ReadWrite {
		t.Fatal("mix not switched")
	}
	if c.Workload().Means().QueryDisk == 0 {
		t.Fatal("read-write mix should have disk demand")
	}
}

func TestTierString(t *testing.T) {
	if Web.String() != "web" || App.String() != "tomcat" || DB.String() != "mysql" {
		t.Fatal("tier names wrong")
	}
	if Tier(9).String() == "" {
		t.Fatal("unknown tier should format")
	}
}

func TestRequestFailurePropagatesToClient(t *testing.T) {
	cfg := smallConfig()
	cfg.AcceptQueue = 1
	cfg.AppThreads = 1
	cfg.WebThreads = 1000
	c := New(cfg)
	ok, fail := 0, 0
	for i := 0; i < 200; i++ {
		c.Submit(func(o bool) {
			if o {
				ok++
			} else {
				fail++
			}
		})
	}
	c.Eng.Run()
	if fail == 0 {
		t.Fatal("expected overflow failures with tiny accept queue")
	}
	if ok+fail != 200 {
		t.Fatalf("lost requests: ok=%d fail=%d", ok, fail)
	}
}

func TestThroughputMatchesOfferedLoadWhenUnderCapacity(t *testing.T) {
	c := New(smallConfig())
	done := 0
	var arrivals int
	stop := false
	var pump func()
	pump = func() {
		if stop {
			return
		}
		c.Submit(func(ok bool) {
			if ok {
				done++
			}
		})
		arrivals++
		c.Eng.After(0.005, pump) // 200 req/s, well under ~1250/s capacity
	}
	c.Eng.At(0, pump)
	c.Eng.At(10, func() { stop = true })
	c.Eng.RunUntil(12)
	if math.Abs(float64(done-arrivals)) > float64(arrivals)/20 {
		t.Fatalf("done=%d arrivals=%d; under-capacity load should all complete", done, arrivals)
	}
}

func TestCacheTierServesHits(t *testing.T) {
	cfg := smallConfig()
	cfg.CacheServers = 1
	cfg.CacheHitRatio = 0.8
	c := New(cfg)
	if len(c.Servers(Cache)) != 1 {
		t.Fatalf("cache servers = %d", len(c.Servers(Cache)))
	}
	if c.Servers(Cache)[0].Name() != "memcached1" {
		t.Fatalf("cache name = %s", c.Servers(Cache)[0].Name())
	}
	ok := 0
	for i := 0; i < 400; i++ {
		c.Submit(func(o bool) {
			if o {
				ok++
			}
		})
	}
	c.Eng.Run()
	c.Eng.RunUntil(c.Eng.Now() + 2)
	if ok != 400 {
		t.Fatalf("completed %d/400 with cache tier", ok)
	}
	// The cache handled lookups; the DB saw far fewer queries than the
	// no-cache case would produce (~2 per request).
	cacheSrv := c.Servers(Cache)[0]
	_, cacheDone, _ := cacheSrv.Recorder().Totals()
	_, dbDone, _ := c.Servers(DB)[0].Recorder().Totals()
	if cacheDone == 0 {
		t.Fatal("cache never used")
	}
	if dbDone >= cacheDone {
		t.Fatalf("db completions %d >= cache lookups %d with 80%% hit ratio", dbDone, cacheDone)
	}
}

func TestCacheMissesReachDB(t *testing.T) {
	cfg := smallConfig()
	cfg.CacheServers = 1
	cfg.CacheHitRatio = 0.5
	c := New(cfg)
	for i := 0; i < 300; i++ {
		c.Submit(func(bool) {})
	}
	c.Eng.Run()
	_, dbDone, _ := c.Servers(DB)[0].Recorder().Totals()
	if dbDone == 0 {
		t.Fatal("no DB queries despite 50% miss ratio")
	}
}

func TestNoCacheTierByDefault(t *testing.T) {
	c := New(smallConfig())
	if len(c.Servers(Cache)) != 0 {
		t.Fatal("cache tier present without being enabled")
	}
	if c.Balancer(Cache).Len() != 0 {
		t.Fatal("cache balancer has backends")
	}
}

func TestKillVMFailsInFlight(t *testing.T) {
	cfg := smallConfig()
	cfg.App = 2
	c := New(cfg)
	okCount, failCount := 0, 0
	for i := 0; i < 200; i++ {
		c.Submit(func(o bool) {
			if o {
				okCount++
			} else {
				failCount++
			}
		})
	}
	var killed string
	c.Eng.At(0.005, func() { killed = c.KillVM(App) })
	c.Eng.Run()
	if killed == "" {
		t.Fatal("KillVM returned empty")
	}
	if failCount == 0 {
		t.Fatal("crash produced no client-visible failures")
	}
	if okCount+failCount != 200 {
		t.Fatalf("lost requests: ok=%d fail=%d", okCount, failCount)
	}
	if len(c.Servers(App)) != 1 {
		t.Fatalf("killed VM still listed: %d app servers", len(c.Servers(App)))
	}
}

func TestSystemRecoversAfterKill(t *testing.T) {
	cfg := smallConfig()
	cfg.App = 2
	c := New(cfg)
	c.KillVM(App)
	// The survivor carries new traffic.
	ok := 0
	for i := 0; i < 100; i++ {
		c.Submit(func(o bool) {
			if o {
				ok++
			}
		})
	}
	c.Eng.Run()
	if ok != 100 {
		t.Fatalf("only %d/100 completed after kill", ok)
	}
}

func TestKillLastVMAllowed(t *testing.T) {
	c := New(smallConfig())
	if got := c.KillVM(DB); got != "mysql1" {
		t.Fatalf("KillVM = %q", got)
	}
	// Requests now fail fast at the empty balancer.
	failed := false
	c.Submit(func(o bool) { failed = !o })
	c.Eng.Run()
	if !failed {
		t.Fatal("request succeeded with no DB tier")
	}
}

// TestDoneExactlyOnceUnderChaos is the system's conservation law: every
// submitted request receives exactly one completion callback, even while
// VMs boot, drain, crash, and soft resources are resized mid-flight.
func TestDoneExactlyOnceUnderChaos(t *testing.T) {
	cfg := smallConfig()
	cfg.App = 2
	cfg.DB = 2
	cfg.Seed = 99
	c := New(cfg)

	const total = 3000
	doneCount := make([]int, total)
	issued := 0
	var pump func()
	pump = func() {
		for i := 0; i < 20 && issued < total; i++ {
			idx := issued
			issued++
			c.Submit(func(bool) { doneCount[idx]++ })
		}
		if issued < total {
			c.Eng.After(0.02, pump)
		}
	}
	c.Eng.At(0, pump)

	// Chaos: scaling actions and crashes while requests are in flight.
	c.Eng.At(0.3, func() { c.AddVM(App, nil) })
	c.Eng.At(0.6, func() { c.KillVM(DB) })
	c.Eng.At(0.9, func() { c.SetAppThreads(5) })
	c.Eng.At(1.2, func() { c.RemoveVM(App) })
	c.Eng.At(1.5, func() { c.SetAppThreads(80) })
	c.Eng.At(1.8, func() { c.SetDBConns(3) })
	c.Eng.At(2.1, func() { c.AddVM(DB, nil) })
	c.Eng.At(2.4, func() { c.KillVM(App) })

	c.Eng.Run()
	for i, n := range doneCount {
		if n != 1 {
			t.Fatalf("request %d completed %d times", i, n)
		}
	}
}
