package cluster

import (
	"conscale/internal/admission"
	"conscale/internal/des"
	"conscale/internal/server"
	"conscale/internal/telemetry"
)

// SetTelemetry arms continuous metrics on the cluster (nil disarms future
// VMs; already-armed instruments keep their registry). Occupancy signals —
// queue depths, thread and connection pool state, utilization, balancer
// in-flight, VM population — are registered as collectors that read the
// cluster's existing accessors at scrape time, so the request path pays
// nothing for them. Only the per-server response-time histograms and
// reject/drop counters live on the hot path, and those are the registry's
// allocation-free instruments.
//
// Like SetTracer, arming telemetry draws no randomness and mutates no
// simulation state, so an instrumented run is byte-identical to a bare one.
func (c *Cluster) SetTelemetry(reg *telemetry.Registry) {
	c.telReg = reg
	if reg == nil {
		return
	}
	for _, t := range Tiers() {
		for _, v := range c.vms[t] {
			c.armServer(t, v.srv)
		}
	}

	gaugeCollector := func(name, help string, per func(t Tier, s *server.Server) (float64, bool)) {
		reg.Collect(name, help, telemetry.KindGauge, func(emit func(float64, ...string)) {
			for _, t := range Tiers() {
				tier := t.String()
				for _, v := range c.vms[t] {
					if val, ok := per(t, v.srv); ok {
						emit(val, "tier", tier, "server", v.srv.Name())
					}
				}
			}
		})
	}
	gaugeCollector("conscale_accept_queue_depth", "Requests waiting in the server's accept queue.",
		func(_ Tier, s *server.Server) (float64, bool) { return float64(s.QueueLen()), true })
	gaugeCollector("conscale_threads_active", "Requests currently holding server threads.",
		func(_ Tier, s *server.Server) (float64, bool) { return float64(s.Active()), true })
	gaugeCollector("conscale_thread_limit", "Soft-resource thread pool size.",
		func(_ Tier, s *server.Server) (float64, bool) { return float64(s.ThreadLimit()), true })
	gaugeCollector("conscale_cpu_utilization", "1-second windowed CPU utilization (0..1).",
		func(_ Tier, s *server.Server) (float64, bool) { return s.CPUUtilization(), true })
	gaugeCollector("conscale_disk_utilization", "1-second windowed disk utilization (0..1).",
		func(t Tier, s *server.Server) (float64, bool) { return s.DiskUtilization(), t == DB })
	gaugeCollector("conscale_connpool_in_use", "Outbound DB connections held by the app server.",
		func(_ Tier, s *server.Server) (float64, bool) {
			p := s.CallPool()
			if p == nil {
				return 0, false
			}
			return float64(p.InUse()), true
		})
	gaugeCollector("conscale_connpool_waiting", "Requests waiting for an outbound DB connection.",
		func(_ Tier, s *server.Server) (float64, bool) {
			p := s.CallPool()
			if p == nil {
				return 0, false
			}
			return float64(p.Waiting()), true
		})
	gaugeCollector("conscale_connpool_limit", "Outbound DB connection pool size.",
		func(_ Tier, s *server.Server) (float64, bool) {
			p := s.CallPool()
			if p == nil {
				return 0, false
			}
			return float64(p.Limit()), true
		})

	reg.Collect("conscale_requests_completed_total", "Requests completed by the server since boot.",
		telemetry.KindCounter, func(emit func(float64, ...string)) {
			for _, t := range Tiers() {
				tier := t.String()
				for _, v := range c.vms[t] {
					_, completed, _ := v.srv.Recorder().Totals()
					emit(float64(completed), "tier", tier, "server", v.srv.Name())
				}
			}
		})
	reg.Collect("conscale_requests_errored_total", "Requests rejected or dropped by the server since boot.",
		telemetry.KindCounter, func(emit func(float64, ...string)) {
			for _, t := range Tiers() {
				tier := t.String()
				for _, v := range c.vms[t] {
					_, _, errored := v.srv.Recorder().Totals()
					emit(float64(errored), "tier", tier, "server", v.srv.Name())
				}
			}
		})

	reg.Collect("conscale_lb_in_flight", "Per-backend in-flight requests at the tier balancer.",
		telemetry.KindGauge, func(emit func(float64, ...string)) {
			for _, t := range Tiers() {
				b := c.balancer(t)
				for _, name := range b.Backends() {
					emit(float64(b.InFlight(name)), "lb", b.Name(), "backend", name)
				}
			}
		})
	reg.Collect("conscale_lb_requests_total", "Requests dispatched through the tier balancer.",
		telemetry.KindCounter, func(emit func(float64, ...string)) {
			for _, t := range Tiers() {
				b := c.balancer(t)
				total, rejected := b.Stats()
				emit(float64(total), "lb", b.Name(), "outcome", "dispatched")
				emit(float64(rejected), "lb", b.Name(), "outcome", "rejected")
			}
		})

	reg.Collect("conscale_tier_vms", "Non-draining VMs in the tier (booting VMs included).",
		telemetry.KindGauge, func(emit func(float64, ...string)) {
			for _, t := range Tiers() {
				live := 0
				for _, v := range c.vms[t] {
					if !v.srv.Draining() {
						live++
					}
				}
				emit(float64(live+c.pendingBoots[t]), "tier", t.String())
			}
		})
	reg.Collect("conscale_tier_pending_boots", "VMs still in their preparation period.",
		telemetry.KindGauge, func(emit func(float64, ...string)) {
			for _, t := range Tiers() {
				emit(float64(c.pendingBoots[t]), "tier", t.String())
			}
		})
	reg.Collect("conscale_tier_cpu", "Mean CPU utilization across the tier's ready VMs.",
		telemetry.KindGauge, func(emit func(float64, ...string)) {
			for _, t := range Tiers() {
				if len(c.vms[t]) == 0 {
					continue
				}
				emit(c.TierCPU(t), "tier", t.String())
			}
		})

	reg.Collect("conscale_tier_sheds_total", "Admission-policy drops per tier and class.",
		telemetry.KindCounter, func(emit func(float64, ...string)) {
			for _, t := range Tiers() {
				if _, ok := c.admission[t]; !ok {
					continue
				}
				perClass := c.TierSheds(t)
				for cl, n := range perClass {
					emit(float64(n), "tier", t.String(), "class", admission.Class(cl).String())
				}
			}
		})
}

// Telemetry returns the armed registry (nil when telemetry is off).
func (c *Cluster) Telemetry() *telemetry.Registry { return c.telReg }

// armServer wires the hot-path instruments of one VM. Registration is
// idempotent on (name, labels), so re-arming is harmless.
func (c *Cluster) armServer(t Tier, s *server.Server) {
	tier := t.String()
	tel := server.Telemetry{
		RT: c.telReg.Histogram("conscale_server_rt_seconds",
			"Per-server response time of successful requests.", "tier", tier, "server", s.Name()),
		Rejects: c.telReg.Counter("conscale_server_rejects_total",
			"Accept-queue overflows and draining/crashed rejections.", "tier", tier, "server", s.Name()),
		Drops: c.telReg.Counter("conscale_server_drops_total",
			"Requests failed after admission.", "tier", tier, "server", s.Name()),
	}
	if s.Admission() != nil {
		// Shed instruments only exist where a policy can shed: per-class
		// counters plus the windowed drop-rate histogram (5 s windows,
		// folded lazily on the request path — no scheduled events).
		for cl := 0; cl < admission.NumClasses; cl++ {
			tel.Sheds[cl] = c.telReg.Counter("conscale_server_sheds_total",
				"Requests dropped by the admission policy.",
				"tier", tier, "server", s.Name(), "class", admission.Class(cl).String())
		}
		hists := [admission.NumClasses]*telemetry.Histogram{}
		for cl := 0; cl < admission.NumClasses; cl++ {
			hists[cl] = c.telReg.Histogram("conscale_shed_rate",
				"Per-window admission drop rate (shed/offered over 5 s windows).",
				"tier", tier, "server", s.Name(), "class", admission.Class(cl).String())
		}
		s.SetShedMeter(admission.NewMeter(5*des.Second, func(class admission.Class, rate float64) {
			hists[class].Observe(rate)
		}))
	}
	s.SetTelemetry(tel)
}
