// Package cluster assembles the n-tier system under test: web, application,
// and database tiers of VM-hosted servers behind HAProxy-style balancers
// (paper Fig. 2b), the end-to-end request path for RUBBoS servlets, and the
// VM lifecycle used by the scaling frameworks — including the 15-second
// preparation period before a new VM serves traffic and connection draining
// when a VM retires (paper Section IV-A).
package cluster

import (
	"fmt"

	"conscale/internal/admission"
	"conscale/internal/des"
	"conscale/internal/lb"
	"conscale/internal/metrics"
	"conscale/internal/rng"
	"conscale/internal/rubbos"
	"conscale/internal/server"
	"conscale/internal/telemetry"
	"conscale/internal/trace"
)

// Tier identifies one of the three tiers.
type Tier int

// The tiers of the system. Cache is the optional Memcached tier the paper
// mentions as configurable on demand ("more tiers can be configured
// on-demand ... or cache tier like Memcached").
const (
	Web Tier = iota
	App
	DB
	Cache
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case Web:
		return "web"
	case App:
		return "tomcat"
	case DB:
		return "mysql"
	case Cache:
		return "memcached"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Tiers lists all tiers in request-path order (including the optional
// cache tier; a cluster without caches simply has no servers there).
func Tiers() []Tier { return []Tier{Web, App, Cache, DB} }

// Config describes the initial deployment. The zero value is not valid;
// use DefaultConfig and override.
type Config struct {
	// Seed drives every stochastic choice the cluster makes.
	Seed uint64
	// Mix selects the RUBBoS interaction mix (browse-only or read/write).
	Mix rubbos.Mix
	// DatasetScale scales per-interaction service demands (1.0 = paper).
	DatasetScale float64

	// Initial topology #Web/#App/#DB (paper notation).
	Web, App, DB int

	// Soft resources: the paper's #Wthreads-#Athreads-#DBconnections
	// (e.g. 1000-60-40 in the Fig. 10 evaluation). DBConns is the DB
	// connection pool size of each app server.
	WebThreads, AppThreads, DBConns int

	// Cores per VM in each tier (the paper's VMs have 1 vCPU).
	WebCores, AppCores, DBCores int

	// DiskChans is the DB VM's disk channel count (1 = single SATA disk).
	DiskChans int

	// CacheServers enables the optional Memcached tier with that many
	// VMs (0 = no cache tier). With a cache, each DB query first looks
	// up the cache and only goes to the DB on a miss.
	CacheServers int
	// CacheHitRatio is the probability a lookup hits (default 0.8 when
	// the tier is enabled).
	CacheHitRatio float64
	// CacheCores is the cache VM's vCPU count (default 1).
	CacheCores int

	// MaxVMsPerTier bounds scale-out (the private cloud's capacity).
	MaxVMsPerTier int

	// LBPolicy picks which server in a tier receives each request.
	LBPolicy lb.Policy

	// PrepDelay is the VM preparation period before a new instance can
	// serve (dataset replication etc.; paper uses 15 s).
	PrepDelay des.Time

	// AcceptQueue is the per-server pending-request bound.
	AcceptQueue int

	// Admission optionally installs a per-tier admission policy: every
	// VM of a configured tier gets its own policy instance guarding its
	// accept queue (nil map or missing tier = admit everything on the
	// untouched request path). See internal/admission.
	Admission map[Tier]admission.Config

	// DemandCV is the lognormal jitter of service demands.
	DemandCV float64

	// Per-tier multithreading-overhead models. Apache's worker threads
	// are far lighter than Tomcat's or MySQL's (no business logic, no
	// locks), so the web tier gets a much higher knee.
	WebOverhead, AppOverhead, DBOverhead server.Overhead

	// Window is the fine-grained measurement interval (50 ms default).
	Window des.Time

	// Engine, when non-nil, hosts the cluster on an existing event engine
	// instead of a fresh one. The scale mode uses it to place each cell
	// on its own stripe shard (des.Striper); single-cluster runs leave it
	// nil and use Cluster.Eng as before.
	Engine *des.Engine
}

// DefaultConfig returns the paper's evaluation setup: 1/1/1 topology,
// soft resources 1000-60-40, 1-core VMs, leastconn balancing, 15 s VM
// preparation.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		Mix:           rubbos.BrowseOnly,
		DatasetScale:  1,
		Web:           1,
		App:           1,
		DB:            1,
		WebThreads:    1000,
		AppThreads:    60,
		DBConns:       40,
		WebCores:      1,
		AppCores:      1,
		DBCores:       1,
		DiskChans:     1,
		MaxVMsPerTier: 8,
		LBPolicy:      lb.LeastConn,
		PrepDelay:     15 * des.Second,
		AcceptQueue:   3000,
		DemandCV:      0.3,
		WebOverhead:   server.Overhead{Alpha: 0.0005, KneePerCore: 1200, Power: 1.1},
		AppOverhead:   server.DefaultOverhead(),
		DBOverhead:    server.DefaultOverhead(),
	}
}

// vm couples a server with its lifecycle state.
type vm struct {
	srv   *server.Server
	ready bool // false until the preparation period elapses
}

// Cluster is the system under test.
type Cluster struct {
	// Eng is the discrete-event engine the cluster schedules on.
	Eng *des.Engine

	cfg Config
	rnd *rng.Source
	wl  *rubbos.Workload

	webLB, appLB, dbLB, cacheLB *lb.Balancer

	vms     map[Tier][]*vm
	counter map[Tier]int

	// Current soft-resource settings; new VMs inherit them.
	webThreads, appThreads, dbConns int

	pendingBoots map[Tier]int // VMs in their preparation period

	// netDelay[t] is extra latency injected on the RPC edge into tier t
	// (network jitter between tiers; zero = healthy network).
	netDelay map[Tier]des.Time

	// bootFactor multiplies the VM preparation period (slow-booting
	// stragglers; 1 = nominal). Read when a boot starts.
	bootFactor float64

	// tracer samples requests into span trees (nil = tracing off; the
	// tracer draws from its own stream, so arming it never changes the
	// simulation's random sequence).
	tracer *trace.Tracer

	// telReg is the continuous-metrics registry (nil = telemetry off).
	// VMs booted after SetTelemetry are armed as they come up.
	telReg *telemetry.Registry

	// admission holds the active per-tier policy configs; VMs booted
	// later inherit them. onShed is the read-only shed observer fanned
	// out to every server (forensics tap).
	admission map[Tier]admission.Config
	onShed    func(now des.Time, t Tier, class admission.Class)
}

// New builds the initial topology on a fresh engine (or on cfg.Engine
// when set).
func New(cfg Config) *Cluster {
	if cfg.Web <= 0 || cfg.App <= 0 || cfg.DB <= 0 {
		panic("cluster: every tier needs at least one VM")
	}
	if cfg.DatasetScale <= 0 {
		cfg.DatasetScale = 1
	}
	eng := cfg.Engine
	if eng == nil {
		eng = des.New()
	}
	c := &Cluster{
		Eng:          eng,
		cfg:          cfg,
		rnd:          rng.New(cfg.Seed),
		wl:           rubbos.NewWorkload(cfg.Mix, cfg.DatasetScale),
		webLB:        lb.New("web-lb", cfg.LBPolicy),
		appLB:        lb.New("app-lb", cfg.LBPolicy),
		dbLB:         lb.New("db-lb", cfg.LBPolicy),
		cacheLB:      lb.New("cache-lb", cfg.LBPolicy),
		vms:          make(map[Tier][]*vm),
		counter:      make(map[Tier]int),
		webThreads:   cfg.WebThreads,
		appThreads:   cfg.AppThreads,
		dbConns:      cfg.DBConns,
		pendingBoots: make(map[Tier]int),
		netDelay:     make(map[Tier]des.Time),
		bootFactor:   1,
		admission:    make(map[Tier]admission.Config),
	}
	for t, acfg := range cfg.Admission {
		if _, err := admission.New(acfg); err != nil {
			panic(fmt.Sprintf("cluster: tier %s: %v", t, err))
		}
		c.admission[t] = acfg
	}
	for i := 0; i < cfg.Web; i++ {
		c.boot(Web)
	}
	for i := 0; i < cfg.App; i++ {
		c.boot(App)
	}
	for i := 0; i < cfg.DB; i++ {
		c.boot(DB)
	}
	if cfg.CacheServers > 0 {
		if c.cfg.CacheHitRatio <= 0 || c.cfg.CacheHitRatio >= 1 {
			c.cfg.CacheHitRatio = 0.8
		}
		for i := 0; i < cfg.CacheServers; i++ {
			c.boot(Cache)
		}
	}
	return c
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Workload returns the active servlet mix.
func (c *Cluster) Workload() *rubbos.Workload { return c.wl }

// SetDatasetScale changes the system state mid-run (the paper's
// "continuous dataset updates"): subsequent requests use demands for the
// new dataset size.
func (c *Cluster) SetDatasetScale(scale float64) {
	c.wl = rubbos.NewWorkload(c.cfg.Mix, scale)
}

// SetMix switches the workload mode mid-run (paper Section III-C.3).
func (c *Cluster) SetMix(mix rubbos.Mix) {
	c.cfg.Mix = mix
	c.wl = rubbos.NewWorkload(mix, c.wl.DatasetScale)
}

// boot creates a VM immediately (initial topology, before the run starts).
func (c *Cluster) boot(t Tier) *vm {
	v := c.newVM(t)
	v.ready = true
	c.balancer(t).Add(v.srv.Name(), v.srv)
	return v
}

func (c *Cluster) newVM(t Tier) *vm {
	c.counter[t]++
	name := fmt.Sprintf("%s%d", t, c.counter[t])
	cfg := server.Config{
		Name:        name,
		AcceptQueue: c.cfg.AcceptQueue,
		DemandCV:    c.cfg.DemandCV,
		Window:      c.cfg.Window,
	}
	switch t {
	case Web:
		cfg.Cores = c.cfg.WebCores
		cfg.ThreadLimit = c.webThreads
		cfg.Overhead = c.cfg.WebOverhead
	case App:
		cfg.Cores = c.cfg.AppCores
		cfg.ThreadLimit = c.appThreads
		cfg.Overhead = c.cfg.AppOverhead
	case Cache:
		cores := c.cfg.CacheCores
		if cores <= 0 {
			cores = 1
		}
		cfg.Cores = cores
		// Memcached is event-driven: effectively unbounded worker slots
		// and negligible per-connection overhead.
		cfg.ThreadLimit = 2000
		cfg.Overhead = server.Overhead{Alpha: 0.0005, KneePerCore: 1500, Power: 1.1}
	case DB:
		cfg.Cores = c.cfg.DBCores
		cfg.DiskChans = c.cfg.DiskChans
		// MySQL's own thread table is effectively unbounded in the
		// paper's setup; its concurrency is governed by the app tier's
		// connection pools.
		cfg.ThreadLimit = 1000
		cfg.Overhead = c.cfg.DBOverhead
	}
	srv := server.New(c.Eng, c.rnd.Split(), cfg)
	if t == App {
		srv.SetCallPool(server.NewConnPool(c.dbConns))
	}
	if acfg, ok := c.admission[t]; ok {
		p, err := admission.New(acfg)
		if err != nil {
			panic(fmt.Sprintf("cluster: tier %s: %v", t, err))
		}
		srv.SetAdmission(p)
	}
	if c.onShed != nil {
		tier := t
		srv.SetShedObserver(func(now des.Time, class admission.Class) {
			c.onShed(now, tier, class)
		})
	}
	if c.telReg != nil {
		c.armServer(t, srv)
	}
	v := &vm{srv: srv}
	c.vms[t] = append(c.vms[t], v)
	return v
}

func (c *Cluster) balancer(t Tier) *lb.Balancer {
	switch t {
	case Web:
		return c.webLB
	case App:
		return c.appLB
	case Cache:
		return c.cacheLB
	default:
		return c.dbLB
	}
}

// Servers returns the tier's live servers (including booting and draining
// VMs, which still need metric collection).
func (c *Cluster) Servers(t Tier) []*server.Server {
	out := make([]*server.Server, 0, len(c.vms[t]))
	for _, v := range c.vms[t] {
		out = append(out, v.srv)
	}
	return out
}

// ReadyCount returns the number of VMs serving traffic in the tier.
func (c *Cluster) ReadyCount(t Tier) int {
	n := 0
	for _, v := range c.vms[t] {
		if v.ready && !v.srv.Draining() {
			n++
		}
	}
	return n
}

// TotalVMs returns the count of VMs across all tiers, including those
// still in their preparation period (they consume resources already) —
// the "# of VMs" series of Fig. 1/10/11.
func (c *Cluster) TotalVMs() int {
	n := 0
	for _, t := range Tiers() {
		for _, v := range c.vms[t] {
			if !v.srv.Draining() {
				n++
			}
		}
		n += c.pendingBoots[t]
	}
	return n
}

// AddVM provisions a new VM in the tier. The VM becomes ready after the
// preparation period (PrepDelay); onReady (optional) fires at that moment
// with the new server. It returns false when the tier is at capacity.
func (c *Cluster) AddVM(t Tier, onReady func(srv *server.Server)) bool {
	live := 0
	for _, v := range c.vms[t] {
		if !v.srv.Draining() {
			live++
		}
	}
	if live+c.pendingBoots[t] >= c.cfg.MaxVMsPerTier {
		return false
	}
	prep := c.cfg.PrepDelay
	if c.bootFactor != 1 {
		prep = des.Time(float64(prep) * c.bootFactor)
	}
	c.pendingBoots[t]++
	c.Eng.After(prep, func() {
		c.pendingBoots[t]--
		v := c.newVM(t)
		v.ready = true
		c.balancer(t).Add(v.srv.Name(), v.srv)
		if onReady != nil {
			onReady(v.srv)
		}
	})
	return true
}

// RemoveVM retires the most recently added ready VM of the tier, keeping
// at least one. The VM drains: it stops receiving traffic immediately and
// is destroyed once idle. It returns the retired server name, or "".
func (c *Cluster) RemoveVM(t Tier) string {
	vmsOfTier := c.vms[t]
	live := 0
	for _, v := range vmsOfTier {
		if v.ready && !v.srv.Draining() {
			live++
		}
	}
	if live <= 1 {
		return ""
	}
	for i := len(vmsOfTier) - 1; i >= 0; i-- {
		v := vmsOfTier[i]
		if !v.ready || v.srv.Draining() {
			continue
		}
		v.srv.SetDraining(true)
		c.balancer(t).Remove(v.srv.Name())
		c.reap(t, v)
		return v.srv.Name()
	}
	return ""
}

// reap destroys a draining VM once its in-flight work completes.
func (c *Cluster) reap(t Tier, v *vm) {
	c.Eng.After(des.Second, func() {
		if v.srv.Active() > 0 || v.srv.QueueLen() > 0 {
			c.reap(t, v)
			return
		}
		for i, cand := range c.vms[t] {
			if cand == v {
				c.vms[t] = append(c.vms[t][:i], c.vms[t][i+1:]...)
				break
			}
		}
	})
}

// SoftResources returns the current settings (web threads, app threads,
// per-app DB connections).
func (c *Cluster) SoftResources() (web, app, db int) {
	return c.webThreads, c.appThreads, c.dbConns
}

// SetWebThreads adjusts the web tier's thread pools at runtime.
func (c *Cluster) SetWebThreads(n int) {
	c.webThreads = n
	for _, v := range c.vms[Web] {
		v.srv.SetThreadLimit(n)
	}
}

// SetAppThreads adjusts the app tier's thread pools at runtime (the
// Tomcat thread pool actuator).
func (c *Cluster) SetAppThreads(n int) {
	c.appThreads = n
	for _, v := range c.vms[App] {
		v.srv.SetThreadLimit(n)
	}
}

// SetDBConns adjusts every app server's DB connection pool (the extended
// JMX actuator of Section IV-A); this caps the concurrency reaching the
// DB tier at n × #app.
func (c *Cluster) SetDBConns(n int) {
	c.dbConns = n
	for _, v := range c.vms[App] {
		if p := v.srv.CallPool(); p != nil {
			p.SetLimit(n)
		}
	}
}

// SetAdmission installs (cfg non-nil) or removes (cfg nil) the tier's
// admission policy at runtime: every current VM gets a fresh policy
// instance and future VMs inherit the config. The mgmt admission.*
// toggles route here.
func (c *Cluster) SetAdmission(t Tier, cfg *admission.Config) error {
	if cfg == nil {
		delete(c.admission, t)
		for _, v := range c.vms[t] {
			v.srv.SetAdmission(nil)
		}
		return nil
	}
	if _, err := admission.New(*cfg); err != nil {
		return err
	}
	c.admission[t] = *cfg
	for _, v := range c.vms[t] {
		p, err := admission.New(*cfg)
		if err != nil {
			return err
		}
		v.srv.SetAdmission(p)
		if c.telReg != nil {
			// Re-arm so the shed instruments exist (registration is
			// idempotent on name+labels).
			c.armServer(t, v.srv)
		}
	}
	return nil
}

// AdmissionConfig returns the tier's active admission config and
// whether one is installed.
func (c *Cluster) AdmissionConfig(t Tier) (admission.Config, bool) {
	cfg, ok := c.admission[t]
	return cfg, ok
}

// SetShedObserver installs a read-only callback invoked on every
// admission shed anywhere in the cluster (the forensics tap); nil
// disarms it for future VMs.
func (c *Cluster) SetShedObserver(fn func(now des.Time, t Tier, class admission.Class)) {
	c.onShed = fn
	for _, t := range Tiers() {
		tier := t
		for _, v := range c.vms[t] {
			if fn == nil {
				v.srv.SetShedObserver(nil)
				continue
			}
			v.srv.SetShedObserver(func(now des.Time, class admission.Class) {
				fn(now, tier, class)
			})
		}
	}
}

// TierSheds returns the tier's admission drops per class, summed over
// its VMs (including drained and crashed ones).
func (c *Cluster) TierSheds(t Tier) (perClass [admission.NumClasses]uint64) {
	for _, v := range c.vms[t] {
		for cl := 0; cl < admission.NumClasses; cl++ {
			perClass[cl] += v.srv.ShedCount(admission.Class(cl))
		}
	}
	return perClass
}

// Sheds returns the cluster-wide admission drop count.
func (c *Cluster) Sheds() uint64 {
	var total uint64
	for _, t := range Tiers() {
		for _, v := range c.vms[t] {
			total += v.srv.ShedTotal()
		}
	}
	return total
}

// TierCPU returns the mean 1-second CPU utilization across the tier's
// ready VMs — the signal the threshold scalers act on.
func (c *Cluster) TierCPU(t Tier) float64 {
	sum, n := 0.0, 0
	for _, v := range c.vms[t] {
		if v.ready && !v.srv.Draining() {
			sum += v.srv.CPUUtilization()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CollectInto flushes every server's fine-grained and CPU metrics into the
// warehouse (the per-VM monitoring agents of Fig. 8, step 1).
func (c *Cluster) CollectInto(w *metrics.Warehouse) {
	for _, t := range Tiers() {
		for _, v := range c.vms[t] {
			name := v.srv.Name()
			w.PutFine(name, v.srv.FlushFine())
			w.PutCPU(name, v.srv.FlushCPU())
		}
	}
}

// SetTracer arms per-request tracing on the cluster (nil disarms). The
// root span of each sampled request doubles as its web-tier visit span.
func (c *Cluster) SetTracer(t *trace.Tracer) { c.tracer = t }

// Tracer returns the armed tracer (nil when tracing is off).
func (c *Cluster) Tracer() *trace.Tracer { return c.tracer }

// Submit issues one end-to-end client request (a workload.Submitter).
func (c *Cluster) Submit(done func(ok bool)) {
	sv := c.wl.Pick(c.rnd)
	root := c.tracer.StartRequest(sv.Name, c.Eng.Now())
	if root != nil {
		inner := done
		done = func(ok bool) {
			c.tracer.EndRequest(root, c.Eng.Now(), ok)
			inner(ok)
		}
	}
	class := admission.ClassBrowse
	if sv.Write {
		class = admission.ClassReadWrite
	}
	req := &server.Request{
		Phases: c.webPhases(sv),
		Done:   done,
		Span:   root,
		Class:  class,
	}
	if d := c.netDelay[Web]; d > 0 {
		// Jitter on the client->web edge: the request transits the slow
		// network before reaching the web balancer.
		now := c.Eng.Now()
		root.AddSeg(trace.SegNet, now, now+d)
		c.Eng.After(d, func() { c.webLB.Submit(req) })
		return
	}
	c.webLB.Submit(req)
}

// webPhases builds the web tier visit: static processing then the
// synchronous call into the app tier. Injected edge delay dwells on the
// calling thread, like every network wait in the thread-based RPC model.
func (c *Cluster) webPhases(sv *rubbos.Servlet) []server.Phase {
	phases := []server.Phase{
		{Kind: server.PhaseCPU, Duration: des.Time(sv.WebCPU)},
	}
	if d := c.netDelay[App]; d > 0 {
		phases = append(phases, server.Phase{Kind: server.PhaseNet, Duration: d})
	}
	return append(phases, server.Phase{Kind: server.PhaseCall, Call: &server.OutCall{
		Target: c.appLB,
		Build:  func() []server.Phase { return c.appPhases(sv) },
	}})
}

// appPhases builds the app tier visit: business-logic CPU slices
// interleaved with synchronous DB queries gated by the server's own
// connection pool.
func (c *Cluster) appPhases(sv *rubbos.Servlet) []server.Phase {
	q := sv.Queries
	slice := des.Time(sv.AppCPU / float64(q+1))
	halfWait := des.Time(sv.AppWait / 2)
	phases := make([]server.Phase, 0, 2*q+4)
	phases = append(phases,
		server.Phase{Kind: server.PhaseSleep, Duration: halfWait},
		server.Phase{Kind: server.PhaseCPU, Duration: slice},
	)
	for i := 0; i < q; i++ {
		phases = append(phases, c.queryPhases(sv)...)
		phases = append(phases, server.Phase{Kind: server.PhaseCPU, Duration: slice})
	}
	return append(phases, server.Phase{Kind: server.PhaseSleep, Duration: halfWait})
}

// queryPhases builds one logical DB query from the app tier's point of
// view. Without a cache tier it is a single synchronous DB call gated by
// the server's connection pool. With a cache tier, the query first looks
// up Memcached; only misses (and all writes, which must reach the DB)
// continue to the DB call.
func (c *Cluster) queryPhases(sv *rubbos.Servlet) []server.Phase {
	var dbEdge []server.Phase
	if d := c.netDelay[DB]; d > 0 {
		dbEdge = []server.Phase{{Kind: server.PhaseNet, Duration: d}}
	}
	dbCall := server.Phase{Kind: server.PhaseCall, Call: &server.OutCall{
		Target:        c.dbLB,
		UseServerPool: true,
		Build:         func() []server.Phase { return c.dbPhases(sv) },
	}}
	if c.cacheLB.Len() == 0 {
		return append(dbEdge, dbCall)
	}
	var cacheEdge []server.Phase
	if d := c.netDelay[Cache]; d > 0 {
		cacheEdge = []server.Phase{{Kind: server.PhaseNet, Duration: d}}
	}
	lookup := server.Phase{Kind: server.PhaseCall, Call: &server.OutCall{
		Target: c.cacheLB,
		Build:  func() []server.Phase { return cachePhases() },
	}}
	if !sv.Write && c.rnd.Float64() < c.cfg.CacheHitRatio {
		return append(cacheEdge, lookup) // cache hit serves the query
	}
	return append(append(append(cacheEdge, lookup), dbEdge...), dbCall)
}

// cachePhases is one Memcached lookup: sub-millisecond CPU plus network
// dwell.
func cachePhases() []server.Phase {
	return []server.Phase{
		{Kind: server.PhaseSleep, Duration: 0.0002},
		{Kind: server.PhaseCPU, Duration: 0.00006},
	}
}

// dbPhases builds one DB query visit: protocol dwell around the CPU work,
// plus disk I/O for write/scan queries.
func (c *Cluster) dbPhases(sv *rubbos.Servlet) []server.Phase {
	halfWait := des.Time(sv.QueryWait / 2)
	phases := []server.Phase{
		{Kind: server.PhaseSleep, Duration: halfWait},
		{Kind: server.PhaseCPU, Duration: des.Time(sv.QueryCPU)},
	}
	if sv.QueryDisk > 0 {
		phases = append(phases, server.Phase{Kind: server.PhaseDisk, Duration: des.Time(sv.QueryDisk)})
	}
	return append(phases, server.Phase{Kind: server.PhaseSleep, Duration: halfWait})
}

// KillVM abruptly terminates a tier's most recently added ready VM
// (failure injection): the balancer stops routing to it immediately, its
// queued and in-flight requests fail, and the VM is removed. It returns
// the killed server's name, or "" when the tier has no ready VM to kill
// (the last instance may be killed — unlike RemoveVM, crashes don't ask
// for permission).
func (c *Cluster) KillVM(t Tier) string {
	vmsOfTier := c.vms[t]
	for i := len(vmsOfTier) - 1; i >= 0; i-- {
		v := vmsOfTier[i]
		if !v.ready || v.srv.Draining() {
			continue
		}
		c.balancer(t).Remove(v.srv.Name())
		v.srv.Kill()
		c.vms[t] = append(c.vms[t][:i], c.vms[t][i+1:]...)
		return v.srv.Name()
	}
	return ""
}

// KillVMIndex abruptly terminates the idx-th ready VM of the tier
// (0-based, in boot order) — the targeted form of KillVM for fault
// injection. It returns the killed server's name, or "" when idx does not
// address a ready, non-draining VM.
func (c *Cluster) KillVMIndex(t Tier, idx int) string {
	if idx < 0 {
		return ""
	}
	n := 0
	for i, v := range c.vms[t] {
		if !v.ready || v.srv.Draining() {
			continue
		}
		if n == idx {
			c.balancer(t).Remove(v.srv.Name())
			v.srv.Kill()
			c.vms[t] = append(c.vms[t][:i], c.vms[t][i+1:]...)
			return v.srv.Name()
		}
		n++
	}
	return ""
}

// TierOccupancy sums the accept-queue depth and the in-service request
// count across the tier's ready servers — the flight-recorder snapshot
// read. It allocates nothing, unlike ReadyServers.
func (c *Cluster) TierOccupancy(t Tier) (queue, active int) {
	for _, v := range c.vms[t] {
		if v.ready && !v.srv.Draining() {
			queue += v.srv.QueueLen()
			active += v.srv.Active()
		}
	}
	return queue, active
}

// ReadyServers returns the tier's servers currently serving traffic
// (ready and not draining), in boot order — the candidate set fault
// injection targets.
func (c *Cluster) ReadyServers(t Tier) []*server.Server {
	var out []*server.Server
	for _, v := range c.vms[t] {
		if v.ready && !v.srv.Draining() {
			out = append(out, v.srv)
		}
	}
	return out
}

// SetNetDelay sets the injected latency of the RPC edge into the tier
// (client->web for Web, web->app for App, app->db for DB, app->cache for
// Cache). The delay dwells on the calling side, holding the caller's
// thread like any network wait in the thread-based RPC model; it applies
// to calls issued after it is set. Zero restores a healthy edge.
func (c *Cluster) SetNetDelay(t Tier, d des.Time) {
	if d < 0 {
		d = 0
	}
	c.netDelay[t] = d
}

// NetDelay returns the currently injected latency on the edge into the tier.
func (c *Cluster) NetDelay(t Tier) des.Time { return c.netDelay[t] }

// SetBootFactor multiplies the VM preparation period for boots started
// while it is in effect (slow-booting stragglers: congested image store,
// oversubscribed host). Must be positive; 1 restores the nominal period.
// Boots already in progress keep their original deadline.
func (c *Cluster) SetBootFactor(f float64) {
	if f <= 0 {
		panic("cluster: non-positive boot factor")
	}
	c.bootFactor = f
}

// BootFactor returns the current VM-preparation multiplier (1 = nominal).
func (c *Cluster) BootFactor() float64 { return c.bootFactor }

// Balancer exposes a tier's balancer (tests, diagnostics).
func (c *Cluster) Balancer(t Tier) *lb.Balancer { return c.balancer(t) }
