package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"conscale/internal/admission"
	"conscale/internal/mgmt"
)

// RegisterMgmt exposes per-tier admission policy selection through a
// management Store (the JMX-substitute path that reconfigures pools):
//
//	admission.web        RW  policy spec or "off" (web tier)
//	admission.tomcat     RW  policy spec or "off" (app tier)
//	admission.mysql      RW  policy spec or "off" (DB tier)
//	admission.memcached  RW  policy spec or "off" (cache tier)
//	admission.sheds      RO  cluster-wide admission drop count
//
// Specs use admission.Parse syntax ("codel:target=100ms,interval=1s",
// "queue-cap:cap=200", "priority:cap=200,browse=40", "always"); writing
// "off" removes the tier's policy entirely. Unlike the tracer's atomic
// toggles, these setters swap policy instances on live servers — drive
// them between engine steps (mgmt agents on a paused or single-stepped
// simulation), exactly like the pool-resize actuators.
func (c *Cluster) RegisterMgmt(s *mgmt.Store) {
	if c == nil || s == nil {
		return
	}
	for _, t := range Tiers() {
		tier := t
		s.Register("admission."+t.String(),
			func() string {
				cfg, ok := c.AdmissionConfig(tier)
				if !ok {
					return "off"
				}
				return cfg.Spec()
			},
			func(v string) error {
				v = strings.TrimSpace(v)
				if v == "off" || v == "" {
					return c.SetAdmission(tier, nil)
				}
				cfg, err := admission.Parse(v)
				if err != nil {
					return fmt.Errorf("admission.%s: %w", tier, err)
				}
				return c.SetAdmission(tier, &cfg)
			})
	}
	s.Register("admission.sheds", func() string {
		return strconv.FormatUint(c.Sheds(), 10)
	}, nil)
}
