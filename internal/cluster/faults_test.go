package cluster

import (
	"testing"

	"conscale/internal/des"
	"conscale/internal/server"
)

func TestKillVMIndexTargetsBootOrder(t *testing.T) {
	cfg := smallConfig()
	cfg.App = 3
	c := New(cfg)
	if got := c.KillVMIndex(App, 1); got != "tomcat2" {
		t.Fatalf("KillVMIndex(App, 1) = %q, want tomcat2", got)
	}
	// The survivors close ranks: index 1 is now the former third VM.
	if got := c.KillVMIndex(App, 1); got != "tomcat3" {
		t.Fatalf("second KillVMIndex(App, 1) = %q, want tomcat3", got)
	}
	if got := c.KillVMIndex(App, 5); got != "" {
		t.Fatalf("out-of-range kill hit %q", got)
	}
	if got := c.KillVMIndex(App, -1); got != "" {
		t.Fatalf("negative index kill hit %q", got)
	}
	if c.ReadyCount(App) != 1 {
		t.Fatalf("ReadyCount = %d after two kills", c.ReadyCount(App))
	}
}

func TestKillVMIndexSkipsDraining(t *testing.T) {
	cfg := smallConfig()
	cfg.DB = 2
	c := New(cfg)
	c.Servers(DB)[0].SetDraining(true)
	if got := c.KillVMIndex(DB, 0); got != "mysql2" {
		t.Fatalf("KillVMIndex over draining VM = %q, want mysql2", got)
	}
}

func TestReadyServersExcludesBootingAndDraining(t *testing.T) {
	cfg := smallConfig()
	cfg.App = 2
	c := New(cfg)
	c.AddVM(App, nil) // booting: not ready yet
	c.Servers(App)[0].SetDraining(true)
	got := c.ReadyServers(App)
	if len(got) != 1 || got[0].Name() != "tomcat2" {
		names := make([]string, len(got))
		for i, s := range got {
			names[i] = s.Name()
		}
		t.Fatalf("ReadyServers = %v, want [tomcat2]", names)
	}
}

func TestNetDelayAddsLatency(t *testing.T) {
	// Same seed, one request each way; the delayed run must take at least
	// the injected edge delay longer.
	rt := func(delay des.Time) float64 {
		c := New(smallConfig())
		c.SetNetDelay(App, delay)
		var took float64
		c.Submit(func(ok bool) {
			if !ok {
				t.Fatal("request failed")
			}
			took = float64(c.Eng.Now())
		})
		c.Eng.Run()
		return took
	}
	base := rt(0)
	slow := rt(100 * des.Millisecond)
	if slow-base < 0.09 {
		t.Fatalf("injected 100ms edge delay added only %.1fms", (slow-base)*1000)
	}
	c := New(smallConfig())
	c.SetNetDelay(DB, -5)
	if c.NetDelay(DB) != 0 {
		t.Fatal("negative delay not clamped to zero")
	}
}

func TestWebEdgeDelayDefersSubmission(t *testing.T) {
	c := New(smallConfig())
	c.SetNetDelay(Web, 50*des.Millisecond)
	var finished des.Time
	c.Submit(func(ok bool) { finished = c.Eng.Now() })
	c.Eng.Run()
	if finished < 50*des.Millisecond {
		t.Fatalf("request finished at %v despite 50ms client edge delay", finished)
	}
}

func TestBootFactorStretchesPreparation(t *testing.T) {
	c := New(smallConfig()) // PrepDelay = 2 s
	c.SetBootFactor(3)
	var readyAt des.Time
	c.AddVM(App, func(srv *server.Server) { readyAt = c.Eng.Now() })
	c.Eng.RunUntil(10)
	if readyAt != 6 {
		t.Fatalf("slow boot ready at %v, want 6 (2s x3)", readyAt)
	}
	// Restoring the factor affects only new boots.
	c.SetBootFactor(1)
	start := c.Eng.Now()
	c.AddVM(App, func(srv *server.Server) { readyAt = c.Eng.Now() })
	c.Eng.RunUntil(20)
	if readyAt != start+2 {
		t.Fatalf("nominal boot ready at %v, want %v", readyAt, start+2)
	}
}

func TestBootFactorRejectsNonPositive(t *testing.T) {
	c := New(smallConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.SetBootFactor(0)
}

// TestDoneExactlyOnceUnderCombinedFaults extends the conservation law to
// the full chaos vocabulary: network delay on every edge, CPU
// interference, crashes, and slow boots, all while requests are in
// flight. Every submitted request must still complete exactly once.
func TestDoneExactlyOnceUnderCombinedFaults(t *testing.T) {
	cfg := smallConfig()
	cfg.App = 2
	cfg.DB = 2
	cfg.Seed = 7
	c := New(cfg)

	const total = 3000
	doneCount := make([]int, total)
	issued := 0
	var pump func()
	pump = func() {
		for i := 0; i < 20 && issued < total; i++ {
			idx := issued
			issued++
			c.Submit(func(bool) { doneCount[idx]++ })
		}
		if issued < total {
			c.Eng.After(0.02, pump)
		}
	}
	c.Eng.At(0, pump)

	// The chaos vocabulary, overlapping in flight.
	c.Eng.At(0.2, func() { c.SetNetDelay(App, 30*des.Millisecond) })
	c.Eng.At(0.4, func() { c.SetNetDelay(DB, 50*des.Millisecond) })
	c.Eng.At(0.5, func() {
		for _, srv := range c.ReadyServers(App) {
			srv.SetCPUSlowdown(srv.CPUSlowdown() * 3)
		}
	})
	c.Eng.At(0.7, func() { c.SetBootFactor(4) })
	c.Eng.At(0.8, func() { c.KillVMIndex(DB, 0) })
	c.Eng.At(1.0, func() { c.AddVM(DB, nil) })
	c.Eng.At(1.2, func() { c.SetNetDelay(Web, 20*des.Millisecond) })
	c.Eng.At(1.4, func() { c.KillVMIndex(App, 1) })
	c.Eng.At(1.6, func() {
		for _, srv := range c.ReadyServers(App) {
			srv.SetCPUSlowdown(srv.CPUSlowdown() / 3)
		}
	})
	c.Eng.At(1.8, func() { c.SetNetDelay(App, 0) })
	c.Eng.At(2.0, func() { c.SetNetDelay(DB, 0) })
	c.Eng.At(2.2, func() { c.AddVM(App, nil) })
	c.Eng.At(2.4, func() { c.SetNetDelay(Web, 0) })

	c.Eng.Run()
	for i, n := range doneCount {
		if n != 1 {
			t.Fatalf("request %d completed %d times", i, n)
		}
	}
}
