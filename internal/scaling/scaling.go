// Package scaling implements the three scaling frameworks the paper
// evaluates (Section IV-V):
//
//   - EC2: hardware-only threshold auto-scaling (the EC2-AutoScaling
//     baseline) — adds/removes VMs on CPU thresholds, never touches soft
//     resources.
//   - DCM: the concurrency-aware baseline [Wang et al., TPDS 2018] — the
//     same hardware scaling plus soft-resource reallocation from an
//     offline-trained profile, which goes stale when the runtime
//     environment drifts from the training conditions.
//   - ConScale: the paper's framework — the same hardware scaling plus
//     fast online soft-resource adaption driven by the SCT model over the
//     Metric Warehouse (Fig. 8).
//
// All three share the threshold engine ("quick start but slow turn off":
// scale-out fires after a short sustained breach, scale-in only after a
// long quiet period) so the comparison isolates soft-resource handling.
package scaling

import (
	"fmt"
	"math"

	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/metrics"
	"conscale/internal/sct"
	"conscale/internal/server"
	"conscale/internal/sla"
	"conscale/internal/trace"
)

// Mode selects the framework behaviour.
type Mode int

// The three frameworks.
const (
	EC2 Mode = iota
	DCM
	ConScale
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case EC2:
		return "ec2-autoscaling"
	case DCM:
		return "dcm"
	case ConScale:
		return "conscale"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DCMProfile is the offline-trained soft-resource recommendation the DCM
// baseline applies at every scaling action: a fixed per-server Tomcat
// thread pool and a fixed total DB-tier concurrency budget, both derived
// from a training run under the training-time workload and system state.
type DCMProfile struct {
	AppThreads int // per app server
	DBTotal    int // total DB concurrency budget across the DB tier
}

// Config tunes a framework.
type Config struct {
	// Mode selects which of the three frameworks this config drives.
	Mode Mode

	// Threshold engine (the EC2-AutoScaling rule: scale when tier CPU
	// exceeds High; paper uses 80%).
	High float64
	// Low is the scale-in threshold: below it for SustainIn checks, a
	// tier releases a VM.
	Low float64
	// CheckEvery is the decision interval (1 s monitoring).
	CheckEvery des.Time
	// SustainOut/SustainIn are the consecutive breaches required before
	// acting — "quick start" (short) vs "slow turn off" (long).
	SustainOut int
	// SustainIn is the consecutive low-CPU checks required to scale in.
	SustainIn int
	// OutCooldown/InCooldown block repeat actions per tier.
	OutCooldown des.Time
	// InCooldown blocks repeated scale-in actions on the same tier.
	InCooldown des.Time

	// SCT estimator settings (ConScale only).
	SCT sct.Config
	// EstimateEvery is how often the Optimal Concurrency Estimator
	// refreshes its cached per-server estimates (asynchronous workflow of
	// Fig. 8).
	EstimateEvery des.Time
	// AdaptEvery is how often ConScale re-applies its soft-resource
	// recommendation outside scaling events, so an improved estimate
	// (e.g. after a system-state change) takes effect without waiting
	// for the next VM action.
	AdaptEvery des.Time

	// DCM profile (DCM only).
	Profile DCMProfile

	// UseQupper makes ConScale recommend the upper bound of the rational
	// range instead of the paper's Qlower — the A2 ablation: same maximum
	// throughput, higher operating latency.
	UseQupper bool

	// SLATarget (seconds), with SLAPercentile and SLAWindow, arms an
	// additional QoS trigger: when the web tier's windowed tail latency
	// exceeds the target for SustainOut consecutive checks, the busiest
	// tier scales out even if no CPU crossed the threshold — catching the
	// under-allocation regime where response times burn while hardware
	// idles (the failure mode of stale soft-resource settings).
	SLATarget float64
	// SLAPercentile is the tail percentile the QoS trigger watches.
	SLAPercentile float64
	// SLAWindow is the sliding window the tail latency is measured over.
	SLAWindow des.Time

	// VerticalDBMaxCores enables vertical scaling of the DB tier (the
	// scale-up strategy of paper Section III-C.1): when the DB tier needs
	// more capacity, an existing VM gains a vCPU (up to this limit)
	// before any new VM is added. The SCT model tracks the resulting
	// optimal-concurrency doubling (Fig. 7a/d) online.
	VerticalDBMaxCores int

	// Soft-resource safety clamps.
	MinThreads, MaxThreads int
	// MinConns/MaxConns clamp the DB connection-pool adaptation range.
	MinConns, MaxConns int

	// WarehouseRetention bounds metric history.
	WarehouseRetention des.Time
}

// DefaultConfig returns the evaluation settings shared by all frameworks.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:               mode,
		High:               0.80,
		Low:                0.30,
		CheckEvery:         des.Second,
		SustainOut:         3,
		SustainIn:          45,
		OutCooldown:        25 * des.Second,
		InCooldown:         60 * des.Second,
		SCT:                sct.DefaultConfig(),
		EstimateEvery:      5 * des.Second,
		AdaptEvery:         15 * des.Second,
		MinThreads:         4,
		MaxThreads:         400,
		MinConns:           2,
		MaxConns:           200,
		WarehouseRetention: 400 * des.Second,
	}
}

// EventKind labels a scaling-log entry.
type EventKind int

// Event kinds.
const (
	ScaleOut EventKind = iota
	ScaleIn
	SoftAdapt
	// Repair is emitted when the framework re-provisions a tier whose last
	// VM vanished outside its own actions (a cloud-side crash): the CPU
	// signal of an empty tier reads zero, so the threshold rule alone would
	// leave the tier dark forever.
	Repair
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case ScaleOut:
		return "scale-out"
	case ScaleIn:
		return "scale-in"
	case SoftAdapt:
		return "soft-adapt"
	case Repair:
		return "repair"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event records one scaling action for the evaluation timelines.
type Event struct {
	// Time is the simulation instant the action took effect.
	Time des.Time
	// Kind classifies the action (scale-out, scale-in, adaptation...).
	Kind EventKind
	// Tier is the tier the action applied to.
	Tier cluster.Tier
	// Detail is a human-readable summary for audit trails.
	Detail string
}

// Framework drives one cluster with one scaling strategy.
type Framework struct {
	cfg Config
	c   *cluster.Cluster
	w   *metrics.Warehouse
	est *sct.Estimator

	above, below   map[cluster.Tier]int
	lastOut        map[cluster.Tier]des.Time
	lastIn         map[cluster.Tier]des.Time
	pendingScale   map[cluster.Tier]bool
	cachedEstimate map[string]timedEstimate
	lastEscape     map[cluster.Tier]des.Time

	slaTail  *sla.WindowTail
	slaAbove int
	slaFed   des.Time

	events []Event
	// triggers / cooldownSkips mirror the audit trail's trigger accounting
	// for the telemetry registry (cheap ints, maintained unconditionally).
	triggers      int
	cooldownSkips int
	// audit receives every decision with its cause annotation (nil = no
	// audit trail; Record on nil is a no-op).
	audit *trace.Audit

	collector *des.Ticker
	decider   *des.Ticker
	estimator *des.Ticker
	adapter   *des.Ticker
}

// New attaches a framework to a cluster. Call Start to begin control.
func New(c *cluster.Cluster, cfg Config) *Framework {
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = des.Second
	}
	if cfg.High <= 0 {
		cfg.High = 0.8
	}
	if cfg.WarehouseRetention <= 0 {
		cfg.WarehouseRetention = 400 * des.Second
	}
	if cfg.EstimateEvery <= 0 {
		cfg.EstimateEvery = 5 * des.Second
	}
	var tail *sla.WindowTail
	if cfg.SLATarget > 0 {
		if cfg.SLAPercentile <= 0 {
			cfg.SLAPercentile = 95
		}
		if cfg.SLAWindow <= 0 {
			cfg.SLAWindow = 10 * des.Second
		}
		tail = sla.NewWindowTail(cfg.SLAWindow)
	}
	return &Framework{
		cfg:            cfg,
		slaTail:        tail,
		c:              c,
		w:              metrics.NewWarehouse(cfg.WarehouseRetention),
		est:            sct.New(cfg.SCT),
		above:          make(map[cluster.Tier]int),
		below:          make(map[cluster.Tier]int),
		lastOut:        make(map[cluster.Tier]des.Time),
		lastIn:         make(map[cluster.Tier]des.Time),
		pendingScale:   make(map[cluster.Tier]bool),
		cachedEstimate: make(map[string]timedEstimate),
		lastEscape:     make(map[cluster.Tier]des.Time),
	}
}

// timedEstimate stamps an SCT estimate with its creation time so stale
// views of a past regime are not re-applied after the data that produced
// them has aged out of the collection window.
type timedEstimate struct {
	est sct.Estimate
	at  des.Time
}

// Warehouse exposes the metric warehouse (figures, tests).
func (f *Framework) Warehouse() *metrics.Warehouse { return f.w }

// Events returns the scaling log.
func (f *Framework) Events() []Event { return f.events }

// SetAudit attaches a controller decision audit trail: every threshold
// trigger, cooldown suppression, VM action, SCT estimate, and pool resize
// is recorded there with its cause (nil detaches).
func (f *Framework) SetAudit(a *trace.Audit) { f.audit = a }

// Mode returns the framework's mode.
func (f *Framework) Mode() Mode { return f.cfg.Mode }

// Estimates returns the estimator's current per-server view (ConScale).
func (f *Framework) Estimates() map[string]sct.Estimate {
	out := make(map[string]sct.Estimate, len(f.cachedEstimate))
	for k, v := range f.cachedEstimate {
		out[k] = v.est
	}
	return out
}

// Start arms the monitoring, estimation, and decision loops.
func (f *Framework) Start() {
	eng := f.c.Eng
	f.collector = eng.Every(des.Second, func() { f.c.CollectInto(f.w) })
	f.decider = eng.Every(f.cfg.CheckEvery, f.decide)
	if f.cfg.Mode == ConScale {
		f.estimator = eng.Every(f.cfg.EstimateEvery, f.refreshEstimates)
		if f.cfg.AdaptEvery > 0 {
			f.adapter = eng.Every(f.cfg.AdaptEvery, f.applyConScale)
		}
	}
}

// Stop disarms the loops (end of experiment).
func (f *Framework) Stop() {
	for _, t := range []*des.Ticker{f.collector, f.decider, f.estimator, f.adapter} {
		if t != nil {
			t.Stop()
		}
	}
}

// decide applies the threshold rule to the app and DB tiers, plus the
// SLA trigger when configured.
func (f *Framework) decide() {
	for _, tier := range []cluster.Tier{cluster.Web, cluster.App, cluster.DB} {
		f.repairTier(tier)
	}
	for _, tier := range []cluster.Tier{cluster.App, cluster.DB} {
		f.decideTier(tier)
	}
	f.decideSLA()
}

// repairTier re-provisions a tier with zero ready VMs. Scale-in never
// empties a tier, so this only fires when external faults (crash
// injection) killed the last VM; without it the tier's CPU signal reads
// zero and the threshold rule never recovers the system.
func (f *Framework) repairTier(tier cluster.Tier) {
	if f.c.ReadyCount(tier) > 0 || f.pendingScale[tier] {
		return
	}
	f.pendingScale[tier] = true
	now := f.c.Eng.Now()
	f.log(Event{Time: now, Kind: Repair, Tier: tier, Detail: "tier dark: provisioning replacement"})
	f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditRepair, Tier: tier.String(),
		Cause: "tier dark: zero ready VMs", Detail: "launch replacement"})
	launched := f.c.AddVM(tier, func(srv *server.Server) {
		ready := f.c.Eng.Now()
		f.pendingScale[tier] = false
		f.lastOut[tier] = ready
		// Quiet ticks counted while the tier was dark measured a
		// configuration that no longer exists; restart the counter so
		// scale-in needs a full sustained window on the repaired tier.
		f.below[tier] = 0
		f.log(Event{Time: ready, Kind: Repair, Tier: tier, Detail: srv.Name() + " ready"})
		f.audit.Record(trace.AuditEvent{Time: ready, Kind: trace.AuditRepair, Tier: tier.String(),
			Cause: "tier dark: zero ready VMs", Detail: srv.Name() + " ready"})
		f.afterHardwareScaling(tier)
	})
	if !launched {
		f.pendingScale[tier] = false
		f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditScaleOutDenied, Tier: tier.String(),
			Cause: "repair launch refused: tier at capacity"})
	}
}

// decideSLA feeds the web tier's measured response times into the sliding
// tail tracker and scales the busiest tier when the tail breaches the
// target. The web tier's server-side RT covers the whole downstream path,
// so it approximates the client-visible latency without client telemetry.
func (f *Framework) decideSLA() {
	if f.slaTail == nil {
		return
	}
	now := f.c.Eng.Now()
	for _, srv := range f.c.Servers(cluster.Web) {
		for _, w := range f.w.FineSince(srv.Name(), f.slaFed) {
			if w.Completions > 0 && !math.IsNaN(w.RT) {
				f.slaTail.Add(w.Start, w.RT)
			}
		}
	}
	f.slaFed = now
	tail := f.slaTail.Percentile(now, f.cfg.SLAPercentile)
	if math.IsNaN(tail) {
		return
	}
	if tail > f.cfg.SLATarget {
		f.slaAbove++
	} else {
		f.slaAbove = 0
		return
	}
	if f.slaAbove < f.cfg.SustainOut {
		return
	}
	// Scale the busiest tier (CPU or disk), unless it is already scaling
	// or cooling down.
	tier := cluster.App
	if f.c.TierCPU(cluster.DB) > f.c.TierCPU(cluster.App) {
		tier = cluster.DB
	}
	cause := fmt.Sprintf("sla trigger: p%.0f=%.0fms > %.0fms", f.cfg.SLAPercentile, tail*1000, f.cfg.SLATarget*1000)
	if f.pendingScale[tier] || now-f.lastOut[tier] < f.cfg.OutCooldown {
		if f.slaAbove == f.cfg.SustainOut {
			f.cooldownSkips++
			f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditCooldownSkip, Tier: tier.String(),
				Cause: cause, Detail: suppression(f.pendingScale[tier]), Value: tail})
		}
		return
	}
	f.slaAbove = 0
	f.triggers++
	f.log(Event{Time: now, Kind: ScaleOut, Tier: tier,
		Detail: fmt.Sprintf("sla trigger: p%.0f=%.0fms > %.0fms", f.cfg.SLAPercentile, tail*1000, f.cfg.SLATarget*1000)})
	f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditThresholdTrigger, Tier: tier.String(),
		Cause: cause, Value: tail})
	f.scaleOut(tier, cause)
}

// suppression names why a trigger could not act, for audit annotations.
func suppression(pending bool) string {
	if pending {
		return "suppressed: scale already pending"
	}
	return "suppressed: cooldown active"
}

func (f *Framework) decideTier(tier cluster.Tier) {
	now := f.c.Eng.Now()
	cpu := f.c.TierCPU(tier)
	if cpu > f.cfg.High {
		f.above[tier]++
		f.below[tier] = 0
	} else if cpu < f.cfg.Low {
		f.below[tier]++
		f.above[tier] = 0
	} else {
		f.above[tier] = 0
		f.below[tier] = 0
	}

	if f.above[tier] >= f.cfg.SustainOut {
		cause := fmt.Sprintf("cpu=%.2f > %.2f for %d checks", cpu, f.cfg.High, f.above[tier])
		if !f.pendingScale[tier] && now-f.lastOut[tier] >= f.cfg.OutCooldown {
			f.triggers++
			f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditThresholdTrigger, Tier: tier.String(),
				Cause: cause, Value: cpu})
			f.scaleOut(tier, cause)
			return
		}
		// Audit the suppressed trigger once per episode (the first check
		// on which it would have fired).
		if f.above[tier] == f.cfg.SustainOut {
			f.cooldownSkips++
			f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditCooldownSkip, Tier: tier.String(),
				Cause: cause, Detail: suppression(f.pendingScale[tier]), Value: cpu})
		}
	}
	if f.below[tier] >= f.cfg.SustainIn &&
		!f.pendingScale[tier] &&
		now-f.lastIn[tier] >= f.cfg.InCooldown &&
		f.c.ReadyCount(tier) > 1 {
		f.scaleIn(tier)
	}
}

func (f *Framework) scaleOut(tier cluster.Tier, cause string) {
	now := f.c.Eng.Now()
	// Vertical scaling first, when enabled for the DB tier: adding a
	// vCPU to a live VM needs no data replication or preparation period.
	if tier == cluster.DB && f.cfg.VerticalDBMaxCores > 0 {
		for _, srv := range f.c.Servers(cluster.DB) {
			if srv.Draining() || srv.Cores() >= f.cfg.VerticalDBMaxCores {
				continue
			}
			srv.SetCores(srv.Cores() + 1)
			f.lastOut[tier] = now
			f.above[tier] = 0
			f.log(Event{Time: now, Kind: ScaleOut, Tier: tier,
				Detail: fmt.Sprintf("scale-up %s to %d cores", srv.Name(), srv.Cores())})
			f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditScaleUp, Tier: tier.String(),
				Cause: cause, Detail: srv.Name(), Value: float64(srv.Cores())})
			f.afterHardwareScaling(tier)
			return
		}
	}
	f.pendingScale[tier] = true
	launched := f.c.AddVM(tier, func(srv *server.Server) {
		ready := f.c.Eng.Now()
		f.pendingScale[tier] = false
		f.lastOut[tier] = ready
		// Quiet ticks counted while the launch was pending measured the
		// pre-scale-out configuration; restart the counter so scale-in
		// needs a full sustained window on the grown tier — otherwise a
		// counter saturated during the preparation period drains the new
		// VM on the first post-ready tick (a launch→drain flap).
		f.below[tier] = 0
		f.log(Event{Time: ready, Kind: ScaleOut, Tier: tier, Detail: srv.Name() + " ready"})
		f.audit.Record(trace.AuditEvent{Time: ready, Kind: trace.AuditScaleOutReady, Tier: tier.String(),
			Cause: cause, Detail: srv.Name() + " ready"})
		f.afterHardwareScaling(tier)
	})
	if !launched { // tier at capacity
		f.pendingScale[tier] = false
		f.lastOut[tier] = now // back off instead of retrying every tick
		f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditScaleOutDenied, Tier: tier.String(),
			Cause: cause, Detail: "tier at capacity"})
		return
	}
	f.above[tier] = 0
	f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditScaleOutLaunch, Tier: tier.String(),
		Cause: cause, Detail: "VM launched: preparation period started"})
}

func (f *Framework) scaleIn(tier cluster.Tier) {
	now := f.c.Eng.Now()
	name := f.c.RemoveVM(tier)
	if name == "" {
		return
	}
	f.lastIn[tier] = now
	f.above[tier], f.below[tier] = 0, 0
	f.w.Forget(name)
	f.log(Event{Time: now, Kind: ScaleIn, Tier: tier, Detail: name})
	f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditScaleIn, Tier: tier.String(),
		Cause: fmt.Sprintf("cpu < %.2f for %d checks", f.cfg.Low, f.cfg.SustainIn), Detail: name})
	f.afterHardwareScaling(tier)
}

func (f *Framework) log(e Event) { f.events = append(f.events, e) }

// afterHardwareScaling is the second step of a scaling activity: DCM and
// ConScale adapt soft resources; EC2 does nothing.
func (f *Framework) afterHardwareScaling(tier cluster.Tier) {
	switch f.cfg.Mode {
	case EC2:
		return
	case DCM:
		f.applyDCM()
	case ConScale:
		f.applyConScale()
	}
}

// applyDCM installs the offline-trained profile: fixed per-server app
// threads, DB budget split across app servers.
func (f *Framework) applyDCM() {
	now := f.c.Eng.Now()
	p := f.cfg.Profile
	if p.AppThreads <= 0 || p.DBTotal <= 0 {
		return
	}
	apps := f.c.ReadyCount(cluster.App)
	if apps == 0 {
		return
	}
	perApp := clamp(ceilDiv(p.DBTotal, apps), f.cfg.MinConns, f.cfg.MaxConns)
	threads := clamp(p.AppThreads, f.cfg.MinThreads, f.cfg.MaxThreads)
	f.c.SetAppThreads(threads)
	f.c.SetDBConns(perApp)
	f.log(Event{Time: now, Kind: SoftAdapt, Tier: cluster.App,
		Detail: fmt.Sprintf("dcm profile: threads=%d dbconns=%d", threads, perApp)})
	f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditPoolResize, Tier: cluster.App.String(),
		Cause: "dcm offline profile", Detail: "app threads", Value: float64(threads)})
	f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditPoolResize, Tier: cluster.DB.String(),
		Cause: "dcm offline profile", Detail: "db conns per app", Value: float64(perApp)})
}

// refreshEstimates re-runs the SCT model over each server's recent window
// (the asynchronous Optimal Concurrency Estimator of Fig. 8) and applies
// the under-allocation escape.
func (f *Framework) refreshEstimates() {
	now := f.c.Eng.Now()
	since := now - f.est.Config().CollectionWindow
	for _, tier := range []cluster.Tier{cluster.App, cluster.DB} {
		for _, srv := range f.c.Servers(tier) {
			if srv.Draining() {
				continue
			}
			est, ok := f.est.Estimate(f.w.FineSince(srv.Name(), since))
			if !ok {
				continue
			}
			f.cachedEstimate[srv.Name()] = timedEstimate{est: est, at: now}
			f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditSCTEstimate, Tier: tier.String(),
				Cause: "estimator refresh", Detail: srv.Name(),
				Qlower: est.Qlower, Qupper: est.Qupper, Value: est.PlateauTP})
		}
	}
	f.escapeUnderAllocation(now)
}

// escapeUnderAllocation detects the under-allocation effect ([12] in the
// paper): requests queue at a tier while its critical hardware resource
// idles below the scale-out threshold, which means the current soft
// resource — not hardware — is the binding constraint and the SCT curve
// cannot reveal a higher optimum because concurrency is pinned. The
// controller widens the allocation multiplicatively until the curve's
// descending stage becomes observable again.
func (f *Framework) escapeUnderAllocation(now des.Time) {
	// App tier: accept queues grow while NO app server's CPU is near the
	// threshold — if any server is hardware-saturated the queues are the
	// hardware's fault and hardware scaling (not wider pools) is the fix.
	queued, maxAppCPU := 0, 0.0
	for _, srv := range f.c.Servers(cluster.App) {
		if srv.Draining() {
			continue
		}
		queued += srv.QueueLen()
		if u := srv.CPUUtilization(); u > maxAppCPU {
			maxAppCPU = u
		}
	}
	_, threads, conns := f.c.SoftResources()
	if maxAppCPU < f.cfg.High && queued > 2*threads {
		grown := clamp(threads*3/2, f.cfg.MinThreads, f.cfg.MaxThreads)
		if grown > threads {
			f.c.SetAppThreads(grown)
			f.lastEscape[cluster.App] = now
			f.log(Event{Time: now, Kind: SoftAdapt, Tier: cluster.App,
				Detail: fmt.Sprintf("under-allocation escape: app threads %d->%d", threads, grown)})
			f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditPoolResize, Tier: cluster.App.String(),
				Cause:  fmt.Sprintf("under-allocation escape: %d queued while max cpu=%.2f", queued, maxAppCPU),
				Detail: "app threads", Value: float64(grown)})
		}
	}
	// DB connections: app threads pile up waiting for the pool while the
	// DB tier's critical resources (CPU and disk) idle.
	maxDBBusy := 0.0
	for _, srv := range f.c.Servers(cluster.DB) {
		if srv.Draining() {
			continue
		}
		busy := srv.CPUUtilization()
		if d := srv.DiskUtilization(); d > busy {
			busy = d
		}
		if busy > maxDBBusy {
			maxDBBusy = busy
		}
	}
	waiting := 0
	for _, srv := range f.c.Servers(cluster.App) {
		if p := srv.CallPool(); p != nil {
			waiting += p.Waiting()
		}
	}
	if maxDBBusy < f.cfg.High && waiting > 2*conns {
		grown := clamp(conns*3/2, f.cfg.MinConns, f.cfg.MaxConns)
		if grown > conns {
			f.c.SetDBConns(grown)
			f.lastEscape[cluster.DB] = now
			f.log(Event{Time: now, Kind: SoftAdapt, Tier: cluster.DB,
				Detail: fmt.Sprintf("under-allocation escape: db conns %d->%d", conns, grown)})
			f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditPoolResize, Tier: cluster.DB.String(),
				Cause:  fmt.Sprintf("under-allocation escape: %d waiting while max db busy=%.2f", waiting, maxDBBusy),
				Detail: "db conns per app", Value: float64(grown)})
		}
	}
}

// applyConScale turns the cached SCT estimates into soft-resource
// settings: the app tier gets the estimated per-server optimal thread
// pool; the DB tier's total optimal concurrency (per-server Qlower × ready
// servers) is split across the app servers' connection pools. Only
// saturated estimates (descending stage witnessed) may *tighten* an
// allocation — an ascending-only curve proves nothing about the optimum
// being lower than the current setting.
func (f *Framework) applyConScale() {
	f.refreshEstimates()
	now := f.c.Eng.Now()
	_, curThreads, curConns := f.c.SoftResources()

	// A recent escape means the current estimates under-represent the
	// tier's true optimum (the pool was pinning concurrency); hold off
	// tightening until fresh post-escape data arrives.
	escapeHold := 30 * des.Second
	if appOpt, saturated, ok := f.tierOptimal(cluster.App); ok {
		threads := clamp(appOpt, f.cfg.MinThreads, f.cfg.MaxThreads)
		recentEscape := now-f.lastEscape[cluster.App] < escapeHold && f.lastEscape[cluster.App] > 0
		if threads >= curThreads || (saturated && !recentEscape) {
			f.c.SetAppThreads(threads)
			f.log(Event{Time: now, Kind: SoftAdapt, Tier: cluster.App,
				Detail: fmt.Sprintf("sct: app threads=%d", threads)})
			f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditPoolResize, Tier: cluster.App.String(),
				Cause:  fmt.Sprintf("sct optimal=%d saturated=%v", appOpt, saturated),
				Detail: "app threads", Value: float64(threads)})
		}
	}
	if dbOpt, saturated, ok := f.tierOptimal(cluster.DB); ok {
		apps := f.c.ReadyCount(cluster.App)
		dbs := f.c.ReadyCount(cluster.DB)
		if apps > 0 && dbs > 0 {
			perApp := clamp(ceilDiv(dbOpt*dbs, apps), f.cfg.MinConns, f.cfg.MaxConns)
			recentEscape := now-f.lastEscape[cluster.DB] < escapeHold && f.lastEscape[cluster.DB] > 0
			if perApp >= curConns || (saturated && !recentEscape) {
				f.c.SetDBConns(perApp)
				f.log(Event{Time: now, Kind: SoftAdapt, Tier: cluster.DB,
					Detail: fmt.Sprintf("sct: db optimal=%d/server -> conns=%d/app", dbOpt, perApp)})
				f.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditPoolResize, Tier: cluster.DB.String(),
					Cause:  fmt.Sprintf("sct optimal=%d/server saturated=%v", dbOpt, saturated),
					Detail: "db conns per app", Value: float64(perApp)})
			}
		}
	}
}

// tierOptimal aggregates the cached per-server estimates of a tier into a
// single optimal concurrency (mean of valid estimates, rounded). saturated
// reports whether a majority of contributing estimates witnessed the
// descending stage.
func (f *Framework) tierOptimal(tier cluster.Tier) (opt int, saturated, ok bool) {
	now := f.c.Eng.Now()
	maxAge := f.est.Config().CollectionWindow
	sum, n, sat := 0.0, 0, 0
	for _, srv := range f.c.Servers(tier) {
		if srv.Draining() {
			continue
		}
		te, found := f.cachedEstimate[srv.Name()]
		if !found || now-te.at > maxAge {
			continue // stale: describes a regime the window no longer covers
		}
		v := te.est.Optimal()
		if f.cfg.UseQupper && te.est.Qupper > v {
			v = te.est.Qupper
		}
		sum += float64(v)
		n++
		if te.est.Saturated {
			sat++
		}
	}
	if n == 0 {
		return 0, false, false
	}
	return int(math.Round(sum / float64(n))), sat*2 > n, true
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
