package scaling

import (
	"strings"
	"testing"

	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/rng"
	"conscale/internal/sct"
	"conscale/internal/workload"
)

// testCluster builds a small fast cluster: 1/1/1, 1-core VMs, short VM
// preparation so scaling effects land inside short test runs.
func testCluster(seed uint64) *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Seed = seed
	cfg.PrepDelay = 5 * des.Second
	return cluster.New(cfg)
}

// drive replays a step-load trace through the cluster for dur seconds.
func drive(c *cluster.Cluster, users int, dur des.Time) *workload.Generator {
	tr := workload.NewTrace(workload.SlowlyVarying, users, dur)
	g := workload.NewGenerator(c.Eng, rng.New(99), workload.GeneratorConfig{
		Trace:     tr,
		ThinkTime: 1,
	}, c.Submit)
	g.Start()
	return g
}

func fastSCT() sct.Config {
	return sct.Config{
		CollectionWindow: 60 * des.Second,
		MinTotalSamples:  30,
		MinDistinctBins:  3,
		MinSamplesPerBin: 2,
	}
}

func TestEC2ScalesOutUnderLoad(t *testing.T) {
	c := testCluster(1)
	cfg := DefaultConfig(EC2)
	f := New(c, cfg)
	f.Start()
	drive(c, 1800, 200)
	c.Eng.RunUntil(150)
	if c.ReadyCount(cluster.App) < 2 {
		t.Fatalf("app tier did not scale out: %d VMs", c.ReadyCount(cluster.App))
	}
	found := false
	for _, e := range f.Events() {
		if e.Kind == ScaleOut && e.Tier == cluster.App {
			found = true
		}
	}
	if !found {
		t.Fatal("no ScaleOut event logged")
	}
}

func TestEC2NeverTouchesSoftResources(t *testing.T) {
	c := testCluster(2)
	f := New(c, DefaultConfig(EC2))
	f.Start()
	drive(c, 1800, 200)
	c.Eng.RunUntil(200)
	web, app, db := c.SoftResources()
	if web != 1000 || app != 60 || db != 40 {
		t.Fatalf("EC2 changed soft resources: %d-%d-%d", web, app, db)
	}
	for _, e := range f.Events() {
		if e.Kind == SoftAdapt {
			t.Fatalf("EC2 logged a SoftAdapt event: %+v", e)
		}
	}
}

func TestConScaleAdaptsSoftResources(t *testing.T) {
	c := testCluster(3)
	cfg := DefaultConfig(ConScale)
	cfg.SCT = fastSCT()
	f := New(c, cfg)
	f.Start()
	drive(c, 1800, 280)
	c.Eng.RunUntil(280)
	adapted := false
	for _, e := range f.Events() {
		if e.Kind == SoftAdapt {
			adapted = true
		}
	}
	if !adapted {
		t.Fatal("ConScale never adapted soft resources")
	}
	_, app, db := c.SoftResources()
	if app == 60 && db == 40 {
		t.Fatal("soft resources unchanged from initial 60/40")
	}
	if app < cfg.MinThreads || app > cfg.MaxThreads {
		t.Fatalf("app threads %d outside clamps", app)
	}
	if db < cfg.MinConns || db > cfg.MaxConns {
		t.Fatalf("db conns %d outside clamps", db)
	}
}

func TestConScaleEstimatesPopulated(t *testing.T) {
	c := testCluster(4)
	cfg := DefaultConfig(ConScale)
	cfg.SCT = fastSCT()
	f := New(c, cfg)
	f.Start()
	drive(c, 1600, 220)
	c.Eng.RunUntil(220)
	ests := f.Estimates()
	if len(ests) == 0 {
		t.Fatal("no SCT estimates cached")
	}
	for name, est := range ests {
		if est.Qlower < 1 || est.Qupper < est.Qlower {
			t.Fatalf("%s has invalid estimate %+v", name, est)
		}
	}
}

func TestDCMAppliesProfile(t *testing.T) {
	c := testCluster(5)
	cfg := DefaultConfig(DCM)
	cfg.Profile = DCMProfile{AppThreads: 20, DBTotal: 40}
	f := New(c, cfg)
	f.Start()
	drive(c, 1800, 200)
	c.Eng.RunUntil(180)
	scaled := false
	for _, e := range f.Events() {
		if e.Kind == ScaleOut {
			scaled = true
		}
	}
	if !scaled {
		t.Skip("load did not trigger scaling; DCM apply untestable here")
	}
	_, app, db := c.SoftResources()
	if app != 20 {
		t.Fatalf("DCM app threads = %d, want 20", app)
	}
	apps := c.ReadyCount(cluster.App)
	want := (40 + apps - 1) / apps
	if db != want {
		t.Fatalf("DCM db conns = %d, want %d for %d apps", db, want, apps)
	}
}

func TestDCMEmptyProfileNoop(t *testing.T) {
	c := testCluster(6)
	cfg := DefaultConfig(DCM)
	f := New(c, cfg)
	f.Start()
	drive(c, 1800, 150)
	c.Eng.RunUntil(150)
	_, app, db := c.SoftResources()
	if app != 60 || db != 40 {
		t.Fatalf("empty profile changed soft resources: %d/%d", app, db)
	}
}

func TestScaleInAfterQuietPeriod(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Seed = 7
	cfg.PrepDelay = 2 * des.Second
	cfg.App = 3 // start over-provisioned
	c := cluster.New(cfg)
	fcfg := DefaultConfig(EC2)
	fcfg.SustainIn = 10
	fcfg.InCooldown = 5 * des.Second
	f := New(c, fcfg)
	f.Start()
	drive(c, 50, 300) // trivial load
	c.Eng.RunUntil(200)
	if c.ReadyCount(cluster.App) >= 3 {
		t.Fatalf("idle tier never scaled in: %d VMs", c.ReadyCount(cluster.App))
	}
	found := false
	for _, e := range f.Events() {
		if e.Kind == ScaleIn {
			found = true
		}
	}
	if !found {
		t.Fatal("no ScaleIn event logged")
	}
}

func TestScaleInKeepsOneVM(t *testing.T) {
	c := testCluster(8)
	fcfg := DefaultConfig(EC2)
	fcfg.SustainIn = 5
	fcfg.InCooldown = 2 * des.Second
	f := New(c, fcfg)
	f.Start()
	// No load at all: tiers idle the whole run.
	c.Eng.At(100, func() { c.Eng.Stop() })
	c.Eng.Every(des.Second, func() {}) // keep events flowing
	c.Eng.RunUntil(100)
	if c.ReadyCount(cluster.App) != 1 || c.ReadyCount(cluster.DB) != 1 {
		t.Fatalf("scale-in went below 1 VM: app=%d db=%d",
			c.ReadyCount(cluster.App), c.ReadyCount(cluster.DB))
	}
	f.Stop()
}

func TestStopDisarmsLoops(t *testing.T) {
	c := testCluster(9)
	f := New(c, DefaultConfig(EC2))
	f.Start()
	f.Stop()
	fired := c.Eng.Fired()
	c.Eng.RunUntil(50)
	// Only the ticker events already queued may fire; no sustained loops.
	if c.Eng.Fired() > fired+10 {
		t.Fatalf("loops still running after Stop: %d events", c.Eng.Fired()-fired)
	}
}

func TestClampAndCeilDiv(t *testing.T) {
	if clamp(5, 1, 10) != 5 || clamp(-3, 1, 10) != 1 || clamp(99, 1, 10) != 10 {
		t.Fatal("clamp wrong")
	}
	if ceilDiv(10, 3) != 4 || ceilDiv(9, 3) != 3 || ceilDiv(1, 2) != 1 {
		t.Fatal("ceilDiv wrong")
	}
}

func TestModeAndEventKindStrings(t *testing.T) {
	if EC2.String() != "ec2-autoscaling" || DCM.String() != "dcm" || ConScale.String() != "conscale" {
		t.Fatal("Mode.String wrong")
	}
	if ScaleOut.String() != "scale-out" || ScaleIn.String() != "scale-in" || SoftAdapt.String() != "soft-adapt" {
		t.Fatal("EventKind.String wrong")
	}
	if !strings.Contains(Mode(9).String(), "9") || !strings.Contains(EventKind(9).String(), "9") {
		t.Fatal("unknown enum formatting wrong")
	}
}

func TestWarehouseReceivesMetrics(t *testing.T) {
	c := testCluster(10)
	f := New(c, DefaultConfig(EC2))
	f.Start()
	drive(c, 500, 60)
	c.Eng.RunUntil(60)
	if len(f.Warehouse().Servers()) < 3 {
		t.Fatalf("warehouse has %d servers", len(f.Warehouse().Servers()))
	}
	if got := f.Warehouse().FineSince("mysql1", 0); len(got) == 0 {
		t.Fatal("no mysql1 fine samples in warehouse")
	}
}

func TestVerticalDBScaling(t *testing.T) {
	c := testCluster(11)
	fcfg := DefaultConfig(ConScale)
	fcfg.VerticalDBMaxCores = 2
	f := New(c, fcfg)
	f.Start()
	// Saturate the DB tier directly: many app threads, wide pools.
	c.SetAppThreads(200)
	c.SetDBConns(150)
	drive(c, 1800, 240)
	c.Eng.RunUntil(160)
	if c.Servers(cluster.DB)[0].Cores() != 2 {
		t.Fatalf("DB cores = %d, want vertical scale-up to 2", c.Servers(cluster.DB)[0].Cores())
	}
	foundUp := false
	for _, e := range f.Events() {
		if e.Kind == ScaleOut && e.Tier == cluster.DB &&
			strings.Contains(e.Detail, "scale-up") {
			foundUp = true
		}
	}
	if !foundUp {
		t.Fatal("no scale-up event logged")
	}
}

func TestVerticalFallsBackToHorizontal(t *testing.T) {
	c := testCluster(12)
	fcfg := DefaultConfig(ConScale)
	fcfg.VerticalDBMaxCores = 1 // already at the cap: must add VMs instead
	f := New(c, fcfg)
	f.Start()
	c.SetAppThreads(200)
	c.SetDBConns(150)
	drive(c, 1800, 240)
	c.Eng.RunUntil(240)
	if c.Servers(cluster.DB)[0].Cores() != 1 {
		t.Fatal("scale-up happened beyond the core cap")
	}
	// The DB tier must have gained a VM at some point (it may legitimately
	// scale back in when the trace declines).
	horizontal := false
	for _, e := range f.Events() {
		if e.Kind == ScaleOut && e.Tier == cluster.DB &&
			!strings.Contains(e.Detail, "scale-up") {
			horizontal = true
		}
	}
	if !horizontal {
		t.Fatal("no horizontal fallback scale-out logged")
	}
}

func TestSLATriggerScalesWithoutCPUThreshold(t *testing.T) {
	// Under-allocation regime: tiny thread pool keeps app CPU low while
	// queues (and response times) grow. The CPU threshold never fires;
	// the SLA trigger must.
	cfg := cluster.DefaultConfig()
	cfg.Seed = 13
	cfg.PrepDelay = 5 * des.Second
	cfg.AppThreads = 3 // far below the ~10 optimum: CPU stays < 80%
	c := cluster.New(cfg)
	fcfg := DefaultConfig(EC2)
	fcfg.SLATarget = 0.200 // 200 ms p95 target
	fcfg.SLAPercentile = 95
	f := New(c, fcfg)
	f.Start()
	drive(c, 1200, 120)
	c.Eng.RunUntil(120)
	slaFired := false
	for _, e := range f.Events() {
		if e.Kind == ScaleOut && strings.Contains(e.Detail, "sla trigger") {
			slaFired = true
		}
	}
	if !slaFired {
		t.Fatal("SLA trigger never fired despite burning response times")
	}
}

func TestSLATriggerQuietWhenHealthy(t *testing.T) {
	c := testCluster(14)
	fcfg := DefaultConfig(EC2)
	fcfg.SLATarget = 5.0 // absurdly generous: never breached
	f := New(c, fcfg)
	f.Start()
	drive(c, 400, 80) // light load
	c.Eng.RunUntil(80)
	for _, e := range f.Events() {
		if strings.Contains(e.Detail, "sla trigger") {
			t.Fatalf("SLA trigger fired on a healthy system: %+v", e)
		}
	}
}
