package scaling

import (
	"testing"

	"conscale/internal/cluster"
)

// TestFrameworkRepairsDeadTier: when a crash empties a tier, its CPU
// signal reads zero and the threshold rule alone would never act. The
// repair path must re-provision the tier.
func TestFrameworkRepairsDeadTier(t *testing.T) {
	c := testCluster(1) // PrepDelay 5 s
	f := New(c, DefaultConfig(EC2))
	f.Start()
	drive(c, 500, 120)

	c.Eng.At(10, func() {
		if got := c.KillVM(cluster.DB); got == "" {
			t.Error("kill failed")
		}
	})
	c.Eng.RunUntil(40)
	f.Stop()

	if got := c.ReadyCount(cluster.DB); got < 1 {
		t.Fatalf("DB tier still dark after repair window: ReadyCount = %d", got)
	}
	var repairs []Event
	for _, e := range f.Events() {
		if e.Kind == Repair && e.Tier == cluster.DB {
			repairs = append(repairs, e)
		}
	}
	if len(repairs) < 2 { // provisioning + ready
		t.Fatalf("repair events = %d, want provisioning + ready", len(repairs))
	}
	// The replacement must arrive one preparation period after detection,
	// and only one replacement may be provisioned (no repair storm).
	if dt := repairs[1].Time - repairs[0].Time; dt < 5 || dt > 6 {
		t.Fatalf("replacement took %v s, want ~PrepDelay (5 s)", dt)
	}
	if c.ReadyCount(cluster.DB) > 1 {
		t.Fatalf("repair storm: %d DB VMs", c.ReadyCount(cluster.DB))
	}
}

func TestRepairEventKindString(t *testing.T) {
	if Repair.String() != "repair" {
		t.Fatalf("Repair.String() = %q", Repair.String())
	}
}
