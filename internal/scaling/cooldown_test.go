package scaling

import (
	"testing"

	"conscale/internal/cluster"
	"conscale/internal/des"
)

// twoAppCluster returns a cluster with two ready app VMs and the engine
// advanced past their preparation, so scale-in is not blocked by the
// last-VM guard.
func twoAppCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c := testCluster(1)
	if !c.AddVM(cluster.App, nil) {
		t.Fatal("could not add second app VM")
	}
	c.Eng.RunUntil(30 * des.Second)
	if got := c.ReadyCount(cluster.App); got != 2 {
		t.Fatalf("want 2 ready app VMs, got %d", got)
	}
	return c
}

func countKind(events []Event, kind EventKind, tier cluster.Tier) int {
	n := 0
	for _, e := range events {
		if e.Kind == kind && e.Tier == tier {
			n++
		}
	}
	return n
}

// TestQuietCounterResetsWhenLaunchLands pins the flap fix: quiet ticks
// accumulated while a scale-out launch (or a dark-tier repair) was
// pending measured a configuration that no longer exists, so the ready
// callback must restart the below-counter — otherwise a counter
// saturated during the preparation period drains the new VM on the
// first post-ready decision tick.
func TestQuietCounterResetsWhenLaunchLands(t *testing.T) {
	cases := []struct {
		name string
		arm  func(t *testing.T, c *cluster.Cluster, f *Framework)
	}{
		{"threshold scale-out path", func(t *testing.T, c *cluster.Cluster, f *Framework) {
			f.scaleOut(cluster.App, "test launch")
		}},
		{"repair path", func(t *testing.T, c *cluster.Cluster, f *Framework) {
			for c.KillVM(cluster.App) != "" {
			}
			f.repairTier(cluster.App)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := twoAppCluster(t)
			cfg := DefaultConfig(EC2)
			f := New(c, cfg)
			// A quiet counter saturated before the launch (e.g. while the
			// tier idled or sat dark awaiting repair).
			f.below[cluster.App] = cfg.SustainIn
			tc.arm(t, c, f)
			c.Eng.RunUntil(c.Eng.Now() + 10*des.Second) // past the 5 s test PrepDelay
			if got := f.below[cluster.App]; got != 0 {
				t.Fatalf("below counter survived the launch landing: %d (want 0)", got)
			}
			// The very next decision tick must not drain the new VM.
			f.decideTier(cluster.App)
			if got := countKind(f.Events(), ScaleIn, cluster.App); got != 0 {
				t.Fatalf("scale-in fired on the first post-ready tick (flap): %v", f.Events())
			}
		})
	}
}

// TestScaleInAfterRepairPathScaleOut drives the full repair sequence:
// the app tier goes dark mid-run, the repair path re-provisions it, a
// second VM arrives outside the framework's own actions, and any
// scale-in must wait a full sustained quiet window measured after the
// repair lands — not act on quiet ticks counted against the dead tier.
func TestScaleInAfterRepairPathScaleOut(t *testing.T) {
	c := twoAppCluster(t) // engine now at 30 s
	cfg := DefaultConfig(EC2)
	f := New(c, cfg)
	f.Start()
	defer f.Stop()

	// Kill both app VMs at 35 s: the tier goes dark and only the repair
	// path can bring it back (~41 s with the 5 s test PrepDelay).
	c.Eng.At(35*des.Second, func() {
		for c.KillVM(cluster.App) != "" {
		}
	})
	// A second VM appears outside the framework's own actions (an
	// operator, or another controller's leftovers) at 65 s, making the
	// tier eligible for scale-in again.
	c.Eng.At(65*des.Second, func() { c.AddVM(cluster.App, nil) })
	c.Eng.RunUntil(200 * des.Second)

	var repairReady des.Time
	for _, e := range f.Events() {
		if e.Kind == Repair && e.Tier == cluster.App {
			repairReady = e.Time
		}
	}
	if repairReady == 0 {
		t.Fatal("repair path never fired for the dark app tier")
	}
	// Sustained quiet must be re-measured on the repaired configuration:
	// no scale-in may land before SustainIn checks after the repair. The
	// decision tick at the ready instant itself is the first quiet
	// measurement (the ready callback fires before the same-time tick),
	// so the window closes SustainIn-1 ticks later.
	minIn := repairReady + des.Time(cfg.SustainIn-1)*cfg.CheckEvery
	for _, e := range f.Events() {
		if e.Kind == ScaleIn && e.Tier == cluster.App && e.Time < minIn {
			t.Fatalf("scale-in at %v s flapped against repair completing at %v s (min legal %v s)",
				e.Time, repairReady, minIn)
		}
	}
	// The idle cluster must still scale in eventually — the fix defers
	// the action, it does not disable it.
	if got := countKind(f.Events(), ScaleIn, cluster.App); got == 0 {
		t.Fatal("scale-in never fired on the idle cluster after the full quiet window")
	}
}

// TestSLATriggerFiresOncePerCooldown pins the decideSLA suppression
// behavior on back-to-back ticks: a tail breach sustained across many
// consecutive decision ticks arms exactly one launch until that launch
// completes and its cooldown expires — repeated ticks must neither
// double-launch nor re-audit the suppressed trigger every tick.
func TestSLATriggerFiresOncePerCooldown(t *testing.T) {
	c := testCluster(1)
	cfg := DefaultConfig(EC2)
	cfg.SLATarget = 0.2
	cfg.SLAPercentile = 95
	f := New(c, cfg)

	// Saturate the sustain counter and feed a breaching tail, then run
	// decideSLA on back-to-back ticks. Start past the out-cooldown so the
	// first breach is genuinely eligible to fire.
	c.Eng.RunUntil(30 * des.Second)
	now := c.Eng.Now()
	for i := 0; i < 40; i++ {
		f.slaTail.Add(now, 1.0) // 1000 ms >> 200 ms target
	}
	f.slaAbove = cfg.SustainOut
	f.decideSLA()
	if got := f.triggers; got != 1 {
		t.Fatalf("first breaching tick: want 1 trigger, got %d", got)
	}
	launches := countKind(f.Events(), ScaleOut, cluster.App) + countKind(f.Events(), ScaleOut, cluster.DB)
	if launches != 1 {
		t.Fatalf("first breaching tick: want 1 scale-out log entry, got %d", launches)
	}

	// Back-to-back ticks while the launch is pending: the sustain counter
	// rebuilds, but the pending guard must hold the fire.
	for i := 0; i < 10; i++ {
		c.Eng.RunUntil(c.Eng.Now() + des.Second)
		f.slaTail.Add(c.Eng.Now(), 1.0)
		f.decideSLA()
	}
	if got := f.triggers; got != 1 {
		t.Fatalf("pending window: trigger double-fired (%d triggers)", got)
	}
	if got := f.cooldownSkips; got != 1 {
		t.Fatalf("suppressed episode should audit exactly once, got %d cooldown skips", got)
	}
}
