package scaling

import (
	"sort"

	"conscale/internal/telemetry"
)

// RegisterTelemetry publishes the framework's decision state on a metrics
// registry. Everything here is collector-based — counts and estimates the
// framework already tracks are read at scrape time — so the decision loops
// pay nothing for it, and because collectors only read, arming telemetry
// cannot change a run's trajectory.
func (f *Framework) RegisterTelemetry(reg *telemetry.Registry) {
	if f == nil || reg == nil {
		return
	}
	reg.Collect("conscale_scaling_events_total", "Scaling log entries by action kind.",
		telemetry.KindCounter, func(emit func(float64, ...string)) {
			var byKind [4]int
			for _, e := range f.events {
				if int(e.Kind) < len(byKind) {
					byKind[e.Kind]++
				}
			}
			for k, n := range byKind {
				emit(float64(n), "kind", EventKind(k).String())
			}
		})
	reg.CounterFunc("conscale_scaling_triggers_total",
		"Threshold and SLA triggers that armed a scale-out.",
		func() float64 { return float64(f.triggers) })
	reg.CounterFunc("conscale_scaling_cooldown_skips_total",
		"Triggers suppressed by a pending scale or active cooldown.",
		func() float64 { return float64(f.cooldownSkips) })

	sctCollector := func(pick func(te timedEstimate) float64) telemetry.Collector {
		return func(emit func(float64, ...string)) {
			names := make([]string, 0, len(f.cachedEstimate))
			for name := range f.cachedEstimate {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				emit(pick(f.cachedEstimate[name]), "server", name)
			}
		}
	}
	reg.Collect("conscale_sct_qlower", "Lower bound of the SCT rational concurrency range.",
		telemetry.KindGauge, sctCollector(func(te timedEstimate) float64 { return float64(te.est.Qlower) }))
	reg.Collect("conscale_sct_qupper", "Upper bound of the SCT rational concurrency range.",
		telemetry.KindGauge, sctCollector(func(te timedEstimate) float64 { return float64(te.est.Qupper) }))
	reg.Collect("conscale_sct_plateau_tp", "Estimated plateau throughput of the SCT curve.",
		telemetry.KindGauge, sctCollector(func(te timedEstimate) float64 { return te.est.PlateauTP }))
}
