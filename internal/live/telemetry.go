package live

import "conscale/internal/telemetry"

// Totals returns the server's lifetime request counts (arrived, completed,
// errored), safe from any goroutine.
func (s *Server) Totals() (arrived, completed, errored int) {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	return s.rec.Totals()
}

// Waiting returns the requests queued for a thread.
func (s *Server) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiting
}

// RegisterTelemetry publishes the live server's state on a registry — the
// same metric names the simulated cluster uses, so one Prometheus dashboard
// reads both modes. Gauges go through the server's mutex-guarded accessors
// at scrape time; only the response-time histogram and reject/drop counters
// sit on the request path, and those are lock-free.
func (s *Server) RegisterTelemetry(reg *telemetry.Registry) {
	if s == nil || reg == nil {
		return
	}
	name := s.cfg.Name
	reg.GaugeFunc("conscale_threads_active", "Requests currently holding server threads.",
		func() float64 { return float64(s.Active()) }, "server", name)
	reg.GaugeFunc("conscale_thread_limit", "Soft-resource thread pool size.",
		func() float64 { return float64(s.ThreadLimit()) }, "server", name)
	reg.GaugeFunc("conscale_accept_queue_depth", "Requests waiting for a thread.",
		func() float64 { return float64(s.Waiting()) }, "server", name)
	reg.CounterFunc("conscale_requests_completed_total", "Requests completed by the server.",
		func() float64 { _, completed, _ := s.Totals(); return float64(completed) }, "server", name)
	reg.CounterFunc("conscale_requests_errored_total", "Requests rejected or failed by the server.",
		func() float64 { _, _, errored := s.Totals(); return float64(errored) }, "server", name)
	s.telRT = reg.Histogram("conscale_server_rt_seconds",
		"Per-server response time of successful requests.", "server", name)
	s.telRejects = reg.Counter("conscale_server_rejects_total",
		"Queue overflows and shutdown rejections.", "server", name)
	s.telDrops = reg.Counter("conscale_server_drops_total",
		"Requests failed by a downstream call.", "server", name)
}
