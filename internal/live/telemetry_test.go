package live

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"conscale/internal/telemetry"
)

// TestMetricsEndpointRoundTrip is the livestack /metrics contract: a
// two-tier live stack published on one registry, served over HTTP as
// Prometheus text, must parse back into the expected families with values
// that agree with the servers' own accounting.
func TestMetricsEndpointRoundTrip(t *testing.T) {
	db := startTest(t, ServerConfig{
		Name: "db", DwellPerRequest: time.Millisecond,
		ThreadLimit: 16, QueueLimit: 64,
	})
	app := startTest(t, ServerConfig{
		Name: "app", CPUPerRequest: 100 * time.Microsecond,
		Downstream: db.URL(), DownstreamCalls: 1,
		ThreadLimit: 8, QueueLimit: 64,
	})
	reg := telemetry.NewRegistry()
	app.RegisterTelemetry(reg)
	db.RegisterTelemetry(reg)

	ms := httptest.NewServer(telemetry.Handler(reg))
	defer ms.Close()

	res := RunClosedLoop(app.URL(), 4, 0, 200*time.Millisecond)
	if res.Completed == 0 {
		t.Fatal("load run completed nothing")
	}

	resp, err := http.Get(ms.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	fams, err := telemetry.ParseProm(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("endpoint output failed to parse: %v\n%s", err, body)
	}
	byName := map[string]telemetry.PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, want := range []string{
		"conscale_threads_active",
		"conscale_thread_limit",
		"conscale_accept_queue_depth",
		"conscale_requests_completed_total",
		"conscale_requests_errored_total",
		"conscale_server_rt_seconds",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("endpoint missing family %s", want)
		}
	}

	// Values round-trip: the scraped completion counters match the
	// servers' own totals, per server label.
	for _, s := range []*Server{app, db} {
		_, completed, _ := s.Totals()
		found := false
		for _, smp := range byName["conscale_requests_completed_total"].Samples {
			if strings.Contains(smp.Labels, `server="`+s.cfg.Name+`"`) {
				found = true
				if int(smp.Value) != completed {
					t.Errorf("%s: scraped %v completed, server says %d", s.cfg.Name, smp.Value, completed)
				}
			}
		}
		if !found {
			t.Errorf("no completed_total sample for %s", s.cfg.Name)
		}
	}

	// The app RT histogram saw the successful requests: its +Inf count in
	// the exposition equals the histogram count, which is > 0.
	rt := byName["conscale_server_rt_seconds"]
	var infCount float64
	for _, smp := range rt.Samples {
		if strings.HasSuffix(smp.Name, "_bucket") &&
			strings.Contains(smp.Labels, `le="+Inf"`) &&
			strings.Contains(smp.Labels, `server="app"`) {
			infCount = smp.Value
		}
	}
	if infCount == 0 {
		t.Error("app RT histogram empty in exposition")
	}
}
