package live

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"conscale/internal/sct"
)

func startTest(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	s, err := StartServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestServesRequests(t *testing.T) {
	s := startTest(t, ServerConfig{
		Name: "app", CPUPerRequest: 100 * time.Microsecond,
		ThreadLimit: 8, QueueLimit: 64,
	})
	resp, err := http.Get(s.URL())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestThreadLimitEnforced(t *testing.T) {
	s := startTest(t, ServerConfig{
		Name: "app", DwellPerRequest: 50 * time.Millisecond,
		ThreadLimit: 3, QueueLimit: 100,
	})
	var wg sync.WaitGroup
	maxActive := 0
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			a := s.Active()
			mu.Lock()
			if a > maxActive {
				maxActive = a
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(s.URL())
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(done)
	mu.Lock()
	defer mu.Unlock()
	if maxActive > 3 {
		t.Fatalf("active reached %d with limit 3", maxActive)
	}
}

func TestQueueOverflow503(t *testing.T) {
	s := startTest(t, ServerConfig{
		Name: "app", DwellPerRequest: 200 * time.Millisecond,
		ThreadLimit: 1, QueueLimit: 1,
	})
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(s.URL())
			if err != nil {
				return
			}
			defer resp.Body.Close()
			mu.Lock()
			counts[resp.StatusCode]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if counts[http.StatusServiceUnavailable] == 0 {
		t.Fatalf("no 503s despite queue limit 1: %v", counts)
	}
	if counts[http.StatusOK] == 0 {
		t.Fatalf("no successes: %v", counts)
	}
}

func TestDownstreamChain(t *testing.T) {
	db := startTest(t, ServerConfig{
		Name: "db", DwellPerRequest: 2 * time.Millisecond,
		ThreadLimit: 32, QueueLimit: 128,
	})
	app := startTest(t, ServerConfig{
		Name: "app", CPUPerRequest: 100 * time.Microsecond,
		Downstream: db.URL(), DownstreamCalls: 2,
		ThreadLimit: 16, QueueLimit: 128,
	})
	res := RunClosedLoop(app.URL(), 4, 0, 300*time.Millisecond)
	if res.Completed == 0 {
		t.Fatal("nothing completed through the chain")
	}
	if res.Errors > res.Completed/10 {
		t.Fatalf("too many errors: %+v", res)
	}
	// Each app request drives 2 DB requests.
	dbDone := 0
	for _, w := range db.Samples() {
		dbDone += w.Completions
	}
	if dbDone < res.Completed { // at least 1:1 even with windows still open
		t.Fatalf("db completions %d for %d app requests", dbDone, res.Completed)
	}
}

func TestDownstreamFailurePropagates(t *testing.T) {
	app := startTest(t, ServerConfig{
		Name: "app", Downstream: "http://127.0.0.1:1", DownstreamCalls: 1,
		ThreadLimit: 4, QueueLimit: 16,
	})
	resp, err := http.Get(app.URL())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
}

func TestRuntimeResizeAdmitsWaiters(t *testing.T) {
	s := startTest(t, ServerConfig{
		Name: "app", DwellPerRequest: 120 * time.Millisecond,
		ThreadLimit: 1, QueueLimit: 100,
	})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(s.URL())
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(30 * time.Millisecond)
	s.SetThreadLimit(4) // all waiters should run concurrently now
	wg.Wait()
	elapsed := time.Since(start)
	// Serial at limit 1 would take ~480 ms; resized it finishes in ~2 rounds.
	if elapsed > 400*time.Millisecond {
		t.Fatalf("resize did not admit waiters: took %v", elapsed)
	}
	if s.ThreadLimit() != 4 {
		t.Fatalf("limit = %d", s.ThreadLimit())
	}
}

func TestMetricsConservation(t *testing.T) {
	s := startTest(t, ServerConfig{
		Name: "app", CPUPerRequest: 50 * time.Microsecond,
		ThreadLimit: 8, QueueLimit: 64,
	})
	const n = 40
	for i := 0; i < n; i++ {
		resp, err := http.Get(s.URL())
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	time.Sleep(120 * time.Millisecond) // let the last window close
	total := 0
	for _, w := range s.Samples() {
		total += w.Completions
	}
	if total != n {
		t.Fatalf("windows recorded %d completions, want %d", total, n)
	}
}

// TestSCTOnLiveServer is the point of the package: the live server's 50 ms
// tuples feed the same SCT estimator the simulator uses, and the measured
// throughput curve has the expected shape (higher concurrency → higher
// throughput until the dwell-bound knee).
func TestSCTOnLiveServer(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time load test")
	}
	// Dwell-bound server: 5 ms dwell per request means one user achieves
	// ~200 req/s and ~8 users are needed to keep 8 threads busy.
	s := startTest(t, ServerConfig{
		Name: "app", DwellPerRequest: 5 * time.Millisecond,
		ThreadLimit: 64, QueueLimit: 256,
	})
	var all []float64
	for _, users := range []int{1, 2, 4, 8, 16, 32} {
		res := RunClosedLoop(s.URL(), users, 0, 250*time.Millisecond)
		tp := float64(res.Completed) / 0.25
		all = append(all, tp)
	}
	// Throughput grows with offered concurrency (allowing noise).
	if all[3] < 2.5*all[0] {
		t.Fatalf("throughput did not scale with users: %v", all)
	}
	samples := s.Samples()
	if len(samples) < 20 {
		t.Fatalf("only %d windows", len(samples))
	}
	est := sct.New(sct.Config{MinTotalSamples: 15, MinDistinctBins: 3, MinSamplesPerBin: 2})
	e, ok := est.Estimate(samples)
	if !ok {
		t.Skip("not enough diversity on this machine; curve shape already checked")
	}
	if e.Qlower < 1 || e.Qlower > 64 {
		t.Fatalf("live estimate out of range: %+v", e)
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := StartServer(ServerConfig{ThreadLimit: 0}); err == nil {
		t.Fatal("zero thread limit accepted")
	}
	if _, err := StartServer(ServerConfig{ThreadLimit: 1, QueueLimit: -1}); err == nil {
		t.Fatal("negative queue accepted")
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	s, err := StartServer(ServerConfig{Name: "app", ThreadLimit: 2, QueueLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	url := s.URL()
	s.Close()
	if resp, err := http.Get(url); err == nil {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("closed server served a request")
		}
	}
}
