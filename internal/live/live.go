// Package live is the reproduction's "real mode": actual HTTP servers
// with real goroutine thread pools, real CPU burn, and real synchronous
// downstream calls — a miniature of the paper's Apache/Tomcat/MySQL stack
// built on net/http. It exists to show that the SCT measurement pipeline
// and estimator (which the simulator exercises at scale) work unchanged on
// genuine concurrency: a live server's 50 ms {Q, TP, RT} tuples feed the
// same sct.Estimator.
//
// Everything here runs in real time on real cores, so tests built on it
// assert shapes (ascending-then-flat throughput, pool limits respected),
// not exact numbers.
package live

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"conscale/internal/des"
	"conscale/internal/metrics"
	"conscale/internal/telemetry"
)

// ServerConfig describes one live tier server.
type ServerConfig struct {
	Name string
	// CPUPerRequest is busy-spun on a core per request (service demand).
	CPUPerRequest time.Duration
	// DwellPerRequest is slept per request (non-CPU protocol time).
	DwellPerRequest time.Duration
	// Downstream, when non-empty, is the next tier's URL; each request
	// performs DownstreamCalls sequential GETs against it while holding
	// its thread (the paper's synchronous RPC).
	Downstream      string
	DownstreamCalls int
	// ThreadLimit bounds concurrently processing requests (the soft
	// resource). QueueLimit bounds waiters beyond that; overflow gets 503.
	ThreadLimit int
	QueueLimit  int
	// Window is the metrics aggregation interval (default 50 ms).
	Window time.Duration
}

// Server is a live tier server.
type Server struct {
	cfg      ServerConfig
	httpSrv  *http.Server
	listener net.Listener
	client   *http.Client

	mu      sync.Mutex
	limit   int
	active  int
	waiting int
	cond    *sync.Cond
	closed  bool

	recMu sync.Mutex
	rec   *metrics.Recorder
	start time.Time

	// Telemetry instruments (nil until RegisterTelemetry; nil-safe no-ops).
	telRT      *telemetry.Histogram
	telRejects *telemetry.Counter
	telDrops   *telemetry.Counter
}

// StartServer launches the server on an ephemeral localhost port.
func StartServer(cfg ServerConfig) (*Server, error) {
	if cfg.ThreadLimit <= 0 {
		return nil, fmt.Errorf("live: thread limit must be positive")
	}
	if cfg.QueueLimit < 0 {
		return nil, fmt.Errorf("live: negative queue limit")
	}
	if cfg.Window <= 0 {
		cfg.Window = 50 * time.Millisecond
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		listener: ln,
		limit:    cfg.ThreadLimit,
		rec:      metrics.NewRecorder(des.Time(cfg.Window.Seconds())),
		start:    time.Now(),
		client: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 256,
				MaxConnsPerHost:     0,
			},
		},
	}
	s.cond = sync.NewCond(&s.mu)
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handle)
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return s, nil
}

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.listener.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	s.httpSrv.Shutdown(ctx) //nolint:errcheck // best-effort
}

// ThreadLimit returns the current pool size.
func (s *Server) ThreadLimit() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.limit
}

// SetThreadLimit resizes the pool at runtime (the mgmt-agent actuator
// path); growth wakes queued waiters.
func (s *Server) SetThreadLimit(n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.limit = n
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Active returns the requests currently holding threads.
func (s *Server) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// now returns the elapsed virtual-format timestamp for the recorder.
func (s *Server) now() des.Time { return des.Time(time.Since(s.start).Seconds()) }

// Samples drains the server's completed measurement windows — the same
// tuples the simulator produces, ready for sct.Estimator.
func (s *Server) Samples() []metrics.WindowSample {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	return s.rec.Flush(s.now())
}

// acquire claims a thread, queueing up to QueueLimit. It reports false on
// overflow or shutdown.
func (s *Server) acquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.waiting >= s.cfg.QueueLimit && s.active >= s.limit {
		return false
	}
	s.waiting++
	for s.active >= s.limit && !s.closed {
		s.cond.Wait()
	}
	s.waiting--
	if s.closed {
		return false
	}
	s.active++
	return true
}

func (s *Server) release() {
	s.mu.Lock()
	s.active--
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	arrival := time.Now()
	if !s.acquire() {
		s.recMu.Lock()
		s.rec.Reject(s.now())
		s.recMu.Unlock()
		s.telRejects.Inc()
		http.Error(w, "queue full", http.StatusServiceUnavailable)
		return
	}
	defer s.release()

	s.recMu.Lock()
	s.rec.Arrive(s.now())
	s.recMu.Unlock()

	ok := s.work(r.Context())

	s.recMu.Lock()
	if ok {
		s.rec.Depart(s.now(), time.Since(arrival).Seconds())
	} else {
		s.rec.Drop(s.now())
	}
	s.recMu.Unlock()
	if ok {
		s.telRT.Observe(time.Since(arrival).Seconds())
	} else {
		s.telDrops.Inc()
	}

	if !ok {
		http.Error(w, "downstream failure", http.StatusBadGateway)
		return
	}
	fmt.Fprintln(w, "ok")
}

// work performs the request's service demands; false means a downstream
// call failed.
func (s *Server) work(ctx context.Context) bool {
	spin(s.cfg.CPUPerRequest)
	for i := 0; i < s.cfg.DownstreamCalls && s.cfg.Downstream != ""; i++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.cfg.Downstream, nil)
		if err != nil {
			return false
		}
		resp, err := s.client.Do(req)
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false
		}
	}
	if s.cfg.DwellPerRequest > 0 {
		time.Sleep(s.cfg.DwellPerRequest)
	}
	return true
}

// spin burns CPU for roughly d.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	x := 0
	for time.Now().Before(deadline) {
		for i := 0; i < 2048; i++ {
			x += i
		}
	}
	_ = x
}

// LoadResult summarises a closed-loop load run.
type LoadResult struct {
	Completed int
	Errors    int
	MeanRT    time.Duration
}

// RunClosedLoop drives the URL with a closed-loop population of users for
// the duration: each user issues a request, waits for the response,
// optionally thinks, and repeats.
func RunClosedLoop(url string, users int, think, duration time.Duration) LoadResult {
	if users <= 0 {
		return LoadResult{}
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: users + 8,
		},
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		result  LoadResult
		rtTotal time.Duration
	)
	stop := time.Now().Add(duration)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				begin := time.Now()
				resp, err := client.Get(url)
				ok := err == nil
				if resp != nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
					resp.Body.Close()
					ok = ok && resp.StatusCode == http.StatusOK
				}
				rt := time.Since(begin)
				mu.Lock()
				if ok {
					result.Completed++
					rtTotal += rt
				} else {
					result.Errors++
				}
				mu.Unlock()
				if think > 0 {
					time.Sleep(think)
				}
			}
		}()
	}
	wg.Wait()
	if result.Completed > 0 {
		result.MeanRT = rtTotal / time.Duration(result.Completed)
	}
	return result
}
