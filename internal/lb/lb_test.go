package lb

import (
	"testing"

	"conscale/internal/server"
)

// fakeService records submissions and completes them on demand.
type fakeService struct {
	name     string
	pending  []*server.Request
	received int
}

func (f *fakeService) Submit(req *server.Request) {
	f.received++
	f.pending = append(f.pending, req)
}

func (f *fakeService) completeOne(ok bool) {
	req := f.pending[0]
	f.pending = f.pending[1:]
	req.Done(ok)
}

func newReq(results *[]bool) *server.Request {
	return &server.Request{Done: func(ok bool) { *results = append(*results, ok) }}
}

func TestRoundRobinCycles(t *testing.T) {
	b := New("web-lb", RoundRobin)
	a, c := &fakeService{name: "a"}, &fakeService{name: "c"}
	b.Add("a", a)
	b.Add("c", c)
	var results []bool
	for i := 0; i < 6; i++ {
		b.Submit(newReq(&results))
	}
	if a.received != 3 || c.received != 3 {
		t.Fatalf("round robin uneven: %d/%d", a.received, c.received)
	}
}

func TestLeastConnPrefersIdle(t *testing.T) {
	b := New("db-lb", LeastConn)
	busy, idle := &fakeService{name: "busy"}, &fakeService{name: "idle"}
	b.Add("busy", busy)
	b.Add("idle", idle)
	var results []bool
	// Four submissions with no completions spread 2/2.
	for i := 0; i < 4; i++ {
		b.Submit(newReq(&results))
	}
	if b.InFlight("busy") != 2 || b.InFlight("idle") != 2 {
		t.Fatalf("spread = %d/%d, want 2/2", b.InFlight("busy"), b.InFlight("idle"))
	}
	// Drain "idle": its two outstanding requests complete.
	idle.completeOne(true)
	idle.completeOne(true)
	// The next two submissions must both go to the now-idle backend.
	b.Submit(newReq(&results))
	b.Submit(newReq(&results))
	if idle.received != 4 || busy.received != 2 {
		t.Fatalf("leastconn picked busier backend: idle=%d busy=%d", idle.received, busy.received)
	}
}

func TestLeastConnBalancesEvenly(t *testing.T) {
	b := New("lb", LeastConn)
	s1, s2 := &fakeService{}, &fakeService{}
	b.Add("s1", s1)
	b.Add("s2", s2)
	var results []bool
	for i := 0; i < 10; i++ {
		b.Submit(newReq(&results)) // nothing completes: in-flight grows
	}
	if s1.received != 5 || s2.received != 5 {
		t.Fatalf("leastconn uneven without completions: %d/%d", s1.received, s2.received)
	}
}

func TestInFlightDecrementsOnDone(t *testing.T) {
	b := New("lb", LeastConn)
	s := &fakeService{}
	b.Add("s", s)
	var results []bool
	b.Submit(newReq(&results))
	if b.InFlight("s") != 1 {
		t.Fatalf("InFlight = %d", b.InFlight("s"))
	}
	s.completeOne(true)
	if b.InFlight("s") != 0 {
		t.Fatalf("InFlight after done = %d", b.InFlight("s"))
	}
	if len(results) != 1 || !results[0] {
		t.Fatalf("completion not propagated: %v", results)
	}
}

func TestFailurePropagates(t *testing.T) {
	b := New("lb", RoundRobin)
	s := &fakeService{}
	b.Add("s", s)
	var results []bool
	b.Submit(newReq(&results))
	s.completeOne(false)
	if len(results) != 1 || results[0] {
		t.Fatalf("failure not propagated: %v", results)
	}
}

func TestNoBackendsRejects(t *testing.T) {
	b := New("lb", RoundRobin)
	var results []bool
	b.Submit(newReq(&results))
	if len(results) != 1 || results[0] {
		t.Fatalf("empty balancer should fail the request: %v", results)
	}
	if _, rejected := b.Stats(); rejected != 1 {
		t.Fatalf("rejected count = %d", rejected)
	}
}

func TestRemoveStopsDispatch(t *testing.T) {
	b := New("lb", RoundRobin)
	s1, s2 := &fakeService{}, &fakeService{}
	b.Add("s1", s1)
	b.Add("s2", s2)
	if !b.Remove("s1") {
		t.Fatal("Remove returned false")
	}
	if b.Remove("s1") {
		t.Fatal("second Remove returned true")
	}
	var results []bool
	for i := 0; i < 4; i++ {
		b.Submit(newReq(&results))
	}
	if s1.received != 0 || s2.received != 4 {
		t.Fatalf("dispatch after remove: %d/%d", s1.received, s2.received)
	}
}

func TestRemoveMidCycleKeepsRotation(t *testing.T) {
	b := New("lb", RoundRobin)
	svcs := map[string]*fakeService{}
	for _, n := range []string{"a", "b", "c"} {
		s := &fakeService{name: n}
		svcs[n] = s
		b.Add(n, s)
	}
	var results []bool
	b.Submit(newReq(&results)) // goes to a; cursor -> b
	b.Remove("b")
	for i := 0; i < 4; i++ {
		b.Submit(newReq(&results))
	}
	if svcs["b"].received != 0 {
		t.Fatal("removed backend received traffic")
	}
	if svcs["a"].received+svcs["c"].received != 5 {
		t.Fatalf("lost requests: a=%d c=%d", svcs["a"].received, svcs["c"].received)
	}
}

func TestDuplicateAddPanics(t *testing.T) {
	b := New("lb", RoundRobin)
	b.Add("x", &fakeService{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate Add")
		}
	}()
	b.Add("x", &fakeService{})
}

func TestBackendsList(t *testing.T) {
	b := New("lb", RoundRobin)
	b.Add("a", &fakeService{})
	b.Add("b", &fakeService{})
	got := b.Backends()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Backends = %v", got)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.InFlight("zzz") != -1 {
		t.Fatal("unknown backend InFlight should be -1")
	}
}

func TestPolicyString(t *testing.T) {
	if RoundRobin.String() != "roundrobin" || LeastConn.String() != "leastconn" {
		t.Fatal("Policy.String wrong")
	}
	if Policy(7).String() == "" {
		t.Fatal("unknown policy should format")
	}
}

func TestStatsTotal(t *testing.T) {
	b := New("lb", RoundRobin)
	b.Add("s", &fakeService{})
	var results []bool
	for i := 0; i < 3; i++ {
		b.Submit(newReq(&results))
	}
	total, rejected := b.Stats()
	if total != 3 || rejected != 0 {
		t.Fatalf("Stats = %d/%d", total, rejected)
	}
}
