// Package lb implements the HAProxy-substitute load balancer (paper
// Section IV-A): it dispatches incoming requests across a dynamic set of
// backend servers using either round-robin or least-connection policy, and
// supports adding and removing backends at runtime as the tier scales.
// The paper's deployment uses leastconn; both are provided so the ablation
// bench can compare them.
package lb

import (
	"fmt"

	"conscale/internal/server"
)

// Policy selects the dispatch algorithm.
type Policy int

// Supported policies.
const (
	RoundRobin Policy = iota
	LeastConn
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "roundrobin"
	case LeastConn:
		return "leastconn"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

type backend struct {
	name     string
	svc      server.Service
	inFlight int
}

// Balancer dispatches requests across backends. It satisfies
// server.Service, so a balancer can stand wherever a single server can.
// Like the rest of the simulator it is single-goroutine.
type Balancer struct {
	name     string
	policy   Policy
	backends []*backend
	next     int // round-robin cursor

	total    uint64
	rejected uint64
}

// New returns an empty balancer with the given policy.
func New(name string, policy Policy) *Balancer {
	return &Balancer{name: name, policy: policy}
}

// Name returns the balancer's identity.
func (b *Balancer) Name() string { return b.name }

// Policy returns the dispatch policy.
func (b *Balancer) Policy() Policy { return b.policy }

// Add registers a backend. Adding a duplicate name panics: the cluster
// manager guarantees unique VM names, so a duplicate is a wiring bug.
func (b *Balancer) Add(name string, svc server.Service) {
	for _, be := range b.backends {
		if be.name == name {
			panic("lb: duplicate backend " + name)
		}
	}
	b.backends = append(b.backends, &backend{name: name, svc: svc})
}

// Remove unregisters a backend and reports whether it was present.
// In-flight requests on the backend finish normally; only new dispatch
// stops (connection draining).
func (b *Balancer) Remove(name string) bool {
	for i, be := range b.backends {
		if be.name == name {
			b.backends = append(b.backends[:i], b.backends[i+1:]...)
			if b.next > i {
				b.next--
			}
			if len(b.backends) > 0 {
				b.next %= len(b.backends)
			} else {
				b.next = 0
			}
			return true
		}
	}
	return false
}

// Len returns the number of registered backends.
func (b *Balancer) Len() int { return len(b.backends) }

// Backends returns the registered backend names in dispatch order.
func (b *Balancer) Backends() []string {
	out := make([]string, len(b.backends))
	for i, be := range b.backends {
		out[i] = be.name
	}
	return out
}

// InFlight returns the balancer's view of a backend's outstanding requests
// (-1 if the backend is unknown).
func (b *Balancer) InFlight(name string) int {
	for _, be := range b.backends {
		if be.name == name {
			return be.inFlight
		}
	}
	return -1
}

// Stats returns total dispatched and rejected (no-backend) request counts.
func (b *Balancer) Stats() (total, rejected uint64) { return b.total, b.rejected }

// Submit implements server.Service: it picks a backend per the policy and
// forwards the request, tracking per-backend in-flight counts for
// leastconn. With no backends the request fails immediately.
func (b *Balancer) Submit(req *server.Request) {
	b.total++
	be := b.pick()
	if be == nil {
		b.rejected++
		done := req.Done
		req.Done = nil
		done(false)
		return
	}
	req.Span.NotePick(b.name, be.inFlight)
	be.inFlight++
	inner := req.Done
	req.Done = nil
	req.Done = func(ok bool) {
		be.inFlight--
		inner(ok)
	}
	be.svc.Submit(req)
}

func (b *Balancer) pick() *backend {
	if len(b.backends) == 0 {
		return nil
	}
	switch b.policy {
	case LeastConn:
		best := b.backends[0]
		for _, be := range b.backends[1:] {
			if be.inFlight < best.inFlight {
				best = be
			}
		}
		return best
	default: // RoundRobin
		be := b.backends[b.next%len(b.backends)]
		b.next = (b.next + 1) % len(b.backends)
		return be
	}
}
