package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling streams produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(17)
	const buckets, draws = 8, 80000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("bucket %d has %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(9)
	const mean, n = 25.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestExpZeroMean(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if v := s.Exp(0); v != 0 {
			t.Fatalf("Exp(0) = %v, want 0", v)
		}
	}
}

func TestExpNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(-1) did not panic")
		}
	}()
	New(1).Exp(-1)
}

func TestPoissonSmallMean(t *testing.T) {
	s := New(13)
	const mean, n = 4.0, 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Poisson(mean)
	}
	got := float64(sum) / n
	if math.Abs(got-mean)/mean > 0.03 {
		t.Fatalf("Poisson(%v) mean = %v", mean, got)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	s := New(13)
	const mean, n = 500.0, 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Poisson(mean)
	}
	got := float64(sum) / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Poisson(%v) mean = %v", mean, got)
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	s := New(1)
	if s.Poisson(0) != 0 || s.Poisson(-3) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestNormMoments(t *testing.T) {
	s := New(21)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalMean(t *testing.T) {
	s := New(23)
	const mean, n = 10.0, 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.LogNormal(mean, 0.5)
		if v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.03 {
		t.Fatalf("LogNormal mean = %v, want ~%v", got, mean)
	}
}

func TestLogNormalZeroMean(t *testing.T) {
	if v := New(1).LogNormal(0, 1); v != 0 {
		t.Fatalf("LogNormal(0, 1) = %v, want 0", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(29)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPickRespectsWeights(t *testing.T) {
	s := New(31)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[s.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestPickAllZeroWeightsUniform(t *testing.T) {
	s := New(37)
	weights := []float64{0, 0, 0, 0}
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[s.Pick(weights)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("bucket %d has %d of 40000 under uniform fallback", i, c)
		}
	}
}

// Property: Intn always lands in range for arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		size := int(n%1000) + 1
		v := New(seed).Intn(size)
		return v >= 0 && v < size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds replay identical streams of mixed draws.
func TestQuickReplay(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if a.Float64() != b.Float64() || a.Exp(5) != b.Exp(5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Exp is never negative for any mean >= 0.
func TestQuickExpNonNegative(t *testing.T) {
	f := func(seed uint64, m uint16) bool {
		return New(seed).Exp(float64(m)) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Exp(10)
	}
}
