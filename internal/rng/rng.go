// Package rng provides a deterministic, splittable pseudo-random number
// generator and the distribution draws used throughout the simulator.
//
// Every experiment in this repository is seeded, so two runs with the same
// seed produce bit-identical results. The generator is SplitMix64 (Steele,
// Lea, Flood: "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014),
// chosen because independent streams can be forked cheaply for each server,
// user, and trace without correlation, which keeps concurrent simulation
// components reproducible regardless of event interleaving.
package rng

import "math"

// golden is the 64-bit golden ratio increment used by SplitMix64.
const golden = 0x9e3779b97f4a7c15

// Source is a deterministic random source. It is not safe for concurrent
// use; fork one per goroutine or simulation component with Split.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield independent
// streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split forks an independent child stream. The parent advances, so repeated
// Split calls yield distinct children.
func (s *Source) Split() *Source {
	// Mixing the next output back through the finalizer decorrelates the
	// child stream from the parent's subsequent outputs.
	return New(mix(s.Uint64()))
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

// mix is the SplitMix64 output finalizer.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Multiply-shift bounded rejection (Lemire). Bias is negligible for the
	// simulator's n (< 2^31), but reject to keep draws exactly uniform.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	return aHi*bHi + w2 + (w1 >> 32), a * b
}

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean is negative; a zero mean returns zero, which lets
// callers express "no think time" without special cases.
func (s *Source) Exp(mean float64) float64 {
	if mean < 0 {
		panic("rng: Exp with negative mean")
	}
	if mean == 0 {
		return 0
	}
	u := s.Float64()
	// 1-u is in (0, 1], so Log never sees zero.
	return -mean * math.Log(1-u)
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's multiplication method for small means and a normal approximation
// for large ones (mean > 64) where Knuth's method would be slow.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction.
		v := mean + math.Sqrt(mean)*s.Norm()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	limit := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= s.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Norm returns a standard normal value (Box-Muller, one branch kept simple
// rather than cached: the simulator is not bottlenecked on normals).
func (s *Source) Norm() float64 {
	u1 := 1 - s.Float64() // (0, 1]
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns a log-normally distributed value such that the result
// has the given mean and the underlying normal has standard deviation sigma.
// Service times in real servers are right-skewed; the simulator uses this
// for per-request demand jitter.
func (s *Source) LogNormal(mean, sigma float64) float64 {
	if mean <= 0 {
		return 0
	}
	// E[exp(N(mu, sigma^2))] = exp(mu + sigma^2/2); solve for mu.
	mu := math.Log(mean) - sigma*sigma/2
	return math.Exp(mu + sigma*s.Norm())
}

// Perm fills a permutation of [0, n) using Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Pick returns an index in [0, len(weights)) with probability proportional
// to weights[i]. Zero or negative total weight picks uniformly.
func (s *Source) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return s.Intn(len(weights))
	}
	target := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}
