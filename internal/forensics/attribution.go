package forensics

import (
	"fmt"
	"math"
	"sort"

	"conscale/internal/des"
	"conscale/internal/trace"
)

// CauseKind classifies one suspected episode cause.
type CauseKind uint8

// The suspected-cause classes, in rough prior-strength order: an injected
// fault outranks a workload surge outranks a controller decision outranks
// an SCT signal shift outranks admission shedding. The scoring ranges are
// disjoint by design (fault scores start at 2.5, surges cap at 2.0,
// decisions at 1.8, SCT shifts at 0.9, sheds at 0.5) so a fault
// overlapping the episode always tops the ranking.
const (
	// CauseFault blames an injected chaos fault overlapping the episode.
	CauseFault CauseKind = iota
	// CauseWorkloadSurge blames a client-population jump at onset.
	CauseWorkloadSurge
	// CauseDecision blames a controller action shortly before onset
	// (a scale-in, a pool shrink) or a suppressed one during it.
	CauseDecision
	// CauseSCTShift blames an abrupt move of the SCT concurrency range.
	CauseSCTShift
	// CauseShed notes heavy admission-policy dropping during the episode —
	// context rather than root cause (shedding is a symptom of pressure and
	// a shaper of the recovery), hence the low score.
	CauseShed
	// CauseUnknown is the explicit "no recorded signal explains this".
	CauseUnknown
)

// String implements fmt.Stringer.
func (k CauseKind) String() string {
	switch k {
	case CauseFault:
		return "fault"
	case CauseWorkloadSurge:
		return "workload-surge"
	case CauseDecision:
		return "decision"
	case CauseSCTShift:
		return "sct-shift"
	case CauseShed:
		return "shed"
	case CauseUnknown:
		return "unknown"
	default:
		return "cause?"
	}
}

// MarshalJSON renders the kind as its string name.
func (k CauseKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Cause is one ranked suspect on an episode's cause list.
type Cause struct {
	// Kind classifies the suspect.
	Kind CauseKind `json:"kind"`
	// Score orders the list (higher = stronger; the per-kind ranges are
	// documented on the CauseKind constants).
	Score float64 `json:"score"`
	// At anchors the suspect in time (fault start, decision time, ...).
	At des.Time `json:"at_s"`
	// Detail names the suspect ("cpu-interference tomcat2").
	Detail string `json:"detail"`
	// Evidence explains the score in one human-readable sentence.
	Evidence string `json:"evidence"`
}

// BlameDelta is one tier×component latency change between the episode
// and its pre-onset baseline, from the tracer's blame table.
type BlameDelta struct {
	// Component is "tier/kind" ("tomcat/queue", "mysql/pool-wait", ...).
	Component string `json:"component"`
	// BaselineMs is the per-request component magnitude (milliseconds)
	// over the pre-onset baseline window.
	BaselineMs float64 `json:"baseline_ms"`
	// EpisodeMs is the same magnitude during the episode.
	EpisodeMs float64 `json:"episode_ms"`
	// DeltaMs is EpisodeMs − BaselineMs, the ranking key.
	DeltaMs float64 `json:"delta_ms"`
}

// EpisodeReport is one episode with its ranked causes, its blame diff,
// and the controller reactions recorded inside it.
type EpisodeReport struct {
	// Episode is the detected segment.
	Episode Episode `json:"episode"`
	// Causes is the ranked suspect list, strongest first (never empty —
	// CauseUnknown closes the pipeline honestly).
	Causes []Cause `json:"causes"`
	// Blame lists the largest positive tier×component latency deltas vs
	// the pre-episode baseline, largest first.
	Blame []BlameDelta `json:"blame"`
	// Reactions lists the controller actions taken during the episode
	// (launches, readies, repairs) — the cure side of the timeline.
	Reactions []string `json:"reactions"`
}

// Report is the full attribution output of one run.
type Report struct {
	// Label names the run ("big-spike/conscale").
	Label string `json:"label"`
	// Episodes carries one report per confirmed episode, onset order.
	Episodes []EpisodeReport `json:"episodes"`
	// Series is the detector's retained per-tick trace, for timelines.
	Series []TickPoint `json:"series"`
}

// TopCause returns an episode report's strongest suspect.
func (er EpisodeReport) TopCause() Cause {
	if len(er.Causes) == 0 {
		return Cause{Kind: CauseUnknown}
	}
	return er.Causes[0]
}

// Report runs the causal attribution pipeline: for every confirmed
// episode it diffs the blame table against the pre-episode baseline
// window, scans the flight recorder for overlapping faults, population
// surges, suspect decisions, and SCT shifts, and emits the ranked
// suspected-cause report. blame may be nil (no tracer armed) — the cause
// ranking still works from the recorder alone.
func (f *Forensics) Report(label string, blame []trace.BlameRow) *Report {
	rep := &Report{Label: label}
	if f == nil {
		return rep
	}
	rep.Series = f.Det.Series()
	for _, ep := range f.Det.Episodes() {
		rep.Episodes = append(rep.Episodes, f.attribute(ep, blame))
	}
	return rep
}

func (f *Forensics) attribute(ep Episode, blame []trace.BlameRow) EpisodeReport {
	er := EpisodeReport{Episode: ep}
	er.Causes = append(er.Causes, f.faultCauses(ep)...)
	if c, ok := f.surgeCause(ep); ok {
		er.Causes = append(er.Causes, c)
	}
	causes, reactions := f.decisionCauses(ep)
	er.Causes = append(er.Causes, causes...)
	er.Reactions = reactions
	er.Causes = append(er.Causes, f.sctCauses(ep)...)
	if c, ok := f.shedCause(ep); ok {
		er.Causes = append(er.Causes, c)
	}
	if len(er.Causes) == 0 {
		er.Causes = []Cause{{
			Kind:     CauseUnknown,
			Score:    0.1,
			At:       ep.Onset,
			Detail:   "no recorded signal",
			Evidence: "no fault, surge, decision, or SCT shift found in the flight recorder around the episode",
		}}
	}
	sort.SliceStable(er.Causes, func(i, j int) bool {
		a, b := er.Causes[i], er.Causes[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Detail < b.Detail
	})
	er.Blame = f.blameDeltas(ep, blame)
	return er
}

// faultCauses scores every recorded fault whose influence window — the
// activation window extended by FaultLag, since a crash's effect outlives
// its instant — overlaps the episode. Scores live in [2.5, 5]: a floor
// for any overlap, plus the overlapped episode fraction, plus a proximity
// term that rewards faults striking at (or just before) onset.
func (f *Forensics) faultCauses(ep Episode) []Cause {
	var out []Cause
	epLen := float64(ep.Duration())
	for _, fr := range f.Rec.Faults() {
		effEnd := fr.End + f.cfg.FaultLag
		if fr.At >= ep.Recovery || effEnd <= ep.Onset {
			continue
		}
		ovl := math.Min(float64(effEnd), float64(ep.Recovery)) - math.Max(float64(fr.At), float64(ep.Onset))
		frac := 0.0
		if epLen > 0 {
			frac = math.Min(1, ovl/epLen)
		}
		gap := 0.0 // distance from the fault's active window to onset
		if fr.At > ep.Onset {
			gap = float64(fr.At - ep.Onset)
		} else if fr.End < ep.Onset {
			gap = float64(ep.Onset - fr.End)
		}
		prox := math.Exp(-gap / float64(f.cfg.FaultLag))
		target := fr.Target
		if target == "" {
			target = fr.Tier
		}
		out = append(out, Cause{
			Kind:   CauseFault,
			Score:  2.5 + 1.5*frac + prox,
			At:     fr.At,
			Detail: fr.Kind + " " + target,
			Evidence: fmt.Sprintf("fault active %s-%s covers %.0f%% of the episode (gap to onset %.1f s)",
				trace.FormatSimTime(fr.At), trace.FormatSimTime(fr.End), 100*frac, gap),
		})
	}
	return out
}

// surgeCause compares the mean client population just after onset with
// the pre-episode baseline window; a ≥1.25× jump becomes a suspect with
// score min(2.0, 0.8×ratio) — strong surges rank just under any fault.
func (f *Forensics) surgeCause(ep Episode) (Cause, bool) {
	preSum, preN := 0.0, 0
	postSum, postN := 0.0, 0
	postEnd := ep.Onset + 10*des.Second
	if postEnd > ep.Recovery {
		postEnd = ep.Recovery
	}
	for _, s := range f.Rec.Snapshots() {
		switch {
		case s.Time >= ep.Onset-f.cfg.BaselineWindow && s.Time < ep.Onset:
			preSum += float64(s.Clients)
			preN++
		case s.Time >= ep.Onset && s.Time <= postEnd:
			postSum += float64(s.Clients)
			postN++
		}
	}
	if preN == 0 || postN == 0 || preSum <= 0 {
		return Cause{}, false
	}
	ratio := (postSum / float64(postN)) / (preSum / float64(preN))
	if ratio < 1.25 {
		return Cause{}, false
	}
	return Cause{
		Kind:   CauseWorkloadSurge,
		Score:  math.Min(2.0, 0.8*ratio),
		At:     ep.Onset,
		Detail: fmt.Sprintf("client population x%.2f", ratio),
		Evidence: fmt.Sprintf("mean active clients %.0f in the %.0f s before onset vs %.0f just after",
			preSum/float64(preN), float64(f.cfg.BaselineWindow), postSum/float64(postN)),
	}, true
}

// decisionCauses scans the decision ring: capacity-removing actions
// (scale-in, pool resize) in the pre-onset baseline window become
// suspects whose score decays with distance from onset (max 1.8); a
// cooldown-suppressed trigger during the episode becomes a 1.0 suspect.
// Remedial actions inside the episode (launches, readies, repairs,
// scale-ups) are returned separately as the reactions timeline.
func (f *Forensics) decisionCauses(ep Episode) ([]Cause, []string) {
	var causes []Cause
	var reactions []string
	for _, e := range f.Rec.Decisions() {
		switch e.Kind {
		case trace.AuditScaleIn, trace.AuditPoolResize:
			if e.Time >= ep.Onset-f.cfg.BaselineWindow && e.Time < ep.Onset {
				age := float64(ep.Onset - e.Time)
				causes = append(causes, Cause{
					Kind:   CauseDecision,
					Score:  1.2 + 0.6*math.Exp(-age/float64(f.cfg.BaselineWindow)),
					At:     e.Time,
					Detail: e.Kind.String() + " " + e.Tier,
					Evidence: fmt.Sprintf("%s on %s %.1f s before onset (%s)",
						e.Kind, e.Tier, age, e.Cause),
				})
			}
		case trace.AuditCooldownSkip:
			if e.Time >= ep.Onset && e.Time <= ep.Recovery {
				causes = append(causes, Cause{
					Kind:     CauseDecision,
					Score:    1.0,
					At:       e.Time,
					Detail:   "cooldown-skip " + e.Tier,
					Evidence: fmt.Sprintf("scale-out suppressed during the episode at %s (%s)", trace.FormatSimTime(e.Time), e.Cause),
				})
			}
		case trace.AuditScaleOutLaunch, trace.AuditScaleOutReady, trace.AuditRepair, trace.AuditScaleUp:
			if e.Time >= ep.Onset && e.Time <= ep.Recovery {
				reactions = append(reactions, fmt.Sprintf("%s %s %s @ %s",
					e.Kind, e.Tier, e.Detail, trace.FormatSimTime(e.Time)))
			}
		}
	}
	return causes, reactions
}

// sctCauses scans consecutive SCT estimates per server: a refresh landing
// in [onset − BaselineWindow, onset + 5 s] that moves the range midpoint
// by ≥25% becomes a 0.9-scored suspect — the signal the concurrency
// adapters act on shifted under them.
func (f *Forensics) sctCauses(ep Episode) []Cause {
	last := map[string]SCTRec{}
	var out []Cause
	for _, r := range f.Rec.SCT() {
		prev, seen := last[r.Server]
		last[r.Server] = r
		if !seen || r.Time < ep.Onset-f.cfg.BaselineWindow || r.Time > ep.Onset+5*des.Second {
			continue
		}
		mid := float64(r.Qlower+r.Qupper) / 2
		pmid := float64(prev.Qlower+prev.Qupper) / 2
		if pmid <= 0 {
			continue
		}
		rel := math.Abs(mid-pmid) / pmid
		if rel < 0.25 {
			continue
		}
		out = append(out, Cause{
			Kind:   CauseSCTShift,
			Score:  0.9,
			At:     r.Time,
			Detail: fmt.Sprintf("sct %s [%d,%d]->[%d,%d]", r.Server, prev.Qlower, prev.Qupper, r.Qlower, r.Qupper),
			Evidence: fmt.Sprintf("SCT range midpoint moved %.0f%% at %s, within the onset window",
				100*rel, trace.FormatSimTime(r.Time)),
		})
	}
	// Map iteration fed append order only through the ring scan (which is
	// deterministic); sort anyway so the list never depends on map order.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

// shedCause counts admission drops inside the episode: ten or more
// becomes a 0.5-scored context entry naming the busiest shedding tier.
// Shedding is never the root cause — it is the policy reacting to the
// same pressure the episode measures — so it ranks below every other
// recorded signal but above the unknown floor, keeping reports honest
// about p99 "recoveries" bought with dropped requests.
func (f *Forensics) shedCause(ep Episode) (Cause, bool) {
	total := 0
	perTier := map[string]int{}
	first := des.Time(0)
	for _, s := range f.Rec.Sheds() {
		if s.Time < ep.Onset || s.Time > ep.Recovery {
			continue
		}
		if total == 0 {
			first = s.Time
		}
		total++
		perTier[s.Tier]++
	}
	if total < 10 {
		return Cause{}, false
	}
	top, topN := "", 0
	for tier, n := range perTier {
		if n > topN || (n == topN && tier < top) {
			top, topN = tier, n
		}
	}
	return Cause{
		Kind:   CauseShed,
		Score:  0.5,
		At:     first,
		Detail: fmt.Sprintf("admission shed x%d (%s)", total, top),
		Evidence: fmt.Sprintf("%d requests dropped by admission policies during the episode (%d on %s) — load shedding shaped this episode's tail",
			total, topN, top),
	}, true
}

// blameDeltas diffs the tracer's tier×component decomposition between the
// episode span and the pre-onset baseline window, returning the positive
// movers (≥1 ms growth), largest first, capped at eight rows. Falls back
// from the p99 class to the mean class when the tail class has no rows in
// either window (thin sampling).
func (f *Forensics) blameDeltas(ep Episode, rows []trace.BlameRow) []BlameDelta {
	if len(rows) == 0 {
		return nil
	}
	base, epi, ok := summarizePair(rows, "p99", ep, f.cfg.BaselineWindow)
	if !ok {
		if base, epi, ok = summarizePair(rows, "mean", ep, f.cfg.BaselineWindow); !ok {
			return nil
		}
	}
	var out []BlameDelta
	for tier := trace.TierID(0); tier < trace.NumTiers; tier++ {
		for kind := trace.SegKind(0); kind < trace.NumSegKinds; kind++ {
			b := base.Comp[tier][kind] * 1000
			e := epi.Comp[tier][kind] * 1000
			if e-b >= 1 {
				out = append(out, BlameDelta{
					Component:  tier.String() + "/" + kind.String(),
					BaselineMs: b,
					EpisodeMs:  e,
					DeltaMs:    e - b,
				})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].DeltaMs != out[j].DeltaMs {
			return out[i].DeltaMs > out[j].DeltaMs
		}
		return out[i].Component < out[j].Component
	})
	if len(out) > 8 {
		out = out[:8]
	}
	return out
}

func summarizePair(rows []trace.BlameRow, class string, ep Episode, baseWin des.Time) (base, epi trace.BlameRow, ok bool) {
	base, okB := trace.BlameSummary(rows, class, ep.Onset-baseWin, ep.Onset)
	// Blame rows are keyed by aligned window start; stretch a short
	// episode's query span so it always covers at least one boundary.
	end := ep.Recovery
	if min := ep.Onset + 12*des.Second; end < min {
		end = min
	}
	epi, okE := trace.BlameSummary(rows, class, ep.Onset, end)
	return base, epi, okB && okE
}
