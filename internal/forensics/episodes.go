package forensics

import (
	"encoding/json"
	"math"
	"sync/atomic"

	"conscale/internal/des"
	"conscale/internal/sla"
	"conscale/internal/telemetry"
)

// DetectorConfig tunes the episode detector. Zero values take the
// documented defaults.
type DetectorConfig struct {
	// Window is the sliding span of the windowed tail estimate
	// (default 10 s).
	Window des.Time
	// Percentile is the tracked tail (default 99).
	Percentile float64
	// Tick is the evaluation cadence (default 1 s).
	Tick des.Time
	// BaselineHalfLife is the EWMA half-life of the calm-period baseline
	// (default 60 s). The baseline only learns outside episodes, so a
	// long fluctuation cannot drag its own reference up.
	BaselineHalfLife des.Time
	// OnsetFactor opens an episode when the windowed tail exceeds
	// OnsetFactor × baseline (default 2.0).
	OnsetFactor float64
	// AbsFloor is the absolute onset floor so a calm 5 ms baseline
	// doesn't turn 12 ms into an "episode" (default 0.3 s, the SLO
	// target).
	AbsFloor float64
	// ClearFactor closes the episode when the tail drops back under
	// ClearFactor × the frozen onset baseline (default 1.2); together
	// with OnsetFactor this is the hysteresis band.
	ClearFactor float64
	// ClearFloor is the absolute clearing level that guarantees an exit
	// once the system is calm (default 0.25 s).
	ClearFloor float64
	// MinDuration drops blips shorter than this (default 3 s).
	MinDuration des.Time
	// SLO is the reference level of the area-over-SLO integral
	// (default 0.3 s).
	SLO float64
	// SeriesCap bounds the retained per-tick (p99, baseline) series used
	// by the ASCII timeline (default 4096 points).
	SeriesCap int
}

func (cfg DetectorConfig) withDefaults() DetectorConfig {
	if cfg.Window <= 0 {
		cfg.Window = 10 * des.Second
	}
	if cfg.Percentile <= 0 {
		cfg.Percentile = 99
	}
	if cfg.Tick <= 0 {
		cfg.Tick = des.Second
	}
	if cfg.BaselineHalfLife <= 0 {
		cfg.BaselineHalfLife = 60 * des.Second
	}
	if cfg.OnsetFactor <= 0 {
		cfg.OnsetFactor = 2.0
	}
	if cfg.AbsFloor <= 0 {
		cfg.AbsFloor = 0.3
	}
	if cfg.ClearFactor <= 0 {
		cfg.ClearFactor = 1.2
	}
	if cfg.ClearFloor <= 0 {
		cfg.ClearFloor = 0.25
	}
	if cfg.MinDuration <= 0 {
		cfg.MinDuration = 3 * des.Second
	}
	if cfg.SLO <= 0 {
		cfg.SLO = 0.3
	}
	if cfg.SeriesCap <= 0 {
		cfg.SeriesCap = 4096
	}
	return cfg
}

// TickPoint is one detector evaluation: the windowed tail, the learned
// baseline, and whether the tick fell inside an episode.
type TickPoint struct {
	// Time is the evaluation timestamp.
	Time des.Time `json:"time_s"`
	// P99 is the windowed tail estimate (NaN when the window was empty).
	P99 float64 `json:"p99_s"`
	// Baseline is the EWMA calm-period reference.
	Baseline float64 `json:"baseline_s"`
	// InEpisode reports the detector state at the tick.
	InEpisode bool `json:"in_episode"`
}

// MarshalJSON emits NaN tails (empty-window ticks) as null —
// encoding/json rejects NaN, and report consumers read null as a gap.
func (p TickPoint) MarshalJSON() ([]byte, error) {
	type alias struct {
		Time      des.Time `json:"time_s"`
		P99       *float64 `json:"p99_s"`
		Baseline  *float64 `json:"baseline_s"`
		InEpisode bool     `json:"in_episode"`
	}
	a := alias{Time: p.Time, InEpisode: p.InEpisode}
	if !math.IsNaN(p.P99) {
		a.P99 = &p.P99
	}
	if !math.IsNaN(p.Baseline) {
		a.Baseline = &p.Baseline
	}
	return json.Marshal(a)
}

// Episode is one detected response-time fluctuation: the segment between
// the baseline-relative onset crossing and the hysteresis clearing.
type Episode struct {
	// Onset is the tick the windowed tail crossed the onset threshold.
	Onset des.Time `json:"onset_s"`
	// Peak is the tick of the episode's worst tail.
	Peak des.Time `json:"peak_s"`
	// Recovery is the clearing tick (the run end on open episodes).
	Recovery des.Time `json:"recovery_s"`
	// OnsetP99 is the tail at the crossing tick.
	OnsetP99 float64 `json:"onset_p99_s"`
	// PeakP99 is the episode's maximum tail.
	PeakP99 float64 `json:"peak_p99_s"`
	// Baseline is the calm reference frozen at onset.
	Baseline float64 `json:"baseline_s"`
	// Depth is PeakP99 − Baseline: how far the tail climbed.
	Depth float64 `json:"depth_s"`
	// AreaOverSLO integrates max(0, p99 − SLO) over the episode (s·s).
	AreaOverSLO float64 `json:"area_over_slo"`
	// Open marks an episode still in progress at run end.
	Open bool `json:"open"`
}

// Duration returns the episode's wall length.
func (e Episode) Duration() des.Time { return e.Recovery - e.Onset }

// Detector segments the client request stream's windowed tail latency
// into fluctuation episodes. Observe and Tick run on the simulation
// goroutine; the counters are atomics so telemetry and management agents
// can read them live. A nil *Detector is a valid, inert receiver, and
// Observe is a zero-allocation no-op while disabled.
type Detector struct {
	cfg     DetectorConfig
	enabled atomic.Bool

	tail     *sla.WindowTail
	baseline float64
	haveBase bool
	lastTick des.Time
	haveTick bool

	inEp     bool
	counted  bool
	cur      Episode
	episodes []Episode
	series   ring[TickPoint]

	total  atomic.Uint64
	inFlag atomic.Bool
}

// NewDetector builds an enabled detector with defaulted config.
func NewDetector(cfg DetectorConfig) *Detector {
	cfg = cfg.withDefaults()
	d := &Detector{
		cfg:    cfg,
		tail:   sla.NewWindowTail(cfg.Window),
		series: newRing[TickPoint](cfg.SeriesCap),
	}
	d.enabled.Store(true)
	return d
}

// SetEnabled flips detection live (safe from any goroutine).
func (d *Detector) SetEnabled(on bool) {
	if d != nil {
		d.enabled.Store(on)
	}
}

// Enabled reports the live switch.
func (d *Detector) Enabled() bool { return d != nil && d.enabled.Load() }

// Observe ingests one completed client request (failed requests carry no
// response-time signal and are skipped; the SLO monitor owns the error
// story). No-op when nil or disabled.
func (d *Detector) Observe(now des.Time, rt float64, ok bool) {
	if d == nil || !d.enabled.Load() || !ok {
		return
	}
	d.tail.Add(now, rt)
}

// Tick evaluates the detector state machine at now: refresh the windowed
// tail, learn the baseline while calm, open an episode on the onset
// crossing, track peak and area inside one, close on the hysteresis
// clearing. Call it on a fixed cadence (DetectorConfig.Tick).
func (d *Detector) Tick(now des.Time) {
	if d == nil || !d.enabled.Load() {
		return
	}
	dt := d.cfg.Tick
	if d.haveTick && now > d.lastTick {
		dt = now - d.lastTick
	}
	d.lastTick, d.haveTick = now, true

	p99 := d.tail.Percentile(now, d.cfg.Percentile)
	d.series.push(TickPoint{Time: now, P99: p99, Baseline: d.baseline, InEpisode: d.inEp})
	if math.IsNaN(p99) {
		// Empty window: no completions landed recently. Keep the state
		// machine where it is — a stalled system must not "recover" by
		// starving the estimator.
		return
	}

	if !d.inEp {
		if !d.haveBase {
			d.baseline, d.haveBase = p99, true
		} else {
			alpha := 1 - math.Exp2(-float64(dt)/float64(d.cfg.BaselineHalfLife))
			d.baseline += alpha * (p99 - d.baseline)
		}
		if p99 > math.Max(d.cfg.OnsetFactor*d.baseline, d.cfg.AbsFloor) {
			d.inEp = true
			d.inFlag.Store(true)
			d.cur = Episode{
				Onset:    now,
				Peak:     now,
				OnsetP99: p99,
				PeakP99:  p99,
				Baseline: d.baseline,
			}
			d.cur.AreaOverSLO = math.Max(0, p99-d.cfg.SLO) * float64(dt)
		}
		return
	}

	if p99 > d.cur.PeakP99 {
		d.cur.Peak, d.cur.PeakP99 = now, p99
	}
	d.cur.AreaOverSLO += math.Max(0, p99-d.cfg.SLO) * float64(dt)
	if !d.counted && now-d.cur.Onset >= d.cfg.MinDuration {
		d.counted = true
		d.total.Add(1)
	}
	if p99 < math.Max(d.cfg.ClearFactor*d.cur.Baseline, d.cfg.ClearFloor) {
		d.close(now, false)
	}
}

// close seals the current episode at t; episodes shorter than MinDuration
// are blips and are dropped (they were never counted either).
func (d *Detector) close(t des.Time, open bool) {
	d.inEp = false
	d.inFlag.Store(false)
	d.cur.Recovery = t
	d.cur.Depth = d.cur.PeakP99 - d.cur.Baseline
	d.cur.Open = open
	if d.counted {
		d.episodes = append(d.episodes, d.cur)
	}
	d.counted = false
}

// Finish seals a still-open episode at the run end (marked Open) so run
// reports never lose an in-progress fluctuation.
func (d *Detector) Finish(end des.Time) {
	if d == nil || !d.inEp {
		return
	}
	if !d.counted && end-d.cur.Onset >= d.cfg.MinDuration {
		d.counted = true
		d.total.Add(1)
	}
	d.close(end, true)
}

// Episodes returns the confirmed episodes, in onset order (simulation
// goroutine only).
func (d *Detector) Episodes() []Episode {
	if d == nil {
		return nil
	}
	out := make([]Episode, len(d.episodes))
	copy(out, d.episodes)
	return out
}

// Series returns the retained per-tick evaluation series, oldest first.
func (d *Detector) Series() []TickPoint {
	if d == nil {
		return nil
	}
	return d.series.snapshot()
}

// Count returns the confirmed-episode counter (safe from any goroutine;
// it includes a still-open episode once it outlives MinDuration).
func (d *Detector) Count() uint64 {
	if d == nil {
		return 0
	}
	return d.total.Load()
}

// InEpisode reports whether the detector is currently inside an episode
// (safe from any goroutine).
func (d *Detector) InEpisode() bool { return d != nil && d.inFlag.Load() }

// Register exposes the detector through a telemetry registry:
//
//	forensics_episodes_total  counter  confirmed fluctuation episodes
//	forensics_in_episode      gauge    1 while inside an episode
//
// Both read atomics, so the live Prometheus handler can scrape them from
// its own goroutine mid-run.
func (d *Detector) Register(reg *telemetry.Registry) {
	if d == nil || reg == nil {
		return
	}
	reg.CounterFunc("forensics_episodes_total",
		"Fluctuation episodes confirmed by the forensics detector.",
		func() float64 { return float64(d.Count()) })
	reg.GaugeFunc("forensics_in_episode",
		"1 while the forensics detector is inside a fluctuation episode.",
		func() float64 {
			if d.InEpisode() {
				return 1
			}
			return 0
		})
}
