package forensics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"conscale/internal/des"
	"conscale/internal/trace"
)

// WriteJSON writes the attribution report as indented JSON (the
// machine-readable artifact the episodes experiment uploads).
func WriteJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(rep)
}

// sparkGlyphs are the ASCII intensity levels of the timeline sparkline,
// calm to catastrophic.
const sparkGlyphs = " .:-=+*#%@"

// WriteASCII renders the report as a human-readable timeline: one block
// per episode with a p99 sparkline (onset−15 s .. recovery+10 s), the
// ranked causes, the blame movers, and the controller reactions. All
// clocks are mm:ss.mmm, matching the audit CSV's time_hms column.
func WriteASCII(w io.Writer, rep *Report) error {
	if _, err := fmt.Fprintf(w, "== fluctuation episodes: %s (%d confirmed)\n", rep.Label, len(rep.Episodes)); err != nil {
		return err
	}
	for i, er := range rep.Episodes {
		ep := er.Episode
		open := ""
		if ep.Open {
			open = "  [open at run end]"
		}
		if _, err := fmt.Fprintf(w, "\nepisode #%d  onset %s  peak %s (p99 %.0f ms)  recovery %s  depth %.0f ms  area %.1f s*s%s\n",
			i+1, trace.FormatSimTime(ep.Onset), trace.FormatSimTime(ep.Peak), ep.PeakP99*1000,
			trace.FormatSimTime(ep.Recovery), ep.Depth*1000, ep.AreaOverSLO, open); err != nil {
			return err
		}
		if line := sparkline(rep.Series, ep.Onset-15*des.Second, ep.Recovery+10*des.Second, 60); line != "" {
			if _, err := fmt.Fprintf(w, "  p99 [%s] scale 0..%.0f ms\n", line, ep.PeakP99*1000); err != nil {
				return err
			}
		}
		for j, c := range er.Causes {
			if _, err := fmt.Fprintf(w, "  cause %d: %-14s %-36s score %.2f — %s\n",
				j+1, c.Kind, c.Detail, c.Score, c.Evidence); err != nil {
				return err
			}
		}
		for _, b := range er.Blame {
			if _, err := fmt.Fprintf(w, "  blame %-20s %+8.1f ms (%.1f -> %.1f)\n",
				b.Component, b.DeltaMs, b.BaselineMs, b.EpisodeMs); err != nil {
				return err
			}
		}
		for _, r := range er.Reactions {
			if _, err := fmt.Fprintf(w, "  reaction: %s\n", r); err != nil {
				return err
			}
		}
	}
	return nil
}

// sparkline downsamples the series points inside [from, to] to width
// buckets of glyphs scaled to the segment maximum.
func sparkline(series []TickPoint, from, to des.Time, width int) string {
	if to <= from || width <= 0 {
		return ""
	}
	sums := make([]float64, width)
	ns := make([]int, width)
	maxV := 0.0
	for _, p := range series {
		if p.Time < from || p.Time > to || math.IsNaN(p.P99) {
			continue
		}
		b := int(float64(p.Time-from) / float64(to-from) * float64(width))
		if b >= width {
			b = width - 1
		}
		sums[b] += p.P99
		ns[b]++
		if p.P99 > maxV {
			maxV = p.P99
		}
	}
	if maxV <= 0 {
		return ""
	}
	out := make([]byte, width)
	for i := range out {
		if ns[i] == 0 {
			out[i] = ' '
			continue
		}
		level := int(sums[i] / float64(ns[i]) / maxV * float64(len(sparkGlyphs)-1))
		if level >= len(sparkGlyphs) {
			level = len(sparkGlyphs) - 1
		}
		out[i] = sparkGlyphs[level]
	}
	return string(out)
}

// AppendChrome adds the report as a Perfetto annotation track to a Chrome
// trace document: each episode is an "X" slice on pid 0 (named by its top
// cause), each ranked cause an "i" instant at its anchor time — loadable
// next to the span waterfall and the audit instants trace already emits.
func AppendChrome(doc *trace.ChromeTrace, rep *Report) {
	if doc == nil || rep == nil {
		return
	}
	const episodeTid = 999
	for i, er := range rep.Episodes {
		ep := er.Episode
		top := er.TopCause()
		doc.TraceEvents = append(doc.TraceEvents, trace.ChromeEvent{
			Name: fmt.Sprintf("episode#%d %s", i+1, top.Kind),
			Cat:  "episode",
			Ph:   "X",
			Ts:   float64(ep.Onset) * 1e6,
			Dur:  float64(ep.Duration()) * 1e6,
			Pid:  0,
			Tid:  episodeTid,
			Args: map[string]any{
				"depth_ms":      ep.Depth * 1000,
				"peak_p99_ms":   ep.PeakP99 * 1000,
				"area_over_slo": ep.AreaOverSLO,
				"top_cause":     top.Detail,
				"top_score":     top.Score,
			},
		})
		for _, c := range er.Causes {
			doc.TraceEvents = append(doc.TraceEvents, trace.ChromeEvent{
				Name: "cause:" + c.Kind.String(),
				Cat:  "episode",
				Ph:   "i",
				Ts:   float64(c.At) * 1e6,
				Pid:  0,
				Tid:  episodeTid,
				S:    "g",
				Args: map[string]any{
					"detail":   c.Detail,
					"score":    c.Score,
					"evidence": c.Evidence,
				},
			})
		}
	}
}
