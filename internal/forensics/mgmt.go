package forensics

import (
	"fmt"
	"strconv"
	"strings"

	"conscale/internal/mgmt"
)

// RegisterMgmt exposes the forensics layer through a management Store
// (the same JMX-substitute path the tracer and telemetry use):
//
//	forensics.enabled     RW  "true"/"false" — recorder + detector switch
//	forensics.episodes    RO  confirmed episode count
//	forensics.in_episode  RO  "true" while inside an episode
//	forensics.recorded    RO  "snaps/decisions/faults/sct/spans" counters
//
// The setters only touch atomics, so an Agent can drive them from its
// connection goroutines while the simulation runs.
func (f *Forensics) RegisterMgmt(s *mgmt.Store) {
	if f == nil || s == nil {
		return
	}
	s.Register("forensics.enabled",
		func() string { return strconv.FormatBool(f.Enabled()) },
		func(v string) error {
			on, err := strconv.ParseBool(strings.TrimSpace(v))
			if err != nil {
				return fmt.Errorf("forensics.enabled: %w", err)
			}
			f.SetEnabled(on)
			return nil
		})
	s.Register("forensics.episodes", func() string {
		return strconv.FormatUint(f.Det.Count(), 10)
	}, nil)
	s.Register("forensics.in_episode", func() string {
		return strconv.FormatBool(f.Det.InEpisode())
	}, nil)
	s.Register("forensics.recorded", func() string {
		sn, de, fa, sc, sp := f.Rec.Counts()
		return fmt.Sprintf("%d/%d/%d/%d/%d", sn, de, fa, sc, sp)
	}, nil)
}
