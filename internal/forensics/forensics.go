// Package forensics is the fluctuation-forensics layer: an always-on,
// bounded-memory flight recorder plus a sim-time episode detector and a
// causal attribution pipeline that together turn "the p99 spiked" into a
// ranked, evidence-backed suspected-cause report.
//
// The three pieces:
//
//   - flight recorder (this file): fixed-capacity ring buffers of the
//     recent past — per-tier occupancy snapshots, controller decisions,
//     chaos fault activations, SCT estimate refreshes, and head-sampled
//     span summaries — fed by the audit-trail observer tap, the tracer's
//     end-of-request tap, and a once-per-second snapshot tick;
//   - episode detector (episodes.go): segments the windowed p99 of the
//     client request stream into fluctuation episodes via a
//     baseline-relative onset threshold with clearing hysteresis,
//     yielding onset/peak/recovery timestamps, depth, and area-over-SLO;
//   - attribution (attribution.go, report.go): per episode, diffs the
//     tier×component latency blame against the pre-episode baseline and
//     pulls the overlapping recorder evidence into a ranked cause list,
//     exported as JSON, an ASCII timeline, and a Perfetto annotation
//     track.
//
// Discipline, inherited from trace and telemetry: the layer only ever
// reads simulation state — it draws no randomness and schedules nothing
// besides its own read-only tick — so an armed run's trajectory is
// byte-identical to a bare one. A nil receiver is valid everywhere, and
// the disabled hot path performs zero allocations (AllocsPerRun-pinned).
package forensics

import (
	"sync/atomic"

	"conscale/internal/des"
	"conscale/internal/trace"
)

// ring is a fixed-capacity overwrite-oldest buffer. The push count is
// atomic so management agents can poll sizes live; the backing slice is
// only touched from the simulation goroutine.
type ring[T any] struct {
	buf []T
	n   atomic.Uint64
}

func newRing[T any](capacity int) ring[T] {
	return ring[T]{buf: make([]T, capacity)}
}

// push overwrites the oldest slot. Allocation-free.
func (r *ring[T]) push(v T) {
	n := r.n.Load()
	r.buf[n%uint64(len(r.buf))] = v
	r.n.Store(n + 1)
}

// len returns how many slots currently hold live entries.
func (r *ring[T]) len() int {
	n := r.n.Load()
	if n > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(n)
}

// snapshot copies the live entries oldest-first.
func (r *ring[T]) snapshot() []T {
	k := r.len()
	out := make([]T, 0, k)
	n := r.n.Load()
	for i := n - uint64(k); i < n; i++ {
		out = append(out, r.buf[i%uint64(len(r.buf))])
	}
	return out
}

// TierStat is one tier's occupancy reading inside a snapshot.
type TierStat struct {
	// Ready is the count of VMs serving traffic.
	Ready int `json:"ready"`
	// Queue is the summed accept-queue depth across ready servers.
	Queue int `json:"queue"`
	// Active is the summed in-service request count.
	Active int `json:"active"`
	// CPU is the tier's mean CPU utilization (0..1).
	CPU float64 `json:"cpu"`
}

// TierSnapshot is one per-second occupancy reading across the stack,
// indexed by trace.TierID (the client slot carries only Clients).
type TierSnapshot struct {
	// Time is the simulated timestamp of the reading.
	Time des.Time `json:"time_s"`
	// Clients is the active client population at the reading.
	Clients int `json:"clients"`
	// Tiers holds per-tier occupancy, indexed by trace.TierID.
	Tiers [trace.NumTiers]TierStat `json:"tiers"`
}

// SpanSummary is the by-value digest of one head-sampled span tree — the
// recorder must not retain the pooled tree itself.
type SpanSummary struct {
	// ID is the trace ID (the root span's ID).
	ID uint64 `json:"id"`
	// Op is the servlet name.
	Op string `json:"op"`
	// Start is the request submit time.
	Start des.Time `json:"start_s"`
	// RT is the request's wall time in seconds.
	RT float64 `json:"rt_s"`
	// OK reports the request outcome.
	OK bool `json:"ok"`
	// HotTier locates the tier of the largest single latency component.
	HotTier trace.TierID `json:"hot_tier"`
	// HotKind is that component's segment kind (queue, cpu, net, ...).
	HotKind trace.SegKind `json:"hot_kind"`
	// HotMs is the hot component's magnitude in milliseconds.
	HotMs float64 `json:"hot_ms"`
}

// FaultRec is one chaos fault activation as seen through the audit trail
// (the injector records Value = window duration, so the recorder can
// reconstruct the window without importing the chaos package).
type FaultRec struct {
	// At is the fault activation time.
	At des.Time `json:"at_s"`
	// End closes the fault window (End == At for instantaneous faults).
	End des.Time `json:"end_s"`
	// Kind is the fault kind string ("vm-crash", "cpu-interference", ...).
	Kind string `json:"kind"`
	// Tier is the targeted tier name.
	Tier string `json:"tier"`
	// Target is the resolved victim (server name or whole-tier label).
	Target string `json:"target"`
}

// ShedRec is one admission-policy drop as seen through the cluster's
// shed observer tap: the entry-point moment a request was turned away
// to protect the tier's queue, by tier and priority class.
type ShedRec struct {
	// Time is the drop time.
	Time des.Time `json:"time_s"`
	// Tier names the shedding tier.
	Tier string `json:"tier"`
	// Class is the dropped request's priority class ("browse", "read-write").
	Class string `json:"class"`
}

// SCTRec is one refreshed per-server SCT estimate.
type SCTRec struct {
	// Time is when the estimate refreshed.
	Time des.Time `json:"time_s"`
	// Server is the estimated server.
	Server string `json:"server"`
	// Qlower is the lower end of the rational concurrency range.
	Qlower int `json:"qlower"`
	// Qupper is the upper end of the rational concurrency range.
	Qupper int `json:"qupper"`
	// Plateau is the estimated plateau throughput.
	Plateau float64 `json:"plateau"`
}

// Config tunes the forensics layer. Zero values take the documented
// defaults.
type Config struct {
	// SnapshotInterval is the occupancy-snapshot cadence (default 1 s).
	SnapshotInterval des.Time
	// SnapshotCap / DecisionCap / FaultCap / SCTCap / SpanCap / ShedCap
	// bound the ring buffers (defaults 512 / 1024 / 256 / 1024 / 512 /
	// 1024 entries).
	SnapshotCap, DecisionCap, FaultCap, SCTCap, SpanCap, ShedCap int
	// Detector tunes the episode detector.
	Detector DetectorConfig
	// BaselineWindow is how far before an episode's onset the attribution
	// pipeline reaches for its "normal" reference — blame baseline,
	// pre-episode client population, and suspect decisions (default 30 s).
	BaselineWindow des.Time
	// FaultLag extends a fault window's causal influence past its end:
	// a crash is instantaneous but its episode is not (default 30 s).
	FaultLag des.Time
}

func (cfg Config) withDefaults() Config {
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = des.Second
	}
	if cfg.SnapshotCap <= 0 {
		cfg.SnapshotCap = 512
	}
	if cfg.DecisionCap <= 0 {
		cfg.DecisionCap = 1024
	}
	if cfg.FaultCap <= 0 {
		cfg.FaultCap = 256
	}
	if cfg.SCTCap <= 0 {
		cfg.SCTCap = 1024
	}
	if cfg.SpanCap <= 0 {
		cfg.SpanCap = 512
	}
	if cfg.ShedCap <= 0 {
		cfg.ShedCap = 1024
	}
	if cfg.BaselineWindow <= 0 {
		cfg.BaselineWindow = 30 * des.Second
	}
	if cfg.FaultLag <= 0 {
		cfg.FaultLag = 30 * des.Second
	}
	cfg.Detector = cfg.Detector.withDefaults()
	return cfg
}

// Recorder is the flight recorder: bounded rings of the recent past,
// written on the simulation goroutine. The enable switch and the push
// counters are atomics so a management agent can toggle and poll it live;
// a nil *Recorder is a valid, inert receiver, and every feed method is a
// zero-allocation no-op while disabled.
type Recorder struct {
	enabled   atomic.Bool
	snaps     ring[TierSnapshot]
	decisions ring[trace.AuditEvent]
	faults    ring[FaultRec]
	sct       ring[SCTRec]
	spans     ring[SpanSummary]
	sheds     ring[ShedRec]

	// comp is the span-fold scratch, reused so ObserveSpan allocates
	// nothing in steady state (simulation goroutine only).
	comp [trace.NumTiers][trace.NumSegKinds]float64
}

// NewRecorder builds an enabled recorder with the configured capacities.
func NewRecorder(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	r := &Recorder{
		snaps:     newRing[TierSnapshot](cfg.SnapshotCap),
		decisions: newRing[trace.AuditEvent](cfg.DecisionCap),
		faults:    newRing[FaultRec](cfg.FaultCap),
		sct:       newRing[SCTRec](cfg.SCTCap),
		spans:     newRing[SpanSummary](cfg.SpanCap),
		sheds:     newRing[ShedRec](cfg.ShedCap),
	}
	r.enabled.Store(true)
	return r
}

// SetEnabled flips recording live (safe from any goroutine).
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Enabled reports the live switch.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// RecordSnapshot pushes one occupancy reading (no-op when nil/disabled).
func (r *Recorder) RecordSnapshot(s TierSnapshot) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.snaps.push(s)
}

// ObserveAudit is the audit-trail tap (trace.Audit.SetObserver): fault
// activations land in the fault ring, SCT refreshes in the SCT ring, and
// every other controller action in the decision ring.
func (r *Recorder) ObserveAudit(e trace.AuditEvent) {
	if r == nil || !r.enabled.Load() {
		return
	}
	switch e.Kind {
	case trace.AuditFault:
		r.faults.push(FaultRec{
			At:     e.Time,
			End:    e.Time + des.Time(e.Value),
			Kind:   e.Cause,
			Tier:   e.Tier,
			Target: e.Detail,
		})
	case trace.AuditSCTEstimate:
		r.sct.push(SCTRec{
			Time:    e.Time,
			Server:  e.Detail,
			Qlower:  e.Qlower,
			Qupper:  e.Qupper,
			Plateau: e.Value,
		})
	default:
		r.decisions.push(e)
	}
}

// ObserveShed is the cluster's admission-drop tap
// (cluster.SetShedObserver): every policy shed lands in the shed ring
// by tier and class, so attribution can tell "the p99 improved because
// we were dropping load" apart from organic recovery. Allocation-free.
func (r *Recorder) ObserveShed(s ShedRec) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.sheds.push(s)
}

// ObserveSpan is the tracer's end-of-request tap (trace.Tracer.SetOnEnd):
// it digests the closed span tree into a by-value summary and pushes it,
// leaving the pooled tree to the tracer.
func (r *Recorder) ObserveSpan(root *trace.Span) {
	if r == nil || !r.enabled.Load() || root == nil {
		return
	}
	r.comp = [trace.NumTiers][trace.NumSegKinds]float64{}
	r.foldSpan(root)
	sum := SpanSummary{
		ID:    root.ID,
		Op:    root.Op,
		Start: root.Start,
		RT:    float64(root.RT()),
		OK:    root.Outcome == trace.OutcomeOK,
	}
	for tier := trace.TierID(0); tier < trace.NumTiers; tier++ {
		for kind := trace.SegKind(0); kind < trace.NumSegKinds; kind++ {
			if ms := r.comp[tier][kind] * 1000; ms > sum.HotMs {
				sum.HotTier, sum.HotKind, sum.HotMs = tier, kind, ms
			}
		}
	}
	r.spans.push(sum)
}

// foldSpan accumulates the tree's segment durations into the scratch
// table without allocating (no closures — spans are walked recursively).
func (r *Recorder) foldSpan(s *trace.Span) {
	tier := trace.TierOf(s.Server)
	for _, seg := range s.Segs {
		r.comp[tier][seg.Kind] += float64(seg.End - seg.Start)
	}
	for _, c := range s.Children {
		r.foldSpan(c)
	}
}

// Snapshots returns the retained occupancy readings, oldest first
// (simulation goroutine only).
func (r *Recorder) Snapshots() []TierSnapshot {
	if r == nil {
		return nil
	}
	return r.snaps.snapshot()
}

// Decisions returns the retained controller decisions, oldest first.
func (r *Recorder) Decisions() []trace.AuditEvent {
	if r == nil {
		return nil
	}
	return r.decisions.snapshot()
}

// Faults returns the retained fault activations, oldest first.
func (r *Recorder) Faults() []FaultRec {
	if r == nil {
		return nil
	}
	return r.faults.snapshot()
}

// SCT returns the retained SCT estimate refreshes, oldest first.
func (r *Recorder) SCT() []SCTRec {
	if r == nil {
		return nil
	}
	return r.sct.snapshot()
}

// Spans returns the retained span summaries, oldest first.
func (r *Recorder) Spans() []SpanSummary {
	if r == nil {
		return nil
	}
	return r.spans.snapshot()
}

// Sheds returns the retained admission drops, oldest first.
func (r *Recorder) Sheds() []ShedRec {
	if r == nil {
		return nil
	}
	return r.sheds.snapshot()
}

// ShedCount returns the lifetime admission-drop push counter (safe from
// any goroutine; kept out of Counts to preserve its signature).
func (r *Recorder) ShedCount() uint64 {
	if r == nil {
		return 0
	}
	return r.sheds.n.Load()
}

// Counts returns the lifetime push counters per ring (safe from any
// goroutine) — snapshots, decisions, faults, SCT refreshes, spans.
func (r *Recorder) Counts() (snaps, decisions, faults, sct, spans uint64) {
	if r == nil {
		return 0, 0, 0, 0, 0
	}
	return r.snaps.n.Load(), r.decisions.n.Load(), r.faults.n.Load(),
		r.sct.n.Load(), r.spans.n.Load()
}

// Forensics bundles the armed layer: the flight recorder and the episode
// detector, sharing one Config. experiment.Run wires its taps and tick;
// Report runs the attribution pipeline over whatever they retained.
type Forensics struct {
	// Rec is the flight recorder.
	Rec *Recorder
	// Det is the episode detector.
	Det *Detector

	cfg Config
}

// New builds the layer, enabled, with defaulted Config.
func New(cfg Config) *Forensics {
	cfg = cfg.withDefaults()
	return &Forensics{
		Rec: NewRecorder(cfg),
		Det: NewDetector(cfg.Detector),
		cfg: cfg,
	}
}

// SetEnabled flips recorder and detector together (safe from any
// goroutine).
func (f *Forensics) SetEnabled(on bool) {
	if f == nil {
		return
	}
	f.Rec.SetEnabled(on)
	f.Det.SetEnabled(on)
}

// Enabled reports whether the layer is recording.
func (f *Forensics) Enabled() bool { return f != nil && f.Rec.Enabled() }

// Config returns the defaulted configuration the layer runs with.
func (f *Forensics) Config() Config {
	if f == nil {
		return Config{}.withDefaults()
	}
	return f.cfg
}
