package forensics

import (
	"math"
	"strings"
	"testing"

	"conscale/internal/des"
	"conscale/internal/trace"
)

func TestRingWrapAndSnapshot(t *testing.T) {
	r := newRing[int](4)
	if got := r.snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot = %v", got)
	}
	for i := 1; i <= 3; i++ {
		r.push(i)
	}
	if got := r.snapshot(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("partial ring snapshot = %v", got)
	}
	for i := 4; i <= 11; i++ {
		r.push(i)
	}
	got := r.snapshot()
	if len(got) != 4 {
		t.Fatalf("wrapped ring len = %d, want 4", len(got))
	}
	for i, want := range []int{8, 9, 10, 11} {
		if got[i] != want {
			t.Fatalf("wrapped ring snapshot = %v, want [8 9 10 11]", got)
		}
	}
	if r.len() != 4 || r.n.Load() != 11 {
		t.Fatalf("len/count = %d/%d, want 4/11", r.len(), r.n.Load())
	}
}

func TestRecorderRoutesAuditEvents(t *testing.T) {
	f := New(Config{})
	f.Rec.ObserveAudit(trace.AuditEvent{Time: 10, Kind: trace.AuditFault,
		Tier: "tomcat", Cause: "cpu-interference", Detail: "tomcat2", Value: 45})
	f.Rec.ObserveAudit(trace.AuditEvent{Time: 20, Kind: trace.AuditSCTEstimate,
		Tier: "mysql", Detail: "mysql1", Qlower: 10, Qupper: 20, Value: 400})
	f.Rec.ObserveAudit(trace.AuditEvent{Time: 30, Kind: trace.AuditScaleIn, Tier: "tomcat"})

	faults := f.Rec.Faults()
	if len(faults) != 1 || faults[0].Kind != "cpu-interference" || faults[0].End != 55 || faults[0].Target != "tomcat2" {
		t.Fatalf("faults = %+v", faults)
	}
	sct := f.Rec.SCT()
	if len(sct) != 1 || sct[0].Server != "mysql1" || sct[0].Qupper != 20 {
		t.Fatalf("sct = %+v", sct)
	}
	dec := f.Rec.Decisions()
	if len(dec) != 1 || dec[0].Kind != trace.AuditScaleIn {
		t.Fatalf("decisions = %+v", dec)
	}
	sn, de, fa, sc, sp := f.Rec.Counts()
	if sn != 0 || de != 1 || fa != 1 || sc != 1 || sp != 0 {
		t.Fatalf("counts = %d/%d/%d/%d/%d", sn, de, fa, sc, sp)
	}
}

func TestRecorderSpanSummary(t *testing.T) {
	tr := trace.New(trace.Config{SampleRate: 1})
	f := New(Config{})
	tr.SetOnEnd(f.Rec.ObserveSpan)
	root := tr.StartRequest("StoryOfTheDay", 1)
	if root == nil {
		t.Fatal("StartRequest returned nil at rate 1")
	}
	root.EnterServer("web1", 1)
	root.Admitted(1.5) // books 0.5 s SegQueue on web
	child := root.StartChild(2)
	child.EnterServer("tomcat1", 2)
	child.AddSeg(trace.SegPoolWait, 2, 4) // 2 s pool wait on app: the hot one
	child.Finish(4, trace.OutcomeOK)
	tr.EndRequest(root, 5, true)

	spans := f.Rec.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %+v", spans)
	}
	s := spans[0]
	if s.Op != "StoryOfTheDay" || !s.OK || s.RT != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.HotTier != trace.TierApp || s.HotKind != trace.SegPoolWait || math.Abs(s.HotMs-2000) > 1e-6 {
		t.Fatalf("hot component = %v/%v %.1f ms, want tomcat/pool-wait 2000", s.HotTier, s.HotKind, s.HotMs)
	}
}

// TestDisabledPathZeroAlloc pins the disabled hot path at zero
// allocations — the same discipline the tracer and telemetry registries
// are held to, and the property benchreport's alloc gate watches.
func TestDisabledPathZeroAlloc(t *testing.T) {
	f := New(Config{})
	f.SetEnabled(false)
	ev := trace.AuditEvent{Time: 1, Kind: trace.AuditScaleIn}
	snap := TierSnapshot{Time: 1}
	if n := testing.AllocsPerRun(1000, func() {
		f.Rec.ObserveAudit(ev)
		f.Rec.RecordSnapshot(snap)
		f.Rec.ObserveSpan(nil)
		f.Det.Observe(1, 0.1, true)
		f.Det.Tick(1)
	}); n != 0 {
		t.Fatalf("disabled forensics hot path allocates %.1f/op, want 0", n)
	}
	var nilR *Recorder
	var nilD *Detector
	if n := testing.AllocsPerRun(1000, func() {
		nilR.ObserveAudit(ev)
		nilR.RecordSnapshot(snap)
		nilD.Observe(1, 0.1, true)
		nilD.Tick(1)
	}); n != 0 {
		t.Fatalf("nil forensics hot path allocates %.1f/op, want 0", n)
	}
}

// feedCalm pushes a steady 100 ms tail for the given seconds starting at
// t0, ticking once per second, and returns the next free second.
func feedCalm(d *Detector, t0 des.Time, seconds int) des.Time {
	for i := 0; i < seconds; i++ {
		now := t0 + des.Time(i)
		for j := 0; j < 20; j++ {
			d.Observe(now, 0.1, true)
		}
		d.Tick(now)
	}
	return t0 + des.Time(seconds)
}

func TestDetectorHysteresisAndMinDuration(t *testing.T) {
	// A breach lingers in the windowed p99 for the whole window span, so
	// the blip-vs-episode boundary is MinDuration relative to Window:
	// with a 2 s window a 2-tick blip clears ~4 s after onset.
	d := NewDetector(DetectorConfig{Window: 2 * des.Second, MinDuration: 6 * des.Second})
	now := feedCalm(d, 0, 30)
	if d.InEpisode() || d.Count() != 0 {
		t.Fatalf("calm phase: inEpisode=%v count=%d", d.InEpisode(), d.Count())
	}

	// A 2-tick blip: above onset (needs > max(2×0.1, 0.3) = 0.3 s) but
	// gone well before MinDuration — must be dropped, not counted.
	for i := 0; i < 2; i++ {
		for j := 0; j < 20; j++ {
			d.Observe(now, 1.0, true)
		}
		d.Tick(now)
		now++
	}
	if !d.InEpisode() {
		t.Fatal("blip did not open an episode")
	}
	// Feed calm long enough to flush the window and cross the clearing
	// threshold (< max(1.2×0.1, 0.25)).
	now = feedCalm(d, now, 8)
	if d.InEpisode() {
		t.Fatal("blip episode did not clear")
	}
	if d.Count() != 0 || len(d.Episodes()) != 0 {
		t.Fatalf("blip was kept: count=%d episodes=%v", d.Count(), d.Episodes())
	}

	// A real fluctuation: 8 s of 1.5 s tails.
	onsetAt := now
	for i := 0; i < 8; i++ {
		for j := 0; j < 20; j++ {
			d.Observe(now, 1.5, true)
		}
		d.Tick(now)
		now++
	}
	if !d.InEpisode() || d.Count() != 1 {
		t.Fatalf("fluctuation: inEpisode=%v count=%d", d.InEpisode(), d.Count())
	}
	now = feedCalm(d, now, 10)
	if d.InEpisode() {
		t.Fatal("fluctuation did not clear after calm returned")
	}
	eps := d.Episodes()
	if len(eps) != 1 {
		t.Fatalf("episodes = %+v", eps)
	}
	ep := eps[0]
	if ep.Onset != onsetAt {
		t.Fatalf("onset = %v, want %v", ep.Onset, onsetAt)
	}
	if ep.Open || ep.Recovery <= ep.Onset || ep.Duration() < 8 {
		t.Fatalf("episode shape: %+v", ep)
	}
	if math.Abs(ep.PeakP99-1.5) > 1e-9 || ep.Depth < 1.3 || ep.Depth > 1.5 {
		t.Fatalf("peak/depth: %+v", ep)
	}
	// Area ≥ (1.5 − 0.3) × 8 s of full-height ticks.
	if ep.AreaOverSLO < 1.2*8 {
		t.Fatalf("area = %.2f, want ≥ %.2f", ep.AreaOverSLO, 1.2*8.0)
	}
	// Hysteresis: the counter must not double-count the same episode.
	if d.Count() != 1 {
		t.Fatalf("count = %d after clear, want 1", d.Count())
	}
}

func TestDetectorFinishMarksOpenEpisode(t *testing.T) {
	d := NewDetector(DetectorConfig{Window: 5 * des.Second})
	now := feedCalm(d, 0, 20)
	for i := 0; i < 5; i++ {
		for j := 0; j < 20; j++ {
			d.Observe(now, 2.0, true)
		}
		d.Tick(now)
		now++
	}
	d.Finish(now)
	eps := d.Episodes()
	if len(eps) != 1 || !eps[0].Open || eps[0].Recovery != now {
		t.Fatalf("open episode not sealed: %+v", eps)
	}
	if d.Count() != 1 {
		t.Fatalf("count = %d, want 1", d.Count())
	}
}

func TestDetectorEmptyWindowHoldsState(t *testing.T) {
	d := NewDetector(DetectorConfig{Window: 2 * des.Second})
	now := feedCalm(d, 0, 10)
	for i := 0; i < 4; i++ {
		for j := 0; j < 20; j++ {
			d.Observe(now, 2.0, true)
		}
		d.Tick(now)
		now++
	}
	if !d.InEpisode() {
		t.Fatal("no episode opened")
	}
	// A total stall: ticks with an empty window must not clear the
	// episode (a starving estimator is evidence of trouble, not calm).
	for i := 0; i < 5; i++ {
		d.Tick(now)
		now++
	}
	if !d.InEpisode() {
		t.Fatal("empty-window ticks cleared the episode")
	}
}

func TestAttributionRanksOverlappingFaultFirst(t *testing.T) {
	f := New(Config{})
	d := f.Det

	// Calm, then a fluctuation overlapping a recorded fault.
	now := feedCalm(d, 0, 60)
	f.Rec.ObserveAudit(trace.AuditEvent{Time: now - 2, Kind: trace.AuditFault,
		Tier: "tomcat", Cause: "cpu-interference", Detail: "tomcat1", Value: 20})
	// A pre-onset scale-in: a plausible but weaker suspect.
	f.Rec.ObserveAudit(trace.AuditEvent{Time: now - 10, Kind: trace.AuditScaleIn,
		Tier: "tomcat", Cause: "cpu low", Detail: "tomcat3"})
	// Population snapshots: flat, so no surge suspect.
	for ts := now - 40; ts < now+20; ts++ {
		f.Rec.RecordSnapshot(TierSnapshot{Time: ts, Clients: 1000})
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 20; j++ {
			d.Observe(now, 1.2, true)
		}
		d.Tick(now)
		now++
	}
	// A remedial launch during the episode.
	f.Rec.ObserveAudit(trace.AuditEvent{Time: now - 5, Kind: trace.AuditScaleOutLaunch,
		Tier: "tomcat", Cause: "cpu high", Detail: "tomcat4"})
	now = feedCalm(d, now, 15)
	d.Finish(now)

	rep := f.Report("test", nil)
	if len(rep.Episodes) != 1 {
		t.Fatalf("episodes = %d", len(rep.Episodes))
	}
	er := rep.Episodes[0]
	top := er.TopCause()
	if top.Kind != CauseFault || !strings.Contains(top.Detail, "cpu-interference") {
		t.Fatalf("top cause = %+v, want the overlapping fault", top)
	}
	if top.Score < 2.5 {
		t.Fatalf("fault score = %.2f, want ≥ 2.5", top.Score)
	}
	var sawDecision bool
	for _, c := range er.Causes {
		if c.Kind == CauseDecision {
			sawDecision = true
			if c.Score >= top.Score {
				t.Fatalf("decision (%.2f) outranked fault (%.2f)", c.Score, top.Score)
			}
		}
		if c.Kind == CauseWorkloadSurge {
			t.Fatalf("flat population produced a surge suspect: %+v", c)
		}
	}
	if !sawDecision {
		t.Fatalf("pre-onset scale-in missing from causes: %+v", er.Causes)
	}
	if len(er.Reactions) == 0 || !strings.Contains(er.Reactions[0], "scale-out-launch") {
		t.Fatalf("reactions = %v", er.Reactions)
	}
}

func TestAttributionSurgeWhenNoFault(t *testing.T) {
	f := New(Config{})
	d := f.Det
	now := feedCalm(d, 0, 60)
	for ts := now - 40; ts < now; ts++ {
		f.Rec.RecordSnapshot(TierSnapshot{Time: ts, Clients: 1000})
	}
	for i := 0; i < 10; i++ {
		f.Rec.RecordSnapshot(TierSnapshot{Time: now, Clients: 5000})
		for j := 0; j < 20; j++ {
			d.Observe(now, 1.2, true)
		}
		d.Tick(now)
		now++
	}
	now = feedCalm(d, now, 15)
	d.Finish(now)

	rep := f.Report("surge", nil)
	if len(rep.Episodes) != 1 {
		t.Fatalf("episodes = %d", len(rep.Episodes))
	}
	top := rep.Episodes[0].TopCause()
	if top.Kind != CauseWorkloadSurge {
		t.Fatalf("top cause = %+v, want workload-surge", top)
	}
}

func TestAttributionUnknownWhenRecorderSilent(t *testing.T) {
	f := New(Config{})
	d := f.Det
	now := feedCalm(d, 0, 30)
	for i := 0; i < 6; i++ {
		for j := 0; j < 20; j++ {
			d.Observe(now, 1.0, true)
		}
		d.Tick(now)
		now++
	}
	now = feedCalm(d, now, 12)
	d.Finish(now)
	rep := f.Report("silent", nil)
	if len(rep.Episodes) != 1 {
		t.Fatalf("episodes = %d", len(rep.Episodes))
	}
	cs := rep.Episodes[0].Causes
	if len(cs) != 1 || cs[0].Kind != CauseUnknown {
		t.Fatalf("causes = %+v, want the explicit unknown", cs)
	}
}

func TestReportWriters(t *testing.T) {
	f := New(Config{})
	d := f.Det
	now := feedCalm(d, 0, 40)
	f.Rec.ObserveAudit(trace.AuditEvent{Time: now - 1, Kind: trace.AuditFault,
		Tier: "mysql", Cause: "vm-crash", Detail: "mysql2", Value: 0})
	for i := 0; i < 8; i++ {
		for j := 0; j < 20; j++ {
			d.Observe(now, 1.8, true)
		}
		d.Tick(now)
		now++
	}
	now = feedCalm(d, now, 12)
	d.Finish(now)
	rep := f.Report("writers", nil)

	var buf strings.Builder
	if err := WriteASCII(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"episode #1", "cause 1:", "vm-crash", "p99 ["} {
		if !strings.Contains(out, want) {
			t.Fatalf("ASCII report missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	js := buf.String()
	if !strings.Contains(js, `"kind": "fault"`) {
		t.Fatalf("JSON report lacks stringified cause kind:\n%.400s", js)
	}

	doc := trace.BuildChromeTrace(nil, nil)
	AppendChrome(&doc, rep)
	var sawSlice, sawInstant bool
	for _, ev := range doc.TraceEvents {
		if ev.Cat == "episode" && ev.Ph == "X" {
			sawSlice = true
		}
		if ev.Cat == "episode" && ev.Ph == "i" {
			sawInstant = true
		}
	}
	if !sawSlice || !sawInstant {
		t.Fatalf("Perfetto track incomplete: slice=%v instant=%v", sawSlice, sawInstant)
	}
}

func TestAttributionShedIsContextNotRootCause(t *testing.T) {
	f := New(Config{})
	d := f.Det
	now := feedCalm(d, 0, 60)
	// Flat population, no faults, no decisions: the only evidence the
	// recorder holds is the shed stream during the fluctuation.
	for ts := now - 40; ts < now+20; ts++ {
		f.Rec.RecordSnapshot(TierSnapshot{Time: ts, Clients: 1000})
	}
	for i := 0; i < 10; i++ {
		f.Rec.ObserveShed(ShedRec{Time: now, Tier: "tomcat", Class: "browse"})
		f.Rec.ObserveShed(ShedRec{Time: now, Tier: "web", Class: "browse"})
		for j := 0; j < 20; j++ {
			d.Observe(now, 1.2, true)
		}
		d.Tick(now)
		now++
	}
	now = feedCalm(d, now, 15)
	d.Finish(now)

	rep := f.Report("shed", nil)
	if len(rep.Episodes) != 1 {
		t.Fatalf("episodes = %d", len(rep.Episodes))
	}
	var shed *Cause
	for i, c := range rep.Episodes[0].Causes {
		if c.Kind == CauseShed {
			shed = &rep.Episodes[0].Causes[i]
		}
	}
	if shed == nil {
		t.Fatalf("no shed cause in %+v", rep.Episodes[0].Causes)
	}
	if shed.Score != 0.5 {
		t.Fatalf("shed score = %.2f, want the fixed 0.5 context prior", shed.Score)
	}
	if !strings.Contains(shed.Detail, "x20") || !strings.Contains(shed.Detail, "tomcat") {
		t.Fatalf("shed detail = %q, want count and busiest tier", shed.Detail)
	}
}

func TestAttributionIgnoresSparseSheds(t *testing.T) {
	f := New(Config{})
	d := f.Det
	now := feedCalm(d, 0, 60)
	for ts := now - 40; ts < now+20; ts++ {
		f.Rec.RecordSnapshot(TierSnapshot{Time: ts, Clients: 1000})
	}
	for i := 0; i < 10; i++ {
		if i < 5 {
			f.Rec.ObserveShed(ShedRec{Time: now, Tier: "web", Class: "browse"})
		}
		for j := 0; j < 20; j++ {
			d.Observe(now, 1.2, true)
		}
		d.Tick(now)
		now++
	}
	now = feedCalm(d, now, 15)
	d.Finish(now)

	rep := f.Report("sparse", nil)
	if len(rep.Episodes) != 1 {
		t.Fatalf("episodes = %d", len(rep.Episodes))
	}
	for _, c := range rep.Episodes[0].Causes {
		if c.Kind == CauseShed {
			t.Fatalf("%d sheds (< the 10-drop floor) produced a cause: %+v", 5, c)
		}
	}
}
