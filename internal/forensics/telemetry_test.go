package forensics

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"conscale/internal/telemetry"
)

// TestEpisodeMetricsPromRoundTrip drives the detector into an episode,
// serves the registry through the live Prometheus handler, and parses
// the exposition back — the satellite contract that
// forensics_episodes_total / forensics_in_episode survive the full
// register → expose → parse loop.
func TestEpisodeMetricsPromRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	f := New(Config{})
	f.Det.Register(reg)

	scrape := func() map[string]float64 {
		srv := httptest.NewServer(telemetry.Handler(reg))
		defer srv.Close()
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		fams, err := telemetry.ParseProm(strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("exposition does not round-trip: %v\n%s", err, body)
		}
		vals := map[string]float64{}
		for _, fam := range fams {
			for _, s := range fam.Samples {
				vals[s.Name] = s.Value
			}
		}
		return vals
	}

	vals := scrape()
	if vals["forensics_episodes_total"] != 0 || vals["forensics_in_episode"] != 0 {
		t.Fatalf("pre-episode scrape = %v", vals)
	}

	now := feedCalm(f.Det, 0, 30)
	for i := 0; i < 6; i++ {
		for j := 0; j < 20; j++ {
			f.Det.Observe(now, 1.5, true)
		}
		f.Det.Tick(now)
		now++
	}
	vals = scrape()
	if vals["forensics_episodes_total"] != 1 {
		t.Fatalf("episodes_total = %v, want 1", vals["forensics_episodes_total"])
	}
	if vals["forensics_in_episode"] != 1 {
		t.Fatalf("in_episode = %v, want 1 mid-episode", vals["forensics_in_episode"])
	}

	feedCalm(f.Det, now, 12)
	vals = scrape()
	if vals["forensics_in_episode"] != 0 {
		t.Fatalf("in_episode = %v after recovery, want 0", vals["forensics_in_episode"])
	}
	if vals["forensics_episodes_total"] != 1 {
		t.Fatalf("episodes_total = %v after recovery, want 1", vals["forensics_episodes_total"])
	}
}
