package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPercentileBasic(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	vals := []float64{10, 20}
	if got := Percentile(vals, 50); !almost(got, 15, 1e-9) {
		t.Fatalf("median of {10,20} = %v, want 15", got)
	}
	if got := Percentile(vals, 95); !almost(got, 19.5, 1e-9) {
		t.Fatalf("p95 of {10,20} = %v, want 19.5", got)
	}
}

func TestPercentileEmptyNaN(t *testing.T) {
	if got := Percentile(nil, 50); !math.IsNaN(got) {
		t.Fatalf("Percentile(nil) = %v, want NaN", got)
	}
}

func TestPercentileSingleton(t *testing.T) {
	for _, p := range []float64{0, 50, 99, 100} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Fatalf("Percentile({7}, %v) = %v", p, got)
		}
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	vals := []float64{3, 1, 2}
	Percentile(vals, 50)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("input mutated: %v", vals)
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for p=101")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestPercentileSortedMatchesPercentile(t *testing.T) {
	vals := []float64{9, 1, 5, 3, 7, 2}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, p := range []float64{0, 10, 50, 90, 95, 99, 100} {
		if a, b := Percentile(vals, p), PercentileSorted(sorted, p); !almost(a, b, 1e-12) {
			t.Fatalf("p=%v: Percentile=%v PercentileSorted=%v", p, a, b)
		}
	}
}

func TestMeanMinMax(t *testing.T) {
	vals := []float64{4, 2, 8, 6}
	if got := Mean(vals); !almost(got, 5, 1e-12) {
		t.Fatalf("Mean = %v", got)
	}
	if got := Min(vals); got != 2 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(vals); got != 8 {
		t.Fatalf("Max = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("empty aggregates should be NaN")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var o Online
	for _, v := range vals {
		o.Add(v)
	}
	if o.Count() != len(vals) {
		t.Fatalf("Count = %d", o.Count())
	}
	if !almost(o.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", o.Mean())
	}
	if !almost(o.Variance(), 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", o.Variance())
	}
	if !almost(o.StdDev(), 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", o.StdDev())
	}
}

func TestOnlineEmptyNaN(t *testing.T) {
	var o Online
	if !math.IsNaN(o.Mean()) || !math.IsNaN(o.Variance()) {
		t.Fatal("empty Online should report NaN")
	}
}

func TestOnlineMergeEquivalence(t *testing.T) {
	all := []float64{1, 5, 2, 8, 3, 9, 4, 7, 6}
	var whole Online
	for _, v := range all {
		whole.Add(v)
	}
	var a, b Online
	for i, v := range all {
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), whole.Count())
	}
	if !almost(a.Mean(), whole.Mean(), 1e-9) || !almost(a.Variance(), whole.Variance(), 1e-9) {
		t.Fatalf("merged mean/var = %v/%v, want %v/%v", a.Mean(), a.Variance(), whole.Mean(), whole.Variance())
	}
}

func TestOnlineMergeEmptySides(t *testing.T) {
	var a, b Online
	b.Add(3)
	b.Add(5)
	a.Merge(b) // empty receiver
	if a.Count() != 2 || !almost(a.Mean(), 4, 1e-12) {
		t.Fatalf("merge into empty wrong: %v/%v", a.Count(), a.Mean())
	}
	var empty Online
	a.Merge(empty) // empty argument
	if a.Count() != 2 {
		t.Fatal("merging empty changed count")
	}
}

func TestBinSet(t *testing.T) {
	bs := NewBinSet()
	bs.Add(10, 100, 5)
	bs.Add(10, 120, 7)
	bs.Add(5, 60, 4)
	if bs.Len() != 2 {
		t.Fatalf("Len = %d", bs.Len())
	}
	bins := bs.Sorted()
	if bins[0].Key != 5 || bins[1].Key != 10 {
		t.Fatalf("Sorted keys wrong: %v, %v", bins[0].Key, bins[1].Key)
	}
	if !almost(bins[1].TP.Mean(), 110, 1e-12) {
		t.Fatalf("bin 10 TP mean = %v", bins[1].TP.Mean())
	}
	if !almost(bins[1].RT.Mean(), 6, 1e-12) {
		t.Fatalf("bin 10 RT mean = %v", bins[1].RT.Mean())
	}
}

func TestMovingAverageIdentityRadiusZero(t *testing.T) {
	in := []float64{1, 2, 3}
	out := MovingAverage(in, 0)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("radius-0 changed values: %v", out)
		}
	}
}

func TestMovingAverageSmooths(t *testing.T) {
	in := []float64{0, 10, 0, 10, 0}
	out := MovingAverage(in, 1)
	want := []float64{5, 10.0 / 3, 20.0 / 3, 10.0 / 3, 5}
	for i := range want {
		if !almost(out[i], want[i], 1e-9) {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestMovingAverageNegativeRadiusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MovingAverage([]float64{1}, -1)
}

func TestBezierEndpoints(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 5, 5, 0}
	ox, oy := Bezier(xs, ys, 11)
	if len(ox) != 11 || len(oy) != 11 {
		t.Fatalf("lengths = %d/%d", len(ox), len(oy))
	}
	if !almost(ox[0], 0, 1e-12) || !almost(oy[0], 0, 1e-12) {
		t.Fatalf("start = (%v, %v)", ox[0], oy[0])
	}
	if !almost(ox[10], 3, 1e-12) || !almost(oy[10], 0, 1e-12) {
		t.Fatalf("end = (%v, %v)", ox[10], oy[10])
	}
}

func TestBezierLineIsExact(t *testing.T) {
	// Bezier of collinear points stays on the line.
	xs := []float64{0, 1, 2}
	ys := []float64{0, 2, 4}
	ox, oy := Bezier(xs, ys, 7)
	for i := range ox {
		if !almost(oy[i], 2*ox[i], 1e-9) {
			t.Fatalf("point %d = (%v, %v) off the line", i, ox[i], oy[i])
		}
	}
}

func TestBezierEmptyAndMismatch(t *testing.T) {
	if x, y := Bezier(nil, nil, 5); x != nil || y != nil {
		t.Fatal("empty Bezier should return nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Bezier([]float64{1}, []float64{1, 2}, 3)
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Correlation(xs, []float64{2, 4, 6, 8}); !almost(got, 1, 1e-9) {
		t.Fatalf("perfect positive correlation = %v", got)
	}
	if got := Correlation(xs, []float64{8, 6, 4, 2}); !almost(got, -1, 1e-9) {
		t.Fatalf("perfect negative correlation = %v", got)
	}
	if got := Correlation(xs, []float64{5, 5, 5, 5}); !math.IsNaN(got) {
		t.Fatalf("zero-variance correlation = %v, want NaN", got)
	}
	if got := Correlation([]float64{1}, []float64{1}); !math.IsNaN(got) {
		t.Fatalf("single-point correlation = %v, want NaN", got)
	}
}

// syntheticCurve builds bins following the paper's three-stage shape:
// linear ascent to the plateau at Qlower, flat until Qupper, then decline.
func syntheticCurve(qlower, qupper, maxKey int, plateau float64, samples int) []*Bin {
	bs := NewBinSet()
	for k := 1; k <= maxKey; k++ {
		var tp float64
		switch {
		case k < qlower:
			tp = plateau * float64(k) / float64(qlower)
		case k <= qupper:
			tp = plateau
		default:
			tp = plateau * math.Max(0.2, 1-0.03*float64(k-qupper))
		}
		for s := 0; s < samples; s++ {
			bs.Add(k, tp, 10+float64(k))
		}
	}
	return bs.Sorted()
}

func TestInterventionFindsRange(t *testing.T) {
	bins := syntheticCurve(10, 30, 60, 5000, 5)
	res, ok := Intervention(bins, DefaultIntervention())
	if !ok {
		t.Fatal("Intervention failed")
	}
	// The 5% tolerance admits the last ascending bin just below the
	// plateau, so allow ±1 around the true knee.
	if res.LowerKey < 9 || res.LowerKey > 11 {
		t.Fatalf("LowerKey = %d, want ~10", res.LowerKey)
	}
	if res.UpperKey < 29 || res.UpperKey > 32 {
		t.Fatalf("UpperKey = %d, want ~30", res.UpperKey)
	}
	if !almost(res.PlateauTP, 5000, 1) {
		t.Fatalf("PlateauTP = %v", res.PlateauTP)
	}
	if res.Confidence != 1 {
		t.Fatalf("Confidence = %v, want 1", res.Confidence)
	}
}

func TestInterventionIgnoresThinBins(t *testing.T) {
	bins := syntheticCurve(10, 30, 60, 5000, 5)
	// Add a single-sample outlier bin with absurd throughput; MinSamples=3
	// must exclude it from setting the plateau.
	bs := NewBinSet()
	for _, b := range bins {
		for i := 0; i < b.TP.Count(); i++ {
			bs.Add(b.Key, b.TP.Mean(), b.RT.Mean())
		}
	}
	bs.Add(70, 50000, 1)
	res, ok := Intervention(bs.Sorted(), DefaultIntervention())
	if !ok {
		t.Fatal("Intervention failed")
	}
	if res.PlateauTP > 6000 {
		t.Fatalf("outlier set the plateau: %v", res.PlateauTP)
	}
}

func TestInterventionNoEligibleBins(t *testing.T) {
	bs := NewBinSet()
	bs.Add(1, 100, 5) // single sample < MinSamples(3)
	if _, ok := Intervention(bs.Sorted(), DefaultIntervention()); ok {
		t.Fatal("Intervention succeeded with no eligible bins")
	}
}

func TestInterventionMonotoneAscentOnly(t *testing.T) {
	// Curve that never plateaus within the observed range: the range
	// should collapse near the top observed key.
	bs := NewBinSet()
	for k := 1; k <= 20; k++ {
		for s := 0; s < 4; s++ {
			bs.Add(k, float64(100*k), 10)
		}
	}
	res, ok := Intervention(bs.Sorted(), DefaultIntervention())
	if !ok {
		t.Fatal("failed")
	}
	if res.PeakKey != 20 || res.UpperKey != 20 {
		t.Fatalf("peak/upper = %d/%d, want 20/20", res.PeakKey, res.UpperKey)
	}
	if res.LowerKey < 19 {
		t.Fatalf("LowerKey = %d; ascending curve should pin the range at the top", res.LowerKey)
	}
}

func TestInterventionDefaults(t *testing.T) {
	cfg := DefaultIntervention()
	if cfg.Tolerance != 0.05 || cfg.MinSamples != 3 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}

// Property: percentile output is always within [min, max] of the input.
func TestQuickPercentileBounded(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		p := float64(pRaw) / 255 * 100
		got := Percentile(vals, p)
		return got >= Min(vals)-1e-9 && got <= Max(vals)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, aRaw, bRaw uint8) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return Percentile(vals, a) <= Percentile(vals, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intervention (when it succeeds) returns LowerKey <= PeakKey <=
// UpperKey, all within the observed key range.
func TestQuickInterventionOrdering(t *testing.T) {
	f := func(tps []uint16) bool {
		bs := NewBinSet()
		for i, tp := range tps {
			for s := 0; s < 3; s++ {
				bs.Add(i+1, float64(tp), 1)
			}
		}
		res, ok := Intervention(bs.Sorted(), DefaultIntervention())
		if !ok {
			return len(tps) == 0
		}
		return res.LowerKey <= res.PeakKey && res.PeakKey <= res.UpperKey &&
			res.LowerKey >= 1 && res.UpperKey <= len(tps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPercentile(b *testing.B) {
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = float64((i * 7919) % 10007)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Percentile(vals, 99)
	}
}

func BenchmarkIntervention(b *testing.B) {
	bins := syntheticCurve(10, 30, 80, 5000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Intervention(bins, DefaultIntervention())
	}
}
