// Package stats provides the statistical primitives shared by the metrics
// pipeline and the SCT model: percentiles, online accumulators, binning of
// (concurrency, throughput) samples, smoothing, and the statistical
// intervention analysis (Malkowski et al., DSOM 2007) that the paper extends
// for rational-concurrency-range estimation.
package stats

import (
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 <= p <= 100) of values using
// linear interpolation between closest ranks. It returns NaN for an empty
// input and panics on an out-of-range p.
func Percentile(values []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic("stats: percentile out of [0, 100]")
	}
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is Percentile for input already in ascending order; it
// does not copy.
func PercentileSorted(sorted []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic("stats: percentile out of [0, 100]")
	}
	if len(sorted) == 0 {
		return math.NaN()
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Max returns the maximum, or NaN for empty input.
func Max(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	m := values[0]
	for _, v := range values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum, or NaN for empty input.
func Min(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	m := values[0]
	for _, v := range values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Online accumulates count, mean, and variance in one pass (Welford's
// algorithm). The zero value is an empty accumulator.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (o *Online) Add(v float64) {
	o.n++
	d := v - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (v - o.mean)
}

// Merge combines another accumulator into this one (Chan et al. parallel
// variance), so per-window accumulators can be rolled up.
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	n := o.n + other.n
	d := other.mean - o.mean
	mean := o.mean + d*float64(other.n)/float64(n)
	m2 := o.m2 + other.m2 + d*d*float64(o.n)*float64(other.n)/float64(n)
	o.n, o.mean, o.m2 = n, mean, m2
}

// Count returns the number of observations.
func (o *Online) Count() int { return o.n }

// Mean returns the running mean (NaN when empty).
func (o *Online) Mean() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.mean
}

// Variance returns the population variance (NaN when empty).
func (o *Online) Variance() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the population standard deviation (NaN when empty).
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Bin aggregates samples keyed by an integer bin (the SCT model bins
// 50 ms samples by rounded concurrency).
type Bin struct {
	Key int
	TP  Online // throughput samples in this bin
	RT  Online // response-time samples in this bin
}

// BinSet holds bins in ascending key order.
type BinSet struct {
	bins map[int]*Bin
}

// NewBinSet returns an empty bin set.
func NewBinSet() *BinSet { return &BinSet{bins: make(map[int]*Bin)} }

// Add records one (key, throughput, responseTime) sample.
func (b *BinSet) Add(key int, tp, rt float64) {
	bin, ok := b.bins[key]
	if !ok {
		bin = &Bin{Key: key}
		b.bins[key] = bin
	}
	bin.TP.Add(tp)
	bin.RT.Add(rt)
}

// Len returns the number of distinct keys.
func (b *BinSet) Len() int { return len(b.bins) }

// Sorted returns bins in ascending key order.
func (b *BinSet) Sorted() []*Bin {
	out := make([]*Bin, 0, len(b.bins))
	for _, bin := range b.bins {
		out = append(out, bin)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// MovingAverage smooths values with a centred window of the given radius
// (window = 2*radius+1, truncated at the edges). radius 0 copies the input.
func MovingAverage(values []float64, radius int) []float64 {
	if radius < 0 {
		panic("stats: negative radius")
	}
	out := make([]float64, len(values))
	for i := range values {
		lo, hi := i-radius, i+radius
		if lo < 0 {
			lo = 0
		}
		if hi >= len(values) {
			hi = len(values) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += values[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// Bezier returns n points of the Bezier curve through the given control
// points — the same smoothing gnuplot's `smooth bezier` applies to the
// paper's scatter plots. xs and ys must be equal length.
func Bezier(xs, ys []float64, n int) (outX, outY []float64) {
	if len(xs) != len(ys) {
		panic("stats: Bezier input length mismatch")
	}
	if len(xs) == 0 || n <= 0 {
		return nil, nil
	}
	outX = make([]float64, n)
	outY = make([]float64, n)
	for i := 0; i < n; i++ {
		t := 0.0
		if n > 1 {
			t = float64(i) / float64(n-1)
		}
		outX[i], outY[i] = bezierPoint(xs, ys, t)
	}
	return outX, outY
}

// bezierPoint evaluates the Bezier curve at parameter t via de Casteljau,
// which is numerically stable for the modest control counts we use.
func bezierPoint(xs, ys []float64, t float64) (float64, float64) {
	bx := make([]float64, len(xs))
	by := make([]float64, len(ys))
	copy(bx, xs)
	copy(by, ys)
	for k := len(bx) - 1; k > 0; k-- {
		for i := 0; i < k; i++ {
			bx[i] = bx[i]*(1-t) + bx[i+1]*t
			by[i] = by[i]*(1-t) + by[i+1]*t
		}
	}
	return bx[0], by[0]
}

// Correlation returns the Pearson correlation coefficient of xs and ys,
// NaN when undefined (fewer than two points or zero variance).
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: correlation length mismatch")
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	var mx, my Online
	for i := range xs {
		mx.Add(xs[i])
		my.Add(ys[i])
	}
	cov := 0.0
	for i := range xs {
		cov += (xs[i] - mx.Mean()) * (ys[i] - my.Mean())
	}
	cov /= float64(len(xs))
	denom := mx.StdDev() * my.StdDev()
	if denom == 0 {
		return math.NaN()
	}
	return cov / denom
}

// InterventionResult is the outcome of intervention analysis over a binned
// throughput curve: the plateau level and the first/last keys whose mean
// throughput is statistically indistinguishable from the plateau.
type InterventionResult struct {
	PlateauTP  float64 // estimated maximum sustainable throughput
	LowerKey   int     // first key reaching the plateau (Qlower)
	UpperKey   int     // last key holding the plateau (Qupper)
	PeakKey    int     // key of the single highest mean throughput
	Confidence float64 // fraction of plateau bins with >= MinSamples support
	// MaxEligibleKey is the largest well-supported key observed; when it
	// exceeds UpperKey the descending stage was actually witnessed.
	MaxEligibleKey int
	// BelowRangeTP is the mean throughput of the eligible bin just below
	// LowerKey (NaN when LowerKey is the lowest eligible bin). The ratio
	// PlateauTP/BelowRangeTP measures how steeply the curve was still
	// climbing when it entered the claimed plateau.
	BelowRangeTP float64
}

// InterventionConfig tunes the analysis.
type InterventionConfig struct {
	// Tolerance is the fractional throughput drop from the plateau that
	// still counts as "at the plateau" (the paper's "ΔTP → 0" condition
	// operationalised). Typical: 0.05.
	Tolerance float64
	// MinSamples is the minimum observations a bin needs to participate.
	// Thin bins at the extremes of the observed concurrency range are
	// noise and must not set the plateau.
	MinSamples int
}

// DefaultIntervention matches the constants used throughout the paper's
// evaluation: a 5 % plateau tolerance and at least 3 samples per bin.
func DefaultIntervention() InterventionConfig {
	return InterventionConfig{Tolerance: 0.05, MinSamples: 3}
}

// Intervention runs statistical intervention analysis on binned throughput
// means: it finds the plateau (maximum mean throughput over well-supported
// bins) and the contiguous key range whose throughput stays within
// Tolerance of it. It returns ok=false when no bin has enough samples.
func Intervention(bins []*Bin, cfg InterventionConfig) (InterventionResult, bool) {
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.05
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 1
	}
	var eligible []*Bin
	for _, b := range bins {
		if b.TP.Count() >= cfg.MinSamples {
			eligible = append(eligible, b)
		}
	}
	if len(eligible) == 0 {
		return InterventionResult{}, false
	}
	sort.Slice(eligible, func(i, j int) bool { return eligible[i].Key < eligible[j].Key })

	peak := eligible[0]
	for _, b := range eligible[1:] {
		if b.TP.Mean() > peak.TP.Mean() {
			peak = b
		}
	}
	plateau := peak.TP.Mean()
	floor := plateau * (1 - cfg.Tolerance)

	// Walk outward from the peak so the range is contiguous: a noisy dip
	// inside the stable stage must not split it, but once throughput falls
	// below the floor on either side the range ends.
	peakIdx := 0
	for i, b := range eligible {
		if b == peak {
			peakIdx = i
			break
		}
	}
	lo := peakIdx
	for lo > 0 && eligible[lo-1].TP.Mean() >= floor {
		lo--
	}
	hi := peakIdx
	for hi < len(eligible)-1 && eligible[hi+1].TP.Mean() >= floor {
		hi++
	}

	supported := 0
	for i := lo; i <= hi; i++ {
		if eligible[i].TP.Count() >= cfg.MinSamples {
			supported++
		}
	}
	res := InterventionResult{
		PlateauTP:      plateau,
		LowerKey:       eligible[lo].Key,
		UpperKey:       eligible[hi].Key,
		PeakKey:        peak.Key,
		Confidence:     float64(supported) / float64(hi-lo+1),
		MaxEligibleKey: eligible[len(eligible)-1].Key,
		BelowRangeTP:   math.NaN(),
	}
	if lo > 0 {
		res.BelowRangeTP = eligible[lo-1].TP.Mean()
	}
	return res, true
}
