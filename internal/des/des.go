// Package des implements the discrete-event simulation engine that every
// other simulator package runs on.
//
// The engine maintains a virtual clock and an event heap. Components
// schedule closures at absolute or relative virtual times; Run drains the
// heap in time order, breaking ties by scheduling order so simulations are
// deterministic. The engine is single-goroutine by design: the paper's
// testbed behaviour is reproduced by explicit queueing in the server model,
// not by goroutine interleaving, which keeps every experiment replayable.
// (Separate Engines are fully independent, so whole runs can execute in
// parallel — see internal/experiment's harness.)
//
// The schedule is an inline value-typed 4-ary min-heap over compact
// (time, seq, slot) entries; the closures live in a slot table recycled
// through a free list. A schedule→fire cycle therefore allocates nothing
// in steady state — entries and slots are reused — which matters because a
// 12-minute cluster run fires tens of millions of events. Handles are
// generation-counted so Cancel and Pending stay safe across slot reuse.
// Cancellation is lazy (the heap entry is abandoned and skipped when it
// surfaces), with an opportunistic compaction pass when abandoned entries
// outnumber live ones — the Ticker-heavy cancel pattern cannot grow the
// heap unboundedly. See DESIGN.md "Performance engineering".
package des

// Time is virtual simulation time in seconds.
type Time float64

// Millisecond and Second are convenient Time spans.
const (
	Millisecond Time = 1e-3
	Second      Time = 1
)

// Handle identifies a scheduled event and allows cancellation. The zero
// Handle is valid and behaves as an already-fired event. Handles are
// generation-counted: once the event fires or its slot is recycled, stale
// copies report not-pending and refuse to cancel.
type Handle struct {
	e    *Engine
	slot int32
	gen  uint64
}

// Cancel removes the event from the schedule. Cancelling an already-fired
// or already-cancelled event is a no-op. It reports whether the event was
// still pending.
//
// Cancel is O(1): the closure is released immediately (so Ticker-captured
// state does not linger) and the heap entry is abandoned in place, to be
// skipped on pop or swept by compaction.
func (h Handle) Cancel() bool {
	e := h.e
	if e == nil || h.slot < 0 || int(h.slot) >= len(e.slots) {
		return false
	}
	s := &e.slots[h.slot]
	if s.gen != h.gen || s.fn == nil {
		return false
	}
	s.fn = nil
	e.live--
	e.abandoned++
	e.maybeCompact()
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h Handle) Pending() bool {
	e := h.e
	if e == nil || h.slot < 0 || int(h.slot) >= len(e.slots) {
		return false
	}
	s := &e.slots[h.slot]
	return s.gen == h.gen && s.fn != nil
}

// entry is one heap element: 24 bytes, no pointers into the heap itself.
type entry struct {
	at   Time
	seq  uint64
	slot int32
}

// slot holds a scheduled closure plus the generation guard for its handles.
type slot struct {
	fn  func()
	gen uint64
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now  Time
	seq  uint64
	heap []entry

	slots []slot
	free  []int32

	// live counts scheduled-and-not-cancelled events; abandoned counts
	// cancelled entries still sitting in the heap (live+abandoned ==
	// len(heap)).
	live      int
	abandoned int

	stopped bool
	fired   uint64
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful for tests and
// progress reporting).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled. Cancelled events
// are excluded, even if their abandoned heap entries have not been swept
// yet.
func (e *Engine) Pending() int { return e.live }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it is always a simulation bug and silently reordering would corrupt the
// causality of the run.
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic("des: event scheduled in the past")
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		idx = int32(len(e.slots))
		e.slots = append(e.slots, slot{})
	}
	s := &e.slots[idx]
	s.fn = fn
	e.live++
	e.heap = append(e.heap, entry{at: t, seq: e.seq, slot: idx})
	e.seq++
	e.siftUp(len(e.heap) - 1)
	return Handle{e: e, slot: idx, gen: s.gen}
}

// BatchEvent is one element of an AtBatch bulk insertion: an absolute
// virtual time and the closure to run there.
type BatchEvent struct {
	// At is the absolute virtual delivery time.
	At Time
	// Fn is the event body.
	Fn func()
}

// AtBatch schedules every event in evs, in slice order, exactly as the
// equivalent sequence of At calls would — same panics, same sequence
// numbers, same tie-break order — but grows the heap and slot storage
// once up front instead of once per append. The striper's window barrier
// uses it to bulk-insert a merged cross-shard batch without reallocating
// engine storage mid-batch. Handles are not returned: barrier deliveries
// are never cancelled.
func (e *Engine) AtBatch(evs []BatchEvent) {
	if len(evs) == 0 {
		return
	}
	if need := len(e.heap) + len(evs); need > cap(e.heap) {
		grown := make([]entry, len(e.heap), need+need/2)
		copy(grown, e.heap)
		e.heap = grown
	}
	if deficit := len(evs) - len(e.free); deficit > 0 {
		if need := len(e.slots) + deficit; need > cap(e.slots) {
			grown := make([]slot, len(e.slots), need+need/2)
			copy(grown, e.slots)
			e.slots = grown
		}
	}
	for _, ev := range evs {
		e.At(ev.At, ev.Fn)
	}
}

// NextEvent reports the virtual time of the earliest pending event, or
// false when the schedule is empty. Cancelled events are skipped (and
// opportunistically swept). The striper's idle fast-forward uses it to
// jump over lookahead windows in which no shard can execute anything.
func (e *Engine) NextEvent() (Time, bool) {
	return e.peek()
}

// After schedules fn d seconds of virtual time from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) Handle {
	if d < 0 {
		panic("des: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Every schedules fn at now+d, then every d thereafter, until the returned
// Ticker is stopped. fn observes the tick time via Engine.Now.
func (e *Engine) Every(d Time, fn func()) *Ticker {
	if d <= 0 {
		panic("des: non-positive tick interval")
	}
	t := &Ticker{engine: e, period: d, fn: fn}
	t.arm()
	return t
}

// Ticker repeats an event at a fixed virtual period.
type Ticker struct {
	engine  *Engine
	period  Time
	fn      func()
	handle  Handle
	stopped bool
}

func (t *Ticker) arm() {
	t.handle = t.engine.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks. Safe to call multiple times. The pending
// tick's closure is released immediately; it does not linger until the
// engine drains past its scheduled time.
func (t *Ticker) Stop() {
	t.stopped = true
	t.handle.Cancel()
}

// Step executes the next pending event, advancing the clock to it. It
// returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		en := e.heap[0]
		e.popTop()
		s := &e.slots[en.slot]
		if s.fn == nil { // cancelled: abandoned entry surfacing
			e.abandoned--
			e.freeSlot(en.slot)
			continue
		}
		fn := s.fn
		e.freeSlot(en.slot)
		e.live--
		e.now = en.at
		e.fired++
		fn()
		return true
	}
	return false
}

// Run drains all events. It returns the final clock value.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil executes events with time <= deadline, then advances the clock
// to the deadline even if the heap still holds later events.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Stop makes the current Run or RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) peek() (Time, bool) {
	for len(e.heap) > 0 {
		en := e.heap[0]
		if e.slots[en.slot].fn == nil {
			e.popTop()
			e.abandoned--
			e.freeSlot(en.slot)
			continue
		}
		return en.at, true
	}
	return 0, false
}

// freeSlot recycles a slot, bumping its generation so stale handles die.
func (e *Engine) freeSlot(idx int32) {
	s := &e.slots[idx]
	s.fn = nil
	s.gen++
	e.free = append(e.free, idx)
}

// maybeCompact sweeps abandoned entries once they outnumber live ones.
// The bound keeps cancel-heavy workloads (stopped Tickers, re-armed
// timeouts) from growing the heap past 2× its live size, while the
// threshold keeps the sweep amortized O(1) per cancellation.
func (e *Engine) maybeCompact() {
	if e.abandoned < 64 || e.abandoned <= e.live {
		return
	}
	kept := e.heap[:0]
	for _, en := range e.heap {
		if e.slots[en.slot].fn == nil {
			e.freeSlot(en.slot)
		} else {
			kept = append(kept, en)
		}
	}
	e.heap = kept
	e.abandoned = 0
	// Floyd heap construction: sift down from the last parent.
	for i := (len(kept) - 2) / arity; i >= 0; i-- {
		e.siftDown(i)
	}
}

// The heap is 4-ary: shallower than a binary heap (fewer cache-missing
// levels per sift) at the cost of three extra comparisons per level, a
// trade that wins for the small-to-medium heaps simulations hold.
const arity = 4

func (e *Engine) siftUp(i int) {
	h := e.heap
	moving := h[i]
	for i > 0 {
		p := (i - 1) / arity
		if !lessEntry(moving, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = moving
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	moving := h[i]
	for {
		first := arity*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + arity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if lessEntry(h[c], h[min]) {
				min = c
			}
		}
		if !lessEntry(h[min], moving) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = moving
}

func lessEntry(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// popTop removes the minimum entry.
func (e *Engine) popTop() {
	n := len(e.heap) - 1
	if n > 0 {
		e.heap[0] = e.heap[n]
	}
	e.heap = e.heap[:n]
	if n > 1 {
		e.siftDown(0)
	}
}
