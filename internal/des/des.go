// Package des implements the discrete-event simulation engine that every
// other simulator package runs on.
//
// The engine maintains a virtual clock and an event heap. Components
// schedule closures at absolute or relative virtual times; Run drains the
// heap in time order, breaking ties by scheduling order so simulations are
// deterministic. The engine is single-goroutine by design: the paper's
// testbed behaviour is reproduced by explicit queueing in the server model,
// not by goroutine interleaving, which keeps every experiment replayable.
package des

import "container/heap"

// Time is virtual simulation time in seconds.
type Time float64

// Millisecond and Second are convenient Time spans.
const (
	Millisecond Time = 1e-3
	Second      Time = 1
)

// Handle identifies a scheduled event and allows cancellation.
type Handle struct {
	ev *event
}

// Cancel removes the event from the schedule. Cancelling an already-fired
// or already-cancelled event is a no-op. It reports whether the event was
// still pending.
func (h *Handle) Cancel() bool {
	if h == nil || h.ev == nil || h.ev.fn == nil {
		return false
	}
	h.ev.fn = nil
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h *Handle) Pending() bool { return h != nil && h.ev != nil && h.ev.fn != nil }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful for tests and
// progress reporting).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled, including cancelled
// events that have not yet been popped.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it is always a simulation bug and silently reordering would corrupt the
// causality of the run.
func (e *Engine) At(t Time, fn func()) *Handle {
	if t < e.now {
		panic("des: event scheduled in the past")
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Handle{ev: ev}
}

// After schedules fn d seconds of virtual time from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) *Handle {
	if d < 0 {
		panic("des: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Every schedules fn at now+d, then every d thereafter, until the returned
// Ticker is stopped. fn observes the tick time via Engine.Now.
func (e *Engine) Every(d Time, fn func()) *Ticker {
	if d <= 0 {
		panic("des: non-positive tick interval")
	}
	t := &Ticker{engine: e, period: d, fn: fn}
	t.arm()
	return t
}

// Ticker repeats an event at a fixed virtual period.
type Ticker struct {
	engine  *Engine
	period  Time
	fn      func()
	handle  *Handle
	stopped bool
}

func (t *Ticker) arm() {
	t.handle = t.engine.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.handle.Cancel()
}

// Step executes the next pending event, advancing the clock to it. It
// returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.fn == nil { // cancelled
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn()
		return true
	}
	return false
}

// Run drains all events. It returns the final clock value.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil executes events with time <= deadline, then advances the clock
// to the deadline even if the heap still holds later events.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Stop makes the current Run or RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) peek() (Time, bool) {
	for len(e.events) > 0 {
		if e.events[0].fn == nil {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0].at, true
	}
	return 0, false
}
