package des

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestRunInTimeOrder(t *testing.T) {
	e := New()
	var order []Time
	times := []Time{5, 1, 3, 2, 4}
	for _, at := range times {
		at := at
		e.At(at, func() { order = append(order, at) })
	}
	e.Run()
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != len(times) {
		t.Fatalf("fired %d events, want %d", len(order), len(times))
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order wrong: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New()
	e.At(2.5, func() {
		if e.Now() != 2.5 {
			t.Fatalf("Now() = %v inside event at 2.5", e.Now())
		}
	})
	end := e.Run()
	if end != 2.5 {
		t.Fatalf("Run returned %v, want 2.5", end)
	}
}

func TestAfterRelative(t *testing.T) {
	e := New()
	var at Time
	e.At(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	New().After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	h := e.At(1, func() { fired = true })
	if !h.Cancel() {
		t.Fatal("Cancel returned false for pending event")
	}
	if h.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := New()
	h := e.At(1, func() {})
	e.Run()
	if h.Cancel() {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestPendingReflectsState(t *testing.T) {
	e := New()
	h := e.At(1, func() {})
	if !h.Pending() {
		t.Fatal("fresh event not pending")
	}
	e.Run()
	if h.Pending() {
		t.Fatal("fired event still pending")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by t=3, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("fired %d events by t=10, want 5", len(fired))
	}
}

func TestRunUntilAdvancesClockPastLastEvent(t *testing.T) {
	e := New()
	e.At(1, func() {})
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100", e.Now())
	}
}

func TestStopInterruptsRun(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
}

func TestEvery(t *testing.T) {
	e := New()
	var ticks []Time
	tk := e.Every(2, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 4 {
			e.Stop()
		}
	})
	e.Run()
	tk.Stop()
	want := []Time{2, 4, 6, 8}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopPreventsFutureTicks(t *testing.T) {
	e := New()
	count := 0
	var tk *Ticker
	tk = e.Every(1, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	e.At(10, func() {}) // keep the sim alive past stopped ticks
	e.Run()
	if count != 2 {
		t.Fatalf("ticker fired %d times after Stop, want 2", count)
	}
}

func TestEveryNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	New().Every(0, func() {})
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	h := e.At(10, func() {})
	h.Cancel()
	e.Run()
	if e.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5 (cancelled events must not count)", e.Fired())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(1, recurse)
		}
	}
	e.At(0, recurse)
	end := e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if end != 99 {
		t.Fatalf("end time = %v, want 99", end)
	}
}

// Property: for any set of event times, execution order is a sorted
// permutation of the input.
func TestQuickExecutionSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil never executes an event beyond the deadline.
func TestQuickRunUntilRespectsDeadline(t *testing.T) {
	f := func(raw []uint16, deadline uint16) bool {
		e := New()
		ok := true
		d := Time(deadline)
		for _, r := range raw {
			at := Time(r)
			e.At(at, func() {
				if at > d {
					ok = false
				}
			})
		}
		e.RunUntil(d)
		return ok && e.Now() >= d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	e := New()
	for i := 0; i < b.N; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
}

// --- regression tests for the inline-heap engine ---

// Pending must count live events only: cancelled-but-unswept heap entries
// are invisible (the historical engine counted them until drained).
func TestPendingExcludesCancelled(t *testing.T) {
	e := New()
	h1 := e.At(1, func() {})
	e.At(2, func() {})
	e.At(3, func() {})
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", e.Pending())
	}
	h1.Cancel()
	if e.Pending() != 2 {
		t.Fatalf("Pending after cancel = %d, want 2 (cancelled events must not count)", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", e.Pending())
	}
}

// Stopping a Ticker must take effect immediately — the pending tick leaves
// the live count without waiting for the engine to drain past its time.
func TestTickerStopDoesNotLinger(t *testing.T) {
	e := New()
	tk := e.Every(1000, func() {})
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 armed tick", e.Pending())
	}
	tk.Stop()
	if e.Pending() != 0 {
		t.Fatalf("Pending after Stop = %d, want 0: the cancelled tick lingered", e.Pending())
	}
	tk.Stop() // idempotent
	if e.Pending() != 0 {
		t.Fatalf("second Stop changed Pending to %d", e.Pending())
	}
}

// Handles are generation-counted: a handle whose slot has been recycled by
// a later event must not cancel (or report pending for) the newcomer.
func TestHandleSafeAcrossSlotReuse(t *testing.T) {
	e := New()
	stale := e.At(1, func() {})
	e.Run() // fires the event, freeing its slot
	fired := false
	fresh := e.At(2, func() { fired = true }) // reuses the slot
	if stale.Pending() {
		t.Fatal("stale handle reports pending after slot reuse")
	}
	if stale.Cancel() {
		t.Fatal("stale handle cancelled a recycled slot's new event")
	}
	if !fresh.Pending() {
		t.Fatal("fresh event lost by stale-handle interaction")
	}
	e.Run()
	if !fired {
		t.Fatal("fresh event did not fire")
	}
}

// The zero Handle is inert.
func TestZeroHandle(t *testing.T) {
	var h Handle
	if h.Pending() {
		t.Fatal("zero handle pending")
	}
	if h.Cancel() {
		t.Fatal("zero handle cancelled something")
	}
}

// Mass cancellation must compact the heap instead of letting abandoned
// entries accumulate until drained (the stopped-Ticker pattern).
func TestCancelHeavyCompaction(t *testing.T) {
	e := New()
	handles := make([]Handle, 0, 4096)
	for i := 0; i < 4096; i++ {
		handles = append(handles, e.At(Time(1000+i), func() {}))
	}
	e.At(5000, func() {}) // one survivor
	for _, h := range handles {
		h.Cancel()
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	if got := len(e.heap); got > 64 {
		t.Fatalf("heap holds %d entries after mass cancel, want compaction to ~1", got)
	}
	e.Run()
	if e.Fired() != 1 {
		t.Fatalf("fired %d events, want 1", e.Fired())
	}
}

// Cancelling from inside a running event must be safe and exact.
func TestCancelDuringRun(t *testing.T) {
	e := New()
	var h2 Handle
	fired2 := false
	e.At(1, func() { h2.Cancel() })
	h2 = e.At(2, func() { fired2 = true })
	e.Run()
	if fired2 {
		t.Fatal("event fired despite in-run cancellation")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d at drain", e.Pending())
	}
}

// The schedule→fire cycle must not allocate in steady state: entries,
// slots, and free-list storage are all reused (the allocation budget the
// perf work targets; see DESIGN.md "Performance engineering").
func TestScheduleFireAllocBudget(t *testing.T) {
	e := New()
	fn := func() {}
	// Warm the engine so slices reach steady-state capacity.
	for i := 0; i < 64; i++ {
		e.After(1, fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(1, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule→fire cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// Cancel must not allocate either.
func TestCancelAllocBudget(t *testing.T) {
	e := New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(1, fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		h := e.After(1, fn)
		h.Cancel()
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule→cancel cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// Property: a deep interleaving of schedules, cancels, and ticks fires in
// exactly (time, scheduling-order) sequence — the determinism contract the
// parallel experiment harness relies on.
func TestQuickCancelMixDeterminism(t *testing.T) {
	f := func(raw []uint16, cancelMask []bool) bool {
		run := func() []int {
			e := New()
			var fired []int
			var hs []Handle
			for i, r := range raw {
				i := i
				hs = append(hs, e.At(Time(r%512), func() { fired = append(fired, i) }))
			}
			for i, h := range hs {
				if i < len(cancelMask) && cancelMask[i] {
					h.Cancel()
				}
			}
			e.Run()
			return fired
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- microbenchmarks (compare with internal/des/baseline) ---

// BenchmarkEngineScheduleFire is the steady-state hot path: one event
// scheduled and fired per op with the heap near-empty.
func BenchmarkEngineScheduleFire(b *testing.B) {
	b.ReportAllocs()
	e := New()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, fn)
		e.Step()
	}
}

// BenchmarkEngineScheduleFireDepth1k keeps ~1000 events pending so every
// sift traverses a realistically deep heap (a scaled-out cluster run).
func BenchmarkEngineScheduleFireDepth1k(b *testing.B) {
	b.ReportAllocs()
	e := New()
	fn := func() {}
	for i := 0; i < 1000; i++ {
		e.After(Time(1+i), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1000, fn)
		e.Step()
	}
}

// BenchmarkEngineCancelHeavy exercises the lazy-cancel + compaction path:
// every op schedules two events and cancels one (the Ticker re-arm
// pattern).
func BenchmarkEngineCancelHeavy(b *testing.B) {
	b.ReportAllocs()
	e := New()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := e.After(1, fn)
		e.After(1, fn)
		h.Cancel()
		e.Step()
	}
}

// AtBatch promises byte-for-byte equivalence with the same sequence of At
// calls: same firing order, same tie-breaks against events that were
// already scheduled and events scheduled afterwards.
func TestAtBatchMatchesSequentialAt(t *testing.T) {
	times := []Time{3, 1, 2, 2, 1, 3, 0.5, 2}
	run := func(batch bool) []int {
		e := New()
		var fired []int
		rec := func(id int) func() { return func() { fired = append(fired, id) } }
		e.At(2, rec(100)) // pre-existing event sharing a batch timestamp
		if batch {
			evs := make([]BatchEvent, len(times))
			for i, at := range times {
				evs[i] = BatchEvent{At: at, Fn: rec(i)}
			}
			e.AtBatch(evs)
		} else {
			for i, at := range times {
				e.At(at, rec(i))
			}
		}
		e.At(1, rec(200)) // later event sharing a batch timestamp
		e.Run()
		return fired
	}
	want := run(false)
	got := run(true)
	if len(got) != len(want) {
		t.Fatalf("AtBatch fired %d events, At fired %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order diverges at %d: AtBatch %v, At %v", i, got, want)
		}
	}
}

// An empty batch is a no-op and a past-scheduled batch event panics like At.
func TestAtBatchEdgeCases(t *testing.T) {
	e := New()
	e.AtBatch(nil)
	e.AtBatch([]BatchEvent{})
	if e.Pending() != 0 {
		t.Fatalf("empty batches scheduled %d events", e.Pending())
	}
	e.At(5, func() {})
	e.RunUntil(3)
	defer func() {
		if recover() == nil {
			t.Fatal("AtBatch with a past event did not panic")
		}
	}()
	e.AtBatch([]BatchEvent{{At: 3, Fn: func() {}}, {At: 1, Fn: func() {}}})
}

// A warm engine must absorb a batch without allocating: storage is
// pre-grown once, then reused via the free list forever after.
func TestAtBatchAllocBudget(t *testing.T) {
	e := New()
	fn := func() {}
	evs := make([]BatchEvent, 64)
	warm := func() {
		at := e.Now() + 1
		for j := range evs {
			evs[j] = BatchEvent{At: at + Time(j), Fn: fn}
		}
		e.AtBatch(evs)
		e.RunUntil(at + Time(len(evs)))
	}
	warm()
	if allocs := testing.AllocsPerRun(200, warm); allocs != 0 {
		t.Fatalf("warm AtBatch cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// NextEvent reports the earliest pending time, skipping cancelled entries,
// without advancing the clock or firing anything.
func TestNextEvent(t *testing.T) {
	e := New()
	if _, ok := e.NextEvent(); ok {
		t.Fatal("empty engine reported a next event")
	}
	h := e.At(1, func() {})
	e.At(2, func() {})
	if at, ok := e.NextEvent(); !ok || at != 1 {
		t.Fatalf("NextEvent = %v,%v, want 1,true", at, ok)
	}
	h.Cancel()
	if at, ok := e.NextEvent(); !ok || at != 2 {
		t.Fatalf("NextEvent after cancel = %v,%v, want 2,true", at, ok)
	}
	if e.Now() != 0 || e.Fired() != 0 {
		t.Fatalf("NextEvent advanced the engine: now=%v fired=%d", e.Now(), e.Fired())
	}
	e.Run()
	if _, ok := e.NextEvent(); ok {
		t.Fatal("drained engine reported a next event")
	}
}

// BenchmarkEngineAtBatch measures the barrier bulk-insert path: 64 merged
// deliveries into a warm engine per op. Steady state must be 0 allocs/op.
func BenchmarkEngineAtBatch(b *testing.B) {
	b.ReportAllocs()
	e := New()
	fn := func() {}
	evs := make([]BatchEvent, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := e.Now() + 1
		for j := range evs {
			evs[j] = BatchEvent{At: at + Time(j), Fn: fn}
		}
		e.AtBatch(evs)
		e.RunUntil(at + Time(len(evs)))
	}
}
