package des

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestRunInTimeOrder(t *testing.T) {
	e := New()
	var order []Time
	times := []Time{5, 1, 3, 2, 4}
	for _, at := range times {
		at := at
		e.At(at, func() { order = append(order, at) })
	}
	e.Run()
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != len(times) {
		t.Fatalf("fired %d events, want %d", len(order), len(times))
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order wrong: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New()
	e.At(2.5, func() {
		if e.Now() != 2.5 {
			t.Fatalf("Now() = %v inside event at 2.5", e.Now())
		}
	})
	end := e.Run()
	if end != 2.5 {
		t.Fatalf("Run returned %v, want 2.5", end)
	}
}

func TestAfterRelative(t *testing.T) {
	e := New()
	var at Time
	e.At(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	New().After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	h := e.At(1, func() { fired = true })
	if !h.Cancel() {
		t.Fatal("Cancel returned false for pending event")
	}
	if h.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := New()
	h := e.At(1, func() {})
	e.Run()
	if h.Cancel() {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestPendingReflectsState(t *testing.T) {
	e := New()
	h := e.At(1, func() {})
	if !h.Pending() {
		t.Fatal("fresh event not pending")
	}
	e.Run()
	if h.Pending() {
		t.Fatal("fired event still pending")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by t=3, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("fired %d events by t=10, want 5", len(fired))
	}
}

func TestRunUntilAdvancesClockPastLastEvent(t *testing.T) {
	e := New()
	e.At(1, func() {})
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100", e.Now())
	}
}

func TestStopInterruptsRun(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
}

func TestEvery(t *testing.T) {
	e := New()
	var ticks []Time
	tk := e.Every(2, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 4 {
			e.Stop()
		}
	})
	e.Run()
	tk.Stop()
	want := []Time{2, 4, 6, 8}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopPreventsFutureTicks(t *testing.T) {
	e := New()
	count := 0
	var tk *Ticker
	tk = e.Every(1, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	e.At(10, func() {}) // keep the sim alive past stopped ticks
	e.Run()
	if count != 2 {
		t.Fatalf("ticker fired %d times after Stop, want 2", count)
	}
}

func TestEveryNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	New().Every(0, func() {})
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	h := e.At(10, func() {})
	h.Cancel()
	e.Run()
	if e.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5 (cancelled events must not count)", e.Fired())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(1, recurse)
		}
	}
	e.At(0, recurse)
	end := e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if end != 99 {
		t.Fatalf("end time = %v, want 99", end)
	}
}

// Property: for any set of event times, execution order is a sorted
// permutation of the input.
func TestQuickExecutionSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil never executes an event beyond the deadline.
func TestQuickRunUntilRespectsDeadline(t *testing.T) {
	f := func(raw []uint16, deadline uint16) bool {
		e := New()
		ok := true
		d := Time(deadline)
		for _, r := range raw {
			at := Time(r)
			e.At(at, func() {
				if at > d {
					ok = false
				}
			})
		}
		e.RunUntil(d)
		return ok && e.Now() >= d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	e := New()
	for i := 0; i < b.N; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
}
