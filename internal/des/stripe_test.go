package des

import (
	"fmt"
	"sync"
	"testing"
)

// goroutinePar is a stand-in for the experiment harness's worker pool:
// it runs every index on its own goroutine and waits for all of them, the
// most adversarial scheduling the striper has to stay deterministic under.
func goroutinePar(n int, fn func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// stripeScenario wires a ring of chattering shards and returns the
// per-shard execution log. Each shard ticks locally every 3 ms and, on
// each tick, sends a message one step around the ring with a delay that
// varies deterministically with the tick; receivers log (now, from, k).
func stripeScenario(par func(int, func(int))) []string {
	const shards = 5
	const horizon = 10 * Millisecond
	s := NewStriper(shards, horizon)
	s.SetParallel(par)

	logs := make([][]string, shards)
	for i := 0; i < shards; i++ {
		i := i
		sh := s.Shard(i)
		tick := 0
		sh.Eng.Every(3*Millisecond, func() {
			tick++
			k := tick
			to := (i + 1) % shards
			delay := horizon + Time(k%7)*Millisecond
			sh.Send(to, delay, func() {
				logs[to] = append(logs[to], fmt.Sprintf("t=%.6f from=%d k=%d", float64(s.Shard(to).Eng.Now()), i, k))
			})
			// A same-timestamp second message exercises the (src, seq)
			// tie-break in the barrier merge.
			if k%4 == 0 {
				sh.Send(to, delay, func() {
					logs[to] = append(logs[to], fmt.Sprintf("t=%.6f from=%d k=%d dup", float64(s.Shard(to).Eng.Now()), i, k))
				})
			}
		})
	}
	s.RunUntil(500 * Millisecond)
	var flat []string
	for i, l := range logs {
		flat = append(flat, fmt.Sprintf("-- shard %d --", i))
		flat = append(flat, l...)
	}
	return flat
}

func TestStriperParallelMatchesSequential(t *testing.T) {
	seq := stripeScenario(nil)
	if len(seq) < 100 {
		t.Fatalf("scenario too small to be meaningful: %d log lines", len(seq))
	}
	for trial := 0; trial < 3; trial++ {
		par := stripeScenario(goroutinePar)
		if len(par) != len(seq) {
			t.Fatalf("trial %d: parallel log has %d lines, sequential %d", trial, len(par), len(seq))
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("trial %d: log diverges at line %d:\nseq: %s\npar: %s", trial, i, seq[i], par[i])
			}
		}
	}
}

func TestStriperLookaheadViolationPanics(t *testing.T) {
	s := NewStriper(2, 10*Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("Send below the lookahead horizon did not panic")
		}
	}()
	s.Shard(0).Send(1, 5*Millisecond, func() {})
}

func TestStriperBadDestinationPanics(t *testing.T) {
	s := NewStriper(2, Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("Send to an out-of-range shard did not panic")
		}
	}()
	s.Shard(0).Send(2, Millisecond, func() {})
}

// TestStriperHorizonBoundary pins the conservative contract at its edge:
// a message sent with delay exactly equal to the lookahead lands at the
// next window boundary and must still be delivered (not lost or late).
func TestStriperHorizonBoundary(t *testing.T) {
	const horizon = 10 * Millisecond
	s := NewStriper(2, horizon)
	var gotAt Time = -1
	s.Shard(0).Eng.At(0, func() {
		s.Shard(0).Send(1, horizon, func() { gotAt = s.Shard(1).Eng.Now() })
	})
	s.RunUntil(3 * horizon)
	if gotAt != horizon {
		t.Fatalf("boundary message delivered at %v, want %v", gotAt, Time(horizon))
	}
}

// TestStriperClocksAdvance checks every shard's clock reaches the
// deadline even when heaps drain early — components hosted on idle shards
// rely on a consistent notion of now.
func TestStriperClocksAdvance(t *testing.T) {
	s := NewStriper(3, 7*Millisecond)
	s.Shard(1).Eng.After(Millisecond, func() {})
	end := s.RunUntil(100 * Millisecond)
	if end != 100*Millisecond {
		t.Fatalf("RunUntil returned %v, want 100ms", end)
	}
	for i := 0; i < s.Shards(); i++ {
		if now := s.Shard(i).Eng.Now(); now != 100*Millisecond {
			t.Fatalf("shard %d clock = %v, want 100ms", i, now)
		}
	}
	if s.Now() != 100*Millisecond {
		t.Fatalf("striper clock = %v, want 100ms", s.Now())
	}
}

// TestStriperFiredCounts sanity-checks the aggregate event counter.
func TestStriperFiredCounts(t *testing.T) {
	s := NewStriper(2, Millisecond)
	s.Shard(0).Eng.At(0, func() {})
	s.Shard(1).Eng.At(0, func() { s.Shard(1).Send(0, Millisecond, func() {}) })
	s.RunUntil(10 * Millisecond)
	if got := s.Fired(); got != 3 {
		t.Fatalf("Fired() = %d, want 3", got)
	}
}

// TestStriperSendBeforeRun verifies setup-time sends (clocks at zero, no
// window in flight) are queued and delivered once the run starts.
func TestStriperSendBeforeRun(t *testing.T) {
	s := NewStriper(2, Millisecond)
	fired := false
	s.Shard(0).Send(1, 2*Millisecond, func() { fired = true })
	s.RunUntil(5 * Millisecond)
	if !fired {
		t.Fatal("setup-time cross-shard send was never delivered")
	}
}
