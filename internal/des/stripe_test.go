package des

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// goroutinePar is a stand-in for the experiment harness's worker pool:
// it runs every index on its own goroutine and waits for all of them, the
// most adversarial scheduling the striper has to stay deterministic under.
func goroutinePar(n int, fn func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// stripeScenario wires a ring of chattering shards and returns the
// per-shard execution log. Each shard ticks locally every 3 ms and, on
// each tick, sends a message one step around the ring with a delay that
// varies deterministically with the tick; receivers log (now, from, k).
func stripeScenario(par func(int, func(int))) []string {
	const shards = 5
	const horizon = 10 * Millisecond
	s := NewStriper(shards, horizon)
	s.SetParallel(par)

	logs := make([][]string, shards)
	for i := 0; i < shards; i++ {
		i := i
		sh := s.Shard(i)
		tick := 0
		sh.Eng.Every(3*Millisecond, func() {
			tick++
			k := tick
			to := (i + 1) % shards
			delay := horizon + Time(k%7)*Millisecond
			sh.Send(to, delay, func() {
				logs[to] = append(logs[to], fmt.Sprintf("t=%.6f from=%d k=%d", float64(s.Shard(to).Eng.Now()), i, k))
			})
			// A same-timestamp second message exercises the (src, seq)
			// tie-break in the barrier merge.
			if k%4 == 0 {
				sh.Send(to, delay, func() {
					logs[to] = append(logs[to], fmt.Sprintf("t=%.6f from=%d k=%d dup", float64(s.Shard(to).Eng.Now()), i, k))
				})
			}
		})
	}
	s.RunUntil(500 * Millisecond)
	var flat []string
	for i, l := range logs {
		flat = append(flat, fmt.Sprintf("-- shard %d --", i))
		flat = append(flat, l...)
	}
	return flat
}

func TestStriperParallelMatchesSequential(t *testing.T) {
	seq := stripeScenario(nil)
	if len(seq) < 100 {
		t.Fatalf("scenario too small to be meaningful: %d log lines", len(seq))
	}
	for trial := 0; trial < 3; trial++ {
		par := stripeScenario(goroutinePar)
		if len(par) != len(seq) {
			t.Fatalf("trial %d: parallel log has %d lines, sequential %d", trial, len(par), len(seq))
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("trial %d: log diverges at line %d:\nseq: %s\npar: %s", trial, i, seq[i], par[i])
			}
		}
	}
}

// stripeScenarioWorkers runs the chatter scenario on the persistent
// pinned worker pool instead of a per-window driver.
func stripeScenarioWorkers(workers int) []string {
	const shards = 5
	const horizon = 10 * Millisecond
	s := NewStriper(shards, horizon)
	s.SetWorkers(workers)
	defer s.Close()

	logs := make([][]string, shards)
	for i := 0; i < shards; i++ {
		i := i
		sh := s.Shard(i)
		tick := 0
		sh.Eng.Every(3*Millisecond, func() {
			tick++
			k := tick
			to := (i + 1) % shards
			delay := horizon + Time(k%7)*Millisecond
			sh.Send(to, delay, func() {
				logs[to] = append(logs[to], fmt.Sprintf("t=%.6f from=%d k=%d", float64(s.Shard(to).Eng.Now()), i, k))
			})
			if k%4 == 0 {
				sh.Send(to, delay, func() {
					logs[to] = append(logs[to], fmt.Sprintf("t=%.6f from=%d k=%d dup", float64(s.Shard(to).Eng.Now()), i, k))
				})
			}
		})
	}
	s.RunUntil(500 * Millisecond)
	var flat []string
	for i, l := range logs {
		flat = append(flat, fmt.Sprintf("-- shard %d --", i))
		flat = append(flat, l...)
	}
	return flat
}

// TestStriperWorkerPoolMatchesSequential is the contention half of the
// determinism contract: the pinned worker pool must reproduce the
// sequential trajectory exactly at worker counts below, at, and above
// both GOMAXPROCS and the shard count (run under -race in CI).
func TestStriperWorkerPoolMatchesSequential(t *testing.T) {
	seq := stripeScenarioWorkers(1)
	if len(seq) < 100 {
		t.Fatalf("scenario too small to be meaningful: %d log lines", len(seq))
	}
	counts := []int{2, runtime.GOMAXPROCS(0), 5 + 1}
	for _, workers := range counts {
		for trial := 0; trial < 2; trial++ {
			par := stripeScenarioWorkers(workers)
			if len(par) != len(seq) {
				t.Fatalf("workers=%d trial %d: log has %d lines, sequential %d", workers, trial, len(par), len(seq))
			}
			for i := range seq {
				if par[i] != seq[i] {
					t.Fatalf("workers=%d trial %d: log diverges at line %d:\nseq: %s\npar: %s",
						workers, trial, i, seq[i], par[i])
				}
			}
		}
	}
}

// idleScenario alternates short chatter bursts with long silent stretches
// so every adaptive path runs: per-window merges during bursts, window
// batching in the lulls between scheduled events, and the idle
// fast-forward across the fully empty stretches.
func idleScenario(configure func(*Striper)) ([]string, StripeStats) {
	const shards = 4
	const horizon = 10 * Millisecond
	s := NewStriper(shards, horizon)
	if configure != nil {
		configure(s)
	}
	defer s.Close()

	var log []string
	for i := 0; i < shards; i++ {
		i := i
		sh := s.Shard(i)
		for burst := 0; burst < 3; burst++ {
			burst := burst
			// Bursts are ~2 s apart; each schedules a short local cascade
			// that sends once across the stripe.
			sh.Eng.At(Time(burst)*2+Time(i)*50*Millisecond, func() {
				to := (i + 1) % shards
				sh.Send(to, horizon+Time(burst)*Millisecond, func() {
					log = append(log, fmt.Sprintf("t=%.6f to=%d burst=%d", float64(s.Shard(to).Eng.Now()), to, burst))
				})
			})
		}
	}
	// A purely local busy stretch on shard 0 between 3 s and 5 s: events
	// every half-window with zero cross-shard traffic. Fast-forward cannot
	// skip these windows, so this is where adaptive batching must collapse
	// many windows into one barrier iteration.
	host := s.Shard(0).Eng
	ticks := 0
	var tk *Ticker
	host.At(3*Second, func() {
		tk = host.Every(horizon/2, func() { ticks++ })
	})
	host.At(5*Second, func() { tk.Stop() })
	s.RunUntil(7 * Second)
	log = append(log, fmt.Sprintf("ticks=%d", ticks))
	return log, s.Stats()
}

// TestStriperIdleFastForward pins that long empty stretches are skipped,
// not simulated window by window, and that skipping does not change the
// trajectory relative to a striper with batching and fast-forward forced
// off via SetMaxBatch(1) — which still fast-forwards, so also compare
// against per-window sequential execution through the legacy driver.
func TestStriperIdleFastForward(t *testing.T) {
	base, baseStats := idleScenario(func(s *Striper) { s.SetMaxBatch(1) })
	if len(base) == 0 {
		t.Fatal("scenario produced no deliveries")
	}
	adaptive, stats := idleScenario(nil)
	if len(adaptive) != len(base) {
		t.Fatalf("adaptive run has %d deliveries, baseline %d", len(adaptive), len(base))
	}
	for i := range base {
		if adaptive[i] != base[i] {
			t.Fatalf("trajectory diverges at %d:\nbase:     %s\nadaptive: %s", i, base[i], adaptive[i])
		}
	}
	pooled, _ := idleScenario(func(s *Striper) { s.SetWorkers(3) })
	for i := range base {
		if pooled[i] != base[i] {
			t.Fatalf("pooled trajectory diverges at %d:\nbase:   %s\npooled: %s", i, base[i], pooled[i])
		}
	}
	// 7 s / 10 ms = 700 windows; the idle stretches outside the bursts and
	// the 3–5 s ticker run are empty and must be skipped, not simulated.
	if stats.Skipped < 300 {
		t.Fatalf("fast-forward skipped only %d windows of ~700", stats.Skipped)
	}
	// The adaptive run executes the same busy windows plus at most the
	// empty tails of batches planned past the end of a busy stretch; the
	// overshoot is bounded by the batch cap per stretch.
	if stats.Windows < baseStats.Windows || stats.Windows > baseStats.Windows+2*64 {
		t.Fatalf("adaptive run executed %d windows, baseline %d (+overshoot cap %d)",
			stats.Windows, baseStats.Windows, 2*64)
	}
	if stats.Batches*3 >= baseStats.Batches {
		t.Fatalf("adaptive run used %d barrier iterations for %d windows, baseline %d — batching is not engaging",
			stats.Batches, stats.Windows, baseStats.Batches)
	}
	if stats.Merges == 0 || stats.Delivered == 0 {
		t.Fatalf("no merges recorded: %+v", stats)
	}
}

// TestStriperBatchEdgeBoundary pins the conservative contract inside a
// batched stretch: a send with delay exactly one lookahead, fired in the
// middle of a grown window batch, must land exactly on the next window
// edge and be delivered there — the batch must stop at that edge rather
// than run past it.
func TestStriperBatchEdgeBoundary(t *testing.T) {
	const horizon = 10 * Millisecond
	for _, workers := range []int{1, 3} {
		s := NewStriper(3, horizon)
		s.SetWorkers(workers)
		var gotAt Time = -1
		// Quiet until 995 ms: the adaptive batch grows to its cap long
		// before the sender fires mid-window at t=995ms.
		s.Shard(0).Eng.At(995*Millisecond, func() {
			s.Shard(0).Send(1, horizon, func() { gotAt = s.Shard(1).Eng.Now() })
		})
		s.RunUntil(2 * Second)
		s.Close()
		// Compare against the identical float expression the simulation
		// computes (send time + lookahead), not a re-derived constant.
		if want := 995*Millisecond + horizon; gotAt != want {
			t.Fatalf("workers=%d: boundary message delivered at %v, want %v", workers, gotAt, want)
		}
		if st := s.Stats(); st.Skipped == 0 {
			t.Fatalf("workers=%d: expected idle windows to be skipped, stats %+v", workers, st)
		}
	}
}

// TestStriperMergeMatchesReferenceSort is the k-way merge's property
// test: for arbitrary outbox contents (including heavy timestamp ties
// and per-shard interleavings), the merged delivery order must equal the
// historical comparator's (time, source shard, send order) stable sort.
func TestStriperMergeMatchesReferenceSort(t *testing.T) {
	type ref struct {
		at       Time
		src, seq int
		id       int
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		shards := 1 + rng.Intn(6)
		s := NewStriper(shards, Millisecond)
		var want []ref
		id := 0
		for src := 0; src < shards; src++ {
			n := rng.Intn(12)
			sh := s.shards[src]
			for k := 0; k < n; k++ {
				// Small timestamp domain forces cross- and intra-shard ties.
				at := Time(rng.Intn(5)) * Millisecond
				id++
				capture := id
				sh.outbox = append(sh.outbox, outMsg{at: at, seq: int32(k), to: 0, fn: func() { _ = capture }})
				want = append(want, ref{at: at, src: src, seq: k, id: capture})
			}
		}
		sort.SliceStable(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			if want[i].src != want[j].src {
				return want[i].src < want[j].src
			}
			return want[i].seq < want[j].seq
		})
		for _, sh := range s.shards {
			sh.sortOutbox()
		}
		got := s.mergeOutboxes()
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d deliveries, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].at != want[i].at {
				t.Fatalf("trial %d: delivery %d at %v, want %v (src=%d seq=%d)",
					trial, i, got[i].at, want[i].at, want[i].src, want[i].seq)
			}
		}
	}
}

// TestStriperBarrierAllocFree pins the allocation-free barrier: once the
// scratch buffers and engine storage have warmed up, a traffic-carrying
// window barrier must not allocate at all (the per-window `make` churn
// the reusable scratch replaces is the regression being guarded). Every
// event is pre-scheduled so the measured op is pure striper machinery:
// run window, sort outboxes, k-way merge, bulk-insert.
func TestStriperBarrierAllocFree(t *testing.T) {
	const horizon = Millisecond
	const totalWindows = 320
	s := NewStriper(4, horizon)
	fn := func() {}
	for w := 0; w < totalWindows; w++ {
		at := Time(w) * horizon
		for i := 0; i < 4; i++ {
			i := i
			sh := s.Shard(i)
			sh.Eng.At(at, func() {
				for k := 0; k < 8; k++ {
					sh.Send((i+1+k)%4, horizon+Time(k%3)*horizon, fn)
				}
			})
		}
	}
	for w := 0; w < 64; w++ { // warm scratch, outboxes, heaps, slots
		s.RunUntil(s.Now() + horizon)
	}
	allocs := testing.AllocsPerRun(200, func() {
		s.RunUntil(s.Now() + horizon)
	})
	if allocs != 0 {
		t.Fatalf("loaded window barrier allocates %.1f objects/op, want 0", allocs)
	}
}

// TestStriperWorkersLifecycle covers the pool lifecycle: arming, clamping
// to the shard count, re-arming at a new width, Close idempotence, and
// sequential fallback after Close — all on one striper whose trajectory
// must be unaffected throughout.
func TestStriperWorkersLifecycle(t *testing.T) {
	s := NewStriper(3, Millisecond)
	if s.Workers() != 1 {
		t.Fatalf("fresh striper reports %d workers, want 1", s.Workers())
	}
	s.SetWorkers(8) // clamped to shard count
	if s.Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(8) on 3 shards, want 3", s.Workers())
	}
	fired := 0
	s.Shard(0).Eng.At(0, func() { s.Shard(0).Send(2, Millisecond, func() { fired++ }) })
	s.RunUntil(5 * Millisecond)
	s.SetWorkers(2) // re-arm narrower mid-life
	s.Shard(1).Eng.At(s.Now(), func() { s.Shard(1).Send(0, Millisecond, func() { fired++ }) })
	s.RunUntil(10 * Millisecond)
	s.Close()
	s.Close() // idempotent
	if s.Workers() != 1 {
		t.Fatalf("Workers() = %d after Close, want 1", s.Workers())
	}
	s.Shard(2).Eng.At(s.Now(), func() { s.Shard(2).Send(1, Millisecond, func() { fired++ }) })
	s.RunUntil(15 * Millisecond)
	if fired != 3 {
		t.Fatalf("delivered %d sends across the lifecycle, want 3", fired)
	}
}

func TestStriperLookaheadViolationPanics(t *testing.T) {
	s := NewStriper(2, 10*Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("Send below the lookahead horizon did not panic")
		}
	}()
	s.Shard(0).Send(1, 5*Millisecond, func() {})
}

func TestStriperBadDestinationPanics(t *testing.T) {
	s := NewStriper(2, Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("Send to an out-of-range shard did not panic")
		}
	}()
	s.Shard(0).Send(2, Millisecond, func() {})
}

// TestStriperHorizonBoundary pins the conservative contract at its edge:
// a message sent with delay exactly equal to the lookahead lands at the
// next window boundary and must still be delivered (not lost or late).
func TestStriperHorizonBoundary(t *testing.T) {
	const horizon = 10 * Millisecond
	s := NewStriper(2, horizon)
	var gotAt Time = -1
	s.Shard(0).Eng.At(0, func() {
		s.Shard(0).Send(1, horizon, func() { gotAt = s.Shard(1).Eng.Now() })
	})
	s.RunUntil(3 * horizon)
	if gotAt != horizon {
		t.Fatalf("boundary message delivered at %v, want %v", gotAt, Time(horizon))
	}
}

// TestStriperClocksAdvance checks every shard's clock reaches the
// deadline even when heaps drain early — components hosted on idle shards
// rely on a consistent notion of now.
func TestStriperClocksAdvance(t *testing.T) {
	s := NewStriper(3, 7*Millisecond)
	s.Shard(1).Eng.After(Millisecond, func() {})
	end := s.RunUntil(100 * Millisecond)
	if end != 100*Millisecond {
		t.Fatalf("RunUntil returned %v, want 100ms", end)
	}
	for i := 0; i < s.Shards(); i++ {
		if now := s.Shard(i).Eng.Now(); now != 100*Millisecond {
			t.Fatalf("shard %d clock = %v, want 100ms", i, now)
		}
	}
	if s.Now() != 100*Millisecond {
		t.Fatalf("striper clock = %v, want 100ms", s.Now())
	}
}

// TestStriperFiredCounts sanity-checks the aggregate event counter.
func TestStriperFiredCounts(t *testing.T) {
	s := NewStriper(2, Millisecond)
	s.Shard(0).Eng.At(0, func() {})
	s.Shard(1).Eng.At(0, func() { s.Shard(1).Send(0, Millisecond, func() {}) })
	s.RunUntil(10 * Millisecond)
	if got := s.Fired(); got != 3 {
		t.Fatalf("Fired() = %d, want 3", got)
	}
}

// TestStriperSendBeforeRun verifies setup-time sends (clocks at zero, no
// window in flight) are queued and delivered once the run starts.
func TestStriperSendBeforeRun(t *testing.T) {
	s := NewStriper(2, Millisecond)
	fired := false
	s.Shard(0).Send(1, 2*Millisecond, func() { fired = true })
	s.RunUntil(5 * Millisecond)
	if !fired {
		t.Fatal("setup-time cross-shard send was never delivered")
	}
}

// BenchmarkStriperBarrierLoaded is the steady-state cost of a
// traffic-carrying window barrier: run the window, sort per-shard
// outboxes, k-way merge, bulk-insert 32 deliveries. The re-arming tick
// closures are created once at setup, so steady state is 0 allocs/op.
func BenchmarkStriperBarrierLoaded(b *testing.B) {
	b.ReportAllocs()
	const horizon = Millisecond
	s := NewStriper(4, horizon)
	fn := func() {}
	for i := 0; i < 4; i++ {
		i := i
		sh := s.Shard(i)
		var tick func()
		tick = func() {
			for k := 0; k < 8; k++ {
				sh.Send((i+1+k)%4, horizon+Time(k%3)*horizon, fn)
			}
			sh.Eng.At(sh.Eng.Now()+horizon, tick)
		}
		sh.Eng.At(0, tick)
	}
	for w := 0; w < 64; w++ { // warm scratch, outboxes, heaps, slots
		s.RunUntil(s.Now() + horizon)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunUntil(s.Now() + horizon)
	}
}

// BenchmarkStriperIdleFastForward measures skipping a one-second idle
// stretch (1000 empty lookahead windows) per op: the fast-forward must
// make idle time nearly free instead of costing 1000 barriers.
func BenchmarkStriperIdleFastForward(b *testing.B) {
	b.ReportAllocs()
	s := NewStriper(4, Millisecond)
	sh := s.Shard(0)
	var tick func()
	tick = func() { sh.Eng.At(sh.Eng.Now()+Second, tick) }
	sh.Eng.At(0, tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunUntil(s.Now() + Second)
	}
}
