package des

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// Striper executes a partitioned simulation: each shard owns an
// independent Engine, and shards only interact through cross-shard events
// carrying at least a fixed minimum delay (the lookahead horizon). That
// restriction is what makes parallel execution safe — it is the classic
// conservative synchronization of parallel discrete-event simulation
// (Chandy/Misra/Bryant), specialised to a star/partition topology where
// the minimum inter-shard delay is known up front (here: the network edge
// between the client frontdoor and the server cells).
//
// Execution proceeds in windows of one lookahead each: every shard drains
// its own heap up to the window end, then the cross-shard events generated
// during the window are merged into their destination heaps in a
// deterministic order (timestamp, then source shard, then send order).
// Because shard heaps are disjoint and the merge order is fixed, the
// simulated trajectory is byte-identical whether the window bodies run
// sequentially or on the pinned worker pool (SetWorkers) — the property
// the scale-mode regression tests pin at every worker count.
//
// Three mechanisms keep the synchronization cost off the hot path:
//
//   - a persistent pool of shard-pinned workers (SetWorkers) that own
//     fixed shard ranges for the striper's lifetime and park on a
//     lightweight sense-reversing barrier between windows, instead of
//     spawning goroutines per window;
//   - adaptive window batching: after barriers with zero cross-shard
//     traffic the striper hands workers up to SetMaxBatch windows at
//     once, synchronizing between them with the cheap spin barrier only,
//     and an idle fast-forward that skips windows in which no shard has
//     anything to execute;
//   - allocation-free barriers: outboxes are sorted in place per shard
//     (each worker sorts its own, in parallel), k-way merged into a
//     striper-owned scratch buffer, and bulk-inserted into destination
//     engines with Engine.AtBatch, which grows storage once per barrier.
//
// The zero value is not usable; call NewStriper.
type Striper struct {
	lookahead Time
	now       Time
	shards    []*Shard
	par       func(n int, fn func(i int))
	pool      *stripePool

	batchK   int
	maxBatch int

	ends   []Time
	merged []delivery
	heads  []int
	batch  []BatchEvent

	stats StripeStats
}

// StripeStats counts the striper's synchronization work; it exists so
// tests and reports can verify the adaptive machinery actually engaged.
type StripeStats struct {
	// Windows is the number of lookahead windows executed (shards ran).
	Windows uint64
	// Skipped is the number of windows the idle fast-forward jumped over
	// without running any shard.
	Skipped uint64
	// Batches is the number of worker dispatches (barrier round trips
	// through the heavyweight park/unpark path).
	Batches uint64
	// Merges is the number of barriers that carried cross-shard traffic.
	Merges uint64
	// Delivered is the total number of cross-shard events merged.
	Delivered uint64
}

// Shard couples one partition's Engine with its cross-shard outbox. All
// simulation state owned by a shard must only be touched by events running
// on its Engine; the only legal cross-partition interaction is Send.
type Shard struct {
	// Eng is the shard's private event engine. Components living on this
	// shard schedule on it exactly as in a single-engine simulation.
	Eng *Engine

	idx    int
	str    *Striper
	outbox []outMsg
}

// outMsg is one buffered cross-shard delivery in a sender's outbox: the
// delivery time, the send order within the window (the merge tie-break),
// the destination shard, and the event body.
type outMsg struct {
	at  Time
	seq int32
	to  int32
	fn  func()
}

// delivery is one merged, destination-tagged event in barrier order.
type delivery struct {
	at Time
	to int32
	fn func()
}

// NewStriper returns a striper with n independent shards and the given
// lookahead horizon. The lookahead must equal (or lower-bound) the minimum
// delay of every cross-shard interaction; Send enforces it per event.
func NewStriper(n int, lookahead Time) *Striper {
	if n <= 0 {
		panic("des: striper needs at least one shard")
	}
	if lookahead <= 0 {
		panic("des: non-positive lookahead horizon")
	}
	s := &Striper{lookahead: lookahead, batchK: 1, maxBatch: 64}
	s.shards = make([]*Shard, n)
	for i := range s.shards {
		s.shards[i] = &Shard{Eng: New(), idx: i, str: s}
	}
	s.heads = make([]int, n)
	return s
}

// Shards returns the shard count.
func (s *Striper) Shards() int { return len(s.shards) }

// Shard returns the i-th shard.
func (s *Striper) Shard(i int) *Shard { return s.shards[i] }

// Lookahead returns the synchronization horizon.
func (s *Striper) Lookahead() Time { return s.lookahead }

// Now returns the striper's clock: the end of the last completed window.
// Individual shard engines never run ahead of it by more than one window.
func (s *Striper) Now() Time { return s.now }

// Stats returns the synchronization counters accumulated so far.
func (s *Striper) Stats() StripeStats { return s.stats }

// Fired returns the total number of events executed across all shards.
func (s *Striper) Fired() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.Eng.Fired()
	}
	return n
}

// SetParallel installs a per-window fan-out driver (for example
// internal/experiment.ParallelFor) used when no persistent worker pool is
// armed. It predates SetWorkers and is kept for compatibility; the pool,
// when set, takes precedence. Every execution mode produces byte-identical
// trajectories; the driver only changes wall-clock time.
func (s *Striper) SetParallel(par func(n int, fn func(i int))) { s.par = par }

// SetWorkers arms (or, for n <= 1, releases) the persistent shard-pinned
// worker pool: n long-lived goroutines, each owning a fixed contiguous
// range of shards, parked on a channel between batches and on a
// lightweight spin barrier between the windows of a batch. Shard pinning
// keeps each shard's heap hot in one worker's cache across thousands of
// windows. n is clamped to the shard count. Call Close (or SetWorkers(1))
// to release the goroutines; the striper then falls back to the
// sequential path, which produces a byte-identical trajectory.
func (s *Striper) SetWorkers(n int) {
	if s.pool != nil {
		s.pool.close()
		s.pool = nil
	}
	if n > len(s.shards) {
		n = len(s.shards)
	}
	if n <= 1 {
		return
	}
	p := &stripePool{str: s}
	p.workers = make([]*stripeWorker, n)
	for w := 0; w < n; w++ {
		wk := &stripeWorker{
			pool: p,
			lo:   w * len(s.shards) / n,
			hi:   (w + 1) * len(s.shards) / n,
			cmds: make(chan struct{}, 1),
		}
		p.workers[w] = wk
		go wk.loop()
	}
	s.pool = p
}

// Workers returns the size of the armed worker pool, or 1 when execution
// is sequential (no pool).
func (s *Striper) Workers() int {
	if s.pool == nil {
		return 1
	}
	return len(s.pool.workers)
}

// Close releases the persistent worker goroutines armed by SetWorkers.
// The striper remains usable afterwards on the sequential path, and
// SetWorkers may re-arm it. Close is idempotent and a no-op when no pool
// is armed.
func (s *Striper) Close() { s.SetWorkers(1) }

// SetMaxBatch caps the adaptive window batch: after a barrier with zero
// cross-shard traffic the striper doubles the number of windows it hands
// workers per dispatch, up to this cap; any barrier that carries traffic
// resets the batch to one window. k <= 1 disables batching (every window
// is its own dispatch). The default cap is 64. Batching never changes the
// trajectory — every window remains a synchronization point and the merge
// happens at the first window edge that produced traffic — it only
// changes how often workers park on the heavyweight barrier.
func (s *Striper) SetMaxBatch(k int) {
	if k < 1 {
		k = 1
	}
	s.maxBatch = k
	if s.batchK > k {
		s.batchK = k
	}
}

// Index returns the shard's position in the striper.
func (sh *Shard) Index() int { return sh.idx }

// Send schedules fn on shard `to` at the sender's current time plus delay.
// The delay must be at least the striper's lookahead horizon — that is the
// conservative-synchronization contract; a shorter delay panics, because
// the destination shard may already have simulated past the delivery time.
// Deliveries are applied at the next window barrier in a deterministic
// order, so the trajectory does not depend on how shard windows were
// scheduled onto workers. Events local to the shard should use Eng
// directly (no horizon constraint applies within a shard).
func (sh *Shard) Send(to int, delay Time, fn func()) {
	if to < 0 || to >= len(sh.str.shards) {
		panic(fmt.Sprintf("des: Send to shard %d of %d", to, len(sh.str.shards)))
	}
	if delay < sh.str.lookahead {
		panic(fmt.Sprintf("des: cross-shard delay %v below lookahead horizon %v", delay, sh.str.lookahead))
	}
	if fn == nil {
		panic("des: nil cross-shard event")
	}
	sh.outbox = append(sh.outbox, outMsg{
		at:  sh.Eng.Now() + delay,
		seq: int32(len(sh.outbox)),
		to:  int32(to),
		fn:  fn,
	})
}

// sortOutbox orders the shard's buffered sends by (time, send order) —
// the per-shard half of the global (time, source, send order) delivery
// order. Outboxes are usually near-sorted (senders fire in time order),
// but varying per-send delays can interleave them, so a real sort is
// required for the k-way barrier merge's sorted-run precondition.
func (sh *Shard) sortOutbox() {
	slices.SortFunc(sh.outbox, func(a, b outMsg) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		return int(a.seq - b.seq)
	})
}

// RunUntil advances the striped simulation to the deadline, one lookahead
// window at a time: run every shard to the window end, barrier, merge
// cross-shard deliveries, repeat. Consecutive idle windows are batched
// (see SetMaxBatch) or skipped outright when no shard has anything to
// execute. Every shard's clock ends at the deadline even if its heap
// drains early. It returns the final clock.
func (s *Striper) RunUntil(deadline Time) Time {
	for s.now < deadline {
		pending := s.outboxTotal() > 0 // setup-time sends await the first barrier
		if !pending {
			s.fastForward(deadline)
			if s.now >= deadline {
				break
			}
		}
		k := s.planBatch(deadline, pending)
		ran := s.runBatch(s.ends[:k])
		s.now = s.ends[ran-1]
		s.stats.Windows += uint64(ran)
		s.stats.Batches++
		traffic := s.outboxTotal() > 0
		s.deliver()
		if traffic {
			s.stats.Merges++
			s.batchK = 1
		} else if s.batchK < s.maxBatch {
			s.batchK *= 2
			if s.batchK > s.maxBatch {
				s.batchK = s.maxBatch
			}
		}
	}
	// Idle shards still observe a consistent clock: every engine ends at
	// the deadline even when the fast-forward skipped its last windows.
	for _, sh := range s.shards {
		if sh.Eng.Now() < deadline {
			sh.Eng.RunUntil(deadline)
		}
	}
	return s.now
}

// outboxTotal sums the buffered cross-shard sends across shards.
func (s *Striper) outboxTotal() int {
	n := 0
	for _, sh := range s.shards {
		n += len(sh.outbox)
	}
	return n
}

// fastForward advances the striper clock over windows in which no shard
// can execute anything: with every outbox empty, no event can appear
// before the earliest one already scheduled, so every window that ends
// strictly before it is provably empty — running it would only advance
// engine clocks. The skip replays the exact window-end arithmetic of the
// executed path (iterated lookahead additions) so the surviving window
// boundaries are bit-identical to a run without fast-forwarding.
func (s *Striper) fastForward(deadline Time) {
	minNext := deadline + s.lookahead // sentinel beyond every skippable window
	for _, sh := range s.shards {
		if at, ok := sh.Eng.NextEvent(); ok && at < minNext {
			minNext = at
		}
	}
	for s.now+s.lookahead < minNext && s.now+s.lookahead < deadline {
		s.now += s.lookahead
		s.stats.Skipped++
	}
}

// planBatch fills s.ends with the next batch of window ends: up to the
// adaptive batch size, clamped at the deadline. Window ends are produced
// by iterated lookahead addition from the current clock — the same
// arithmetic at every batch size and worker count, so trajectories cannot
// diverge through float rounding. A pending setup-time send forces a
// single-window batch so it merges at the first possible barrier.
func (s *Striper) planBatch(deadline Time, pending bool) int {
	k := s.batchK
	if pending {
		k = 1
	}
	ends := s.ends[:0]
	e := s.now
	for len(ends) < k {
		e += s.lookahead
		if e >= deadline {
			ends = append(ends, deadline)
			break
		}
		ends = append(ends, e)
	}
	s.ends = ends
	return len(ends)
}

// runBatch executes the planned windows and returns how many ran: the
// batch stops at the first window edge that produced cross-shard traffic
// (that window still completes; the merge happens at its edge, exactly as
// in unbatched execution). Dispatches to the pinned worker pool when one
// is armed, else the legacy per-window driver, else the sequential loop.
// All three orderings produce byte-identical trajectories.
func (s *Striper) runBatch(ends []Time) int {
	if s.pool != nil {
		return s.pool.run(ends)
	}
	for w, end := range ends {
		if s.par != nil {
			run := func(i int) { s.shards[i].Eng.RunUntil(end) }
			s.par(len(s.shards), run)
		} else {
			for _, sh := range s.shards {
				sh.Eng.RunUntil(end)
			}
		}
		if s.outboxTotal() > 0 {
			for _, sh := range s.shards {
				sh.sortOutbox()
			}
			return w + 1
		}
	}
	return len(ends)
}

// deliver merges every shard's outbox into the destination engines in a
// deterministic order: by timestamp, then source shard, then send order.
// The destination engine breaks remaining ties by insertion order, so the
// merged schedule is identical on every run and at any worker count.
func (s *Striper) deliver() {
	merged := s.mergeOutboxes()
	if len(merged) == 0 {
		return
	}
	s.stats.Delivered += uint64(len(merged))
	// Bulk-insert per destination. Grouping by destination preserves each
	// engine's insertion subsequence (deliveries to different engines are
	// independent), so the tie-break order matches interleaved insertion.
	for d := range s.shards {
		b := s.batch[:0]
		for i := range merged {
			if int(merged[i].to) == d {
				b = append(b, BatchEvent{At: merged[i].at, Fn: merged[i].fn})
			}
		}
		s.batch = b
		if len(b) > 0 {
			s.shards[d].Eng.AtBatch(b)
		}
	}
	clear(s.batch[:cap(s.batch)]) // release closure references in the scratch
	s.batch = s.batch[:0]
	for i := range merged {
		merged[i].fn = nil // release closures promptly
	}
}

// mergeOutboxes drains all outboxes into the striper-owned scratch buffer
// in the global delivery order via a k-way merge of the per-shard sorted
// runs: each head comparison is (time, then source index), and within a
// shard the pre-sorted (time, send order) run preserves the final
// tie-break. This replaces a comparison sort over the concatenated
// batch — overlapping per-shard runs made insertion sort quadratic on
// large barriers — with O(total × shards) scans and zero allocations in
// steady state.
func (s *Striper) mergeOutboxes() []delivery {
	total := s.outboxTotal()
	if total == 0 {
		return nil
	}
	if cap(s.merged) < total {
		s.merged = make([]delivery, 0, total+total/2)
	}
	merged := s.merged[:0]
	heads := s.heads
	for i := range heads {
		heads[i] = 0
	}
	for len(merged) < total {
		best := -1
		var bestAt Time
		for i, sh := range s.shards {
			h := heads[i]
			if h >= len(sh.outbox) {
				continue
			}
			if at := sh.outbox[h].at; best < 0 || at < bestAt {
				best, bestAt = i, at
			}
		}
		m := &s.shards[best].outbox[heads[best]]
		merged = append(merged, delivery{at: m.at, to: m.to, fn: m.fn})
		heads[best]++
	}
	s.merged = merged
	for _, sh := range s.shards {
		for i := range sh.outbox {
			sh.outbox[i].fn = nil
		}
		sh.outbox = sh.outbox[:0]
	}
	return merged
}

// stripePool is the persistent worker pool: long-lived goroutines pinned
// to fixed shard ranges, released per batch through per-worker channels
// and synchronized between the windows of a batch with a sense-reversing
// spin barrier (atomics only — no parking, no allocation).
type stripePool struct {
	str     *Striper
	workers []*stripeWorker
	wg      sync.WaitGroup

	ends   []Time
	sends  atomic.Int64
	stopAt atomic.Int64 // 1 + index of the window the batch stopped at; 0 while running

	arrived atomic.Int32
	gen     atomic.Uint32
}

// stripeWorker owns the contiguous shard range [lo, hi).
type stripeWorker struct {
	pool   *stripePool
	lo, hi int
	cmds   chan struct{}
}

// run dispatches one batch of windows to the pool and blocks until every
// worker has parked again. It returns the number of windows executed.
func (p *stripePool) run(ends []Time) int {
	p.ends = ends
	p.sends.Store(0)
	p.stopAt.Store(0)
	p.wg.Add(len(p.workers))
	for _, w := range p.workers {
		w.cmds <- struct{}{}
	}
	p.wg.Wait()
	return int(p.stopAt.Load())
}

// close releases every worker goroutine. The pool must be idle.
func (p *stripePool) close() {
	for _, w := range p.workers {
		close(w.cmds)
	}
}

// barrier is the between-windows synchronization point: the last worker
// to arrive runs onLast (the batch continue/stop decision) before
// releasing the others. Spinners yield the processor so the barrier stays
// correct on machines with fewer cores than workers.
func (p *stripePool) barrier(onLast func()) {
	gen := p.gen.Load()
	if p.arrived.Add(1) == int32(len(p.workers)) {
		p.arrived.Store(0)
		onLast()
		p.gen.Add(1)
		return
	}
	for p.gen.Load() == gen {
		runtime.Gosched()
	}
}

// loop is the worker body: park on the command channel, execute the
// posted batch over the pinned shard range one window at a time, agree
// with the other workers at each window edge whether the batch continues,
// sort the owned outboxes (in parallel with the other workers), and park
// again. Shard state is only ever touched by the pinned owner while a
// batch is in flight; the main goroutine touches it only between batches,
// ordered by the channel send and the WaitGroup.
func (w *stripeWorker) loop() {
	p := w.pool
	shards := p.str.shards
	for range w.cmds {
		ends := p.ends
		for wi, end := range ends {
			for i := w.lo; i < w.hi; i++ {
				shards[i].Eng.RunUntil(end)
			}
			var mine int64
			for i := w.lo; i < w.hi; i++ {
				mine += int64(len(shards[i].outbox))
			}
			if mine > 0 {
				p.sends.Add(mine)
			}
			last := wi == len(ends)-1
			p.barrier(func() {
				if last || p.sends.Load() > 0 {
					p.stopAt.Store(int64(wi + 1))
				}
			})
			if p.stopAt.Load() != 0 {
				break
			}
		}
		for i := w.lo; i < w.hi; i++ {
			shards[i].sortOutbox()
		}
		p.wg.Done()
	}
}
