package des

import "fmt"

// Striper executes a partitioned simulation: each shard owns an
// independent Engine, and shards only interact through cross-shard events
// carrying at least a fixed minimum delay (the lookahead horizon). That
// restriction is what makes parallel execution safe — it is the classic
// conservative synchronization of parallel discrete-event simulation
// (Chandy/Misra/Bryant), specialised to a star/partition topology where
// the minimum inter-shard delay is known up front (here: the network edge
// between the client frontdoor and the server cells).
//
// Execution proceeds in windows of one lookahead each: every shard drains
// its own heap up to the window end (optionally in parallel — see
// SetParallel), then the cross-shard events generated during the window
// are merged into their destination heaps in a deterministic order
// (timestamp, then source shard, then send order). Because shard heaps
// are disjoint and the merge order is fixed, the simulated trajectory is
// byte-identical whether the window bodies run sequentially or on a
// worker pool — the property the scale-mode regression tests pin.
//
// The zero value is not usable; call NewStriper.
type Striper struct {
	lookahead Time
	now       Time
	shards    []*Shard
	par       func(n int, fn func(i int))
}

// Shard couples one partition's Engine with its cross-shard outbox. All
// simulation state owned by a shard must only be touched by events running
// on its Engine; the only legal cross-partition interaction is Send.
type Shard struct {
	// Eng is the shard's private event engine. Components living on this
	// shard schedule on it exactly as in a single-engine simulation.
	Eng *Engine

	idx    int
	str    *Striper
	outbox []crossEvent
	fns    []func() // closures parallel to outbox, split to keep sort keys compact
}

// crossEvent is one scheduled cross-shard delivery, buffered in the
// sender's outbox until the next window barrier.
type crossEvent struct {
	to  int
	at  Time
	seq int // send order within the source shard's window
}

// crossFn pairs a crossEvent with its closure; stored separately so the
// sortable part stays small.
type crossFn struct {
	crossEvent
	src int
	fn  func()
}

// NewStriper returns a striper with n independent shards and the given
// lookahead horizon. The lookahead must equal (or lower-bound) the minimum
// delay of every cross-shard interaction; Send enforces it per event.
func NewStriper(n int, lookahead Time) *Striper {
	if n <= 0 {
		panic("des: striper needs at least one shard")
	}
	if lookahead <= 0 {
		panic("des: non-positive lookahead horizon")
	}
	s := &Striper{lookahead: lookahead}
	s.shards = make([]*Shard, n)
	for i := range s.shards {
		s.shards[i] = &Shard{Eng: New(), idx: i, str: s}
	}
	return s
}

// Shards returns the shard count.
func (s *Striper) Shards() int { return len(s.shards) }

// Shard returns the i-th shard.
func (s *Striper) Shard(i int) *Shard { return s.shards[i] }

// Lookahead returns the synchronization horizon.
func (s *Striper) Lookahead() Time { return s.lookahead }

// Now returns the striper's clock: the end of the last completed window.
// Individual shard engines never run ahead of it by more than one window.
func (s *Striper) Now() Time { return s.now }

// Fired returns the total number of events executed across all shards.
func (s *Striper) Fired() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.Eng.Fired()
	}
	return n
}

// SetParallel installs the worker-pool driver used to execute the shard
// window bodies concurrently (for example internal/experiment.ParallelFor,
// the harness machinery behind RunMany). A nil driver — the default —
// runs shards sequentially in index order. Both produce byte-identical
// trajectories; the driver only changes wall-clock time.
func (s *Striper) SetParallel(par func(n int, fn func(i int))) { s.par = par }

// Index returns the shard's position in the striper.
func (sh *Shard) Index() int { return sh.idx }

// Send schedules fn on shard `to` at the sender's current time plus delay.
// The delay must be at least the striper's lookahead horizon — that is the
// conservative-synchronization contract; a shorter delay panics, because
// the destination shard may already have simulated past the delivery time.
// Deliveries are applied at the next window barrier in a deterministic
// order, so the trajectory does not depend on how shard windows were
// scheduled onto workers. Events local to the shard should use Eng
// directly (no horizon constraint applies within a shard).
func (sh *Shard) Send(to int, delay Time, fn func()) {
	if to < 0 || to >= len(sh.str.shards) {
		panic(fmt.Sprintf("des: Send to shard %d of %d", to, len(sh.str.shards)))
	}
	if delay < sh.str.lookahead {
		panic(fmt.Sprintf("des: cross-shard delay %v below lookahead horizon %v", delay, sh.str.lookahead))
	}
	if fn == nil {
		panic("des: nil cross-shard event")
	}
	sh.outbox = append(sh.outbox, crossEvent{to: to, at: sh.Eng.Now() + delay, seq: len(sh.outbox)})
	sh.fns = append(sh.fns, fn)
}

// RunUntil advances the striped simulation to the deadline, one lookahead
// window at a time: run every shard to the window end, barrier, merge
// cross-shard deliveries, repeat. Every shard's clock ends at the
// deadline even if its heap drains early. It returns the final clock.
func (s *Striper) RunUntil(deadline Time) Time {
	for s.now < deadline {
		end := s.now + s.lookahead
		if end > deadline {
			end = deadline
		}
		run := func(i int) { s.shards[i].Eng.RunUntil(end) }
		if s.par != nil {
			s.par(len(s.shards), run)
		} else {
			for i := range s.shards {
				run(i)
			}
		}
		s.now = end
		s.deliver()
	}
	return s.now
}

// deliver merges every shard's outbox into the destination engines in a
// deterministic order: by timestamp, then source shard, then send order.
// The destination engine breaks remaining ties by insertion order, so the
// merged schedule is identical on every run and at any worker count.
func (s *Striper) deliver() {
	merged := s.mergedOutboxes()
	if len(merged) == 0 {
		return
	}
	for _, ev := range merged {
		s.shards[ev.to].Eng.At(ev.at, ev.fn)
	}
}

// mergedOutboxes drains all outboxes into one deterministically ordered
// slice (insertion sort into the reusable scratch buffer would be
// overkill; a stable comparison sort keeps it simple and allocation-light).
func (s *Striper) mergedOutboxes() []crossFn {
	n := 0
	for _, sh := range s.shards {
		n += len(sh.outbox)
	}
	if n == 0 {
		return nil
	}
	merged := make([]crossFn, 0, n)
	for src, sh := range s.shards {
		for i, ev := range sh.outbox {
			merged = append(merged, crossFn{crossEvent: ev, src: src, fn: sh.fns[i]})
		}
		sh.outbox = sh.outbox[:0]
		for i := range sh.fns {
			sh.fns[i] = nil // release closures promptly
		}
		sh.fns = sh.fns[:0]
	}
	sortCrossFns(merged)
	return merged
}

// sortCrossFns orders deliveries by (at, src, seq) — a total, run-stable
// order. Insertion sort: outboxes are near-sorted by construction (each
// shard appends in nondecreasing send time) and barrier batches are small.
func sortCrossFns(evs []crossFn) {
	for i := 1; i < len(evs); i++ {
		e := evs[i]
		j := i - 1
		for j >= 0 && crossLess(e, evs[j]) {
			evs[j+1] = evs[j]
			j--
		}
		evs[j+1] = e
	}
}

// crossLess is the delivery order: timestamp, then source shard, then
// per-source send order.
func crossLess(a, b crossFn) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}
