// Package baseline freezes the original container/heap discrete-event
// engine (one boxed *event allocation per scheduled closure, plus a boxed
// handle) exactly as it shipped before the inline 4-ary heap landed in
// internal/des. It exists only as the comparison arm of the engine
// microbenchmarks and of cmd/benchreport's BENCH_2.json perf trajectory —
// nothing in the simulator imports it. Do not "fix" or optimise it: its
// value is being the unoptimised reference.
package baseline

import "container/heap"

// Time mirrors des.Time.
type Time float64

// Handle identifies a scheduled event and allows cancellation.
type Handle struct {
	ev *event
}

// Cancel removes the event from the schedule.
func (h *Handle) Cancel() bool {
	if h == nil || h.ev == nil || h.ev.fn == nil {
		return false
	}
	h.ev.fn = nil
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h *Handle) Pending() bool { return h != nil && h.ev != nil && h.ev.fn != nil }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is the frozen boxed-event simulator.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of heap entries, including cancelled ones —
// the historical (buggy) semantics, frozen along with the rest.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn at absolute virtual time t.
func (e *Engine) At(t Time, fn func()) *Handle {
	if t < e.now {
		panic("baseline: event scheduled in the past")
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Handle{ev: ev}
}

// After schedules fn d seconds of virtual time from now.
func (e *Engine) After(d Time, fn func()) *Handle {
	if d < 0 {
		panic("baseline: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Step executes the next pending event, advancing the clock to it.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.fn == nil { // cancelled
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn()
		return true
	}
	return false
}

// Run drains all events. It returns the final clock value.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// Stop makes the current Run return after the current event.
func (e *Engine) Stop() { e.stopped = true }
