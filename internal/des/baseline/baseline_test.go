package baseline

import (
	"sort"
	"testing"
	"testing/quick"
)

// The frozen engine must stay a correct reference: time-sorted execution,
// tie-break by scheduling order.
func TestBaselineRunsInTimeOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkBaselineScheduleFire is the comparison arm of
// BenchmarkEngineScheduleFire in internal/des: the boxed container/heap
// hot path (expected: 2 allocs/op — one *event, one *Handle).
func BenchmarkBaselineScheduleFire(b *testing.B) {
	b.ReportAllocs()
	e := New()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, fn)
		e.Step()
	}
}

// BenchmarkBaselineScheduleFireDepth1k mirrors
// BenchmarkEngineScheduleFireDepth1k.
func BenchmarkBaselineScheduleFireDepth1k(b *testing.B) {
	b.ReportAllocs()
	e := New()
	fn := func() {}
	for i := 0; i < 1000; i++ {
		e.After(Time(1+i), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1000, fn)
		e.Step()
	}
}

// BenchmarkBaselineCancelHeavy mirrors BenchmarkEngineCancelHeavy.
func BenchmarkBaselineCancelHeavy(b *testing.B) {
	b.ReportAllocs()
	e := New()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := e.After(1, fn)
		e.After(1, fn)
		h.Cancel()
		e.Step()
	}
}
