package experiment

import (
	"fmt"
	"io"
	"math"
	"sort"

	"conscale/internal/chaos"
	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/forensics"
	"conscale/internal/scaling"
	"conscale/internal/trace"
	"conscale/internal/workload"
)

// The fluctuation-episodes experiment: run every trace under the legacy
// three controllers plus the tournament winner with the forensics layer
// armed and a known chaos overlay injected, rank the controllers by how
// many fluctuation episodes they let through (and how long/deep), and
// cross-check the attribution pipeline's verdicts against the injected
// fault schedule — the ground truth the detector never sees directly.

// EpisodesConfig describes the comparison matrix.
type EpisodesConfig struct {
	// Controllers are registry names (default: ec2, dcm, conscale, and
	// target-tracking-sct — the tournament winner).
	Controllers []string
	// Traces are workload trace names (default: all six shapes).
	Traces []string
	// Users is the peak client population (default 7500).
	Users int
	// Duration is the simulated length per cell (default 720 s).
	Duration des.Time
	// Seed derives every cell's random streams (default 1).
	Seed uint64
	// Chaos arms the deterministic fault overlay (default on; the
	// attribution precision/recall table needs the ground truth).
	Chaos bool
	// Parallel fans cells out over the harness worker pool.
	Parallel bool
}

// DefaultEpisodesConfig returns the standard matrix at the paper's
// evaluation size, chaos overlay armed.
func DefaultEpisodesConfig() EpisodesConfig {
	return EpisodesConfig{
		Controllers: []string{"ec2", "dcm", "conscale", "target-tracking-sct"},
		Traces:      workload.Names(),
		Users:       7500,
		Duration:    720 * des.Second,
		Seed:        1,
		Chaos:       true,
		Parallel:    true,
	}
}

func (cfg EpisodesConfig) withDefaults() EpisodesConfig {
	def := DefaultEpisodesConfig()
	if len(cfg.Controllers) == 0 {
		cfg.Controllers = def.Controllers
	}
	if len(cfg.Traces) == 0 {
		cfg.Traces = def.Traces
	}
	if cfg.Users <= 0 {
		cfg.Users = def.Users
	}
	if cfg.Duration <= 0 {
		cfg.Duration = def.Duration
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	return cfg
}

// EpisodesChaos builds the deterministic fault overlay of the episodes
// experiment: an app-tier interference burst at 30% of the run, a DB VM
// crash at 55%, and a DB-edge jitter burst at 75% — spaced more than a
// FaultLag apart so every detected episode has exactly one plausible
// injected cause.
func EpisodesChaos(duration des.Time) *chaos.Schedule {
	d := float64(duration)
	s := &chaos.Schedule{}
	s.Add(chaos.Interference(des.Time(d*0.30), 45*des.Second, cluster.App, chaos.WholeTier, 2.5))
	s.Add(chaos.Crash(des.Time(d*0.55), cluster.DB, 0))
	s.Add(chaos.Jitter(des.Time(d*0.75), 40*des.Second, cluster.DB, 80*des.Millisecond))
	return s
}

// EpisodeCell is one (trace, controller) cell: the run, its attribution
// report, and the scores the tables aggregate.
type EpisodeCell struct {
	// Controller / Trace locate the cell.
	Controller string
	Trace      string
	// Res is the finished run; Report the attribution output.
	Res    *RunResult
	Report *forensics.Report

	// Episodes counts confirmed episodes; TotalDurS / MeanDepthMs /
	// MaxDepthMs / Area summarize their severity.
	Episodes    int
	TotalDurS   float64
	MeanDepthMs float64
	MaxDepthMs  float64
	Area        float64

	// FaultOverlapped counts episodes overlapping an injected fault
	// (ground truth); FaultAttributed those whose top cause is that
	// fault — recall. FaultTop counts episodes whose top cause is any
	// fault; FaultTopCorrect those where the blamed fault really
	// overlaps — precision.
	FaultOverlapped int
	FaultAttributed int
	FaultTop        int
	FaultTopCorrect int
}

// EvaluateEpisodes scores one forensics-armed run against its own fault
// windows. The attribution pipeline works purely from the flight
// recorder; the injected schedule is the ground truth it is graded on.
func EvaluateEpisodes(res *RunResult) EpisodeCell {
	ctrl := res.Controller
	if ctrl == "" {
		ctrl = res.Mode.String()
	}
	cell := EpisodeCell{Controller: ctrl, Trace: res.Trace, Res: res}
	if res.Forensics == nil {
		return cell
	}
	var rows []trace.BlameRow
	if res.Tracer != nil {
		rows = res.Tracer.BlameTable()
	}
	cell.Report = res.Forensics.Report(res.Trace+"/"+ctrl, rows)
	lag := res.Forensics.Config().FaultLag

	depthSum := 0.0
	for _, er := range cell.Report.Episodes {
		ep := er.Episode
		cell.Episodes++
		cell.TotalDurS += float64(ep.Duration())
		depthSum += ep.Depth * 1000
		if d := ep.Depth * 1000; d > cell.MaxDepthMs {
			cell.MaxDepthMs = d
		}
		cell.Area += ep.AreaOverSLO

		// Ground truth: which injected faults could have caused this
		// episode? Same influence rule the attributor uses — the window
		// extended by FaultLag past its end.
		overlapping := overlappingFaults(res.FaultWindows, ep, lag)
		if len(overlapping) > 0 {
			cell.FaultOverlapped++
		}
		top := er.TopCause()
		if top.Kind != forensics.CauseFault {
			continue
		}
		cell.FaultTop++
		for _, w := range overlapping {
			if math.Abs(float64(top.At-w.Start)) < 1e-9 {
				cell.FaultTopCorrect++
				cell.FaultAttributed++
				break
			}
		}
	}
	if cell.Episodes > 0 {
		cell.MeanDepthMs = depthSum / float64(cell.Episodes)
	}
	return cell
}

func overlappingFaults(windows []chaos.Window, ep forensics.Episode, lag des.Time) []chaos.Window {
	var out []chaos.Window
	for _, w := range windows {
		ext := w
		ext.End += lag
		if ext.Overlaps(ep.Onset, ep.Recovery) {
			out = append(out, w)
		}
	}
	return out
}

// RunEpisodes executes the matrix: every (trace, controller) cell with
// forensics, tracing (denser 1/8 head sampling so per-episode blame
// diffs have a populated p99 class), telemetry, and — by default — the
// chaos overlay armed. Cells iterate traces outer, controllers inner, so
// output ordering is deterministic; Parallel preserves it via RunMany's
// indexed slots.
func RunEpisodes(cfg EpisodesConfig) []EpisodeCell {
	cfg = cfg.withDefaults()
	profile := AnalyticDCMProfile(cluster.DefaultConfig())
	var cfgs []RunConfig
	for _, tr := range cfg.Traces {
		for _, ctrl := range cfg.Controllers {
			mode := tournamentModeFor(ctrl)
			fcfg := scaling.DefaultConfig(mode)
			if mode == scaling.DCM {
				fcfg.Profile = profile
			}
			if cfg.Duration <= 300*des.Second {
				// Short smoke cells need sub-minute SCT windows or the
				// signal stays dark for most of the run (as in scale mode).
				fcfg.SCT.CollectionWindow = 60 * des.Second
				fcfg.SCT.MinTotalSamples = 30
				fcfg.SCT.MinDistinctBins = 3
			}
			rc := RunConfig{
				Mode:       mode,
				Controller: ctrl,
				TraceName:  tr,
				MaxUsers:   cfg.Users,
				Duration:   cfg.Duration,
				Seed:       cfg.Seed,
				ThinkTime:  3,
				Framework:  &fcfg,
				Tracing:    &trace.Config{SampleRate: 1.0 / 8},
				Telemetry:  &TelemetryOptions{},
				Forensics:  &forensics.Config{},
				WarmupSkip: 30 * des.Second,
			}
			if cfg.Chaos {
				rc.Chaos = EpisodesChaos(cfg.Duration)
			}
			cfgs = append(cfgs, rc)
		}
	}
	var results []*RunResult
	if cfg.Parallel {
		results = RunMany(cfgs)
	} else {
		results = make([]*RunResult, len(cfgs))
		for i := range cfgs {
			results[i] = Run(cfgs[i])
		}
	}
	cells := make([]EpisodeCell, len(results))
	for i, res := range results {
		cells[i] = EvaluateEpisodes(res)
	}
	return cells
}

// EpisodeRank is one controller's aggregate standing: fewer, shorter,
// shallower episodes rank higher.
type EpisodeRank struct {
	Controller  string
	Episodes    int
	TotalDurS   float64
	MeanDepthMs float64
	TotalArea   float64
}

// RankEpisodes aggregates the cells per controller and orders them best
// (fewest episodes, then least total duration, then least area) first.
func RankEpisodes(cells []EpisodeCell) []EpisodeRank {
	byCtrl := map[string]*EpisodeRank{}
	var order []string
	depthSum := map[string]float64{}
	for _, c := range cells {
		r, ok := byCtrl[c.Controller]
		if !ok {
			r = &EpisodeRank{Controller: c.Controller}
			byCtrl[c.Controller] = r
			order = append(order, c.Controller)
		}
		r.Episodes += c.Episodes
		r.TotalDurS += c.TotalDurS
		r.TotalArea += c.Area
		depthSum[c.Controller] += c.MeanDepthMs * float64(c.Episodes)
	}
	out := make([]EpisodeRank, 0, len(order))
	for _, name := range order {
		r := *byCtrl[name]
		if r.Episodes > 0 {
			r.MeanDepthMs = depthSum[name] / float64(r.Episodes)
		}
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Episodes != out[j].Episodes {
			return out[i].Episodes < out[j].Episodes
		}
		if out[i].TotalDurS != out[j].TotalDurS {
			return out[i].TotalDurS < out[j].TotalDurS
		}
		return out[i].TotalArea < out[j].TotalArea
	})
	return out
}

// AttributionScore is the matrix-wide precision/recall of blaming
// injected faults.
type AttributionScore struct {
	// Overlapped counts episodes overlapping an injected fault;
	// Attributed those correctly blamed on it (recall numerator).
	Overlapped, Attributed int
	// TopFault counts episodes whose top cause is any fault;
	// TopFaultCorrect those where the blamed fault really overlaps
	// (precision numerator).
	TopFault, TopFaultCorrect int
	Precision, Recall         float64
}

// ScoreAttribution totals the per-cell fault-attribution counts.
func ScoreAttribution(cells []EpisodeCell) AttributionScore {
	var s AttributionScore
	for _, c := range cells {
		s.Overlapped += c.FaultOverlapped
		s.Attributed += c.FaultAttributed
		s.TopFault += c.FaultTop
		s.TopFaultCorrect += c.FaultTopCorrect
	}
	if s.TopFault > 0 {
		s.Precision = float64(s.TopFaultCorrect) / float64(s.TopFault)
	}
	if s.Overlapped > 0 {
		s.Recall = float64(s.Attributed) / float64(s.Overlapped)
	}
	return s
}

// RenderEpisodes prints the per-cell table plus the attribution score.
func RenderEpisodes(w io.Writer, cells []EpisodeCell) {
	fmt.Fprintln(w, "Fluctuation episodes (detector: windowed p99 vs EWMA baseline, hysteresis)")
	fmt.Fprintf(w, "  %-16s %-20s %8s %8s %10s %10s %9s %7s %7s\n",
		"trace", "controller", "episodes", "dur", "mean depth", "max depth", "area", "flt ovl", "flt attr")
	for _, c := range cells {
		fmt.Fprintf(w, "  %-16s %-20s %8d %7.0fs %8.0fms %8.0fms %9.1f %7d %8d\n",
			c.Trace, c.Controller, c.Episodes, c.TotalDurS, c.MeanDepthMs, c.MaxDepthMs,
			c.Area, c.FaultOverlapped, c.FaultAttributed)
	}
	s := ScoreAttribution(cells)
	fmt.Fprintf(w, "  fault attribution: recall %d/%d = %.2f, precision %d/%d = %.2f\n",
		s.Attributed, s.Overlapped, s.Recall, s.TopFaultCorrect, s.TopFault, s.Precision)
}

// RenderEpisodeRanking prints the controller ranking, best first.
func RenderEpisodeRanking(w io.Writer, ranks []EpisodeRank) {
	fmt.Fprintln(w, "Controller ranking by fluctuation exposure (fewest/shortest/shallowest episodes)")
	fmt.Fprintf(w, "  %4s %-20s %8s %9s %10s %9s\n", "rank", "controller", "episodes", "total dur", "mean depth", "area")
	for i, r := range ranks {
		fmt.Fprintf(w, "  %4d %-20s %8d %8.0fs %8.0fms %9.1f\n",
			i+1, r.Controller, r.Episodes, r.TotalDurS, r.MeanDepthMs, r.TotalArea)
	}
}
