package experiment

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"conscale/internal/admission"
	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/scaling"
	"conscale/internal/trace"
	"conscale/internal/twin"
	"conscale/internal/workload"
)

// HypothesisConfig tunes the `-run hypothesis` validation harness.
type HypothesisConfig struct {
	// IDs selects a subset of HypothesisIDs() (empty = all).
	IDs []string
	// Seeds is the number of seeds per cell (default 5).
	Seeds int
	// BaseSeed is the first seed (default 1; cells use BaseSeed..BaseSeed+Seeds-1).
	BaseSeed uint64
	// Duration is the steady-regime cell run length (default 300 s).
	Duration des.Time
	// SweepDuration is the trace-sweep cell run length (default 720 s,
	// the paper's evaluation length).
	SweepDuration des.Time
	// Users is the trace-sweep peak population (default 7500).
	Users int
	// Traces lists the sweep traces (default the six standard ones).
	Traces []string
}

func (cfg HypothesisConfig) withDefaults() HypothesisConfig {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 5
	}
	if cfg.BaseSeed == 0 {
		cfg.BaseSeed = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 300 * des.Second
	}
	if cfg.SweepDuration <= 0 {
		cfg.SweepDuration = 720 * des.Second
	}
	if cfg.Users <= 0 {
		cfg.Users = 7500
	}
	if len(cfg.Traces) == 0 {
		cfg.Traces = workload.Names()
	}
	return cfg
}

// Hypothesis verdicts.
const (
	// VerdictSupported: every declared bound held with preconditions met.
	VerdictSupported = "SUPPORTED"
	// VerdictRefuted: preconditions held but at least one bound failed.
	VerdictRefuted = "REFUTED"
	// VerdictInconclusive: a precondition failed — the regime never
	// applied, so the data neither supports nor refutes the claim.
	VerdictInconclusive = "INCONCLUSIVE"
)

// HypoMetric is one checked quantity of a hypothesis: the mean across
// seeds, its 95% confidence interval (Student t), and the declared
// bound with its direction.
type HypoMetric struct {
	// Name labels the metric (includes the cell, e.g.
	// "rt_rel_err[users=2000]").
	Name string
	// Mean, Lo, Hi are the across-seed mean and its 95% CI.
	Mean, Lo, Hi float64
	// Bound is the declared limit; Op its direction ("<=" or ">=")
	// applied to Mean.
	Bound float64
	Op    string
	// Pass reports whether Mean satisfies Op Bound.
	Pass bool
	// N is the number of seeds behind the statistic.
	N int
}

// HypothesisResult is one executed hypothesis: the declaration, the
// verdict, the checked metrics, and the per-cell rows for the CSV
// artifact.
type HypothesisResult struct {
	// ID, Claim, Regime restate the declaration: the directional claim
	// and the preconditions under which it is expected to hold.
	ID     string
	Claim  string
	Regime string
	// Gated marks hypotheses whose failure should fail CI.
	Gated bool
	// Verdict is VerdictSupported / VerdictRefuted / VerdictInconclusive.
	Verdict string
	// Detail explains the verdict in one line.
	Detail string
	// Metrics are the checked quantities.
	Metrics []HypoMetric
	// Columns and Rows carry the per-cell data for
	// results/hypothesis_<id>.csv.
	Columns []string
	Rows    [][]string
}

// hypoSpec is one declared hypothesis and its executor.
type hypoSpec struct {
	id, claim, regime string
	gated             bool
	run               func(cfg HypothesisConfig) HypothesisResult
}

func hypoSpecs() []hypoSpec {
	return []hypoSpec{
		{
			id: "twin-steady",
			claim: "DES ≡ MVA: in steady-state regimes the simulator's mean RT, tier " +
				"utilizations, and Little's law agree with the analytical twin within documented bounds",
			regime: "constant trace below the saturation knee, fixed think time, " +
				"≥10 applicable twin samples per run after 60 s warmup",
			gated: true,
			run:   runTwinSteady,
		},
		{
			id:    "drift-calm",
			claim: "the twin raises zero drift flags in the calibrated regime under both the EC2 and ConScale controllers",
			regime: "constant trace at moderate load (no scaling triggers), " +
				"≥10 applicable twin samples per run",
			gated: true,
			run:   runDriftCalm,
		},
		{
			id: "blame-conservation",
			claim: "latency blame is conservative: summing a blame row's per-tier components " +
				"(queue, pool wait, service, dispatch, shed, ...) recovers the class's mean RT " +
				"within scheduling epsilons — with and without an admission shedder dropping load",
			regime: "big-spike trace under EC2-AutoScaling with 1/16 head sampling, bare and " +
				"with queue-cap:cap=300 on web+app; windows with ≥5 sampled requests per class, " +
				"≥1 shed in every armed run",
			gated: true,
			run:   runBlameConservation,
		},
		{
			id:    "sct-dominance",
			claim: "SCT-driven concurrency adaptation keeps tails down: ConScale p99 ≤ EC2 p99 across the six standard traces",
			regime: "paper evaluation settings (7500 peak users, 720 s, 30 s warmup skip), " +
				"paired seeds per trace",
			gated: false,
			run:   runSCTDominance,
		},
	}
}

// HypothesisIDs returns the declared hypothesis IDs in execution order.
func HypothesisIDs() []string {
	specs := hypoSpecs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.id
	}
	return out
}

// RunHypotheses executes the selected hypotheses and returns their
// results in declaration order. Unknown IDs error before any run
// starts.
func RunHypotheses(cfg HypothesisConfig) ([]HypothesisResult, error) {
	cfg = cfg.withDefaults()
	specs := hypoSpecs()
	want := map[string]bool{}
	for _, id := range cfg.IDs {
		found := false
		for _, s := range specs {
			if s.id == id {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("experiment: unknown hypothesis %q (have %v)", id, HypothesisIDs())
		}
		want[id] = true
	}
	var out []HypothesisResult
	for _, s := range specs {
		if len(want) > 0 && !want[s.id] {
			continue
		}
		r := s.run(cfg)
		r.ID, r.Claim, r.Regime, r.Gated = s.id, s.claim, s.regime, s.gated
		out = append(out, r)
	}
	return out, nil
}

// GatedFailures returns the gated hypotheses that did not come back
// SUPPORTED — the CI exit condition.
func GatedFailures(results []HypothesisResult) []string {
	var out []string
	for _, r := range results {
		if r.Gated && r.Verdict != VerdictSupported {
			out = append(out, fmt.Sprintf("%s: %s (%s)", r.ID, r.Verdict, r.Detail))
		}
	}
	return out
}

// twinWarmup is the span excluded from twin-sample aggregation (the
// closed-loop population needs a few ticks to settle).
const twinWarmup = 60 * des.Second

// minApplicableSamples is the twin-steady/drift-calm precondition: a
// run with fewer applicable post-warmup samples never entered the
// regime.
const minApplicableSamples = 10

// twinRunStats aggregates one twin-armed run's post-warmup samples.
type twinRunStats struct {
	applicable int
	meanRelErr float64
	worstRel   float64
	meanLittle float64
	meanGap    float64
	drifts     int
}

func twinStats(res *RunResult) twinRunStats {
	var st twinRunStats
	for _, s := range res.Twin.Samples() {
		if s.Time < twinWarmup || !s.Applicable {
			continue
		}
		st.applicable++
		st.meanRelErr += s.RTRelErr
		st.meanLittle += s.LittlesResidual
		st.meanGap += s.UtilGap
		if s.RTRelErr > st.worstRel {
			st.worstRel = s.RTRelErr
		}
	}
	if st.applicable > 0 {
		f := float64(st.applicable)
		st.meanRelErr /= f
		st.meanLittle /= f
		st.meanGap /= f
	}
	st.drifts = int(res.Twin.DriftCount())
	return st
}

// steadyCells are the twin-steady operating points: populations below,
// at half of, and near the 1/1/1 knee (~3150 for the browse-only mix at
// 3 s think). The RT bound widens at the 2000-user cell — the app tier
// sits near 65% utilization there, where the exponential-service
// assumption of MVA deviates most from the simulator's configured
// demand CV (the measured table lives in EXPERIMENTS.md).
var steadyCells = []struct {
	users int
	bound float64
}{
	{1000, 0.10},
	{2000, 0.12},
	{2500, 0.10},
}

func runTwinSteady(cfg HypothesisConfig) HypothesisResult {
	var cfgs []RunConfig
	type cellKey struct {
		users int
		seed  uint64
	}
	var keys []cellKey
	for _, cell := range steadyCells {
		for s := 0; s < cfg.Seeds; s++ {
			rc := DefaultRunConfig(scaling.EC2, workload.Constant)
			rc.MaxUsers = cell.users
			rc.Duration = cfg.Duration
			rc.Seed = cfg.BaseSeed + uint64(s)
			rc.Twin = &twin.Config{}
			cfgs = append(cfgs, rc)
			keys = append(keys, cellKey{cell.users, rc.Seed})
		}
	}
	results := RunMany(cfgs)

	r := HypothesisResult{
		Columns: []string{"users", "seed", "applicable", "rt_rel_err", "worst_rt_rel_err",
			"littles_resid", "util_gap", "drift_flags"},
	}
	perCell := map[int][]float64{}
	var littles, gaps []float64
	totalDrift, shortRuns := 0, 0
	for i, res := range results {
		st := twinStats(res)
		k := keys[i]
		r.Rows = append(r.Rows, []string{
			strconv.Itoa(k.users), strconv.FormatUint(k.seed, 10), strconv.Itoa(st.applicable),
			fmtF(st.meanRelErr), fmtF(st.worstRel), fmtF(st.meanLittle), fmtF(st.meanGap),
			strconv.Itoa(st.drifts),
		})
		if st.applicable < minApplicableSamples {
			shortRuns++
			continue
		}
		perCell[k.users] = append(perCell[k.users], st.meanRelErr)
		littles = append(littles, st.meanLittle)
		gaps = append(gaps, st.meanGap)
		totalDrift += st.drifts
	}

	for _, cell := range steadyCells {
		mean, lo, hi := meanCI(perCell[cell.users])
		r.Metrics = append(r.Metrics, HypoMetric{
			Name: fmt.Sprintf("rt_rel_err[users=%d]", cell.users),
			Mean: mean, Lo: lo, Hi: hi,
			Bound: cell.bound, Op: "<=", Pass: mean <= cell.bound,
			N: len(perCell[cell.users]),
		})
	}
	mean, lo, hi := meanCI(littles)
	r.Metrics = append(r.Metrics, HypoMetric{
		Name: "littles_residual", Mean: mean, Lo: lo, Hi: hi,
		Bound: 0.05, Op: "<=", Pass: mean <= 0.05, N: len(littles),
	})
	mean, lo, hi = meanCI(gaps)
	r.Metrics = append(r.Metrics, HypoMetric{
		Name: "util_gap", Mean: mean, Lo: lo, Hi: hi,
		Bound: 0.05, Op: "<=", Pass: mean <= 0.05, N: len(gaps),
	})
	r.Metrics = append(r.Metrics, HypoMetric{
		Name: "drift_flags", Mean: float64(totalDrift),
		Bound: 0, Op: "<=", Pass: totalDrift == 0, N: len(results),
	})

	if shortRuns > 0 {
		r.Verdict = VerdictInconclusive
		r.Detail = fmt.Sprintf("%d/%d runs never reached %d applicable samples", shortRuns, len(results), minApplicableSamples)
		return r
	}
	r.Verdict, r.Detail = verdictFromMetrics(r.Metrics)
	return r
}

func runDriftCalm(cfg HypothesisConfig) HypothesisResult {
	controllers := []string{"ec2", "conscale"}
	const calmUsers = 2000 // ~65% bottleneck utilization: no scaling triggers
	var cfgs []RunConfig
	type cellKey struct {
		controller string
		seed       uint64
	}
	var keys []cellKey
	for _, ctrl := range controllers {
		for s := 0; s < cfg.Seeds; s++ {
			rc := DefaultRunConfig(scaling.EC2, workload.Constant)
			rc.Controller = ctrl
			rc.MaxUsers = calmUsers
			rc.Duration = cfg.Duration
			rc.Seed = cfg.BaseSeed + uint64(s)
			rc.Twin = &twin.Config{}
			cfgs = append(cfgs, rc)
			keys = append(keys, cellKey{ctrl, rc.Seed})
		}
	}
	results := RunMany(cfgs)

	r := HypothesisResult{
		Columns: []string{"controller", "seed", "applicable", "rt_rel_err", "drift_flags"},
	}
	perCtrl := map[string]int{}
	relByCtrl := map[string][]float64{}
	shortRuns := 0
	for i, res := range results {
		st := twinStats(res)
		k := keys[i]
		r.Rows = append(r.Rows, []string{
			k.controller, strconv.FormatUint(k.seed, 10), strconv.Itoa(st.applicable),
			fmtF(st.meanRelErr), strconv.Itoa(st.drifts),
		})
		if st.applicable < minApplicableSamples {
			shortRuns++
			continue
		}
		perCtrl[k.controller] += st.drifts
		relByCtrl[k.controller] = append(relByCtrl[k.controller], st.meanRelErr)
	}
	for _, ctrl := range controllers {
		mean, lo, hi := meanCI(relByCtrl[ctrl])
		r.Metrics = append(r.Metrics, HypoMetric{
			Name: fmt.Sprintf("rt_rel_err[%s]", ctrl),
			Mean: mean, Lo: lo, Hi: hi,
			Bound: 0.12, Op: "<=", Pass: mean <= 0.12, N: len(relByCtrl[ctrl]),
		})
		r.Metrics = append(r.Metrics, HypoMetric{
			Name: fmt.Sprintf("drift_flags[%s]", ctrl),
			Mean: float64(perCtrl[ctrl]), Bound: 0, Op: "<=",
			Pass: perCtrl[ctrl] == 0, N: cfg.Seeds,
		})
	}
	if shortRuns > 0 {
		r.Verdict = VerdictInconclusive
		r.Detail = fmt.Sprintf("%d/%d runs never reached %d applicable samples", shortRuns, len(results), minApplicableSamples)
		return r
	}
	r.Verdict, r.Detail = verdictFromMetrics(r.Metrics)
	return r
}

// blameQualifyRequests is the blame-conservation precondition: a class
// row with fewer sampled requests carries too much scheduling epsilon
// relative to its mean to bound tightly.
const blameQualifyRequests = 5

func runBlameConservation(cfg HypothesisConfig) HypothesisResult {
	// "" runs bare; the armed leg exercises the shed component of the
	// decomposition (TestTracedRunBlameAccountsForResponseTime pins the
	// same bound in-process on a short calm run — this is the declared,
	// multi-seed version under genuine overload and shedding).
	policies := []struct{ label, spec string }{
		{"bare", ""},
		{"queue-cap", "queue-cap:cap=300"},
	}
	var cfgs []RunConfig
	type cellKey struct {
		label string
		seed  uint64
	}
	var keys []cellKey
	for _, p := range policies {
		for s := 0; s < cfg.Seeds; s++ {
			rc := DefaultRunConfig(scaling.EC2, workload.BigSpike)
			rc.MaxUsers = cfg.Users
			rc.Duration = cfg.Duration
			rc.Seed = cfg.BaseSeed + uint64(s)
			rc.Tracing = &trace.Config{SampleRate: 1.0 / 16}
			if p.spec != "" {
				pc, err := admission.Parse(p.spec)
				if err != nil {
					panic(err) // static spec above
				}
				rc.Admission = map[cluster.Tier]admission.Config{
					cluster.Web: pc,
					cluster.App: pc,
				}
			}
			cfgs = append(cfgs, rc)
			keys = append(keys, cellKey{p.label, rc.Seed})
		}
	}
	results := RunMany(cfgs)

	r := HypothesisResult{
		Columns: []string{"policy", "seed", "rows", "qualifying", "min_sum_over_rt", "max_sum_over_rt", "sheds"},
	}
	minsByLabel := map[string][]float64{}
	maxByLabel := map[string][]float64{}
	var armedSheds uint64
	thinRuns := 0
	for i, res := range results {
		k := keys[i]
		rows := res.Tracer.BlameTable()
		qualifying := 0
		minR, maxR := math.Inf(1), math.Inf(-1)
		for _, row := range rows {
			if row.Requests < blameQualifyRequests || row.RT <= 0 {
				continue
			}
			qualifying++
			ratio := row.Sum() / row.RT
			if ratio < minR {
				minR = ratio
			}
			if ratio > maxR {
				maxR = ratio
			}
		}
		r.Rows = append(r.Rows, []string{
			k.label, strconv.FormatUint(k.seed, 10), strconv.Itoa(len(rows)),
			strconv.Itoa(qualifying), fmtF(minR), fmtF(maxR),
			strconv.FormatUint(res.Sheds, 10),
		})
		if qualifying < 10 {
			thinRuns++
			continue
		}
		minsByLabel[k.label] = append(minsByLabel[k.label], minR)
		maxByLabel[k.label] = append(maxByLabel[k.label], maxR)
		if k.label != "bare" {
			armedSheds += res.Sheds
		}
	}

	for _, p := range policies {
		mean, lo, hi := meanCI(minsByLabel[p.label])
		r.Metrics = append(r.Metrics, HypoMetric{
			Name: fmt.Sprintf("min_sum_over_rt[%s]", p.label),
			Mean: mean, Lo: lo, Hi: hi,
			Bound: 0.90, Op: ">=", Pass: mean >= 0.90, N: len(minsByLabel[p.label]),
		})
		mean, lo, hi = meanCI(maxByLabel[p.label])
		r.Metrics = append(r.Metrics, HypoMetric{
			Name: fmt.Sprintf("max_sum_over_rt[%s]", p.label),
			Mean: mean, Lo: lo, Hi: hi,
			Bound: 1.001, Op: "<=", Pass: mean <= 1.001, N: len(maxByLabel[p.label]),
		})
	}

	switch {
	case thinRuns > 0:
		r.Verdict = VerdictInconclusive
		r.Detail = fmt.Sprintf("%d/%d runs produced fewer than 10 qualifying blame rows", thinRuns, len(results))
	case armedSheds == 0:
		r.Verdict = VerdictInconclusive
		r.Detail = "the armed runs never shed — the shed component of the claim was not exercised"
	default:
		r.Verdict, r.Detail = verdictFromMetrics(r.Metrics)
	}
	return r
}

func runSCTDominance(cfg HypothesisConfig) HypothesisResult {
	var cfgs []RunConfig
	type cellKey struct {
		trace string
		mode  scaling.Mode
		seed  uint64
	}
	var keys []cellKey
	for _, tr := range cfg.Traces {
		for _, mode := range []scaling.Mode{scaling.EC2, scaling.ConScale} {
			for s := 0; s < cfg.Seeds; s++ {
				rc := DefaultRunConfig(mode, tr)
				rc.MaxUsers = cfg.Users
				rc.Duration = cfg.SweepDuration
				rc.Seed = cfg.BaseSeed + uint64(s)
				rc.WarmupSkip = 30 * des.Second
				cfgs = append(cfgs, rc)
				keys = append(keys, cellKey{tr, mode, rc.Seed})
			}
		}
	}
	results := RunMany(cfgs)

	p99 := map[cellKey]float64{}
	for i, res := range results {
		p99[keys[i]] = res.P99
	}
	r := HypothesisResult{
		Columns: []string{"trace", "seed", "p99_ec2_ms", "p99_conscale_ms", "diff_ms"},
	}
	wins := 0
	var pooled []float64
	for _, tr := range cfg.Traces {
		var diffs []float64
		for s := 0; s < cfg.Seeds; s++ {
			seed := cfg.BaseSeed + uint64(s)
			e := p99[cellKey{tr, scaling.EC2, seed}]
			c := p99[cellKey{tr, scaling.ConScale, seed}]
			d := e - c
			diffs = append(diffs, d)
			pooled = append(pooled, d)
			r.Rows = append(r.Rows, []string{
				tr, strconv.FormatUint(seed, 10),
				fmtF(e * 1000), fmtF(c * 1000), fmtF(d * 1000),
			})
		}
		mean, lo, hi := meanCI(diffs)
		pass := mean >= 0
		if pass {
			wins++
		}
		r.Metrics = append(r.Metrics, HypoMetric{
			Name: fmt.Sprintf("p99_ec2-p99_sct[%s] (s)", tr),
			Mean: mean, Lo: lo, Hi: hi,
			Bound: 0, Op: ">=", Pass: pass, N: len(diffs),
		})
	}
	pm, plo, phi := meanCI(pooled)
	r.Metrics = append(r.Metrics, HypoMetric{
		Name: "p99_ec2-p99_sct[pooled] (s)",
		Mean: pm, Lo: plo, Hi: phi,
		Bound: 0, Op: ">=", Pass: pm >= 0, N: len(pooled),
	})
	switch {
	case wins == len(cfg.Traces):
		r.Verdict = VerdictSupported
		r.Detail = fmt.Sprintf("ConScale p99 ≤ EC2 p99 on %d/%d traces (pooled Δ %.0f ms)", wins, len(cfg.Traces), pm*1000)
	case float64(wins) >= 0.8*float64(len(cfg.Traces)) && pm > 0:
		r.Verdict = VerdictSupported
		r.Detail = fmt.Sprintf("ConScale wins %d/%d traces, pooled Δ %.0f ms > 0 (majority rule)", wins, len(cfg.Traces), pm*1000)
	default:
		r.Verdict = VerdictRefuted
		r.Detail = fmt.Sprintf("ConScale wins only %d/%d traces (pooled Δ %.0f ms)", wins, len(cfg.Traces), pm*1000)
	}
	return r
}

// verdictFromMetrics folds metric passes into a verdict + detail line.
func verdictFromMetrics(ms []HypoMetric) (string, string) {
	var failed []string
	for _, m := range ms {
		if !m.Pass {
			failed = append(failed, fmt.Sprintf("%s = %.4f (want %s %.4f)", m.Name, m.Mean, m.Op, m.Bound))
		}
	}
	if len(failed) == 0 {
		return VerdictSupported, "all bounds held"
	}
	sort.Strings(failed)
	return VerdictRefuted, fmt.Sprintf("%d bound(s) failed: %s", len(failed), failed[0])
}

// tCrit95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom (clamped to the z limit for large df).
func tCrit95(df int) float64 {
	table := []float64{12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086}
	if df <= 0 {
		return math.NaN()
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.96
}

// meanCI returns the sample mean and its two-sided 95% confidence
// interval (Student t on the sample standard deviation). With a single
// sample the interval collapses to the point; with none, NaNs.
func meanCI(vals []float64) (mean, lo, hi float64) {
	n := len(vals)
	if n == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	for _, v := range vals {
		mean += v
	}
	mean /= float64(n)
	if n == 1 {
		return mean, mean, mean
	}
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	half := tCrit95(n-1) * sd / math.Sqrt(float64(n))
	return mean, mean - half, mean + half
}

func fmtF(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return strconv.FormatFloat(v, 'f', 4, 64)
}

// RenderHypotheses writes the per-hypothesis FINDINGS-style table: the
// declaration, the verdict, and each checked metric with its CI and
// bound.
func RenderHypotheses(w io.Writer, results []HypothesisResult) error {
	for _, r := range results {
		gate := ""
		if r.Gated {
			gate = "  [CI-gated]"
		}
		if _, err := fmt.Fprintf(w, "== hypothesis %s%s\n   claim:  %s\n   regime: %s\n   verdict: %s — %s\n",
			r.ID, gate, r.Claim, r.Regime, r.Verdict, r.Detail); err != nil {
			return err
		}
		for _, m := range r.Metrics {
			mark := "ok "
			if !m.Pass {
				mark = "FAIL"
			}
			if _, err := fmt.Fprintf(w, "   %s  %-34s %10.4f  CI95 [%8.4f, %8.4f]  want %s %g  (n=%d)\n",
				mark, m.Name, m.Mean, m.Lo, m.Hi, m.Op, m.Bound, m.N); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteHypothesisCSV writes one hypothesis's per-cell rows.
func WriteHypothesisCSV(w io.Writer, r *HypothesisResult) error {
	if err := writeCSVRow(w, r.Columns); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := writeCSVRow(w, row); err != nil {
			return err
		}
	}
	return nil
}

// WriteHypothesisSummaryCSV writes the one-row-per-metric summary
// across all hypotheses.
func WriteHypothesisSummaryCSV(w io.Writer, results []HypothesisResult) error {
	if err := writeCSVRow(w, []string{"hypothesis", "gated", "verdict", "metric", "mean", "ci_lo", "ci_hi", "op", "bound", "pass", "n"}); err != nil {
		return err
	}
	for _, r := range results {
		for _, m := range r.Metrics {
			row := []string{
				r.ID, strconv.FormatBool(r.Gated), r.Verdict, m.Name,
				fmtF(m.Mean), fmtF(m.Lo), fmtF(m.Hi), m.Op, fmtF(m.Bound),
				strconv.FormatBool(m.Pass), strconv.Itoa(m.N),
			}
			if err := writeCSVRow(w, row); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSVRow(w io.Writer, fields []string) error {
	for i, f := range fields {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, f); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}
