package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"conscale/internal/des"
)

func TestMeanCI(t *testing.T) {
	m, lo, hi := meanCI(nil)
	if !math.IsNaN(m) || !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatalf("empty: got %v %v %v", m, lo, hi)
	}
	m, lo, hi = meanCI([]float64{2.5})
	if m != 2.5 || lo != 2.5 || hi != 2.5 {
		t.Fatalf("singleton: got %v %v %v", m, lo, hi)
	}
	// n=4, sd=1 → half-width t(3)·1/2 = 1.591.
	m, lo, hi = meanCI([]float64{1, 2, 3, 4})
	if math.Abs(m-2.5) > 1e-12 {
		t.Fatalf("mean = %v", m)
	}
	sd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	want := 3.182 * sd / 2
	if math.Abs((hi-m)-want) > 1e-9 || math.Abs((m-lo)-want) > 1e-9 {
		t.Fatalf("CI half-width = %v, want %v", hi-m, want)
	}
}

func TestHypothesisIDsAndUnknown(t *testing.T) {
	ids := HypothesisIDs()
	want := []string{"twin-steady", "drift-calm", "blame-conservation", "sct-dominance"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids[%d] = %q, want %q (full list %v)", i, ids[i], id, ids)
		}
	}
	if _, err := RunHypotheses(HypothesisConfig{IDs: []string{"nope"}}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestVerdictFromMetrics(t *testing.T) {
	v, _ := verdictFromMetrics([]HypoMetric{{Name: "a", Pass: true}})
	if v != VerdictSupported {
		t.Fatalf("verdict = %q", v)
	}
	v, detail := verdictFromMetrics([]HypoMetric{{Name: "a", Pass: true}, {Name: "b", Mean: 1, Bound: 0.5, Op: "<=", Pass: false}})
	if v != VerdictRefuted || !strings.Contains(detail, "b = ") {
		t.Fatalf("verdict = %q detail = %q", v, detail)
	}
}

func TestGatedFailures(t *testing.T) {
	results := []HypothesisResult{
		{ID: "a", Gated: true, Verdict: VerdictSupported},
		{ID: "b", Gated: true, Verdict: VerdictRefuted, Detail: "boom"},
		{ID: "c", Gated: false, Verdict: VerdictRefuted},
	}
	fails := GatedFailures(results)
	if len(fails) != 1 || !strings.Contains(fails[0], "b:") {
		t.Fatalf("fails = %v", fails)
	}
}

// TestHypothesisSmoke is the reduced CI-smoke shape: the two gated
// hypotheses at one seed and a shortened steady window must come back
// SUPPORTED, render, and round-trip through the CSV writers.
func TestHypothesisSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run hypothesis sweep")
	}
	results, err := RunHypotheses(HypothesisConfig{
		IDs:      []string{"twin-steady", "drift-calm"},
		Seeds:    1,
		Duration: 180 * des.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Verdict != VerdictSupported {
			t.Errorf("%s: %s — %s", r.ID, r.Verdict, r.Detail)
		}
		if len(r.Rows) == 0 || len(r.Metrics) == 0 {
			t.Errorf("%s: empty rows/metrics", r.ID)
		}
		var csv bytes.Buffer
		if err := WriteHypothesisCSV(&csv, &r); err != nil {
			t.Fatal(err)
		}
		if got := bytes.Count(csv.Bytes(), []byte("\n")); got != len(r.Rows)+1 {
			t.Errorf("%s: csv rows = %d, want %d", r.ID, got, len(r.Rows)+1)
		}
	}
	if fails := GatedFailures(results); len(fails) != 0 {
		t.Errorf("gated failures: %v", fails)
	}
	var buf bytes.Buffer
	if err := RenderHypotheses(&buf, results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"twin-steady", "drift-calm", "[CI-gated]", "rt_rel_err[users=2000]", "drift_flags[conscale]"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var sum bytes.Buffer
	if err := WriteHypothesisSummaryCSV(&sum, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum.String(), "twin-steady,true,SUPPORTED,") {
		t.Errorf("summary csv:\n%s", sum.String())
	}
}
