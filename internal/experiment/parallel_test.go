package experiment

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"conscale/internal/des"
	"conscale/internal/scaling"
	"conscale/internal/workload"
)

// withWorkers runs fn under a fixed harness fan-out, restoring the
// previous setting afterwards.
func withWorkers(n int, fn func()) {
	prev := SetMaxWorkers(n)
	defer SetMaxWorkers(prev)
	fn()
}

func TestSetMaxWorkersClampsAndRestores(t *testing.T) {
	prev := SetMaxWorkers(3)
	defer SetMaxWorkers(prev)
	if MaxWorkers() != 3 {
		t.Fatalf("MaxWorkers = %d, want 3", MaxWorkers())
	}
	if got := SetMaxWorkers(0); got != 3 {
		t.Fatalf("SetMaxWorkers returned %d, want previous 3", got)
	}
	if MaxWorkers() != 1 {
		t.Fatalf("MaxWorkers = %d after clamp, want 1", MaxWorkers())
	}
}

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		withWorkers(workers, func() {
			const n = 100
			var hits [n]atomic.Int32
			ParallelFor(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
				}
			}
		})
	}
}

func TestParallelForBoundsConcurrency(t *testing.T) {
	withWorkers(3, func() {
		var cur, peak atomic.Int32
		var mu sync.Mutex
		ParallelFor(64, func(int) {
			c := cur.Add(1)
			mu.Lock()
			if c > peak.Load() {
				peak.Store(c)
			}
			mu.Unlock()
			cur.Add(-1)
		})
		if p := peak.Load(); p > 3 {
			t.Fatalf("observed %d concurrent iterations, cap is 3", p)
		}
	})
}

// The headline determinism property: the fan-out harness must render the
// Table 1 rows byte-identically to the strictly sequential path at the
// same seed. (Each run owns its engine and PRNG; results merge by index.)
func TestParallelMatchesSequentialTable1(t *testing.T) {
	shortCfg := func(mode scaling.Mode, trace string) RunConfig {
		cfg := DefaultRunConfig(mode, trace)
		cfg.Duration = 90 * des.Second
		cfg.MaxUsers = 2500
		return cfg
	}
	render := func() []byte {
		var buf bytes.Buffer
		RenderTable1(&buf, table1(11, shortCfg))
		return buf.Bytes()
	}
	var seq, par []byte
	withWorkers(1, func() { seq = render() })
	withWorkers(4, func() { par = render() })
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel Table 1 diverged from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
	}
}

// Same property for the chaos robustness table: identical schedules,
// identical rows, byte-identical rendering at any worker count.
func TestParallelMatchesSequentialChaosTable(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		RenderChaosTable(&buf, ChaosScenarioTable(7, "interference", 120*des.Second))
		return buf.Bytes()
	}
	var seq, par []byte
	withWorkers(1, func() { seq = render() })
	withWorkers(4, func() { par = render() })
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel chaos table diverged from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
	}
}

// And for the profiling sweeps (per-level fan-out inside Sweep).
func TestParallelMatchesSequentialSweep(t *testing.T) {
	cfg := DefaultSweepConfig(TargetDB)
	cfg.Levels = []int{5, 10, 20, 40}
	cfg.Measure = 3 * des.Second
	render := func() []byte {
		var buf bytes.Buffer
		if err := WriteSweepCSV(&buf, Sweep(cfg)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	var seq, par []byte
	withWorkers(1, func() { seq = render() })
	withWorkers(4, func() { par = render() })
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel sweep diverged from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
	}
}

// RunMany must preserve input order regardless of completion order.
func TestRunManyPreservesOrder(t *testing.T) {
	traces := []string{workload.BigSpike, workload.SlowlyVarying, workload.DualPhase}
	cfgs := make([]RunConfig, len(traces))
	for i, tr := range traces {
		cfg := shortRun(scaling.EC2, tr, 3)
		cfg.Duration = 60 * des.Second
		cfgs[i] = cfg
	}
	withWorkers(4, func() {
		results := RunMany(cfgs)
		if len(results) != len(traces) {
			t.Fatalf("results = %d, want %d", len(results), len(traces))
		}
		for i, res := range results {
			if res.Trace != traces[i] {
				t.Fatalf("result %d is trace %q, want %q", i, res.Trace, traces[i])
			}
		}
	})
}
