package experiment

import (
	"bytes"
	"os"
	"testing"

	"conscale/internal/admission"
	"conscale/internal/cluster"
	"conscale/internal/forensics"
	"conscale/internal/scaling"
	"conscale/internal/workload"
)

// admissionBaseline is the committed pre-admission-layer artifact: the
// shortRun ConScale Big Spike timeline captured before internal/admission
// existed. Regenerate (only if the simulator's trajectory legitimately
// changes) with:
//
//	GEN_ADMISSION_BASELINE=1 go test ./internal/experiment -run TestAlwaysAdmitByteIdentical
const admissionBaseline = "testdata/admission_baseline_big-spike.csv"

func timelineCSV(t *testing.T, cfg RunConfig) ([]byte, *RunResult) {
	t.Helper()
	res := Run(cfg)
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestAlwaysAdmitByteIdentical pins the admission layer's identity
// contract both ways: a run with no policy installed reproduces the
// committed pre-layer timeline byte for byte, and so does a run with
// an explicit always-admit policy on every tier.
func TestAlwaysAdmitByteIdentical(t *testing.T) {
	bare, _ := timelineCSV(t, shortRun(scaling.ConScale, workload.BigSpike, 1))
	if os.Getenv("GEN_ADMISSION_BASELINE") != "" {
		if err := os.WriteFile(admissionBaseline, bare, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(admissionBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bare, want) {
		t.Fatalf("run with no admission policy diverged from the committed pre-layer baseline %s", admissionBaseline)
	}

	cfg := shortRun(scaling.ConScale, workload.BigSpike, 1)
	cfg.Admission = map[cluster.Tier]admission.Config{}
	for _, tier := range cluster.Tiers() {
		cfg.Admission[tier] = admission.Config{Policy: admission.Always}
	}
	armed, res := timelineCSV(t, cfg)
	if res.Sheds != 0 {
		t.Fatalf("always-admit shed %d requests", res.Sheds)
	}
	if !bytes.Equal(armed, want) {
		t.Fatal("run with always-admit installed diverged from the committed pre-layer baseline")
	}
}

// TestShedObserversWired runs a genuinely shedding configuration with
// telemetry and forensics armed and checks every observation surface
// agrees on the drop count.
func TestShedObserversWired(t *testing.T) {
	cfg := shortRun(scaling.EC2, workload.BigSpike, 1)
	pc, err := admission.Parse("queue-cap:cap=100")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Admission = map[cluster.Tier]admission.Config{
		cluster.Web: pc,
		cluster.App: pc,
	}
	cfg.Telemetry = &TelemetryOptions{}
	cfg.Forensics = &forensics.Config{}
	res := Run(cfg)

	if res.Sheds == 0 {
		t.Fatal("the overloaded run never shed — the scenario no longer exercises admission")
	}
	var byClass uint64
	for _, n := range res.ShedsByClass {
		byClass += n
	}
	if byClass != res.Sheds {
		t.Fatalf("per-class sheds sum to %d, total says %d", byClass, res.Sheds)
	}
	if got := res.Forensics.Rec.ShedCount(); got != res.Sheds {
		t.Fatalf("forensics shed ring saw %d drops, cluster counted %d", got, res.Sheds)
	}
	if got := res.SLO.Sheds(); got != res.Sheds {
		t.Fatalf("SLO monitor attributed %d sheds, cluster counted %d", got, res.Sheds)
	}
}
