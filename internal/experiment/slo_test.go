package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"conscale/internal/des"
	"conscale/internal/scaling"
	"conscale/internal/telemetry"
	"conscale/internal/trace"
	"conscale/internal/workload"
)

// sloSamples emits rps samples per second over [from, to) with the given
// fraction of them bad (slow responses).
func sloSamples(dst []workload.Sample, from, to, rps int, badFrac float64) []workload.Sample {
	for sec := from; sec < to; sec++ {
		for i := 0; i < rps; i++ {
			rt := 0.05
			if float64(i) < badFrac*float64(rps) {
				rt = 0.8
			}
			dst = append(dst, workload.Sample{
				Finish: des.Time(sec) + des.Time(i)/des.Time(rps),
				RT:     rt,
				OK:     true,
			})
		}
	}
	return dst
}

func TestViolationEpisodesSustainedBurst(t *testing.T) {
	cfg := telemetry.DefaultSLOConfig()
	var s []workload.Sample
	s = sloSamples(s, 0, 40, 20, 0)
	s = sloSamples(s, 40, 70, 20, 0.5) // 50% bad >> 4% alerting rate
	s = sloSamples(s, 70, 120, 20, 0)
	eps := ViolationEpisodes(s, cfg)
	if len(eps) != 1 {
		t.Fatalf("want 1 episode, got %v", eps)
	}
	if eps[0].Start < 38 || eps[0].Start > 42 {
		t.Errorf("episode start %v, want ~40", eps[0].Start)
	}
	if eps[0].End < 70 || eps[0].End > 82 {
		t.Errorf("episode end %v, want within one window of 70", eps[0].End)
	}
}

func TestViolationEpisodesMergeAndClean(t *testing.T) {
	cfg := telemetry.DefaultSLOConfig()

	// Two bad blocks whose violating ranges are separated by a short gap
	// merge into one episode.
	var s []workload.Sample
	s = sloSamples(s, 0, 40, 20, 0)
	s = sloSamples(s, 40, 43, 20, 0.5)
	s = sloSamples(s, 43, 56, 20, 0)
	s = sloSamples(s, 56, 59, 20, 0.5)
	s = sloSamples(s, 59, 120, 20, 0)
	if eps := ViolationEpisodes(s, cfg); len(eps) != 1 {
		t.Errorf("gapped blocks did not merge: %v", eps)
	}

	// A clean stream and an empty stream have no episodes.
	if eps := ViolationEpisodes(sloSamples(nil, 0, 60, 20, 0), cfg); eps != nil {
		t.Errorf("clean stream produced episodes: %v", eps)
	}
	if eps := ViolationEpisodes(nil, cfg); eps != nil {
		t.Errorf("empty stream produced episodes: %v", eps)
	}
}

// TestEvaluateSLOLeadTime wires a synthetic run end to end: a monitor fed
// the same stream the ground truth sees, plus a CPU trigger planted in the
// audit trail after the burst begins. The row must score one detected
// episode with a positive lead.
func TestEvaluateSLOLeadTime(t *testing.T) {
	cfg := telemetry.DefaultSLOConfig()
	mon := telemetry.NewSLOMonitor(cfg)

	var samples []workload.Sample
	samples = sloSamples(samples, 0, 60, 50, 0)
	samples = sloSamples(samples, 60, 150, 50, 0.5)
	samples = sloSamples(samples, 150, 240, 50, 0)
	for _, s := range samples {
		mon.Observe(s.Finish, s.RT, s.OK)
	}
	alerts := mon.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("monitor raised %d alerts, want 1", len(alerts))
	}

	cpuAt := des.Time(90)
	res := &RunResult{
		Trace: workload.LargeVariations,
		Mode:  scaling.EC2,
		SLO:   mon,
		Audit: []trace.AuditEvent{
			{Time: 30, Kind: trace.AuditPoolResize, Cause: "unrelated"},
			{Time: cpuAt, Kind: trace.AuditThresholdTrigger, Tier: "app", Cause: "cpu=0.85 > 0.80 for 3 checks"},
			{Time: 95, Kind: trace.AuditThresholdTrigger, Tier: "app", Cause: "sla trigger: p95 above target"},
		},
	}
	// Samples travel on the result for ground truth.
	res.Samples = samples

	row := EvaluateSLO(res)
	if row.Episodes != 1 || row.Alerts != 1 {
		t.Fatalf("episodes=%d alerts=%d, want 1/1", row.Episodes, row.Alerts)
	}
	if row.Detected != 1 || row.TruePositives != 1 {
		t.Fatalf("detected=%d tp=%d, want 1/1", row.Detected, row.TruePositives)
	}
	if row.Precision != 1 || row.Recall != 1 {
		t.Fatalf("precision=%v recall=%v, want 1/1", row.Precision, row.Recall)
	}
	if row.LeadCount != 1 {
		t.Fatalf("lead count %d, want 1", row.LeadCount)
	}
	wantLead := float64(cpuAt - alerts[0].Start)
	if wantLead <= 0 {
		t.Fatalf("synthetic alert at %v did not precede CPU trigger at %v", alerts[0].Start, cpuAt)
	}
	if row.MeanLead != wantLead || row.MinLead != wantLead || row.MaxLead != wantLead {
		t.Fatalf("lead %v/%v/%v, want %v", row.MeanLead, row.MinLead, row.MaxLead, wantLead)
	}
	if row.SLOOnly != 0 {
		t.Fatalf("SLOOnly=%d with a CPU trigger present", row.SLOOnly)
	}
}

func TestEvaluateSLONoTelemetry(t *testing.T) {
	row := EvaluateSLO(&RunResult{Trace: "t", Mode: scaling.EC2})
	if row.Episodes != 0 || row.Alerts != 0 || row.LeadCount != 0 {
		t.Fatalf("bare result scored nonzero: %+v", row)
	}
}

// TestSLORunsShort drives the whole matrix at test size and checks the
// scored rows are internally consistent and the render holds together.
func TestSLORunsShort(t *testing.T) {
	runs := SLORunsSized(1, ShortDuration, 5000)
	traces := workload.Names()
	if len(runs) != len(traces)*3 {
		t.Fatalf("got %d runs, want %d", len(runs), len(traces)*3)
	}
	totalEpisodes, totalAlerts := 0, 0
	for i, r := range runs {
		wantTrace := traces[i/3]
		if r.Trace != wantTrace {
			t.Fatalf("run %d trace %s, want %s", i, r.Trace, wantTrace)
		}
		if r.Res.SLO == nil || r.Res.Registry == nil {
			t.Fatalf("%s/%s: telemetry layer missing", r.Trace, r.Mode)
		}
		if r.Res.Samples == nil {
			t.Fatalf("%s/%s: samples not retained", r.Trace, r.Mode)
		}
		row := r.Row
		if row.Detected > row.Episodes || row.TruePositives > row.Alerts {
			t.Fatalf("%s/%s: inconsistent counts %+v", r.Trace, r.Mode, row)
		}
		if row.Precision < 0 || row.Precision > 1 || row.Recall < 0 || row.Recall > 1 {
			t.Fatalf("%s/%s: precision/recall out of range %+v", r.Trace, r.Mode, row)
		}
		if row.LeadCount > 0 && (math.IsNaN(row.MeanLead) || row.MinLead > row.MaxLead) {
			t.Fatalf("%s/%s: degenerate lead stats %+v", r.Trace, r.Mode, row)
		}
		totalEpisodes += row.Episodes
		totalAlerts += row.Alerts
	}
	// The bursty traces must actually hurt somebody: across the matrix the
	// ground truth and the monitor both have to fire.
	if totalEpisodes == 0 {
		t.Fatal("no ground-truth violation episodes anywhere in the matrix")
	}
	if totalAlerts == 0 {
		t.Fatal("burn-rate monitor never fired anywhere in the matrix")
	}

	var buf bytes.Buffer
	RenderSLO(&buf, runs)
	out := buf.String()
	for _, want := range []string{"burn-rate", "mean lead", "conscale", "ec2-autoscaling"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
