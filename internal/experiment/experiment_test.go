package experiment

import (
	"bytes"
	"strings"
	"testing"

	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/rubbos"
	"conscale/internal/scaling"
	"conscale/internal/workload"
)

// shortRun trims a run config for test speed while keeping the dynamics.
func shortRun(mode scaling.Mode, trace string, seed uint64) RunConfig {
	cfg := DefaultRunConfig(mode, trace)
	cfg.Seed = seed
	cfg.Duration = ShortDuration
	cfg.MaxUsers = 5000
	return cfg
}

func TestRunProducesCompleteResult(t *testing.T) {
	res := Run(shortRun(scaling.EC2, workload.LargeVariations, 1))
	if len(res.Timeline) < 200 {
		t.Fatalf("timeline has %d points", len(res.Timeline))
	}
	if len(res.VMs) < 200 {
		t.Fatalf("VM series has %d points", len(res.VMs))
	}
	if res.Goodput == 0 {
		t.Fatal("no goodput")
	}
	if res.P95 <= 0 || res.P99 < res.P95 || res.P50 > res.P95 {
		t.Fatalf("percentile ordering wrong: %v/%v/%v", res.P50, res.P95, res.P99)
	}
	if res.Warehouse == nil || len(res.Warehouse.Servers()) < 3 {
		t.Fatal("warehouse missing servers")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(shortRun(scaling.EC2, workload.BigSpike, 7))
	b := Run(shortRun(scaling.EC2, workload.BigSpike, 7))
	if a.Goodput != b.Goodput || a.P99 != b.P99 {
		t.Fatalf("same seed diverged: %d/%v vs %d/%v", a.Goodput, a.P99, b.Goodput, b.P99)
	}
	c := Run(shortRun(scaling.EC2, workload.BigSpike, 8))
	if a.Goodput == c.Goodput && a.P99 == c.P99 {
		t.Fatal("different seeds produced identical results")
	}
}

func TestEC2ScalesDuringBursts(t *testing.T) {
	res := Run(shortRun(scaling.EC2, workload.LargeVariations, 1))
	outs := res.ScaleOutTimes(cluster.App)
	if len(outs) == 0 {
		t.Fatal("EC2 never scaled out the app tier")
	}
	maxVMs := 0
	for _, v := range res.VMs {
		if v > maxVMs {
			maxVMs = v
		}
	}
	if maxVMs < 4 {
		t.Fatalf("max VMs = %d; the burst should force real scale-out", maxVMs)
	}
}

func TestConScaleBeatsEC2OnTails(t *testing.T) {
	// The headline claim (Table I): ConScale's tail latency is well below
	// EC2-AutoScaling's under bursty load.
	e := Run(shortRun(scaling.EC2, workload.LargeVariations, 1))
	c := Run(shortRun(scaling.ConScale, workload.LargeVariations, 1))
	if c.P95 >= e.P95 {
		t.Fatalf("ConScale p95 (%v) not below EC2 (%v)", c.P95, e.P95)
	}
	if c.Goodput < e.Goodput*95/100 {
		t.Fatalf("ConScale goodput %d fell below EC2 %d", c.Goodput, e.Goodput)
	}
}

func TestConScaleAdaptsSoftResourcesDuringRun(t *testing.T) {
	res := Run(shortRun(scaling.ConScale, workload.LargeVariations, 1))
	changed := false
	for _, h := range res.SoftHistory {
		if h[0] != 60 || h[1] != 40 {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("ConScale never changed soft resources from 60/40")
	}
}

func TestFig3KneesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	r := Fig3(1)
	// Paper: 1-core peak at 10, 2-core at 20, 2-core enlarged at 15.
	if r.OneCore.Qlower < 8 || r.OneCore.Qlower > 15 {
		t.Fatalf("1-core knee = %d, want ~10", r.OneCore.Qlower)
	}
	if r.TwoCore.Qlower <= r.OneCore.Qlower {
		t.Fatalf("2-core knee (%d) should exceed 1-core (%d)", r.TwoCore.Qlower, r.OneCore.Qlower)
	}
	if r.TwoCoreEnlarged.Qlower >= r.TwoCore.Qlower {
		t.Fatalf("enlarged-dataset knee (%d) should be below original (%d)",
			r.TwoCoreEnlarged.Qlower, r.TwoCore.Qlower)
	}
	if r.TwoCore.MaxTP <= r.OneCore.MaxTP*1.5 {
		t.Fatalf("2-core TPmax (%v) should be near double 1-core (%v)", r.TwoCore.MaxTP, r.OneCore.MaxTP)
	}
}

func TestSweepThreeStages(t *testing.T) {
	cfg := DefaultSweepConfig(TargetDB)
	cfg.Measure = 5 * des.Second
	res := Sweep(cfg)
	if len(res.Points) != len(DefaultLevels()) {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Ascending: first point well below the max.
	if res.Points[0].Throughput > 0.8*res.MaxTP {
		t.Fatalf("no ascending stage: TP(5)=%v max=%v", res.Points[0].Throughput, res.MaxTP)
	}
	// Descending: last point below the max (CPU-bound overhead).
	last := res.Points[len(res.Points)-1]
	if last.Throughput > 0.8*res.MaxTP {
		t.Fatalf("no descending stage: TP(100)=%v max=%v", last.Throughput, res.MaxTP)
	}
	// RT grows monotonically-ish with concurrency.
	if last.MeanRT < 4*res.Points[0].MeanRT {
		t.Fatalf("RT did not grow with concurrency: %v -> %v", res.Points[0].MeanRT, last.MeanRT)
	}
}

func TestSweepMeasuredConcurrencyTracksLevel(t *testing.T) {
	cfg := DefaultSweepConfig(TargetDB)
	cfg.Levels = []int{10, 40}
	cfg.Measure = 5 * des.Second
	res := Sweep(cfg)
	for _, p := range res.Points {
		if p.Concurrency < float64(p.Level)*0.7 || p.Concurrency > float64(p.Level)*1.1 {
			t.Fatalf("level %d measured concurrency %v", p.Level, p.Concurrency)
		}
	}
}

func TestFig5CapturesFineGrainedSeries(t *testing.T) {
	res := Fig5(1)
	if len(res.Samples) < 300 { // 20 s / 50 ms = 400 windows
		t.Fatalf("Fig5 has %d samples, want ~400", len(res.Samples))
	}
	for _, s := range res.Samples {
		if s.Start < res.From || s.Start >= res.To {
			t.Fatalf("sample at %v outside [%v, %v)", s.Start, res.From, res.To)
		}
	}
}

func TestFig6ScatterAndEstimate(t *testing.T) {
	if testing.Short() {
		t.Skip("full 12-minute run")
	}
	res := Fig6(1)
	if !res.OK {
		t.Fatal("Fig6 estimate failed")
	}
	if len(res.TPPoints) < 1000 {
		t.Fatalf("scatter has %d points", len(res.TPPoints))
	}
	if res.Estimate.Qlower < 5 || res.Estimate.Qlower > 25 {
		t.Fatalf("MySQL Qlower = %d, want ~10", res.Estimate.Qlower)
	}
	if res.Estimate.Qupper < res.Estimate.Qlower {
		t.Fatal("range inverted")
	}
}

func TestFig9TracesShape(t *testing.T) {
	traces := Fig9()
	if len(traces) != 6 {
		t.Fatalf("Fig9 has %d traces", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Users) < 700 {
			t.Fatalf("%s has %d points", tr.Name, len(tr.Users))
		}
	}
}

func TestTrainDCMProducesSaneProfile(t *testing.T) {
	p := TrainDCM(3, cluster.DefaultConfig())
	if p.AppThreads < 8 || p.AppThreads > 60 {
		t.Fatalf("trained AppThreads = %d", p.AppThreads)
	}
	if p.DBTotal < 8 || p.DBTotal > 120 {
		t.Fatalf("trained DBTotal = %d", p.DBTotal)
	}
}

func TestFig11ConScaleBeatsStaleDCM(t *testing.T) {
	if testing.Short() {
		t.Skip("two full runs + training")
	}
	res := Fig11(1)
	if res.ConScale.P95 >= res.Baseline.P95 {
		t.Fatalf("ConScale p95 (%v) not below stale DCM (%v)",
			res.ConScale.P95, res.Baseline.P95)
	}
}

func TestDatasetChangeMidRun(t *testing.T) {
	cfg := shortRun(scaling.ConScale, workload.SlowlyVarying, 2)
	cfg.DatasetChangeAt = 100 * des.Second
	cfg.DatasetChangeTo = 2
	res := Run(cfg)
	if res.Goodput == 0 {
		t.Fatal("run with dataset change produced nothing")
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	res := Run(shortRun(scaling.EC2, workload.BigSpike, 4))
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(res.Timeline)+1 {
		t.Fatalf("CSV has %d lines for %d points", len(lines), len(res.Timeline))
	}
	if !strings.HasPrefix(lines[0], "time_s,users,") {
		t.Fatalf("header wrong: %s", lines[0])
	}
	if got := strings.Count(lines[1], ","); got != 9 {
		t.Fatalf("row has %d commas, want 9", got)
	}
}

func TestWriteSweepCSV(t *testing.T) {
	cfg := DefaultSweepConfig(TargetApp)
	cfg.Levels = []int{5, 10}
	cfg.Measure = 2 * des.Second
	res := Sweep(cfg)
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
}

func TestWriteTraceCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, Fig9()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 700 {
		t.Fatalf("trace CSV has %d lines", len(lines))
	}
	if strings.Count(lines[0], ",") != 6 {
		t.Fatalf("header: %s", lines[0])
	}
}

func TestRenderersDoNotPanic(t *testing.T) {
	res := Run(shortRun(scaling.EC2, workload.DualPhase, 5))
	var buf bytes.Buffer
	RenderRunSummary(&buf, res)
	RenderCompare(&buf, CompareResult{Baseline: res, ConScale: res})
	RenderTable1(&buf, []Table1Row{{Trace: "x", EC2P95: 1, EC2P99: 2, ConScaleP95: 0.5, ConScaleP99: 1}})
	RenderAblation(&buf, "t", []AblationRow{{Label: "a", P95: 1, P99: 2}})
	cfg := DefaultSweepConfig(TargetApp)
	cfg.Levels = []int{5}
	cfg.Measure = des.Second
	RenderSweep(&buf, "s", Sweep(cfg))
	if buf.Len() == 0 {
		t.Fatal("renderers produced nothing")
	}
}

func TestRTOverThresholdAndMaxRT(t *testing.T) {
	res := Run(shortRun(scaling.EC2, workload.LargeVariations, 1))
	if res.MaxRT() <= 0 {
		t.Fatal("MaxRT not positive")
	}
	frac := res.RTOverThreshold(0.0)
	if frac <= 0 || frac > 1 {
		t.Fatalf("RTOverThreshold(0) = %v", frac)
	}
	if res.RTOverThreshold(1e9) != 0 {
		t.Fatal("impossible threshold exceeded")
	}
}

func TestSweepReadWriteMixUsesDisk(t *testing.T) {
	cfg := DefaultSweepConfig(TargetDB)
	cfg.Mix = rubbos.ReadWrite
	cfg.Levels = []int{5, 20}
	cfg.Measure = 5 * des.Second
	res := Sweep(cfg)
	// Disk-bound: TP(20) should NOT be 4x TP(5) — the single disk channel
	// flattens the curve early (Fig. 7f).
	if res.Points[1].Throughput > 2*res.Points[0].Throughput {
		t.Fatalf("RW mix not disk-bound: %v -> %v",
			res.Points[0].Throughput, res.Points[1].Throughput)
	}
}

func TestAnalyticDCMProfileMatchesMeasuredKnees(t *testing.T) {
	// Cross-validation: the MVA-derived profile must agree with the
	// discrete-event sweep's measured knees (Fig. 3a: ~10 for a 1-core
	// Tomcat; Fig. 7a: ~10 for a 1-core browse-only MySQL).
	p := AnalyticDCMProfile(cluster.DefaultConfig())
	if p.AppThreads < 7 || p.AppThreads > 14 {
		t.Fatalf("analytic AppThreads = %d, want ~10", p.AppThreads)
	}
	if p.DBTotal < 7 || p.DBTotal > 14 {
		t.Fatalf("analytic DBTotal = %d, want ~10", p.DBTotal)
	}
}

func TestAnalyticDCMProfileTracksMixChange(t *testing.T) {
	browse := cluster.DefaultConfig()
	rw := cluster.DefaultConfig()
	rw.Mix = rubbos.ReadWrite
	pb := AnalyticDCMProfile(browse)
	pr := AnalyticDCMProfile(rw)
	if pr.DBTotal >= pb.DBTotal {
		t.Fatalf("I/O-intensive DB budget (%d) should be below browse-only (%d)",
			pr.DBTotal, pb.DBTotal)
	}
}

func TestReportMarkdownRenders(t *testing.T) {
	// Rendering only: use canned results so the test stays fast.
	rep := &Report{
		Seed: 1,
		Table1: []Table1Row{
			{Trace: "big-spike", EC2P95: 1.4, EC2P99: 2.0, ConScaleP95: 0.06, ConScaleP99: 0.3},
			{Trace: "dual-phase", EC2P95: 2.2, EC2P99: 4.0, ConScaleP95: 1.1, ConScaleP99: 2.5},
		},
		Fig3: Fig3Result{
			OneCore:         SweepResult{Qlower: 10},
			TwoCore:         SweepResult{Qlower: 20},
			TwoCoreEnlarged: SweepResult{Qlower: 15},
		},
		Fig11: CompareResult{
			Baseline: &RunResult{P95: 2.7, P99: 2.9, Goodput: 800000},
			ConScale: &RunResult{P95: 0.17, P99: 0.59, Goodput: 950000},
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# ConScale reproduction report",
		"| Tomcat 1 vCPU | 10 | 10 |",
		"**REPRODUCED**",
		"big-spike",
		"ConScale wins",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportVerdictPartial(t *testing.T) {
	rep := &Report{
		Table1: []Table1Row{
			{Trace: "a", EC2P95: 1, EC2P99: 1, ConScaleP95: 2, ConScaleP99: 2}, // loss
		},
		Fig3: Fig3Result{
			OneCore:         SweepResult{Qlower: 10},
			TwoCore:         SweepResult{Qlower: 10}, // no doubling
			TwoCoreEnlarged: SweepResult{Qlower: 10},
		},
		Fig11: CompareResult{
			Baseline: &RunResult{P95: 0.1},
			ConScale: &RunResult{P95: 0.2}, // loss
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "PARTIAL (0/1 traces)") {
		t.Fatalf("missing partial verdict:\n%s", out)
	}
	if !strings.Contains(out, "NOT REPRODUCED") {
		t.Fatalf("missing failure verdict:\n%s", out)
	}
}
