package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment harness fans independent runs out over a worker pool.
// Safety rests on two properties the rest of the repo maintains: every
// Run/Sweep builds its own des.Engine, cluster, and seed-split PRNG (no
// package-level mutable state anywhere in the simulator), and every
// result is written to a caller-indexed slot, then merged in input order.
// Output is therefore byte-identical to a sequential execution at any
// worker count — a property pinned by TestParallelMatchesSequential*.

// maxWorkers is the fan-out ceiling for every harness entry point.
// Atomic so tests and the CLI can adjust it while benchmarks poll it.
var maxWorkers atomic.Int64

func init() { maxWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// MaxWorkers returns the current fan-out ceiling.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// SetMaxWorkers sets the harness fan-out (1 = strictly sequential,
// the default is GOMAXPROCS) and returns the previous value. Values
// below 1 are clamped to 1.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxWorkers.Swap(int64(n)))
}

// ParallelFor runs fn(0..n-1), fanning out over at most MaxWorkers
// goroutines. Iterations must be independent; completion order is
// unspecified, so fn must write results only to its own index.
// Nested calls are safe — each level spawns its own bounded pool and
// GOMAXPROCS bounds actual CPU use. Besides backing RunMany, it is the
// worker-pool driver the scale mode injects into des.Striper.
func ParallelFor(n int, fn func(i int)) {
	w := MaxWorkers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RunMany executes each config on its own engine, in parallel up to
// MaxWorkers, and returns results in input order.
func RunMany(cfgs []RunConfig) []*RunResult {
	out := make([]*RunResult, len(cfgs))
	ParallelFor(len(cfgs), func(i int) { out[i] = Run(cfgs[i]) })
	return out
}
