package experiment

import (
	"bytes"
	"strings"
	"testing"

	"conscale/internal/scaling"
	"conscale/internal/telemetry"
	"conscale/internal/workload"
)

// telemeteredShortRun is shortRun with the full telemetry layer armed:
// registry across the stack, 5 s scraper, SLO burn-rate monitor.
func telemeteredShortRun(mode scaling.Mode, traceName string, seed uint64) RunConfig {
	cfg := shortRun(mode, traceName, seed)
	cfg.Telemetry = &TelemetryOptions{}
	return cfg
}

// TestTelemeteredRunIsByteIdenticalToBare is the determinism oracle from the
// package contract: telemetry only reads simulation state, so arming the
// whole layer — registry, collectors, scraper ticks, SLO monitor — must
// leave the client-observed timeline byte-identical.
func TestTelemeteredRunIsByteIdenticalToBare(t *testing.T) {
	bare := Run(shortRun(scaling.ConScale, workload.LargeVariations, 1))
	instr := Run(telemeteredShortRun(scaling.ConScale, workload.LargeVariations, 1))

	if bare.Goodput != instr.Goodput || bare.P99 != instr.P99 || bare.ErrorRate != instr.ErrorRate {
		t.Fatalf("instrumented run diverged: goodput %d vs %d, p99 %v vs %v",
			bare.Goodput, instr.Goodput, bare.P99, instr.P99)
	}
	var a, b bytes.Buffer
	if err := WriteTimelineCSV(&a, bare); err != nil {
		t.Fatal(err)
	}
	if err := WriteTimelineCSV(&b, instr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("telemetry-enabled timeline CSV differs from bare run")
	}
	if bare.Registry != nil || bare.Scraper != nil || bare.SLO != nil {
		t.Fatal("bare run grew a telemetry layer")
	}
}

// TestTelemeteredRunProducesTimeline checks the scrape timeline is real: it
// accumulated snapshots over the run, parses as exposition text, and covers
// the stack's metric families.
func TestTelemeteredRunProducesTimeline(t *testing.T) {
	res := Run(telemeteredShortRun(scaling.ConScale, workload.LargeVariations, 1))
	if res.Registry == nil || res.Scraper == nil || res.SLO == nil {
		t.Fatal("telemetry layer missing from result")
	}
	// ShortDuration at the default 5 s cadence.
	if res.Scraper.Scrapes() < 10 {
		t.Fatalf("only %d scrapes", res.Scraper.Scrapes())
	}
	var buf bytes.Buffer
	if err := res.Scraper.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := telemetry.ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("scrape timeline failed to parse: %v", err)
	}
	got := map[string]bool{}
	for _, f := range fams {
		got[f.Name] = true
	}
	for _, want := range []string{
		"conscale_server_rt_seconds",
		"conscale_accept_queue_depth",
		"conscale_threads_active",
		"conscale_cpu_utilization",
		"conscale_connpool_in_use",
		"conscale_lb_in_flight",
		"conscale_tier_vms",
		"conscale_scaling_events_total",
		"conscale_sct_qlower",
		"conscale_sct_qupper",
		"conscale_client_rt_seconds",
		"conscale_slo_burn_fast",
	} {
		if !got[want] {
			t.Errorf("timeline missing family %s", want)
		}
	}
	if !strings.HasSuffix(buf.String(), "# EOF\n") {
		t.Fatal("timeline missing # EOF")
	}
	// The client histogram must have seen the run's successful requests.
	if res.Samples == nil {
		t.Fatal("telemetry run did not retain samples")
	}
	clientRT := res.Registry.Histogram("conscale_client_rt_seconds", "")
	if clientRT.Count() == 0 {
		t.Fatal("client RT histogram empty")
	}
	if int(clientRT.Count()) != res.Goodput {
		t.Fatalf("client RT count %d != goodput %d", clientRT.Count(), res.Goodput)
	}
}
