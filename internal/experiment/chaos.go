package experiment

import (
	"conscale/internal/chaos"
	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/scaling"
	"conscale/internal/workload"
)

// ChaosScenario is one canonical fault pattern for the robustness
// evaluation: Build produces the schedule for a run of the given length,
// deterministically from the seed, so all three controllers face the
// exact same fault timeline.
type ChaosScenario struct {
	Name string
	Desc string
	// Build derives the scenario's schedule from (seed, duration).
	Build func(seed uint64, duration des.Time) *chaos.Schedule
}

// ChaosScenarios returns the canonical fault scenarios of the robustness
// evaluation, each isolating one disturbance family plus one composite.
func ChaosScenarios() []ChaosScenario {
	return []ChaosScenario{
		{
			Name: "crashes",
			Desc: "Poisson VM crashes (~0.5/min) across the app and DB tiers",
			Build: func(seed uint64, duration des.Time) *chaos.Schedule {
				return chaos.RandomCrashes(seed, 0.5, duration, cluster.App, cluster.DB)
			},
		},
		{
			Name: "interference",
			Desc: "noisy-neighbor CPU interference bursts (x2.5) on app-tier VMs",
			Build: func(seed uint64, duration des.Time) *chaos.Schedule {
				return chaos.InterferenceBursts(seed, 4, duration, 45*des.Second, cluster.App, 2.5)
			},
		},
		{
			Name: "net-jitter",
			Desc: "network jitter windows (+80 ms) on the app->db edge",
			Build: func(seed uint64, duration des.Time) *chaos.Schedule {
				return chaos.JitterBursts(seed, 4, duration, 40*des.Second, cluster.DB, 80*des.Millisecond)
			},
		},
		{
			Name: "stragglers",
			Desc: "every VM boot x6 slower, plus a DB and an app crash mid-run",
			Build: func(seed uint64, duration des.Time) *chaos.Schedule {
				s := chaos.NewSchedule(chaos.Stragglers(0, duration, 6))
				s.Add(chaos.Crash(des.Time(float64(duration)*0.35), cluster.DB, 0))
				s.Add(chaos.Crash(des.Time(float64(duration)*0.6), cluster.App, chaos.PickRandom))
				return s
			},
		},
	}
}

// ChaosRow is one (scenario, controller) cell of the robustness table.
type ChaosRow struct {
	Scenario  string
	Mode      scaling.Mode
	P95, P99  float64 // seconds
	ErrorRate float64
	Goodput   int
	// Windows is the number of faults that actually activated (faults
	// aimed at already-dead targets hit nothing and record no window).
	Windows int
}

// ChaosRun executes the Large Variations trace under one fault scenario
// for one controller. duration 0 takes the canonical 720 s; the DCM
// profile is trained under clean conditions (faults are exactly what an
// offline profile cannot anticipate).
func ChaosRun(mode scaling.Mode, seed uint64, duration des.Time, sched *chaos.Schedule, profile scaling.DCMProfile) *RunResult {
	cfg := DefaultRunConfig(mode, workload.LargeVariations)
	cfg.Seed = seed
	if duration > 0 {
		cfg.Duration = duration
	}
	cfg.Chaos = sched
	if mode == scaling.DCM {
		fcfg := scaling.DefaultConfig(scaling.DCM)
		fcfg.Profile = profile
		cfg.Framework = &fcfg
	}
	return Run(cfg)
}

// ChaosTable runs every canonical scenario for EC2, DCM, and ConScale and
// returns the tail-latency matrix — the robustness evaluation headline.
// Within a scenario all three controllers face the identical schedule.
// The full scenario×controller matrix fans out over the worker pool (the
// DCM profile is trained once, up front); rows come back grouped by
// scenario in canonical order, exactly as the sequential path emitted
// them.
func ChaosTable(seed uint64, duration des.Time) []ChaosRow {
	profile := TrainDCM(seed, cluster.DefaultConfig())
	scenarios := ChaosScenarios()
	perScenario := len(chaosModes)
	rows := make([]ChaosRow, len(scenarios)*perScenario)
	ParallelFor(len(rows), func(i int) {
		sc := scenarios[i/perScenario]
		rows[i] = chaosCell(sc, chaosModes[i%perScenario], seed, duration, profile)
	})
	return rows
}

// chaosModes is the canonical controller order of every chaos table.
var chaosModes = []scaling.Mode{scaling.EC2, scaling.DCM, scaling.ConScale}

// ChaosScenarioTable runs a single named scenario across the three
// controllers (benchmarks, smoke tests). Unknown names return nil.
func ChaosScenarioTable(seed uint64, name string, duration des.Time) []ChaosRow {
	for _, sc := range ChaosScenarios() {
		if sc.Name == name {
			profile := TrainDCM(seed, cluster.DefaultConfig())
			return chaosScenarioRows(sc, seed, duration, profile)
		}
	}
	return nil
}

// ChaosTimelines runs the named scenario across all three controllers and
// returns the full results, for timeline rendering with fault overlays.
// Unknown names return nil.
func ChaosTimelines(seed uint64, name string, duration des.Time) []*RunResult {
	for _, sc := range ChaosScenarios() {
		if sc.Name != name {
			continue
		}
		dur := duration
		if dur <= 0 {
			dur = 720 * des.Second
		}
		profile := TrainDCM(seed, cluster.DefaultConfig())
		out := make([]*RunResult, len(chaosModes))
		ParallelFor(len(chaosModes), func(i int) {
			// Each run gets its own freshly-built schedule: Build is pure
			// in (seed, dur), so all controllers face identical faults
			// without sharing mutable schedule state across goroutines.
			out[i] = ChaosRun(chaosModes[i], seed, duration, sc.Build(seed, dur), profile)
		})
		return out
	}
	return nil
}

func chaosScenarioRows(sc ChaosScenario, seed uint64, duration des.Time, profile scaling.DCMProfile) []ChaosRow {
	rows := make([]ChaosRow, len(chaosModes))
	ParallelFor(len(chaosModes), func(i int) {
		rows[i] = chaosCell(sc, chaosModes[i], seed, duration, profile)
	})
	return rows
}

// chaosCell runs one (scenario, controller) pair and folds the result into
// its table row.
func chaosCell(sc ChaosScenario, mode scaling.Mode, seed uint64, duration des.Time, profile scaling.DCMProfile) ChaosRow {
	dur := duration
	if dur <= 0 {
		dur = 720 * des.Second
	}
	res := ChaosRun(mode, seed, duration, sc.Build(seed, dur), profile)
	return ChaosRow{
		Scenario:  sc.Name,
		Mode:      mode,
		P95:       res.P95,
		P99:       res.P99,
		ErrorRate: res.ErrorRate,
		Goodput:   res.Goodput,
		Windows:   len(res.FaultWindows),
	}
}
