package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"conscale/internal/cluster"
	"conscale/internal/controller"
	"conscale/internal/des"
	"conscale/internal/scaling"
	"conscale/internal/trace"
	"conscale/internal/workload"
)

// TournamentConfig describes the full-factorial controller tournament:
// every registered controller against every workload trace at every
// scale tier, each cell a complete simulated run with telemetry and the
// audit trail armed. The factorial design answers the question the
// paper's three-way comparison only samples — which policy family wins
// where, measured on the same axes operators actually rank on: tail
// latency, SLO burn, and capacity cost.
type TournamentConfig struct {
	// Controllers are registry names (default: every registered one).
	Controllers []string
	// Traces are workload trace names (default: all six shapes).
	Traces []string
	// Tiers are peak client counts, one factorial axis per entry
	// (default 2500 and 7500 — the paper's evaluation population and a
	// third of it).
	Tiers []int
	// Duration is the simulated length per cell (default 300 s).
	Duration des.Time
	// Seed derives every cell's random streams (default 1).
	Seed uint64
	// WarmupSkip excludes the initial span from the tail statistics
	// (default 30 s).
	WarmupSkip des.Time
	// Parallel fans cells out over the harness worker pool. Cell
	// results are written to caller-indexed slots, so parallel and
	// sequential execution produce identical reports.
	Parallel bool
}

// DefaultTournamentConfig returns the standard factorial: every
// registered controller × all six traces × two scale tiers.
func DefaultTournamentConfig() TournamentConfig {
	return TournamentConfig{
		Controllers: controller.Names(),
		Traces: []string{
			workload.LargeVariations, workload.QuicklyVarying, workload.SlowlyVarying,
			workload.BigSpike, workload.DualPhase, workload.SteepTriPhase,
		},
		Tiers:      []int{2500, 7500},
		Duration:   300 * des.Second,
		Seed:       1,
		WarmupSkip: 30 * des.Second,
		Parallel:   true,
	}
}

func (cfg TournamentConfig) withDefaults() TournamentConfig {
	def := DefaultTournamentConfig()
	if len(cfg.Controllers) == 0 {
		cfg.Controllers = def.Controllers
	}
	if len(cfg.Traces) == 0 {
		cfg.Traces = def.Traces
	}
	if len(cfg.Tiers) == 0 {
		cfg.Tiers = def.Tiers
	}
	if cfg.Duration <= 0 {
		cfg.Duration = def.Duration
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.WarmupSkip <= 0 {
		cfg.WarmupSkip = def.WarmupSkip
	}
	return cfg
}

// TournamentCell is one factorial cell: a controller on a trace at a
// tier, scored on the ranking axes.
type TournamentCell struct {
	// Controller / Trace / Users locate the cell in the factorial.
	Controller string `json:"controller"`
	Trace      string `json:"trace"`
	Users      int    `json:"users"`
	// P50Ms/P95Ms/P99Ms/MeanMs are post-warmup client latencies (ms).
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	// Goodput / ErrorRate summarise the client outcome.
	Goodput   int     `json:"goodput"`
	ErrorRate float64 `json:"error_rate"`
	// SLOBurnMin is the total minutes the burn-rate monitor held an
	// alert raised during the run.
	SLOBurnMin float64 `json:"slo_burn_min"`
	// VMHours is the integrated capacity cost (VM-seconds / 3600).
	VMHours float64 `json:"vm_hours"`
	// Actions counts decision-log entries (scale-out/in, pool resizes,
	// repairs); AuditEvents the audit-trail records behind them.
	Actions     int `json:"actions"`
	AuditEvents int `json:"audit_events"`
}

// TournamentRank is one controller's aggregate standing across every
// cell it played: per-metric totals and the rank sum that orders the
// final table (rank 1 = best on a metric; lower score = better).
type TournamentRank struct {
	Controller string `json:"controller"`
	// MeanP99Ms averages the cell p99s; BurnMin and VMHours total the
	// cells' SLO-burn minutes and capacity cost.
	MeanP99Ms float64 `json:"mean_p99_ms"`
	BurnMin   float64 `json:"slo_burn_min"`
	VMHours   float64 `json:"vm_hours"`
	// P99Rank / BurnRank / VMRank are the per-metric standings; Score
	// is their sum, the tournament ordering.
	P99Rank  int `json:"p99_rank"`
	BurnRank int `json:"burn_rank"`
	VMRank   int `json:"vm_rank"`
	Score    int `json:"score"`
}

// TournamentResult is the full tournament outcome.
type TournamentResult struct {
	// Cells holds every factorial cell in controllers × traces × tiers
	// order. Ranking orders controllers by rank-sum score.
	Cells   []TournamentCell
	Ranking []TournamentRank
}

// tournamentModeFor maps legacy controller names to their Mode so the
// base config (and the DCM profile) match the pre-zoo runs.
func tournamentModeFor(name string) scaling.Mode {
	switch name {
	case "dcm":
		return scaling.DCM
	case "conscale":
		return scaling.ConScale
	default:
		return scaling.EC2
	}
}

// RunTournament executes the factorial and ranks the controllers. Every
// cell runs with telemetry (for SLO burn accounting) and the audit
// trail armed, flowing each controller's decisions through the same
// observability stack the single-run experiments use.
func RunTournament(cfg TournamentConfig) *TournamentResult {
	cfg = cfg.withDefaults()

	type cellSpec struct {
		ctrl, trace string
		users       int
	}
	var specs []cellSpec
	for _, ctrl := range cfg.Controllers {
		for _, tr := range cfg.Traces {
			for _, users := range cfg.Tiers {
				specs = append(specs, cellSpec{ctrl: ctrl, trace: tr, users: users})
			}
		}
	}

	profile := AnalyticDCMProfile(cluster.DefaultConfig())
	res := &TournamentResult{Cells: make([]TournamentCell, len(specs))}
	runCell := func(i int) {
		spec := specs[i]
		mode := tournamentModeFor(spec.ctrl)
		fcfg := scaling.DefaultConfig(mode)
		// Short-horizon SCT windows (as in the scale mode): a 5-minute
		// cell must estimate from sub-minute windows or the SCT signal
		// stays dark for most of the run.
		fcfg.SCT.CollectionWindow = 60 * des.Second
		fcfg.SCT.MinTotalSamples = 30
		fcfg.SCT.MinDistinctBins = 3
		if mode == scaling.DCM {
			fcfg.Profile = profile
		}
		r := Run(RunConfig{
			Mode:       mode,
			Controller: spec.ctrl,
			TraceName:  spec.trace,
			MaxUsers:   spec.users,
			Duration:   cfg.Duration,
			Seed:       cfg.Seed,
			ThinkTime:  3,
			Framework:  &fcfg,
			Tracing:    &trace.Config{},
			Telemetry:  &TelemetryOptions{},
			WarmupSkip: cfg.WarmupSkip,
		})
		res.Cells[i] = tournamentCell(spec.ctrl, spec.trace, spec.users, r)
	}
	if cfg.Parallel {
		ParallelFor(len(specs), runCell)
	} else {
		for i := range specs {
			runCell(i)
		}
	}

	res.Ranking = rankTournament(cfg.Controllers, res.Cells)
	return res
}

// tournamentCell scores one finished run.
func tournamentCell(ctrl, traceName string, users int, r *RunResult) TournamentCell {
	ms := func(v float64) float64 {
		if math.IsNaN(v) {
			return 0
		}
		return v * 1000
	}
	cell := TournamentCell{
		Controller: ctrl,
		Trace:      traceName,
		Users:      users,
		P50Ms:      ms(r.P50),
		P95Ms:      ms(r.P95),
		P99Ms:      ms(r.P99),
		MeanMs:     ms(r.MeanRT),
		Goodput:    r.Goodput,
		ErrorRate:  r.ErrorRate,
		Actions:    len(r.Events),
	}
	if r.SLO != nil {
		for _, al := range r.SLO.Alerts() {
			cell.SLOBurnMin += float64(al.End-al.Start) / 60
		}
	}
	for _, vms := range r.VMs {
		cell.VMHours += float64(vms) / 3600
	}
	cell.AuditEvents = len(r.Audit)
	return cell
}

// rankTournament aggregates cells per controller and orders them by
// rank sum over (mean p99, total SLO-burn minutes, total VM-hours).
// Equal metric values share a rank, so identical policies tie rather
// than being ordered by name.
func rankTournament(controllers []string, cells []TournamentCell) []TournamentRank {
	ranks := make([]TournamentRank, 0, len(controllers))
	for _, ctrl := range controllers {
		agg := TournamentRank{Controller: ctrl}
		n := 0
		for _, c := range cells {
			if c.Controller != ctrl {
				continue
			}
			agg.MeanP99Ms += c.P99Ms
			agg.BurnMin += c.SLOBurnMin
			agg.VMHours += c.VMHours
			n++
		}
		if n > 0 {
			agg.MeanP99Ms /= float64(n)
		}
		ranks = append(ranks, agg)
	}

	assignRanks(ranks, func(r TournamentRank) float64 { return r.MeanP99Ms },
		func(r *TournamentRank, v int) { r.P99Rank = v })
	assignRanks(ranks, func(r TournamentRank) float64 { return r.BurnMin },
		func(r *TournamentRank, v int) { r.BurnRank = v })
	assignRanks(ranks, func(r TournamentRank) float64 { return r.VMHours },
		func(r *TournamentRank, v int) { r.VMRank = v })
	for i := range ranks {
		ranks[i].Score = ranks[i].P99Rank + ranks[i].BurnRank + ranks[i].VMRank
	}
	sort.SliceStable(ranks, func(a, b int) bool {
		if ranks[a].Score != ranks[b].Score {
			return ranks[a].Score < ranks[b].Score
		}
		return ranks[a].Controller < ranks[b].Controller
	})
	return ranks
}

// assignRanks gives each entry its 1-based standing on one metric,
// sharing ranks on exact ties (competition ranking).
func assignRanks(ranks []TournamentRank, metric func(TournamentRank) float64, set func(*TournamentRank, int)) {
	order := make([]int, len(ranks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return metric(ranks[order[a]]) < metric(ranks[order[b]])
	})
	for pos, idx := range order {
		// Walk back to the first entry of an exact-tie group so ties
		// share the group's standing.
		first := pos
		for first > 0 && metric(ranks[order[first-1]]) == metric(ranks[idx]) {
			first--
		}
		set(&ranks[idx], first+1)
	}
}

// TournamentReport is the `-run tournament` JSON artifact — the
// benchreport schema 6 tournament section as a standalone file.
type TournamentReport struct {
	// Schema identifies the report format.
	Schema string `json:"schema"`
	// Ranking orders the controllers; Cells holds the full factorial.
	Ranking []TournamentRank `json:"ranking"`
	Cells   []TournamentCell `json:"tournament"`
}

// WriteTournamentReport writes the tournament as indented JSON.
func WriteTournamentReport(w io.Writer, res *TournamentResult) error {
	rep := TournamentReport{
		Schema:  "conscale-bench/6",
		Ranking: res.Ranking,
		Cells:   res.Cells,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteTournamentCSV writes every factorial cell as CSV
// (tournament_summary.csv).
func WriteTournamentCSV(w io.Writer, res *TournamentResult) {
	fmt.Fprintln(w, "controller,trace,users,p50_ms,p95_ms,p99_ms,mean_ms,goodput,error_rate,slo_burn_min,vm_hours,actions,audit_events")
	for _, c := range res.Cells {
		fmt.Fprintf(w, "%s,%s,%d,%.1f,%.1f,%.1f,%.1f,%d,%.4f,%.2f,%.3f,%d,%d\n",
			c.Controller, c.Trace, c.Users, c.P50Ms, c.P95Ms, c.P99Ms, c.MeanMs,
			c.Goodput, c.ErrorRate, c.SLOBurnMin, c.VMHours, c.Actions, c.AuditEvents)
	}
}

// RenderTournament prints the ranked standings and per-cell table.
func RenderTournament(w io.Writer, res *TournamentResult) {
	fmt.Fprintf(w, "%-20s %10s %9s %9s %5s %5s %5s %6s\n",
		"controller", "p99_ms", "burn_min", "vm_hours", "rP99", "rBurn", "rVM", "score")
	for _, r := range res.Ranking {
		fmt.Fprintf(w, "%-20s %10.1f %9.2f %9.3f %5d %5d %5d %6d\n",
			r.Controller, r.MeanP99Ms, r.BurnMin, r.VMHours, r.P99Rank, r.BurnRank, r.VMRank, r.Score)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-20s %-17s %8s %9s %9s %8s %9s %8s\n",
		"controller", "trace", "users", "p99_ms", "burn_min", "vm_hrs", "goodput", "actions")
	for _, c := range res.Cells {
		fmt.Fprintf(w, "%-20s %-17s %8d %9.1f %9.2f %8.3f %9d %8d\n",
			c.Controller, c.Trace, c.Users, c.P99Ms, c.SLOBurnMin, c.VMHours, c.Goodput, c.Actions)
	}
}
