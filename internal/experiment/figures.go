package experiment

import (
	"fmt"

	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/lb"
	"conscale/internal/metrics"
	"conscale/internal/rubbos"
	"conscale/internal/scaling"
	"conscale/internal/sct"
	"conscale/internal/workload"
)

// Fig1 reproduces Figure 1: the large response-time fluctuations of a
// 3-tier system under hardware-only EC2-AutoScaling on a bursty trace,
// with the VM-count overlay.
func Fig1(seed uint64) *RunResult {
	cfg := DefaultRunConfig(scaling.EC2, workload.LargeVariations)
	cfg.Seed = seed
	return Run(cfg)
}

// Fig3Result holds the three Tomcat profiling sweeps of Figure 3.
type Fig3Result struct {
	// OneCore: Tomcat with 1 vCPU, original dataset (peak at ~10).
	OneCore SweepResult
	// TwoCore: Tomcat with 2 vCPUs, original dataset (peak at ~20).
	TwoCore SweepResult
	// TwoCoreEnlarged: 2 vCPUs with the dataset doubled (peak at ~15).
	TwoCoreEnlarged SweepResult
}

// Fig3 reproduces Figure 3: throughput and response time of Tomcat at
// controlled concurrency under three pre-profiling conditions.
func Fig3(seed uint64) Fig3Result {
	base := DefaultSweepConfig(TargetApp)
	base.Seed = seed

	one := base
	one.Cores = 1

	two := base
	two.Cores = 2

	twoBig := base
	twoBig.Cores = 2
	twoBig.DatasetScale = 2

	sweeps := SweepMany([]SweepConfig{one, two, twoBig})
	return Fig3Result{
		OneCore:         sweeps[0],
		TwoCore:         sweeps[1],
		TwoCoreEnlarged: sweeps[2],
	}
}

// Fig5Result is the fine-grained MySQL view of Figure 5: the 50 ms
// concurrency, throughput, and response-time series over the 20-second
// window after the system scales from 1/1/1 to 1/2/1.
type Fig5Result struct {
	From, To des.Time
	Samples  []metrics.WindowSample
}

// Fig5 reproduces Figure 5 by running the EC2 scenario of Fig. 1 and
// extracting mysql1's window samples for the 85–105 s period.
func Fig5(seed uint64) Fig5Result {
	cfg := DefaultRunConfig(scaling.EC2, workload.LargeVariations)
	cfg.Seed = seed
	cfg.Duration = 150 * des.Second
	res := Run(cfg)
	const from, to = 85 * des.Second, 105 * des.Second
	var out []metrics.WindowSample
	for _, s := range res.Warehouse.FineSince("mysql1", from) {
		if s.Start < to {
			out = append(out, s)
		}
	}
	return Fig5Result{From: from, To: to, Samples: out}
}

// Fig6Result holds the scatter-correlation analysis of Figure 6.
type Fig6Result struct {
	TPPoints []sct.ScatterPoint // throughput vs concurrency
	RTPoints []sct.ScatterPoint // response time vs concurrency
	Curve    sct.BinnedCurve    // the trend line
	Estimate sct.Estimate       // the rational range / optimal setting
	OK       bool
}

// Fig6 reproduces Figure 6: the correlation between MySQL's 50 ms
// concurrency, throughput, and response time over a 12-minute bursty run,
// and the rational concurrency range the SCT model derives from it.
func Fig6(seed uint64) Fig6Result {
	cfg := DefaultRunConfig(scaling.EC2, workload.LargeVariations)
	cfg.Seed = seed
	res := Run(cfg)
	samples := res.Warehouse.FineSince("mysql1", 0)
	tp, rt := sct.Scatter(samples)
	est, ok := sct.New(sct.Config{}).Estimate(samples)
	return Fig6Result{
		TPPoints: tp,
		RTPoints: rt,
		Curve:    sct.Curve(samples),
		Estimate: est,
		OK:       ok,
	}
}

// Fig7Panel is one of the six scatter-comparison panels of Figure 7.
type Fig7Panel struct {
	Label string
	Sweep SweepResult
}

// Fig7 reproduces Figure 7: how vertical scaling (a/d), dataset size (b/e),
// and workload type (c/f) shift the optimal concurrency setting.
func Fig7(seed uint64) []Fig7Panel {
	db := DefaultSweepConfig(TargetDB)
	db.Seed = seed

	db1 := db
	db1.Cores = 1

	db2 := db
	db2.Cores = 2

	app := DefaultSweepConfig(TargetApp)
	app.Seed = seed
	app.Cores = 2

	appBig := app
	appBig.DatasetScale = 2

	dbCPU := db
	dbCPU.Cores = 1
	dbCPU.Levels = []int{5, 10, 15, 20, 25, 30, 35, 40}

	dbIO := dbCPU
	dbIO.Mix = rubbos.ReadWrite

	labels := []string{
		"a: MySQL 1-core (browse-only)",
		"d: MySQL 2-core (browse-only)",
		"b: Tomcat original dataset",
		"e: Tomcat enlarged dataset",
		"c: MySQL CPU-intensive workload",
		"f: MySQL I/O-intensive workload",
	}
	sweeps := SweepMany([]SweepConfig{db1, db2, app, appBig, dbCPU, dbIO})
	panels := make([]Fig7Panel, len(labels))
	for i := range labels {
		panels[i] = Fig7Panel{Label: labels[i], Sweep: sweeps[i]}
	}
	return panels
}

// TraceSeries is one Fig. 9 panel: a named user curve sampled at 1 s.
type TraceSeries struct {
	Name  string
	Users []int
}

// Fig9 reproduces Figure 9: the six realistic bursty workload traces.
func Fig9() []TraceSeries {
	out := make([]TraceSeries, 0, 6)
	for _, tr := range workload.StandardTraces() {
		out = append(out, TraceSeries{Name: tr.Name, Users: tr.Series(des.Second)})
	}
	return out
}

// CompareResult pairs two runs of the same scenario under different
// frameworks (Fig. 10: EC2 vs ConScale; Fig. 11: DCM vs ConScale).
type CompareResult struct {
	Baseline *RunResult
	ConScale *RunResult
}

// Fig10 reproduces Figure 10: EC2-AutoScaling vs ConScale under the Large
// Variations trace, starting from 1/1/1 with soft resources 1000-60-40.
func Fig10(seed uint64) CompareResult {
	e := DefaultRunConfig(scaling.EC2, workload.LargeVariations)
	e.Seed = seed
	c := DefaultRunConfig(scaling.ConScale, workload.LargeVariations)
	c.Seed = seed
	res := RunMany([]RunConfig{e, c})
	return CompareResult{Baseline: res[0], ConScale: res[1]}
}

// Fig11 reproduces Figure 11: DCM (profile trained on the original
// dataset) vs ConScale after the dataset is reduced — the system-state
// change that makes offline-trained soft-resource settings stale.
func Fig11(seed uint64) CompareResult {
	profile := TrainDCM(seed, cluster.DefaultConfig())

	ccfg := cluster.DefaultConfig()
	ccfg.DatasetScale = 0.5 // reduced dataset at production time

	d := DefaultRunConfig(scaling.DCM, workload.LargeVariations)
	d.Seed = seed
	d.Cluster = &ccfg
	fcfg := scaling.DefaultConfig(scaling.DCM)
	fcfg.Profile = profile
	d.Framework = &fcfg

	c := DefaultRunConfig(scaling.ConScale, workload.LargeVariations)
	c.Seed = seed
	c.Cluster = &ccfg

	res := RunMany([]RunConfig{d, c})
	return CompareResult{Baseline: res[0], ConScale: res[1]}
}

// Table1Row is one row of Table I: tail latencies for one trace.
type Table1Row struct {
	Trace                    string
	EC2P95, EC2P99           float64 // seconds
	ConScaleP95, ConScaleP99 float64
}

// Table1 reproduces Table I: 95th and 99th percentile response times of
// EC2-AutoScaling vs ConScale under all six bursty traces.
func Table1(seed uint64) []Table1Row {
	return table1(seed, DefaultRunConfig)
}

// table1 runs the 6×2 (trace, framework) matrix through the worker pool;
// the config builder is injected so tests can shrink the runs while
// exercising the same merge path.
func table1(seed uint64, mkConfig func(scaling.Mode, string) RunConfig) []Table1Row {
	traces := workload.Names()
	cfgs := make([]RunConfig, 0, len(traces)*2)
	for _, tr := range traces {
		e := mkConfig(scaling.EC2, tr)
		e.Seed = seed
		c := mkConfig(scaling.ConScale, tr)
		c.Seed = seed
		cfgs = append(cfgs, e, c)
	}
	results := RunMany(cfgs)
	rows := make([]Table1Row, 0, len(traces))
	for i, tr := range traces {
		er, cr := results[2*i], results[2*i+1]
		rows = append(rows, Table1Row{
			Trace:       tr,
			EC2P95:      er.P95,
			EC2P99:      er.P99,
			ConScaleP95: cr.P95,
			ConScaleP99: cr.P99,
		})
	}
	return rows
}

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Label  string
	P95    float64 // seconds
	P99    float64
	Detail string
}

// AblationWindowSize (A1) varies the fine-grained measurement interval and
// reports the SCT estimate MySQL gets from the same scenario: too-coarse
// windows smear the concurrency signal, too-fine ones starve bins.
func AblationWindowSize(seed uint64) []AblationRow {
	windows := []des.Time{10 * des.Millisecond, 50 * des.Millisecond, 250 * des.Millisecond, des.Second}
	cfgs := make([]RunConfig, len(windows))
	for i, w := range windows {
		ccfg := cluster.DefaultConfig()
		ccfg.Window = w
		cfg := DefaultRunConfig(scaling.ConScale, workload.LargeVariations)
		cfg.Seed = seed
		cfg.Cluster = &ccfg
		cfgs[i] = cfg
	}
	results := RunMany(cfgs)
	rows := make([]AblationRow, len(windows))
	for i, res := range results {
		detail := "no estimate"
		if est, ok := res.FinalEstimates["mysql1"]; ok {
			detail = fmt.Sprintf("mysql1 Qlower=%d Qupper=%d", est.Qlower, est.Qupper)
		}
		rows[i] = AblationRow{
			Label:  fmt.Sprintf("window=%dms", int(windows[i]/des.Millisecond)),
			P95:    res.P95,
			P99:    res.P99,
			Detail: detail,
		}
	}
	return rows
}

// AblationQupper (A2) compares choosing Qlower (the paper's pick) against
// Qupper as the soft-resource setting: both sustain maximum throughput,
// but the upper bound operates at higher latency.
func AblationQupper(seed uint64) []AblationRow {
	labels := []string{"setting=Qlower", "setting=Qupper"}
	cfgs := make([]RunConfig, len(labels))
	for i, upper := range []bool{false, true} {
		fcfg := scaling.DefaultConfig(scaling.ConScale)
		fcfg.UseQupper = upper
		cfg := DefaultRunConfig(scaling.ConScale, workload.LargeVariations)
		cfg.Seed = seed
		cfg.Framework = &fcfg
		cfgs[i] = cfg
	}
	results := RunMany(cfgs)
	rows := make([]AblationRow, len(labels))
	for i, res := range results {
		rows[i] = AblationRow{Label: labels[i], P95: res.P95, P99: res.P99}
	}
	return rows
}

// AblationLBPolicy (A3) compares leastconn (the paper's deployment) with
// roundrobin balancing under ConScale.
func AblationLBPolicy(seed uint64) []AblationRow {
	policies := []lb.Policy{lb.LeastConn, lb.RoundRobin}
	cfgs := make([]RunConfig, len(policies))
	for i, policy := range policies {
		ccfg := cluster.DefaultConfig()
		ccfg.LBPolicy = policy
		cfg := DefaultRunConfig(scaling.ConScale, workload.LargeVariations)
		cfg.Seed = seed
		cfg.Cluster = &ccfg
		cfgs[i] = cfg
	}
	results := RunMany(cfgs)
	rows := make([]AblationRow, len(policies))
	for i, res := range results {
		rows[i] = AblationRow{Label: "lb=" + policies[i].String(), P95: res.P95, P99: res.P99}
	}
	return rows
}

// AblationCooldown (A4) turns the "quick start but slow turn off" policy
// off (aggressive scale-in) and measures the resulting oscillation.
func AblationCooldown(seed uint64) []AblationRow {
	labels := []string{"slow-turn-off", "fast-turn-off"}
	cfgs := make([]RunConfig, len(labels))
	for i, slow := range []bool{true, false} {
		fcfg := scaling.DefaultConfig(scaling.EC2)
		if !slow {
			fcfg.SustainIn = 5
			fcfg.InCooldown = 10 * des.Second
		}
		cfg := DefaultRunConfig(scaling.EC2, workload.LargeVariations)
		cfg.Seed = seed
		cfg.Framework = &fcfg
		cfgs[i] = cfg
	}
	results := RunMany(cfgs)
	rows := make([]AblationRow, len(labels))
	for i, res := range results {
		ins := 0
		for _, e := range res.Events {
			if e.Kind == scaling.ScaleIn {
				ins++
			}
		}
		rows[i] = AblationRow{
			Label:  labels[i],
			P95:    res.P95,
			P99:    res.P99,
			Detail: fmt.Sprintf("%d scale-in events", ins),
		}
	}
	return rows
}

// AblationVertical (A5) compares horizontal DB scaling (new VMs, 15 s
// preparation each) with vertical scaling (adding vCPUs to live VMs, no
// preparation) under ConScale — the scale-up strategy of the paper's
// Section III-C.1, whose optimal-concurrency doubling the SCT model must
// track online.
func AblationVertical(seed uint64) []AblationRow {
	labels := []string{"db=horizontal", "db=vertical(4max)"}
	cfgs := make([]RunConfig, len(labels))
	for i, vertical := range []bool{false, true} {
		fcfg := scaling.DefaultConfig(scaling.ConScale)
		if vertical {
			fcfg.VerticalDBMaxCores = 4
		}
		cfg := DefaultRunConfig(scaling.ConScale, workload.LargeVariations)
		cfg.Seed = seed
		cfg.Framework = &fcfg
		cfgs[i] = cfg
	}
	results := RunMany(cfgs)
	rows := make([]AblationRow, len(labels))
	for i, res := range results {
		ups := 0
		for _, e := range res.Events {
			if e.Kind == scaling.ScaleOut && e.Tier == cluster.DB {
				ups++
			}
		}
		rows[i] = AblationRow{
			Label:  labels[i],
			P95:    res.P95,
			P99:    res.P99,
			Detail: fmt.Sprintf("%d db scale events", ups),
		}
	}
	return rows
}

// AblationCacheTier (A6) adds the optional Memcached tier the paper
// mentions and measures how much load it takes off the DB tier.
func AblationCacheTier(seed uint64) []AblationRow {
	labels := []string{"cache=off", "cache=on(80%hit)"}
	cfgs := make([]RunConfig, len(labels))
	for i, caches := range []int{0, 1} {
		ccfg := cluster.DefaultConfig()
		ccfg.CacheServers = caches
		ccfg.CacheHitRatio = 0.8
		cfg := DefaultRunConfig(scaling.ConScale, workload.LargeVariations)
		cfg.Seed = seed
		cfg.Cluster = &ccfg
		cfgs[i] = cfg
	}
	results := RunMany(cfgs)
	rows := make([]AblationRow, len(labels))
	for i, res := range results {
		dbOuts := 0
		for _, e := range res.Events {
			if e.Kind == scaling.ScaleOut && e.Tier == cluster.DB {
				dbOuts++
			}
		}
		rows[i] = AblationRow{
			Label:  labels[i],
			P95:    res.P95,
			P99:    res.P99,
			Detail: fmt.Sprintf("%d db scale-outs, goodput %d", dbOuts, res.Goodput),
		}
	}
	return rows
}

// AblationSLATrigger (A7) arms the QoS trigger on top of the DCM baseline
// in the Fig. 11 scenario (stale under-allocating profile): the CPU
// threshold alone cannot see the under-allocation effect — hardware idles
// while response times burn — but the SLA trigger can.
func AblationSLATrigger(seed uint64) []AblationRow {
	profile := TrainDCM(seed, cluster.DefaultConfig())
	ccfg := cluster.DefaultConfig()
	ccfg.DatasetScale = 0.5 // system state changed after training

	labels := []string{"dcm", "dcm+sla-trigger"}
	cfgs := make([]RunConfig, len(labels))
	for i, withSLA := range []bool{false, true} {
		fcfg := scaling.DefaultConfig(scaling.DCM)
		fcfg.Profile = profile
		if withSLA {
			fcfg.SLATarget = 0.300 // the paper's web QoS example: p99 < 300 ms
			fcfg.SLAPercentile = 99
		}
		cfg := DefaultRunConfig(scaling.DCM, workload.LargeVariations)
		cfg.Seed = seed
		cfg.Cluster = &ccfg
		cfg.Framework = &fcfg
		cfgs[i] = cfg
	}
	results := RunMany(cfgs)
	rows := make([]AblationRow, len(labels))
	for i, res := range results {
		rows[i] = AblationRow{
			Label:  labels[i],
			P95:    res.P95,
			P99:    res.P99,
			Detail: fmt.Sprintf("goodput %d", res.Goodput),
		}
	}
	return rows
}
