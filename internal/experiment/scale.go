package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"conscale/internal/admission"
	"conscale/internal/cluster"
	"conscale/internal/controller"
	"conscale/internal/des"
	"conscale/internal/rng"
	"conscale/internal/scaling"
	"conscale/internal/telemetry"
	"conscale/internal/workload"
)

// ScaleConfig describes one scale-mode run: a streaming open-loop client
// population (O(1) memory in the client count) driving a fleet of
// independent n-tier cells, each on its own stripe shard of a
// conservatively synchronised des.Striper. This is the configuration
// that takes the simulator from RUBBoS-scale (~10³) to ~10⁶ concurrent
// clients on one machine.
type ScaleConfig struct {
	// Mode selects the scaling framework every cell runs.
	Mode scaling.Mode
	// Controller (if non-empty) names a zoo controller to drive every
	// cell instead of the Mode switch — same contract as
	// RunConfig.Controller: the legacy names route through byte-identical
	// adapters, any other name runs under the controller Runtime.
	Controller string
	// Admission optionally installs per-tier admission policies on every
	// cell (each cell's cluster.Config copies the entries). Empty — or an
	// explicit always-admit policy — leaves the trajectory byte-identical
	// to the pre-admission code path.
	Admission map[cluster.Tier]admission.Config
	// CellConfig overrides the per-cell deployment (nil takes
	// ScaleCellConfig, the beefy 4/8/8-core skeleton sized for ~10⁶
	// clients). The admission frontier swaps in the paper-sized
	// cluster.DefaultConfig so its 100k population genuinely stresses
	// the cells. Seed and Engine are overwritten per cell.
	CellConfig *cluster.Config
	// Clients is the peak notional client count across the whole
	// population (the trace's MaxUsers).
	Clients int
	// Cells is the number of independent n-tier cells the frontdoor
	// shards requests over (default 16). Held fixed across client tiers
	// so the deployment skeleton — and its memory — is constant.
	Cells int
	// Duration is the trace length (default 120 s).
	Duration des.Time
	// Seed derives every random stream of the run (per-cell cluster
	// seeds are split from it).
	Seed uint64
	// TraceName is the workload shape (default the Fig. 9 "large
	// variations" trace).
	TraceName string
	// ThinkTime is the population's mean think time in seconds (default
	// 7, the RUBBoS default); ignored when Classes is set.
	ThinkTime float64
	// Classes optionally splits the population into think-time classes
	// (see workload.Class). Empty means one class with ThinkTime.
	Classes []workload.Class
	// EdgeDelay is the one-way client↔cell network delay (default 20 ms).
	// It is also the striper's conservative lookahead horizon — the
	// minimum cross-shard delay that makes parallel windows safe.
	EdgeDelay des.Time
	// Parallel executes shard windows on the striper's persistent pinned
	// worker pool. Sequential and parallel execution are byte-identical;
	// see TestScaleStripedMatchesSequential.
	Parallel bool
	// Workers fixes the worker-pool size. Zero derives it from Parallel
	// (GOMAXPROCS workers when true, sequential when false); one forces
	// sequential execution; larger values are clamped to the shard count.
	Workers int
	// Telemetry arms a frontdoor telemetry registry (arrival counter,
	// in-flight gauge, client RT histogram) on the run.
	Telemetry bool
	// WarmupSkip excludes the initial span from the tail estimators
	// (default 15 s).
	WarmupSkip des.Time
}

// DefaultScaleConfig returns the standard scale-mode cell fleet and
// population parameters for a mode × client-count sweep point.
func DefaultScaleConfig(mode scaling.Mode, clients int) ScaleConfig {
	return ScaleConfig{
		Mode:       mode,
		Clients:    clients,
		Cells:      16,
		Duration:   120 * des.Second,
		Seed:       1,
		TraceName:  workload.LargeVariations,
		ThinkTime:  7,
		EdgeDelay:  20 * des.Millisecond,
		Parallel:   true,
		WarmupSkip: 15 * des.Second,
	}
}

// ScaleCellConfig returns the per-cell deployment used by the scale
// mode: the paper's three-tier structure on beefier 4/8/8-core VMs so a
// 16-cell fleet absorbs ~10⁶ clients within each cell's scale-out bound,
// with soft resources sized to the larger VMs (knee ≈ 10 per core).
func ScaleCellConfig() cluster.Config {
	c := cluster.DefaultConfig()
	c.WebCores, c.AppCores, c.DBCores = 4, 8, 8
	c.WebThreads = 2000
	c.AppThreads = 80
	c.DBConns = 60
	c.MaxVMsPerTier = 4
	c.AcceptQueue = 6000
	return c
}

// ScaleResult aggregates one scale-mode run: client-observed latency from
// the streaming population, fleet state, and the execution-cost metrics
// (wall time, events, peak heap) the BENCH_5 report tracks.
type ScaleResult struct {
	// Mode and the population parameters of the run. Controller names the
	// zoo controller that drove the cells ("" when the Mode switch drove
	// them directly).
	Mode       scaling.Mode
	Controller string
	Clients    int
	Cells      int
	// Duration is the simulated trace length.
	Duration des.Time

	// Timeline is the client-observed per-second series.
	Timeline []workload.TimelinePoint
	// Stream is the population's constant-memory aggregate.
	Stream *workload.StreamStats
	// P50/P95/P99 are streaming tail estimates in seconds, post-warmup.
	P50, P95, P99 float64
	// MeanRT is the post-warmup mean successful response time (seconds).
	MeanRT float64
	// ErrorRate is the failed fraction over the whole run; Goodput the
	// successful completion count.
	ErrorRate float64
	Goodput   int64
	// Requests counts all issued requests.
	Requests int64

	// VMs is the fleet-wide VM count at the end of the run; ScaleActions
	// the total controller actions (scale-out/in, pool resizes) across
	// cells.
	VMs          int
	ScaleActions int

	// Workers is the striper worker-pool size the run executed on (1 =
	// sequential). The trajectory is identical at every value; only
	// WallSec changes.
	Workers int

	// Events is the total simulation events executed; EventsPerSec the
	// wall-clock execution rate; WallSec the wall-clock run time.
	Events       uint64
	EventsPerSec float64
	WallSec      float64
	// PeakHeapBytes is the maximum live Go heap observed during the run
	// (sampled every 5 simulated seconds); FinalHeapBytes the live heap
	// after the run with the result still referenced. Both are in-process
	// measures, comparable across runs in one sweep; ProcessPeakRSS gives
	// the OS-level high-water mark of the whole process.
	PeakHeapBytes  uint64
	FinalHeapBytes uint64

	// Sheds counts admission-policy drops across all cells (zero without
	// admission policies); ShedsByClass splits the count by priority
	// class.
	Sheds        uint64
	ShedsByClass [admission.NumClasses]uint64

	// Registry is the frontdoor telemetry registry (nil unless
	// ScaleConfig.Telemetry).
	Registry *telemetry.Registry
}

// RunScale executes one scale-mode run: shard 0 (the frontdoor) hosts
// the streaming population; shards 1..Cells each host one independent
// n-tier cell with its own scaling framework and seed-split random
// streams. Requests are routed round-robin over the cells across the
// network edge (EdgeDelay each way, which doubles as the striper's
// lookahead horizon). The trajectory is deterministic and identical at
// any worker count.
func RunScale(cfg ScaleConfig) *ScaleResult {
	if cfg.Clients <= 0 {
		panic("experiment: scale run needs a positive client count")
	}
	if cfg.Cells <= 0 {
		cfg.Cells = 16
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 120 * des.Second
	}
	if cfg.TraceName == "" {
		cfg.TraceName = workload.LargeVariations
	}
	if cfg.ThinkTime <= 0 {
		cfg.ThinkTime = 7
	}
	if cfg.EdgeDelay <= 0 {
		cfg.EdgeDelay = 20 * des.Millisecond
	}
	if cfg.WarmupSkip <= 0 {
		cfg.WarmupSkip = 15 * des.Second
	}

	workers := cfg.Workers
	if workers <= 0 {
		if cfg.Parallel {
			workers = runtime.GOMAXPROCS(0)
		} else {
			workers = 1
		}
	}
	str := des.NewStriper(cfg.Cells+1, cfg.EdgeDelay)
	str.SetWorkers(workers)
	defer str.Close()
	front := str.Shard(0)

	// Seed-split streams: one master source hands every cell its own
	// independent seed; the generator gets its own derived stream.
	master := rng.New(cfg.Seed)
	ccfg := ScaleCellConfig()
	if cfg.CellConfig != nil {
		ccfg = *cfg.CellConfig
	}
	if len(cfg.Admission) > 0 {
		ccfg.Admission = cfg.Admission // cluster.New copies the entries
	}
	needDCM := cfg.Mode == scaling.DCM || cfg.Controller == "dcm"
	var profile scaling.DCMProfile
	if needDCM {
		profile = AnalyticDCMProfile(ccfg)
	}
	cells := make([]*cluster.Cluster, cfg.Cells)
	drs := make([]driver, cfg.Cells)
	for i := range cells {
		cc := ccfg
		cc.Seed = master.Uint64()
		cc.Engine = str.Shard(i + 1).Eng
		cells[i] = cluster.New(cc)
		fcfg := scaling.DefaultConfig(cfg.Mode)
		// Short-horizon SCT windows (as in TrainDCM): a 2-minute scale run
		// must estimate from sub-minute windows or ConScale never acts.
		fcfg.SCT.CollectionWindow = 45 * des.Second
		fcfg.SCT.MinTotalSamples = 30
		fcfg.SCT.MinDistinctBins = 3
		if needDCM {
			fcfg.Profile = profile
		}
		if cfg.Controller == "" {
			drs[i] = scaling.New(cells[i], fcfg)
		} else {
			opts := controller.Options{Seed: cc.Seed, Base: fcfg}
			ctrl, err := controller.New(cfg.Controller, opts)
			if err != nil {
				panic(err) // validated by callers; a typo here is a programming error
			}
			drs[i] = controller.NewRuntime(cells[i], ctrl, opts)
		}
		drs[i].Start()
	}

	// Frontdoor: the streaming population submits over the network edge
	// to a round-robin cell; the response crosses the edge back. Both
	// hops carry exactly the lookahead horizon, the minimum legal delay.
	var (
		reg      *telemetry.Registry
		arrivals *telemetry.Counter
		inflight *telemetry.Gauge
		clientRT *telemetry.Histogram
	)
	if cfg.Telemetry {
		reg = telemetry.NewRegistry()
		arrivals = reg.Counter("conscale_scale_arrivals_total",
			"Requests issued by the streaming scale-mode population.")
		inflight = reg.Gauge("conscale_scale_inflight",
			"Scale-mode requests currently between frontdoor and cells.")
		clientRT = reg.Histogram("conscale_client_rt_seconds",
			"Client-observed end-to-end response time of successful requests.")
	}
	nextCell := 0
	submit := func(done func(ok bool)) {
		cell := nextCell
		nextCell++
		if nextCell == cfg.Cells {
			nextCell = 0
		}
		arrivals.Inc()
		inflight.Add(1)
		start := front.Eng.Now()
		c := cells[cell]
		sh := str.Shard(cell + 1)
		front.Send(cell+1, cfg.EdgeDelay, func() {
			c.Submit(func(ok bool) {
				sh.Send(0, cfg.EdgeDelay, func() {
					inflight.Add(-1)
					if ok {
						clientRT.Observe(float64(front.Eng.Now() - start))
					}
					done(ok)
				})
			})
		})
	}

	tr := workload.NewTrace(cfg.TraceName, cfg.Clients, cfg.Duration)
	gen := workload.NewGenerator(front.Eng, rng.New(cfg.Seed^0x9e3779b9), workload.GeneratorConfig{
		Trace:     tr,
		ThinkTime: cfg.ThinkTime,
		Streaming: true,
		Classes:   cfg.Classes,
		TailFrom:  cfg.WarmupSkip,
	}, submit)

	// Heap high-water sampling in simulated time: cheap (a few dozen
	// reads per run), deterministic placement, and it reads — never
	// mutates — runtime state, so the trajectory is untouched.
	var peakHeap uint64
	heapTick := front.Eng.Every(5*des.Second, func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peakHeap {
			peakHeap = ms.HeapAlloc
		}
	})

	gen.Start()
	t0 := time.Now()
	str.RunUntil(cfg.Duration)
	for _, f := range drs {
		f.Stop()
	}
	heapTick.Stop()
	// Drain: in-flight work plus the two edge hops back to the frontdoor.
	str.RunUntil(cfg.Duration + 5*des.Second)
	wall := time.Since(t0).Seconds()

	res := &ScaleResult{
		Mode:       cfg.Mode,
		Controller: cfg.Controller,
		Clients:    cfg.Clients,
		Cells:      cfg.Cells,
		Duration:   cfg.Duration,
		Workers:    str.Workers(),
		Timeline:   trimTimeline(gen.Timeline(), cfg.Duration),
		Stream:     gen.Stream(),
		WallSec:    wall,
		Events:     str.Fired(),
		Registry:   reg,
	}
	if wall > 0 {
		res.EventsPerSec = float64(res.Events) / wall
	}
	res.P50 = gen.TailLatency(50, cfg.WarmupSkip)
	res.P95 = gen.TailLatency(95, cfg.WarmupSkip)
	res.P99 = gen.TailLatency(99, cfg.WarmupSkip)
	res.MeanRT = res.Stream.MeanRT()
	res.ErrorRate = gen.ErrorRate()
	res.Goodput = res.Stream.OK
	res.Requests = res.Stream.Issued
	for i, c := range cells {
		res.VMs += c.TotalVMs()
		res.ScaleActions += len(drs[i].Events())
		res.Sheds += c.Sheds()
		for _, t := range cluster.Tiers() {
			per := c.TierSheds(t)
			for cl, n := range per {
				res.ShedsByClass[cl] += n
			}
		}
	}
	res.PeakHeapBytes = peakHeap
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	res.FinalHeapBytes = ms.HeapAlloc
	if res.FinalHeapBytes > res.PeakHeapBytes {
		res.PeakHeapBytes = res.FinalHeapBytes
	}
	return res
}

// ProcessPeakRSS returns the process's peak resident set size in bytes
// (VmHWM from /proc/self/status), or 0 where unavailable. It is a
// whole-process high-water mark: within a sweep it only ever grows, so
// per-run comparisons should use ScaleResult.PeakHeapBytes and treat
// this as the machine-level footprint of the largest run.
func ProcessPeakRSS() uint64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// ScaleRow is one sweep point of the scale report — the JSON shape
// benchreport schema 5 embeds and `-run scale` writes.
type ScaleRow struct {
	// Mode is the framework name (ec2/dcm/conscale).
	Mode string `json:"mode"`
	// Clients is the peak notional client count; Cells the cell count.
	Clients int `json:"clients"`
	Cells   int `json:"cells"`
	// Workers is the striper worker-pool size the run executed on (1 =
	// sequential; the trajectory is identical at every value).
	Workers int `json:"workers"`
	// DurationSec is the simulated length; WallSec the wall-clock cost.
	DurationSec float64 `json:"duration_sec"`
	WallSec     float64 `json:"wall_sec"`
	// Events is the executed event count; EventsPerSec the rate.
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// PeakHeapMB is the in-run live-heap high-water mark in MiB.
	PeakHeapMB float64 `json:"peak_heap_mb"`
	// Requests / Goodput / ErrorRate summarise the client outcome.
	Requests  int64   `json:"requests"`
	Goodput   int64   `json:"goodput"`
	ErrorRate float64 `json:"error_rate"`
	// P50Ms/P95Ms/P99Ms/MeanMs are post-warmup client latencies (ms).
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	// VMs is the final fleet VM count; ScaleActions the controller
	// actions across all cells.
	VMs          int `json:"vms"`
	ScaleActions int `json:"scale_actions"`
}

// Row converts a result to its report shape.
func (r *ScaleResult) Row() ScaleRow {
	ms := func(v float64) float64 {
		if math.IsNaN(v) {
			return 0
		}
		return v * 1000
	}
	return ScaleRow{
		Mode:         r.Mode.String(),
		Clients:      r.Clients,
		Cells:        r.Cells,
		Workers:      r.Workers,
		DurationSec:  float64(r.Duration),
		WallSec:      r.WallSec,
		Events:       r.Events,
		EventsPerSec: r.EventsPerSec,
		PeakHeapMB:   float64(r.PeakHeapBytes) / (1 << 20),
		Requests:     r.Requests,
		Goodput:      r.Goodput,
		ErrorRate:    r.ErrorRate,
		P50Ms:        ms(r.P50),
		P95Ms:        ms(r.P95),
		P99Ms:        ms(r.P99),
		MeanMs:       ms(r.MeanRT),
		VMs:          r.VMs,
		ScaleActions: r.ScaleActions,
	}
}

// ScaleReport is the `-run scale` JSON artifact: benchreport schema 7's
// scale section as a standalone file.
type ScaleReport struct {
	// Schema identifies the report format.
	Schema string `json:"schema"`
	// ProcessPeakRSSMB is the whole-process high-water mark after the
	// sweep (the footprint of the largest run).
	ProcessPeakRSSMB float64 `json:"process_peak_rss_mb"`
	// Rows holds one entry per (mode, clients) sweep point.
	Rows []ScaleRow `json:"scale"`
}

// WriteScaleReport writes the sweep as indented JSON.
func WriteScaleReport(w io.Writer, rows []ScaleRow) error {
	rep := ScaleReport{
		Schema:           "conscale-bench/7",
		ProcessPeakRSSMB: float64(ProcessPeakRSS()) / (1 << 20),
		Rows:             rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// RenderScale prints the sweep as an aligned ASCII table.
func RenderScale(w io.Writer, rows []ScaleRow) {
	fmt.Fprintf(w, "%-9s %9s %6s %4s %8s %12s %10s %9s %8s %8s %8s %6s %7s\n",
		"mode", "clients", "cells", "wrk", "wall_s", "events", "events/s", "heap_MB", "p50_ms", "p99_ms", "err", "vms", "actions")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %9d %6d %4d %8.1f %12d %10.0f %9.1f %8.1f %8.1f %7.4f %6d %7d\n",
			r.Mode, r.Clients, r.Cells, r.Workers, r.WallSec, r.Events, r.EventsPerSec,
			r.PeakHeapMB, r.P50Ms, r.P99Ms, r.ErrorRate, r.VMs, r.ScaleActions)
	}
}

// WriteScaleTimelineCSV writes the client-observed per-second series of
// one run — the byte-identity surface the striped-vs-sequential
// regression test compares.
func WriteScaleTimelineCSV(w io.Writer, r *ScaleResult) {
	fmt.Fprintln(w, "time_s,users,throughput,mean_rt_ms,errors")
	for _, p := range r.Timeline {
		rt := ""
		if !math.IsNaN(p.MeanRT) {
			rt = fmt.Sprintf("%.3f", p.MeanRT*1000)
		}
		fmt.Fprintf(w, "%.0f,%d,%.2f,%s,%d\n", float64(p.Time), p.Users, p.Throughput, rt, p.Errors)
	}
}
