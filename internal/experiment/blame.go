package experiment

import (
	"fmt"
	"io"

	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/scaling"
	"conscale/internal/trace"
	"conscale/internal/workload"
)

// BlameResult is one controller's traced Large Variations run: the full
// run result (tracer and audit trail included) plus its windowed blame
// table.
type BlameResult struct {
	Mode scaling.Mode
	Res  *RunResult
	Rows []trace.BlameRow
}

// blameModes is the canonical controller order of the blame comparison.
var blameModes = []scaling.Mode{scaling.EC2, scaling.DCM, scaling.ConScale}

// Blame replays the Large Variations trace under EC2, DCM, and ConScale
// with per-request tracing armed, producing the latency-blame comparison:
// where response time is spent (tier × wait type) as each controller
// rides the same load burst. The canonical setup is the paper's (7500
// users, 720 s).
func Blame(seed uint64) []BlameResult {
	return BlameRuns(seed, 720*des.Second, 7500)
}

// BlameRuns is Blame with the run size exposed (short CI and test runs).
// The three runs fan out over the worker pool; the DCM profile comes from
// the analytic queueing model so every controller's run shares one
// deterministic setup.
func BlameRuns(seed uint64, duration des.Time, users int) []BlameResult {
	profile := AnalyticDCMProfile(cluster.DefaultConfig())
	cfgs := make([]RunConfig, len(blameModes))
	for i, mode := range blameModes {
		cfg := DefaultRunConfig(mode, workload.LargeVariations)
		cfg.Seed = seed
		cfg.Duration = duration
		cfg.MaxUsers = users
		// 1/16 head sampling keeps tens of thousands of blame records per
		// run while exercising the sampled path, not the firehose.
		cfg.Tracing = &trace.Config{SampleRate: 1.0 / 16, Reservoir: 8}
		if mode == scaling.DCM {
			fcfg := scaling.DefaultConfig(scaling.DCM)
			fcfg.Profile = profile
			cfg.Framework = &fcfg
		}
		cfgs[i] = cfg
	}
	results := RunMany(cfgs)
	out := make([]BlameResult, len(blameModes))
	for i, res := range results {
		out[i] = BlameResult{Mode: blameModes[i], Res: res, Rows: res.Tracer.BlameTable()}
	}
	return out
}

// TransitionWindow returns the blame focus interval around the run's
// first app-tier scale-out ([t-20s, t+40s), clipped at zero) and whether
// the run scaled at all. This is the interval where the paper's
// queue-amplification story plays out: the new VM is up but the soft
// resources still reflect the old topology.
func (b BlameResult) TransitionWindow() (from, to des.Time, ok bool) {
	times := b.Res.ScaleOutTimes(cluster.App)
	if len(times) == 0 {
		return 0, 0, false
	}
	from = times[0] - 20*des.Second
	if from < 0 {
		from = 0
	}
	return from, times[0] + 40*des.Second, true
}

// blameFocusTiers are the (tier, component) columns of the rendered
// comparison — the soft-resource waits the controllers differ on, plus
// the service floor for scale.
var blameFocusComponents = []struct {
	label string
	tier  trace.TierID
	kind  trace.SegKind
}{
	{"app queue", trace.TierApp, trace.SegQueue},
	{"app pool-wait", trace.TierApp, trace.SegPoolWait},
	{"db queue", trace.TierDB, trace.SegQueue},
	{"web queue", trace.TierWeb, trace.SegQueue},
	{"cpu service", trace.TierApp, trace.SegCPU},
}

// RenderBlame prints the per-controller blame comparison: overall and
// transition-window decompositions of the p95 class, one line per
// controller, plus each run's audit-trail volume.
func RenderBlame(w io.Writer, results []BlameResult) {
	fmt.Fprintln(w, "latency blame, Large Variations (p95 class, mean ms per request)")
	header := fmt.Sprintf("  %-16s %9s %9s", "controller", "p95 rt", "windows")
	for _, c := range blameFocusComponents {
		header += fmt.Sprintf(" %13s", c.label)
	}
	fmt.Fprintln(w, header)
	render := func(title string, pick func(b BlameResult) (trace.BlameRow, bool)) {
		fmt.Fprintf(w, "  -- %s\n", title)
		for _, b := range results {
			row, ok := pick(b)
			if !ok {
				fmt.Fprintf(w, "  %-16s %9s\n", b.Mode, "n/a")
				continue
			}
			line := fmt.Sprintf("  %-16s %8.0fms %9d", b.Mode, row.RT*1000, row.Requests)
			for _, c := range blameFocusComponents {
				line += fmt.Sprintf(" %11.1fms", row.Comp[c.tier][c.kind]*1000)
			}
			fmt.Fprintln(w, line)
		}
	}
	render("whole run", func(b BlameResult) (trace.BlameRow, bool) {
		return trace.BlameSummary(b.Rows, "p95", 0, des.Time(1e18))
	})
	render("scale-out transition (first app scale-out -20s..+40s)", func(b BlameResult) (trace.BlameRow, bool) {
		from, to, ok := b.TransitionWindow()
		if !ok {
			return trace.BlameRow{}, false
		}
		return trace.BlameSummary(b.Rows, "p95", from, to)
	})
	for _, b := range results {
		started, sampled, completed, failed := b.Res.Tracer.Stats()
		fmt.Fprintf(w, "  %-16s traced %d/%d requests (%d ok, %d failed), %d audit events\n",
			b.Mode, sampled, started, completed, failed, len(b.Res.Audit))
	}
}
