package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"

	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/scaling"
	"conscale/internal/telemetry"
	"conscale/internal/trace"
	"conscale/internal/workload"
)

// The SLO detection-lead-time experiment: run every bursty trace under EC2,
// DCM, and ConScale with the telemetry layer armed, then score the
// burn-rate alerts against (a) ground-truth SLA-violation episodes computed
// from the exact client sample stream and (b) the CPU threshold triggers
// the controllers themselves act on. The question it answers is the paper's
// motivation read through an operator's eyes: how many seconds of warning
// does a client-side burn-rate monitor buy over the 80% CPU rule that
// drives scaling?

// SLOEpisode is one ground-truth SLA-violation interval.
type SLOEpisode struct {
	Start, End des.Time
}

// sloPreSlack is how much earlier than an episode's start an alert or CPU
// trigger may fire and still be credited to it: the burn-rate windows see
// the leading edge of a burst before the windowed ground truth crosses its
// own threshold.
const sloPreSlack = 15 * des.Second

// ViolationEpisodes derives the ground-truth SLA-violation intervals from a
// run's exact client sample stream: seconds whose 10 s windowed bad-request
// fraction (errored or over cfg.Target) reaches the alerting consumption
// rate Burn × (1 − Objective), merged across gaps of up to 5 s, dropping
// episodes shorter than 3 s. Using the same badness definition and rate as
// the monitor makes the comparison about *detection latency*, not about
// disagreeing definitions of "violation".
func ViolationEpisodes(samples []workload.Sample, cfg telemetry.SLOConfig) []SLOEpisode {
	if len(samples) == 0 {
		return nil
	}
	maxSec := 0
	for _, s := range samples {
		if sec := int(s.Finish); sec > maxSec {
			maxSec = sec
		}
	}
	bad := make([]int, maxSec+1)
	total := make([]int, maxSec+1)
	for _, s := range samples {
		sec := int(s.Finish)
		total[sec]++
		if !s.OK || s.RT > cfg.Target {
			bad[sec]++
		}
	}
	const window = 10
	threshold := cfg.Burn * (1 - cfg.Objective)
	violating := make([]bool, maxSec+1)
	sumBad, sumTotal := 0, 0
	for sec := 0; sec <= maxSec; sec++ {
		sumBad += bad[sec]
		sumTotal += total[sec]
		if sec >= window {
			sumBad -= bad[sec-window]
			sumTotal -= total[sec-window]
		}
		violating[sec] = sumTotal > 0 && float64(sumBad)/float64(sumTotal) >= threshold
	}
	var eps []SLOEpisode
	const mergeGap, minLen = 5, 3
	start := -1
	lastTrue := -1
	for sec := 0; sec <= maxSec+mergeGap+1; sec++ {
		v := sec <= maxSec && violating[sec]
		switch {
		case v && start < 0:
			start = sec
			lastTrue = sec
		case v:
			lastTrue = sec
		case start >= 0 && sec-lastTrue > mergeGap:
			if lastTrue-start+1 >= minLen {
				eps = append(eps, SLOEpisode{Start: des.Time(start), End: des.Time(lastTrue + 1)})
			}
			start = -1
		}
	}
	return eps
}

// SLORow scores one run's burn-rate alerting against its ground truth.
type SLORow struct {
	Trace string
	Mode  scaling.Mode

	// Episodes is the ground-truth violation count; Alerts the raised
	// burn-rate alert count.
	Episodes, Alerts int
	// Detected counts episodes matched by at least one alert (recall
	// numerator); TruePositives counts alerts matched to at least one
	// episode (precision numerator).
	Detected, TruePositives int
	Precision, Recall       float64

	// MeanLead / MinLead / MaxLead summarise, over episodes where both
	// signals fired, how many seconds the burn-rate alert preceded the
	// first CPU threshold trigger (positive = alert first). LeadCount is
	// how many episodes contributed.
	MeanLead, MinLead, MaxLead float64
	LeadCount                  int
	// SLOOnly counts episodes the burn-rate alert caught but no CPU
	// trigger ever fired for — invisible to the threshold rule.
	SLOOnly int
}

// EvaluateSLO scores a telemetry-armed run. The run must have been executed
// with RunConfig.Telemetry (for the monitor and samples) and
// RunConfig.Tracing (for the audit trail carrying the CPU triggers).
func EvaluateSLO(res *RunResult) SLORow {
	row := SLORow{Trace: res.Trace, Mode: res.Mode}
	if res.SLO == nil {
		return row
	}
	episodes := ViolationEpisodes(res.Samples, res.SLO.Config())
	alerts := res.SLO.Alerts()
	var cpuTriggers []des.Time
	for _, e := range res.Audit {
		if e.Kind == trace.AuditThresholdTrigger && strings.HasPrefix(e.Cause, "cpu=") {
			cpuTriggers = append(cpuTriggers, e.Time)
		}
	}
	row.Episodes = len(episodes)
	row.Alerts = len(alerts)

	matched := func(a telemetry.Alert, ep SLOEpisode) bool {
		return a.Start < ep.End && a.End > ep.Start-sloPreSlack
	}
	for _, a := range alerts {
		for _, ep := range episodes {
			if matched(a, ep) {
				row.TruePositives++
				break
			}
		}
	}
	row.MinLead = math.Inf(1)
	row.MaxLead = math.Inf(-1)
	for _, ep := range episodes {
		var alertAt des.Time = -1
		for _, a := range alerts {
			if matched(a, ep) {
				alertAt = a.Start
				break
			}
		}
		if alertAt < 0 {
			continue
		}
		row.Detected++
		var cpuAt des.Time = -1
		for _, t := range cpuTriggers {
			if t >= ep.Start-sloPreSlack && t < ep.End {
				cpuAt = t
				break
			}
		}
		if cpuAt < 0 {
			row.SLOOnly++
			continue
		}
		lead := float64(cpuAt - alertAt)
		row.MeanLead += lead
		row.LeadCount++
		if lead < row.MinLead {
			row.MinLead = lead
		}
		if lead > row.MaxLead {
			row.MaxLead = lead
		}
	}
	if row.LeadCount > 0 {
		row.MeanLead /= float64(row.LeadCount)
	} else {
		row.MinLead, row.MaxLead = math.NaN(), math.NaN()
	}
	if row.Alerts > 0 {
		row.Precision = float64(row.TruePositives) / float64(row.Alerts)
	}
	if row.Episodes > 0 {
		row.Recall = float64(row.Detected) / float64(row.Episodes)
	}
	return row
}

// SLORun is one (trace, controller) cell of the detection comparison.
type SLORun struct {
	Trace string
	Mode  scaling.Mode
	Res   *RunResult
	Row   SLORow
}

// SLODetection runs the full comparison at the paper's evaluation size.
func SLODetection(seed uint64) []SLORun {
	return SLORunsSized(seed, 720*des.Second, 7500)
}

// SLORunsSized runs every bursty trace under the three controllers with
// telemetry and tracing armed, fanned out over the worker pool, and scores
// each run. Traces iterate in canonical order, controllers in blame order,
// so output ordering is deterministic.
func SLORunsSized(seed uint64, duration des.Time, users int) []SLORun {
	profile := AnalyticDCMProfile(cluster.DefaultConfig())
	traces := workload.Names()
	var cfgs []RunConfig
	for _, tr := range traces {
		for _, mode := range blameModes {
			cfg := DefaultRunConfig(mode, tr)
			cfg.Seed = seed
			cfg.Duration = duration
			cfg.MaxUsers = users
			cfg.Telemetry = &TelemetryOptions{}
			// The audit trail carries the CPU triggers and SLO transitions;
			// light head sampling keeps the span machinery out of the way.
			cfg.Tracing = &trace.Config{SampleRate: 1.0 / 64}
			if mode == scaling.DCM {
				fcfg := scaling.DefaultConfig(scaling.DCM)
				fcfg.Profile = profile
				cfg.Framework = &fcfg
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results := RunMany(cfgs)
	out := make([]SLORun, len(results))
	for i, res := range results {
		out[i] = SLORun{Trace: res.Trace, Mode: res.Mode, Res: res, Row: EvaluateSLO(res)}
	}
	return out
}

// RenderSLO prints the detection comparison table.
func RenderSLO(w io.Writer, runs []SLORun) {
	fmt.Fprintln(w, "SLO burn-rate detection vs 80% CPU threshold (p99 < 300 ms objective)")
	fmt.Fprintf(w, "  %-16s %-16s %8s %7s %5s %5s %9s %8s %8s\n",
		"trace", "controller", "episodes", "alerts", "prec", "rec", "mean lead", "min", "max")
	for _, r := range runs {
		lead, lo, hi := "n/a", "", ""
		if r.Row.LeadCount > 0 {
			lead = fmt.Sprintf("%+.1fs", r.Row.MeanLead)
			lo = fmt.Sprintf("%+.0fs", r.Row.MinLead)
			hi = fmt.Sprintf("%+.0fs", r.Row.MaxLead)
		}
		fmt.Fprintf(w, "  %-16s %-16s %8d %7d %5.2f %5.2f %9s %8s %8s\n",
			r.Trace, r.Mode, r.Row.Episodes, r.Row.Alerts,
			r.Row.Precision, r.Row.Recall, lead, lo, hi)
	}
}
