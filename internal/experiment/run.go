// Package experiment contains the evaluation harness: one runner per table
// and figure of the paper (see DESIGN.md's per-experiment index), built on
// the cluster simulator, the workload traces, and the scaling frameworks.
// Each runner returns plain data structures that the cmd/experiments tool
// renders as CSV or ASCII tables, and that the bench suite asserts shapes
// against (who wins, where knees fall).
package experiment

import (
	"math"

	"conscale/internal/admission"
	"conscale/internal/chaos"
	"conscale/internal/cluster"
	"conscale/internal/controller"
	"conscale/internal/des"
	"conscale/internal/forensics"
	"conscale/internal/metrics"
	"conscale/internal/qnet"
	"conscale/internal/rng"
	"conscale/internal/rubbos"
	"conscale/internal/scaling"
	"conscale/internal/sct"
	"conscale/internal/telemetry"
	"conscale/internal/trace"
	"conscale/internal/twin"
	"conscale/internal/workload"
)

// RunConfig describes one full scaling run (a Fig. 1/10/11 style
// experiment).
type RunConfig struct {
	Mode      scaling.Mode
	TraceName string
	MaxUsers  int
	Duration  des.Time
	Seed      uint64

	// Controller (if non-empty) names a registered controller from the
	// internal/controller zoo to drive the run instead of the Mode
	// switch. The legacy names ("ec2", "dcm", "conscale") route through
	// adapters that wrap the untouched scaling.Framework, so their
	// trajectories are byte-identical to the Mode path; any other name
	// runs under the controller Runtime. When empty, Mode selects the
	// framework directly — the pre-zoo behavior, preserved verbatim.
	Controller string

	// ThinkTime is the mean user think time (7 s, the RUBBoS default).
	ThinkTime float64

	// Cluster overrides; zero values take cluster.DefaultConfig.
	Cluster *cluster.Config

	// Admission (if non-empty) installs per-tier admission policies on
	// every VM of the named tiers (merged over Cluster's own Admission
	// map, per-tier entries here winning). A nil/empty map — or an
	// explicit always-admit policy — leaves the run's trajectory
	// byte-identical to the pre-admission code path
	// (TestAlwaysAdmitByteIdentical).
	Admission map[cluster.Tier]admission.Config

	// Framework overrides; zero value takes scaling.DefaultConfig(Mode).
	Framework *scaling.Config

	// DatasetChangeAt (if > 0) switches the dataset scale mid-run to
	// DatasetChangeTo — the system-state change of Fig. 11.
	DatasetChangeAt des.Time
	DatasetChangeTo float64

	// Chaos (if non-nil) arms the fault schedule on the run. An empty
	// schedule is bit-identical to nil: the injector's random stream is
	// derived from the run seed but consumed only by the schedule's own
	// random draws.
	Chaos *chaos.Schedule

	// Tracing (if non-nil) arms per-request tracing plus the controller
	// audit trail. The tracer samples from its own stream derived from
	// the run seed, so a traced run's timeline is byte-identical to an
	// untraced one.
	Tracing *trace.Config

	// Telemetry (if non-nil) arms the continuous-metrics registry across
	// the whole stack, a sim-time scraper snapshotting it into an
	// OpenMetrics timeline, and the SLO burn-rate monitor over the client
	// request stream. Telemetry only reads simulation state, so an
	// instrumented run's timeline is byte-identical to a bare one.
	Telemetry *TelemetryOptions

	// Forensics (if non-nil) arms the fluctuation-forensics layer: the
	// flight recorder (fed by the audit-trail observer, the tracer's
	// end-of-request tap, and a per-second occupancy snapshot tick) plus
	// the episode detector over the client request stream. The layer only
	// reads simulation state, so an armed run's timeline is byte-identical
	// to a bare one. Arm Tracing alongside it — without the audit trail
	// the recorder sees no decisions, faults, or SCT refreshes.
	Forensics *forensics.Config

	// Twin (if non-nil) arms the analytical-twin observer: a periodic
	// snapshot of the live configuration solved as a closed MVA network,
	// streaming predicted-vs-observed residuals and a model-drift flag.
	// The twin only reads simulation state (its taps and its tick draw
	// no randomness and schedule nothing but read-only callbacks), so an
	// armed run's timeline is byte-identical to a bare one
	// (TestTwinRunByteIdentical). Arm Tracing alongside it to land the
	// twin-drift events on the audit trail, and Forensics to classify
	// drift against fluctuation episodes.
	Twin *twin.Config

	// WarmupSkip excludes the initial span from tail-latency statistics.
	WarmupSkip des.Time
}

// TelemetryOptions configures the run's continuous-telemetry layer.
type TelemetryOptions struct {
	// ScrapeInterval is the registry snapshot cadence (0 = 5 s).
	ScrapeInterval des.Time
	// SLO overrides the burn-rate monitor settings (nil = DefaultSLOConfig:
	// p99 < 300 ms, 15 s / 60 s windows, burn 4).
	SLO *telemetry.SLOConfig
}

// DefaultRunConfig returns the paper's evaluation parameters: 7500 users,
// 12 minutes, 7 s think time, 1/1/1 start, soft resources 1000-60-40.
func DefaultRunConfig(mode scaling.Mode, traceName string) RunConfig {
	return RunConfig{
		Mode:      mode,
		TraceName: traceName,
		MaxUsers:  7500,
		Duration:  720 * des.Second,
		Seed:      1,
		ThinkTime: 3,
	}
}

// TierSeries is a per-second series for one tier.
type TierSeries struct {
	CPU []float64 // mean utilization (0..1) per second
}

// RunResult captures everything the figures and tables need from one run.
type RunResult struct {
	Mode  scaling.Mode
	Trace string
	// Controller is the zoo controller that drove the run ("" when the
	// Mode switch drove it directly).
	Controller string

	// Timeline is the client-observed per-second series (RT, TP, errors).
	Timeline []workload.TimelinePoint
	// VMs is the total VM count per second.
	VMs []int
	// TierCPU holds per-second CPU utilization for the app and DB tiers.
	TierCPU map[cluster.Tier][]float64
	// SoftHistory tracks the (appThreads, dbConns) setting per second.
	SoftHistory [][2]int

	Events []scaling.Event

	// Tail latencies in seconds over the post-warmup window.
	P50, P95, P99 float64
	// MeanRT is the mean response time (seconds).
	MeanRT float64
	// Goodput is the count of successful requests; ErrorRate the failed
	// fraction.
	Goodput   int
	ErrorRate float64

	// Sheds counts admission-policy drops across the whole cluster and
	// run (0 without admission policies); ShedsByClass splits the count
	// by priority class.
	Sheds        uint64
	ShedsByClass [admission.NumClasses]uint64

	// Warehouse retains the per-server fine-grained samples for scatter
	// analyses (Fig. 5/6).
	Warehouse *metrics.Warehouse

	// FinalEstimates is ConScale's per-server SCT view at the end.
	FinalEstimates map[string]sct.Estimate

	// FaultWindows lists the chaos faults that activated during the run
	// (empty without a schedule) — the overlay data for timelines.
	FaultWindows []chaos.Window

	// Tracer holds the armed tracer (nil when RunConfig.Tracing was nil):
	// the blame table, the slowest-request reservoir, and the counters.
	Tracer *trace.Tracer
	// Audit is the controller decision trail of the run (nil untraced).
	Audit []trace.AuditEvent

	// Registry / Scraper / SLO are the run's telemetry layer (nil when
	// RunConfig.Telemetry was nil). Scraper holds the OpenMetrics timeline;
	// SLO holds the burn-rate alert episodes.
	Registry *telemetry.Registry
	Scraper  *telemetry.Scraper
	SLO      *telemetry.SLOMonitor
	// Samples is the raw client sample stream, retained only on telemetry
	// runs (the SLO lead-time evaluation needs ground-truth violation
	// intervals).
	Samples []workload.Sample

	// Forensics is the armed forensics layer (nil when
	// RunConfig.Forensics was nil): the flight recorder's rings and the
	// detector's confirmed episodes, ready for Report().
	Forensics *forensics.Forensics

	// Twin is the armed analytical-twin observer (nil when
	// RunConfig.Twin was nil): the predicted-vs-observed sample series,
	// the residual gauges, and the sealed drift events.
	Twin *twin.Observer
}

// tierMap pairs cluster tiers with their trace tier IDs for forensics
// occupancy snapshots (a package-level array so the tick allocates
// nothing iterating it).
var tierMap = [...]struct {
	ct cluster.Tier
	id trace.TierID
}{
	{cluster.Web, trace.TierWeb},
	{cluster.App, trace.TierApp},
	{cluster.Cache, trace.TierCache},
	{cluster.DB, trace.TierDB},
}

// driver is what Run needs from whatever controls the cluster — the
// scaling.Framework Mode switch and the controller.Runtime both satisfy
// it, so every run flows through one code path regardless of policy.
type driver interface {
	SetAudit(*trace.Audit)
	RegisterTelemetry(*telemetry.Registry)
	Start()
	Stop()
	Warehouse() *metrics.Warehouse
	Events() []scaling.Event
	Estimates() map[string]sct.Estimate
}

// Run executes one full scaling experiment.
func Run(cfg RunConfig) *RunResult {
	ccfg := cluster.DefaultConfig()
	if cfg.Cluster != nil {
		ccfg = *cfg.Cluster
	}
	ccfg.Seed = cfg.Seed
	if len(cfg.Admission) > 0 {
		merged := make(map[cluster.Tier]admission.Config, len(cfg.Admission)+len(ccfg.Admission))
		for t, a := range ccfg.Admission {
			merged[t] = a
		}
		for t, a := range cfg.Admission {
			merged[t] = a
		}
		ccfg.Admission = merged
	}
	c := cluster.New(ccfg)

	fcfg := scaling.DefaultConfig(cfg.Mode)
	if cfg.Framework != nil {
		fcfg = *cfg.Framework
		fcfg.Mode = cfg.Mode
	}
	// Retain the whole run so post-hoc scatter analysis sees everything.
	if fcfg.WarehouseRetention < cfg.Duration+60*des.Second {
		fcfg.WarehouseRetention = cfg.Duration + 60*des.Second
	}

	var tracer *trace.Tracer
	if cfg.Tracing != nil {
		tcfg := *cfg.Tracing
		if tcfg.Seed == 0 {
			tcfg.Seed = cfg.Seed
		}
		tracer = trace.New(tcfg)
		c.SetTracer(tracer)
	}

	var f driver
	if cfg.Controller == "" {
		f = scaling.New(c, fcfg)
	} else {
		ctrl, err := controller.New(cfg.Controller, controller.Options{Seed: cfg.Seed, Base: fcfg})
		if err != nil {
			panic(err) // validated by callers; a typo here is a programming error
		}
		f = controller.NewRuntime(c, ctrl, controller.Options{Seed: cfg.Seed, Base: fcfg})
	}
	f.SetAudit(tracer.Audit())

	// Arm the telemetry layer before the control loops start so the first
	// scrape already sees every family registered.
	var (
		reg *telemetry.Registry
		scr *telemetry.Scraper
		slo *telemetry.SLOMonitor
	)
	submit := c.Submit
	if cfg.Telemetry != nil {
		reg = telemetry.NewRegistry()
		c.SetTelemetry(reg)
		f.RegisterTelemetry(reg)
		slocfg := telemetry.DefaultSLOConfig()
		if cfg.Telemetry.SLO != nil {
			slocfg = *cfg.Telemetry.SLO
		}
		slo = telemetry.NewSLOMonitor(slocfg)
		slo.SetAudit(tracer.Audit())
		slo.Register(reg)
		clientRT := reg.Histogram("conscale_client_rt_seconds",
			"Client-observed end-to-end response time of successful requests.")
		// Wrap the submit path to observe every client outcome. The wrapper
		// draws no randomness and schedules nothing, so the simulated
		// trajectory is untouched.
		submit = func(done func(ok bool)) {
			start := c.Eng.Now()
			c.Submit(func(ok bool) {
				now := c.Eng.Now()
				rt := float64(now - start)
				if ok {
					clientRT.Observe(rt)
				}
				slo.Observe(now, rt, ok)
				done(ok)
			})
		}
		scr = telemetry.NewScraper(c.Eng, reg, cfg.Telemetry.ScrapeInterval)
		scr.Start()
	}

	var fx *forensics.Forensics
	if cfg.Forensics != nil {
		fx = forensics.New(*cfg.Forensics)
		fx.Det.Register(reg)
		if tracer != nil {
			tracer.Audit().SetObserver(fx.Rec.ObserveAudit)
			tracer.SetOnEnd(fx.Rec.ObserveSpan)
		}
		// Feed the detector every client outcome. Like the telemetry
		// wrapper above, this only reads the clock — the trajectory is
		// untouched.
		inner := submit
		submit = func(done func(ok bool)) {
			start := c.Eng.Now()
			inner(func(ok bool) {
				now := c.Eng.Now()
				fx.Det.Observe(now, float64(now-start), ok)
				done(ok)
			})
		}
	}

	// Route admission drops into the observability tails: each shed lands
	// in the forensics shed ring (by tier and class) and the SLO monitor's
	// deliberate-burn split. The observer only copies values on the
	// simulation goroutine — no randomness, no scheduling — so wiring it
	// preserves byte-identity.
	if fx != nil || slo != nil {
		c.SetShedObserver(func(now des.Time, t cluster.Tier, class admission.Class) {
			if fx != nil {
				fx.Rec.ObserveShed(forensics.ShedRec{Time: now, Tier: t.String(), Class: class.String()})
			}
			slo.ObserveShed()
		})
	}

	think := cfg.ThinkTime
	if think == 0 {
		think = 7
	}

	var tw *twin.Observer
	if cfg.Twin != nil {
		tw = twin.New(*cfg.Twin, twin.Model{
			Workload:  c.Workload, // a getter: SetDatasetScale replaces the pointer mid-run
			ThinkTime: think,
			WebCores:  ccfg.WebCores,
			AppCores:  ccfg.AppCores,
			DBCores:   ccfg.DBCores,
			DiskChans: ccfg.DiskChans,
		})
		tw.SetAudit(tracer.Audit())
		if fx != nil {
			tw.SetEpisodeSource(fx.Det)
		}
		tw.Register(reg)
		// Feed the twin's flow/RT window from the client stream — another
		// clock-only read, same determinism argument as the taps above.
		inner := submit
		submit = func(done func(ok bool)) {
			tw.ObserveArrival()
			start := c.Eng.Now()
			inner(func(ok bool) {
				now := c.Eng.Now()
				tw.Observe(now, float64(now-start), ok)
				done(ok)
			})
		}
	}

	f.Start()

	tr := workload.NewTrace(cfg.TraceName, cfg.MaxUsers, cfg.Duration)
	gen := workload.NewGenerator(c.Eng, rng.New(cfg.Seed^0x9e3779b9), workload.GeneratorConfig{
		Trace:     tr,
		ThinkTime: think,
	}, submit)

	res := &RunResult{
		Mode:       cfg.Mode,
		Controller: cfg.Controller,
		Trace:      cfg.TraceName,
		TierCPU:    map[cluster.Tier][]float64{cluster.App: nil, cluster.DB: nil},
	}

	// Per-second system sampling (VM count, tier CPU, soft resources).
	sampler := c.Eng.Every(des.Second, func() {
		res.VMs = append(res.VMs, c.TotalVMs())
		res.TierCPU[cluster.App] = append(res.TierCPU[cluster.App], c.TierCPU(cluster.App))
		res.TierCPU[cluster.DB] = append(res.TierCPU[cluster.DB], c.TierCPU(cluster.DB))
		_, app, db := c.SoftResources()
		res.SoftHistory = append(res.SoftHistory, [2]int{app, db})
	})

	// Forensics snapshot + detector tick: a read-only observer, same
	// determinism argument as the telemetry scraper.
	var ftick *des.Ticker
	if fx != nil {
		ftick = c.Eng.Every(fx.Config().SnapshotInterval, func() {
			now := c.Eng.Now()
			s := forensics.TierSnapshot{Time: now, Clients: gen.Active()}
			for _, m := range tierMap {
				q, a := c.TierOccupancy(m.ct)
				s.Tiers[m.id] = forensics.TierStat{
					Ready:  c.ReadyCount(m.ct),
					Queue:  q,
					Active: a,
					CPU:    c.TierCPU(m.ct),
				}
			}
			fx.Rec.RecordSnapshot(s)
			fx.Det.Tick(now)
		})
	}

	// Twin snapshot tick: reads cluster accessors and the live client
	// count, solves the model off to the side. Read-only, like the
	// forensics ticker above.
	var ttick *des.Ticker
	if tw != nil {
		ttick = c.Eng.Every(tw.Config().Interval, func() {
			now := c.Eng.Now()
			obs := twin.Observation{Time: now, Clients: gen.Active()}
			for _, m := range [...]struct {
				ct cluster.Tier
				to *twin.TierObs
			}{
				{cluster.Web, &obs.Web},
				{cluster.App, &obs.App},
				{cluster.DB, &obs.DB},
			} {
				m.to.Ready = c.ReadyCount(m.ct)
				m.to.Queue, m.to.Active = c.TierOccupancy(m.ct)
				m.to.CPU = c.TierCPU(m.ct)
			}
			ready := obs.Web.Ready + obs.App.Ready + obs.DB.Ready + c.ReadyCount(cluster.Cache)
			obs.BootingVMs = c.TotalVMs() - ready
			tw.Tick(obs)
		})
	}

	if cfg.DatasetChangeAt > 0 {
		c.Eng.At(cfg.DatasetChangeAt, func() { c.SetDatasetScale(cfg.DatasetChangeTo) })
	}

	var inj *chaos.Injector
	if cfg.Chaos != nil {
		inj = chaos.NewInjector(c, cfg.Chaos, cfg.Seed^0xc4a05)
		inj.SetAudit(tracer.Audit())
		inj.RegisterTelemetry(reg)
		inj.Arm()
	}

	gen.Start()
	c.Eng.RunUntil(cfg.Duration)
	sampler.Stop()
	if ftick != nil {
		ftick.Stop()
	}
	if fx != nil {
		fx.Det.Finish(cfg.Duration)
	}
	if ttick != nil {
		ttick.Stop()
	}
	tw.Finish(cfg.Duration)
	scr.Stop()
	f.Stop()
	// Drain in-flight work briefly so final samples are complete.
	c.Eng.RunUntil(cfg.Duration + 5*des.Second)
	c.CollectInto(f.Warehouse())

	res.Timeline = trimTimeline(gen.Timeline(), cfg.Duration)
	res.Events = f.Events()
	if inj != nil {
		res.FaultWindows = inj.Windows()
	}
	res.Warehouse = f.Warehouse()
	res.FinalEstimates = f.Estimates()
	if tracer != nil {
		res.Tracer = tracer
		res.Audit = tracer.Audit().Events()
	}
	if reg != nil {
		res.Registry = reg
		res.Scraper = scr
		res.SLO = slo
		res.Samples = gen.Samples()
	}
	res.Forensics = fx
	res.Twin = tw

	warm := cfg.WarmupSkip
	res.P50 = gen.TailLatency(50, warm)
	res.P95 = gen.TailLatency(95, warm)
	res.P99 = gen.TailLatency(99, warm)
	res.ErrorRate = gen.ErrorRate()
	res.Goodput = gen.GoodputTotal()
	res.Sheds = c.Sheds()
	for _, t := range cluster.Tiers() {
		per := c.TierSheds(t)
		for cl, n := range per {
			res.ShedsByClass[cl] += n
		}
	}

	sum, n := 0.0, 0
	for _, s := range gen.Samples() {
		if s.OK && s.Finish >= warm {
			sum += s.RT
			n++
		}
	}
	if n > 0 {
		res.MeanRT = sum / float64(n)
	} else {
		res.MeanRT = math.NaN()
	}
	return res
}

func trimTimeline(tl []workload.TimelinePoint, dur des.Time) []workload.TimelinePoint {
	out := tl[:0:0]
	for _, p := range tl {
		if p.Time < dur {
			out = append(out, p)
		}
	}
	return out
}

// MaxRT returns the largest per-second mean response time in the timeline
// — the "response time spike" magnitude of Fig. 1/10/11.
func (r *RunResult) MaxRT() float64 {
	max := 0.0
	for _, p := range r.Timeline {
		if !math.IsNaN(p.MeanRT) && p.MeanRT > max {
			max = p.MeanRT
		}
	}
	return max
}

// RTOverThreshold returns the fraction of seconds whose mean RT exceeds
// the threshold — a stability measure for the comparison figures.
func (r *RunResult) RTOverThreshold(threshold float64) float64 {
	over, n := 0, 0
	for _, p := range r.Timeline {
		if math.IsNaN(p.MeanRT) {
			continue
		}
		n++
		if p.MeanRT > threshold {
			over++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(over) / float64(n)
}

// ScaleOutTimes returns the times of ScaleOut events for a tier (the
// annotation arrows of Fig. 10c/d).
func (r *RunResult) ScaleOutTimes(tier cluster.Tier) []des.Time {
	var out []des.Time
	for _, e := range r.Events {
		if e.Kind == scaling.ScaleOut && e.Tier == tier {
			out = append(out, e.Time)
		}
	}
	return out
}

// TrainDCM derives the DCM baseline's offline profile by running the
// system under the training conditions (original dataset, browse-only,
// steady high load) with ConScale's estimator observing, then freezing the
// resulting recommendation — exactly the "offline training for a specific
// workload" the paper describes.
func TrainDCM(seed uint64, clusterCfg cluster.Config) scaling.DCMProfile {
	clusterCfg.Seed = seed
	c := cluster.New(clusterCfg)
	fcfg := scaling.DefaultConfig(scaling.ConScale)
	fcfg.SCT.CollectionWindow = 120 * des.Second
	fcfg.SCT.MinTotalSamples = 30
	fcfg.SCT.MinDistinctBins = 3
	f := scaling.New(c, fcfg)
	f.Start()

	tr := workload.NewTrace(workload.SlowlyVarying, 4000, 300*des.Second)
	gen := workload.NewGenerator(c.Eng, rng.New(seed+17), workload.GeneratorConfig{
		Trace:     tr,
		ThinkTime: 3,
	}, c.Submit)
	gen.Start()
	c.Eng.RunUntil(300 * des.Second)
	f.Stop()

	// Freeze the tier-level recommendation.
	appOpt, dbOpt := 0, 0
	nApp, nDB := 0, 0
	for name, est := range f.Estimates() {
		switch {
		case len(name) >= 6 && name[:6] == "tomcat":
			appOpt += est.Optimal()
			nApp++
		case len(name) >= 5 && name[:5] == "mysql":
			dbOpt += est.Optimal()
			nDB++
		}
	}
	profile := scaling.DCMProfile{}
	if nApp > 0 {
		profile.AppThreads = appOpt / nApp
	}
	if nDB > 0 {
		perDB := dbOpt / nDB
		profile.DBTotal = perDB * c.ReadyCount(cluster.DB)
	}
	// Fall back to the paper's trained values if the estimator could not
	// converge (tiny training runs in tests).
	if profile.AppThreads == 0 {
		profile.AppThreads = 20
	}
	if profile.DBTotal == 0 {
		profile.DBTotal = 40
	}
	// Sanity floors: a trained profile below the hardware parallelism is
	// always an estimation failure.
	if profile.AppThreads < 8 {
		profile.AppThreads = 8
	}
	if profile.DBTotal < 8 {
		profile.DBTotal = 8
	}
	return profile
}

// AnalyticDCMProfile derives the DCM profile from the closed
// queueing-network model instead of a measurement run — the purely
// analytic offline path ("offline profiling on various concurrency
// workloads through a queueing network model is widely adopted", paper
// Section II-B). It solves the MVA model of a single app server and a
// single DB server of the given deployment and freezes each tier's
// 95%-saturation population.
func AnalyticDCMProfile(clusterCfg cluster.Config) scaling.DCMProfile {
	wl := rubbos.NewWorkload(clusterCfg.Mix, clusterCfg.DatasetScale)
	profile := scaling.DCMProfile{AppThreads: 20, DBTotal: 40}
	if n, ok := qnet.AppServerNetwork(wl, clusterCfg.AppCores).SaturationPopulation(0.95, 400); ok {
		profile.AppThreads = n
	}
	if n, ok := qnet.DBServerNetwork(wl, clusterCfg.DBCores, clusterCfg.DiskChans).SaturationPopulation(0.95, 400); ok {
		profile.DBTotal = n * clusterCfg.DB
	}
	return profile
}
