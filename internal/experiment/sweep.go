package experiment

import (
	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/lb"
	"conscale/internal/rubbos"
	"conscale/internal/server"
	"conscale/internal/workload"

	"conscale/internal/rng"
)

// SweepTarget selects which server the fixed-concurrency profiling sweep
// stresses (paper Section II-B: "a modified RUBBoS workload generator ...
// zero think time ... precisely control the request processing
// concurrency").
type SweepTarget int

// Sweep targets.
const (
	TargetApp SweepTarget = iota // Tomcat
	TargetDB                     // MySQL
)

// SweepConfig describes one profiling sweep.
type SweepConfig struct {
	Target       SweepTarget
	Mix          rubbos.Mix
	DatasetScale float64
	Cores        int   // target server's vCPU count
	Levels       []int // concurrency levels to visit
	// Warmup and Measure are per-level spans.
	Warmup  des.Time
	Measure des.Time
	Seed    uint64
}

// DefaultLevels is the paper's Fig. 3 x-axis.
func DefaultLevels() []int { return []int{5, 10, 15, 20, 30, 40, 60, 80, 100} }

// DefaultSweepConfig returns a browse-only 1-core sweep over the standard
// levels.
func DefaultSweepConfig(target SweepTarget) SweepConfig {
	return SweepConfig{
		Target:       target,
		Mix:          rubbos.BrowseOnly,
		DatasetScale: 1,
		Cores:        1,
		Levels:       DefaultLevels(),
		Warmup:       3 * des.Second,
		Measure:      10 * des.Second,
		Seed:         1,
	}
}

// SweepPoint is one measured level.
type SweepPoint struct {
	Level       int     // controlled concurrency
	Concurrency float64 // measured mean concurrency at the target
	Throughput  float64 // target-server completions/s
	MeanRT      float64 // target-server response time (seconds)
}

// SweepResult is a full concurrency-throughput curve plus the knee.
type SweepResult struct {
	Config SweepConfig
	Points []SweepPoint
	// Qlower is the smallest level achieving >= 95% of the maximum
	// throughput (the paper's optimal concurrency setting).
	Qlower int
	// QlowerTP is the throughput at that level.
	QlowerTP float64
	// MaxTP is the maximum observed throughput.
	MaxTP float64
}

// SweepMany runs several sweeps through the worker pool and returns their
// results in input order (the Fig. 3 / Fig. 7 panel sets).
func SweepMany(cfgs []SweepConfig) []SweepResult {
	out := make([]SweepResult, len(cfgs))
	ParallelFor(len(cfgs), func(i int) { out[i] = Sweep(cfgs[i]) })
	return out
}

// Sweep measures the target server's throughput and response time at each
// controlled concurrency level, one fresh deterministic run per level.
func Sweep(cfg SweepConfig) SweepResult {
	if len(cfg.Levels) == 0 {
		cfg.Levels = DefaultLevels()
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 3 * des.Second
	}
	if cfg.Measure <= 0 {
		cfg.Measure = 10 * des.Second
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.DatasetScale <= 0 {
		cfg.DatasetScale = 1
	}
	res := SweepResult{Config: cfg}
	// Levels are independent measurements (fresh cluster, level-derived
	// seed), so they fan out over the worker pool; results land in level
	// order regardless of completion order.
	res.Points = make([]SweepPoint, len(cfg.Levels))
	ParallelFor(len(cfg.Levels), func(i int) {
		res.Points[i] = sweepLevel(cfg, cfg.Levels[i])
	})
	// Knee: smallest level within 5% of the peak.
	for _, p := range res.Points {
		if p.Throughput > res.MaxTP {
			res.MaxTP = p.Throughput
		}
	}
	for _, p := range res.Points {
		if p.Throughput >= 0.95*res.MaxTP {
			res.Qlower = p.Level
			res.QlowerTP = p.Throughput
			break
		}
	}
	return res
}

// sweepLevel runs one fixed-concurrency measurement.
func sweepLevel(cfg SweepConfig, level int) SweepPoint {
	ccfg := cluster.DefaultConfig()
	ccfg.Seed = cfg.Seed + uint64(level)*1000
	ccfg.Mix = cfg.Mix
	ccfg.DatasetScale = cfg.DatasetScale
	ccfg.LBPolicy = lb.LeastConn
	ccfg.AcceptQueue = 100000

	users := level
	switch cfg.Target {
	case TargetApp:
		// Tomcat is the bottleneck under test: generous web and DB tiers,
		// Tomcat pool pinned at the level so its concurrency is the
		// controlled variable.
		ccfg.AppCores = cfg.Cores
		ccfg.WebCores = 8
		ccfg.DBCores = 8
		ccfg.DiskChans = 8
		ccfg.AppThreads = level
		ccfg.DBConns = level
		ccfg.WebThreads = 10000
		users = level
	case TargetDB:
		// MySQL under test: generous web/app tiers; the DB connection
		// pool pins MySQL's concurrency, with excess users keeping the
		// pool saturated (paper: pool size yields the max concurrent
		// requests flowing downstream).
		ccfg.DBCores = cfg.Cores
		ccfg.WebCores = 8
		ccfg.AppCores = 16
		ccfg.DiskChans = 1
		ccfg.AppThreads = level * 6
		ccfg.DBConns = level
		ccfg.WebThreads = 10000
		users = level * 5
	}

	c := cluster.New(ccfg)
	var target *server.Server
	switch cfg.Target {
	case TargetApp:
		target = c.Servers(cluster.App)[0]
	case TargetDB:
		target = c.Servers(cluster.DB)[0]
	}

	total := cfg.Warmup + cfg.Measure
	tr := constantTrace(users, total)
	gen := workload.NewGenerator(c.Eng, rng.New(ccfg.Seed+7), workload.GeneratorConfig{
		Trace:     tr,
		ThinkTime: 0,
	}, c.Submit)
	gen.Start()

	// Discard warmup samples, then measure.
	c.Eng.RunUntil(cfg.Warmup)
	target.FlushFine()
	c.Eng.RunUntil(total)

	point := SweepPoint{Level: level}
	samples := target.FlushFine()
	var completions int
	var rtSum float64
	var concSum float64
	for _, w := range samples {
		completions += w.Completions
		if w.Completions > 0 {
			rtSum += w.RT * float64(w.Completions)
		}
		concSum += w.Concurrency
	}
	if len(samples) > 0 {
		point.Concurrency = concSum / float64(len(samples))
	}
	point.Throughput = float64(completions) / float64(cfg.Measure)
	if completions > 0 {
		point.MeanRT = rtSum / float64(completions)
	}
	return point
}

// constantTrace holds a fixed user population for the duration.
func constantTrace(users int, dur des.Time) *workload.Trace {
	return workload.NewConstantTrace(users, dur)
}
