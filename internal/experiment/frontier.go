package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"conscale/internal/admission"
	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/workload"
)

// FrontierConfig describes the admission frontier: a full factorial of
// admission policy × controller × trace at one scale-mode client tier,
// measuring where each policy lands on the p99-versus-goodput plane.
// Every cell is one RunScale invocation; the always-admit cells double
// as the per-(controller, trace) baselines the delta columns are
// computed against.
type FrontierConfig struct {
	// Clients is the peak client count per cell (default 100 000, the
	// scale sweep's middle tier).
	Clients int
	// Cells is the n-tier cell count per run (default 16).
	Cells int
	// Duration is the simulated length per run (default 120 s).
	Duration des.Time
	// Seed derives every cell's random streams (default 1).
	Seed uint64
	// Controllers are zoo controller names (default the episode quartet:
	// ec2, dcm, conscale, target-tracking-sct).
	Controllers []string
	// Policies are admission.Parse specs, one frontier point each
	// (default: always, queue-cap, codel, priority with caps sized to
	// the scale cell). "always" must be present — the deltas need it.
	Policies []string
	// Traces are workload trace names (default: all six shapes).
	Traces []string
	// ThinkTime is the population's mean think time in seconds (default
	// 3, the paper's evaluation setting).
	ThinkTime float64
	// Tiers are the cluster tiers the policy is installed on (default
	// web and app: the client edge and the soft-resource bottleneck).
	Tiers []cluster.Tier
	// Parallel / Workers configure each run's striper pool (runs
	// themselves execute sequentially — one run saturates the pool).
	Parallel bool
	Workers  int
	// Progress (optional) is called after each cell with the completed
	// row and the done/total counts.
	Progress func(done, total int, row FrontierRow)
}

// DefaultFrontierConfig returns the standard frontier factorial:
// four admission policies × four controllers × all six traces at the
// 100k-client scale tier.
func DefaultFrontierConfig() FrontierConfig {
	return FrontierConfig{
		Clients:  100_000,
		Cells:    16,
		Duration: 120 * des.Second,
		Seed:     1,
		Controllers: []string{
			"ec2", "dcm", "conscale", "target-tracking-sct",
		},
		Policies: []string{
			admission.Always,
			"queue-cap:cap=300",
			"codel:target=100ms,interval=200ms",
			"priority:cap=300,browse=75",
		},
		Traces:    workload.Names(),
		ThinkTime: 3,
		Tiers:     []cluster.Tier{cluster.Web, cluster.App},
		Parallel:  true,
	}
}

func (cfg FrontierConfig) withDefaults() FrontierConfig {
	def := DefaultFrontierConfig()
	if cfg.Clients <= 0 {
		cfg.Clients = def.Clients
	}
	if cfg.Cells <= 0 {
		cfg.Cells = def.Cells
	}
	if cfg.Duration <= 0 {
		cfg.Duration = def.Duration
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if len(cfg.Controllers) == 0 {
		cfg.Controllers = def.Controllers
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = def.Policies
	}
	if len(cfg.Traces) == 0 {
		cfg.Traces = def.Traces
	}
	if cfg.ThinkTime <= 0 {
		cfg.ThinkTime = def.ThinkTime
	}
	if len(cfg.Tiers) == 0 {
		cfg.Tiers = def.Tiers
	}
	return cfg
}

// FrontierRow is one factorial cell of the frontier — the JSON shape
// benchreport schema 10 embeds and `-run frontier` writes.
type FrontierRow struct {
	// Trace / Controller / Policy locate the cell in the factorial.
	// Policy is the admission policy name; Spec the full parsed spec.
	Trace      string `json:"trace"`
	Controller string `json:"controller"`
	Policy     string `json:"policy"`
	Spec       string `json:"spec"`
	// Clients is the peak client count of the cell.
	Clients int `json:"clients"`
	// Requests / Goodput / ErrorRate summarise the client outcome;
	// Sheds splits out how many of the failures were admission drops
	// (BrowseSheds + RWSheds = Sheds).
	Requests    int64   `json:"requests"`
	Goodput     int64   `json:"goodput"`
	ErrorRate   float64 `json:"error_rate"`
	Sheds       uint64  `json:"sheds"`
	BrowseSheds uint64  `json:"browse_sheds"`
	RWSheds     uint64  `json:"rw_sheds"`
	// P50Ms/P95Ms/P99Ms/MeanMs are post-warmup client latencies (ms).
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	// P99DeltaPct / GoodputDeltaPct position the cell against the
	// always-admit baseline of the same (controller, trace): negative
	// P99DeltaPct means the policy cut the tail, negative
	// GoodputDeltaPct is the goodput it paid for that.
	P99DeltaPct     float64 `json:"p99_delta_pct"`
	GoodputDeltaPct float64 `json:"goodput_delta_pct"`
	// VMs / ScaleActions summarise the fleet trajectory; WallSec the
	// execution cost.
	VMs          int     `json:"vms"`
	ScaleActions int     `json:"scale_actions"`
	WallSec      float64 `json:"wall_sec"`
}

// FrontierResult is the full factorial output.
type FrontierResult struct {
	// Rows holds one entry per (trace, controller, policy) cell, in
	// trace-major, controller-minor, policy-innermost order.
	Rows []FrontierRow
	// Clients echoes the tier the frontier ran at.
	Clients int
}

// RunFrontier executes the factorial sequentially (each run already
// saturates the striper worker pool) and fills in the delta columns
// against each (controller, trace) pair's always-admit cell.
func RunFrontier(cfg FrontierConfig) *FrontierResult {
	cfg = cfg.withDefaults()

	// Validate every policy spec up front so a typo fails before hours
	// of simulation, and pin the always-admit baseline's presence.
	parsed := make([]admission.Config, len(cfg.Policies))
	hasAlways := false
	for i, spec := range cfg.Policies {
		acfg, err := admission.Parse(spec)
		if err != nil {
			panic(err) // specs are validated by callers; a typo here is a programming error
		}
		if _, err := admission.New(acfg); err != nil {
			panic(err)
		}
		parsed[i] = acfg
		if acfg.Policy == admission.Always {
			hasAlways = true
		}
	}
	if !hasAlways {
		panic("experiment: frontier needs an always-admit policy for its baseline columns")
	}

	// The frontier runs on PAPER-sized cells (1-core VMs, 60-thread app
	// pools), not the beefy scale skeleton: 100k clients over 16 such
	// cells is the paper's 7500-user evaluation regime per cell — bursty
	// enough that admission has a real p99-vs-goodput trade to make.
	// The scale skeleton absorbs 100k without queueing at all.
	cell := cluster.DefaultConfig()

	res := &FrontierResult{Clients: cfg.Clients}
	total := len(cfg.Policies) * len(cfg.Controllers) * len(cfg.Traces)
	done := 0
	for _, tr := range cfg.Traces {
		for _, ctrl := range cfg.Controllers {
			for i, acfg := range parsed {
				scfg := ScaleConfig{
					Controller: ctrl,
					Clients:    cfg.Clients,
					Cells:      cfg.Cells,
					Duration:   cfg.Duration,
					Seed:       cfg.Seed,
					TraceName:  tr,
					ThinkTime:  cfg.ThinkTime,
					CellConfig: &cell,
					Parallel:   cfg.Parallel,
					Workers:    cfg.Workers,
				}
				if acfg.Policy != admission.Always {
					// The always-admit cell runs with NO policy installed, so
					// it is byte-identical to the pre-admission code path —
					// the same trajectory TestAlwaysAdmitByteIdentical pins.
					adm := map[cluster.Tier]admission.Config{}
					for _, t := range cfg.Tiers {
						adm[t] = acfg
					}
					scfg.Admission = adm
				}
				r := RunScale(scfg)
				row := frontierRow(tr, ctrl, cfg.Policies[i], acfg, r)
				res.Rows = append(res.Rows, row)
				done++
				if cfg.Progress != nil {
					cfg.Progress(done, total, row)
				}
			}
		}
	}
	res.fillDeltas()
	return res
}

func frontierRow(tr, ctrl, spec string, acfg admission.Config, r *ScaleResult) FrontierRow {
	ms := func(v float64) float64 {
		if math.IsNaN(v) {
			return 0
		}
		return v * 1000
	}
	return FrontierRow{
		Trace:        tr,
		Controller:   ctrl,
		Policy:       acfg.Policy,
		Spec:         spec,
		Clients:      r.Clients,
		Requests:     r.Requests,
		Goodput:      r.Goodput,
		ErrorRate:    r.ErrorRate,
		Sheds:        r.Sheds,
		BrowseSheds:  r.ShedsByClass[admission.ClassBrowse],
		RWSheds:      r.ShedsByClass[admission.ClassReadWrite],
		P50Ms:        ms(r.P50),
		P95Ms:        ms(r.P95),
		P99Ms:        ms(r.P99),
		MeanMs:       ms(r.MeanRT),
		VMs:          r.VMs,
		ScaleActions: r.ScaleActions,
		WallSec:      r.WallSec,
	}
}

// fillDeltas computes each row's position against the always-admit cell
// of the same (controller, trace).
func (res *FrontierResult) fillDeltas() {
	base := map[[2]string]FrontierRow{}
	for _, r := range res.Rows {
		if r.Policy == admission.Always {
			base[[2]string{r.Controller, r.Trace}] = r
		}
	}
	for i := range res.Rows {
		r := &res.Rows[i]
		b, ok := base[[2]string{r.Controller, r.Trace}]
		if !ok {
			continue
		}
		if b.P99Ms > 0 {
			r.P99DeltaPct = 100 * (r.P99Ms - b.P99Ms) / b.P99Ms
		}
		if b.Goodput > 0 {
			r.GoodputDeltaPct = 100 * float64(r.Goodput-b.Goodput) / float64(b.Goodput)
		}
	}
}

// BestTailCut returns the row with the largest p99 reduction against
// its always-admit baseline, over cells whose goodput loss stays within
// maxGoodputLossPct (a positive number of percent). ok is false when no
// non-always cell qualifies.
func (res *FrontierResult) BestTailCut(maxGoodputLossPct float64) (FrontierRow, bool) {
	best, ok := FrontierRow{}, false
	for _, r := range res.Rows {
		if r.Policy == admission.Always {
			continue
		}
		if r.GoodputDeltaPct < -maxGoodputLossPct {
			continue
		}
		if !ok || r.P99DeltaPct < best.P99DeltaPct {
			best, ok = r, true
		}
	}
	return best, ok
}

// FrontierReport is the `-run frontier` JSON artifact: benchreport
// schema 10's frontier section as a standalone file.
type FrontierReport struct {
	// Schema identifies the report format.
	Schema string `json:"schema"`
	// Clients is the client tier the factorial ran at.
	Clients int `json:"clients"`
	// Rows holds one entry per (trace, controller, policy) cell.
	Rows []FrontierRow `json:"frontier"`
}

// WriteFrontierReport writes the factorial as indented JSON.
func WriteFrontierReport(w io.Writer, res *FrontierResult) error {
	rep := FrontierReport{
		Schema:  "conscale-bench/10",
		Clients: res.Clients,
		Rows:    res.Rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteFrontierCSV writes the factorial as frontier_summary.csv.
func WriteFrontierCSV(w io.Writer, res *FrontierResult) {
	fmt.Fprintln(w, "trace,controller,policy,spec,clients,requests,goodput,error_rate,sheds,browse_sheds,rw_sheds,p50_ms,p95_ms,p99_ms,mean_ms,p99_delta_pct,goodput_delta_pct,vms,scale_actions,wall_s")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%s,%s,%s,%q,%d,%d,%d,%.4f,%d,%d,%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.2f,%d,%d,%.2f\n",
			r.Trace, r.Controller, r.Policy, r.Spec, r.Clients, r.Requests, r.Goodput,
			r.ErrorRate, r.Sheds, r.BrowseSheds, r.RWSheds, r.P50Ms, r.P95Ms, r.P99Ms,
			r.MeanMs, r.P99DeltaPct, r.GoodputDeltaPct, r.VMs, r.ScaleActions, r.WallSec)
	}
}

// RenderFrontier prints the factorial as an aligned ASCII table, sorted
// by trace then controller then p99 — the frontier reads top-down per
// (trace, controller) block.
func RenderFrontier(w io.Writer, res *FrontierResult) {
	rows := append([]FrontierRow(nil), res.Rows...)
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Controller != b.Controller {
			return a.Controller < b.Controller
		}
		return a.P99Ms < b.P99Ms
	})
	fmt.Fprintf(w, "%-16s %-20s %-10s %9s %9s %8s %8s %8s %9s %9s\n",
		"trace", "controller", "policy", "p99_ms", "Δp99%", "goodput", "Δgood%", "sheds", "err", "wall_s")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-20s %-10s %9.1f %9.1f %8d %8.2f %8d %9.4f %9.1f\n",
			r.Trace, r.Controller, r.Policy, r.P99Ms, r.P99DeltaPct,
			r.Goodput, r.GoodputDeltaPct, r.Sheds, r.ErrorRate, r.WallSec)
	}
}
