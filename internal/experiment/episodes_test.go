package experiment

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"conscale/internal/des"
	"conscale/internal/forensics"
	"conscale/internal/scaling"
	"conscale/internal/trace"
	"conscale/internal/workload"
)

// TestForensicsRunByteIdentical is the acceptance-criterion test: arming
// the flight recorder + episode detector must leave the simulated
// trajectory bit-identical to a bare run. The forensics layer only
// reads — extra read-only tickers do not perturb the event order.
func TestForensicsRunByteIdentical(t *testing.T) {
	bare := Run(shortRun(scaling.ConScale, workload.BigSpike, 3))

	cfg := shortRun(scaling.ConScale, workload.BigSpike, 3)
	cfg.Tracing = &trace.Config{SampleRate: 1.0 / 8}
	cfg.Forensics = &forensics.Config{}
	armed := Run(cfg)

	var a, b bytes.Buffer
	if err := WriteTimelineCSV(&a, bare); err != nil {
		t.Fatal(err)
	}
	if err := WriteTimelineCSV(&b, armed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("arming forensics changed the timeline CSV")
	}
	if !reflect.DeepEqual(bare.VMs, armed.VMs) {
		t.Fatal("arming forensics changed the VM series")
	}
	if armed.Forensics == nil {
		t.Fatal("armed run has no forensics handle")
	}
	sn, _, _, _, _ := armed.Forensics.Rec.Counts()
	if sn == 0 {
		t.Fatal("recorder captured no snapshots")
	}
}

// TestEpisodesExperimentSmoke runs one small chaos-armed cell end to end
// and checks the pipeline detects the injected fluctuation and grades
// attribution against the known schedule.
func TestEpisodesExperimentSmoke(t *testing.T) {
	cells := RunEpisodes(EpisodesConfig{
		Controllers: []string{"ec2"},
		Traces:      []string{workload.BigSpike},
		Users:       5000,
		Duration:    ShortDuration,
		Seed:        1,
		Chaos:       true,
	})
	if len(cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(cells))
	}
	c := cells[0]
	if c.Controller != "ec2" || c.Trace != workload.BigSpike {
		t.Fatalf("cell mislabelled: %+v", c)
	}
	if c.Report == nil {
		t.Fatal("cell has no attribution report")
	}
	if c.Episodes == 0 {
		t.Fatal("chaos-armed EC2 cell detected no episodes (whole-tier 2.5x interference should breach)")
	}
	if len(c.Res.FaultWindows) == 0 {
		t.Fatal("no fault windows recorded")
	}
	if c.FaultOverlapped == 0 {
		t.Fatal("no episode overlapped an injected fault")
	}

	var tbl, rank strings.Builder
	RenderEpisodes(&tbl, cells)
	if !strings.Contains(tbl.String(), "fault attribution:") {
		t.Fatalf("table missing attribution line:\n%s", tbl.String())
	}
	ranks := RankEpisodes(cells)
	if len(ranks) != 1 || ranks[0].Controller != "ec2" {
		t.Fatalf("ranking wrong: %+v", ranks)
	}
	RenderEpisodeRanking(&rank, ranks)
	if !strings.Contains(rank.String(), "ec2") {
		t.Fatalf("ranking table missing controller:\n%s", rank.String())
	}
}

// TestEpisodesChaosWellSeparated pins the schedule invariant the
// attribution grading relies on: consecutive faults are spaced more
// than a default FaultLag apart so no episode has two plausible causes.
func TestEpisodesChaosWellSeparated(t *testing.T) {
	dur := 720 * des.Second
	s := EpisodesChaos(dur)
	faults := s.Faults()
	if len(faults) != 3 {
		t.Fatalf("faults = %d, want 3", len(faults))
	}
	gapFloor := 30 * des.Second // default Config.FaultLag
	for i := 1; i < len(faults); i++ {
		prevEnd := faults[i-1].At + faults[i-1].Duration
		if faults[i].At <= prevEnd+gapFloor {
			t.Fatalf("fault %d at %v starts within FaultLag of fault %d ending %v",
				i, faults[i].At, i-1, prevEnd)
		}
	}
}
