package experiment

import (
	"encoding/json"
	"fmt"
	"testing"

	"conscale/internal/controller"
	"conscale/internal/des"
	"conscale/internal/scaling"
)

// ctrlRun returns a small but non-trivial run config: long enough for
// scale decisions and SCT estimates to fire, short enough for the test
// suite.
func ctrlRun(mode scaling.Mode, ctrl string) RunConfig {
	fcfg := scaling.DefaultConfig(mode)
	fcfg.SCT.CollectionWindow = 60 * des.Second
	fcfg.SCT.MinTotalSamples = 30
	fcfg.SCT.MinDistinctBins = 3
	return RunConfig{
		Mode:       mode,
		TraceName:  "big-spike",
		MaxUsers:   1500,
		Duration:   180 * des.Second,
		Seed:       7,
		Controller: ctrl,
		Framework:  &fcfg,
	}
}

// decisionLog serializes the parts of a run that a controller influences
// — the scaling event log, the per-second VM counts, the soft-resource
// history, and the client-observed timeline — into a comparable blob.
func decisionLog(t *testing.T, r *RunResult) string {
	t.Helper()
	blob, err := json.Marshal(struct {
		Events      []scaling.Event
		VMs         []int
		SoftHistory [][2]int
		Timeline    interface{}
	}{r.Events, r.VMs, r.SoftHistory, r.Timeline})
	if err != nil {
		t.Fatalf("marshal decision log: %v", err)
	}
	return string(blob)
}

// TestLegacyAdaptersByteIdentical pins the controller-zoo refactor's
// core guarantee: routing EC2/DCM/ConScale through their legacy
// adapters produces byte-identical trajectories to the pre-zoo Mode
// path.
func TestLegacyAdaptersByteIdentical(t *testing.T) {
	cases := []struct {
		mode scaling.Mode
		ctrl string
	}{
		{scaling.EC2, "ec2"},
		{scaling.DCM, "dcm"},
		{scaling.ConScale, "conscale"},
	}
	for _, tc := range cases {
		t.Run(tc.ctrl, func(t *testing.T) {
			direct := Run(ctrlRun(tc.mode, ""))
			adapted := Run(ctrlRun(tc.mode, tc.ctrl))
			if got, want := decisionLog(t, adapted), decisionLog(t, direct); got != want {
				t.Fatalf("adapter %q diverged from the direct %v path", tc.ctrl, tc.mode)
			}
			if got, want := fmt.Sprintf("%.9f/%.9f/%.9f", adapted.P50, adapted.P95, adapted.P99),
				fmt.Sprintf("%.9f/%.9f/%.9f", direct.P50, direct.P95, direct.P99); got != want {
				t.Fatalf("adapter %q tails %s != direct %s", tc.ctrl, got, want)
			}
		})
	}
}

// TestControllersDeterministic runs every registered controller twice
// with the same seed and trace and requires identical decision logs —
// the property the tournament's rankings and the audit trail depend on.
// Run under -race this also exercises each controller's decision path
// for data races.
func TestControllersDeterministic(t *testing.T) {
	for _, name := range controller.Names() {
		t.Run(name, func(t *testing.T) {
			mode := scaling.EC2
			switch name {
			case "dcm":
				mode = scaling.DCM
			case "conscale":
				mode = scaling.ConScale
			}
			a := Run(ctrlRun(mode, name))
			b := Run(ctrlRun(mode, name))
			if got, want := decisionLog(t, b), decisionLog(t, a); got != want {
				t.Fatalf("controller %q is not deterministic: same seed produced different decision logs", name)
			}
			if len(a.Timeline) == 0 {
				t.Fatalf("controller %q produced an empty timeline", name)
			}
		})
	}
}
