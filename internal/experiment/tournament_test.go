package experiment

import (
	"bytes"
	"strings"
	"testing"

	"conscale/internal/des"
	"conscale/internal/workload"
)

// smokeTournament is a two-controller, one-trace, one-tier factorial —
// the smallest tournament that still exercises ranking.
func smokeTournament(parallel bool) TournamentConfig {
	return TournamentConfig{
		Controllers: []string{"ec2", "target-tracking"},
		Traces:      []string{workload.BigSpike},
		Tiers:       []int{1500},
		Duration:    120 * des.Second,
		Seed:        3,
		Parallel:    parallel,
	}
}

func TestTournamentParallelMatchesSequential(t *testing.T) {
	seq := RunTournament(smokeTournament(false))
	par := RunTournament(smokeTournament(true))
	var a, b bytes.Buffer
	WriteTournamentCSV(&a, seq)
	WriteTournamentCSV(&b, par)
	if a.String() != b.String() {
		t.Fatalf("parallel tournament diverged from sequential:\n--- seq\n%s--- par\n%s", a.String(), b.String())
	}
}

func TestTournamentReportShape(t *testing.T) {
	res := RunTournament(smokeTournament(true))
	if len(res.Cells) != 2 {
		t.Fatalf("want 2 cells, got %d", len(res.Cells))
	}
	if len(res.Ranking) != 2 {
		t.Fatalf("want 2 ranked controllers, got %d", len(res.Ranking))
	}
	for _, c := range res.Cells {
		if c.P99Ms <= 0 || c.Goodput == 0 || c.VMHours <= 0 {
			t.Fatalf("cell %s/%s has empty metrics: %+v", c.Controller, c.Trace, c)
		}
		if c.Actions > 0 && c.AuditEvents == 0 {
			t.Fatalf("cell %s/%s logged %d actions but no audit events — decisions bypassed the trail",
				c.Controller, c.Trace, c.Actions)
		}
	}
	for _, r := range res.Ranking {
		if r.P99Rank < 1 || r.BurnRank < 1 || r.VMRank < 1 {
			t.Fatalf("unassigned rank: %+v", r)
		}
		if r.Score != r.P99Rank+r.BurnRank+r.VMRank {
			t.Fatalf("score is not the rank sum: %+v", r)
		}
	}

	var buf bytes.Buffer
	if err := WriteTournamentReport(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema": "conscale-bench/6"`) {
		t.Fatalf("report missing schema tag:\n%s", buf.String()[:200])
	}
}

func TestAssignRanksSharesExactTies(t *testing.T) {
	ranks := []TournamentRank{
		{Controller: "a", MeanP99Ms: 10},
		{Controller: "b", MeanP99Ms: 10},
		{Controller: "c", MeanP99Ms: 20},
	}
	assignRanks(ranks, func(r TournamentRank) float64 { return r.MeanP99Ms },
		func(r *TournamentRank, v int) { r.P99Rank = v })
	if ranks[0].P99Rank != 1 || ranks[1].P99Rank != 1 {
		t.Fatalf("exact ties must share rank 1: %+v", ranks)
	}
	if ranks[2].P99Rank != 3 {
		t.Fatalf("competition ranking should skip to 3 after a two-way tie: %+v", ranks)
	}
}
