package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"

	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/plot"
)

// WriteTimelineCSV emits a run's per-second series (the data behind the
// Fig. 1/10/11 timelines): time, users, throughput, mean RT (ms), errors,
// VM count, app/db tier CPU, and the soft-resource settings.
func WriteTimelineCSV(w io.Writer, r *RunResult) error {
	if _, err := fmt.Fprintln(w, "time_s,users,throughput_rps,mean_rt_ms,errors,vms,app_cpu,db_cpu,app_threads,db_conns"); err != nil {
		return err
	}
	for i, p := range r.Timeline {
		vms, appCPU, dbCPU := 0, 0.0, 0.0
		threads, conns := 0, 0
		if i < len(r.VMs) {
			vms = r.VMs[i]
		}
		if i < len(r.TierCPU[cluster.App]) {
			appCPU = r.TierCPU[cluster.App][i]
		}
		if i < len(r.TierCPU[cluster.DB]) {
			dbCPU = r.TierCPU[cluster.DB][i]
		}
		if i < len(r.SoftHistory) {
			threads, conns = r.SoftHistory[i][0], r.SoftHistory[i][1]
		}
		rt := p.MeanRT * 1000
		if math.IsNaN(rt) {
			rt = 0
		}
		if _, err := fmt.Fprintf(w, "%.0f,%d,%.1f,%.1f,%d,%d,%.3f,%.3f,%d,%d\n",
			float64(p.Time), p.Users, p.Throughput, rt, p.Errors, vms, appCPU, dbCPU, threads, conns); err != nil {
			return err
		}
	}
	return nil
}

// WriteSweepCSV emits a profiling sweep (Fig. 3/7 panels) as CSV.
func WriteSweepCSV(w io.Writer, s SweepResult) error {
	if _, err := fmt.Fprintln(w, "level,concurrency,throughput_rps,mean_rt_ms"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%d,%.2f,%.1f,%.2f\n",
			p.Level, p.Concurrency, p.Throughput, p.MeanRT*1000); err != nil {
			return err
		}
	}
	return nil
}

// WriteSamplesCSV emits 50 ms window samples (Fig. 5/6 raw data) as CSV.
func WriteSamplesCSV(w io.Writer, res Fig5Result) error {
	if _, err := fmt.Fprintln(w, "time_s,concurrency,throughput_rps,rt_ms,completions,errors"); err != nil {
		return err
	}
	for _, s := range res.Samples {
		rt := s.RT * 1000
		if math.IsNaN(rt) {
			rt = 0
		}
		if _, err := fmt.Fprintf(w, "%.3f,%.2f,%.1f,%.2f,%d,%d\n",
			float64(s.Start), s.Concurrency, s.Throughput, rt, s.Completions, s.Errors); err != nil {
			return err
		}
	}
	return nil
}

// WriteTraceCSV emits the Fig. 9 trace curves side by side.
func WriteTraceCSV(w io.Writer, traces []TraceSeries) error {
	header := []string{"time_s"}
	for _, tr := range traces {
		header = append(header, tr.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	maxLen := 0
	for _, tr := range traces {
		if len(tr.Users) > maxLen {
			maxLen = len(tr.Users)
		}
	}
	for i := 0; i < maxLen; i++ {
		row := []string{fmt.Sprintf("%d", i)}
		for _, tr := range traces {
			v := 0
			if i < len(tr.Users) {
				v = tr.Users[i]
			}
			row = append(row, fmt.Sprintf("%d", v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// RenderTable1 formats Table I in the paper's layout.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-20s %14s %14s\n", "Trace", "EC2 p95/p99", "ConScale p95/p99")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %6.0f/%6.0f  %6.0f/%6.0f ms\n",
			r.Trace, r.EC2P95*1000, r.EC2P99*1000, r.ConScaleP95*1000, r.ConScaleP99*1000)
	}
}

// RenderSweep prints a sweep as an aligned table with the knee marked.
func RenderSweep(w io.Writer, label string, s SweepResult) {
	fmt.Fprintf(w, "%s (Qlower=%d, TPmax=%.0f req/s)\n", label, s.Qlower, s.MaxTP)
	fmt.Fprintf(w, "  %6s %12s %10s\n", "conc", "throughput", "rt")
	for _, p := range s.Points {
		marker := " "
		if p.Level == s.Qlower {
			marker = "*"
		}
		fmt.Fprintf(w, "%s %6d %10.0f/s %8.2fms\n", marker, p.Level, p.Throughput, p.MeanRT*1000)
	}
}

// RenderAblation prints ablation rows.
func RenderAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintln(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-18s p95=%6.0fms p99=%6.0fms %s\n", r.Label, r.P95*1000, r.P99*1000, r.Detail)
	}
}

// RenderCompare summarises a baseline-vs-ConScale pair.
func RenderCompare(w io.Writer, c CompareResult) {
	for _, r := range []*RunResult{c.Baseline, c.ConScale} {
		fmt.Fprintf(w, "%-16s p50=%5.0fms p95=%6.0fms p99=%6.0fms maxRT=%6.0fms err=%.3f goodput=%d\n",
			r.Mode, r.P50*1000, r.P95*1000, r.P99*1000, r.MaxRT()*1000, r.ErrorRate, r.Goodput)
	}
}

// RenderRunSummary prints one run's headline numbers and scaling events.
func RenderRunSummary(w io.Writer, r *RunResult) {
	fmt.Fprintf(w, "%s on %s: p95=%.0fms p99=%.0fms maxRT=%.0fms err=%.3f goodput=%d\n",
		r.Mode, r.Trace, r.P95*1000, r.P99*1000, r.MaxRT()*1000, r.ErrorRate, r.Goodput)
	for _, e := range r.Events {
		fmt.Fprintf(w, "  t=%5.0fs %-10s %-6s %s\n", float64(e.Time), e.Kind, e.Tier, e.Detail)
	}
}

// RenderChaosTable prints the robustness matrix grouped by scenario.
func RenderChaosTable(w io.Writer, rows []ChaosRow) {
	fmt.Fprintf(w, "%-14s %-16s %9s %9s %7s %9s %8s\n",
		"scenario", "controller", "p95", "p99", "err", "goodput", "faults")
	prev := ""
	for _, r := range rows {
		scen := r.Scenario
		if scen == prev {
			scen = ""
		} else if prev != "" {
			fmt.Fprintln(w)
		}
		prev = r.Scenario
		fmt.Fprintf(w, "%-14s %-16s %7.0fms %7.0fms %6.1f%% %9d %8d\n",
			scen, r.Mode.String(), r.P95*1000, r.P99*1000, r.ErrorRate*100, r.Goodput, r.Windows)
	}
}

// RenderChaosTimeline draws a run's per-second response-time chart with a
// fault-window overlay bar ('#' marks seconds inside at least one fault
// window) and lists the activated faults.
func RenderChaosTimeline(w io.Writer, title string, r *RunResult) {
	const width, gutter = 72, 10
	xs := make([]float64, 0, len(r.Timeline))
	ys := make([]float64, 0, len(r.Timeline))
	var maxT float64
	for _, p := range r.Timeline {
		rt := p.MeanRT * 1000
		if math.IsNaN(rt) {
			rt = 0
		}
		xs = append(xs, float64(p.Time))
		ys = append(ys, rt)
		maxT = float64(p.Time)
	}
	fmt.Fprint(w, plot.New(title, width, 12).
		Labels("time (s)", "mean RT (ms)").
		Line(r.Mode.String(), xs, ys, '*').
		Render())
	if maxT <= 0 || len(r.FaultWindows) == 0 {
		return
	}
	// Overlay bar aligned with the chart's plot columns: '#' where the
	// second maps into an active fault window.
	overlay := make([]byte, width)
	for i := range overlay {
		overlay[i] = ' '
	}
	for _, fw := range r.FaultWindows {
		lo := int(float64(fw.Start) / maxT * float64(width-1))
		hi := int(float64(fw.End) / maxT * float64(width-1))
		for col := lo; col <= hi && col < width; col++ {
			if col >= 0 {
				overlay[col] = '#'
			}
		}
	}
	fmt.Fprintf(w, "%*s |%s\n", gutter-2, "faults", overlay)
	for _, fw := range r.FaultWindows {
		fmt.Fprintf(w, "%*s  %s\n", gutter-2, "", fw)
	}
}

// ShortDuration is a reduced run length used by tests and smoke runs.
const ShortDuration = 240 * des.Second
