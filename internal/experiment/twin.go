package experiment

import (
	"fmt"
	"io"

	"conscale/internal/twin"
)

// WriteTwinCSV writes the run's analytical-twin sample series
// (predicted vs observed, residuals, applicability) as CSV. Errors when
// the run was not twin-armed.
func WriteTwinCSV(w io.Writer, r *RunResult) error {
	if r.Twin == nil {
		return fmt.Errorf("experiment: run has no twin (RunConfig.Twin was nil)")
	}
	return twin.WriteCSV(w, r.Twin.Samples())
}
