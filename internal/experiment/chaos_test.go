package experiment

import (
	"bytes"
	"reflect"
	"testing"

	"conscale/internal/chaos"
	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/scaling"
	"conscale/internal/workload"
)

// TestEmptyScheduleIsNoOp is the no-op property: arming an injector with
// an empty schedule must leave the run bit-identical to one with no
// injector at all — same timeline, same tails, same VM series.
func TestEmptyScheduleIsNoOp(t *testing.T) {
	plain := Run(shortRun(scaling.ConScale, workload.LargeVariations, 1))
	cfg := shortRun(scaling.ConScale, workload.LargeVariations, 1)
	cfg.Chaos = chaos.NewSchedule()
	armed := Run(cfg)

	if !reflect.DeepEqual(plain.Timeline, armed.Timeline) {
		t.Fatal("empty schedule changed the timeline")
	}
	if !reflect.DeepEqual(plain.VMs, armed.VMs) {
		t.Fatal("empty schedule changed the VM series")
	}
	if plain.P99 != armed.P99 || plain.P95 != armed.P95 || plain.Goodput != armed.Goodput {
		t.Fatalf("empty schedule changed tails: %v/%v vs %v/%v",
			plain.P95, plain.P99, armed.P95, armed.P99)
	}
	if len(armed.FaultWindows) != 0 {
		t.Fatalf("empty schedule produced %d windows", len(armed.FaultWindows))
	}
}

// TestChaosRunDeterministic: same (seed, schedule, trace, controller) must
// produce byte-identical timeline CSVs.
func TestChaosRunDeterministic(t *testing.T) {
	build := func() *RunResult {
		cfg := shortRun(scaling.ConScale, workload.LargeVariations, 5)
		cfg.Chaos = chaos.NewSchedule(
			chaos.Crash(60, cluster.DB, chaos.PickRandom),
			chaos.Interference(90, 40, cluster.App, chaos.PickRandom, 2.5),
			chaos.Jitter(150, 30, cluster.DB, 50*des.Millisecond),
		)
		return Run(cfg)
	}
	a, b := build(), build()
	var bufA, bufB bytes.Buffer
	if err := WriteTimelineCSV(&bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteTimelineCSV(&bufB, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("same (seed, schedule) produced different timeline CSVs")
	}
	if !reflect.DeepEqual(a.FaultWindows, b.FaultWindows) {
		t.Fatal("same (seed, schedule) produced different fault windows")
	}
}

// TestChaosCrashRecovery: a whole-tier DB crash mid-run must be repaired
// by the framework, and the system must serve traffic again afterwards.
func TestChaosCrashRecovery(t *testing.T) {
	cfg := shortRun(scaling.ConScale, workload.LargeVariations, 1)
	crashAt := 100 * des.Second
	cfg.Chaos = chaos.NewSchedule(chaos.Crash(crashAt, cluster.DB, chaos.WholeTier))
	res := Run(cfg)

	if len(res.FaultWindows) != 1 {
		t.Fatalf("fault windows = %d, want 1", len(res.FaultWindows))
	}
	repaired := false
	for _, e := range res.Events {
		if e.Kind == scaling.Repair && e.Tier == cluster.DB {
			repaired = true
		}
	}
	if !repaired {
		t.Fatal("no repair event after whole-tier crash")
	}
	// Post-recovery the system serves again: some second after the crash
	// plus preparation period shows throughput.
	recoveredTP := 0.0
	for _, p := range res.Timeline {
		if p.Time > crashAt+30*des.Second && p.Throughput > recoveredTP {
			recoveredTP = p.Throughput
		}
	}
	if recoveredTP < 100 {
		t.Fatalf("post-crash peak throughput = %.0f req/s; system never recovered", recoveredTP)
	}
}

// TestChaosScenarioTableShape: one scenario yields one row per controller
// with activated faults and sane statistics.
func TestChaosScenarioTableShape(t *testing.T) {
	rows := ChaosScenarioTable(1, "stragglers", ShortDuration)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 controllers", len(rows))
	}
	wantModes := []scaling.Mode{scaling.EC2, scaling.DCM, scaling.ConScale}
	for i, r := range rows {
		if r.Mode != wantModes[i] {
			t.Fatalf("row %d mode = %v, want %v", i, r.Mode, wantModes[i])
		}
		if r.Scenario != "stragglers" {
			t.Fatalf("row %d scenario = %q", i, r.Scenario)
		}
		if r.Windows == 0 {
			t.Fatalf("row %d: no fault activated", i)
		}
		if r.P99 <= 0 || r.P99 < r.P95 {
			t.Fatalf("row %d: tails p95=%v p99=%v", i, r.P95, r.P99)
		}
	}
	if ChaosScenarioTable(1, "no-such-scenario", ShortDuration) != nil {
		t.Fatal("unknown scenario returned rows")
	}
}

// TestChaosScenariosAreDeterministicSchedules: Build with the same inputs
// must return identical schedules for every canonical scenario.
func TestChaosScenariosAreDeterministicSchedules(t *testing.T) {
	for _, sc := range ChaosScenarios() {
		a := sc.Build(3, ShortDuration).Faults()
		b := sc.Build(3, ShortDuration).Faults()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("scenario %q schedule not deterministic", sc.Name)
		}
		if len(a) == 0 {
			t.Fatalf("scenario %q generated no faults", sc.Name)
		}
	}
}

// TestRenderChaosOutputs smoke-tests the table and timeline renderers.
func TestRenderChaosOutputs(t *testing.T) {
	rows := []ChaosRow{
		{Scenario: "crashes", Mode: scaling.EC2, P95: 0.5, P99: 1.2, ErrorRate: 0.02, Goodput: 10000, Windows: 3},
		{Scenario: "crashes", Mode: scaling.ConScale, P95: 0.2, P99: 0.4, ErrorRate: 0.01, Goodput: 12000, Windows: 3},
	}
	var buf bytes.Buffer
	RenderChaosTable(&buf, rows)
	out := buf.String()
	for _, want := range []string{"crashes", "ec2-autoscaling", "conscale", "1200ms"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}

	cfg := shortRun(scaling.EC2, workload.LargeVariations, 1)
	cfg.Duration = 60 * des.Second
	cfg.Chaos = chaos.NewSchedule(chaos.Jitter(10, 20, cluster.DB, 50*des.Millisecond))
	res := Run(cfg)
	buf.Reset()
	RenderChaosTimeline(&buf, "smoke", res)
	if !bytes.Contains(buf.Bytes(), []byte("#")) {
		t.Fatalf("timeline missing fault overlay:\n%s", buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("edge ->mysql")) {
		t.Fatalf("timeline missing fault listing:\n%s", buf.String())
	}
}
