package experiment

import (
	"bytes"
	"strings"
	"testing"

	"conscale/internal/scaling"
	"conscale/internal/trace"
	"conscale/internal/workload"
)

// tracedShortRun is shortRun with full-rate tracing armed — every request
// sampled, so the observation machinery gets maximum exercise.
func tracedShortRun(mode scaling.Mode, traceName string, seed uint64) RunConfig {
	cfg := shortRun(mode, traceName, seed)
	cfg.Tracing = &trace.Config{SampleRate: 1}
	return cfg
}

func TestTracedRunIsByteIdenticalToUntraced(t *testing.T) {
	// Tracing is pure observation: even at SampleRate 1 the traced run's
	// client-observed timeline must match the untraced run byte for byte.
	plain := Run(shortRun(scaling.ConScale, workload.LargeVariations, 1))
	traced := Run(tracedShortRun(scaling.ConScale, workload.LargeVariations, 1))

	if plain.Goodput != traced.Goodput || plain.P99 != traced.P99 || plain.ErrorRate != traced.ErrorRate {
		t.Fatalf("traced run diverged: goodput %d vs %d, p99 %v vs %v",
			plain.Goodput, traced.Goodput, plain.P99, traced.P99)
	}
	var a, b bytes.Buffer
	if err := WriteTimelineCSV(&a, plain); err != nil {
		t.Fatal(err)
	}
	if err := WriteTimelineCSV(&b, traced); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("traced timeline CSV differs from untraced")
	}

	if traced.Tracer == nil {
		t.Fatal("traced run has no tracer")
	}
	started, sampled, completed, _ := traced.Tracer.Stats()
	if started == 0 || sampled != started {
		t.Fatalf("SampleRate 1 sampled %d of %d requests", sampled, started)
	}
	if completed == 0 {
		t.Fatal("no spans completed")
	}
	if plain.Tracer != nil || plain.Audit != nil {
		t.Fatal("untraced run grew a tracer")
	}
}

func TestTracedRunBlameAccountsForResponseTime(t *testing.T) {
	res := Run(tracedShortRun(scaling.ConScale, workload.LargeVariations, 1))
	rows := res.Tracer.BlameTable()
	if len(rows) == 0 {
		t.Fatal("no blame rows")
	}
	classes := map[string]bool{}
	for _, r := range rows {
		classes[r.Class] = true
		if r.Requests <= 0 || r.RT <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		// The decomposition must account for (almost) the whole response
		// time: every wait and service segment is attributed somewhere, and
		// only scheduling epsilons fall through.
		if tot := r.Sum(); tot < 0.90*r.RT || tot > 1.001*r.RT {
			t.Fatalf("window %v class %s: components %.4fs vs rt %.4fs", r.Window, r.Class, tot, r.RT)
		}
		for tier := trace.TierID(0); tier < trace.NumTiers; tier++ {
			if ws := r.WaitShare(tier); ws < 0 || ws > 1 {
				t.Fatalf("wait share %v out of range", ws)
			}
		}
	}
	for _, want := range []string{"mean", "p50", "p95", "p99"} {
		if !classes[want] {
			t.Fatalf("blame table missing class %q", want)
		}
	}
	if _, ok := trace.BlameSummary(rows, "p95", 0, ShortDuration); !ok {
		t.Fatal("p95 summary over the whole run came up empty")
	}
}

func TestAuditTrailLinesUpWithClusterState(t *testing.T) {
	res := Run(tracedShortRun(scaling.ConScale, workload.LargeVariations, 1))
	if len(res.Audit) == 0 {
		t.Fatal("no audit events")
	}

	// Index audit events by (kind, time) for the lineup checks.
	byKind := map[trace.AuditKind][]trace.AuditEvent{}
	for _, ev := range res.Audit {
		byKind[ev.Kind] = append(byKind[ev.Kind], ev)
	}
	find := func(kind trace.AuditKind, at float64, tier string) bool {
		for _, ev := range byKind[kind] {
			if float64(ev.Time) == at && (tier == "" || ev.Tier == tier) {
				return true
			}
		}
		return false
	}

	// Every scaling-log entry must have an audit counterpart at the same
	// simulated time with a cause annotation.
	for _, e := range res.Events {
		at, tier := float64(e.Time), e.Tier.String()
		var ok bool
		switch {
		case e.Kind == scaling.ScaleOut && strings.HasSuffix(e.Detail, " ready"):
			ok = find(trace.AuditScaleOutReady, at, tier)
		case e.Kind == scaling.ScaleOut && strings.HasPrefix(e.Detail, "scale-up"):
			ok = find(trace.AuditScaleUp, at, tier)
		case e.Kind == scaling.ScaleOut:
			ok = find(trace.AuditThresholdTrigger, at, tier)
		case e.Kind == scaling.ScaleIn:
			ok = find(trace.AuditScaleIn, at, tier)
		case e.Kind == scaling.SoftAdapt:
			ok = find(trace.AuditPoolResize, at, "")
		case e.Kind == scaling.Repair:
			ok = find(trace.AuditRepair, at, tier)
		default:
			t.Fatalf("unmapped event kind %v", e.Kind)
		}
		if !ok {
			t.Errorf("scaling event %v/%s at %v has no audit counterpart", e.Kind, e.Detail, e.Time)
		}
	}
	for _, ev := range res.Audit {
		if ev.Cause == "" {
			t.Errorf("audit event %v at %v has no cause", ev.Kind, ev.Time)
		}
	}

	// Every audited VM arrival must be a real scaling-log entry too — the
	// audit trail cannot invent cluster-state changes.
	for _, ev := range byKind[trace.AuditScaleOutReady] {
		matched := false
		for _, e := range res.Events {
			if e.Kind == scaling.ScaleOut && e.Time == ev.Time && e.Tier.String() == ev.Tier {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("audit %v at %v matches no scaling event", ev.Kind, ev.Time)
		}
	}

	// The last pool-resize decisions must equal the final soft-resource
	// settings the timeline recorded.
	last := map[string]float64{}
	for _, ev := range byKind[trace.AuditPoolResize] {
		last[ev.Detail] = ev.Value
	}
	if len(last) == 0 {
		t.Fatal("ConScale run recorded no pool resizes")
	}
	final := res.SoftHistory[len(res.SoftHistory)-1]
	if v, ok := last["app threads"]; ok && int(v) != final[0] {
		t.Errorf("last audited app-thread resize %v != final setting %d", v, final[0])
	}
	if v, ok := last["db conns per app"]; ok && int(v) != final[1] {
		t.Errorf("last audited db-conn resize %v != final setting %d", v, final[1])
	}
}

func TestBlameRunsShort(t *testing.T) {
	results := BlameRuns(1, ShortDuration, 5000)
	if len(results) != 3 {
		t.Fatalf("blame compares %d controllers", len(results))
	}
	for _, b := range results {
		if b.Res.Tracer == nil || len(b.Rows) == 0 {
			t.Fatalf("%s: no traced blame data", b.Mode)
		}
		if len(b.Res.Audit) == 0 {
			t.Fatalf("%s: empty audit trail", b.Mode)
		}
		if len(b.Res.Tracer.Slowest()) == 0 {
			t.Fatalf("%s: empty slowest-request reservoir", b.Mode)
		}
	}
	// The load burst must force at least the baseline controller through a
	// scale-out transition, or the blame comparison has nothing to show.
	if _, _, ok := results[0].TransitionWindow(); !ok {
		t.Fatal("EC2 run never scaled out the app tier")
	}

	var buf bytes.Buffer
	RenderBlame(&buf, results)
	out := buf.String()
	for _, want := range []string{"latency blame", "ec2-autoscaling", "conscale", "app pool-wait", "audit events"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
