package experiment

import (
	"bytes"
	"testing"

	"conscale/internal/des"
	"conscale/internal/scaling"
)

// smallScaleConfig is a fast sweep point for tests: 4 cells, 3000
// clients, 40 simulated seconds.
func smallScaleConfig(mode scaling.Mode, parallel bool) ScaleConfig {
	cfg := DefaultScaleConfig(mode, 3000)
	cfg.Cells = 4
	cfg.Duration = 40 * des.Second
	cfg.WarmupSkip = 10 * des.Second
	cfg.Parallel = parallel
	return cfg
}

func TestRunScaleSmoke(t *testing.T) {
	res := RunScale(smallScaleConfig(scaling.ConScale, false))
	if res.Requests == 0 || res.Goodput == 0 {
		t.Fatalf("no traffic: requests=%d goodput=%d", res.Requests, res.Goodput)
	}
	if res.ErrorRate > 0.05 {
		t.Fatalf("error rate %.3f too high for an underloaded fleet", res.ErrorRate)
	}
	if res.P99 <= 0 || res.P99 < res.P50 {
		t.Fatalf("implausible tails: p50=%.4fs p99=%.4fs", res.P50, res.P99)
	}
	// Every request crosses the network edge twice; the floor on any RT
	// is 2×EdgeDelay = 40 ms.
	if res.P50 < 0.040 {
		t.Fatalf("p50=%.4fs below the 2×edge-delay floor", res.P50)
	}
	if res.Events == 0 || res.WallSec <= 0 || res.EventsPerSec <= 0 {
		t.Fatalf("missing execution metrics: events=%d wall=%.3f rate=%.0f", res.Events, res.WallSec, res.EventsPerSec)
	}
	if res.VMs < 3*res.Cells {
		t.Fatalf("fleet has %d VMs, want at least 3 per cell", res.VMs)
	}
	if res.PeakHeapBytes == 0 {
		t.Fatal("peak heap was not sampled")
	}
	if len(res.Timeline) < 35 {
		t.Fatalf("timeline has %d points, want ~40", len(res.Timeline))
	}
}

// TestScaleStripedMatchesSequential is the scale mode's core regression:
// the same configuration run with sequential window execution and with
// the parallel worker pool must produce byte-identical timeline CSVs and
// identical scalar results. Worker count is forced above 1 so the
// parallel path actually fans out even on single-CPU CI machines.
func TestScaleStripedMatchesSequential(t *testing.T) {
	render := func(workers int) (string, *ScaleResult) {
		cfg := smallScaleConfig(scaling.ConScale, workers > 1)
		cfg.Workers = workers
		res := RunScale(cfg)
		var buf bytes.Buffer
		WriteScaleTimelineCSV(&buf, res)
		return buf.String(), res
	}
	seqCSV, seq := render(1)
	// 4 pooled workers over 5 shards, plus an over-provisioned count that
	// must clamp to the shard count — both forced above 1 so the pool
	// actually fans out even on single-CPU CI machines.
	for _, workers := range []int{4, 7} {
		parCSV, par := render(workers)
		if seqCSV != parCSV {
			t.Fatalf("workers=%d: timeline CSV diverges between sequential and striped-parallel execution:\nseq:\n%s\npar:\n%s",
				workers, seqCSV, parCSV)
		}
		if seq.Events != par.Events {
			t.Fatalf("workers=%d: event counts diverge: seq=%d par=%d", workers, seq.Events, par.Events)
		}
		if seq.P99 != par.P99 || seq.Goodput != par.Goodput || seq.Requests != par.Requests {
			t.Fatalf("workers=%d: results diverge: seq p99=%v goodput=%d, par p99=%v goodput=%d",
				workers, seq.P99, seq.Goodput, par.P99, par.Goodput)
		}
		if seq.VMs != par.VMs || seq.ScaleActions != par.ScaleActions {
			t.Fatalf("workers=%d: controller state diverges: seq vms=%d actions=%d, par vms=%d actions=%d",
				workers, seq.VMs, seq.ScaleActions, par.VMs, par.ScaleActions)
		}
		if par.Workers < 2 {
			t.Fatalf("workers=%d: run reports pool size %d, want >1", workers, par.Workers)
		}
	}
}

// TestScaleDeterministicAcrossRuns pins run-to-run determinism (same
// seed, same trajectory) — the property every other regression test
// builds on.
func TestScaleDeterministicAcrossRuns(t *testing.T) {
	a := RunScale(smallScaleConfig(scaling.EC2, false))
	b := RunScale(smallScaleConfig(scaling.EC2, false))
	if a.Events != b.Events || a.P99 != b.P99 || a.Goodput != b.Goodput {
		t.Fatalf("same-seed runs diverge: events %d vs %d, p99 %v vs %v", a.Events, b.Events, a.P99, b.P99)
	}
}

func TestScaleTelemetryHooks(t *testing.T) {
	cfg := smallScaleConfig(scaling.EC2, false)
	cfg.Telemetry = true
	res := RunScale(cfg)
	if res.Registry == nil {
		t.Fatal("telemetry registry missing")
	}
	var text bytes.Buffer
	if err := res.Registry.WriteProm(&text); err != nil {
		t.Fatalf("exposition failed: %v", err)
	}
	for _, want := range []string{"conscale_scale_arrivals_total", "conscale_client_rt_seconds"} {
		if !bytes.Contains(text.Bytes(), []byte(want)) {
			t.Fatalf("exposition lacks %s:\n%s", want, text.String())
		}
	}
}

func TestScaleRowAndReport(t *testing.T) {
	res := RunScale(smallScaleConfig(scaling.DCM, false))
	row := res.Row()
	if row.Mode != "dcm" || row.Clients != 3000 || row.P99Ms <= 0 {
		t.Fatalf("bad row: %+v", row)
	}
	var buf bytes.Buffer
	if err := WriteScaleReport(&buf, []ScaleRow{row}); err != nil {
		t.Fatalf("report write failed: %v", err)
	}
	for _, want := range []string{`"schema": "conscale-bench/7"`, `"mode": "dcm"`, `"workers": 1`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("report lacks %s:\n%s", want, buf.String())
		}
	}
}
