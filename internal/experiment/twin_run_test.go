package experiment

import (
	"bytes"
	"reflect"
	"testing"

	"conscale/internal/forensics"
	"conscale/internal/scaling"
	"conscale/internal/trace"
	"conscale/internal/twin"
	"conscale/internal/workload"
)

// TestTwinRunByteIdentical is the acceptance-criterion test: arming the
// analytical twin must leave the simulated trajectory bit-identical to
// a bare run. The twin's submit tap only reads the clock and its tick
// only calls read-only cluster accessors.
func TestTwinRunByteIdentical(t *testing.T) {
	bare := Run(shortRun(scaling.ConScale, workload.BigSpike, 3))

	cfg := shortRun(scaling.ConScale, workload.BigSpike, 3)
	cfg.Tracing = &trace.Config{SampleRate: 1.0 / 8}
	cfg.Forensics = &forensics.Config{}
	cfg.Twin = &twin.Config{}
	armed := Run(cfg)

	var a, b bytes.Buffer
	if err := WriteTimelineCSV(&a, bare); err != nil {
		t.Fatal(err)
	}
	if err := WriteTimelineCSV(&b, armed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("arming the twin changed the timeline CSV")
	}
	if !reflect.DeepEqual(bare.VMs, armed.VMs) {
		t.Fatal("arming the twin changed the VM series")
	}
	if armed.Twin == nil {
		t.Fatal("armed run has no twin handle")
	}
	if armed.Twin.Ticks() == 0 {
		t.Fatal("twin evaluated no snapshots")
	}
	if len(armed.Twin.Samples()) == 0 {
		t.Fatal("twin retained no samples")
	}
}

// TestTwinRunCollectsApplicableSamples checks the twin finds applicable
// steady windows on a gentle trace and marks the spike transition
// inapplicable rather than flagging drift off a scale-out.
func TestTwinRunCollectsApplicableSamples(t *testing.T) {
	cfg := shortRun(scaling.ConScale, workload.SlowlyVarying, 1)
	cfg.MaxUsers = 2500
	cfg.Twin = &twin.Config{}
	res := Run(cfg)
	if res.Twin == nil {
		t.Fatal("no twin")
	}
	var applicable, inapplicable int
	for _, s := range res.Twin.Samples() {
		if s.Applicable {
			applicable++
		} else {
			inapplicable++
		}
	}
	if applicable == 0 {
		t.Fatalf("no applicable samples out of %d", applicable+inapplicable)
	}
	// The sample series must survive CSV export with one row per tick.
	var buf bytes.Buffer
	if err := WriteTwinCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(buf.Bytes(), []byte("\n"))
	if lines != len(res.Twin.Samples())+1 {
		t.Fatalf("csv rows = %d, samples = %d", lines, len(res.Twin.Samples()))
	}
}
