// Package server models a component server (one VM) of an n-tier
// application: a bounded thread pool admitting requests, FCFS scheduling of
// CPU bursts over the VM's cores, an optional disk, synchronous downstream
// calls that hold the caller's thread (the paper's thread-based RPC), and a
// multithreading-overhead model that inflates CPU demand at high
// concurrency. Together these produce the three-stage
// concurrency-throughput curve of the SCT model (paper Section III-A).
package server

import (
	"conscale/internal/des"
	"conscale/internal/metrics"
)

// ProcPool is a multi-server FCFS resource: n identical channels serving
// bursts to completion in submission order. It models both the VM's vCPU
// set (n = cores) and its disk (n = I/O channels).
type ProcPool struct {
	eng      *des.Engine
	channels int
	busy     int
	queue    []burst
	util     *metrics.TimeWeighted

	totalBusy float64 // accumulated busy-channel-seconds (for tests)
}

type burst struct {
	duration des.Time
	done     func()
}

// NewProcPool returns a pool with the given number of channels, reporting
// utilization into a window of utilWindow (1 s for the controllers).
func NewProcPool(eng *des.Engine, channels int, utilWindow des.Time) *ProcPool {
	if channels <= 0 {
		panic("server: non-positive channel count")
	}
	return &ProcPool{
		eng:      eng,
		channels: channels,
		util:     metrics.NewTimeWeighted(utilWindow),
	}
}

// Channels returns the current channel count.
func (p *ProcPool) Channels() int { return p.channels }

// SetChannels changes the channel count at runtime (vertical scaling).
// Growth dispatches queued bursts immediately; shrinkage lets running
// bursts finish (busy may exceed channels transiently).
func (p *ProcPool) SetChannels(n int) {
	if n <= 0 {
		panic("server: non-positive channel count")
	}
	p.channels = n
	p.dispatch()
	p.meter()
}

// Demand requests a burst of d seconds of service; done fires when the
// burst completes. Zero-duration bursts complete on the next event.
func (p *ProcPool) Demand(d des.Time, done func()) {
	if d < 0 {
		panic("server: negative demand")
	}
	p.queue = append(p.queue, burst{duration: d, done: done})
	p.dispatch()
}

func (p *ProcPool) dispatch() {
	for p.busy < p.channels && len(p.queue) > 0 {
		b := p.queue[0]
		p.queue = p.queue[1:]
		p.busy++
		p.meter()
		p.totalBusy += float64(b.duration)
		p.eng.After(b.duration, func() {
			p.busy--
			p.meter()
			b.done()
			p.dispatch()
		})
	}
}

func (p *ProcPool) meter() {
	u := float64(p.busy) / float64(p.channels)
	if u > 1 {
		u = 1
	}
	p.util.Set(p.eng.Now(), u)
}

// Utilization returns the mean utilization (0..1) of the current window up
// to now — the 1-second CPU signal the scaling controllers threshold on.
func (p *ProcPool) Utilization() float64 { return p.util.WindowMean(p.eng.Now()) }

// FlushUtil drains completed utilization windows up to now.
func (p *ProcPool) FlushUtil() []metrics.TWSample { return p.util.Flush(p.eng.Now()) }

// QueueLen returns the number of waiting bursts (diagnostics).
func (p *ProcPool) QueueLen() int { return len(p.queue) }

// Busy returns the number of busy channels.
func (p *ProcPool) Busy() int { return p.busy }

// TotalBusySeconds returns accumulated busy channel-seconds.
func (p *ProcPool) TotalBusySeconds() float64 { return p.totalBusy }

// ConnPool is a counted semaphore with FIFO waiters: the app server's DB
// connection pool, whose size caps the concurrency the app tier can impose
// on the downstream DB tier (the paper's #DBconnections soft resource).
type ConnPool struct {
	limit   int
	inUse   int
	waiters []func()
}

// NewConnPool returns a pool with the given size.
func NewConnPool(limit int) *ConnPool {
	if limit <= 0 {
		panic("server: non-positive pool limit")
	}
	return &ConnPool{limit: limit}
}

// Limit returns the current pool size.
func (c *ConnPool) Limit() int { return c.limit }

// InUse returns the number of held connections.
func (c *ConnPool) InUse() int { return c.inUse }

// Waiting returns the number of queued acquirers.
func (c *ConnPool) Waiting() int { return len(c.waiters) }

// SetLimit resizes the pool at runtime. Growth admits waiters immediately;
// shrinkage takes effect as connections are released.
func (c *ConnPool) SetLimit(n int) {
	if n <= 0 {
		panic("server: non-positive pool limit")
	}
	c.limit = n
	c.admit()
}

// Acquire grants a connection to fn, immediately if one is free, otherwise
// when a holder releases. fn must eventually lead to a Release call.
func (c *ConnPool) Acquire(fn func()) {
	c.waiters = append(c.waiters, fn)
	c.admit()
}

// Release returns a connection to the pool.
func (c *ConnPool) Release() {
	if c.inUse <= 0 {
		panic("server: Release without Acquire")
	}
	c.inUse--
	c.admit()
}

func (c *ConnPool) admit() {
	for c.inUse < c.limit && len(c.waiters) > 0 {
		fn := c.waiters[0]
		c.waiters = c.waiters[1:]
		c.inUse++
		fn()
	}
}

// Overhead is the multithreading-overhead model: the factor by which a
// server's CPU demand is inflated as a function of its active thread count.
// It models the lock contention, cache-coherence crosstalk, context
// switching, and GC effects the paper cites as the cause of the descending
// stage ([10], [19]-[21]).
type Overhead struct {
	// Alpha scales the penalty per excess thread.
	Alpha float64
	// KneePerCore is the active-thread count per core below which the
	// penalty is zero.
	KneePerCore float64
	// Power is the super-linear exponent of the penalty.
	Power float64
}

// DefaultOverhead returns the model used across the reproduction: no
// penalty below 22 threads/core, then a gently super-linear climb that
// roughly halves throughput by ~60 excess threads — matching the decline
// slopes of the paper's Fig. 6a/7 scatter plots.
func DefaultOverhead() Overhead {
	return Overhead{Alpha: 0.015, KneePerCore: 22, Power: 1.15}
}

// Factor returns the CPU inflation (>= 1) at the given active thread count
// and core count.
func (o Overhead) Factor(active, cores int) float64 {
	knee := o.KneePerCore * float64(cores)
	excess := float64(active) - knee
	if excess <= 0 || o.Alpha <= 0 {
		return 1
	}
	return 1 + o.Alpha*pow(excess, o.Power)
}

// pow is a small positive-base power; math.Pow is avoided in the hot path
// only when the exponent is 1.
func pow(base, exp float64) float64 {
	if exp == 1 {
		return base
	}
	return mathPow(base, exp)
}
