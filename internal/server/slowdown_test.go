package server

import (
	"testing"

	"conscale/internal/des"
	"conscale/internal/rng"
)

// slowdownConfig is a deterministic single-core server (no demand jitter)
// so burst durations are exactly predictable.
func slowdownConfig() Config {
	return Config{
		Name:        "victim",
		Cores:       1,
		ThreadLimit: 4,
		AcceptQueue: 16,
	}
}

func TestCPUSlowdownStretchesBursts(t *testing.T) {
	run := func(factor float64) des.Time {
		eng := des.New()
		s := New(eng, rng.New(1), slowdownConfig())
		if factor != 1 {
			s.SetCPUSlowdown(factor)
		}
		var finished des.Time
		s.Submit(&Request{
			Phases: []Phase{{Kind: PhaseCPU, Duration: 10 * des.Millisecond}},
			Done:   func(ok bool) { finished = eng.Now() },
		})
		eng.Run()
		return finished
	}
	base := run(1)
	slowed := run(2.5)
	if base <= 0 {
		t.Fatal("baseline request never finished")
	}
	ratio := float64(slowed) / float64(base)
	if ratio < 2.4 || ratio > 2.6 {
		t.Fatalf("slowdown x2.5 stretched burst by x%.2f", ratio)
	}
}

func TestCPUSlowdownRestores(t *testing.T) {
	eng := des.New()
	s := New(eng, rng.New(1), slowdownConfig())
	s.SetCPUSlowdown(4)
	s.SetCPUSlowdown(s.CPUSlowdown() / 4)
	if got := s.CPUSlowdown(); got != 1 {
		t.Fatalf("CPUSlowdown = %v after restore", got)
	}
}

func TestCPUSlowdownRejectsNonPositive(t *testing.T) {
	eng := des.New()
	s := New(eng, rng.New(1), slowdownConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.SetCPUSlowdown(0)
}
