package server

import (
	"math"
	"testing"

	"conscale/internal/des"
	"conscale/internal/rng"
)

func newTestServer(eng *des.Engine, cfg Config) *Server {
	if cfg.Name == "" {
		cfg.Name = "test"
	}
	if cfg.Cores == 0 {
		cfg.Cores = 1
	}
	if cfg.ThreadLimit == 0 {
		cfg.ThreadLimit = 10
	}
	if cfg.AcceptQueue == 0 {
		cfg.AcceptQueue = 100
	}
	return New(eng, rng.New(1), cfg)
}

func TestServerSingleCPURequest(t *testing.T) {
	eng := des.New()
	s := newTestServer(eng, Config{})
	var ok bool
	var end des.Time
	s.Submit(&Request{
		Phases: []Phase{{Kind: PhaseCPU, Duration: 0.010}},
		Done:   func(o bool) { ok = o; end = eng.Now() },
	})
	eng.Run()
	if !ok {
		t.Fatal("request failed")
	}
	if math.Abs(float64(end)-0.010) > 1e-9 {
		t.Fatalf("completed at %v, want 0.010", end)
	}
}

func TestServerThreadLimitEnforced(t *testing.T) {
	eng := des.New()
	s := newTestServer(eng, Config{ThreadLimit: 2, Cores: 8})
	maxActive := 0
	for i := 0; i < 6; i++ {
		s.Submit(&Request{
			Phases: []Phase{{Kind: PhaseSleep, Duration: 1}},
			Done:   func(bool) {},
		})
	}
	eng.Every(0.1, func() {
		if s.Active() > maxActive {
			maxActive = s.Active()
		}
		if eng.Now() > 5 {
			eng.Stop()
		}
	})
	eng.Run()
	if maxActive != 2 {
		t.Fatalf("maxActive = %d, want 2", maxActive)
	}
}

func TestServerAcceptQueueOverflowRejects(t *testing.T) {
	eng := des.New()
	s := newTestServer(eng, Config{ThreadLimit: 1, AcceptQueue: 2})
	okCount, failCount := 0, 0
	done := func(ok bool) {
		if ok {
			okCount++
		} else {
			failCount++
		}
	}
	for i := 0; i < 5; i++ {
		s.Submit(&Request{Phases: []Phase{{Kind: PhaseSleep, Duration: 1}}, Done: done})
	}
	eng.Run()
	// 1 in service + 2 queued accepted; 2 rejected.
	if okCount != 3 || failCount != 2 {
		t.Fatalf("ok/fail = %d/%d, want 3/2", okCount, failCount)
	}
}

func TestServerQueueingDelaysResponse(t *testing.T) {
	eng := des.New()
	s := newTestServer(eng, Config{ThreadLimit: 1})
	var ends []des.Time
	for i := 0; i < 3; i++ {
		s.Submit(&Request{
			Phases: []Phase{{Kind: PhaseCPU, Duration: 0.1}},
			Done:   func(bool) { ends = append(ends, eng.Now()) },
		})
	}
	eng.Run()
	want := []des.Time{0.1, 0.2, 0.3}
	for i := range want {
		if math.Abs(float64(ends[i]-want[i])) > 1e-9 {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestServerRTIncludesQueueTime(t *testing.T) {
	eng := des.New()
	s := newTestServer(eng, Config{ThreadLimit: 1})
	for i := 0; i < 2; i++ {
		s.Submit(&Request{Phases: []Phase{{Kind: PhaseCPU, Duration: 0.1}}, Done: func(bool) {}})
	}
	eng.Run()
	eng.RunUntil(1) // let the final window close before flushing
	samples := s.FlushFine()
	totalRT := 0.0
	n := 0
	for _, w := range samples {
		if w.Completions > 0 {
			totalRT += w.RT * float64(w.Completions)
			n += w.Completions
		}
	}
	// RT1 = 0.1, RT2 = 0.2 (waited 0.1) → mean 0.15.
	if n != 2 || math.Abs(totalRT/float64(n)-0.15) > 1e-9 {
		t.Fatalf("mean RT = %v over %d, want 0.15", totalRT/float64(n), n)
	}
}

func TestServerDownstreamCallHoldsThread(t *testing.T) {
	eng := des.New()
	db := newTestServer(eng, Config{Name: "db", ThreadLimit: 10})
	app := newTestServer(eng, Config{Name: "app", ThreadLimit: 10})
	var end des.Time
	app.Submit(&Request{
		Phases: []Phase{
			{Kind: PhaseCPU, Duration: 0.010},
			{Kind: PhaseCall, Call: &OutCall{
				Target: db,
				Build:  func() []Phase { return []Phase{{Kind: PhaseCPU, Duration: 0.020}} },
			}},
			{Kind: PhaseCPU, Duration: 0.005},
		},
		Done: func(bool) { end = eng.Now() },
	})
	var activeDuringCall int
	eng.At(0.020, func() { activeDuringCall = app.Active() })
	eng.Run()
	if activeDuringCall != 1 {
		t.Fatalf("app thread released during downstream call (active=%d)", activeDuringCall)
	}
	if math.Abs(float64(end)-0.035) > 1e-9 {
		t.Fatalf("end = %v, want 0.035", end)
	}
}

func TestServerConnPoolGatesDownstream(t *testing.T) {
	eng := des.New()
	db := newTestServer(eng, Config{Name: "db", ThreadLimit: 100})
	app := newTestServer(eng, Config{Name: "app", ThreadLimit: 100, Cores: 8})
	pool := NewConnPool(2)
	maxDB := 0
	for i := 0; i < 8; i++ {
		app.Submit(&Request{
			Phases: []Phase{{Kind: PhaseCall, Call: &OutCall{
				Target: db,
				Pool:   pool,
				Build:  func() []Phase { return []Phase{{Kind: PhaseSleep, Duration: 0.1}} },
			}}},
			Done: func(bool) {},
		})
	}
	eng.Every(0.01, func() {
		if db.Active() > maxDB {
			maxDB = db.Active()
		}
		if eng.Now() > 2 {
			eng.Stop()
		}
	})
	eng.Run()
	if maxDB > 2 {
		t.Fatalf("DB concurrency %d exceeded pool limit 2", maxDB)
	}
	if pool.InUse() != 0 {
		t.Fatalf("pool leaked: InUse = %d", pool.InUse())
	}
}

func TestServerDownstreamFailurePropagates(t *testing.T) {
	eng := des.New()
	db := newTestServer(eng, Config{Name: "db", ThreadLimit: 1, AcceptQueue: 1})
	app := newTestServer(eng, Config{Name: "app", ThreadLimit: 100, Cores: 8})
	okCount, failCount := 0, 0
	for i := 0; i < 5; i++ {
		app.Submit(&Request{
			Phases: []Phase{{Kind: PhaseCall, Call: &OutCall{
				Target: db,
				Build:  func() []Phase { return []Phase{{Kind: PhaseSleep, Duration: 0.5}} },
			}}},
			Done: func(ok bool) {
				if ok {
					okCount++
				} else {
					failCount++
				}
			},
		})
	}
	eng.Run()
	if okCount != 2 || failCount != 3 {
		t.Fatalf("ok/fail = %d/%d, want 2/3", okCount, failCount)
	}
}

func TestServerDrainingRejects(t *testing.T) {
	eng := des.New()
	s := newTestServer(eng, Config{})
	s.SetDraining(true)
	var ok bool
	var called bool
	s.Submit(&Request{Phases: nil, Done: func(o bool) { ok = o; called = true }})
	eng.Run()
	if !called || ok {
		t.Fatalf("draining server: called=%v ok=%v, want called rejection", called, ok)
	}
}

func TestServerSetThreadLimitGrowAdmitsQueued(t *testing.T) {
	eng := des.New()
	s := newTestServer(eng, Config{ThreadLimit: 1, Cores: 8})
	started := 0
	for i := 0; i < 4; i++ {
		s.Submit(&Request{
			Phases: []Phase{{Kind: PhaseSleep, Duration: 10}},
			Done:   func(bool) {},
		})
	}
	eng.At(1, func() {
		started = s.Active()
		s.SetThreadLimit(4)
	})
	eng.At(1.5, func() {
		if s.Active() != 4 {
			t.Errorf("after grow Active = %d, want 4", s.Active())
		}
		eng.Stop()
	})
	eng.Run()
	if started != 1 {
		t.Fatalf("before grow Active = %d, want 1", started)
	}
}

func TestServerOverheadSlowsHighConcurrency(t *testing.T) {
	// Same total work, but run once with 1 thread and once with high
	// concurrency past the knee: the overloaded run must take longer.
	run := func(threads int) des.Time {
		eng := des.New()
		s := newTestServer(eng, Config{
			ThreadLimit: threads,
			AcceptQueue: 1000,
			Overhead:    Overhead{Alpha: 0.05, KneePerCore: 5, Power: 1},
		})
		for i := 0; i < 50; i++ {
			s.Submit(&Request{Phases: []Phase{{Kind: PhaseCPU, Duration: 0.01}}, Done: func(bool) {}})
		}
		return eng.Run()
	}
	serial := run(1)
	overloaded := run(50)
	if overloaded <= serial {
		t.Fatalf("overloaded run (%v) not slower than serial (%v)", overloaded, serial)
	}
}

func TestServerDemandJitterPreservesMean(t *testing.T) {
	eng := des.New()
	s := newTestServer(eng, Config{DemandCV: 0.4, ThreadLimit: 1, AcceptQueue: 100000})
	const n = 2000
	var last des.Time
	for i := 0; i < n; i++ {
		s.Submit(&Request{Phases: []Phase{{Kind: PhaseCPU, Duration: 0.01}}, Done: func(bool) { last = eng.Now() }})
	}
	eng.Run()
	mean := float64(last) / n
	if math.Abs(mean-0.01)/0.01 > 0.05 {
		t.Fatalf("mean service time with jitter = %v, want ~0.01", mean)
	}
}

func TestServerDiskPhase(t *testing.T) {
	eng := des.New()
	s := newTestServer(eng, Config{DiskChans: 1, ThreadLimit: 4, Cores: 4})
	var ends []des.Time
	for i := 0; i < 2; i++ {
		s.Submit(&Request{
			Phases: []Phase{{Kind: PhaseDisk, Duration: 0.1}},
			Done:   func(bool) { ends = append(ends, eng.Now()) },
		})
	}
	eng.Run()
	// One disk channel: second request serialises behind the first.
	if math.Abs(float64(ends[1])-0.2) > 1e-9 {
		t.Fatalf("second disk request ended at %v, want 0.2", ends[1])
	}
}

func TestServerDiskPhaseWithoutDiskPanics(t *testing.T) {
	eng := des.New()
	s := newTestServer(eng, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for disk phase without disk")
		}
	}()
	s.Submit(&Request{Phases: []Phase{{Kind: PhaseDisk, Duration: 0.1}}, Done: func(bool) {}})
	eng.Run()
}

func TestServerVerticalScaling(t *testing.T) {
	eng := des.New()
	s := newTestServer(eng, Config{Cores: 1, ThreadLimit: 10})
	var lastEnd des.Time
	for i := 0; i < 10; i++ {
		s.Submit(&Request{Phases: []Phase{{Kind: PhaseCPU, Duration: 1}}, Done: func(bool) { lastEnd = eng.Now() }})
	}
	eng.At(0.5, func() { s.SetCores(2) })
	eng.Run()
	// 10 seconds of work: 0.5s at 1 core, rest at 2 cores →
	// 0.5 + (10-0.5)/2 = 5.25s. (FCFS burst boundaries make it slightly
	// coarser; allow a margin.)
	if lastEnd > 6 {
		t.Fatalf("scale-up ineffective: finished at %v", lastEnd)
	}
	if s.Cores() != 2 {
		t.Fatalf("Cores = %d", s.Cores())
	}
}

func TestServerFineSamplesThroughput(t *testing.T) {
	eng := des.New()
	s := newTestServer(eng, Config{ThreadLimit: 1})
	const n = 20
	for i := 0; i < n; i++ {
		s.Submit(&Request{Phases: []Phase{{Kind: PhaseCPU, Duration: 0.010}}, Done: func(bool) {}})
	}
	eng.Run()
	eng.RunUntil(1)
	total := 0
	for _, w := range s.FlushFine() {
		total += w.Completions
	}
	if total != n {
		t.Fatalf("windows recorded %d completions, want %d", total, n)
	}
}

func TestServerConfigValidation(t *testing.T) {
	eng := des.New()
	cases := []Config{
		{Cores: 0, ThreadLimit: 1},
		{Cores: 1, ThreadLimit: 0},
		{Cores: 1, ThreadLimit: 1, AcceptQueue: -1},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			New(eng, rng.New(1), cfg)
		}()
	}
}

func TestKillFailsQueuedAndInFlight(t *testing.T) {
	eng := des.New()
	s := newTestServer(eng, Config{ThreadLimit: 2, AcceptQueue: 50})
	okCount, failCount := 0, 0
	done := func(ok bool) {
		if ok {
			okCount++
		} else {
			failCount++
		}
	}
	for i := 0; i < 6; i++ {
		s.Submit(&Request{Phases: []Phase{{Kind: PhaseSleep, Duration: 1}}, Done: done})
	}
	eng.At(0.5, func() { s.Kill() })
	eng.Run()
	if !s.Killed() || !s.Draining() {
		t.Fatal("server not marked killed")
	}
	if okCount != 0 || failCount != 6 {
		t.Fatalf("ok/fail = %d/%d, want 0/6", okCount, failCount)
	}
	// New submissions are rejected too.
	rejected := false
	s.Submit(&Request{Done: func(ok bool) { rejected = !ok }})
	eng.Run()
	if !rejected {
		t.Fatal("post-kill submission accepted")
	}
}

func TestKillMidMultiPhaseFailsAtBoundary(t *testing.T) {
	eng := des.New()
	s := newTestServer(eng, Config{ThreadLimit: 1})
	var outcome *bool
	s.Submit(&Request{
		Phases: []Phase{
			{Kind: PhaseSleep, Duration: 0.2},
			{Kind: PhaseSleep, Duration: 0.2},
			{Kind: PhaseSleep, Duration: 0.2},
		},
		Done: func(ok bool) { outcome = &ok },
	})
	eng.At(0.3, func() { s.Kill() }) // mid second phase
	end := eng.Run()
	if outcome == nil || *outcome {
		t.Fatal("in-flight request did not fail after kill")
	}
	// It failed at the next phase boundary (0.4), not at the full 0.6.
	if end > 0.5 {
		t.Fatalf("request ran to completion (%v) despite kill", end)
	}
}

func TestProcPoolShrinkLazy(t *testing.T) {
	eng := des.New()
	p := NewProcPool(eng, 2, des.Second)
	var ends []des.Time
	for i := 0; i < 4; i++ {
		p.Demand(1, func() { ends = append(ends, eng.Now()) })
	}
	eng.At(0.5, func() { p.SetChannels(1) })
	eng.Run()
	// First two finish at 1 (already running); remaining two serialise on
	// the single channel: 2 and 3.
	want := []des.Time{1, 1, 2, 3}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if p.Channels() != 1 {
		t.Fatalf("Channels = %d", p.Channels())
	}
}

func TestProcPoolQueueLen(t *testing.T) {
	eng := des.New()
	p := NewProcPool(eng, 1, des.Second)
	for i := 0; i < 3; i++ {
		p.Demand(1, func() {})
	}
	if p.QueueLen() != 2 || p.Busy() != 1 {
		t.Fatalf("QueueLen/Busy = %d/%d", p.QueueLen(), p.Busy())
	}
	eng.Run()
	if p.QueueLen() != 0 || p.Busy() != 0 {
		t.Fatal("pool not drained")
	}
}

func TestServerRecorderAccessor(t *testing.T) {
	eng := des.New()
	s := newTestServer(eng, Config{})
	if s.Recorder() == nil {
		t.Fatal("Recorder nil")
	}
	if s.Name() != "test" {
		t.Fatalf("Name = %s", s.Name())
	}
	if s.DiskUtilization() != 0 {
		t.Fatal("diskless server should report 0 disk util")
	}
}

func TestOverheadPowerOneFastPath(t *testing.T) {
	o := Overhead{Alpha: 0.1, KneePerCore: 2, Power: 1}
	if got := o.Factor(12, 1); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("Factor = %v, want 2.0 (1 + 0.1*10)", got)
	}
}
