package server

import (
	"fmt"
	"math"

	"conscale/internal/admission"
	"conscale/internal/des"
	"conscale/internal/metrics"
	"conscale/internal/rng"
	"conscale/internal/trace"
)

func mathPow(a, b float64) float64 { return math.Pow(a, b) }

// Service accepts requests. Both *Server and the load balancer satisfy it,
// so any tier can sit behind a balancer transparently.
type Service interface {
	// Submit delivers a request. The service must eventually call
	// req.Done exactly once.
	Submit(req *Request)
}

// Request is one unit of work travelling through a tier. Done is invoked
// exactly once with the outcome; OK is false when the request was rejected
// (accept-queue overflow) or failed downstream.
type Request struct {
	// Phases is the visit program executed while holding a server thread.
	Phases []Phase
	// Done receives the outcome.
	Done func(ok bool)
	// Span is the request's trace span (nil on unsampled requests — the
	// common case; every span hook is a no-op then).
	Span *trace.Span
	// Class is the admission class (browse vs read-write), propagated
	// down the call tree so every tier's policy sees it.
	Class admission.Class
	// Shed is set when this request — or any downstream call it made —
	// was dropped by an admission policy rather than failing for another
	// reason.
	Shed bool

	arrival des.Time
	phase   int
	failed  bool
}

// PhaseKind enumerates the step types of a visit program.
type PhaseKind int

// Phase kinds: CPU burst, disk burst, pure dwell (network/protocol wait
// that holds the thread but no hardware resource), a synchronous
// downstream call, and a network-edge transit. PhaseNet behaves exactly
// like PhaseSleep (a thread-holding dwell, jittered the same way); the
// distinct kind only changes how tracing classifies the time.
const (
	PhaseCPU PhaseKind = iota
	PhaseDisk
	PhaseSleep
	PhaseCall
	PhaseNet
)

// Phase is one step of a visit program.
type Phase struct {
	Kind     PhaseKind
	Duration des.Time // CPU/Disk/Sleep service demand (seconds)
	Call     *OutCall // for PhaseCall
}

// OutCall describes a synchronous downstream call: the calling thread is
// held for its whole duration (thread-based RPC). If Pool is non-nil a
// connection is acquired first — this is how the app tier's DB connection
// pool throttles DB-tier concurrency. UseServerPool instead acquires from
// the executing server's own outbound pool (set with SetCallPool), which is
// how upstream tiers can build call phases without knowing which backend
// the balancer will pick.
type OutCall struct {
	Target        Service
	Pool          *ConnPool
	UseServerPool bool
	// Build produces the downstream request's phases at call time, so
	// per-request randomness stays with the originating request.
	Build func() []Phase
}

// Config holds a server's static and soft-resource configuration.
type Config struct {
	Name        string
	Cores       int
	DiskChans   int // 0 means no disk
	ThreadLimit int // soft resource: max concurrently processing requests
	AcceptQueue int // pending slots beyond the thread pool; overflow rejects
	Overhead    Overhead
	DemandCV    float64  // lognormal sigma for per-burst demand jitter (0 = deterministic)
	Window      des.Time // fine-grained measurement window (0 = 50 ms)
	UtilWindow  des.Time // CPU utilization window (0 = 1 s)
}

// Server is one component server (VM) of the n-tier system.
type Server struct {
	eng  *des.Engine
	rnd  *rng.Source
	name string

	cpu  *ProcPool
	disk *ProcPool

	threadLimit int
	active      int
	accept      []*Request
	acceptCap   int

	overhead Overhead
	demandCV float64

	// cpuSlowdown is the capacity-degradation factor (1 = nominal): noisy
	// neighbors on the VM's physical host stealing cycles make every CPU
	// burst take this many times its nominal duration.
	cpuSlowdown float64

	rec *metrics.Recorder
	tel Telemetry

	// adm is the admission policy guarding the accept queue (nil = admit
	// everything on the untouched pre-admission code path). admMeter and
	// onShed are passive observers of its decisions; sheds counts drops
	// per class unconditionally (plain counters, read at scrape time).
	adm      admission.Policy
	admMeter *admission.Meter
	onShed   func(now des.Time, class admission.Class)
	sheds    [admission.NumClasses]uint64

	callPool *ConnPool // outbound pool for UseServerPool calls (may be nil)

	draining bool // true once the VM is being retired; rejects new work
	killed   bool // true after a crash; in-flight work fails at phase edges
}

// New creates a server on the given engine. rnd must be a dedicated stream
// (use rng.Split) so per-server jitter is reproducible.
func New(eng *des.Engine, rnd *rng.Source, cfg Config) *Server {
	if cfg.Cores <= 0 {
		panic("server: config needs at least one core")
	}
	if cfg.ThreadLimit <= 0 {
		panic("server: config needs a positive thread limit")
	}
	if cfg.AcceptQueue < 0 {
		panic("server: negative accept queue")
	}
	window := cfg.Window
	if window == 0 {
		window = metrics.DefaultWindow
	}
	utilWindow := cfg.UtilWindow
	if utilWindow == 0 {
		utilWindow = des.Second
	}
	s := &Server{
		eng:         eng,
		rnd:         rnd,
		name:        cfg.Name,
		cpu:         NewProcPool(eng, cfg.Cores, utilWindow),
		threadLimit: cfg.ThreadLimit,
		acceptCap:   cfg.AcceptQueue,
		overhead:    cfg.Overhead,
		demandCV:    cfg.DemandCV,
		cpuSlowdown: 1,
		rec:         metrics.NewRecorder(window),
	}
	if cfg.DiskChans > 0 {
		s.disk = NewProcPool(eng, cfg.DiskChans, utilWindow)
	}
	return s
}

// Name returns the server's identity (e.g. "mysql1").
func (s *Server) Name() string { return s.name }

// Cores returns the VM's current core count.
func (s *Server) Cores() int { return s.cpu.Channels() }

// SetCores vertically scales the VM.
func (s *Server) SetCores(n int) { s.cpu.SetChannels(n) }

// SetCPUSlowdown sets the capacity-degradation factor: CPU bursts take
// f times their nominal duration while it is in effect — the noisy-neighbor
// interference a VM suffers when co-located tenants contend for its host's
// cores. f must be positive; 1 restores nominal capacity. The factor
// applies to bursts started after the call; bursts already on a core
// finish at their old speed (the hypervisor does not re-plan running
// quanta retroactively).
func (s *Server) SetCPUSlowdown(f float64) {
	if f <= 0 {
		panic("server: non-positive CPU slowdown")
	}
	s.cpuSlowdown = f
}

// CPUSlowdown returns the current capacity-degradation factor (1 = nominal).
func (s *Server) CPUSlowdown() float64 { return s.cpuSlowdown }

// ThreadLimit returns the soft-resource thread pool size.
func (s *Server) ThreadLimit() int { return s.threadLimit }

// SetThreadLimit adjusts the thread pool at runtime (the actuator path).
// Growth admits queued requests immediately.
func (s *Server) SetThreadLimit(n int) {
	if n <= 0 {
		panic("server: non-positive thread limit")
	}
	s.threadLimit = n
	s.admit()
}

// Active returns the number of requests currently holding threads.
func (s *Server) Active() int { return s.active }

// QueueLen returns the accept-queue length.
func (s *Server) QueueLen() int { return len(s.accept) }

// CPUUtilization returns the running 1-second CPU utilization (0..1).
func (s *Server) CPUUtilization() float64 { return s.cpu.Utilization() }

// DiskUtilization returns the running 1-second disk utilization, 0 when
// the VM has no disk model.
func (s *Server) DiskUtilization() float64 {
	if s.disk == nil {
		return 0
	}
	return s.disk.Utilization()
}

// FlushCPU drains completed CPU-utilization windows.
func (s *Server) FlushCPU() []metrics.TWSample { return s.cpu.FlushUtil() }

// FlushFine drains completed fine-grained request windows.
func (s *Server) FlushFine() []metrics.WindowSample { return s.rec.Flush(s.eng.Now()) }

// Recorder exposes the request recorder (tests, diagnostics).
func (s *Server) Recorder() *metrics.Recorder { return s.rec }

// SetCallPool installs the server's outbound connection pool, used by
// phases whose OutCall sets UseServerPool (the Tomcat DB connection pool).
func (s *Server) SetCallPool(p *ConnPool) { s.callPool = p }

// CallPool returns the outbound connection pool (nil if unset).
func (s *Server) CallPool() *ConnPool { return s.callPool }

// SetDraining marks the VM as retiring: new submissions are rejected while
// in-flight requests finish (the "slow turn off" half of scaling).
func (s *Server) SetDraining(d bool) { s.draining = d }

// Draining reports whether the VM is retiring.
func (s *Server) Draining() bool { return s.draining }

// Kill crashes the VM: new submissions are rejected, queued requests fail
// immediately, and in-flight requests fail at their next phase boundary
// (the "connection reset" a client of a crashed server observes).
func (s *Server) Kill() {
	s.draining = true
	s.killed = true
	queued := s.accept
	s.accept = nil
	now := s.eng.Now()
	for _, req := range queued {
		s.rec.Reject(now)
		s.tel.Rejects.Inc()
		req.Span.Finish(now, trace.OutcomeFailed)
		done := req.Done
		req.Done = nil
		s.eng.After(0, func() { done(false) })
	}
}

// Killed reports whether the VM has crashed.
func (s *Server) Killed() bool { return s.killed }

// SetAdmission installs (or with nil removes) the admission policy
// guarding the accept queue. Policies are stateful: every server needs
// its own instance.
func (s *Server) SetAdmission(p admission.Policy) { s.adm = p }

// Admission returns the installed admission policy (nil when off).
func (s *Server) Admission() admission.Policy { return s.adm }

// SetShedMeter installs a drop-rate meter fed with every admission
// decision (offered and shed) while a policy is armed.
func (s *Server) SetShedMeter(m *admission.Meter) { s.admMeter = m }

// SetShedObserver installs a read-only callback invoked on every shed —
// the forensics flight recorder's tap.
func (s *Server) SetShedObserver(fn func(now des.Time, class admission.Class)) { s.onShed = fn }

// ShedCount returns the number of requests the admission policy dropped
// in the given class.
func (s *Server) ShedCount(c admission.Class) uint64 { return s.sheds[c] }

// ShedTotal returns the total admission drops across classes.
func (s *Server) ShedTotal() uint64 {
	var t uint64
	for _, n := range s.sheds {
		t += n
	}
	return t
}

// Submit implements Service.
func (s *Server) Submit(req *Request) {
	if s.draining || len(s.accept) >= s.acceptCap {
		// Reject before entering the request log's in-flight accounting;
		// the error still counts in this window.
		s.rec.Reject(s.eng.Now())
		s.tel.Rejects.Inc()
		req.Span.Finish(s.eng.Now(), trace.OutcomeRejected)
		done := req.Done
		req.Done = nil
		// Deliver the failure asynchronously so callers never observe
		// reentrant completion.
		s.eng.After(0, func() { done(false) })
		return
	}
	if s.adm != nil {
		// Admission decision point: accept-queue entry, before pool
		// admit. A shed fails the request immediately without consuming
		// any server resource; the meter sees every decision.
		now := s.eng.Now()
		ok := s.adm.Admit(now, req.Class, len(s.accept))
		s.admMeter.Observe(now, req.Class, !ok)
		if !ok {
			s.sheds[req.Class]++
			s.rec.Reject(now)
			s.tel.Rejects.Inc()
			s.tel.Sheds[req.Class].Inc()
			req.Shed = true
			req.Span.Finish(now, trace.OutcomeShed)
			if s.onShed != nil {
				s.onShed(now, req.Class)
			}
			done := req.Done
			req.Done = nil
			s.eng.After(0, func() { done(false) })
			return
		}
	}
	req.arrival = s.eng.Now()
	req.Span.EnterServer(s.name, req.arrival)
	s.accept = append(s.accept, req)
	s.admit()
}

func (s *Server) admit() {
	for s.active < s.threadLimit && len(s.accept) > 0 {
		req := s.accept[0]
		s.accept = s.accept[1:]
		s.active++
		// The request log counts *processing* concurrency (requests
		// holding threads), matching the paper's SCT tuples; accept-queue
		// time still counts toward the recorded response time because RT
		// is measured from submission.
		now := s.eng.Now()
		if s.adm != nil {
			// Feed the policy the accept-queue sojourn this request
			// actually experienced — CoDel's standing-queue signal.
			s.adm.ObserveDequeue(now, now-req.arrival)
		}
		s.rec.Arrive(now)
		req.Span.Admitted(now)
		s.step(req)
	}
}

// step advances a request to its next phase; when phases are exhausted the
// request completes and its thread is released.
func (s *Server) step(req *Request) {
	if s.killed {
		req.failed = true
	}
	if req.failed || req.phase >= len(req.Phases) {
		s.finish(req)
		return
	}
	ph := req.Phases[req.phase]
	req.phase++
	switch ph.Kind {
	case PhaseCPU:
		d := s.jitter(ph.Duration) * des.Time(s.overhead.Factor(s.active, s.cpu.Channels())*s.cpuSlowdown)
		if sp := req.Span; sp != nil {
			t0 := s.eng.Now()
			s.cpu.Demand(d, func() {
				sp.AddProc(trace.SegCPUWait, trace.SegCPU, t0, d, s.eng.Now())
				s.step(req)
			})
			return
		}
		s.cpu.Demand(d, func() { s.step(req) })
	case PhaseDisk:
		if s.disk == nil {
			panic(fmt.Sprintf("server %s: disk phase without a disk", s.name))
		}
		d := s.jitter(ph.Duration)
		if sp := req.Span; sp != nil {
			t0 := s.eng.Now()
			s.disk.Demand(d, func() {
				sp.AddProc(trace.SegDiskWait, trace.SegDisk, t0, d, s.eng.Now())
				s.step(req)
			})
			return
		}
		s.disk.Demand(d, func() { s.step(req) })
	case PhaseSleep, PhaseNet:
		d := s.jitter(ph.Duration)
		if sp := req.Span; sp != nil {
			kind := trace.SegDwell
			if ph.Kind == PhaseNet {
				kind = trace.SegNet
			}
			sp.AddSeg(kind, s.eng.Now(), s.eng.Now()+d)
		}
		s.eng.After(d, func() { s.step(req) })
	case PhaseCall:
		s.call(req, ph.Call)
	default:
		panic("server: unknown phase kind")
	}
}

func (s *Server) call(req *Request, out *OutCall) {
	pool := out.Pool
	if out.UseServerPool {
		pool = s.callPool
	}
	sp := req.Span
	t0 := s.eng.Now()
	issue := func() {
		var child *trace.Span
		if sp != nil {
			now := s.eng.Now()
			if pool != nil {
				sp.AddSeg(trace.SegPoolWait, t0, now)
			}
			child = sp.StartChild(now)
		}
		down := &Request{
			Phases: out.Build(),
			Span:   child,
			Class:  req.Class,
		}
		down.Done = func(ok bool) {
			if pool != nil {
				pool.Release()
			}
			if !ok {
				req.failed = true
				if down.Shed {
					req.Shed = true
				}
			}
			s.step(req)
		}
		out.Target.Submit(down)
	}
	if pool != nil {
		pool.Acquire(issue)
	} else {
		issue()
	}
}

func (s *Server) finish(req *Request) {
	s.active--
	now := s.eng.Now()
	if req.failed {
		s.rec.Drop(now)
		s.tel.Drops.Inc()
		req.Span.Finish(now, trace.OutcomeFailed)
	} else {
		s.rec.Depart(now, float64(now-req.arrival))
		s.tel.RT.Observe(float64(now - req.arrival))
		req.Span.Finish(now, trace.OutcomeOK)
	}
	done := req.Done
	req.Done = nil
	done(!req.failed)
	s.admit()
}

// jitter applies lognormal demand variation with the configured CV.
func (s *Server) jitter(d des.Time) des.Time {
	if s.demandCV <= 0 || d <= 0 {
		return d
	}
	return des.Time(s.rnd.LogNormal(float64(d), s.demandCV))
}
