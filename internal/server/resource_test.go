package server

import (
	"math"
	"testing"
	"testing/quick"

	"conscale/internal/des"
)

func TestProcPoolSingleChannelFCFS(t *testing.T) {
	eng := des.New()
	p := NewProcPool(eng, 1, des.Second)
	var order []int
	var ends []des.Time
	for i := 0; i < 3; i++ {
		i := i
		p.Demand(1, func() {
			order = append(order, i)
			ends = append(ends, eng.Now())
		})
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FCFS violated: %v", order)
		}
	}
	want := []des.Time{1, 2, 3}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestProcPoolParallelChannels(t *testing.T) {
	eng := des.New()
	p := NewProcPool(eng, 2, des.Second)
	var ends []des.Time
	for i := 0; i < 4; i++ {
		p.Demand(1, func() { ends = append(ends, eng.Now()) })
	}
	eng.Run()
	want := []des.Time{1, 1, 2, 2}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestProcPoolBusyNeverExceedsChannels(t *testing.T) {
	eng := des.New()
	p := NewProcPool(eng, 3, des.Second)
	maxBusy := 0
	var submit func(n int)
	submit = func(n int) {
		if n == 0 {
			return
		}
		p.Demand(0.5, func() {
			if p.Busy() > maxBusy {
				maxBusy = p.Busy()
			}
		})
		submit(n - 1)
	}
	submit(20)
	eng.Run()
	if maxBusy > 3 {
		t.Fatalf("busy reached %d with 3 channels", maxBusy)
	}
}

func TestProcPoolSetChannelsGrowDispatches(t *testing.T) {
	eng := des.New()
	p := NewProcPool(eng, 1, des.Second)
	var ends []des.Time
	for i := 0; i < 2; i++ {
		p.Demand(1, func() { ends = append(ends, eng.Now()) })
	}
	eng.At(0.5, func() { p.SetChannels(2) })
	eng.Run()
	// Second burst starts at 0.5 (when the channel appears), ends at 1.5.
	if ends[1] != 1.5 {
		t.Fatalf("second end = %v, want 1.5", ends[1])
	}
}

func TestProcPoolZeroDemand(t *testing.T) {
	eng := des.New()
	p := NewProcPool(eng, 1, des.Second)
	fired := false
	p.Demand(0, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("zero-duration burst never completed")
	}
}

func TestProcPoolNegativeDemandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewProcPool(des.New(), 1, des.Second).Demand(-1, func() {})
}

func TestProcPoolUtilization(t *testing.T) {
	eng := des.New()
	p := NewProcPool(eng, 2, des.Second)
	p.Demand(0.5, func() {}) // one of two channels busy for 0.5s
	eng.Run()
	eng.RunUntil(1)
	samples := p.FlushUtil()
	if len(samples) != 1 {
		t.Fatalf("got %d util windows", len(samples))
	}
	if math.Abs(samples[0].Mean-0.25) > 1e-9 {
		t.Fatalf("util = %v, want 0.25", samples[0].Mean)
	}
}

func TestProcPoolTotalBusySeconds(t *testing.T) {
	eng := des.New()
	p := NewProcPool(eng, 2, des.Second)
	p.Demand(1, func() {})
	p.Demand(2, func() {})
	eng.Run()
	if math.Abs(p.TotalBusySeconds()-3) > 1e-9 {
		t.Fatalf("TotalBusySeconds = %v, want 3", p.TotalBusySeconds())
	}
}

func TestConnPoolLimitsConcurrency(t *testing.T) {
	c := NewConnPool(2)
	held := 0
	maxHeld := 0
	for i := 0; i < 5; i++ {
		c.Acquire(func() {
			held++
			if held > maxHeld {
				maxHeld = held
			}
		})
	}
	if maxHeld != 2 {
		t.Fatalf("maxHeld = %d, want 2", maxHeld)
	}
	if c.InUse() != 2 || c.Waiting() != 3 {
		t.Fatalf("InUse/Waiting = %d/%d", c.InUse(), c.Waiting())
	}
	held--
	c.Release() // admits one waiter
	if c.InUse() != 2 || c.Waiting() != 2 {
		t.Fatalf("after release: InUse/Waiting = %d/%d", c.InUse(), c.Waiting())
	}
}

func TestConnPoolFIFO(t *testing.T) {
	c := NewConnPool(1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		c.Acquire(func() { order = append(order, i) })
	}
	for i := 0; i < 3; i++ {
		c.Release()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestConnPoolSetLimitGrowAdmits(t *testing.T) {
	c := NewConnPool(1)
	admitted := 0
	for i := 0; i < 3; i++ {
		c.Acquire(func() { admitted++ })
	}
	if admitted != 1 {
		t.Fatalf("admitted = %d", admitted)
	}
	c.SetLimit(3)
	if admitted != 3 {
		t.Fatalf("after grow admitted = %d, want 3", admitted)
	}
}

func TestConnPoolSetLimitShrinkLazy(t *testing.T) {
	c := NewConnPool(3)
	for i := 0; i < 3; i++ {
		c.Acquire(func() {})
	}
	c.SetLimit(1)
	if c.InUse() != 3 {
		t.Fatalf("shrink evicted holders: InUse = %d", c.InUse())
	}
	c.Release()
	c.Release()
	admitted := false
	c.Acquire(func() { admitted = true })
	if admitted {
		t.Fatal("admitted above shrunk limit")
	}
	c.Release()
	if !admitted {
		t.Fatal("waiter not admitted after drain below limit")
	}
}

func TestConnPoolReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewConnPool(1).Release()
}

func TestOverheadBelowKneeIsOne(t *testing.T) {
	o := DefaultOverhead()
	for c := 0; c <= 22; c++ {
		if f := o.Factor(c, 1); f != 1 {
			t.Fatalf("Factor(%d, 1) = %v, want 1", c, f)
		}
	}
}

func TestOverheadScalesWithCores(t *testing.T) {
	o := DefaultOverhead()
	if o.Factor(40, 2) != 1 {
		t.Fatalf("Factor(40, 2) = %v, want 1 (knee is per-core)", o.Factor(40, 2))
	}
	if o.Factor(40, 1) <= 1 {
		t.Fatal("Factor(40, 1) should exceed 1")
	}
}

func TestOverheadMonotone(t *testing.T) {
	o := DefaultOverhead()
	prev := 0.0
	for c := 1; c <= 200; c++ {
		f := o.Factor(c, 1)
		if f < prev {
			t.Fatalf("overhead not monotone at %d", c)
		}
		prev = f
	}
}

func TestOverheadZeroAlphaDisables(t *testing.T) {
	o := Overhead{Alpha: 0, KneePerCore: 1, Power: 2}
	if o.Factor(1000, 1) != 1 {
		t.Fatal("zero alpha should disable overhead")
	}
}

// Property: ConnPool never exceeds its limit under arbitrary operation
// sequences.
func TestQuickConnPoolInvariant(t *testing.T) {
	f := func(ops []bool, limit uint8) bool {
		lim := int(limit%8) + 1
		c := NewConnPool(lim)
		outstanding := 0
		for _, acquire := range ops {
			if acquire || outstanding == 0 {
				c.Acquire(func() {})
				outstanding++
			} else if c.InUse() > 0 {
				c.Release()
				outstanding--
			}
			if c.InUse() > lim {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: overhead factor is always >= 1.
func TestQuickOverheadAtLeastOne(t *testing.T) {
	f := func(active uint8, cores uint8) bool {
		o := DefaultOverhead()
		return o.Factor(int(active), int(cores%8)+1) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
