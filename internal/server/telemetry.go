package server

import (
	"conscale/internal/admission"
	"conscale/internal/telemetry"
)

// Telemetry bundles the per-server hot-path instruments. Each field may be
// nil (and all of them are until SetTelemetry is called): the instruments'
// nil-receiver no-ops keep the uninstrumented request path allocation-free.
// Occupancy-style signals (queue depth, active threads, utilization) are
// deliberately not here — they are read at scrape time through collectors
// over the server's existing accessors, costing the request path nothing.
type Telemetry struct {
	// RT observes the response time (seconds) of every successful request,
	// measured from submission as the recorder does.
	RT *telemetry.Histogram
	// Rejects counts accept-queue overflows and submissions to a draining
	// or crashed VM.
	Rejects *telemetry.Counter
	// Drops counts requests that failed after admission (crashes, failed
	// downstream calls).
	Drops *telemetry.Counter
	// Sheds counts admission-policy drops per class, indexed by
	// admission.Class.
	Sheds [admission.NumClasses]*telemetry.Counter
}

// SetTelemetry installs the server's instruments (typically armed by the
// cluster when the VM boots).
func (s *Server) SetTelemetry(t Telemetry) { s.tel = t }
