package tracefile

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"conscale/internal/des"
	"conscale/internal/workload"
)

func sample() *Series {
	return &Series{
		Name:  "s",
		Times: []des.Time{0, 10, 20, 30},
		Users: []float64{100, 300, 200, 400},
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Series{
		{},
		{Times: []des.Time{0, 1}, Users: []float64{1}},
		{Times: []des.Time{0, 0}, Users: []float64{1, 2}},
		{Times: []des.Time{0, 1}, Users: []float64{1, -2}},
		{Times: []des.Time{0, 1}, Users: []float64{1, math.NaN()}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d validated", i)
		}
	}
}

func TestAtInterpolates(t *testing.T) {
	s := sample()
	cases := []struct {
		t    des.Time
		want float64
	}{
		{-5, 100}, {0, 100}, {5, 200}, {10, 300}, {15, 250}, {30, 400}, {99, 400},
	}
	for _, c := range cases {
		if got := s.At(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestResampleUniform(t *testing.T) {
	s := sample().Resample(5)
	if len(s.Times) != 7 {
		t.Fatalf("resampled length = %d, want 7", len(s.Times))
	}
	for i := 1; i < len(s.Times); i++ {
		if math.Abs(float64(s.Times[i]-s.Times[i-1])-5) > 1e-9 {
			t.Fatal("intervals not uniform")
		}
	}
	if s.Users[1] != 200 { // t=5 interpolated
		t.Fatalf("resampled value = %v", s.Users[1])
	}
}

func TestNormalizePeak(t *testing.T) {
	s := sample().Normalize(1000)
	if got := s.Peak(); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("peak = %v", got)
	}
	// Shape preserved: ratios unchanged.
	if math.Abs(s.Users[0]/s.Users[3]-0.25) > 1e-9 {
		t.Fatal("normalisation distorted ratios")
	}
	// Original untouched.
	if sample().Peak() != 400 {
		t.Fatal("Normalize mutated input")
	}
}

func TestStretchDuration(t *testing.T) {
	s := sample().Stretch(300)
	if got := s.Duration(); math.Abs(float64(got-300)) > 1e-9 {
		t.Fatalf("duration = %v", got)
	}
	if s.Times[0] != 0 || s.Times[1] != 100 {
		t.Fatalf("times = %v", s.Times)
	}
}

func TestSmooth(t *testing.T) {
	s := &Series{
		Name:  "sq",
		Times: []des.Time{0, 1, 2, 3, 4},
		Users: []float64{0, 100, 0, 100, 0},
	}
	sm := s.Smooth(1)
	want := []float64{50, 100.0 / 3, 200.0 / 3, 100.0 / 3, 50}
	for i := range want {
		if math.Abs(sm.Users[i]-want[i]) > 1e-9 {
			t.Fatalf("smoothed = %v, want %v", sm.Users, want)
		}
	}
	if s.Smooth(0).Users[1] != 100 {
		t.Fatal("radius 0 changed values")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "s" {
		t.Fatalf("name = %q", got.Name)
	}
	if len(got.Times) != 4 || got.Users[3] != 400 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestReadWithoutHeader(t *testing.T) {
	s, err := Read(strings.NewReader("0,10\n5,20\n10,15\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Times) != 3 || s.Users[1] != 20 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"time,users\nx,y\n",
		"0,10\n0,20\n", // non-increasing time
		"0,10\n5,-3\n", // negative users
		"0,10\n5\n",    // wrong arity
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d parsed", i)
		}
	}
}

func TestToTraceMatchesSeries(t *testing.T) {
	tr := sample().ToTrace()
	if tr.MaxUsers != 400 {
		t.Fatalf("MaxUsers = %d", tr.MaxUsers)
	}
	if got := tr.UsersAt(0); got != 100 {
		t.Fatalf("UsersAt(0) = %d", got)
	}
	if got := tr.UsersAt(10); got != 300 {
		t.Fatalf("UsersAt(10) = %d", got)
	}
	if got := tr.UsersAt(15); got != 250 {
		t.Fatalf("UsersAt(15) = %d", got)
	}
}

func TestFromTraceExportsBuiltin(t *testing.T) {
	tr := workload.NewTrace(workload.BigSpike, 1000, 100)
	s := FromTrace(tr, des.Second)
	if len(s.Times) != 101 {
		t.Fatalf("exported %d points", len(s.Times))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Round trip through CSV and back into a trace: peak preserved.
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := back.ToTrace()
	if math.Abs(float64(tr2.Peak()-tr.Peak())) > 2 {
		t.Fatalf("peak changed through round trip: %d vs %d", tr2.Peak(), tr.Peak())
	}
}

func TestTransformedTraceDrivesGenerator(t *testing.T) {
	// End-to-end: a CSV trace, normalised and stretched, drives a real
	// generator.
	csv := "time_s,myload\n0,5\n60,50\n120,10\n"
	s, err := Read(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Normalize(200).Stretch(30).ToTrace()
	if tr.Peak() < 190 {
		t.Fatalf("peak = %d", tr.Peak())
	}
	if tr.Duration != 30 {
		t.Fatalf("duration = %v", tr.Duration)
	}
}

// Property: At is always within [min, max] of the series values.
func TestQuickAtBounded(t *testing.T) {
	f := func(raw []uint16, tRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := &Series{Name: "q"}
		for i, v := range raw {
			s.Times = append(s.Times, des.Time(i))
			s.Users = append(s.Users, float64(v))
		}
		min, max := s.Users[0], s.Users[0]
		for _, u := range s.Users {
			if u < min {
				min = u
			}
			if u > max {
				max = u
			}
		}
		got := s.At(des.Time(tRaw) / 7)
		return got >= min-1e-9 && got <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Write/Read round trip preserves every value.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := &Series{Name: "q"}
		for i, v := range raw {
			s.Times = append(s.Times, des.Time(i))
			s.Users = append(s.Users, float64(v))
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got.Users) != len(s.Users) {
			return false
		}
		for i := range s.Users {
			if got.Users[i] != s.Users[i] || got.Times[i] != s.Times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
