// Package tracefile loads and saves workload traces as CSV, so the
// evaluation can replay real-world user curves (the paper's traces are
// "collected from real-world traces and further categorized by Gandhi")
// in addition to the built-in parametric generators. It also provides the
// transformations needed to fit a raw trace to an experiment: resampling
// to a fixed interval, peak normalisation, time scaling, and smoothing.
package tracefile

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"conscale/internal/des"
	"conscale/internal/workload"
)

// Series is a raw trace: user counts at (not necessarily uniform) times.
type Series struct {
	Name  string
	Times []des.Time // ascending
	Users []float64
}

// Validate reports structural problems.
func (s *Series) Validate() error {
	if len(s.Times) == 0 {
		return fmt.Errorf("tracefile: empty series")
	}
	if len(s.Times) != len(s.Users) {
		return fmt.Errorf("tracefile: %d times vs %d values", len(s.Times), len(s.Users))
	}
	for i := 1; i < len(s.Times); i++ {
		if s.Times[i] <= s.Times[i-1] {
			return fmt.Errorf("tracefile: times not strictly increasing at row %d", i)
		}
	}
	for i, u := range s.Users {
		if u < 0 || math.IsNaN(u) || math.IsInf(u, 0) {
			return fmt.Errorf("tracefile: bad user count %v at row %d", u, i)
		}
	}
	return nil
}

// Duration returns the time span covered.
func (s *Series) Duration() des.Time {
	if len(s.Times) == 0 {
		return 0
	}
	return s.Times[len(s.Times)-1] - s.Times[0]
}

// Peak returns the maximum user count.
func (s *Series) Peak() float64 {
	peak := 0.0
	for _, u := range s.Users {
		if u > peak {
			peak = u
		}
	}
	return peak
}

// At returns the linearly interpolated user count at time t, clamped to
// the endpoints outside the covered span.
func (s *Series) At(t des.Time) float64 {
	n := len(s.Times)
	if n == 0 {
		return 0
	}
	if t <= s.Times[0] {
		return s.Users[0]
	}
	if t >= s.Times[n-1] {
		return s.Users[n-1]
	}
	i := sort.Search(n, func(i int) bool { return s.Times[i] > t }) - 1
	t0, t1 := s.Times[i], s.Times[i+1]
	frac := float64(t-t0) / float64(t1-t0)
	return s.Users[i]*(1-frac) + s.Users[i+1]*frac
}

// Resample returns a uniform series at the given interval over the
// original span (endpoints included).
func (s *Series) Resample(interval des.Time) *Series {
	if interval <= 0 {
		panic("tracefile: non-positive interval")
	}
	out := &Series{Name: s.Name}
	start := s.Times[0]
	end := s.Times[len(s.Times)-1]
	for t := start; t <= end; t += interval {
		out.Times = append(out.Times, t)
		out.Users = append(out.Users, s.At(t))
	}
	return out
}

// Normalize rescales user counts so the peak equals maxUsers.
func (s *Series) Normalize(maxUsers int) *Series {
	peak := s.Peak()
	out := &Series{Name: s.Name, Times: append([]des.Time(nil), s.Times...)}
	out.Users = make([]float64, len(s.Users))
	if peak <= 0 {
		copy(out.Users, s.Users)
		return out
	}
	scale := float64(maxUsers) / peak
	for i, u := range s.Users {
		out.Users[i] = u * scale
	}
	return out
}

// Stretch rescales the time axis so the series spans duration.
func (s *Series) Stretch(duration des.Time) *Series {
	if duration <= 0 {
		panic("tracefile: non-positive duration")
	}
	cur := s.Duration()
	out := &Series{Name: s.Name, Users: append([]float64(nil), s.Users...)}
	out.Times = make([]des.Time, len(s.Times))
	if cur <= 0 {
		copy(out.Times, s.Times)
		return out
	}
	scale := float64(duration) / float64(cur)
	start := s.Times[0]
	for i, t := range s.Times {
		out.Times[i] = des.Time(float64(t-start) * scale)
	}
	return out
}

// Smooth applies a centred moving average of the given radius to the user
// counts (radius 0 returns a copy).
func (s *Series) Smooth(radius int) *Series {
	if radius < 0 {
		panic("tracefile: negative radius")
	}
	out := &Series{Name: s.Name, Times: append([]des.Time(nil), s.Times...)}
	out.Users = make([]float64, len(s.Users))
	for i := range s.Users {
		lo, hi := i-radius, i+radius
		if lo < 0 {
			lo = 0
		}
		if hi >= len(s.Users) {
			hi = len(s.Users) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += s.Users[j]
		}
		out.Users[i] = sum / float64(hi-lo+1)
	}
	return out
}

// ToTrace converts the series into a workload.Trace usable by the
// generator: the trace interpolates the series, normalised to the series'
// own peak and span.
func (s *Series) ToTrace() *workload.Trace {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	peak := s.Peak()
	if peak <= 0 {
		peak = 1
	}
	dur := s.Duration()
	if dur <= 0 {
		dur = des.Second
	}
	start := s.Times[0]
	copySeries := &Series{
		Name:  s.Name,
		Times: append([]des.Time(nil), s.Times...),
		Users: append([]float64(nil), s.Users...),
	}
	return workload.NewCustomTrace(s.Name, int(peak+0.5), dur, func(u float64) float64 {
		t := start + des.Time(u*float64(dur))
		return copySeries.At(t) / peak
	})
}

// Read parses a two-column CSV ("time_s,users", header optional). The
// name is taken from the header's second column when present.
func Read(r io.Reader) (*Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("tracefile: empty input")
	}
	s := &Series{Name: "trace"}
	start := 0
	if _, err := strconv.ParseFloat(strings.TrimSpace(records[0][0]), 64); err != nil {
		// Header row.
		if name := strings.TrimSpace(records[0][1]); name != "" {
			s.Name = name
		}
		start = 1
	}
	for i := start; i < len(records); i++ {
		t, err := strconv.ParseFloat(strings.TrimSpace(records[i][0]), 64)
		if err != nil {
			return nil, fmt.Errorf("tracefile: row %d: bad time %q", i+1, records[i][0])
		}
		u, err := strconv.ParseFloat(strings.TrimSpace(records[i][1]), 64)
		if err != nil {
			return nil, fmt.Errorf("tracefile: row %d: bad user count %q", i+1, records[i][1])
		}
		s.Times = append(s.Times, des.Time(t))
		s.Users = append(s.Users, u)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Write emits the series as a two-column CSV with a header.
func Write(w io.Writer, s *Series) error {
	if err := s.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	name := s.Name
	if name == "" {
		name = "users"
	}
	if err := cw.Write([]string{"time_s", name}); err != nil {
		return err
	}
	for i := range s.Times {
		rec := []string{
			strconv.FormatFloat(float64(s.Times[i]), 'f', -1, 64),
			strconv.FormatFloat(s.Users[i], 'f', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FromTrace samples a built-in workload trace into a Series (the inverse
// of ToTrace), for exporting and transforming the standard six.
func FromTrace(tr *workload.Trace, interval des.Time) *Series {
	if interval <= 0 {
		panic("tracefile: non-positive interval")
	}
	s := &Series{Name: tr.Name}
	for t := des.Time(0); t <= tr.Duration; t += interval {
		s.Times = append(s.Times, t)
		s.Users = append(s.Users, float64(tr.UsersAt(t)))
	}
	return s
}
