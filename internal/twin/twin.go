// Package twin runs an analytical twin of the simulated cluster: an
// online observer that periodically snapshots the live configuration
// (ready VMs per tier, workload mix, think time) into a closed MVA
// network (internal/qnet), solves it, and streams the model's predicted
// throughput/response-time/utilization beside the measured values.
//
// The residuals — relative RT error, Little's-law residual, the
// flow-conservation (steadiness) imbalance, and the per-tier
// utilization gap — are the observability product: when the simulator
// and the queueing model agree in regimes where the theory applies, the
// simulator's more ambitious claims (controller rankings, tail-latency
// orderings) inherit credibility; when they diverge outside any
// forensics episode, that divergence is itself the signal (a sim-bug or
// model-bug candidate).
//
// The twin follows the house observer discipline: a nil *Observer is a
// valid inert receiver, the disabled hot path allocates nothing
// (pinned by TestTwinDisabledZeroAlloc), and an armed twin only reads
// simulation state — armed runs are byte-identical to bare ones
// (TestTwinRunByteIdentical).
//
// What the model can and cannot predict is part of the contract: exact
// MVA describes the steady state of a closed separable network. It has
// no notion of transients (scale-outs mid-boot, population ramps),
// admission drops, or pool-limit blocking, so every tick first passes a
// regime-applicability gate; inapplicable ticks carry a reason string
// ("regime inapplicable: ...") instead of residuals and never advance
// the drift detector. DESIGN.md §16 documents the full contract.
package twin

import (
	"fmt"
	"math"
	"sync/atomic"

	"conscale/internal/des"
	"conscale/internal/qnet"
	"conscale/internal/rubbos"
	"conscale/internal/telemetry"
	"conscale/internal/trace"
)

// Config tunes the twin observer. Zero values take the documented
// defaults.
type Config struct {
	// Interval is the snapshot/solve cadence (default 5 s).
	Interval des.Time
	// MaxPopulation caps the MVA population the twin will solve (the
	// recursion is O(N·K) per tick); ticks above it are inapplicable
	// (default 50000).
	MaxPopulation int
	// RelErrThreshold is the RT relative error above which a tick counts
	// toward drift (default 0.25).
	RelErrThreshold float64
	// DriftTicks is the number of consecutive applicable over-threshold
	// ticks that raises the drift flag (default 3).
	DriftTicks int
	// ClearTicks is the number of consecutive applicable under-threshold
	// ticks that clears it (default 2).
	ClearTicks int
	// FlowTolerance bounds the windowed arrival/completion imbalance
	// accepted as "steady" (default 0.10).
	FlowTolerance float64
	// PopTolerance bounds the relative population change between ticks
	// accepted as "steady" (default 0.10).
	PopTolerance float64
	// SampleCap bounds the retained sample series (default 4096; older
	// samples are dropped oldest-first).
	SampleCap int
}

func (cfg Config) withDefaults() Config {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * des.Second
	}
	if cfg.MaxPopulation <= 0 {
		cfg.MaxPopulation = 50000
	}
	if cfg.RelErrThreshold <= 0 {
		cfg.RelErrThreshold = 0.25
	}
	if cfg.DriftTicks <= 0 {
		cfg.DriftTicks = 3
	}
	if cfg.ClearTicks <= 0 {
		cfg.ClearTicks = 2
	}
	if cfg.FlowTolerance <= 0 {
		cfg.FlowTolerance = 0.10
	}
	if cfg.PopTolerance <= 0 {
		cfg.PopTolerance = 0.10
	}
	if cfg.SampleCap <= 0 {
		cfg.SampleCap = 4096
	}
	return cfg
}

// Model is the twin's static view of the deployment: everything the
// snapshot needs that is not per-tick observable state.
type Model struct {
	// Workload returns the *current* workload object. It is a getter,
	// not a pointer: cluster.SetDatasetScale and SetMix replace the
	// workload mid-run, and a captured pointer would silently model the
	// wrong demands.
	Workload func() *rubbos.Workload
	// ThinkTime is the client think time Z in seconds.
	ThinkTime float64
	// WebCores, AppCores, DBCores are per-VM core counts.
	WebCores, AppCores, DBCores int
	// DiskChans is the per-DB-VM disk channel count.
	DiskChans int
}

// TierObs is the measured state of one tier at a tick.
type TierObs struct {
	// Ready is the count of VMs serving traffic.
	Ready int
	// Queue and Active are the tier's request occupancy split.
	Queue, Active int
	// CPU is the mean utilization over the tier's ready VMs (0..1).
	CPU float64
}

// Observation is the per-tick measured state the run loop feeds Tick.
// The twin never touches the cluster itself: keeping the read in the
// caller makes the byte-identity argument local (the ticker only calls
// accessors that allocate nothing and mutate nothing).
type Observation struct {
	// Time is the tick timestamp.
	Time des.Time
	// Clients is the live closed-loop population (thinking + waiting).
	Clients int
	// BootingVMs counts launched-but-not-ready VMs; any non-zero value
	// marks a scale transition in flight.
	BootingVMs int
	// Web, App, DB are the per-tier measurements.
	Web, App, DB TierObs
}

// TierCompare pairs one tier's predicted and observed operating point.
type TierCompare struct {
	// PredUtil and ObsUtil are per-server utilizations (0..1).
	PredUtil, ObsUtil float64
	// PredQueue is the MVA mean customer count at the tier's CPU
	// station. It is reported, not gated: the measured app-tier
	// occupancy includes threads blocked on synchronous DB round trips,
	// which the model books at the DB station (see DESIGN §16).
	PredQueue float64
	// ObsQueue is the measured tier occupancy (queued + active).
	ObsQueue int
}

// Sample is one twin evaluation: the window's measurements, the model's
// predictions, and the residuals between them. Predictions and
// residuals are only meaningful when Applicable is true.
type Sample struct {
	// Time is the tick timestamp.
	Time des.Time
	// Clients is the live closed-loop population at the tick.
	Clients int
	// Applicable reports whether the steady-state regime gate passed.
	Applicable bool
	// Reason says which precondition failed when Applicable is false.
	Reason string
	// ObsThroughput is the window's completion rate (1/s).
	ObsThroughput float64
	// ObsMeanRT is the window's mean response time (s).
	ObsMeanRT float64
	// ObsErrors counts failed requests in the window.
	ObsErrors int
	// PredThroughput is the MVA throughput at the live population.
	PredThroughput float64
	// PredRT is the MVA response time at the live population (s).
	PredRT float64
	// Web, App, DB compare per-tier operating points.
	Web, App, DB TierCompare
	// RTRelErr is |pred−obs|/obs on the window's mean response time.
	RTRelErr float64
	// TPRelErr is |pred−obs|/obs on the window's throughput.
	TPRelErr float64
	// LittlesResidual is |N − X·(R+Z)|/N over the window — a pure
	// measurement invariant of the closed loop, model-free.
	LittlesResidual float64
	// FlowResidual is the window's |arrivals − completions| imbalance
	// relative to their maximum (the steadiness probe).
	FlowResidual float64
	// UtilGap is the worst per-tier |PredUtil − ObsUtil|.
	UtilGap float64
	// InDrift reports the drift flag state after this tick.
	InDrift bool
}

// DriftEvent is one sustained model/measurement divergence.
type DriftEvent struct {
	// At is the tick the flag raised; ClearedAt the tick it cleared
	// (run end for open events).
	At, ClearedAt des.Time
	// Open marks a drift still flagged at run end.
	Open bool
	// MaxRelErr is the worst RT relative error while flagged.
	MaxRelErr float64
	// InEpisode records whether the forensics detector was inside a
	// fluctuation episode when the flag raised.
	InEpisode bool
	// Class is the cross-referenced verdict: divergence inside an
	// episode is an expected transient; divergence on a calm system is
	// a model- or simulator-bug candidate.
	Class string
}

// Drift classifications.
const (
	// ClassTransient marks drift that raised inside a forensics episode.
	ClassTransient = "transient (inside forensics episode)"
	// ClassModelBug marks drift on a calm system — the model and the
	// simulator disagree where both claim to apply.
	ClassModelBug = "divergence on calm system (model/sim bug candidate)"
)

// EpisodeSource is the forensics cross-reference hook: anything that
// can answer "is the system inside a fluctuation episode right now?".
// *forensics.Detector satisfies it.
type EpisodeSource interface {
	InEpisode() bool
}

// Observer is the analytical-twin observer. The Observe* hot-path taps
// and Tick run on the simulation goroutine; the enable switch, the
// counters, and the last-residual gauges are atomics so telemetry and
// management agents can read them live. A nil *Observer is a valid,
// inert receiver.
type Observer struct {
	cfg     Config
	model   Model
	enabled atomic.Bool

	audit    *trace.Audit
	episodes EpisodeSource

	// Window accumulators, reset every tick (simulation goroutine).
	winArrivals int
	winOK       int
	winErr      int
	winRTSum    float64

	// Previous-tick state for the transition gates.
	lastTick  des.Time
	haveTick  bool
	prevN     int
	prevReady [3]int
	havePrev  bool

	// Drift state machine.
	inDrift  bool
	overRun  int
	underRun int
	curDrift DriftEvent
	drifts   []DriftEvent
	samples  []Sample
	dropped  int

	// Live-readable state.
	ticks      atomic.Uint64
	applicable atomic.Uint64
	driftTotal atomic.Uint64
	inFlag     atomic.Bool
	relErrBits atomic.Uint64
	littleBits atomic.Uint64
}

// New builds an enabled observer with defaulted config. The model's
// Workload getter must be non-nil before the first Tick.
func New(cfg Config, model Model) *Observer {
	o := &Observer{cfg: cfg.withDefaults(), model: model}
	o.relErrBits.Store(math.Float64bits(math.NaN()))
	o.littleBits.Store(math.Float64bits(math.NaN()))
	o.enabled.Store(true)
	return o
}

// SetEnabled flips the observer live (safe from any goroutine).
func (o *Observer) SetEnabled(on bool) {
	if o != nil {
		o.enabled.Store(on)
	}
}

// Enabled reports the live switch.
func (o *Observer) Enabled() bool { return o != nil && o.enabled.Load() }

// Config returns the defaulted configuration.
func (o *Observer) Config() Config {
	if o == nil {
		return Config{}.withDefaults()
	}
	return o.cfg
}

// SetAudit installs the decision trail that receives AuditTwinDrift /
// AuditTwinClear events (set before the run starts).
func (o *Observer) SetAudit(a *trace.Audit) {
	if o != nil {
		o.audit = a
	}
}

// SetEpisodeSource installs the forensics cross-reference used to
// classify drift flags (set before the run starts; nil means every
// drift classifies as calm-system divergence).
func (o *Observer) SetEpisodeSource(src EpisodeSource) {
	if o != nil {
		o.episodes = src
	}
}

// ObserveArrival counts one request submission into the current window
// (the arrivals side of the flow-conservation probe). No-op when nil or
// disabled; zero allocations either way.
func (o *Observer) ObserveArrival() {
	if o == nil || !o.enabled.Load() {
		return
	}
	o.winArrivals++
}

// Observe ingests one completed client request into the current window.
// No-op when nil or disabled; zero allocations either way.
func (o *Observer) Observe(now des.Time, rt float64, ok bool) {
	if o == nil || !o.enabled.Load() {
		return
	}
	if ok {
		o.winOK++
		o.winRTSum += rt
	} else {
		o.winErr++
	}
}

// inapplicable finalises a gated-out tick.
func (o *Observer) inapplicable(s *Sample, reason string) {
	s.Applicable = false
	s.Reason = "regime inapplicable: " + reason
}

// Tick evaluates the twin at one snapshot: harvest the window, run the
// applicability gate, solve the MVA network at the live population,
// compute residuals, and advance the drift state machine. Call it on a
// fixed cadence (Config.Interval) from the simulation goroutine.
func (o *Observer) Tick(obs Observation) {
	if o == nil || !o.enabled.Load() {
		return
	}
	o.ticks.Add(1)
	s := Sample{Time: obs.Time, Clients: obs.Clients, InDrift: o.inDrift}

	// Harvest and reset the window.
	arr, okN, errN, rtSum := o.winArrivals, o.winOK, o.winErr, o.winRTSum
	o.winArrivals, o.winOK, o.winErr, o.winRTSum = 0, 0, 0, 0
	dt := o.cfg.Interval
	if o.haveTick && obs.Time > o.lastTick {
		dt = obs.Time - o.lastTick
	}
	o.lastTick, o.haveTick = obs.Time, true

	s.ObsErrors = errN
	if okN > 0 {
		s.ObsThroughput = float64(okN) / float64(dt)
		s.ObsMeanRT = rtSum / float64(okN)
	}
	done := okN + errN
	if den := maxInt(arr, done); den > 0 {
		s.FlowResidual = math.Abs(float64(arr-done)) / float64(den)
	}

	// Transition bookkeeping for the gates (updated even on
	// inapplicable ticks so one transition doesn't poison the next).
	ready := [3]int{obs.Web.Ready, obs.App.Ready, obs.DB.Ready}
	prevReady, prevN, havePrev := o.prevReady, o.prevN, o.havePrev
	o.prevReady, o.prevN, o.havePrev = ready, obs.Clients, true

	// Regime-applicability gate, most fundamental precondition first.
	switch {
	case done == 0:
		o.inapplicable(&s, "empty window (no completions)")
	case okN == 0:
		o.inapplicable(&s, "no successful completions (all requests dropped)")
	case obs.BootingVMs > 0:
		o.inapplicable(&s, fmt.Sprintf("scale transition in flight (%d VMs booting)", obs.BootingVMs))
	case havePrev && ready != prevReady:
		o.inapplicable(&s, "scale transition (ready VM count changed)")
	case havePrev && relChange(obs.Clients, prevN) > o.cfg.PopTolerance:
		o.inapplicable(&s, fmt.Sprintf("population ramp (%d -> %d clients)", prevN, obs.Clients))
	case s.FlowResidual > o.cfg.FlowTolerance:
		o.inapplicable(&s, fmt.Sprintf("flow imbalance (%.0f%% arrival/completion gap)", s.FlowResidual*100))
	case obs.Clients <= 0:
		o.inapplicable(&s, "no live clients")
	case obs.Clients > o.cfg.MaxPopulation:
		o.inapplicable(&s, fmt.Sprintf("population %d above solver cap %d", obs.Clients, o.cfg.MaxPopulation))
	}
	if !s.Applicable && s.Reason != "" {
		o.push(s)
		return
	}

	net, err := qnet.SnapshotNetwork(qnet.LiveState{
		Workload:  o.model.Workload(),
		ThinkTime: o.model.ThinkTime,
		WebVMs:    obs.Web.Ready, AppVMs: obs.App.Ready, DBVMs: obs.DB.Ready,
		WebCores: o.model.WebCores, AppCores: o.model.AppCores, DBCores: o.model.DBCores,
		DiskChans: o.model.DiskChans,
	})
	if err != nil {
		o.inapplicable(&s, err.Error())
		o.push(s)
		return
	}
	res := net.Solve(obs.Clients)
	s.Applicable = true
	o.applicable.Add(1)
	s.PredThroughput = res.Throughput
	s.PredRT = res.ResponseTime

	fill := func(tc *TierCompare, station string, t TierObs) {
		tc.ObsUtil = t.CPU
		tc.ObsQueue = t.Queue + t.Active
		if i := net.StationIndex(station); i >= 0 {
			tc.PredUtil = res.Utilization[i]
			tc.PredQueue = res.QueueLen[i]
		}
	}
	fill(&s.Web, "web-cpu", obs.Web)
	fill(&s.App, "app-cpu", obs.App)
	fill(&s.DB, "db-cpu", obs.DB)
	s.UtilGap = math.Max(math.Abs(s.Web.PredUtil-s.Web.ObsUtil),
		math.Max(math.Abs(s.App.PredUtil-s.App.ObsUtil), math.Abs(s.DB.PredUtil-s.DB.ObsUtil)))

	s.RTRelErr = math.Abs(s.PredRT-s.ObsMeanRT) / s.ObsMeanRT
	s.TPRelErr = math.Abs(s.PredThroughput-s.ObsThroughput) / s.ObsThroughput
	s.LittlesResidual = math.Abs(float64(obs.Clients)-s.ObsThroughput*(s.ObsMeanRT+o.model.ThinkTime)) / float64(obs.Clients)
	o.relErrBits.Store(math.Float64bits(s.RTRelErr))
	o.littleBits.Store(math.Float64bits(s.LittlesResidual))

	o.advanceDrift(&s)
	o.push(s)
}

// advanceDrift runs the hysteresis state machine on one applicable
// sample.
func (o *Observer) advanceDrift(s *Sample) {
	if s.RTRelErr > o.cfg.RelErrThreshold {
		o.overRun++
		o.underRun = 0
	} else {
		o.underRun++
		o.overRun = 0
	}
	if !o.inDrift {
		if o.overRun >= o.cfg.DriftTicks {
			o.inDrift = true
			o.inFlag.Store(true)
			o.driftTotal.Add(1)
			inEp := o.episodes != nil && o.episodes.InEpisode()
			class := ClassModelBug
			if inEp {
				class = ClassTransient
			}
			o.curDrift = DriftEvent{At: s.Time, MaxRelErr: s.RTRelErr, InEpisode: inEp, Class: class}
			o.audit.Record(trace.AuditEvent{
				Time:  s.Time,
				Kind:  trace.AuditTwinDrift,
				Tier:  "twin",
				Cause: class,
				Detail: fmt.Sprintf("rt rel err %.0f%% for %d ticks (pred %.0f ms, obs %.0f ms)",
					s.RTRelErr*100, o.overRun, s.PredRT*1000, s.ObsMeanRT*1000),
				Value: s.RTRelErr,
			})
		}
	} else {
		if s.RTRelErr > o.curDrift.MaxRelErr {
			o.curDrift.MaxRelErr = s.RTRelErr
		}
		if o.underRun >= o.cfg.ClearTicks {
			o.closeDrift(s.Time, false)
		}
	}
	s.InDrift = o.inDrift
}

func (o *Observer) closeDrift(t des.Time, open bool) {
	o.inDrift = false
	o.inFlag.Store(false)
	o.curDrift.ClearedAt = t
	o.curDrift.Open = open
	o.drifts = append(o.drifts, o.curDrift)
	if !open {
		o.audit.Record(trace.AuditEvent{
			Time:   t,
			Kind:   trace.AuditTwinClear,
			Tier:   "twin",
			Cause:  o.curDrift.Class,
			Detail: fmt.Sprintf("worst rt rel err %.0f%%", o.curDrift.MaxRelErr*100),
			Value:  o.curDrift.MaxRelErr,
		})
	}
}

// Finish seals a still-open drift at the run end (marked Open).
func (o *Observer) Finish(end des.Time) {
	if o == nil || !o.inDrift {
		return
	}
	o.closeDrift(end, true)
}

// push appends a sample, bounded by SampleCap (oldest dropped first).
func (o *Observer) push(s Sample) {
	if len(o.samples) >= o.cfg.SampleCap {
		n := copy(o.samples, o.samples[1:])
		o.samples = o.samples[:n]
		o.dropped++
	}
	o.samples = append(o.samples, s)
}

// Samples returns the retained evaluation series, oldest first
// (simulation goroutine only).
func (o *Observer) Samples() []Sample {
	if o == nil {
		return nil
	}
	out := make([]Sample, len(o.samples))
	copy(out, o.samples)
	return out
}

// Dropped reports how many samples fell out of the bounded series.
func (o *Observer) Dropped() int {
	if o == nil {
		return 0
	}
	return o.dropped
}

// Drifts returns the sealed drift events, in raise order (simulation
// goroutine only; call Finish first to seal an open one).
func (o *Observer) Drifts() []DriftEvent {
	if o == nil {
		return nil
	}
	out := make([]DriftEvent, len(o.drifts))
	copy(out, o.drifts)
	return out
}

// Ticks returns the evaluated-tick counter (safe from any goroutine).
func (o *Observer) Ticks() uint64 {
	if o == nil {
		return 0
	}
	return o.ticks.Load()
}

// Applicable returns the applicable-tick counter (safe from any
// goroutine).
func (o *Observer) Applicable() uint64 {
	if o == nil {
		return 0
	}
	return o.applicable.Load()
}

// DriftCount returns the raised-drift counter (safe from any
// goroutine).
func (o *Observer) DriftCount() uint64 {
	if o == nil {
		return 0
	}
	return o.driftTotal.Load()
}

// InDrift reports whether the flag is currently raised (safe from any
// goroutine).
func (o *Observer) InDrift() bool { return o != nil && o.inFlag.Load() }

// LastRelErr returns the most recent applicable tick's RT relative
// error (NaN before the first; safe from any goroutine).
func (o *Observer) LastRelErr() float64 {
	if o == nil {
		return math.NaN()
	}
	return math.Float64frombits(o.relErrBits.Load())
}

// LastLittlesResidual returns the most recent applicable tick's
// Little's-law residual (NaN before the first; safe from any
// goroutine).
func (o *Observer) LastLittlesResidual() float64 {
	if o == nil {
		return math.NaN()
	}
	return math.Float64frombits(o.littleBits.Load())
}

// Register exposes the twin through a telemetry registry:
//
//	twin_rt_rel_err       gauge    last applicable |pred−obs|/obs on mean RT
//	twin_littles_residual gauge    last applicable |N − X·(R+Z)|/N
//	twin_in_drift         gauge    1 while the drift flag is raised
//	twin_ticks_total      counter  evaluated snapshots
//	twin_applicable_total counter  snapshots that passed the regime gate
//	twin_drift_total      counter  drift flags raised
//
// All read atomics, so the live Prometheus handler can scrape them from
// its own goroutine mid-run. NaN gauges (before the first applicable
// tick) are exposed as 0 — OpenMetrics text has no NaN literal
// consumers agree on.
func (o *Observer) Register(reg *telemetry.Registry) {
	if o == nil || reg == nil {
		return
	}
	noNaN := func(v float64) float64 {
		if math.IsNaN(v) {
			return 0
		}
		return v
	}
	reg.GaugeFunc("twin_rt_rel_err",
		"Analytical twin: last applicable RT relative error |pred-obs|/obs.",
		func() float64 { return noNaN(o.LastRelErr()) })
	reg.GaugeFunc("twin_littles_residual",
		"Analytical twin: last applicable Little's-law residual |N - X(R+Z)|/N.",
		func() float64 { return noNaN(o.LastLittlesResidual()) })
	reg.GaugeFunc("twin_in_drift",
		"1 while the analytical twin flags sustained model/measurement divergence.",
		func() float64 {
			if o.InDrift() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("twin_ticks_total",
		"Analytical twin snapshots evaluated.",
		func() float64 { return float64(o.Ticks()) })
	reg.CounterFunc("twin_applicable_total",
		"Analytical twin snapshots that passed the regime-applicability gate.",
		func() float64 { return float64(o.Applicable()) })
	reg.CounterFunc("twin_drift_total",
		"Drift flags raised by the analytical twin.",
		func() float64 { return float64(o.DriftCount()) })
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// relChange is |a−b| relative to the larger magnitude (0 when both are
// 0).
func relChange(a, b int) float64 {
	den := maxInt(abs(a), abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(float64(a-b)) / float64(den)
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
