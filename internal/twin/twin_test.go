package twin

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"conscale/internal/des"
	"conscale/internal/qnet"
	"conscale/internal/rubbos"
	"conscale/internal/trace"
)

func testModel() Model {
	wl := rubbos.NewWorkload(rubbos.BrowseOnly, 1)
	return Model{
		Workload:  func() *rubbos.Workload { return wl },
		ThinkTime: 3,
		WebCores:  1, AppCores: 1, DBCores: 1,
		DiskChans: 1,
	}
}

// steadyObs builds an observation whose window measurements match the
// MVA solution exactly — the "calibrated regime" in miniature.
func steadyObs(t *testing.T, o *Observer, m Model, now des.Time, clients int) Observation {
	t.Helper()
	net, err := qnet.SnapshotNetwork(qnet.LiveState{
		Workload: m.Workload(), ThinkTime: m.ThinkTime,
		WebVMs: 1, AppVMs: 2, DBVMs: 1,
		WebCores: m.WebCores, AppCores: m.AppCores, DBCores: m.DBCores,
		DiskChans: m.DiskChans,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := net.Solve(clients)
	okN := int(res.Throughput * float64(o.Config().Interval))
	if okN < 1 {
		okN = 1
	}
	for i := 0; i < okN; i++ {
		o.ObserveArrival()
		o.Observe(now, res.ResponseTime, true)
	}
	obs := Observation{Time: now, Clients: clients}
	obs.Web = TierObs{Ready: 1}
	obs.App = TierObs{Ready: 2}
	obs.DB = TierObs{Ready: 1}
	if i := net.StationIndex("web-cpu"); i >= 0 {
		obs.Web.CPU = res.Utilization[i]
	}
	if i := net.StationIndex("app-cpu"); i >= 0 {
		obs.App.CPU = res.Utilization[i]
	}
	if i := net.StationIndex("db-cpu"); i >= 0 {
		obs.DB.CPU = res.Utilization[i]
	}
	return obs
}

func TestTwinAgreesInSteadyRegime(t *testing.T) {
	m := testModel()
	o := New(Config{}, m)
	now := des.Time(0)
	for i := 0; i < 5; i++ {
		now += o.Config().Interval
		o.Tick(steadyObs(t, o, m, now, 300))
	}
	samples := o.Samples()
	if len(samples) != 5 {
		t.Fatalf("samples = %d", len(samples))
	}
	for i, s := range samples {
		if !s.Applicable {
			t.Fatalf("sample %d inapplicable: %s", i, s.Reason)
		}
		// The fed window quantises throughput to whole completions, so
		// allow a percent of discretisation noise on top of agreement.
		if s.RTRelErr > 0.01 {
			t.Fatalf("sample %d: rt rel err %v in a fabricated perfect regime", i, s.RTRelErr)
		}
		if s.UtilGap > 0.01 {
			t.Fatalf("sample %d: util gap %v", i, s.UtilGap)
		}
		if s.LittlesResidual > 0.02 {
			t.Fatalf("sample %d: Little residual %v", i, s.LittlesResidual)
		}
		if s.InDrift {
			t.Fatalf("sample %d drifted in a perfect regime", i)
		}
	}
	if o.DriftCount() != 0 {
		t.Fatalf("drift count %d", o.DriftCount())
	}
	if got := o.LastRelErr(); math.IsNaN(got) || got > 0.01 {
		t.Fatalf("LastRelErr = %v", got)
	}
}

// TestAdversarialWindowsInapplicable is the invariant-probe satellite:
// an empty window, an all-dropped window, and a mid-scale-out
// transition must each report "regime inapplicable" — and must not
// advance the drift machine even when surrounded by divergent samples.
func TestAdversarialWindowsInapplicable(t *testing.T) {
	m := testModel()
	cases := []struct {
		name   string
		feed   func(o *Observer, now des.Time) Observation
		substr string
	}{
		{
			"empty window",
			func(o *Observer, now des.Time) Observation {
				return Observation{Time: now, Clients: 300,
					Web: TierObs{Ready: 1}, App: TierObs{Ready: 2}, DB: TierObs{Ready: 1}}
			},
			"empty window",
		},
		{
			"all requests dropped",
			func(o *Observer, now des.Time) Observation {
				for i := 0; i < 50; i++ {
					o.ObserveArrival()
					o.Observe(now, 0, false)
				}
				return Observation{Time: now, Clients: 300,
					Web: TierObs{Ready: 1}, App: TierObs{Ready: 2}, DB: TierObs{Ready: 1}}
			},
			"all requests dropped",
		},
		{
			"mid-scale-out boot",
			func(o *Observer, now des.Time) Observation {
				for i := 0; i < 50; i++ {
					o.ObserveArrival()
					o.Observe(now, 0.05, true)
				}
				return Observation{Time: now, Clients: 300, BootingVMs: 1,
					Web: TierObs{Ready: 1}, App: TierObs{Ready: 2}, DB: TierObs{Ready: 1}}
			},
			"scale transition",
		},
		{
			"ready count changed",
			func(o *Observer, now des.Time) Observation {
				for i := 0; i < 50; i++ {
					o.ObserveArrival()
					o.Observe(now, 0.05, true)
				}
				// Prime the previous tick with a different app-tier size.
				return Observation{Time: now, Clients: 300,
					Web: TierObs{Ready: 1}, App: TierObs{Ready: 3}, DB: TierObs{Ready: 1}}
			},
			"ready VM count changed",
		},
		{
			"tier dark mid-repair",
			func(o *Observer, now des.Time) Observation {
				// The first dark tick trips the transition gate; the
				// second, with the ready set stable, must surface the
				// model's own "tier dark" error.
				dark := Observation{Time: now, Clients: 300,
					Web: TierObs{Ready: 1}, App: TierObs{Ready: 0}, DB: TierObs{Ready: 1}}
				for i := 0; i < 50; i++ {
					o.ObserveArrival()
					o.Observe(now, 0.05, true)
				}
				o.Tick(dark)
				dark.Time += o.Config().Interval
				for i := 0; i < 50; i++ {
					o.ObserveArrival()
					o.Observe(dark.Time, 0.05, true)
				}
				return dark
			},
			"tier dark",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := New(Config{DriftTicks: 1}, m) // hair trigger: any spurious sample would flag
			now := o.Config().Interval
			// Prime one steady tick so transition gates have a previous state.
			o.Tick(steadyObs(t, o, m, now, 300))
			now += o.Config().Interval
			o.Tick(tc.feed(o, now))
			samples := o.Samples()
			last := samples[len(samples)-1]
			if last.Applicable {
				t.Fatalf("adversarial window applicable: %+v", last)
			}
			if !strings.HasPrefix(last.Reason, "regime inapplicable: ") ||
				!strings.Contains(last.Reason, tc.substr) {
				t.Fatalf("reason %q does not mention %q", last.Reason, tc.substr)
			}
			if last.InDrift || o.DriftCount() != 0 {
				t.Fatalf("spurious drift flag on %s", tc.name)
			}
		})
	}
}

func TestPopulationRampAndFlowImbalanceGates(t *testing.T) {
	m := testModel()
	o := New(Config{}, m)
	now := o.Config().Interval
	o.Tick(steadyObs(t, o, m, now, 300))

	// 300 -> 500 clients between ticks: > 10% ramp.
	now += o.Config().Interval
	obs := steadyObs(t, o, m, now, 500)
	o.Tick(obs)
	s := o.Samples()[1]
	if s.Applicable || !strings.Contains(s.Reason, "population ramp") {
		t.Fatalf("ramp tick: %+v", s)
	}

	// Arrivals far above completions: flow imbalance.
	now += o.Config().Interval
	for i := 0; i < 200; i++ {
		o.ObserveArrival()
	}
	for i := 0; i < 100; i++ {
		o.Observe(now, 0.05, true)
	}
	o.Tick(Observation{Time: now, Clients: 500,
		Web: TierObs{Ready: 1}, App: TierObs{Ready: 2}, DB: TierObs{Ready: 1}})
	s = o.Samples()[2]
	if s.Applicable || !strings.Contains(s.Reason, "flow imbalance") {
		t.Fatalf("imbalance tick: %+v", s)
	}

	// Population beyond the solver cap.
	o2 := New(Config{MaxPopulation: 100}, m)
	now = o2.Config().Interval
	o2.Tick(steadyObs(t, o2, m, now, 300))
	s = o2.Samples()[0]
	if s.Applicable || !strings.Contains(s.Reason, "above solver cap") {
		t.Fatalf("cap tick: %+v", s)
	}
}

type fakeEpisodes struct{ in bool }

func (f *fakeEpisodes) InEpisode() bool { return f.in }

func TestDriftRaisesClassifiesAndClears(t *testing.T) {
	m := testModel()
	o := New(Config{DriftTicks: 2, ClearTicks: 2}, m)
	audit := trace.NewAudit()
	o.SetAudit(audit)
	eps := &fakeEpisodes{}
	o.SetEpisodeSource(eps)

	divergent := func(now des.Time, clients int) Observation {
		for i := 0; i < 100; i++ {
			o.ObserveArrival()
			// 3 s observed RT against a ~50 ms prediction: huge error.
			o.Observe(now, 3.0, true)
		}
		return Observation{Time: now, Clients: clients,
			Web: TierObs{Ready: 1}, App: TierObs{Ready: 2}, DB: TierObs{Ready: 1}}
	}
	now := des.Time(0)
	for i := 0; i < 2; i++ {
		now += o.Config().Interval
		o.Tick(divergent(now, 300))
	}
	if !o.InDrift() || o.DriftCount() != 1 {
		t.Fatalf("drift not raised: inDrift=%v count=%d", o.InDrift(), o.DriftCount())
	}
	// Calm system at raise time: must classify as model-bug candidate.
	for i := 0; i < 2; i++ {
		now += o.Config().Interval
		o.Tick(steadyObs(t, o, m, now, 300))
	}
	if o.InDrift() {
		t.Fatal("drift did not clear after matching ticks")
	}
	drifts := o.Drifts()
	if len(drifts) != 1 || drifts[0].Class != ClassModelBug || drifts[0].InEpisode {
		t.Fatalf("drifts = %+v", drifts)
	}
	var kinds []trace.AuditKind
	for _, e := range audit.Events() {
		kinds = append(kinds, e.Kind)
	}
	if len(kinds) != 2 || kinds[0] != trace.AuditTwinDrift || kinds[1] != trace.AuditTwinClear {
		t.Fatalf("audit kinds = %v", kinds)
	}

	// Raise again inside a forensics episode: classifies transient.
	eps.in = true
	for i := 0; i < 2; i++ {
		now += o.Config().Interval
		o.Tick(divergent(now, 300))
	}
	o.Finish(now)
	drifts = o.Drifts()
	if len(drifts) != 2 || drifts[1].Class != ClassTransient || !drifts[1].InEpisode || !drifts[1].Open {
		t.Fatalf("drifts after episode-raise = %+v", drifts)
	}
}

// TestTwinDisabledZeroAlloc pins the house rule: the disabled (and nil)
// hot path allocates nothing.
func TestTwinDisabledZeroAlloc(t *testing.T) {
	o := New(Config{}, testModel())
	o.SetEnabled(false)
	obs := Observation{Time: 1, Clients: 10,
		Web: TierObs{Ready: 1}, App: TierObs{Ready: 1}, DB: TierObs{Ready: 1}}
	if n := testing.AllocsPerRun(1000, func() {
		o.ObserveArrival()
		o.Observe(1, 0.05, true)
		o.Tick(obs)
	}); n != 0 {
		t.Fatalf("disabled twin: %v allocs/op", n)
	}
	var nilO *Observer
	if n := testing.AllocsPerRun(1000, func() {
		nilO.ObserveArrival()
		nilO.Observe(1, 0.05, true)
		nilO.Tick(obs)
		_ = nilO.InDrift()
	}); n != 0 {
		t.Fatalf("nil twin: %v allocs/op", n)
	}
}

func TestSampleCapBounds(t *testing.T) {
	m := testModel()
	o := New(Config{SampleCap: 3}, m)
	now := des.Time(0)
	for i := 0; i < 10; i++ {
		now += o.Config().Interval
		o.Tick(steadyObs(t, o, m, now, 300))
	}
	if len(o.Samples()) != 3 {
		t.Fatalf("retained %d samples, cap 3", len(o.Samples()))
	}
	if o.Dropped() != 7 {
		t.Fatalf("dropped = %d", o.Dropped())
	}
	if o.Ticks() != 10 {
		t.Fatalf("ticks = %d", o.Ticks())
	}
}

func TestExportCSVAndChrome(t *testing.T) {
	m := testModel()
	o := New(Config{DriftTicks: 1, ClearTicks: 1}, m)
	now := o.Config().Interval
	o.Tick(steadyObs(t, o, m, now, 300))
	now += o.Config().Interval
	o.Tick(Observation{Time: now, Clients: 300,
		Web: TierObs{Ready: 1}, App: TierObs{Ready: 2}, DB: TierObs{Ready: 1}}) // empty window
	o.Finish(now)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, o.Samples()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "time_s,clients,applicable,reason") {
		t.Fatalf("header = %s", lines[0])
	}
	if !strings.Contains(lines[2], "regime inapplicable") {
		t.Fatalf("inapplicable row lost its reason: %s", lines[2])
	}

	doc := &trace.ChromeTrace{DisplayTimeUnit: "ms"}
	AppendChrome(doc, o.Samples(), o.Drifts())
	var counters, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "C":
			counters++
		case "i":
			instants++
		}
	}
	if counters != 2 || instants != 1 {
		t.Fatalf("chrome events: %d counters, %d instants", counters, instants)
	}
	AppendChrome(nil, o.Samples(), o.Drifts()) // nil doc is a no-op
}

func BenchmarkTwinObserveDisabled(b *testing.B) {
	o := New(Config{}, testModel())
	o.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.ObserveArrival()
		o.Observe(1, 0.05, true)
	}
}

func BenchmarkTwinTickSteady(b *testing.B) {
	m := testModel()
	o := New(Config{}, m)
	obs := Observation{Clients: 2500,
		Web: TierObs{Ready: 2, CPU: 0.5}, App: TierObs{Ready: 4, CPU: 0.5}, DB: TierObs{Ready: 2, CPU: 0.5}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obs.Time += o.Config().Interval
		for j := 0; j < 100; j++ {
			o.ObserveArrival()
			o.Observe(obs.Time, 0.05, true)
		}
		o.Tick(obs)
	}
}
