package twin

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"conscale/internal/trace"
)

// WriteCSV writes the sample series as CSV, one row per tick. Times are
// seconds, response times milliseconds, utilizations 0..1; inapplicable
// ticks carry their reason and empty prediction columns.
func WriteCSV(w io.Writer, samples []Sample) error {
	cw := csv.NewWriter(w)
	header := []string{
		"time_s", "clients", "applicable", "reason",
		"obs_tp", "pred_tp", "obs_rt_ms", "pred_rt_ms",
		"rt_rel_err", "tp_rel_err", "littles_resid", "flow_resid", "util_gap",
		"web_util_obs", "web_util_pred", "app_util_obs", "app_util_pred",
		"db_util_obs", "db_util_pred", "in_drift",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	for _, s := range samples {
		row := []string{
			f(float64(s.Time)), strconv.Itoa(s.Clients),
			strconv.FormatBool(s.Applicable), s.Reason,
		}
		if s.Applicable {
			row = append(row,
				f(s.ObsThroughput), f(s.PredThroughput),
				f(s.ObsMeanRT*1000), f(s.PredRT*1000),
				f(s.RTRelErr), f(s.TPRelErr), f(s.LittlesResidual), f(s.FlowResidual), f(s.UtilGap),
				f(s.Web.ObsUtil), f(s.Web.PredUtil),
				f(s.App.ObsUtil), f(s.App.PredUtil),
				f(s.DB.ObsUtil), f(s.DB.PredUtil),
			)
		} else {
			row = append(row,
				f(s.ObsThroughput), "", f(s.ObsMeanRT*1000), "",
				"", "", "", f(s.FlowResidual), "",
				f(s.Web.ObsUtil), "", f(s.App.ObsUtil), "", f(s.DB.ObsUtil), "",
			)
		}
		row = append(row, strconv.FormatBool(s.InDrift))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// AppendChrome adds the twin as a Perfetto annotation track to a Chrome
// trace document: predicted-vs-observed RT and throughput as "C"
// counter series (they render as stacked area charts the viewer plots
// beside the span waterfall), each drift event as an "X" slice on pid 0
// / tid 998 named by its classification, and each inapplicable tick as
// an "i" instant carrying the reason.
func AppendChrome(doc *trace.ChromeTrace, samples []Sample, drifts []DriftEvent) {
	if doc == nil {
		return
	}
	const twinTid = 998
	for _, s := range samples {
		ts := float64(s.Time) * 1e6
		if s.Applicable {
			doc.TraceEvents = append(doc.TraceEvents,
				trace.ChromeEvent{
					Name: "twin rt (ms)", Cat: "twin", Ph: "C", Ts: ts, Pid: 0, Tid: twinTid,
					Args: map[string]any{"pred": s.PredRT * 1000, "obs": s.ObsMeanRT * 1000},
				},
				trace.ChromeEvent{
					Name: "twin throughput (1/s)", Cat: "twin", Ph: "C", Ts: ts, Pid: 0, Tid: twinTid,
					Args: map[string]any{"pred": s.PredThroughput, "obs": s.ObsThroughput},
				})
			continue
		}
		doc.TraceEvents = append(doc.TraceEvents, trace.ChromeEvent{
			Name: "twin:inapplicable", Cat: "twin", Ph: "i", Ts: ts, Pid: 0, Tid: twinTid, S: "t",
			Args: map[string]any{"reason": s.Reason},
		})
	}
	for i, d := range drifts {
		doc.TraceEvents = append(doc.TraceEvents, trace.ChromeEvent{
			Name: fmt.Sprintf("twin-drift#%d", i+1),
			Cat:  "twin", Ph: "X",
			Ts: float64(d.At) * 1e6, Dur: float64(d.ClearedAt-d.At) * 1e6,
			Pid: 0, Tid: twinTid,
			Args: map[string]any{
				"class":       d.Class,
				"in_episode":  d.InEpisode,
				"max_rel_err": d.MaxRelErr,
				"open":        d.Open,
			},
		})
	}
}
