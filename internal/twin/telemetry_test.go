package twin

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"conscale/internal/des"
	"conscale/internal/telemetry"
)

// TestTwinMetricsPromRoundTrip drives the observer into drift, serves
// the registry through the live Prometheus handler, and parses the
// exposition back — the satellite contract that twin_rt_rel_err /
// twin_littles_residual / twin_in_drift survive the full
// register → expose → parse loop (mirrors
// forensics.TestEpisodeMetricsPromRoundTrip).
func TestTwinMetricsPromRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := testModel()
	o := New(Config{DriftTicks: 2, ClearTicks: 2}, m)
	o.Register(reg)

	scrape := func() map[string]float64 {
		srv := httptest.NewServer(telemetry.Handler(reg))
		defer srv.Close()
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		fams, err := telemetry.ParseProm(strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("exposition does not round-trip: %v\n%s", err, body)
		}
		vals := map[string]float64{}
		for _, fam := range fams {
			for _, s := range fam.Samples {
				vals[s.Name] = s.Value
			}
		}
		return vals
	}

	vals := scrape()
	if vals["twin_in_drift"] != 0 || vals["twin_ticks_total"] != 0 {
		t.Fatalf("pre-run scrape = %v", vals)
	}
	// NaN-before-first-sample must expose as 0, not break the parser.
	if vals["twin_rt_rel_err"] != 0 || vals["twin_littles_residual"] != 0 {
		t.Fatalf("NaN gauges leaked: %v", vals)
	}

	// One steady tick, then enough divergent ticks to raise the flag.
	now := o.Config().Interval
	o.Tick(steadyObs(t, o, m, now, 300))
	for i := 0; i < 2; i++ {
		now += o.Config().Interval
		for j := 0; j < 100; j++ {
			o.ObserveArrival()
			o.Observe(now, 3.0, true)
		}
		o.Tick(Observation{Time: now, Clients: 300,
			Web: TierObs{Ready: 1}, App: TierObs{Ready: 2}, DB: TierObs{Ready: 1}})
	}
	vals = scrape()
	if vals["twin_in_drift"] != 1 {
		t.Fatalf("twin_in_drift = %v mid-drift", vals["twin_in_drift"])
	}
	if vals["twin_drift_total"] != 1 {
		t.Fatalf("twin_drift_total = %v", vals["twin_drift_total"])
	}
	if vals["twin_ticks_total"] != 3 || vals["twin_applicable_total"] != 3 {
		t.Fatalf("tick counters = %v", vals)
	}
	if vals["twin_rt_rel_err"] < 0.5 {
		t.Fatalf("twin_rt_rel_err = %v, want the huge divergence visible", vals["twin_rt_rel_err"])
	}

	// Matching ticks clear the flag; the gauge must follow.
	for i := 0; i < 2; i++ {
		now += o.Config().Interval
		o.Tick(steadyObs(t, o, m, now, 300))
	}
	vals = scrape()
	if vals["twin_in_drift"] != 0 {
		t.Fatalf("twin_in_drift = %v after clear", vals["twin_in_drift"])
	}
	if vals["twin_rt_rel_err"] > 0.01 {
		t.Fatalf("twin_rt_rel_err = %v after recovery", vals["twin_rt_rel_err"])
	}
	_ = des.Time(0)
}
