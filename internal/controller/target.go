package controller

import (
	"fmt"
	"math"

	"conscale/internal/cluster"
	"conscale/internal/des"
)

// scalableTiers is the tier order every policy walks each tick.
var scalableTiers = []cluster.Tier{cluster.App, cluster.DB}

// TargetTracking is the AWS-style target-tracking policy: each tick it
// computes the capacity that would bring tier CPU back to the target
// setpoint (desired = ceil(ready × cpu / target), the application
// auto-scaling formula) and scales toward it, out aggressively and in
// conservatively — scale-in waits for a sustained quiet period and its
// own longer cooldown, the "quick start but slow turn off" shape shared
// with the paper's threshold engine.
//
// With UseSCT it additionally consumes the composable SCT signal for
// soft-resource pool sizing, demonstrating that the concurrency-range
// estimate composes with policies the paper never evaluated.
type TargetTracking struct {
	// Target is the CPU setpoint (default 0.65).
	Target float64
	// InMargin scales the setpoint for the scale-in band: capacity is
	// released only while cpu < Target×InMargin (default 0.9) sustained.
	InMargin float64
	// SustainIn is the consecutive quiet checks before scale-in.
	SustainIn int
	// OutCooldown / InCooldown block repeat actions per tier.
	OutCooldown, InCooldown des.Time
	// UseSCT arms SCT-driven pool adaptation (the -sct variant).
	UseSCT bool

	env     Env
	lastOut map[cluster.Tier]des.Time
	lastIn  map[cluster.Tier]des.Time
	below   map[cluster.Tier]int
}

func init() {
	Register("target-tracking", func(opts Options) Controller {
		return newTargetTracking(opts, false)
	})
	Register("target-tracking-sct", func(opts Options) Controller {
		return newTargetTracking(opts, true)
	})
}

func newTargetTracking(opts Options, useSCT bool) *TargetTracking {
	return &TargetTracking{
		Target:      0.65,
		InMargin:    0.9,
		SustainIn:   opts.Base.SustainIn,
		OutCooldown: opts.Base.OutCooldown,
		InCooldown:  opts.Base.InCooldown,
		UseSCT:      useSCT,
	}
}

// Name implements Controller.
func (t *TargetTracking) Name() string {
	if t.UseSCT {
		return "target-tracking-sct"
	}
	return "target-tracking"
}

// Init implements Controller.
func (t *TargetTracking) Init(env Env) {
	t.env = env
	t.lastOut = make(map[cluster.Tier]des.Time)
	t.lastIn = make(map[cluster.Tier]des.Time)
	t.below = make(map[cluster.Tier]int)
}

// Stop implements Controller.
func (t *TargetTracking) Stop() {}

// Tick implements Controller.
func (t *TargetTracking) Tick(obs *Observation) {
	if t.UseSCT {
		t.env.Signal.ApplyPools(t.env.Act, obs)
	}
	for _, tier := range scalableTiers {
		st := obs.App
		if tier == cluster.DB {
			st = obs.DB
		}
		if st.Ready == 0 {
			continue
		}
		desired := int(math.Ceil(float64(st.Ready) * st.CPU / t.Target))
		if desired > st.Ready {
			if st.Pending || obs.Now-t.lastOut[tier] < t.OutCooldown {
				continue
			}
			cause := fmt.Sprintf("target-tracking: cpu=%.2f > target=%.2f, desired=%d ready=%d",
				st.CPU, t.Target, desired, st.Ready)
			if t.env.Act.ScaleOut(tier, cause) {
				t.lastOut[tier] = obs.Now
				t.below[tier] = 0
			}
			continue
		}
		if desired < st.Ready && st.CPU < t.Target*t.InMargin {
			t.below[tier]++
		} else {
			t.below[tier] = 0
		}
		if t.below[tier] >= t.SustainIn && st.Ready > 1 && !st.Pending &&
			obs.Now-t.lastIn[tier] >= t.InCooldown && obs.Now-t.lastOut[tier] >= t.InCooldown {
			cause := fmt.Sprintf("target-tracking: cpu=%.2f < %.2f for %d checks, desired=%d ready=%d",
				st.CPU, t.Target*t.InMargin, t.below[tier], desired, st.Ready)
			if t.env.Act.ScaleIn(tier, cause) {
				t.lastIn[tier] = obs.Now
				t.below[tier] = 0
			}
		}
	}
}

// StepScaling is the AWS step-scaling policy shape: breach-magnitude
// bands map to step adjustments — one VM above the High threshold, two
// in the surge band — while scale-in releases one VM after a long
// sustained quiet period. Both directions honor per-tier cooldowns; the
// surge band may burst two launches in one tick (the Runtime tracks
// multiple in-flight launches).
type StepScaling struct {
	// High / Surge / Low bound the bands: +1 VM in [High, Surge),
	// +2 VMs at ≥ Surge, -1 VM below Low.
	High, Surge, Low float64
	// SustainOut / SustainIn are the consecutive breaches required
	// before acting.
	SustainOut, SustainIn int
	// OutCooldown / InCooldown block repeat actions per tier.
	OutCooldown, InCooldown des.Time

	env     Env
	above   map[cluster.Tier]int
	below   map[cluster.Tier]int
	lastOut map[cluster.Tier]des.Time
	lastIn  map[cluster.Tier]des.Time
}

func init() {
	Register("step-scaling", func(opts Options) Controller {
		return &StepScaling{
			High:        opts.Base.High,
			Surge:       0.90,
			Low:         opts.Base.Low,
			SustainOut:  opts.Base.SustainOut,
			SustainIn:   opts.Base.SustainIn,
			OutCooldown: opts.Base.OutCooldown,
			InCooldown:  opts.Base.InCooldown,
		}
	})
}

// Name implements Controller.
func (s *StepScaling) Name() string { return "step-scaling" }

// Init implements Controller.
func (s *StepScaling) Init(env Env) {
	s.env = env
	s.above = make(map[cluster.Tier]int)
	s.below = make(map[cluster.Tier]int)
	s.lastOut = make(map[cluster.Tier]des.Time)
	s.lastIn = make(map[cluster.Tier]des.Time)
}

// Stop implements Controller.
func (s *StepScaling) Stop() {}

// Tick implements Controller.
func (s *StepScaling) Tick(obs *Observation) {
	for _, tier := range scalableTiers {
		st := obs.App
		if tier == cluster.DB {
			st = obs.DB
		}
		switch {
		case st.CPU > s.High:
			s.above[tier]++
			s.below[tier] = 0
		case st.CPU < s.Low:
			s.below[tier]++
			s.above[tier] = 0
		default:
			s.above[tier], s.below[tier] = 0, 0
		}
		if s.above[tier] >= s.SustainOut && !st.Pending && obs.Now-s.lastOut[tier] >= s.OutCooldown {
			steps := 1
			if st.CPU >= s.Surge {
				steps = 2
			}
			cause := fmt.Sprintf("step-scaling: cpu=%.2f for %d checks, step=+%d", st.CPU, s.above[tier], steps)
			fired := false
			for i := 0; i < steps; i++ {
				if s.env.Act.ScaleOut(tier, cause) {
					fired = true
				}
			}
			if fired {
				s.lastOut[tier] = obs.Now
				s.above[tier] = 0
			}
		}
		if s.below[tier] >= s.SustainIn && st.Ready > 1 && !st.Pending &&
			obs.Now-s.lastIn[tier] >= s.InCooldown && obs.Now-s.lastOut[tier] >= s.InCooldown {
			cause := fmt.Sprintf("step-scaling: cpu=%.2f < %.2f for %d checks, step=-1", st.CPU, s.Low, s.below[tier])
			if s.env.Act.ScaleIn(tier, cause) {
				s.lastIn[tier] = obs.Now
				s.above[tier], s.below[tier] = 0, 0
			}
		}
	}
}
