package controller

import (
	"fmt"

	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/metrics"
	"conscale/internal/scaling"
	"conscale/internal/sct"
	"conscale/internal/trace"
)

// Signal is the composable SCT concurrency-range estimator: the paper's
// Scatter-Concurrency-Throughput model over the metric warehouse,
// refreshed asynchronously and exposed as a per-tier recommendation any
// controller can consume — hardware-only policies may ignore it, hybrid
// policies can feed it into pool sizing without reimplementing the
// estimator.
type Signal struct {
	base   scaling.Config
	est    *sct.Estimator
	c      *cluster.Cluster
	w      *metrics.Warehouse
	audit  *trace.Audit
	cached map[string]timedEstimate

	lastEscape map[cluster.Tier]des.Time
}

// timedEstimate stamps an estimate with its refresh time so stale views
// of a past regime age out with the collection window.
type timedEstimate struct {
	est sct.Estimate
	at  des.Time
}

// newSignal builds the signal over a cluster and its warehouse.
func newSignal(c *cluster.Cluster, w *metrics.Warehouse, base scaling.Config) *Signal {
	return &Signal{
		base:       base,
		est:        sct.New(base.SCT),
		c:          c,
		w:          w,
		cached:     make(map[string]timedEstimate),
		lastEscape: make(map[cluster.Tier]des.Time),
	}
}

// refresh re-runs the SCT model over each non-draining app/DB server's
// recent window — the asynchronous Optimal Concurrency Estimator
// workflow of the paper's Fig. 8.
func (s *Signal) refresh() {
	now := s.c.Eng.Now()
	since := now - s.est.Config().CollectionWindow
	for _, tier := range []cluster.Tier{cluster.App, cluster.DB} {
		for _, srv := range s.c.Servers(tier) {
			if srv.Draining() {
				continue
			}
			est, ok := s.est.Estimate(s.w.FineSince(srv.Name(), since))
			if !ok {
				continue
			}
			s.cached[srv.Name()] = timedEstimate{est: est, at: now}
			s.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditSCTEstimate, Tier: tier.String(),
				Cause: "signal refresh", Detail: srv.Name(),
				Qlower: est.Qlower, Qupper: est.Qupper, Value: est.PlateauTP})
		}
	}
}

// Estimates returns the current per-server view.
func (s *Signal) Estimates() map[string]sct.Estimate {
	out := make(map[string]sct.Estimate, len(s.cached))
	for k, v := range s.cached {
		out[k] = v.est
	}
	return out
}

// Tier aggregates the cached per-server estimates of a tier: the mean
// optimal concurrency of the fresh estimates, with Saturated set when a
// majority witnessed the curve's descending stage.
func (s *Signal) Tier(tier cluster.Tier) TierEstimate {
	now := s.c.Eng.Now()
	maxAge := s.est.Config().CollectionWindow
	sum, n, sat := 0, 0, 0
	for _, srv := range s.c.Servers(tier) {
		if srv.Draining() {
			continue
		}
		te, found := s.cached[srv.Name()]
		if !found || now-te.at > maxAge {
			continue // stale: describes a regime the window no longer covers
		}
		sum += te.est.Optimal()
		n++
		if te.est.Saturated {
			sat++
		}
	}
	if n == 0 {
		return TierEstimate{}
	}
	return TierEstimate{Optimal: (sum + n/2) / n, Saturated: sat*2 > n, OK: true}
}

// ApplyPools turns the tier-aggregated signal into soft-resource
// actuation, mirroring ConScale's policy: the app tier gets the
// estimated per-server optimal thread pool; the DB tier's total optimal
// concurrency is split across the app servers' connection pools. Only
// saturated estimates may tighten an allocation — an ascending-only
// curve proves nothing about the optimum being lower than the current
// setting. It also applies the under-allocation escape: when requests
// queue while the tier's critical hardware idles, the pool (not
// hardware) binds, so the allocation widens multiplicatively until the
// curve's descending stage becomes observable again; tightening is held
// off for 30 s after an escape so fresh post-escape data arrives first.
func (s *Signal) ApplyPools(act Actuator, obs *Observation) {
	if s == nil {
		return // signal-less environments (unit tests, custom harnesses)
	}
	const escapeHold = 30 * des.Second
	now := obs.Now

	if obs.AppSCT.OK {
		threads := clamp(obs.AppSCT.Optimal, s.base.MinThreads, s.base.MaxThreads)
		recentEscape := s.lastEscape[cluster.App] > 0 && now-s.lastEscape[cluster.App] < escapeHold
		if threads >= obs.Threads || (obs.AppSCT.Saturated && !recentEscape) {
			act.SetAppThreads(threads,
				fmt.Sprintf("sct signal: app optimal=%d saturated=%v", obs.AppSCT.Optimal, obs.AppSCT.Saturated))
		}
	}
	if obs.DBSCT.OK && obs.App.Ready > 0 && obs.DB.Ready > 0 {
		perApp := clamp(ceilDiv(obs.DBSCT.Optimal*obs.DB.Ready, obs.App.Ready), s.base.MinConns, s.base.MaxConns)
		recentEscape := s.lastEscape[cluster.DB] > 0 && now-s.lastEscape[cluster.DB] < escapeHold
		if perApp >= obs.Conns || (obs.DBSCT.Saturated && !recentEscape) {
			act.SetDBConns(perApp,
				fmt.Sprintf("sct signal: db optimal=%d/server saturated=%v", obs.DBSCT.Optimal, obs.DBSCT.Saturated))
		}
	}

	// Under-allocation escape, app tier: accept queues grow while no app
	// server's CPU is near the threshold.
	_, threads, conns := s.c.SoftResources()
	if obs.App.MaxCPU < s.base.High && obs.App.Queue > 2*threads {
		if grown := clamp(threads*3/2, s.base.MinThreads, s.base.MaxThreads); grown > threads {
			s.lastEscape[cluster.App] = now
			act.SetAppThreads(grown,
				fmt.Sprintf("under-allocation escape: %d queued while max cpu=%.2f", obs.App.Queue, obs.App.MaxCPU))
		}
	}
	// DB connections: app threads pile up waiting for the pool while the
	// DB tier's critical resources idle.
	dbBusy := obs.DB.MaxCPU
	if obs.DB.Disk > dbBusy {
		dbBusy = obs.DB.Disk
	}
	if dbBusy < s.base.High && obs.DB.PoolWaiting > 2*conns {
		if grown := clamp(conns*3/2, s.base.MinConns, s.base.MaxConns); grown > conns {
			s.lastEscape[cluster.DB] = now
			act.SetDBConns(grown,
				fmt.Sprintf("under-allocation escape: %d waiting while max db busy=%.2f", obs.DB.PoolWaiting, dbBusy))
		}
	}
}
