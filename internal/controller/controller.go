// Package controller is the pluggable scaling-controller zoo. It turns
// the repo's hardwired three-way Mode switch (EC2 / DCM / ConScale in
// internal/scaling) into an open interface: a Controller observes the
// cluster once per decision tick — tier utilization, queue depths,
// windowed tail latency, and the SCT concurrency-range signal — and
// emits scale-out/in and pool-resize actions through an Actuator that
// handles the bookkeeping every controller shares (pending-launch
// tracking, the dark-tier repair path, the decision log, and the audit
// trail).
//
// The three paper frameworks remain available as adapters ("ec2",
// "dcm", "conscale") that delegate to the untouched scaling.Framework,
// so their trajectories stay byte-identical to the pre-zoo code. The
// new families are grounded in the related work:
//
//   - "target-tracking" / "target-tracking-sct": AWS-style
//     target-tracking on tier CPU with out/in cooldowns (the policy
//     shape of ECS/EC2 application auto-scaling); the -sct variant also
//     consumes the SCT signal for soft-resource adaptation.
//   - "step-scaling": AWS step policies — breach-magnitude bands map to
//     step adjustments (+1 VM above High, +2 above the surge band).
//   - "hybrid-mpc": an OptScaler-style hybrid — a seed-deterministic
//     Holt linear forecaster over per-tier demand feeds a proactive
//     capacity plan, corrected each tick by an MPC-like one-step search
//     over candidate actions.
//   - "tabs-token": TABS-style token-based elasticity (Mukherjee &
//     Borst) — scale-out on idle-token depletion, scale-in after a
//     sustained idle timeout.
//
// Every controller is seeded and deterministic: the same seed and trace
// produce an identical decision log on every run.
package controller

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/scaling"
)

// Controller is one scaling policy. The Runtime drives it: Init is
// called once before simulation events fire, Tick on every decision
// interval with a fresh Observation, and Stop when the run ends.
//
// Controllers act only through env.Act (never by mutating the cluster
// directly), must not retain the Observation past the tick, and must
// draw any randomness from a source seeded by Options.Seed so a run's
// decision log is a pure function of (seed, trace, config).
type Controller interface {
	// Name returns the registry name of the controller.
	Name() string
	// Init attaches the controller to its runtime environment. It runs
	// before the first simulation event fires.
	Init(env Env)
	// Tick observes the cluster once per decision interval and may act
	// through the environment's Actuator.
	Tick(obs *Observation)
	// Stop releases any resources when the run ends.
	Stop()
}

// Env is everything a controller may touch: the cluster (read-only
// inspection), the Actuator (all mutations), the shared SCT signal, and
// the options it was built with.
type Env struct {
	// Cluster is the controlled cluster, for read-only inspection beyond
	// what Observation carries.
	Cluster *cluster.Cluster
	// Act is the only mutation path: scale and pool actions flow through
	// it so the decision log and audit trail see every action.
	Act Actuator
	// Signal is the shared SCT concurrency-range estimator (nil for
	// self-driving legacy adapters, which embed their own).
	Signal *Signal
	// Opts echoes the Options the controller was constructed with.
	Opts Options
}

// Actuator is the action surface the Runtime exposes to controllers.
// Scale actions return false when refused (launch already pending, tier
// at capacity, or last VM); pool setters clamp to the configured range
// and ignore no-op changes.
type Actuator interface {
	// ScaleOut launches one VM on the tier. The cause string lands in
	// the decision log and audit trail.
	ScaleOut(tier cluster.Tier, cause string) bool
	// ScaleIn drains and retires one VM, refusing to empty the tier.
	ScaleIn(tier cluster.Tier, cause string) bool
	// SetAppThreads resizes every app server's thread pool.
	SetAppThreads(n int, cause string)
	// SetDBConns resizes every app server's DB connection pool.
	SetDBConns(n int, cause string)
}

// TierState is the per-tier slice of an Observation.
type TierState struct {
	// CPU is the tier's mean CPU utilization (0..1).
	CPU float64
	// Disk is the highest per-server disk utilization (DB tier).
	Disk float64
	// MinCPU / MaxCPU are the per-server utilization extremes.
	MinCPU, MaxCPU float64
	// Idle counts servers under 10% CPU — the free tokens of a
	// token-based policy.
	Idle int
	// Ready is the in-service VM count.
	Ready int
	// Pending reports a launch in flight (boot not finished).
	Pending bool
	// Queue is the summed accept-queue length across the tier.
	Queue int
	// PoolWaiting counts callers blocked waiting for this tier's
	// connection pools (DB tier: app threads waiting for a connection).
	PoolWaiting int
}

// TierEstimate is the tier-aggregated SCT signal: the mean optimal
// concurrency across the tier's per-server estimates.
type TierEstimate struct {
	// Optimal is the recommended per-server concurrency setting.
	Optimal int
	// Saturated reports whether a majority of contributing estimates
	// witnessed the curve's descending stage (safe to tighten).
	Saturated bool
	// OK reports whether any fresh estimate contributed.
	OK bool
}

// Observation is the per-tick view the Runtime hands to Tick.
type Observation struct {
	// Now is the simulation time of the tick.
	Now des.Time
	// App and DB describe the scalable tiers.
	App, DB TierState
	// Tail is the windowed web-tier tail response time in seconds (the
	// client-visible SLO proxy); NaN while the window is empty.
	Tail float64
	// AppSCT / DBSCT carry the tier-aggregated SCT concurrency signal
	// (zero-valued with OK=false when the signal is dark).
	AppSCT, DBSCT TierEstimate
	// Threads / Conns are the current soft-resource settings.
	Threads, Conns int
}

// Options parameterizes controller construction. Base supplies the
// shared knobs every family reads (thresholds, cooldowns, soft-resource
// clamps, SCT settings); Seed feeds any controller-internal randomness.
type Options struct {
	// Seed is the run seed; deterministic controllers derive any random
	// stream from it.
	Seed uint64
	// Base carries the shared scaling knobs (thresholds, cooldowns,
	// clamps, SCT config). Legacy adapters consume it wholesale.
	Base scaling.Config
	// SLAPercentile is the tail percentile Observation.Tail reports
	// (default 95).
	SLAPercentile float64
	// SLAWindow is the sliding window Tail is measured over (default 10 s).
	SLAWindow des.Time
}

// withDefaults fills the zero-valued Options fields.
func (o Options) withDefaults() Options {
	if o.SLAPercentile <= 0 {
		o.SLAPercentile = 95
	}
	if o.SLAWindow <= 0 {
		o.SLAWindow = 10 * des.Second
	}
	if o.Base.CheckEvery <= 0 {
		o.Base = scaling.DefaultConfig(o.Base.Mode)
	}
	return o
}

// Factory builds one controller instance from options.
type Factory func(opts Options) Controller

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a controller family under a unique name. It panics on a
// duplicate: registration happens at init time and a collision is a
// programming error.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" || f == nil {
		panic("controller: Register with empty name or nil factory")
	}
	if _, dup := registry[key]; dup {
		panic("controller: duplicate registration of " + key)
	}
	registry[key] = f
}

// aliases maps accepted spellings to registry names.
var aliases = map[string]string{
	"ec2-autoscaling": "ec2",
	"tabs":            "tabs-token",
}

// New builds a registered controller by name (case-insensitive;
// "ec2-autoscaling" and "tabs" are accepted aliases). The error names
// every registered controller.
func New(name string, opts Options) (Controller, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := aliases[key]; ok {
		key = canon
	}
	regMu.RLock()
	f, ok := registry[key]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("controller: unknown controller %q; registered: %s",
			name, strings.Join(Names(), ", "))
	}
	return f(opts.withDefaults()), nil
}

// Names returns every registered controller name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// nanSafe replaces NaN with the fallback.
func nanSafe(v, fallback float64) float64 {
	if math.IsNaN(v) {
		return fallback
	}
	return v
}
