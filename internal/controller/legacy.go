package controller

import (
	"conscale/internal/scaling"
)

// legacy adapts one of the three paper frameworks (EC2-AutoScaling,
// DCM, ConScale) to the Controller interface. It is self-driving: the
// wrapped scaling.Framework arms its own monitoring/decision/estimator
// loops exactly as it always has, so a legacy controller's trajectory
// is byte-identical to running the framework directly — a property
// pinned by TestLegacyAdapterByteIdentical.
type legacy struct {
	mode      scaling.Mode
	cfgHolder scaling.Config
	fw        *scaling.Framework
}

func init() {
	for _, mode := range []scaling.Mode{scaling.EC2, scaling.DCM, scaling.ConScale} {
		mode := mode
		name := map[scaling.Mode]string{
			scaling.EC2:      "ec2",
			scaling.DCM:      "dcm",
			scaling.ConScale: "conscale",
		}[mode]
		Register(name, func(opts Options) Controller {
			cfg := opts.Base
			cfg.Mode = mode
			return &legacy{mode: mode, cfgHolder: cfg}
		})
	}
}

// Name implements Controller.
func (l *legacy) Name() string {
	switch l.mode {
	case scaling.EC2:
		return "ec2"
	case scaling.DCM:
		return "dcm"
	default:
		return "conscale"
	}
}

// Init implements Controller: it builds the wrapped framework against
// the run's cluster. The framework arms nothing until the Runtime's
// Start delegates to it.
func (l *legacy) Init(env Env) {
	l.fw = scaling.New(env.Cluster, l.cfgHolder)
}

// Tick implements Controller; the wrapped framework drives itself, so
// the runtime never calls this.
func (l *legacy) Tick(*Observation) {}

// Stop implements Controller; the runtime stops the framework directly.
func (l *legacy) Stop() {}

// framework implements frameworkBacked: the Runtime delegates start,
// stop, events, estimates, audit, and telemetry to the framework.
func (l *legacy) framework() *scaling.Framework { return l.fw }
