package controller

import (
	"sort"

	"conscale/internal/scaling"
	"conscale/internal/telemetry"
)

// RegisterTelemetry publishes the runtime's decision state on a metrics
// registry. Legacy adapters delegate to the wrapped framework so the
// metric names and values match the pre-zoo exposition exactly; native
// controllers publish the same families from the Runtime's own decision
// log and SCT signal. Everything is collector-based — read at scrape
// time, never on the decision path — so arming telemetry cannot change
// a run's trajectory.
func (rt *Runtime) RegisterTelemetry(reg *telemetry.Registry) {
	if rt == nil || reg == nil {
		return
	}
	if rt.fw != nil {
		rt.fw.RegisterTelemetry(reg)
		return
	}
	reg.Collect("conscale_scaling_events_total", "Scaling log entries by action kind.",
		telemetry.KindCounter, func(emit func(float64, ...string)) {
			var byKind [4]int
			for _, e := range rt.events {
				if int(e.Kind) < len(byKind) {
					byKind[e.Kind]++
				}
			}
			for k, n := range byKind {
				emit(float64(n), "kind", scaling.EventKind(k).String())
			}
		})
	reg.CounterFunc("conscale_controller_actions_total",
		"Scale actions the actuator accepted.",
		func() float64 { return float64(rt.actions) })
	reg.CounterFunc("conscale_controller_denies_total",
		"Scale actions the actuator refused (capacity, last VM).",
		func() float64 { return float64(rt.denies) })

	sctCollector := func(pick func(te timedEstimate) float64) telemetry.Collector {
		return func(emit func(float64, ...string)) {
			names := make([]string, 0, len(rt.sig.cached))
			for name := range rt.sig.cached {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				emit(pick(rt.sig.cached[name]), "server", name)
			}
		}
	}
	reg.Collect("conscale_sct_qlower", "Lower bound of the SCT rational concurrency range.",
		telemetry.KindGauge, sctCollector(func(te timedEstimate) float64 { return float64(te.est.Qlower) }))
	reg.Collect("conscale_sct_qupper", "Upper bound of the SCT rational concurrency range.",
		telemetry.KindGauge, sctCollector(func(te timedEstimate) float64 { return float64(te.est.Qupper) }))
	reg.Collect("conscale_sct_plateau_tp", "Estimated plateau throughput of the SCT curve.",
		telemetry.KindGauge, sctCollector(func(te timedEstimate) float64 { return te.est.PlateauTP }))
}
