package controller

import (
	"fmt"

	"conscale/internal/cluster"
	"conscale/internal/des"
)

// holt is Holt's linear (double-exponential) smoother: a level and a
// trend updated per observation, forecasting level + trend×k at horizon
// k. It is the seed-deterministic workload forecaster of the hybrid
// controller — no randomness, a pure fold over the observed series.
type holt struct {
	alpha, beta  float64
	level, trend float64
	n            int
}

// observe folds one sample into the smoother.
func (h *holt) observe(v float64) {
	if h.n == 0 {
		h.level, h.trend = v, 0
		h.n = 1
		return
	}
	prev := h.level
	h.level = h.alpha*v + (1-h.alpha)*(h.level+h.trend)
	h.trend = h.beta*(h.level-prev) + (1-h.beta)*h.trend
	h.n++
}

// forecast extrapolates k steps ahead (k ≥ 0), floored at zero —
// demand cannot be negative.
func (h *holt) forecast(k int) float64 {
	v := h.level + h.trend*float64(k)
	if v < 0 {
		return 0
	}
	return v
}

// HybridMPC is the OptScaler-style hybrid proactive/reactive
// controller: a workload forecaster (Holt's linear trend over per-tier
// demand, where demand = cpu × ready normalizes utilization into
// VM-equivalents) feeds a proactive capacity plan, and an MPC-like
// one-step correction loop evaluates the candidate actions {-1, 0, +1}
// against the forecast horizon each tick, charging predicted
// over-target utilization quadratically, idle capacity linearly, and a
// switching cost per action. The argmin action executes, subject to
// cooldowns and a sustained-quiet requirement for scale-in.
//
// The demand estimate each tick is the max of the instantaneous
// observation and the forecast — the reactive correction that keeps a
// misforecast from starving the system. Pool sizing consumes the SCT
// signal.
type HybridMPC struct {
	// Target is the planned utilization ceiling (default 0.65).
	Target float64
	// Horizon is the forecast lookahead in ticks (default 30).
	Horizon int
	// SwitchCost / IdleCost weigh an action and a VM-tick of headroom
	// against predicted over-target utilization.
	SwitchCost, IdleCost float64
	// SustainIn is the consecutive ticks the search must prefer -1
	// before a scale-in executes.
	SustainIn int
	// OutCooldown / InCooldown block repeat actions per tier.
	OutCooldown, InCooldown des.Time

	env     Env
	fc      map[cluster.Tier]*holt
	wantIn  map[cluster.Tier]int
	lastOut map[cluster.Tier]des.Time
	lastIn  map[cluster.Tier]des.Time
}

func init() {
	Register("hybrid-mpc", func(opts Options) Controller {
		return &HybridMPC{
			Target:      0.65,
			Horizon:     30,
			SwitchCost:  0.4,
			IdleCost:    0.02,
			SustainIn:   opts.Base.SustainIn,
			OutCooldown: opts.Base.OutCooldown,
			InCooldown:  opts.Base.InCooldown,
		}
	})
}

// Name implements Controller.
func (m *HybridMPC) Name() string { return "hybrid-mpc" }

// Init implements Controller.
func (m *HybridMPC) Init(env Env) {
	m.env = env
	m.fc = map[cluster.Tier]*holt{
		cluster.App: {alpha: 0.25, beta: 0.05},
		cluster.DB:  {alpha: 0.25, beta: 0.05},
	}
	m.wantIn = make(map[cluster.Tier]int)
	m.lastOut = make(map[cluster.Tier]des.Time)
	m.lastIn = make(map[cluster.Tier]des.Time)
}

// Stop implements Controller.
func (m *HybridMPC) Stop() {}

// cost scores holding capacity `ready` over the horizon against the
// forecaster, blending in the instantaneous demand floor.
func (m *HybridMPC) cost(fc *holt, nowDemand float64, ready, action int) float64 {
	c := m.SwitchCost * float64(abs(action))
	for k := 1; k <= m.Horizon; k++ {
		d := fc.forecast(k)
		if nowDemand > d {
			d = nowDemand // reactive floor: trust the worse of model and measurement
		}
		u := d / float64(ready)
		if u > m.Target {
			over := u - m.Target
			c += over * over
		} else {
			c += m.IdleCost * (m.Target - u)
		}
	}
	return c
}

// Tick implements Controller.
func (m *HybridMPC) Tick(obs *Observation) {
	m.env.Signal.ApplyPools(m.env.Act, obs)
	for _, tier := range scalableTiers {
		st := obs.App
		if tier == cluster.DB {
			st = obs.DB
		}
		if st.Ready == 0 {
			continue
		}
		demand := st.CPU * float64(st.Ready)
		fc := m.fc[tier]
		fc.observe(demand)
		if fc.n < 5 {
			continue // plan only once the forecaster has warmed up
		}

		best, bestCost := 0, 0.0
		for i, a := range [3]int{0, +1, -1} {
			ready := st.Ready + a
			if ready < 1 {
				continue
			}
			c := m.cost(fc, demand, ready, a)
			if i == 0 || c < bestCost {
				best, bestCost = a, c
			}
		}

		switch {
		case best > 0:
			m.wantIn[tier] = 0
			if st.Pending || obs.Now-m.lastOut[tier] < m.OutCooldown {
				continue
			}
			cause := fmt.Sprintf("hybrid-mpc: forecast demand=%.2f (level=%.2f trend=%+.3f) over %d ticks exceeds target %.2f at ready=%d",
				fc.forecast(m.Horizon), fc.level, fc.trend, m.Horizon, m.Target, st.Ready)
			if m.env.Act.ScaleOut(tier, cause) {
				m.lastOut[tier] = obs.Now
			}
		case best < 0:
			m.wantIn[tier]++
			if m.wantIn[tier] >= m.SustainIn && st.Ready > 1 && !st.Pending &&
				obs.Now-m.lastIn[tier] >= m.InCooldown && obs.Now-m.lastOut[tier] >= m.InCooldown {
				cause := fmt.Sprintf("hybrid-mpc: plan prefers ready=%d for %d ticks (demand=%.2f)",
					st.Ready-1, m.wantIn[tier], demand)
				if m.env.Act.ScaleIn(tier, cause) {
					m.lastIn[tier] = obs.Now
					m.wantIn[tier] = 0
				}
			}
		default:
			m.wantIn[tier] = 0
		}
	}
}

// abs returns |v|.
func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
