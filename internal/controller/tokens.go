package controller

import (
	"fmt"

	"conscale/internal/cluster"
	"conscale/internal/des"
)

// TABSTokens is token-based elasticity in the style of TABS (Mukherjee
// & Borst): every in-service server holds an idle token while it is
// near-idle; arrivals consume tokens, and two depletion-driven rules
// govern capacity. When the token pool is depleted — no server is idle
// and work queues at the tier — a new server spins up after a short
// sustained confirmation. When the tier has held at least one idle
// token continuously for the idle timeout, the surplus server spins
// down. The result is join-idle-queue-shaped elasticity: capacity
// chases the number of busy servers rather than an aggregate CPU
// threshold.
//
// Pool sizing consumes the SCT signal so that soft-resource starvation
// is not misread as token depletion (queues caused by an undersized
// thread pool would otherwise spin up hardware that then idles).
type TABSTokens struct {
	// IdleCPU is the utilization under which a server holds an idle
	// token (default 0.10; TierState.Idle uses the same bound).
	IdleCPU float64
	// DepleteSustain is the consecutive depleted ticks before spin-up.
	DepleteSustain int
	// IdleTimeout is the consecutive ticks the tier must hold an idle
	// token before a server spins down (the standby timer).
	IdleTimeout int
	// OutCooldown / InCooldown block repeat actions per tier.
	OutCooldown, InCooldown des.Time

	env     Env
	starved map[cluster.Tier]int
	idleFor map[cluster.Tier]int
	lastOut map[cluster.Tier]des.Time
	lastIn  map[cluster.Tier]des.Time
}

func init() {
	Register("tabs-token", func(opts Options) Controller {
		return &TABSTokens{
			IdleCPU:        0.10,
			DepleteSustain: 3,
			IdleTimeout:    opts.Base.SustainIn,
			OutCooldown:    opts.Base.OutCooldown,
			InCooldown:     opts.Base.InCooldown,
		}
	})
}

// Name implements Controller.
func (t *TABSTokens) Name() string { return "tabs-token" }

// Init implements Controller.
func (t *TABSTokens) Init(env Env) {
	t.env = env
	t.starved = make(map[cluster.Tier]int)
	t.idleFor = make(map[cluster.Tier]int)
	t.lastOut = make(map[cluster.Tier]des.Time)
	t.lastIn = make(map[cluster.Tier]des.Time)
}

// Stop implements Controller.
func (t *TABSTokens) Stop() {}

// depleted reports whether the tier's token pool is empty AND work is
// waiting — an arrival found no idle server.
func depleted(tier cluster.Tier, st TierState) bool {
	if st.Idle > 0 {
		return false
	}
	if tier == cluster.DB {
		// DB-tier pressure shows up as app threads queued on the
		// connection pools or saturated DB hardware.
		return st.PoolWaiting > 0 || st.Disk > 0.85 || st.MinCPU > 0.85
	}
	return st.Queue > 0 || st.MinCPU > 0.85
}

// Tick implements Controller.
func (t *TABSTokens) Tick(obs *Observation) {
	t.env.Signal.ApplyPools(t.env.Act, obs)
	for _, tier := range scalableTiers {
		st := obs.App
		if tier == cluster.DB {
			st = obs.DB
		}
		if depleted(tier, st) {
			t.starved[tier]++
			t.idleFor[tier] = 0
		} else {
			t.starved[tier] = 0
			if st.Idle > 0 {
				t.idleFor[tier]++
			} else {
				t.idleFor[tier] = 0
			}
		}
		if t.starved[tier] >= t.DepleteSustain && !st.Pending && obs.Now-t.lastOut[tier] >= t.OutCooldown {
			cause := fmt.Sprintf("tabs: token depletion for %d checks (idle=0, queue=%d, waiting=%d)",
				t.starved[tier], st.Queue, st.PoolWaiting)
			if t.env.Act.ScaleOut(tier, cause) {
				t.lastOut[tier] = obs.Now
				t.starved[tier] = 0
			}
		}
		if t.idleFor[tier] >= t.IdleTimeout && st.Ready > 1 && !st.Pending &&
			obs.Now-t.lastIn[tier] >= t.InCooldown && obs.Now-t.lastOut[tier] >= t.InCooldown {
			cause := fmt.Sprintf("tabs: idle token held for %d checks (idle=%d of %d)",
				t.idleFor[tier], st.Idle, st.Ready)
			if t.env.Act.ScaleIn(tier, cause) {
				t.lastIn[tier] = obs.Now
				t.idleFor[tier] = 0
			}
		}
	}
}
