package controller

import (
	"math"
	"strings"
	"testing"

	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/scaling"
)

// fakeAct records every action a policy emits, optionally refusing
// scale actions, so policy logic is testable without a cluster.
type fakeAct struct {
	outs, ins []cluster.Tier
	threads   []int
	conns     []int
	refuse    bool
}

func (a *fakeAct) ScaleOut(tier cluster.Tier, cause string) bool {
	if a.refuse {
		return false
	}
	a.outs = append(a.outs, tier)
	return true
}

func (a *fakeAct) ScaleIn(tier cluster.Tier, cause string) bool {
	if a.refuse {
		return false
	}
	a.ins = append(a.ins, tier)
	return true
}

func (a *fakeAct) SetAppThreads(n int, cause string) { a.threads = append(a.threads, n) }
func (a *fakeAct) SetDBConns(n int, cause string)    { a.conns = append(a.conns, n) }

// policyEnv wires a policy to the fake actuator with no cluster and no
// signal — the minimum environment a hardware-only policy needs.
func policyEnv(act Actuator) Env {
	return Env{Act: act, Opts: Options{Base: scaling.DefaultConfig(scaling.EC2)}.withDefaults()}
}

func obsAt(now des.Time, appCPU, dbCPU float64, appReady, dbReady int) *Observation {
	return &Observation{
		Now:  now,
		App:  TierState{CPU: appCPU, MinCPU: appCPU, MaxCPU: appCPU, Ready: appReady},
		DB:   TierState{CPU: dbCPU, MinCPU: dbCPU, MaxCPU: dbCPU, Ready: dbReady},
		Tail: math.NaN(),
	}
}

func TestRegistryKnowsAllFamilies(t *testing.T) {
	want := []string{"conscale", "dcm", "ec2", "hybrid-mpc", "step-scaling",
		"tabs-token", "target-tracking", "target-tracking-sct"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered %v, want %v", got, want)
		}
	}
}

func TestNewUnknownAndAliases(t *testing.T) {
	if _, err := New("no-such-policy", Options{}); err == nil {
		t.Fatal("unknown controller did not error")
	} else if !strings.Contains(err.Error(), "target-tracking") {
		t.Fatalf("error should name the registered controllers: %v", err)
	}
	for alias, canon := range map[string]string{"ec2-autoscaling": "ec2", "tabs": "tabs-token", "EC2": "ec2"} {
		c, err := New(alias, Options{})
		if err != nil {
			t.Fatalf("alias %q: %v", alias, err)
		}
		if c.Name() != canon {
			t.Fatalf("alias %q built %q, want %q", alias, c.Name(), canon)
		}
	}
}

func TestRegisterPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("ec2", func(Options) Controller { return nil })
}

func TestHoltForecastTracksTrend(t *testing.T) {
	h := &holt{alpha: 0.25, beta: 0.05}
	for i := 0; i < 200; i++ {
		h.observe(float64(i)) // demand ramps linearly
	}
	if h.trend <= 0 {
		t.Fatalf("rising series learned trend %v", h.trend)
	}
	if f0, f10 := h.forecast(0), h.forecast(10); f10 <= f0 {
		t.Fatalf("forecast does not extrapolate the trend: f(0)=%v f(10)=%v", f0, f10)
	}
	down := &holt{alpha: 0.25, beta: 0.05}
	for i := 0; i < 200; i++ {
		down.observe(float64(200 - i))
	}
	if down.forecast(1000) != 0 {
		t.Fatalf("falling series should floor at zero, got %v", down.forecast(1000))
	}
}

func TestTargetTrackingScalesOutOverTarget(t *testing.T) {
	act := &fakeAct{}
	tt := newTargetTracking(Options{Base: scaling.DefaultConfig(scaling.EC2)}.withDefaults(), false)
	tt.Init(policyEnv(act))

	// CPU over the setpoint: desired = ceil(2×0.9/0.65) = 3 > 2 ready.
	tt.Tick(obsAt(100*des.Second, 0.9, 0.4, 2, 2))
	if len(act.outs) != 1 || act.outs[0] != cluster.App {
		t.Fatalf("want one app scale-out, got %v", act.outs)
	}
	// Same breach inside the cooldown must not fire again.
	tt.Tick(obsAt(101*des.Second, 0.9, 0.4, 2, 2))
	if len(act.outs) != 1 {
		t.Fatalf("cooldown did not suppress the repeat: %v", act.outs)
	}
}

func TestTargetTrackingScaleInNeedsSustain(t *testing.T) {
	act := &fakeAct{}
	opts := Options{Base: scaling.DefaultConfig(scaling.EC2)}.withDefaults()
	tt := newTargetTracking(opts, false)
	tt.Init(policyEnv(act))

	now := 200 * des.Second
	for i := 0; i < opts.Base.SustainIn-1; i++ {
		tt.Tick(obsAt(now, 0.10, 0.10, 3, 2))
		now += des.Second
	}
	if len(act.ins) != 0 {
		t.Fatalf("scale-in fired before the sustain window closed: %v", act.ins)
	}
	tt.Tick(obsAt(now, 0.10, 0.10, 3, 2))
	if len(act.ins) != 2 { // both tiers were quiet for the full window
		t.Fatalf("want both tiers scaled in after sustain, got %v", act.ins)
	}
}

func TestStepScalingSurgeBurstsTwo(t *testing.T) {
	act := &fakeAct{}
	c, err := New("step-scaling", Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Init(policyEnv(act))
	ss := c.(*StepScaling)

	now := 100 * des.Second
	for i := 0; i < ss.SustainOut; i++ {
		c.Tick(obsAt(now, 0.95, 0.5, 2, 2)) // surge band: ≥0.90
		now += des.Second
	}
	if got := len(act.outs); got != 2 {
		t.Fatalf("surge band should burst two launches, got %d (%v)", got, act.outs)
	}
	for _, tier := range act.outs {
		if tier != cluster.App {
			t.Fatalf("surge fired on the wrong tier: %v", act.outs)
		}
	}
}

func TestStepScalingRefusedActionKeepsCounting(t *testing.T) {
	act := &fakeAct{refuse: true}
	c, err := New("step-scaling", Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Init(policyEnv(act))
	ss := c.(*StepScaling)

	now := 100 * des.Second
	for i := 0; i < ss.SustainOut+3; i++ {
		c.Tick(obsAt(now, 0.85, 0.5, 2, 2))
		now += des.Second
	}
	// Refused launches must not consume the cooldown or reset the breach
	// counter — the policy keeps retrying on later ticks.
	if ss.above[cluster.App] < ss.SustainOut {
		t.Fatalf("refused scale-out reset the breach counter: %d", ss.above[cluster.App])
	}
}

func TestTABSDepletionDetection(t *testing.T) {
	if c, err := New("tabs", Options{}); err != nil || c.Name() != "tabs-token" {
		t.Fatalf("tabs alias: %v, %v", c, err)
	}
	cases := []struct {
		name string
		tier cluster.Tier
		st   TierState
		want bool
	}{
		{"app idle token free", cluster.App, TierState{Idle: 1, MinCPU: 0.95}, false},
		{"app queue with no tokens", cluster.App, TierState{Idle: 0, Queue: 5}, true},
		{"app all hot", cluster.App, TierState{Idle: 0, MinCPU: 0.90}, true},
		{"app no tokens but unloaded", cluster.App, TierState{Idle: 0, MinCPU: 0.40}, false},
		{"db pool waiters", cluster.DB, TierState{Idle: 0, PoolWaiting: 3}, true},
		{"db disk bound", cluster.DB, TierState{Idle: 0, Disk: 0.90}, true},
		{"db unloaded", cluster.DB, TierState{Idle: 0, MinCPU: 0.30}, false},
	}
	for _, tc := range cases {
		if got := depleted(tc.tier, tc.st); got != tc.want {
			t.Errorf("%s: depleted=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSignalApplyPoolsNilReceiver(t *testing.T) {
	var s *Signal
	act := &fakeAct{}
	s.ApplyPools(act, obsAt(0, 0.5, 0.5, 1, 1)) // must not panic
	if len(act.threads)+len(act.conns) != 0 {
		t.Fatal("nil signal acted on pools")
	}
}
