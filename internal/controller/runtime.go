package controller

import (
	"fmt"
	"math"

	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/metrics"
	"conscale/internal/scaling"
	"conscale/internal/sct"
	"conscale/internal/server"
	"conscale/internal/sla"
	"conscale/internal/trace"
)

// Runtime drives one Controller against one cluster. It owns everything
// every controller shares — the metric-warehouse collection loop, the
// decision ticker, the windowed tail tracker, the SCT signal refresh,
// the dark-tier repair path, pending-launch bookkeeping, the decision
// log, and audit/telemetry recording — so a controller is nothing but
// policy: a Tick function over Observations.
//
// For the legacy adapters ("ec2", "dcm", "conscale") the Runtime steps
// aside entirely and delegates to the wrapped scaling.Framework, which
// arms its own loops; this keeps the three paper frameworks
// byte-identical to their pre-zoo trajectories.
type Runtime struct {
	opts Options
	c    *cluster.Cluster
	ctrl Controller
	fw   *scaling.Framework // non-nil for self-driving legacy adapters

	w   *metrics.Warehouse
	sig *Signal

	tail   *sla.WindowTail
	slaFed des.Time

	events   []scaling.Event
	pendingN map[cluster.Tier]int
	lastOut  map[cluster.Tier]des.Time
	lastIn   map[cluster.Tier]des.Time

	actions int // accepted scale actions (telemetry)
	denies  int // refused scale actions (telemetry)
	audit   *trace.Audit

	collector *des.Ticker
	decider   *des.Ticker
	estimator *des.Ticker
}

// frameworkBacked marks a self-driving legacy adapter: the Runtime
// delegates everything to the wrapped framework instead of driving
// ticks itself.
type frameworkBacked interface {
	framework() *scaling.Framework
}

// NewRuntime attaches a controller to a cluster. Call Start to begin
// control. The controller's Init runs here, before any simulation event
// fires.
func NewRuntime(c *cluster.Cluster, ctrl Controller, opts Options) *Runtime {
	opts = opts.withDefaults()
	rt := &Runtime{
		opts:     opts,
		c:        c,
		ctrl:     ctrl,
		pendingN: make(map[cluster.Tier]int),
		lastOut:  make(map[cluster.Tier]des.Time),
		lastIn:   make(map[cluster.Tier]des.Time),
	}
	env := Env{Cluster: c, Act: rt, Opts: opts}
	if fb, ok := ctrl.(frameworkBacked); ok {
		ctrl.Init(env)
		rt.fw = fb.framework()
		return rt
	}
	rt.w = metrics.NewWarehouse(opts.Base.WarehouseRetention)
	rt.sig = newSignal(c, rt.w, opts.Base)
	rt.tail = sla.NewWindowTail(opts.SLAWindow)
	env.Signal = rt.sig
	ctrl.Init(env)
	return rt
}

// Controller returns the driven controller.
func (rt *Runtime) Controller() Controller { return rt.ctrl }

// Name returns the driven controller's registry name.
func (rt *Runtime) Name() string { return rt.ctrl.Name() }

// Warehouse exposes the metric warehouse backing the SCT signal.
func (rt *Runtime) Warehouse() *metrics.Warehouse {
	if rt.fw != nil {
		return rt.fw.Warehouse()
	}
	return rt.w
}

// Events returns the decision log in the same shape the legacy
// frameworks produce, so figures and regression tests compare directly.
func (rt *Runtime) Events() []scaling.Event {
	if rt.fw != nil {
		return rt.fw.Events()
	}
	return rt.events
}

// Estimates returns the SCT signal's current per-server view.
func (rt *Runtime) Estimates() map[string]sct.Estimate {
	if rt.fw != nil {
		return rt.fw.Estimates()
	}
	return rt.sig.Estimates()
}

// SetAudit attaches a decision audit trail (nil detaches). Call before
// Start so the first decisions are recorded.
func (rt *Runtime) SetAudit(a *trace.Audit) {
	if rt.fw != nil {
		rt.fw.SetAudit(a)
		return
	}
	rt.audit = a
	rt.sig.audit = a
}

// Start arms the monitoring, signal, and decision loops.
func (rt *Runtime) Start() {
	if rt.fw != nil {
		rt.fw.Start()
		return
	}
	eng := rt.c.Eng
	rt.collector = eng.Every(des.Second, func() { rt.c.CollectInto(rt.w) })
	rt.decider = eng.Every(rt.opts.Base.CheckEvery, rt.tick)
	rt.estimator = eng.Every(rt.opts.Base.EstimateEvery, rt.sig.refresh)
}

// Stop disarms the loops and stops the controller.
func (rt *Runtime) Stop() {
	if rt.fw != nil {
		rt.fw.Stop()
		rt.ctrl.Stop()
		return
	}
	for _, t := range []*des.Ticker{rt.collector, rt.decider, rt.estimator} {
		if t != nil {
			t.Stop()
		}
	}
	rt.ctrl.Stop()
}

// tick is one decision interval: repair dark tiers, observe, let the
// controller act.
func (rt *Runtime) tick() {
	for _, tier := range []cluster.Tier{cluster.Web, cluster.App, cluster.DB} {
		rt.repairTier(tier)
	}
	obs := rt.observe()
	rt.ctrl.Tick(obs)
}

// repairTier re-provisions a tier with zero ready VMs — the same repair
// path scaling.Framework applies: a dark tier's CPU signal reads zero,
// so no utilization-driven policy would ever recover it.
func (rt *Runtime) repairTier(tier cluster.Tier) {
	if rt.c.ReadyCount(tier) > 0 || rt.pendingN[tier] > 0 {
		return
	}
	now := rt.c.Eng.Now()
	rt.log(scaling.Event{Time: now, Kind: scaling.Repair, Tier: tier, Detail: "tier dark: provisioning replacement"})
	rt.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditRepair, Tier: tier.String(),
		Cause: "tier dark: zero ready VMs", Detail: "launch replacement"})
	rt.pendingN[tier]++
	launched := rt.c.AddVM(tier, func(srv *server.Server) {
		ready := rt.c.Eng.Now()
		rt.pendingN[tier]--
		rt.lastOut[tier] = ready
		rt.log(scaling.Event{Time: ready, Kind: scaling.Repair, Tier: tier, Detail: srv.Name() + " ready"})
		rt.audit.Record(trace.AuditEvent{Time: ready, Kind: trace.AuditRepair, Tier: tier.String(),
			Cause: "tier dark: zero ready VMs", Detail: srv.Name() + " ready"})
	})
	if !launched {
		rt.pendingN[tier]--
		rt.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditScaleOutDenied, Tier: tier.String(),
			Cause: "repair launch refused: tier at capacity"})
	}
}

// observe builds the per-tick view: tier states, the windowed tail, the
// soft-resource settings, and the SCT signal.
func (rt *Runtime) observe() *Observation {
	now := rt.c.Eng.Now()
	// Feed the web tier's server-side response times into the sliding
	// tail tracker: the web tier covers the whole downstream path, so it
	// approximates client-visible latency without client telemetry.
	for _, srv := range rt.c.Servers(cluster.Web) {
		for _, w := range rt.w.FineSince(srv.Name(), rt.slaFed) {
			if w.Completions > 0 && !math.IsNaN(w.RT) {
				rt.tail.Add(w.Start, w.RT)
			}
		}
	}
	rt.slaFed = now

	obs := &Observation{
		Now:  now,
		App:  rt.tierState(cluster.App),
		DB:   rt.tierState(cluster.DB),
		Tail: rt.tail.Percentile(now, rt.opts.SLAPercentile),
	}
	// App threads waiting on a DB connection belong to the DB tier's
	// state: they measure DB-side soft-resource pressure.
	for _, srv := range rt.c.Servers(cluster.App) {
		if p := srv.CallPool(); p != nil {
			obs.DB.PoolWaiting += p.Waiting()
		}
	}
	_, obs.Threads, obs.Conns = rt.c.SoftResources()
	obs.AppSCT = rt.sig.Tier(cluster.App)
	obs.DBSCT = rt.sig.Tier(cluster.DB)
	return obs
}

// tierState summarizes one tier's hardware view.
func (rt *Runtime) tierState(tier cluster.Tier) TierState {
	st := TierState{
		CPU:     rt.c.TierCPU(tier),
		Ready:   rt.c.ReadyCount(tier),
		Pending: rt.pendingN[tier] > 0,
		MinCPU:  math.NaN(),
	}
	for _, srv := range rt.c.Servers(tier) {
		if srv.Draining() {
			continue
		}
		u := srv.CPUUtilization()
		if math.IsNaN(st.MinCPU) || u < st.MinCPU {
			st.MinCPU = u
		}
		if u > st.MaxCPU {
			st.MaxCPU = u
		}
		if u < 0.10 {
			st.Idle++
		}
		if d := srv.DiskUtilization(); d > st.Disk {
			st.Disk = d
		}
		st.Queue += srv.QueueLen()
	}
	st.MinCPU = nanSafe(st.MinCPU, 0)
	return st
}

// ScaleOut implements Actuator: launch one VM on the tier. Multiple
// launches may be in flight at once (step policies burst); the
// controller sees obs.Pending and throttles itself.
func (rt *Runtime) ScaleOut(tier cluster.Tier, cause string) bool {
	now := rt.c.Eng.Now()
	rt.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditThresholdTrigger, Tier: tier.String(),
		Cause: cause})
	rt.pendingN[tier]++
	launched := rt.c.AddVM(tier, func(srv *server.Server) {
		ready := rt.c.Eng.Now()
		rt.pendingN[tier]--
		rt.lastOut[tier] = ready
		rt.log(scaling.Event{Time: ready, Kind: scaling.ScaleOut, Tier: tier, Detail: srv.Name() + " ready"})
		rt.audit.Record(trace.AuditEvent{Time: ready, Kind: trace.AuditScaleOutReady, Tier: tier.String(),
			Cause: cause, Detail: srv.Name() + " ready"})
	})
	if !launched {
		rt.pendingN[tier]--
		rt.denies++
		rt.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditScaleOutDenied, Tier: tier.String(),
			Cause: cause, Detail: "tier at capacity"})
		return false
	}
	rt.actions++
	rt.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditScaleOutLaunch, Tier: tier.String(),
		Cause: cause, Detail: "VM launched: preparation period started"})
	return true
}

// ScaleIn implements Actuator: drain and retire one VM, never emptying
// the tier.
func (rt *Runtime) ScaleIn(tier cluster.Tier, cause string) bool {
	now := rt.c.Eng.Now()
	if rt.c.ReadyCount(tier) <= 1 {
		rt.denies++
		return false
	}
	name := rt.c.RemoveVM(tier)
	if name == "" {
		rt.denies++
		return false
	}
	rt.actions++
	rt.lastIn[tier] = now
	rt.w.Forget(name)
	rt.log(scaling.Event{Time: now, Kind: scaling.ScaleIn, Tier: tier, Detail: name})
	rt.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditScaleIn, Tier: tier.String(),
		Cause: cause, Detail: name})
	return true
}

// SetAppThreads implements Actuator: clamp and apply a per-server app
// thread-pool setting, ignoring no-op changes.
func (rt *Runtime) SetAppThreads(n int, cause string) {
	n = clamp(n, rt.opts.Base.MinThreads, rt.opts.Base.MaxThreads)
	_, cur, _ := rt.c.SoftResources()
	if n == cur {
		return
	}
	now := rt.c.Eng.Now()
	rt.c.SetAppThreads(n)
	rt.log(scaling.Event{Time: now, Kind: scaling.SoftAdapt, Tier: cluster.App,
		Detail: fmt.Sprintf("app threads=%d", n)})
	rt.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditPoolResize, Tier: cluster.App.String(),
		Cause: cause, Detail: "app threads", Value: float64(n)})
}

// SetDBConns implements Actuator: clamp and apply a per-app DB
// connection-pool setting, ignoring no-op changes.
func (rt *Runtime) SetDBConns(n int, cause string) {
	n = clamp(n, rt.opts.Base.MinConns, rt.opts.Base.MaxConns)
	_, _, cur := rt.c.SoftResources()
	if n == cur {
		return
	}
	now := rt.c.Eng.Now()
	rt.c.SetDBConns(n)
	rt.log(scaling.Event{Time: now, Kind: scaling.SoftAdapt, Tier: cluster.DB,
		Detail: fmt.Sprintf("db conns=%d", n)})
	rt.audit.Record(trace.AuditEvent{Time: now, Kind: trace.AuditPoolResize, Tier: cluster.DB.String(),
		Cause: cause, Detail: "db conns per app", Value: float64(n)})
}

func (rt *Runtime) log(e scaling.Event) { rt.events = append(rt.events, e) }
