// Package plot renders line and scatter charts as plain-text grids — the
// terminal equivalent of the paper's gnuplot figures, used by the CLI
// tools to show timelines and concurrency-throughput curves without any
// external plotting dependency.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// series is one plotted data set.
type series struct {
	name  string
	xs    []float64
	ys    []float64
	glyph rune
}

// Chart accumulates series and renders them onto a character grid.
type Chart struct {
	title  string
	xLabel string
	yLabel string
	width  int // plot area columns (excluding axis gutter)
	height int // plot area rows

	series []series
}

// New returns a chart with the given plot-area size. Sizes below 16×4 are
// clamped up so axes always fit.
func New(title string, width, height int) *Chart {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	return &Chart{title: title, width: width, height: height}
}

// Labels sets the axis labels.
func (c *Chart) Labels(x, y string) *Chart {
	c.xLabel, c.yLabel = x, y
	return c
}

// Line adds a connected series drawn with the glyph.
func (c *Chart) Line(name string, xs, ys []float64, glyph rune) *Chart {
	return c.add(name, xs, ys, glyph, true)
}

// Scatter adds an unconnected series drawn with the glyph.
func (c *Chart) Scatter(name string, xs, ys []float64, glyph rune) *Chart {
	return c.add(name, xs, ys, glyph, false)
}

func (c *Chart) add(name string, xs, ys []float64, glyph rune, connect bool) *Chart {
	if len(xs) != len(ys) {
		panic("plot: series length mismatch")
	}
	if glyph == 0 {
		glyph = '*'
	}
	s := series{name: name, glyph: glyph}
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) || math.IsInf(xs[i], 0) || math.IsInf(ys[i], 0) {
			continue
		}
		s.xs = append(s.xs, xs[i])
		s.ys = append(s.ys, ys[i])
	}
	if connect {
		s.xs, s.ys = densify(s.xs, s.ys, c.width*2)
	}
	c.series = append(c.series, s)
	return c
}

// densify inserts interpolated points between neighbours so a connected
// line has no horizontal gaps at the render resolution.
func densify(xs, ys []float64, steps int) ([]float64, []float64) {
	if len(xs) < 2 {
		return xs, ys
	}
	outX := []float64{xs[0]}
	outY := []float64{ys[0]}
	for i := 1; i < len(xs); i++ {
		nSub := steps/len(xs) + 1
		for k := 1; k <= nSub; k++ {
			f := float64(k) / float64(nSub)
			outX = append(outX, xs[i-1]+(xs[i]-xs[i-1])*f)
			outY = append(outY, ys[i-1]+(ys[i]-ys[i-1])*f)
		}
	}
	return outX, outY
}

// Render draws the chart.
func (c *Chart) Render() string {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.series {
		for i := range s.xs {
			minX = math.Min(minX, s.xs[i])
			maxX = math.Max(maxX, s.xs[i])
			minY = math.Min(minY, s.ys[i])
			maxY = math.Max(maxY, s.ys[i])
			points++
		}
	}
	var b strings.Builder
	if c.title != "" {
		fmt.Fprintf(&b, "%s\n", c.title)
	}
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if minY > 0 && minY < maxY/4 {
		minY = 0 // charts that nearly touch zero read better anchored there
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, c.height)
	for r := range grid {
		grid[r] = make([]rune, c.width)
		for col := range grid[r] {
			grid[r][col] = ' '
		}
	}
	for _, s := range c.series {
		for i := range s.xs {
			col := int((s.xs[i] - minX) / (maxX - minX) * float64(c.width-1))
			row := int((s.ys[i] - minY) / (maxY - minY) * float64(c.height-1))
			row = c.height - 1 - row
			if col >= 0 && col < c.width && row >= 0 && row < c.height {
				grid[row][col] = s.glyph
			}
		}
	}

	gutter := 10
	for r := 0; r < c.height; r++ {
		yVal := maxY - (maxY-minY)*float64(r)/float64(c.height-1)
		label := ""
		if r == 0 || r == c.height-1 || r == (c.height-1)/2 {
			label = formatTick(yVal)
		}
		fmt.Fprintf(&b, "%*s |%s\n", gutter-2, label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%*s +%s\n", gutter-2, "", strings.Repeat("-", c.width))
	lo, hi := formatTick(minX), formatTick(maxX)
	pad := c.width - len(lo) - len(hi)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%*s  %s%s%s\n", gutter-2, "", lo, strings.Repeat(" ", pad), hi)
	if c.xLabel != "" || c.yLabel != "" {
		fmt.Fprintf(&b, "%*s  x: %s   y: %s\n", gutter-2, "", c.xLabel, c.yLabel)
	}
	if len(c.series) > 1 || (len(c.series) == 1 && c.series[0].name != "") {
		var parts []string
		for _, s := range c.series {
			parts = append(parts, fmt.Sprintf("%c %s", s.glyph, s.name))
		}
		fmt.Fprintf(&b, "%*s  legend: %s\n", gutter-2, "", strings.Join(parts, "   "))
	}
	return b.String()
}

// formatTick renders an axis value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
