package plot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyChart(t *testing.T) {
	out := New("t", 40, 10).Render()
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart rendered %q", out)
	}
}

func TestTitleAndLabels(t *testing.T) {
	out := New("My Title", 40, 10).
		Labels("time", "rt").
		Line("s", []float64{0, 1}, []float64{0, 1}, '*').
		Render()
	for _, want := range []string{"My Title", "x: time", "y: rt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLineCoversWidth(t *testing.T) {
	out := New("", 40, 10).
		Line("", []float64{0, 100}, []float64{0, 100}, '*').
		Render()
	lines := strings.Split(out, "\n")
	stars := strings.Count(out, "*")
	// Densified diagonal: at least one glyph per ~2 columns.
	if stars < 15 {
		t.Fatalf("diagonal has only %d glyphs:\n%s", stars, out)
	}
	// Top row contains the max point, bottom row the min.
	if !strings.Contains(lines[0], "*") {
		t.Fatalf("top row empty:\n%s", out)
	}
}

func TestScatterDoesNotDensify(t *testing.T) {
	out := New("", 40, 10).
		Scatter("", []float64{0, 50, 100}, []float64{0, 50, 100}, 'o').
		Render()
	if got := strings.Count(out, "o"); got != 3 {
		t.Fatalf("scatter rendered %d glyphs, want 3:\n%s", got, out)
	}
}

func TestMultipleSeriesLegend(t *testing.T) {
	out := New("", 40, 8).
		Line("ec2", []float64{0, 1}, []float64{1, 1}, 'e').
		Line("conscale", []float64{0, 1}, []float64{2, 2}, 'c').
		Render()
	if !strings.Contains(out, "legend: e ec2   c conscale") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestNaNPointsSkipped(t *testing.T) {
	out := New("", 30, 8).
		Scatter("", []float64{0, math.NaN(), 2}, []float64{1, 5, math.Inf(1)}, 'x').
		Render()
	if got := strings.Count(out, "x"); got != 1 {
		t.Fatalf("got %d glyphs, want 1 (NaN/Inf skipped):\n%s", got, out)
	}
}

func TestAxisTicksPresent(t *testing.T) {
	out := New("", 40, 10).
		Line("", []float64{0, 720}, []float64{0, 2400}, '*').
		Render()
	if !strings.Contains(out, "720") {
		t.Fatalf("x max tick missing:\n%s", out)
	}
	if !strings.Contains(out, "2.4k") && !strings.Contains(out, "2400") {
		t.Fatalf("y max tick missing:\n%s", out)
	}
}

func TestMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New("", 20, 5).Line("", []float64{1}, []float64{1, 2}, '*')
}

func TestConstantSeries(t *testing.T) {
	// Degenerate ranges (all same x, all same y) must not divide by zero.
	out := New("", 30, 6).
		Scatter("", []float64{5, 5, 5}, []float64{7, 7, 7}, '#').
		Render()
	if !strings.Contains(out, "#") {
		t.Fatalf("constant series vanished:\n%s", out)
	}
}

func TestFormatTick(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"}, {0.5, "0.500"}, {3.2, "3.2"}, {250, "250"},
		{25000, "25k"}, {3.3e6, "3.3M"},
	}
	for _, c := range cases {
		if got := formatTick(c.in); got != c.want {
			t.Fatalf("formatTick(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTinySizesClamped(t *testing.T) {
	out := New("", 1, 1).Line("", []float64{0, 1}, []float64{0, 1}, '*').Render()
	if len(out) == 0 {
		t.Fatal("render empty")
	}
}

// Property: rendering never panics and always terminates with a newline
// for arbitrary finite data.
func TestQuickRenderRobust(t *testing.T) {
	f := func(raw []int16, w, h uint8) bool {
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(i)
			ys[i] = float64(v)
		}
		out := New("q", int(w), int(h)).Line("s", xs, ys, '*').Render()
		return strings.HasSuffix(out, "\n")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
