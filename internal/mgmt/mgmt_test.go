package mgmt

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"
)

// intStore registers a mutable integer under the given key.
func intStore(key string, initial int) (*Store, *int, *sync.Mutex) {
	s := NewStore()
	v := initial
	var mu sync.Mutex
	s.Register(key,
		func() string {
			mu.Lock()
			defer mu.Unlock()
			return strconv.Itoa(v)
		},
		func(raw string) error {
			n, err := strconv.Atoi(raw)
			if err != nil {
				return err
			}
			if n <= 0 {
				return errors.New("must be positive")
			}
			mu.Lock()
			v = n
			mu.Unlock()
			return nil
		})
	return s, &v, &mu
}

func startAgent(t *testing.T, target Target) (*Agent, *Client) {
	t.Helper()
	a, err := NewAgent("127.0.0.1:0", target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	c, err := Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return a, c
}

func TestGetSetRoundTrip(t *testing.T) {
	s, _, _ := intStore("app.threads", 60)
	_, c := startAgent(t, s)
	got, err := c.Get("app.threads")
	if err != nil || got != "60" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := c.Set("app.threads", "20"); err != nil {
		t.Fatal(err)
	}
	got, err = c.Get("app.threads")
	if err != nil || got != "20" {
		t.Fatalf("after Set, Get = %q, %v", got, err)
	}
}

func TestSetValidationErrorPropagates(t *testing.T) {
	s, v, mu := intStore("db.conns", 40)
	_, c := startAgent(t, s)
	if err := c.Set("db.conns", "-5"); err == nil {
		t.Fatal("invalid Set succeeded")
	}
	if err := c.Set("db.conns", "junk"); err == nil {
		t.Fatal("non-numeric Set succeeded")
	}
	mu.Lock()
	defer mu.Unlock()
	if *v != 40 {
		t.Fatalf("value changed to %d by failed sets", *v)
	}
}

func TestUnknownKey(t *testing.T) {
	s, _, _ := intStore("a", 1)
	_, c := startAgent(t, s)
	if _, err := c.Get("nope"); err == nil {
		t.Fatal("Get of unknown key succeeded")
	}
	if err := c.Set("nope", "1"); err == nil {
		t.Fatal("Set of unknown key succeeded")
	}
}

func TestReadOnlyKey(t *testing.T) {
	s := NewStore()
	s.Register("version", func() string { return "1.0" }, nil)
	_, c := startAgent(t, s)
	got, err := c.Get("version")
	if err != nil || got != "1.0" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := c.Set("version", "2.0"); err == nil {
		t.Fatal("Set of read-only key succeeded")
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewStore()
	for _, k := range []string{"zeta", "alpha", "mid"} {
		k := k
		s.Register(k, func() string { return k }, nil)
	}
	_, c := startAgent(t, s)
	keys, err := c.Keys()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestPing(t *testing.T) {
	s := NewStore()
	_, c := startAgent(t, s)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClients(t *testing.T) {
	s, _, _ := intStore("k", 1)
	a, _ := startAgent(t, s)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(a.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				if err := c.Set("k", fmt.Sprintf("%d", i*100+j+1)); err != nil {
					errs <- err
					return
				}
				if _, err := c.Get("k"); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestProtocolErrorsForMalformedLines(t *testing.T) {
	s := NewStore()
	a, _ := startAgent(t, s)
	// Raw protocol checks through a bare handle call (unit level).
	for _, line := range []string{"GET", "SET x", "WAT 1 2"} {
		resp, quit := a.handle(line)
		if quit {
			t.Fatalf("line %q closed connection", line)
		}
		if len(resp) < 3 || resp[:3] != "ERR" {
			t.Fatalf("line %q -> %q, want ERR", line, resp)
		}
	}
}

func TestQuitClosesConnection(t *testing.T) {
	s := NewStore()
	a, _ := startAgent(t, s)
	resp, quit := a.handle("QUIT")
	if !quit || resp != "OK bye" {
		t.Fatalf("QUIT -> %q/%v", resp, quit)
	}
}

func TestAgentCloseStopsAccept(t *testing.T) {
	s := NewStore()
	a, err := NewAgent("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	addr := a.Addr()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr); err == nil {
		t.Fatal("dial succeeded after Close")
	}
}

func TestStoreNilGetterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewStore().Register("x", nil, nil)
}

// TestStalledConnectionReaped covers the goroutine-leak fix: a peer that
// connects and then goes silent must be closed after the idle interval,
// while the agent keeps serving healthy clients and Close stays prompt.
func TestStalledConnectionReaped(t *testing.T) {
	s, _, _ := intStore("k", 1)
	a, err := newAgent("127.0.0.1:0", s, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	stalled, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()

	// The agent must close the silent connection: a blocking read on our
	// side returns EOF (or a reset) once the serve goroutine gives up.
	stalled.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := stalled.Read(make([]byte, 1)); err == nil {
		t.Fatal("stalled connection still open after idle interval")
	} else if errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatal("agent never reaped the stalled connection")
	}

	// A fresh client is unaffected.
	c, err := Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got, err := c.Get("k"); err != nil || got != "1" {
		t.Fatalf("Get after reap = %q, %v", got, err)
	}
}

// TestCloseDropsStalledConnection: Close must not wait out the idle
// interval — it force-closes live connections.
func TestCloseDropsStalledConnection(t *testing.T) {
	s := NewStore()
	a, err := NewAgent("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	stalled, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	// Let the serve goroutine pick the connection up.
	time.Sleep(20 * time.Millisecond)

	done := make(chan error, 1)
	go func() { done <- a.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a stalled connection")
	}
}

// TestOversizedLineClosesConnection: a request line beyond the cap tears
// the connection down instead of growing the scan buffer without bound.
func TestOversizedLineClosesConnection(t *testing.T) {
	s, _, _ := intStore("k", 1)
	a, err := NewAgent("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	conn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A single unterminated line twice the cap. The write may error midway
	// if the agent closes early — both outcomes are fine.
	conn.Write(bytes.Repeat([]byte{'x'}, 2*agentMaxLine)) //nolint:errcheck

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("oversized line did not close the connection: %v", err)
	}

	// The agent survives to serve a well-behaved client.
	c, err := Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}
