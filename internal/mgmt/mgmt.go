// Package mgmt is the reproduction's substitute for the paper's JMX/RMI
// runtime-reconfiguration path (Section IV-A): a TCP line-protocol agent
// through which an operator or controller reads and writes a server's soft
// resources (thread pool and connection pool sizes) at runtime, without
// restarting anything.
//
// Protocol (one request per line, one response per line):
//
//	GET <key>          -> "OK <value>" | "ERR <reason>"
//	SET <key> <value>  -> "OK" | "ERR <reason>"
//	KEYS               -> "OK <key1> <key2> ..."
//	PING               -> "OK pong"
//	QUIT               -> closes the connection
//
// The agent serves each connection on its own goroutine; the Target
// implementation is responsible for its own synchronisation (the provided
// Store is safe for concurrent use).
package mgmt

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// Target is the configuration surface an Agent exposes.
type Target interface {
	// Get returns the value for key.
	Get(key string) (string, error)
	// Set updates the value for key.
	Set(key, value string) error
	// Keys lists the available keys.
	Keys() []string
}

// ErrUnknownKey is returned by Store for keys that were never registered.
var ErrUnknownKey = errors.New("mgmt: unknown key")

// Store is a thread-safe Target backed by per-key getter/setter callbacks,
// the typical way to bridge the agent onto live server objects.
type Store struct {
	mu     sync.RWMutex
	gets   map[string]func() string
	sets   map[string]func(string) error
	frozen []string
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		gets: make(map[string]func() string),
		sets: make(map[string]func(string) error),
	}
}

// Register adds a key with a getter and an optional setter (nil makes the
// key read-only).
func (s *Store) Register(key string, get func() string, set func(string) error) {
	if get == nil {
		panic("mgmt: nil getter")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets[key] = get
	if set != nil {
		s.sets[key] = set
	}
	s.frozen = nil
}

// Get implements Target.
func (s *Store) Get(key string) (string, error) {
	s.mu.RLock()
	get, ok := s.gets[key]
	s.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownKey, key)
	}
	return get(), nil
}

// Set implements Target.
func (s *Store) Set(key, value string) error {
	s.mu.RLock()
	set, ok := s.sets[key]
	s.mu.RUnlock()
	if !ok {
		if _, readable := s.gets[key]; readable {
			return fmt.Errorf("mgmt: key %s is read-only", key)
		}
		return fmt.Errorf("%w: %s", ErrUnknownKey, key)
	}
	return set(value)
}

// Keys implements Target.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen == nil {
		for k := range s.gets {
			s.frozen = append(s.frozen, k)
		}
		sort.Strings(s.frozen)
	}
	return append([]string(nil), s.frozen...)
}

// agentIdleTimeout is how long a connection may sit between requests
// before the agent reaps it. Controllers poll on second-scale cadences;
// anything silent this long is a leaked or wedged peer, and before this
// cap existed every such peer pinned a serve goroutine forever (and made
// Close hang waiting for it).
const agentIdleTimeout = 30 * time.Second

// agentMaxLine caps a request line. The protocol's longest legitimate
// line is SET with a short key and value; a peer streaming an unbounded
// line would otherwise grow the scanner buffer without limit.
const agentMaxLine = 4096

// Agent serves the management protocol on a listener.
type Agent struct {
	ln     net.Listener
	target Target
	wg     sync.WaitGroup
	idle   time.Duration

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// NewAgent starts an agent listening on addr (use "127.0.0.1:0" for an
// ephemeral port).
func NewAgent(addr string, target Target) (*Agent, error) {
	return newAgent(addr, target, agentIdleTimeout)
}

func newAgent(addr string, target Target, idle time.Duration) (*Agent, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &Agent{
		ln:     ln,
		target: target,
		idle:   idle,
		conns:  make(map[net.Conn]struct{}),
	}
	a.wg.Add(1)
	go a.acceptLoop()
	return a, nil
}

// Addr returns the agent's listen address.
func (a *Agent) Addr() string { return a.ln.Addr().String() }

// Close stops the listener, closes every live connection, and waits for
// the serve goroutines to finish.
func (a *Agent) Close() error {
	a.mu.Lock()
	a.closed = true
	for conn := range a.conns {
		conn.Close()
	}
	a.mu.Unlock()
	err := a.ln.Close()
	a.wg.Wait()
	return err
}

// track registers a live connection; false means the agent is already
// closing and the connection must be dropped.
func (a *Agent) track(conn net.Conn) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return false
	}
	a.conns[conn] = struct{}{}
	return true
}

func (a *Agent) forget(conn net.Conn) {
	a.mu.Lock()
	delete(a.conns, conn)
	a.mu.Unlock()
}

func (a *Agent) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !a.track(conn) {
			conn.Close()
			continue
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.serve(conn)
		}()
	}
}

func (a *Agent) serve(conn net.Conn) {
	defer func() {
		a.forget(conn)
		conn.Close()
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 256), agentMaxLine)
	w := bufio.NewWriter(conn)
	for {
		// The deadline re-arms per request, so a chatty connection lives
		// forever while a silent one is reaped after one idle interval.
		conn.SetReadDeadline(time.Now().Add(a.idle)) //nolint:errcheck // TCP conns accept deadlines
		if !scanner.Scan() {
			// EOF, idle timeout, an over-long line, or Close.
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		resp, quit := a.handle(line)
		fmt.Fprintln(w, resp)
		if err := w.Flush(); err != nil || quit {
			return
		}
	}
}

// handle executes one protocol line and returns the response plus whether
// the connection should close.
func (a *Agent) handle(line string) (string, bool) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "PING":
		return "OK pong", false
	case "QUIT":
		return "OK bye", true
	case "KEYS":
		return "OK " + strings.Join(a.target.Keys(), " "), false
	case "GET":
		if len(fields) != 2 {
			return "ERR usage: GET <key>", false
		}
		v, err := a.target.Get(fields[1])
		if err != nil {
			return "ERR " + err.Error(), false
		}
		return "OK " + v, false
	case "SET":
		if len(fields) != 3 {
			return "ERR usage: SET <key> <value>", false
		}
		if err := a.target.Set(fields[1], fields[2]); err != nil {
			return "ERR " + err.Error(), false
		}
		return "OK", false
	default:
		return "ERR unknown command " + cmd, false
	}
}

// Client is a synchronous client for the management protocol.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to an agent.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close terminates the session politely.
func (c *Client) Close() error {
	fmt.Fprintln(c.conn, "QUIT")
	return c.conn.Close()
}

func (c *Client) roundTrip(req string) (string, error) {
	if _, err := fmt.Fprintln(c.conn, req); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return "", errors.New(strings.TrimPrefix(line, "ERR "))
	}
	if line == "OK" {
		return "", nil
	}
	if strings.HasPrefix(line, "OK ") {
		return strings.TrimPrefix(line, "OK "), nil
	}
	return "", fmt.Errorf("mgmt: malformed response %q", line)
}

// Get fetches a key's value.
func (c *Client) Get(key string) (string, error) { return c.roundTrip("GET " + key) }

// Set updates a key's value.
func (c *Client) Set(key, value string) error {
	_, err := c.roundTrip(fmt.Sprintf("SET %s %s", key, value))
	return err
}

// Keys lists the agent's keys.
func (c *Client) Keys() ([]string, error) {
	v, err := c.roundTrip("KEYS")
	if err != nil {
		return nil, err
	}
	if v == "" {
		return nil, nil
	}
	return strings.Fields(v), nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	v, err := c.roundTrip("PING")
	if err != nil {
		return err
	}
	if v != "pong" {
		return fmt.Errorf("mgmt: unexpected ping reply %q", v)
	}
	return nil
}
