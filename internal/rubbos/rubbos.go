// Package rubbos models the RUBBoS benchmark application (a Slashdot-like
// bulletin board, paper Section II-A): 24 servlet interactions, two workload
// mixes (browse-only CPU-intensive and read/write I/O-intensive), and the
// dataset-size effects on per-request service demand that drive the paper's
// system-state experiments (Fig. 3c, Fig. 7b/e, Fig. 11).
//
// Demands are calibrated so that the emergent optimal concurrency of the
// simulated tiers lands where the paper measures it: roughly 10 threads per
// core for MySQL and Tomcat under browse-only load, dropping to ~5 for the
// disk-bound read/write mix, shifting down when the dataset grows and up
// when it shrinks.
package rubbos

import (
	"fmt"

	"conscale/internal/rng"
)

// Mix selects the workload mode.
type Mix int

// The two RUBBoS workload modes.
const (
	// BrowseOnly is the read-only, CPU-intensive mode.
	BrowseOnly Mix = iota
	// ReadWrite is the read/write, disk-I/O-intensive mode.
	ReadWrite
)

// String implements fmt.Stringer.
func (m Mix) String() string {
	switch m {
	case BrowseOnly:
		return "browse-only"
	case ReadWrite:
		return "read-write"
	default:
		return fmt.Sprintf("Mix(%d)", int(m))
	}
}

// Servlet is one of the 24 RUBBoS interactions with its per-tier demands.
// All durations are seconds of service demand per visit.
type Servlet struct {
	Name   string
	Write  bool
	Weight float64 // selection probability weight within the mix

	WebCPU  float64 // web-tier CPU per request
	AppCPU  float64 // app-tier CPU per request (split across query gaps)
	AppWait float64 // app-tier non-CPU dwell (marshalling, network)

	Queries   int     // synchronous DB round trips per request
	QueryCPU  float64 // DB CPU per query
	QueryWait float64 // DB non-CPU dwell per query (protocol, row fetch)
	QueryDisk float64 // DB disk demand per query (writes, large scans)
}

// Calibration targets for the mix-level weighted means; the relative
// variety between servlets is preserved while the means are pinned so the
// emergent tier behaviour matches the paper's measurements.
const (
	targetWebCPU    = 0.00015 // 150 us (Apache serves as a thin proxy)
	targetAppCPU    = 0.00095 // 950 us  -> Tomcat TPmax ~1050/s/core
	targetAppWait   = 0.0025  // 2.5 ms
	targetQueryCPU  = 0.00022 // 220 us  -> MySQL TPmax ~4500 q/s/core
	targetQueryWait = 0.00158 // 1.58 ms -> MySQL knee ~10/core measured
	// Mean disk demand per query across the read/write mix; concentrated
	// on write servlets it yields a disk-bound knee of ~5.
	targetQueryDiskRW = 0.0009
)

// Dataset-scale exponents: how demand components grow with dataset size
// (scale 1 = the original RUBBoS dataset). The app tier's business logic
// is most sensitive (the paper's Section III-C.2 observation), the DB CPU
// least (indexed access).
const (
	expAppCPU    = 0.60
	expQueryCPU  = 0.15
	expQueryWait = 0.30
	expQueryDisk = 0.40
)

// Workload is a calibrated servlet mix ready for sampling.
type Workload struct {
	MixMode      Mix
	DatasetScale float64
	Servlets     []Servlet
	weights      []float64
}

// relative per-servlet shape: multipliers around the mix means, plus query
// counts. Weights are (browse, readwrite); zero removes the servlet from
// that mix. The 24 interactions follow the RUBBoS servlet set.
type shape struct {
	name         string
	write        bool
	wBrowse, wRW float64
	appCPU       float64
	appWait      float64
	queries      int
	queryCPU     float64
	queryWait    float64
	queryDiskRel float64 // relative disk demand (read/write mix only)
}

var servletShapes = []shape{
	{name: "StoriesOfTheDay", wBrowse: 12, wRW: 10, appCPU: 1.0, appWait: 1.0, queries: 2, queryCPU: 1.1, queryWait: 1.0},
	{name: "ViewStory", wBrowse: 16, wRW: 12, appCPU: 1.1, appWait: 1.0, queries: 2, queryCPU: 1.0, queryWait: 1.0},
	{name: "ViewComment", wBrowse: 10, wRW: 8, appCPU: 0.9, appWait: 0.9, queries: 2, queryCPU: 0.9, queryWait: 1.0},
	{name: "BrowseCategories", wBrowse: 6, wRW: 5, appCPU: 0.6, appWait: 0.8, queries: 1, queryCPU: 0.7, queryWait: 0.9},
	{name: "BrowseStoriesByCategory", wBrowse: 9, wRW: 7, appCPU: 1.0, appWait: 1.1, queries: 2, queryCPU: 1.2, queryWait: 1.1},
	{name: "OlderStories", wBrowse: 6, wRW: 5, appCPU: 0.9, appWait: 1.0, queries: 2, queryCPU: 1.1, queryWait: 1.1},
	{name: "Search", wBrowse: 5, wRW: 4, appCPU: 1.3, appWait: 1.1, queries: 3, queryCPU: 1.4, queryWait: 1.2},
	{name: "SearchInStories", wBrowse: 4, wRW: 3, appCPU: 1.3, appWait: 1.1, queries: 3, queryCPU: 1.5, queryWait: 1.2},
	{name: "SearchInComments", wBrowse: 3, wRW: 2, appCPU: 1.3, appWait: 1.1, queries: 3, queryCPU: 1.6, queryWait: 1.3},
	{name: "SearchInUsers", wBrowse: 2, wRW: 2, appCPU: 1.1, appWait: 1.0, queries: 2, queryCPU: 1.2, queryWait: 1.1},
	{name: "AboutMe", wBrowse: 3, wRW: 3, appCPU: 1.2, appWait: 1.1, queries: 3, queryCPU: 1.1, queryWait: 1.0},
	{name: "ViewUserInfo", wBrowse: 4, wRW: 3, appCPU: 0.8, appWait: 0.9, queries: 1, queryCPU: 0.8, queryWait: 0.9},
	{name: "BrowseRegions", wBrowse: 3, wRW: 2, appCPU: 0.6, appWait: 0.8, queries: 1, queryCPU: 0.7, queryWait: 0.9},
	{name: "StoryOfTheWeek", wBrowse: 4, wRW: 3, appCPU: 1.0, appWait: 1.0, queries: 2, queryCPU: 1.1, queryWait: 1.0},
	{name: "CommentsOfTheDay", wBrowse: 3, wRW: 2, appCPU: 1.0, appWait: 1.0, queries: 2, queryCPU: 1.0, queryWait: 1.0},
	{name: "RegisterUser", write: true, wRW: 2, appCPU: 1.0, appWait: 1.0, queries: 2, queryCPU: 0.9, queryWait: 1.0, queryDiskRel: 0.8},
	{name: "SubmitStory", write: true, wRW: 4, appCPU: 1.2, appWait: 1.1, queries: 2, queryCPU: 1.0, queryWait: 1.0, queryDiskRel: 1.0},
	{name: "StoreStory", write: true, wRW: 8, appCPU: 1.1, appWait: 1.0, queries: 3, queryCPU: 1.0, queryWait: 1.1, queryDiskRel: 1.3},
	{name: "PostComment", write: true, wRW: 5, appCPU: 1.0, appWait: 1.0, queries: 2, queryCPU: 0.9, queryWait: 1.0, queryDiskRel: 1.0},
	{name: "StoreComment", write: true, wRW: 7, appCPU: 1.0, appWait: 1.0, queries: 3, queryCPU: 1.0, queryWait: 1.0, queryDiskRel: 1.2},
	{name: "ReviewStories", wBrowse: 3, wRW: 3, appCPU: 1.1, appWait: 1.0, queries: 2, queryCPU: 1.1, queryWait: 1.0},
	{name: "AcceptStory", write: true, wRW: 2, appCPU: 1.0, appWait: 1.0, queries: 2, queryCPU: 0.9, queryWait: 1.0, queryDiskRel: 1.1},
	{name: "RejectStory", write: true, wRW: 1, appCPU: 0.9, appWait: 0.9, queries: 1, queryCPU: 0.8, queryWait: 0.9, queryDiskRel: 0.9},
	{name: "ModerateComment", write: true, wRW: 2, appCPU: 1.0, appWait: 1.0, queries: 2, queryCPU: 1.0, queryWait: 1.0, queryDiskRel: 1.0},
}

// NewWorkload builds the calibrated servlet mix for the given mode and
// dataset scale (1 = original dataset; 2 = the paper's "manually enlarged"
// dataset; <1 = the reduced dataset of the DCM experiment). It panics on a
// non-positive scale.
func NewWorkload(mix Mix, datasetScale float64) *Workload {
	if datasetScale <= 0 {
		panic("rubbos: non-positive dataset scale")
	}
	var servlets []Servlet
	for _, sh := range servletShapes {
		w := sh.wBrowse
		if mix == ReadWrite {
			w = sh.wRW
		}
		if w <= 0 {
			continue
		}
		servlets = append(servlets, Servlet{
			Name:      sh.name,
			Write:     sh.write,
			Weight:    w,
			WebCPU:    targetWebCPU,
			AppCPU:    sh.appCPU,
			AppWait:   sh.appWait,
			Queries:   sh.queries,
			QueryCPU:  sh.queryCPU,
			QueryWait: sh.queryWait,
			QueryDisk: sh.queryDiskRel,
		})
	}

	calibrate(servlets, mix)
	applyDatasetScale(servlets, datasetScale)

	weights := make([]float64, len(servlets))
	for i, s := range servlets {
		weights[i] = s.Weight
	}
	return &Workload{MixMode: mix, DatasetScale: datasetScale, Servlets: servlets, weights: weights}
}

// calibrate rescales each demand field so its weighted mix mean equals the
// target, preserving per-servlet relative variety. Query-level fields are
// weighted by weight*queries because that is how often a query executes.
func calibrate(servlets []Servlet, mix Mix) {
	var wSum, qSum float64
	var appCPU, appWait, qCPU, qWait, qDisk float64
	for _, s := range servlets {
		wSum += s.Weight
		qw := s.Weight * float64(s.Queries)
		qSum += qw
		appCPU += s.Weight * s.AppCPU
		appWait += s.Weight * s.AppWait
		qCPU += qw * s.QueryCPU
		qWait += qw * s.QueryWait
		qDisk += qw * s.QueryDisk
	}
	appCPUScale := targetAppCPU / (appCPU / wSum)
	appWaitScale := targetAppWait / (appWait / wSum)
	qCPUScale := targetQueryCPU / (qCPU / qSum)
	qWaitScale := targetQueryWait / (qWait / qSum)
	qDiskScale := 0.0
	if mix == ReadWrite && qDisk > 0 {
		qDiskScale = targetQueryDiskRW / (qDisk / qSum)
	}
	for i := range servlets {
		servlets[i].AppCPU *= appCPUScale
		servlets[i].AppWait *= appWaitScale
		servlets[i].QueryCPU *= qCPUScale
		servlets[i].QueryWait *= qWaitScale
		servlets[i].QueryDisk *= qDiskScale
	}
}

func applyDatasetScale(servlets []Servlet, scale float64) {
	if scale == 1 {
		return
	}
	for i := range servlets {
		servlets[i].AppCPU *= mathPow(scale, expAppCPU)
		servlets[i].QueryCPU *= mathPow(scale, expQueryCPU)
		servlets[i].QueryWait *= mathPow(scale, expQueryWait)
		servlets[i].QueryDisk *= mathPow(scale, expQueryDisk)
	}
}

// Pick samples a servlet according to the mix weights.
func (w *Workload) Pick(rnd *rng.Source) *Servlet {
	return &w.Servlets[rnd.Pick(w.weights)]
}

// MeanDemand summarises the mix-level expected demands; tests use it to
// verify calibration and analytic predictions of optimal concurrency.
type MeanDemand struct {
	WebCPU    float64
	AppCPU    float64
	AppWait   float64
	Queries   float64
	QueryCPU  float64
	QueryWait float64
	QueryDisk float64
}

// Means returns the weighted expected demands of the mix.
func (w *Workload) Means() MeanDemand {
	var m MeanDemand
	var wSum, qSum float64
	for _, s := range w.Servlets {
		wSum += s.Weight
		qw := s.Weight * float64(s.Queries)
		qSum += qw
		m.WebCPU += s.Weight * s.WebCPU
		m.AppCPU += s.Weight * s.AppCPU
		m.AppWait += s.Weight * s.AppWait
		m.Queries += s.Weight * float64(s.Queries)
		m.QueryCPU += qw * s.QueryCPU
		m.QueryWait += qw * s.QueryWait
		m.QueryDisk += qw * s.QueryDisk
	}
	m.WebCPU /= wSum
	m.AppCPU /= wSum
	m.AppWait /= wSum
	m.Queries /= wSum
	m.QueryCPU /= qSum
	m.QueryWait /= qSum
	m.QueryDisk /= qSum
	return m
}

// PredictedDBOptimal returns the analytic optimal DB concurrency per core
// (CPU-bound) or per disk channel (disk-bound): the number of threads
// needed to keep the bottleneck resource saturated given the per-query
// demand composition (Utilization Law applied to the visit profile).
func (w *Workload) PredictedDBOptimal() float64 {
	m := w.Means()
	total := m.QueryCPU + m.QueryWait + m.QueryDisk
	if m.QueryDisk > m.QueryCPU {
		return total / m.QueryDisk
	}
	return total / m.QueryCPU
}

// PredictedAppOptimal returns the analytic optimal app-tier concurrency per
// core given the downstream DB response time dbRT (seconds per query,
// unloaded).
func (w *Workload) PredictedAppOptimal(dbRT float64) float64 {
	m := w.Means()
	total := m.AppCPU + m.AppWait + m.Queries*dbRT
	return total / m.AppCPU
}
