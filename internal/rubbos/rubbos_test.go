package rubbos

import (
	"math"
	"testing"

	"conscale/internal/rng"
)

func TestBrowseOnlyHas24MinusWriteServlets(t *testing.T) {
	w := NewWorkload(BrowseOnly, 1)
	for _, s := range w.Servlets {
		if s.Write {
			t.Fatalf("browse-only mix contains write servlet %s", s.Name)
		}
	}
	if len(w.Servlets) < 15 {
		t.Fatalf("browse-only mix has only %d servlets", len(w.Servlets))
	}
}

func TestReadWriteIncludesAll24(t *testing.T) {
	w := NewWorkload(ReadWrite, 1)
	if len(w.Servlets) != 24 {
		t.Fatalf("read-write mix has %d servlets, want 24", len(w.Servlets))
	}
	writes := 0
	for _, s := range w.Servlets {
		if s.Write {
			writes++
		}
	}
	if writes == 0 {
		t.Fatal("read-write mix has no write servlets")
	}
}

func TestCalibrationHitsTargets(t *testing.T) {
	for _, mix := range []Mix{BrowseOnly, ReadWrite} {
		m := NewWorkload(mix, 1).Means()
		if math.Abs(m.AppCPU-targetAppCPU)/targetAppCPU > 1e-9 {
			t.Fatalf("%v AppCPU mean = %v, want %v", mix, m.AppCPU, targetAppCPU)
		}
		if math.Abs(m.AppWait-targetAppWait)/targetAppWait > 1e-9 {
			t.Fatalf("%v AppWait mean = %v", mix, m.AppWait)
		}
		if math.Abs(m.QueryCPU-targetQueryCPU)/targetQueryCPU > 1e-9 {
			t.Fatalf("%v QueryCPU mean = %v", mix, m.QueryCPU)
		}
		if math.Abs(m.QueryWait-targetQueryWait)/targetQueryWait > 1e-9 {
			t.Fatalf("%v QueryWait mean = %v", mix, m.QueryWait)
		}
	}
}

func TestBrowseOnlyHasNoDisk(t *testing.T) {
	m := NewWorkload(BrowseOnly, 1).Means()
	if m.QueryDisk != 0 {
		t.Fatalf("browse-only QueryDisk mean = %v, want 0", m.QueryDisk)
	}
}

func TestReadWriteDiskCalibrated(t *testing.T) {
	m := NewWorkload(ReadWrite, 1).Means()
	if math.Abs(m.QueryDisk-targetQueryDiskRW)/targetQueryDiskRW > 1e-9 {
		t.Fatalf("read-write QueryDisk mean = %v, want %v", m.QueryDisk, targetQueryDiskRW)
	}
	// Disk demand must be concentrated on write servlets.
	w := NewWorkload(ReadWrite, 1)
	for _, s := range w.Servlets {
		if !s.Write && s.QueryDisk != 0 {
			t.Fatalf("read servlet %s has disk demand %v", s.Name, s.QueryDisk)
		}
		if s.Write && s.QueryDisk == 0 {
			t.Fatalf("write servlet %s has no disk demand", s.Name)
		}
	}
}

func TestPredictedDBOptimalBrowse(t *testing.T) {
	got := NewWorkload(BrowseOnly, 1).PredictedDBOptimal()
	// (0.22 + 1.58) / 0.22 ≈ 8.2 threads per core to saturate the CPU
	// analytically; demand variability pushes the measured knee to ~10
	// (the paper's Fig. 7a value), which the sweep tests verify.
	if math.Abs(got-8.2) > 0.3 {
		t.Fatalf("PredictedDBOptimal = %v, want ~8.2", got)
	}
}

func TestPredictedDBOptimalReadWriteLower(t *testing.T) {
	browse := NewWorkload(BrowseOnly, 1).PredictedDBOptimal()
	rw := NewWorkload(ReadWrite, 1).PredictedDBOptimal()
	if rw >= browse {
		t.Fatalf("read-write optimal (%v) should be below browse-only (%v)", rw, browse)
	}
	if rw < 2.2 || rw > 6 {
		t.Fatalf("read-write optimal = %v, want low (paper Fig. 7f knee: 5)", rw)
	}
}

func TestPredictedAppOptimal(t *testing.T) {
	w := NewWorkload(BrowseOnly, 1)
	m := w.Means()
	dbRT := m.QueryCPU + m.QueryWait
	got := w.PredictedAppOptimal(dbRT)
	// (0.95 + 2.5 + 2*1.8) / 0.95 ≈ 7.4 per core analytically; measured
	// knee lands at ~10 (Fig. 3a).
	if got < 6 || got > 10 {
		t.Fatalf("PredictedAppOptimal = %v, want ~7.4", got)
	}
}

func TestEnlargedDatasetLowersAppOptimal(t *testing.T) {
	orig := NewWorkload(BrowseOnly, 1)
	big := NewWorkload(BrowseOnly, 2)
	dbRT := func(w *Workload) float64 {
		m := w.Means()
		return m.QueryCPU + m.QueryWait
	}
	o := orig.PredictedAppOptimal(dbRT(orig))
	b := big.PredictedAppOptimal(dbRT(big))
	if b >= o {
		t.Fatalf("enlarged dataset should lower app optimal: %v -> %v", o, b)
	}
	// Paper Fig. 7b/e: 20 -> 15 on 2 cores, i.e. a ~25% drop.
	drop := (o - b) / o
	if drop < 0.10 || drop > 0.45 {
		t.Fatalf("enlarged-dataset drop = %.0f%%, want ~25%%", drop*100)
	}
}

func TestReducedDatasetRaisesAppOptimal(t *testing.T) {
	orig := NewWorkload(BrowseOnly, 1)
	small := NewWorkload(BrowseOnly, 0.5)
	dbRT := func(w *Workload) float64 {
		m := w.Means()
		return m.QueryCPU + m.QueryWait
	}
	o := orig.PredictedAppOptimal(dbRT(orig))
	s := small.PredictedAppOptimal(dbRT(small))
	if s <= o {
		t.Fatalf("reduced dataset should raise app optimal: %v -> %v", o, s)
	}
	// Paper Fig. 11: trained 20 -> new optimal 30, a ~50% rise; accept a
	// broad band since the analytic model is approximate.
	rise := (s - o) / o
	if rise < 0.15 {
		t.Fatalf("reduced-dataset rise = %.0f%%, want noticeable", rise*100)
	}
}

func TestDatasetScaleMonotone(t *testing.T) {
	prev := 0.0
	for _, scale := range []float64{0.5, 1, 2, 4} {
		m := NewWorkload(BrowseOnly, scale).Means()
		if m.AppCPU <= prev {
			t.Fatalf("AppCPU not increasing with dataset scale at %v", scale)
		}
		prev = m.AppCPU
	}
}

func TestNonPositiveScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewWorkload(BrowseOnly, 0)
}

func TestPickDistribution(t *testing.T) {
	w := NewWorkload(BrowseOnly, 1)
	rnd := rng.New(5)
	counts := make(map[string]int)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.Pick(rnd).Name]++
	}
	// ViewStory (weight 16) should be drawn more than BrowseRegions (3).
	if counts["ViewStory"] <= counts["BrowseRegions"] {
		t.Fatalf("weighting broken: ViewStory=%d BrowseRegions=%d",
			counts["ViewStory"], counts["BrowseRegions"])
	}
	var totalWeight float64
	for _, s := range w.Servlets {
		totalWeight += s.Weight
	}
	for _, s := range w.Servlets {
		want := s.Weight / totalWeight * n
		got := float64(counts[s.Name])
		if math.Abs(got-want) > want*0.15+30 {
			t.Fatalf("servlet %s drawn %v times, want ~%v", s.Name, got, want)
		}
	}
}

func TestQueriesPositive(t *testing.T) {
	for _, mix := range []Mix{BrowseOnly, ReadWrite} {
		for _, s := range NewWorkload(mix, 1).Servlets {
			if s.Queries < 1 || s.Queries > 5 {
				t.Fatalf("servlet %s has %d queries", s.Name, s.Queries)
			}
			if s.AppCPU <= 0 || s.QueryCPU <= 0 || s.QueryWait <= 0 || s.WebCPU <= 0 {
				t.Fatalf("servlet %s has non-positive demand", s.Name)
			}
		}
	}
}

func TestMixString(t *testing.T) {
	if BrowseOnly.String() != "browse-only" || ReadWrite.String() != "read-write" {
		t.Fatal("Mix.String wrong")
	}
	if Mix(9).String() == "" {
		t.Fatal("unknown mix should still format")
	}
}
