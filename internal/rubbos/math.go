package rubbos

import "math"

func mathPow(a, b float64) float64 { return math.Pow(a, b) }
