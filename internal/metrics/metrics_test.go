package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"conscale/internal/des"
)

func TestRecorderSingleRequest(t *testing.T) {
	r := NewRecorder(DefaultWindow)
	r.Arrive(0.010)
	r.Depart(0.030, 0.020)
	samples := r.Flush(0.100)
	if len(samples) != 2 {
		t.Fatalf("got %d windows, want 2", len(samples))
	}
	w0 := samples[0]
	// In flight from 10ms to 30ms inside a 50ms window: avg = 20/50 = 0.4.
	if math.Abs(w0.Concurrency-0.4) > 1e-9 {
		t.Fatalf("Concurrency = %v, want 0.4", w0.Concurrency)
	}
	if w0.Completions != 1 {
		t.Fatalf("Completions = %d", w0.Completions)
	}
	if math.Abs(w0.Throughput-20) > 1e-9 { // 1 completion / 50ms = 20/s
		t.Fatalf("Throughput = %v, want 20", w0.Throughput)
	}
	if math.Abs(w0.RT-0.020) > 1e-12 {
		t.Fatalf("RT = %v, want 0.020", w0.RT)
	}
	if samples[1].Completions != 0 || samples[1].Concurrency != 0 {
		t.Fatalf("second window not empty: %+v", samples[1])
	}
	if !math.IsNaN(samples[1].RT) {
		t.Fatalf("empty window RT = %v, want NaN", samples[1].RT)
	}
}

func TestRecorderConcurrencySpansWindows(t *testing.T) {
	r := NewRecorder(DefaultWindow)
	r.Arrive(0)            // in flight the whole time
	r.Depart(0.160, 0.160) // departs inside window 3
	samples := r.Flush(0.200)
	if len(samples) != 4 {
		t.Fatalf("got %d windows, want 4", len(samples))
	}
	for i := 0; i < 3; i++ {
		if math.Abs(samples[i].Concurrency-1) > 1e-9 {
			t.Fatalf("window %d Concurrency = %v, want 1", i, samples[i].Concurrency)
		}
	}
	// In flight for ~10ms of the 50ms final window.
	if math.Abs(samples[3].Concurrency-0.2) > 1e-6 {
		t.Fatalf("final window Concurrency = %v, want ~0.2", samples[3].Concurrency)
	}
	if samples[3].Completions != 1 {
		t.Fatalf("completion should land in the window containing t=150ms")
	}
}

func TestRecorderOverlappingRequests(t *testing.T) {
	r := NewRecorder(des.Time(0.100))
	r.Arrive(0)
	r.Arrive(0.025)
	r.Depart(0.050, 0.050)
	r.Depart(0.075, 0.050)
	samples := r.Flush(0.100)
	if len(samples) != 1 {
		t.Fatalf("got %d windows", len(samples))
	}
	// Integral: 1*(0..25) + 2*(25..50) + 1*(50..75) = 25+50+25 = 100 ms over 100 ms.
	if math.Abs(samples[0].Concurrency-1.0) > 1e-9 {
		t.Fatalf("Concurrency = %v, want 1.0", samples[0].Concurrency)
	}
	if samples[0].Completions != 2 {
		t.Fatalf("Completions = %d", samples[0].Completions)
	}
	if math.Abs(samples[0].RT-0.050) > 1e-12 {
		t.Fatalf("RT = %v", samples[0].RT)
	}
}

func TestRecorderDropCountsError(t *testing.T) {
	r := NewRecorder(DefaultWindow)
	r.Arrive(0.010)
	r.Drop(0.020)
	r.Reject(0.030)
	samples := r.Flush(0.050)
	if samples[0].Errors != 2 {
		t.Fatalf("Errors = %d, want 2", samples[0].Errors)
	}
	if samples[0].Completions != 0 {
		t.Fatalf("Completions = %d, want 0", samples[0].Completions)
	}
	arrived, completed, errored := r.Totals()
	if arrived != 1 || completed != 0 || errored != 2 {
		t.Fatalf("Totals = %d/%d/%d", arrived, completed, errored)
	}
}

func TestRecorderDepartWithoutArrivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRecorder(DefaultWindow).Depart(1, 0.5)
}

func TestRecorderTimeBackwardsPanics(t *testing.T) {
	r := NewRecorder(DefaultWindow)
	r.Arrive(1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r.Arrive(0.5)
}

func TestRecorderNonPositiveWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRecorder(0)
}

func TestRecorderInFlight(t *testing.T) {
	r := NewRecorder(DefaultWindow)
	r.Arrive(0.001)
	r.Arrive(0.002)
	if r.InFlight() != 2 {
		t.Fatalf("InFlight = %d", r.InFlight())
	}
	r.Depart(0.003, 0.002)
	if r.InFlight() != 1 {
		t.Fatalf("InFlight = %d", r.InFlight())
	}
}

func TestRecorderFlushResets(t *testing.T) {
	r := NewRecorder(DefaultWindow)
	r.Arrive(0.010)
	r.Depart(0.020, 0.010)
	first := r.Flush(0.100)
	second := r.Flush(0.100)
	if len(first) == 0 {
		t.Fatal("first flush empty")
	}
	if len(second) != 0 {
		t.Fatalf("second flush returned %d stale windows", len(second))
	}
}

// Property: completions summed across all windows equals total departures,
// regardless of request timing (conservation law).
func TestQuickCompletionConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		r := NewRecorder(DefaultWindow)
		now := des.Time(0)
		departures := 0
		pending := 0
		for _, v := range raw {
			now += des.Time(v%100) * des.Millisecond
			if v%3 == 0 || pending == 0 {
				r.Arrive(now)
				pending++
			} else {
				r.Depart(now, 0.001)
				pending--
				departures++
			}
		}
		total := 0
		for _, s := range r.Flush(now + 1) {
			total += s.Completions
		}
		return total == departures
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: window concurrency is bounded by the max in-flight count.
func TestQuickConcurrencyBounded(t *testing.T) {
	f := func(raw []uint8) bool {
		r := NewRecorder(DefaultWindow)
		now := des.Time(0)
		inFlight, maxIn := 0, 0
		for _, v := range raw {
			now += des.Time(v%50) * des.Millisecond
			if v%2 == 0 || inFlight == 0 {
				r.Arrive(now)
				inFlight++
				if inFlight > maxIn {
					maxIn = inFlight
				}
			} else {
				r.Depart(now, 0.001)
				inFlight--
			}
		}
		for _, s := range r.Flush(now + 1) {
			if s.Concurrency > float64(maxIn)+1e-9 || s.Concurrency < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWeightedConstant(t *testing.T) {
	m := NewTimeWeighted(des.Second)
	m.Set(0, 0.5)
	samples := m.Flush(3)
	if len(samples) != 3 {
		t.Fatalf("got %d samples", len(samples))
	}
	for _, s := range samples {
		if math.Abs(s.Mean-0.5) > 1e-9 {
			t.Fatalf("Mean = %v, want 0.5", s.Mean)
		}
	}
}

func TestTimeWeightedStep(t *testing.T) {
	m := NewTimeWeighted(des.Second)
	m.Set(0, 0)
	m.Set(0.5, 1) // busy from 0.5s
	samples := m.Flush(1)
	if len(samples) != 1 {
		t.Fatalf("got %d samples", len(samples))
	}
	if math.Abs(samples[0].Mean-0.5) > 1e-9 {
		t.Fatalf("Mean = %v, want 0.5", samples[0].Mean)
	}
}

func TestTimeWeightedWindowMean(t *testing.T) {
	m := NewTimeWeighted(des.Second)
	m.Set(0, 1)
	if got := m.WindowMean(0.5); math.Abs(got-1) > 1e-9 {
		t.Fatalf("WindowMean = %v, want 1", got)
	}
	m.Set(0.5, 0)
	if got := m.WindowMean(0.75); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("WindowMean = %v, want 2/3", got)
	}
}

func TestTimeWeightedValue(t *testing.T) {
	m := NewTimeWeighted(des.Second)
	m.Set(1, 7)
	if m.Value() != 7 {
		t.Fatalf("Value = %v", m.Value())
	}
}

func TestWarehouseStoreAndQuery(t *testing.T) {
	w := NewWarehouse(10 * des.Second)
	w.PutFine("mysql1", []WindowSample{{Start: 1}, {Start: 2}, {Start: 3}})
	got := w.FineSince("mysql1", 2)
	if len(got) != 2 || got[0].Start != 2 {
		t.Fatalf("FineSince wrong: %+v", got)
	}
	if names := w.Servers(); len(names) != 1 || names[0] != "mysql1" {
		t.Fatalf("Servers = %v", names)
	}
}

func TestWarehousePrunes(t *testing.T) {
	w := NewWarehouse(5 * des.Second)
	var samples []WindowSample
	for i := 0; i < 100; i++ {
		samples = append(samples, WindowSample{Start: des.Time(i)})
	}
	w.PutFine("s", samples)
	all := w.FineSince("s", 0)
	if len(all) == 100 {
		t.Fatal("warehouse did not prune old samples")
	}
	if all[0].Start < 94 {
		t.Fatalf("oldest retained = %v, want >= 94", all[0].Start)
	}
}

func TestWarehouseMeanCPU(t *testing.T) {
	w := NewWarehouse(100 * des.Second)
	w.PutCPU("vm1", []TWSample{{Start: 0, Mean: 0.2}, {Start: 1, Mean: 0.4}, {Start: 2, Mean: 0.9}})
	got, ok := w.MeanCPU("vm1", 1)
	if !ok || math.Abs(got-0.65) > 1e-9 {
		t.Fatalf("MeanCPU = %v/%v, want 0.65", got, ok)
	}
	if _, ok := w.MeanCPU("missing", 0); ok {
		t.Fatal("MeanCPU for unknown server reported ok")
	}
}

func TestWarehouseForget(t *testing.T) {
	w := NewWarehouse(10 * des.Second)
	w.PutFine("s", []WindowSample{{Start: 1}})
	w.PutCPU("s", []TWSample{{Start: 1, Mean: 0.5}})
	w.Forget("s")
	if len(w.FineSince("s", 0)) != 0 || len(w.CPUSince("s", 0)) != 0 {
		t.Fatal("Forget left data behind")
	}
}

func TestWarehouseEmptyPuts(t *testing.T) {
	w := NewWarehouse(10 * des.Second)
	w.PutFine("s", nil)
	w.PutCPU("s", nil)
	if len(w.Servers()) != 0 {
		t.Fatal("empty put registered a server")
	}
}

func BenchmarkRecorder(b *testing.B) {
	b.ReportAllocs()
	r := NewRecorder(DefaultWindow)
	now := des.Time(0)
	for i := 0; i < b.N; i++ {
		now += 0.001
		r.Arrive(now)
		r.Depart(now+0.0005, 0.0005)
	}
	r.Flush(now + 1)
}
