package metrics

import (
	"sort"

	"conscale/internal/des"
)

// Warehouse is the Metric Warehouse of the ConScale architecture (paper
// Fig. 8): it stores each server's fine-grained window samples and each
// VM's system-level series, and serves them to the Decision Controller and
// the Optimal Concurrency Estimator. Samples older than the retention
// horizon are pruned so 12-minute runs stay O(retention) in memory.
type Warehouse struct {
	retention des.Time
	fine      map[string][]WindowSample
	cpu       map[string][]TWSample
}

// NewWarehouse returns a warehouse keeping the given span of history.
// Retention must cover the SCT collection window (the paper uses ~3 min).
func NewWarehouse(retention des.Time) *Warehouse {
	if retention <= 0 {
		panic("metrics: non-positive retention")
	}
	return &Warehouse{
		retention: retention,
		fine:      make(map[string][]WindowSample),
		cpu:       make(map[string][]TWSample),
	}
}

// PutFine appends fine-grained samples for the named server.
func (w *Warehouse) PutFine(server string, samples []WindowSample) {
	if len(samples) == 0 {
		return
	}
	w.fine[server] = append(w.fine[server], samples...)
	w.pruneFine(server, samples[len(samples)-1].Start)
}

// PutCPU appends CPU-utilization samples (fraction of allotted cores busy,
// 0..1) for the named VM.
func (w *Warehouse) PutCPU(server string, samples []TWSample) {
	if len(samples) == 0 {
		return
	}
	w.cpu[server] = append(w.cpu[server], samples...)
	w.pruneCPU(server, samples[len(samples)-1].Start)
}

func (w *Warehouse) pruneFine(server string, now des.Time) {
	s := w.fine[server]
	cut := now - w.retention
	i := sort.Search(len(s), func(i int) bool { return s[i].Start >= cut })
	if i > 0 {
		w.fine[server] = append(s[:0:0], s[i:]...)
	}
}

func (w *Warehouse) pruneCPU(server string, now des.Time) {
	s := w.cpu[server]
	cut := now - w.retention
	i := sort.Search(len(s), func(i int) bool { return s[i].Start >= cut })
	if i > 0 {
		w.cpu[server] = append(s[:0:0], s[i:]...)
	}
}

// Servers returns the names of all servers with fine-grained data.
func (w *Warehouse) Servers() []string {
	out := make([]string, 0, len(w.fine))
	for name := range w.fine {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FineSince returns the named server's window samples with Start >= since,
// in time order. The returned slice aliases warehouse storage; callers must
// not mutate it.
func (w *Warehouse) FineSince(server string, since des.Time) []WindowSample {
	s := w.fine[server]
	i := sort.Search(len(s), func(i int) bool { return s[i].Start >= since })
	return s[i:]
}

// CPUSince returns the named VM's utilization samples with Start >= since.
func (w *Warehouse) CPUSince(server string, since des.Time) []TWSample {
	s := w.cpu[server]
	i := sort.Search(len(s), func(i int) bool { return s[i].Start >= since })
	return s[i:]
}

// MeanCPU returns the mean utilization of the named VM over samples with
// Start >= since, and false when there are none.
func (w *Warehouse) MeanCPU(server string, since des.Time) (float64, bool) {
	s := w.CPUSince(server, since)
	if len(s) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, v := range s {
		sum += v.Mean
	}
	return sum / float64(len(s)), true
}

// Forget removes all series for a server (used when a VM is terminated so
// stale samples cannot influence later scaling decisions).
func (w *Warehouse) Forget(server string) {
	delete(w.fine, server)
	delete(w.cpu, server)
}
