// Package metrics implements the measurement pipeline of the paper's
// Section III-B and the Metric Warehouse of Section IV: every server keeps a
// request processing log at millisecond granularity, which is aggregated
// into fixed windows (50 ms by default) of real-time concurrency,
// throughput, and response time. A separate time-weighted meter tracks
// system-level metrics such as CPU utilization at 1-second granularity.
package metrics

import (
	"fmt"
	"math"

	"conscale/internal/des"
)

// DefaultWindow is the paper's fine-grained measurement interval.
const DefaultWindow = 50 * des.Millisecond

// WindowSample is one fixed-interval observation of a server: the tuple
// {Q, TP, RT} the SCT model consumes.
type WindowSample struct {
	Start       des.Time
	Concurrency float64 // time-averaged number of in-flight requests
	Throughput  float64 // completions per second in this window
	RT          float64 // mean response time (seconds) of completed requests; NaN if none
	Completions int
	Errors      int // requests rejected or failed in this window
}

// End returns the window's exclusive end time given its length.
func (w WindowSample) End(window des.Time) des.Time { return w.Start + window }

// Recorder aggregates a server's request log into window samples. It is
// driven by the simulation (single goroutine), so it needs no locking.
type Recorder struct {
	window des.Time

	inFlight int
	lastT    des.Time // time of the last concurrency change inside the window

	winStart   des.Time
	concIntegr float64 // ∫ concurrency dt within the current window
	rtSum      float64
	completed  int
	errors     int

	samples []WindowSample

	totalCompleted int
	totalErrors    int
	totalArrived   int
}

// NewRecorder returns a recorder with the given window length (use
// DefaultWindow for the paper's 50 ms).
func NewRecorder(window des.Time) *Recorder {
	if window <= 0 {
		panic("metrics: non-positive window")
	}
	return &Recorder{window: window}
}

// Window returns the configured window length.
func (r *Recorder) Window() des.Time { return r.window }

// Arrive records a request entering service at time t.
func (r *Recorder) Arrive(t des.Time) {
	r.advance(t)
	r.inFlight++
	r.totalArrived++
}

// Depart records a request completing at time t with the given response
// time (seconds, measured by the caller from its own arrival timestamp).
func (r *Recorder) Depart(t des.Time, responseTime float64) {
	r.advance(t)
	if r.inFlight <= 0 {
		panic("metrics: Depart without matching Arrive")
	}
	r.inFlight--
	r.completed++
	r.totalCompleted++
	r.rtSum += responseTime
}

// Drop records a request leaving the server unsuccessfully at time t
// (queue overflow, timeout). Dropped requests count as errors, not
// completions, and stop contributing to concurrency.
func (r *Recorder) Drop(t des.Time) {
	r.advance(t)
	if r.inFlight <= 0 {
		panic("metrics: Drop without matching Arrive")
	}
	r.inFlight--
	r.errors++
	r.totalErrors++
}

// Reject records a request refused before entering service (accept-queue
// overflow). It affects error counts only.
func (r *Recorder) Reject(t des.Time) {
	r.advance(t)
	r.errors++
	r.totalErrors++
}

// InFlight returns the instantaneous concurrency.
func (r *Recorder) InFlight() int { return r.inFlight }

// Totals returns lifetime counters: arrived, completed, errored.
func (r *Recorder) Totals() (arrived, completed, errored int) {
	return r.totalArrived, r.totalCompleted, r.totalErrors
}

// advance integrates concurrency up to t, closing any windows t has passed.
func (r *Recorder) advance(t des.Time) {
	if t < r.lastT {
		panic(fmt.Sprintf("metrics: time went backwards: %v < %v", t, r.lastT))
	}
	for t >= r.winStart+r.window {
		boundary := r.winStart + r.window
		r.concIntegr += float64(r.inFlight) * float64(boundary-r.lastT)
		r.flushWindow()
		r.lastT = boundary
		r.winStart = boundary
	}
	r.concIntegr += float64(r.inFlight) * float64(t-r.lastT)
	r.lastT = t
}

func (r *Recorder) flushWindow() {
	rt := math.NaN()
	if r.completed > 0 {
		rt = r.rtSum / float64(r.completed)
	}
	r.samples = append(r.samples, WindowSample{
		Start:       r.winStart,
		Concurrency: r.concIntegr / float64(r.window),
		Throughput:  float64(r.completed) / float64(r.window),
		RT:          rt,
		Completions: r.completed,
		Errors:      r.errors,
	})
	r.concIntegr = 0
	r.rtSum = 0
	r.completed = 0
	r.errors = 0
}

// Flush closes windows up to (and not including) the one containing t and
// returns all samples accumulated so far, leaving the recorder ready to
// continue. Callers typically pass the current simulation time.
func (r *Recorder) Flush(t des.Time) []WindowSample {
	r.advance(t)
	out := r.samples
	r.samples = nil
	return out
}

// TimeWeighted tracks a step-function metric (e.g. busy CPU cores) and
// reports its time average per fixed window. Used for the 1 s system-level
// CPU utilization series the scaling controllers consume.
type TimeWeighted struct {
	window des.Time

	value float64
	lastT des.Time

	winStart des.Time
	integral float64

	lastMean    float64
	hasComplete bool

	samples []TWSample
}

// TWSample is one window average of a time-weighted metric.
type TWSample struct {
	Start des.Time
	Mean  float64
}

// NewTimeWeighted returns a meter with the given window length.
func NewTimeWeighted(window des.Time) *TimeWeighted {
	if window <= 0 {
		panic("metrics: non-positive window")
	}
	return &TimeWeighted{window: window}
}

// Set records that the metric takes the given value from time t onward.
func (m *TimeWeighted) Set(t des.Time, value float64) {
	m.advance(t)
	m.value = value
}

// Value returns the current instantaneous value.
func (m *TimeWeighted) Value() float64 { return m.value }

func (m *TimeWeighted) advance(t des.Time) {
	if t < m.lastT {
		panic("metrics: time went backwards in TimeWeighted")
	}
	for t >= m.winStart+m.window {
		boundary := m.winStart + m.window
		m.integral += m.value * float64(boundary-m.lastT)
		mean := m.integral / float64(m.window)
		m.samples = append(m.samples, TWSample{Start: m.winStart, Mean: mean})
		m.lastMean = mean
		m.hasComplete = true
		m.integral = 0
		m.lastT = boundary
		m.winStart = boundary
	}
	m.integral += m.value * float64(t-m.lastT)
	m.lastT = t
}

// Flush closes windows up to t and returns the accumulated samples.
func (m *TimeWeighted) Flush(t des.Time) []TWSample {
	m.advance(t)
	out := m.samples
	m.samples = nil
	return out
}

// WindowMean returns the mean of the current open window up to t — unless
// the window has barely begun (less than half the window length elapsed),
// in which case the previous completed window's mean is returned instead.
// Controllers sample on the same 1 s cadence as the window length, so
// their reads land exactly on boundaries; without the fallback they would
// observe the instantaneous busy flag (0 or 1) rather than a utilization.
func (m *TimeWeighted) WindowMean(t des.Time) float64 {
	m.advance(t)
	elapsed := float64(t - m.winStart)
	if elapsed < float64(m.window)/2 && m.hasComplete {
		return m.lastMean
	}
	if elapsed <= 0 {
		return m.value
	}
	return m.integral / elapsed
}
