package metrics

import (
	"testing"

	"conscale/internal/des"
)

// The Arrive/Depart hot path runs once per request per tier — tens of
// millions of times per 12-minute run — so its steady state (inside a
// window) must not allocate at all.
func TestArriveDepartAllocBudget(t *testing.T) {
	r := NewRecorder(des.Second)
	now := des.Time(0.25) // mid-window: no boundary crossing per op
	r.Arrive(now)
	r.Depart(now, 0.01)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Arrive(now)
		r.Depart(now, 0.01)
	})
	if allocs != 0 {
		t.Fatalf("Arrive/Depart steady state allocates %.1f objects/op, want 0", allocs)
	}
}

// Closing a window appends exactly one WindowSample; across many windows
// the amortized cost must stay at (or below) one small append per window,
// not per request.
func TestWindowCloseAllocBudget(t *testing.T) {
	r := NewRecorder(50 * des.Millisecond)
	t0 := des.Time(0)
	reqPerWindow := 20
	allocs := testing.AllocsPerRun(400, func() {
		for i := 0; i < reqPerWindow; i++ {
			r.Arrive(t0)
			r.Depart(t0, 0.005)
		}
		t0 += 50 * des.Millisecond
	})
	// One sample append per window, amortized below one allocation thanks
	// to slice growth doubling.
	if allocs > 1 {
		t.Fatalf("window close amortizes to %.2f allocs per window, want <= 1", allocs)
	}
}

// BenchmarkRecorderArriveDepart measures the per-request measurement cost
// (one op = one request: Arrive + Depart inside the current window).
func BenchmarkRecorderArriveDepart(b *testing.B) {
	b.ReportAllocs()
	r := NewRecorder(50 * des.Millisecond)
	now := des.Time(0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Arrive(now)
		r.Depart(now, 0.002)
	}
}

// BenchmarkRecorderWindowAdvance measures the window-boundary path: each
// op records one request and crosses into the next 50 ms window, forcing a
// flushWindow append. Flush keeps the sample slice from growing without
// bound.
func BenchmarkRecorderWindowAdvance(b *testing.B) {
	b.ReportAllocs()
	r := NewRecorder(50 * des.Millisecond)
	now := des.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Arrive(now)
		r.Depart(now, 0.002)
		now += 50 * des.Millisecond
		if i%1024 == 1023 {
			r.Flush(now)
		}
	}
}

// BenchmarkTimeWeightedSet measures the 1 s system-metric meter's hot path.
func BenchmarkTimeWeightedSet(b *testing.B) {
	b.ReportAllocs()
	m := NewTimeWeighted(des.Second)
	now := des.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(now, float64(i&1))
		now += des.Millisecond
		if i%4096 == 4095 {
			m.Flush(now)
		}
	}
}
