package metrics

import (
	"math"
	"testing"

	"conscale/internal/des"
)

// Drop exactly on a window boundary belongs to the NEW window: advance()
// closes every window strictly before t, so the closed window keeps the
// request's full concurrency contribution and no error.
func TestRecorderDropAtWindowBoundary(t *testing.T) {
	r := NewRecorder(DefaultWindow)
	r.Arrive(0)
	r.Drop(DefaultWindow) // t = 50 ms, the first boundary
	samples := r.Flush(2 * DefaultWindow)
	if len(samples) != 2 {
		t.Fatalf("got %d windows, want 2", len(samples))
	}
	if samples[0].Errors != 0 {
		t.Fatalf("boundary drop leaked into the closed window: %+v", samples[0])
	}
	if math.Abs(samples[0].Concurrency-1) > 1e-9 {
		t.Fatalf("window 0 concurrency = %v, want 1 (in flight to the boundary)", samples[0].Concurrency)
	}
	if samples[1].Errors != 1 {
		t.Fatalf("drop not counted in the boundary's window: %+v", samples[1])
	}
	// Dropped at the window's first instant: zero concurrency afterwards.
	if samples[1].Concurrency != 0 {
		t.Fatalf("window 1 concurrency = %v, want 0", samples[1].Concurrency)
	}
}

func TestRecorderRejectAtWindowBoundary(t *testing.T) {
	r := NewRecorder(DefaultWindow)
	r.Reject(DefaultWindow)
	samples := r.Flush(2 * DefaultWindow)
	if len(samples) != 2 {
		t.Fatalf("got %d windows, want 2", len(samples))
	}
	if samples[0].Errors != 0 || samples[1].Errors != 1 {
		t.Fatalf("boundary reject windowed wrong: %+v / %+v", samples[0], samples[1])
	}
	// Rejects never enter service: no concurrency anywhere.
	if samples[0].Concurrency != 0 || samples[1].Concurrency != 0 {
		t.Fatal("reject contributed concurrency")
	}
	arrived, completed, errored := r.Totals()
	if arrived != 0 || completed != 0 || errored != 1 {
		t.Fatalf("Totals = %d/%d/%d", arrived, completed, errored)
	}
}

// Drop and Depart one tick before a boundary stay in the closing window —
// the complement of the boundary cases above.
func TestRecorderErrorsJustBeforeBoundary(t *testing.T) {
	eps := des.Millisecond
	r := NewRecorder(DefaultWindow)
	r.Arrive(0)
	r.Arrive(0)
	r.Drop(DefaultWindow - eps)
	r.Reject(DefaultWindow - eps)
	r.Depart(DefaultWindow-eps, 0.049)
	samples := r.Flush(2 * DefaultWindow)
	if samples[0].Errors != 2 || samples[0].Completions != 1 {
		t.Fatalf("window 0 = %+v, want 2 errors 1 completion", samples[0])
	}
	if samples[1].Errors != 0 || samples[1].Completions != 0 {
		t.Fatalf("window 1 not empty: %+v", samples[1])
	}
}

// Retention pruning is driven by each server's own latest sample, so an
// idle server's history survives while a busy one's is trimmed.
func TestWarehouseRetentionIsPerServer(t *testing.T) {
	w := NewWarehouse(5 * des.Second)
	w.PutFine("idle", []WindowSample{{Start: 0}, {Start: 1}})
	for i := 0; i < 20; i++ {
		w.PutFine("busy", []WindowSample{{Start: des.Time(i)}})
	}
	if got := w.FineSince("idle", 0); len(got) != 2 {
		t.Fatalf("idle server pruned by busy server's clock: %d samples", len(got))
	}
	busy := w.FineSince("busy", 0)
	if len(busy) == 20 {
		t.Fatal("busy server not pruned")
	}
	for _, s := range busy {
		if s.Start < 19-5 {
			t.Fatalf("sample at %v survived a 5 s retention ending at 19", s.Start)
		}
	}
}

// Forget then repopulate: the name reappears with only fresh samples, and
// retention keeps working against the new series — the VM-recycled-name
// scenario (scale-in forgets, a later scale-out reuses the slot).
func TestWarehouseForgetThenRepopulate(t *testing.T) {
	w := NewWarehouse(5 * des.Second)
	w.PutFine("tomcat2", []WindowSample{{Start: 1, Completions: 111}})
	w.PutCPU("tomcat2", []TWSample{{Start: 1, Mean: 0.9}})
	w.PutFine("tomcat3", []WindowSample{{Start: 1}})
	w.Forget("tomcat2")

	if names := w.Servers(); len(names) != 1 || names[0] != "tomcat3" {
		t.Fatalf("Servers after Forget = %v", names)
	}
	if _, ok := w.MeanCPU("tomcat2", 0); ok {
		t.Fatal("forgotten CPU series still served")
	}

	w.PutFine("tomcat2", []WindowSample{{Start: 100, Completions: 7}})
	got := w.FineSince("tomcat2", 0)
	if len(got) != 1 || got[0].Completions != 7 {
		t.Fatalf("repopulated series polluted by pre-Forget data: %+v", got)
	}
	// The sibling server was untouched throughout.
	if len(w.FineSince("tomcat3", 0)) != 1 {
		t.Fatal("Forget removed another server's data")
	}

	// Retention continues against the fresh series.
	w.PutFine("tomcat2", []WindowSample{{Start: 200}})
	got = w.FineSince("tomcat2", 0)
	if len(got) != 1 || got[0].Start != 200 {
		t.Fatalf("retention broken after repopulate: %+v", got)
	}
}

// Samples exactly at the retention cut (Start == now-retention) survive;
// one tick older is pruned.
func TestWarehouseRetentionCutIsInclusive(t *testing.T) {
	w := NewWarehouse(5 * des.Second)
	w.PutFine("s", []WindowSample{{Start: 4}, {Start: 5}, {Start: 6}, {Start: 10}})
	got := w.FineSince("s", 0)
	if len(got) != 3 || got[0].Start != 5 {
		t.Fatalf("cut at 10-5=5 kept %+v, want Starts 5,6,10", got)
	}
}
