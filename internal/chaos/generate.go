package chaos

import (
	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/rng"
)

// RandomCrashes generates a Poisson process of VM crashes over the run:
// exponential gaps with mean 60/perMinute seconds, each crash hitting a
// uniformly drawn tier from tiers and a random ready VM within it. The
// schedule is fully determined by the seed, so it composes with any trace.
func RandomCrashes(seed uint64, perMinute float64, duration des.Time, tiers ...cluster.Tier) *Schedule {
	s := NewSchedule()
	if perMinute <= 0 || duration <= 0 || len(tiers) == 0 {
		return s
	}
	rnd := rng.New(seed)
	mean := 60 / perMinute
	at := des.Time(rnd.Exp(mean))
	for at < duration {
		tier := tiers[rnd.Intn(len(tiers))]
		s.Add(Crash(at, tier, PickRandom))
		at += des.Time(rnd.Exp(mean))
	}
	return s
}

// InterferenceBursts generates n noisy-neighbor windows at uniform random
// start times over the run, each lasting an exponential draw with mean
// meanLen and slowing one random VM of the tier by slowdown.
func InterferenceBursts(seed uint64, n int, duration, meanLen des.Time, tier cluster.Tier, slowdown float64) *Schedule {
	s := NewSchedule()
	if n <= 0 || duration <= 0 {
		return s
	}
	rnd := rng.New(seed)
	for i := 0; i < n; i++ {
		at := des.Time(rnd.Float64()) * duration
		length := des.Time(rnd.Exp(float64(meanLen)))
		s.Add(Interference(at, length, tier, PickRandom, slowdown))
	}
	return s
}

// JitterBursts generates n network-delay windows on the RPC edge into
// tier, at uniform random start times, each lasting an exponential draw
// with mean meanLen and adding delay per call.
func JitterBursts(seed uint64, n int, duration, meanLen des.Time, tier cluster.Tier, delay des.Time) *Schedule {
	s := NewSchedule()
	if n <= 0 || duration <= 0 {
		return s
	}
	rnd := rng.New(seed)
	for i := 0; i < n; i++ {
		at := des.Time(rnd.Float64()) * duration
		length := des.Time(rnd.Exp(float64(meanLen)))
		s.Add(Jitter(at, length, tier, delay))
	}
	return s
}

// Config parameterizes a composite fault scenario for Generate: every
// enabled component contributes its events to one merged schedule. Zero
// values disable a component, so the zero Config generates an empty
// schedule.
type Config struct {
	// Duration bounds all generated events.
	Duration des.Time

	// CrashesPerMinute drives a Poisson crash process over CrashTiers.
	CrashesPerMinute float64
	CrashTiers       []cluster.Tier

	// InterferenceBursts noisy-neighbor windows on InterferenceTier, mean
	// length InterferenceMeanLen, slowing a random VM by
	// InterferenceSlowdown.
	InterferenceBursts   int
	InterferenceMeanLen  des.Time
	InterferenceSlowdown float64
	InterferenceTier     cluster.Tier

	// JitterBursts delay windows on the edge into JitterTier, mean length
	// JitterMeanLen, adding JitterDelay per call.
	JitterBursts  int
	JitterMeanLen des.Time
	JitterDelay   des.Time
	JitterTier    cluster.Tier

	// SlowBootFactor > 1 stretches every VM boot for the whole run.
	SlowBootFactor float64
}

// Generate builds the merged schedule for the scenario. Each component
// draws from its own split of the seed, so enabling one never perturbs
// another's event times.
func Generate(seed uint64, cfg Config) *Schedule {
	root := rng.New(seed)
	crashSeed := root.Split().Uint64()
	interfSeed := root.Split().Uint64()
	jitterSeed := root.Split().Uint64()

	s := NewSchedule()
	s.Merge(RandomCrashes(crashSeed, cfg.CrashesPerMinute, cfg.Duration, cfg.CrashTiers...))
	s.Merge(InterferenceBursts(interfSeed, cfg.InterferenceBursts, cfg.Duration, cfg.InterferenceMeanLen, cfg.InterferenceTier, cfg.InterferenceSlowdown))
	s.Merge(JitterBursts(jitterSeed, cfg.JitterBursts, cfg.Duration, cfg.JitterMeanLen, cfg.JitterTier, cfg.JitterDelay))
	if cfg.SlowBootFactor > 1 && cfg.Duration > 0 {
		s.Add(Stragglers(0, cfg.Duration, cfg.SlowBootFactor))
	}
	return s
}
