// Package chaos injects cloud faults into the simulated n-tier system:
// VM crashes, noisy-neighbor CPU interference, inter-tier network jitter,
// and slow-booting stragglers. The paper's premise is that clouds cause
// large response-time fluctuations; bursty traffic is only one source.
// This package supplies the others, so the scaling frameworks can be
// evaluated under the conditions where offline knowledge goes stale and
// online adaption has to earn its keep.
//
// Everything is deterministic: a Schedule is a plain list of typed fault
// events, and an Injector arms it on the DES engine with its own seeded
// random stream. The same (seed, schedule) always produces the same fault
// timeline, and an empty schedule consumes no randomness and schedules no
// events, so a run with an empty schedule is bit-identical to a run with
// no injector at all.
package chaos

import (
	"fmt"
	"sort"
	"strings"

	"conscale/internal/cluster"
	"conscale/internal/des"
	"conscale/internal/rng"
	"conscale/internal/trace"
)

// Kind enumerates the fault types.
type Kind int

// The fault types.
const (
	// VMCrash abruptly terminates a VM (server.Kill semantics: queued and
	// in-flight requests fail, the balancer stops routing immediately).
	VMCrash Kind = iota
	// CPUInterference multiplies the CPU-burst durations of the targeted
	// VMs for the window — co-located tenants stealing host cycles.
	CPUInterference
	// NetDelay adds latency to the RPC edge into a tier for the window.
	NetDelay
	// SlowBoot multiplies the VM preparation period for boots started
	// inside the window — stragglers from a congested image store.
	SlowBoot
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case VMCrash:
		return "vm-crash"
	case CPUInterference:
		return "cpu-interference"
	case NetDelay:
		return "net-delay"
	case SlowBoot:
		return "slow-boot"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Target selectors for Fault.Index.
const (
	// PickRandom draws the target VM uniformly from the tier's ready set
	// at activation time, using the injector's own random stream.
	PickRandom = -1
	// WholeTier targets every ready VM of the tier.
	WholeTier = -2
)

// Fault is one scheduled fault event. At is when it activates; Duration
// is how long windowed faults (interference, delay, slow boot) stay in
// effect — a crash is instantaneous and ignores it.
type Fault struct {
	Kind     Kind
	At       des.Time
	Duration des.Time

	// Tier is the targeted tier (crash, interference: the tier whose VMs
	// are hit; delay: the RPC edge *into* this tier). SlowBoot is global.
	Tier cluster.Tier

	// Index selects the VM within the tier for crash/interference faults:
	// a 0-based position in boot order, or PickRandom / WholeTier.
	Index int

	// Factor is the multiplier for CPUInterference (burst durations) and
	// SlowBoot (preparation period).
	Factor float64

	// Delay is the added per-call latency for NetDelay.
	Delay des.Time
}

// Crash returns a VM-crash fault.
func Crash(at des.Time, tier cluster.Tier, index int) Fault {
	return Fault{Kind: VMCrash, At: at, Tier: tier, Index: index}
}

// Interference returns a noisy-neighbor window: the targeted VMs' CPU
// bursts take slowdown times their nominal duration for dur.
func Interference(at, dur des.Time, tier cluster.Tier, index int, slowdown float64) Fault {
	return Fault{Kind: CPUInterference, At: at, Duration: dur, Tier: tier, Index: index, Factor: slowdown}
}

// Jitter returns a network-delay window on the RPC edge into tier.
func Jitter(at, dur des.Time, tier cluster.Tier, delay des.Time) Fault {
	return Fault{Kind: NetDelay, At: at, Duration: dur, Tier: tier, Delay: delay}
}

// Stragglers returns a slow-boot window: VM boots started inside it take
// factor times the nominal preparation period.
func Stragglers(at, dur des.Time, factor float64) Fault {
	return Fault{Kind: SlowBoot, At: at, Duration: dur, Factor: factor}
}

// Schedule is an ordered collection of fault events. The zero value is an
// empty schedule; arming it is a no-op.
type Schedule struct {
	faults []Fault
}

// NewSchedule builds a schedule from the given faults.
func NewSchedule(faults ...Fault) *Schedule {
	s := &Schedule{}
	s.Add(faults...)
	return s
}

// Add appends faults to the schedule.
func (s *Schedule) Add(faults ...Fault) { s.faults = append(s.faults, faults...) }

// Merge appends every fault of other (composing scenarios).
func (s *Schedule) Merge(other *Schedule) {
	if other != nil {
		s.faults = append(s.faults, other.faults...)
	}
}

// Len returns the number of scheduled faults.
func (s *Schedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.faults)
}

// Faults returns the events sorted by activation time (stable, so equal
// times keep insertion order).
func (s *Schedule) Faults() []Fault {
	if s == nil {
		return nil
	}
	out := make([]Fault, len(s.faults))
	copy(out, s.faults)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Window records one activated fault for timeline overlays: when it was
// in effect and what it actually hit (resolved at activation time, after
// random draws).
type Window struct {
	Fault  Fault
	Start  des.Time
	End    des.Time
	Target string
}

// Overlaps reports whether the fault window intersects the half-open
// interval [start, end). Instantaneous windows (crashes, Start == End)
// count as overlapping when their instant falls inside the interval —
// the crash's effect outlives its zero-length window, which is the
// forensics layer's business to model with a lag.
func (w Window) Overlaps(start, end des.Time) bool {
	if w.Start == w.End {
		return w.Start >= start && w.Start < end
	}
	return w.Start < end && w.End > start
}

// String renders the window for logs and tables.
func (w Window) String() string {
	switch w.Fault.Kind {
	case VMCrash:
		return fmt.Sprintf("[%6.1fs] crash %s", float64(w.Start), w.Target)
	case CPUInterference:
		return fmt.Sprintf("[%6.1f-%.1fs] interference x%.1f on %s", float64(w.Start), float64(w.End), w.Fault.Factor, w.Target)
	case NetDelay:
		return fmt.Sprintf("[%6.1f-%.1fs] +%.0fms on edge ->%s", float64(w.Start), float64(w.End), float64(w.Fault.Delay)*1000, w.Fault.Tier)
	case SlowBoot:
		return fmt.Sprintf("[%6.1f-%.1fs] boots x%.1f slower", float64(w.Start), float64(w.End), w.Fault.Factor)
	default:
		return fmt.Sprintf("[%6.1fs] %s", float64(w.Start), w.Fault.Kind)
	}
}

// Injector arms a schedule on a cluster's DES engine. It owns a dedicated
// random stream so target draws are reproducible and independent of the
// cluster's own randomness.
type Injector struct {
	c     *cluster.Cluster
	sched *Schedule
	rnd   *rng.Source

	windows    []Window
	onActivate func(Window)
	audit      *trace.Audit
}

// NewInjector couples a schedule to a cluster. seed feeds the injector's
// private random stream (used only for PickRandom draws).
func NewInjector(c *cluster.Cluster, sched *Schedule, seed uint64) *Injector {
	return &Injector{c: c, sched: sched, rnd: rng.New(seed)}
}

// OnActivate registers a callback fired at each fault activation (after
// the fault takes effect), for live overlays and logging.
func (in *Injector) OnActivate(fn func(Window)) { in.onActivate = fn }

// SetAudit mirrors every fault activation into a controller audit trail,
// so scaling decisions can be read against the disturbances that provoked
// them (nil detaches).
func (in *Injector) SetAudit(a *trace.Audit) { in.audit = a }

// Windows returns the faults activated so far, with resolved targets, in
// activation order.
func (in *Injector) Windows() []Window {
	out := make([]Window, len(in.windows))
	copy(out, in.windows)
	return out
}

// Arm schedules every fault on the engine. Call once, before the run
// starts (faults must not be in the past). An empty schedule schedules
// nothing.
func (in *Injector) Arm() {
	for _, f := range in.sched.Faults() {
		f := f
		in.c.Eng.At(f.At, func() { in.activate(f) })
	}
}

// activate applies one fault at its scheduled time.
func (in *Injector) activate(f Fault) {
	switch f.Kind {
	case VMCrash:
		in.crash(f)
	case CPUInterference:
		in.interfere(f)
	case NetDelay:
		in.delay(f)
	case SlowBoot:
		in.slowBoot(f)
	default:
		panic(fmt.Sprintf("chaos: unknown fault kind %d", int(f.Kind)))
	}
}

// record stores the window and notifies the activation callback.
func (in *Injector) record(w Window) {
	in.windows = append(in.windows, w)
	in.audit.Record(trace.AuditEvent{
		Time:   w.Start,
		Kind:   trace.AuditFault,
		Tier:   w.Fault.Tier.String(),
		Cause:  w.Fault.Kind.String(),
		Detail: w.Target,
		Value:  float64(w.End - w.Start),
	})
	if in.onActivate != nil {
		in.onActivate(w)
	}
}

func (in *Injector) crash(f Fault) {
	var killed []string
	switch f.Index {
	case WholeTier:
		for {
			name := in.c.KillVMIndex(f.Tier, 0)
			if name == "" {
				break
			}
			killed = append(killed, name)
		}
	case PickRandom:
		if n := len(in.c.ReadyServers(f.Tier)); n > 0 {
			if name := in.c.KillVMIndex(f.Tier, in.rnd.Intn(n)); name != "" {
				killed = append(killed, name)
			}
		}
	default:
		if name := in.c.KillVMIndex(f.Tier, f.Index); name != "" {
			killed = append(killed, name)
		}
	}
	if len(killed) == 0 {
		return // nothing to hit: no window
	}
	now := in.c.Eng.Now()
	in.record(Window{Fault: f, Start: now, End: now, Target: strings.Join(killed, ",")})
}

func (in *Injector) interfere(f Fault) {
	ready := in.c.ReadyServers(f.Tier)
	targets := ready
	switch {
	case f.Index == PickRandom:
		if len(ready) == 0 {
			return
		}
		i := in.rnd.Intn(len(ready))
		targets = ready[i : i+1]
	case f.Index >= 0:
		if f.Index >= len(ready) {
			return
		}
		targets = ready[f.Index : f.Index+1]
	}
	if len(targets) == 0 {
		return
	}
	names := make([]string, len(targets))
	for i, srv := range targets {
		srv := srv
		names[i] = srv.Name()
		srv.SetCPUSlowdown(srv.CPUSlowdown() * f.Factor)
		// Restore multiplicatively so overlapping windows compose; a
		// killed server's factor is inert, so restoring it is harmless.
		in.c.Eng.After(f.Duration, func() { srv.SetCPUSlowdown(srv.CPUSlowdown() / f.Factor) })
	}
	now := in.c.Eng.Now()
	in.record(Window{Fault: f, Start: now, End: now + f.Duration, Target: strings.Join(names, ",")})
}

func (in *Injector) delay(f Fault) {
	// Additive set/clear so overlapping windows on the same edge compose.
	in.c.SetNetDelay(f.Tier, in.c.NetDelay(f.Tier)+f.Delay)
	in.c.Eng.After(f.Duration, func() {
		in.c.SetNetDelay(f.Tier, in.c.NetDelay(f.Tier)-f.Delay)
	})
	now := in.c.Eng.Now()
	in.record(Window{Fault: f, Start: now, End: now + f.Duration, Target: "edge->" + f.Tier.String()})
}

func (in *Injector) slowBoot(f Fault) {
	in.c.SetBootFactor(in.c.BootFactor() * f.Factor)
	in.c.Eng.After(f.Duration, func() {
		in.c.SetBootFactor(in.c.BootFactor() / f.Factor)
	})
	now := in.c.Eng.Now()
	in.record(Window{Fault: f, Start: now, End: now + f.Duration, Target: "vm-boot"})
}
