package chaos

import (
	"math"
	"strings"
	"testing"

	"conscale/internal/cluster"
	"conscale/internal/des"
)

func testCluster(seed uint64) *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Seed = seed
	cfg.App = 3
	cfg.DB = 2
	cfg.PrepDelay = 2 * des.Second
	return cluster.New(cfg)
}

func TestScheduleSortsByTime(t *testing.T) {
	s := NewSchedule(
		Crash(30, cluster.DB, 0),
		Jitter(10, 5, cluster.App, 20*des.Millisecond),
		Stragglers(20, 40, 3),
	)
	faults := s.Faults()
	if len(faults) != 3 {
		t.Fatalf("Len = %d", len(faults))
	}
	if faults[0].Kind != NetDelay || faults[1].Kind != SlowBoot || faults[2].Kind != VMCrash {
		t.Fatalf("order = %v %v %v", faults[0].Kind, faults[1].Kind, faults[2].Kind)
	}
}

func TestEmptyScheduleArmsNothing(t *testing.T) {
	c := testCluster(1)
	pending := c.Eng.Pending()
	in := NewInjector(c, NewSchedule(), 42)
	in.Arm()
	if c.Eng.Pending() != pending {
		t.Fatal("empty schedule scheduled events")
	}
	if len(in.Windows()) != 0 {
		t.Fatal("empty schedule produced windows")
	}
}

func TestCrashFaultKillsTargetVM(t *testing.T) {
	c := testCluster(1)
	in := NewInjector(c, NewSchedule(Crash(5, cluster.App, 1)), 42)
	in.Arm()
	c.Eng.RunUntil(10)
	if got := c.ReadyCount(cluster.App); got != 2 {
		t.Fatalf("ReadyCount(App) = %d after crash", got)
	}
	ws := in.Windows()
	if len(ws) != 1 || ws[0].Target != "tomcat2" {
		t.Fatalf("windows = %v", ws)
	}
	if ws[0].Start != 5 || ws[0].End != 5 {
		t.Fatalf("crash window [%v, %v], want instantaneous at 5", ws[0].Start, ws[0].End)
	}
}

func TestCrashWholeTier(t *testing.T) {
	c := testCluster(1)
	in := NewInjector(c, NewSchedule(Crash(5, cluster.DB, WholeTier)), 42)
	in.Arm()
	c.Eng.RunUntil(10)
	if got := c.ReadyCount(cluster.DB); got != 0 {
		t.Fatalf("ReadyCount(DB) = %d after whole-tier crash", got)
	}
	ws := in.Windows()
	if len(ws) != 1 || ws[0].Target != "mysql1,mysql2" {
		t.Fatalf("windows = %v", ws)
	}
}

func TestCrashRandomIsSeedDeterministic(t *testing.T) {
	target := func(seed uint64) string {
		c := testCluster(1)
		in := NewInjector(c, NewSchedule(Crash(5, cluster.App, PickRandom)), seed)
		in.Arm()
		c.Eng.RunUntil(10)
		return in.Windows()[0].Target
	}
	if target(7) != target(7) {
		t.Fatal("same seed picked different targets")
	}
	// Distinct seeds should disagree for at least one of a few tries.
	same := true
	for seed := uint64(0); seed < 8; seed++ {
		if target(seed) != target(1000+seed) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("random target ignores seed")
	}
}

func TestCrashEmptyTierRecordsNoWindow(t *testing.T) {
	c := testCluster(1)
	in := NewInjector(c, NewSchedule(
		Crash(5, cluster.DB, WholeTier),
		Crash(6, cluster.DB, PickRandom),
	), 42)
	in.Arm()
	c.Eng.RunUntil(10)
	if got := len(in.Windows()); got != 1 {
		t.Fatalf("windows = %d, want 1 (second crash found nothing)", got)
	}
}

func TestInterferenceAppliesAndRestores(t *testing.T) {
	c := testCluster(1)
	in := NewInjector(c, NewSchedule(Interference(5, 10, cluster.App, 0, 2.5)), 42)
	in.Arm()
	srv := c.ReadyServers(cluster.App)[0]
	c.Eng.RunUntil(6)
	if got := srv.CPUSlowdown(); got != 2.5 {
		t.Fatalf("slowdown during window = %v", got)
	}
	c.Eng.RunUntil(20)
	if got := srv.CPUSlowdown(); got != 1 {
		t.Fatalf("slowdown after window = %v", got)
	}
}

func TestOverlappingInterferenceComposes(t *testing.T) {
	c := testCluster(1)
	in := NewInjector(c, NewSchedule(
		Interference(5, 20, cluster.App, 0, 2),
		Interference(10, 5, cluster.App, 0, 3),
	), 42)
	in.Arm()
	srv := c.ReadyServers(cluster.App)[0]
	c.Eng.RunUntil(12)
	if got := srv.CPUSlowdown(); got != 6 {
		t.Fatalf("overlapped slowdown = %v, want 6", got)
	}
	c.Eng.RunUntil(18)
	if got := srv.CPUSlowdown(); got != 2 {
		t.Fatalf("slowdown after inner window = %v, want 2", got)
	}
	c.Eng.RunUntil(30)
	if got := srv.CPUSlowdown(); got != 1 {
		t.Fatalf("slowdown after both windows = %v, want 1", got)
	}
}

func TestNetDelayWindowsCompose(t *testing.T) {
	c := testCluster(1)
	in := NewInjector(c, NewSchedule(
		Jitter(5, 20, cluster.DB, 40*des.Millisecond),
		Jitter(10, 5, cluster.DB, 60*des.Millisecond),
	), 42)
	in.Arm()
	near := func(got, want des.Time) bool {
		return math.Abs(float64(got-want)) < 1e-9
	}
	c.Eng.RunUntil(12)
	if got := c.NetDelay(cluster.DB); !near(got, 100*des.Millisecond) {
		t.Fatalf("overlapped delay = %v, want 100ms", got)
	}
	c.Eng.RunUntil(18)
	if got := c.NetDelay(cluster.DB); !near(got, 40*des.Millisecond) {
		t.Fatalf("delay after inner window = %v, want 40ms", got)
	}
	c.Eng.RunUntil(30)
	if got := c.NetDelay(cluster.DB); !near(got, 0) {
		t.Fatalf("delay after both windows = %v, want 0", got)
	}
}

func TestSlowBootWindow(t *testing.T) {
	c := testCluster(1)
	in := NewInjector(c, NewSchedule(Stragglers(5, 10, 4)), 42)
	in.Arm()
	c.Eng.RunUntil(6)
	if got := c.BootFactor(); got != 4 {
		t.Fatalf("boot factor in window = %v", got)
	}
	c.Eng.RunUntil(20)
	if got := c.BootFactor(); got != 1 {
		t.Fatalf("boot factor after window = %v", got)
	}
}

func TestOnActivateCallback(t *testing.T) {
	c := testCluster(1)
	in := NewInjector(c, NewSchedule(
		Crash(5, cluster.App, 0),
		Jitter(8, 4, cluster.DB, 10*des.Millisecond),
	), 42)
	var seen []Window
	in.OnActivate(func(w Window) { seen = append(seen, w) })
	in.Arm()
	c.Eng.RunUntil(20)
	if len(seen) != 2 {
		t.Fatalf("callback fired %d times", len(seen))
	}
	if seen[0].Fault.Kind != VMCrash || seen[1].Fault.Kind != NetDelay {
		t.Fatalf("callback order wrong: %v, %v", seen[0].Fault.Kind, seen[1].Fault.Kind)
	}
}

func TestWindowString(t *testing.T) {
	cases := []struct {
		w    Window
		want string
	}{
		{Window{Fault: Crash(5, cluster.DB, 0), Start: 5, End: 5, Target: "mysql1"}, "crash mysql1"},
		{Window{Fault: Interference(5, 10, cluster.App, 0, 2.5), Start: 5, End: 15, Target: "tomcat1"}, "interference x2.5 on tomcat1"},
		{Window{Fault: Jitter(5, 10, cluster.DB, 80*des.Millisecond), Start: 5, End: 15}, "+80ms on edge ->mysql"},
		{Window{Fault: Stragglers(0, 100, 6), Start: 0, End: 100}, "boots x6.0 slower"},
	}
	for _, tc := range cases {
		if got := tc.w.String(); !strings.Contains(got, tc.want) {
			t.Errorf("String() = %q, want containing %q", got, tc.want)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		VMCrash: "vm-crash", CPUInterference: "cpu-interference",
		NetDelay: "net-delay", SlowBoot: "slow-boot",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should format")
	}
}

func TestRandomCrashesGenerator(t *testing.T) {
	dur := 600 * des.Second
	s := RandomCrashes(3, 1, dur, cluster.App, cluster.DB)
	if s.Len() == 0 {
		t.Fatal("no crashes generated at 1/min over 10 min")
	}
	for _, f := range s.Faults() {
		if f.Kind != VMCrash || f.At < 0 || f.At >= dur {
			t.Fatalf("bad fault %+v", f)
		}
		if f.Tier != cluster.App && f.Tier != cluster.DB {
			t.Fatalf("crash on unexpected tier %v", f.Tier)
		}
	}
	// Deterministic in the seed.
	again := RandomCrashes(3, 1, dur, cluster.App, cluster.DB)
	if s.Len() != again.Len() {
		t.Fatal("same seed generated different schedules")
	}
	if RandomCrashes(3, 0, dur, cluster.App).Len() != 0 {
		t.Fatal("zero rate generated crashes")
	}
}

func TestInterferenceBurstsGenerator(t *testing.T) {
	dur := 600 * des.Second
	s := InterferenceBursts(3, 5, dur, 30*des.Second, cluster.App, 2)
	if s.Len() != 5 {
		t.Fatalf("bursts = %d, want 5", s.Len())
	}
	for _, f := range s.Faults() {
		if f.Kind != CPUInterference || f.At < 0 || f.At >= dur || f.Factor != 2 {
			t.Fatalf("bad burst %+v", f)
		}
	}
}

func TestGenerateComposesComponents(t *testing.T) {
	cfg := Config{
		Duration:             600 * des.Second,
		CrashesPerMinute:     0.5,
		CrashTiers:           []cluster.Tier{cluster.App},
		InterferenceBursts:   3,
		InterferenceMeanLen:  30 * des.Second,
		InterferenceSlowdown: 2,
		InterferenceTier:     cluster.App,
		JitterBursts:         2,
		JitterMeanLen:        20 * des.Second,
		JitterDelay:          50 * des.Millisecond,
		JitterTier:           cluster.DB,
		SlowBootFactor:       4,
	}
	s := Generate(9, cfg)
	counts := map[Kind]int{}
	for _, f := range s.Faults() {
		counts[f.Kind]++
	}
	if counts[CPUInterference] != 3 || counts[NetDelay] != 2 || counts[SlowBoot] != 1 {
		t.Fatalf("component counts = %v", counts)
	}
	if counts[VMCrash] == 0 {
		t.Fatal("no crashes generated")
	}
	if Generate(9, Config{}).Len() != 0 {
		t.Fatal("zero config generated faults")
	}
}
