package chaos

import "conscale/internal/telemetry"

// ActiveFaults returns how many activated fault windows cover the current
// simulated instant (crashes are instantaneous and never count as active).
func (in *Injector) ActiveFaults() int {
	now := in.c.Eng.Now()
	n := 0
	for _, w := range in.windows {
		if w.Start <= now && now < w.End {
			n++
		}
	}
	return n
}

// RegisterTelemetry publishes the injector's disturbance state: the count
// of currently active fault windows and the cumulative activations by fault
// kind. Both are read at scrape time from state the injector already keeps.
func (in *Injector) RegisterTelemetry(reg *telemetry.Registry) {
	if in == nil || reg == nil {
		return
	}
	reg.GaugeFunc("conscale_chaos_active_faults",
		"Fault windows covering the current instant.",
		func() float64 { return float64(in.ActiveFaults()) })
	reg.Collect("conscale_chaos_activations_total", "Fault activations by kind.",
		telemetry.KindCounter, func(emit func(float64, ...string)) {
			var byKind [4]int
			for _, w := range in.windows {
				if int(w.Fault.Kind) < len(byKind) {
					byKind[w.Fault.Kind]++
				}
			}
			for k, n := range byKind {
				emit(float64(n), "kind", Kind(k).String())
			}
		})
}
