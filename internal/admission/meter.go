package admission

import "conscale/internal/des"

// Meter folds per-class shed rates over fixed sim-time windows and
// hands each closed window's rate (shed/offered) to a callback —
// typically a telemetry histogram's Observe — so Prometheus scrapes
// see a *distribution* of drop rates rather than a single running
// ratio. The fold happens lazily on the request path itself: no
// scheduled events, so an armed meter cannot perturb the trajectory,
// and the disabled (nil) meter costs one comparison.
type Meter struct {
	window    des.Time
	onRate    func(class Class, rate float64)
	windowEnd des.Time
	offered   [NumClasses]uint32
	shed      [NumClasses]uint32
}

// NewMeter builds a meter flushing every window (default 5 s) into
// onRate. A nil onRate disables flushing but keeps the counts.
func NewMeter(window des.Time, onRate func(class Class, rate float64)) *Meter {
	if window <= 0 {
		window = 5 * des.Second
	}
	return &Meter{window: window, onRate: onRate}
}

// Observe records one admission decision. Nil-safe: a nil meter is a
// no-op.
func (m *Meter) Observe(now des.Time, class Class, shed bool) {
	if m == nil {
		return
	}
	if now >= m.windowEnd {
		m.flush()
		// Align the window edge to the grid so idle stretches don't
		// smear window boundaries across runs.
		m.windowEnd = (des.Time(int64(now/m.window)) + 1) * m.window
	}
	m.offered[class]++
	if shed {
		m.shed[class]++
	}
}

// Flush closes the current window early (end of run).
func (m *Meter) Flush() {
	if m == nil {
		return
	}
	m.flush()
}

func (m *Meter) flush() {
	for c := range m.offered {
		if m.offered[c] == 0 {
			continue
		}
		if m.onRate != nil {
			m.onRate(Class(c), float64(m.shed[c])/float64(m.offered[c]))
		}
		m.offered[c], m.shed[c] = 0, 0
	}
}
