// Package admission implements pluggable per-server admission control:
// the decision, taken at accept-queue entry before pool admit, of
// whether to serve a request or shed it immediately.
//
// Scaling reacts to overload in tens of seconds (boot a VM, widen a
// pool); admission reacts in microseconds by refusing the work that
// would otherwise sit in a queue blowing the tail. The two are
// orthogonal levers on the same p99-vs-goodput frontier: every shed
// buys queue headroom at the price of one failed request. The
// `-run frontier` experiment measures exactly that trade across
// policies × controllers × traces.
//
// Four policies ship:
//
//   - always: admit everything — the byte-identical baseline. A server
//     with this policy (or with no policy at all) executes exactly the
//     pre-admission request path.
//   - queue-cap: admit while the accept queue is shorter than a fixed
//     cap. The earliest and simplest form of load shedding: bound the
//     worst-case queueing delay by bounding the queue.
//   - codel: CoDel-style deadline dropping adapted to the sim's accept
//     queue. Sojourn time is observed at dequeue; when it stays above
//     Target for a full Interval the policy enters a dropping state and
//     sheds arrivals at the classic interval-shrink cadence
//     (Interval/sqrt(count)) until a dequeue sees sojourn below Target.
//   - priority: two-class shedding mapped from the 24 RUBBoS servlet
//     interactions — browse-class (read-only) requests shed at a low
//     queue threshold, read-write requests only at the full cap, so
//     the revenue-bearing class keeps its queue headroom longest.
//
// Invariants every policy must uphold (DESIGN.md §17):
//
//   - Determinism: Admit and ObserveDequeue are pure state machines
//     over (now, class, queueLen, sojourn). No randomness, no wall
//     clock, no scheduled callbacks — the same request stream produces
//     the same shed set on every run.
//   - Zero allocations: both methods sit on the per-request hot path
//     and must not allocate (pinned by TestPolicyZeroAlloc and the
//     benchreport admission microbenches).
//   - Nil is off: a server with a nil Policy takes the untouched
//     pre-admission code path; "always" must be observationally
//     identical to nil.
package admission

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"conscale/internal/des"
)

// Class is the admission class of a request, mapped from the RUBBoS
// servlet mix: read-only browse interactions are sheddable before the
// read-write ones that carry state changes.
type Class uint8

const (
	// ClassBrowse marks read-only interactions (BrowseCategories,
	// SearchItemsInCategory, ViewItem, ...) — shed first.
	ClassBrowse Class = iota
	// ClassReadWrite marks state-changing interactions (StoreBuyNow,
	// StoreComment, RegisterUser, ...) — shed last.
	ClassReadWrite
	// NumClasses sizes per-class arrays.
	NumClasses = iota
)

// String names the class for labels and reports.
func (c Class) String() string {
	switch c {
	case ClassBrowse:
		return "browse"
	case ClassReadWrite:
		return "read-write"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Policy is the admission decision contract. One instance guards one
// server's accept queue (policies are stateful), created from a Config
// via New.
//
// Admit is consulted at accept-queue entry, before the request is
// appended: queueLen is the current queue length and class the
// request's admission class. Returning false sheds the request — it
// fails immediately without consuming any server resource.
//
// ObserveDequeue is the feedback path: called when a queued request is
// admitted to the thread pool, with the sojourn time it spent in the
// accept queue. Policies that track queueing delay (CoDel) build their
// state here; others ignore it.
type Policy interface {
	// Name returns the registry name of the policy family.
	Name() string
	// Admit decides, at accept-queue entry, whether to serve the request.
	Admit(now des.Time, class Class, queueLen int) bool
	// ObserveDequeue feeds back the accept-queue sojourn of an admitted
	// request at the moment it leaves the queue for the thread pool.
	ObserveDequeue(now des.Time, sojourn des.Time)
}

// Config selects and parameterises a policy. The zero value of every
// field means "use the default"; New validates the result.
type Config struct {
	// Policy is the family name: "always", "queue-cap", "codel" or
	// "priority" (empty means "always").
	Policy string
	// QueueCap is the accept-queue length above which queue-cap and
	// priority shed (default 250).
	QueueCap int
	// BrowseCap is the lower threshold at which priority sheds
	// browse-class requests (default QueueCap/4, minimum 1).
	BrowseCap int
	// Target is CoDel's acceptable accept-queue sojourn (default 100 ms).
	Target des.Time
	// Interval is CoDel's initial drop-spacing interval — sojourn must
	// exceed Target for a full Interval before dropping starts
	// (default 1 s).
	Interval des.Time
}

// withDefaults fills zero fields with the package defaults.
func (cfg Config) withDefaults() Config {
	if cfg.Policy == "" {
		cfg.Policy = Always
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 250
	}
	if cfg.BrowseCap <= 0 {
		cfg.BrowseCap = cfg.QueueCap / 4
		if cfg.BrowseCap < 1 {
			cfg.BrowseCap = 1
		}
	}
	if cfg.Target <= 0 {
		cfg.Target = 100 * des.Millisecond
	}
	if cfg.Interval <= 0 {
		cfg.Interval = des.Second
	}
	return cfg
}

// Registry names of the built-in policy families.
const (
	Always   = "always"
	QueueCap = "queue-cap"
	CoDel    = "codel"
	Priority = "priority"
)

// Names lists the built-in policy families in sorted order.
func Names() []string {
	names := []string{Always, CoDel, Priority, QueueCap}
	sort.Strings(names)
	return names
}

// New builds a fresh policy instance from the config. Each server
// needs its own instance — policies carry per-queue state.
func New(cfg Config) (Policy, error) {
	cfg = cfg.withDefaults()
	if cfg.BrowseCap > cfg.QueueCap {
		return nil, fmt.Errorf("admission: browse cap %d exceeds queue cap %d", cfg.BrowseCap, cfg.QueueCap)
	}
	switch cfg.Policy {
	case Always:
		return alwaysPolicy{}, nil
	case QueueCap:
		return &queueCapPolicy{cap: cfg.QueueCap}, nil
	case CoDel:
		return &codelPolicy{target: cfg.Target, interval: cfg.Interval}, nil
	case Priority:
		return &priorityPolicy{cap: cfg.QueueCap, browseCap: cfg.BrowseCap}, nil
	default:
		return nil, fmt.Errorf("admission: unknown policy %q (have %s)", cfg.Policy, strings.Join(Names(), ", "))
	}
}

// Parse decodes a policy spec string into a Config. The spec is the
// family name, optionally followed by colon-separated key=value
// parameters:
//
//	always
//	queue-cap:cap=200
//	codel:target=50ms,interval=500ms
//	priority:cap=200,browse=40
//
// Durations accept Go-style "50ms"/"1s" suffixes or plain seconds.
func Parse(spec string) (Config, error) {
	var cfg Config
	name, rest, _ := strings.Cut(spec, ":")
	cfg.Policy = strings.TrimSpace(name)
	if cfg.Policy == "" {
		return cfg, fmt.Errorf("admission: empty policy spec")
	}
	if rest == "" {
		if _, err := New(cfg); err != nil {
			return cfg, err
		}
		return cfg, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("admission: bad parameter %q in %q (want key=value)", kv, spec)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "cap":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("admission: bad cap %q in %q", v, spec)
			}
			cfg.QueueCap = n
		case "browse":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("admission: bad browse cap %q in %q", v, spec)
			}
			cfg.BrowseCap = n
		case "target":
			d, err := parseDuration(v)
			if err != nil {
				return cfg, fmt.Errorf("admission: bad target %q in %q", v, spec)
			}
			cfg.Target = d
		case "interval":
			d, err := parseDuration(v)
			if err != nil {
				return cfg, fmt.Errorf("admission: bad interval %q in %q", v, spec)
			}
			cfg.Interval = d
		default:
			return cfg, fmt.Errorf("admission: unknown parameter %q in %q", k, spec)
		}
	}
	if _, err := New(cfg); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// Spec renders the config back into Parse's string form, with defaults
// applied — the mgmt get-side of the policy toggle.
func (cfg Config) Spec() string {
	cfg = cfg.withDefaults()
	switch cfg.Policy {
	case QueueCap:
		return fmt.Sprintf("%s:cap=%d", cfg.Policy, cfg.QueueCap)
	case CoDel:
		return fmt.Sprintf("%s:target=%s,interval=%s", cfg.Policy,
			formatDuration(cfg.Target), formatDuration(cfg.Interval))
	case Priority:
		return fmt.Sprintf("%s:cap=%d,browse=%d", cfg.Policy, cfg.QueueCap, cfg.BrowseCap)
	default:
		return cfg.Policy
	}
}

func parseDuration(v string) (des.Time, error) {
	mult := des.Second
	switch {
	case strings.HasSuffix(v, "ms"):
		v, mult = strings.TrimSuffix(v, "ms"), des.Millisecond
	case strings.HasSuffix(v, "s"):
		v = strings.TrimSuffix(v, "s")
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f <= 0 {
		return 0, fmt.Errorf("bad duration %q", v)
	}
	return des.Time(f) * mult, nil
}

func formatDuration(d des.Time) string {
	if d < des.Second {
		return strconv.FormatFloat(float64(d/des.Millisecond), 'f', -1, 64) + "ms"
	}
	return strconv.FormatFloat(float64(d), 'f', -1, 64) + "s"
}

// alwaysPolicy admits everything: the baseline against which the
// byte-identity gate compares.
type alwaysPolicy struct{}

// Name returns "always".
func (alwaysPolicy) Name() string { return Always }

// Admit always returns true.
func (alwaysPolicy) Admit(des.Time, Class, int) bool { return true }

// ObserveDequeue ignores the feedback.
func (alwaysPolicy) ObserveDequeue(des.Time, des.Time) {}

// queueCapPolicy sheds every arrival that would push the accept queue
// past a fixed cap.
type queueCapPolicy struct {
	cap int
}

// Name returns "queue-cap".
func (*queueCapPolicy) Name() string { return QueueCap }

// Admit returns true while the queue is below the cap.
func (p *queueCapPolicy) Admit(_ des.Time, _ Class, queueLen int) bool {
	return queueLen < p.cap
}

// ObserveDequeue ignores the feedback.
func (*queueCapPolicy) ObserveDequeue(des.Time, des.Time) {}

// priorityPolicy is a two-threshold queue cap: browse-class arrivals
// shed at the low browseCap, read-write arrivals only at the full cap.
type priorityPolicy struct {
	cap       int
	browseCap int
}

// Name returns "priority".
func (*priorityPolicy) Name() string { return Priority }

// Admit applies the class-specific threshold.
func (p *priorityPolicy) Admit(_ des.Time, class Class, queueLen int) bool {
	if class == ClassBrowse {
		return queueLen < p.browseCap
	}
	return queueLen < p.cap
}

// ObserveDequeue ignores the feedback.
func (*priorityPolicy) ObserveDequeue(des.Time, des.Time) {}

// codelPolicy adapts the CoDel AQM control law (Nichols & Jacobson,
// "Controlling Queue Delay") to the accept queue. The standing-queue
// signal is the *minimum* sojourn over an interval: transient bursts
// whose sojourn dips back below Target are left alone; only a queue
// that keeps every request waiting longer than Target for a full
// Interval is drained by shedding. While dropping, sheds are spaced at
// Interval/sqrt(count) — each successive drop comes sooner, applying
// linearly increasing pressure until a dequeue observes sojourn back
// under Target.
type codelPolicy struct {
	target   des.Time
	interval des.Time

	// firstAbove is the deadline by which sojourn must dip below target
	// to avoid entering the dropping state (0 = sojourn currently below
	// target, nothing pending).
	firstAbove des.Time
	// dropping is the active shedding state; dropNext the next time an
	// arrival will be shed; count the drops so far in this episode.
	dropping bool
	dropNext des.Time
	count    int
}

// Name returns "codel".
func (*codelPolicy) Name() string { return CoDel }

// ObserveDequeue runs the standing-queue estimator: sojourn below
// target at any dequeue resets the episode; sojourn above target for a
// full interval arms the dropping state.
func (p *codelPolicy) ObserveDequeue(now des.Time, sojourn des.Time) {
	if sojourn < p.target {
		p.firstAbove = 0
		p.dropping = false
		return
	}
	if p.firstAbove == 0 {
		p.firstAbove = now + p.interval
		return
	}
	if !p.dropping && now >= p.firstAbove {
		p.dropping = true
		p.dropNext = now
		p.count = 1
	}
}

// Admit sheds at the interval-shrink cadence while dropping; an empty
// queue is never shed into (there is nothing standing to drain).
func (p *codelPolicy) Admit(now des.Time, _ Class, queueLen int) bool {
	if !p.dropping || queueLen == 0 {
		return true
	}
	if now >= p.dropNext {
		p.dropNext = now + des.Time(float64(p.interval)/math.Sqrt(float64(p.count)))
		p.count++
		return false
	}
	return true
}
