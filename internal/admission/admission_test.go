package admission

import (
	"strings"
	"testing"

	"conscale/internal/des"
)

func mustNew(t *testing.T, cfg Config) Policy {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return p
}

func TestAlwaysAdmitsEverything(t *testing.T) {
	p := mustNew(t, Config{})
	if p.Name() != Always {
		t.Fatalf("default policy = %q, want %q", p.Name(), Always)
	}
	for q := 0; q < 100000; q += 997 {
		if !p.Admit(des.Time(q), ClassBrowse, q) || !p.Admit(des.Time(q), ClassReadWrite, q) {
			t.Fatalf("always shed at queueLen=%d", q)
		}
	}
}

func TestQueueCapBoundaries(t *testing.T) {
	p := mustNew(t, Config{Policy: QueueCap, QueueCap: 10})
	cases := []struct {
		queueLen int
		want     bool
	}{
		{0, true}, {1, true}, {9, true}, {10, false}, {11, false}, {1000, false},
	}
	for _, c := range cases {
		for _, class := range []Class{ClassBrowse, ClassReadWrite} {
			if got := p.Admit(1, class, c.queueLen); got != c.want {
				t.Errorf("queue-cap(10).Admit(%v, queueLen=%d) = %v, want %v", class, c.queueLen, got, c.want)
			}
		}
	}
}

func TestPriorityOrderingUnderMixedClasses(t *testing.T) {
	p := mustNew(t, Config{Policy: Priority, QueueCap: 20, BrowseCap: 5})
	cases := []struct {
		class    Class
		queueLen int
		want     bool
	}{
		// Browse sheds at the low threshold...
		{ClassBrowse, 4, true}, {ClassBrowse, 5, false}, {ClassBrowse, 19, false},
		// ...while read-write rides to the full cap.
		{ClassReadWrite, 4, true}, {ClassReadWrite, 5, true}, {ClassReadWrite, 19, true}, {ClassReadWrite, 20, false},
	}
	for _, c := range cases {
		if got := p.Admit(1, c.class, c.queueLen); got != c.want {
			t.Errorf("priority.Admit(%v, queueLen=%d) = %v, want %v", c.class, c.queueLen, got, c.want)
		}
	}
	// At every queue length, browse must never be admitted where
	// read-write is shed.
	for q := 0; q <= 25; q++ {
		b := p.Admit(1, ClassBrowse, q)
		rw := p.Admit(1, ClassReadWrite, q)
		if b && !rw {
			t.Fatalf("queueLen=%d: browse admitted while read-write shed", q)
		}
	}
}

func TestPriorityBrowseCapDefault(t *testing.T) {
	cfg := Config{Policy: Priority, QueueCap: 100}.withDefaults()
	if cfg.BrowseCap != 25 {
		t.Fatalf("default BrowseCap = %d, want QueueCap/4 = 25", cfg.BrowseCap)
	}
	if _, err := New(Config{Policy: Priority, QueueCap: 10, BrowseCap: 20}); err == nil {
		t.Fatal("New accepted BrowseCap > QueueCap")
	}
}

// TestCoDelControlLaw walks the policy through a full episode: standing
// queue arms dropping after one interval, drops space at
// interval/sqrt(count), and a below-target dequeue resets everything.
func TestCoDelControlLaw(t *testing.T) {
	const (
		target   = 100 * des.Millisecond
		interval = des.Second
	)
	p := mustNew(t, Config{Policy: CoDel, Target: target, Interval: interval}).(*codelPolicy)

	// Below-target sojourns never arm dropping.
	for i := 0; i < 10; i++ {
		now := des.Time(i) * 10 * des.Millisecond
		p.ObserveDequeue(now, target/2)
		if !p.Admit(now, ClassBrowse, 50) {
			t.Fatal("shed while sojourn below target")
		}
	}

	// Sojourn above target: no drop until a full interval has passed.
	p.ObserveDequeue(10, 2*target)
	if p.dropping {
		t.Fatal("entered dropping on first above-target sojourn")
	}
	p.ObserveDequeue(10+interval/2, 2*target)
	if p.dropping || !p.Admit(10+interval/2, ClassBrowse, 50) {
		t.Fatal("dropping before the interval elapsed")
	}

	// A dip below target inside the interval resets the episode.
	p.ObserveDequeue(10+interval*3/4, target/2)
	if p.firstAbove != 0 {
		t.Fatal("below-target dequeue did not reset the episode")
	}

	// Re-arm and let the full interval elapse: dropping starts.
	p.ObserveDequeue(20, 2*target)
	p.ObserveDequeue(20+interval, 2*target)
	if !p.dropping {
		t.Fatal("standing queue for a full interval did not arm dropping")
	}

	// First arrival sheds immediately; the next drop is one full
	// interval out (count=1), then interval/sqrt(2), shrinking.
	now := 20 + interval
	if p.Admit(now, ClassBrowse, 50) {
		t.Fatal("first arrival in dropping state was admitted")
	}
	gap1 := p.dropNext - now
	if gap1 != interval {
		t.Fatalf("first drop spacing = %v, want %v", gap1, interval)
	}
	if p.Admit(now+gap1/2, ClassBrowse, 50) == false {
		t.Fatal("shed before dropNext")
	}
	now = p.dropNext
	if p.Admit(now, ClassBrowse, 50) {
		t.Fatal("second drop not taken at dropNext")
	}
	gap2 := p.dropNext - now
	if gap2 >= gap1 {
		t.Fatalf("drop spacing did not shrink: %v then %v", gap1, gap2)
	}

	// An empty queue is never shed into, even while dropping.
	if !p.Admit(p.dropNext, ClassBrowse, 0) {
		t.Fatal("shed into an empty queue")
	}

	// Recovery: one below-target dequeue exits dropping.
	p.ObserveDequeue(now+1, target/2)
	if p.dropping {
		t.Fatal("below-target dequeue did not exit dropping")
	}
	if !p.Admit(now+1, ClassBrowse, 50) {
		t.Fatal("shed after recovery")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want Config
	}{
		{"always", Config{Policy: Always}},
		{"queue-cap:cap=200", Config{Policy: QueueCap, QueueCap: 200}},
		{"codel:target=50ms,interval=500ms", Config{Policy: CoDel, Target: 50 * des.Millisecond, Interval: 500 * des.Millisecond}},
		{"priority:cap=200,browse=40", Config{Policy: Priority, QueueCap: 200, BrowseCap: 40}},
		{"codel:target=0.2s", Config{Policy: CoDel, Target: 200 * des.Millisecond}},
	}
	for _, c := range cases {
		got, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		// Spec() must parse back to an equivalent config.
		back, err := Parse(got.Spec())
		if err != nil {
			t.Fatalf("Parse(Spec(%q)=%q): %v", c.spec, got.Spec(), err)
		}
		if back.withDefaults() != got.withDefaults() {
			t.Errorf("round trip %q -> %q changed config", c.spec, got.Spec())
		}
	}
	for _, bad := range []string{"", "nope", "queue-cap:cap=-1", "codel:target=zz", "priority:cap=5,browse=50", "queue-cap:cap"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", bad)
		}
	}
}

func TestNamesCoverRegistry(t *testing.T) {
	names := Names()
	if len(names) != 4 {
		t.Fatalf("Names() = %v, want 4 entries", names)
	}
	for _, n := range names {
		p, err := New(Config{Policy: n})
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, p.Name())
		}
	}
	if _, err := New(Config{Policy: "bogus"}); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("New(bogus) error = %v", err)
	}
}

func TestClassString(t *testing.T) {
	if ClassBrowse.String() != "browse" || ClassReadWrite.String() != "read-write" {
		t.Fatalf("class names: %q %q", ClassBrowse, ClassReadWrite)
	}
}

func TestMeterWindowsAndRates(t *testing.T) {
	type obs struct {
		class Class
		rate  float64
	}
	var got []obs
	m := NewMeter(des.Second, func(c Class, r float64) { got = append(got, obs{c, r}) })

	// Window [0,1): 4 browse offered, 1 shed; 2 read-write, 0 shed.
	for i := 0; i < 4; i++ {
		m.Observe(des.Time(i)*100*des.Millisecond, ClassBrowse, i == 0)
	}
	m.Observe(0.5, ClassReadWrite, false)
	m.Observe(0.6, ClassReadWrite, false)
	// Crossing into the next window flushes the previous one.
	m.Observe(1.5, ClassBrowse, true)
	if len(got) != 2 {
		t.Fatalf("flush emitted %d rates, want 2: %v", len(got), got)
	}
	if got[0].class != ClassBrowse || got[0].rate != 0.25 {
		t.Errorf("browse rate = %+v, want 0.25", got[0])
	}
	if got[1].class != ClassReadWrite || got[1].rate != 0 {
		t.Errorf("read-write rate = %+v, want 0", got[1])
	}
	got = got[:0]
	m.Flush()
	if len(got) != 1 || got[0].rate != 1 {
		t.Fatalf("final flush = %v, want one browse rate of 1", got)
	}

	// Nil meter is a no-op.
	var nilMeter *Meter
	nilMeter.Observe(0, ClassBrowse, true)
	nilMeter.Flush()
}

// TestPolicyZeroAlloc pins the per-request hot path at zero
// allocations for every policy, admitting and shedding alike.
func TestPolicyZeroAlloc(t *testing.T) {
	for _, name := range Names() {
		p := mustNew(t, Config{Policy: name, QueueCap: 8})
		var now des.Time
		if n := testing.AllocsPerRun(1000, func() {
			now += 10 * des.Millisecond
			p.Admit(now, ClassBrowse, 50)
			p.Admit(now, ClassReadWrite, 3)
			p.ObserveDequeue(now, 200*des.Millisecond)
			p.ObserveDequeue(now, des.Millisecond)
		}); n != 0 {
			t.Errorf("%s hot path allocates %.1f/op", name, n)
		}
	}
	m := NewMeter(des.Second, nil)
	var now des.Time
	if n := testing.AllocsPerRun(1000, func() {
		now += 10 * des.Millisecond
		m.Observe(now, ClassBrowse, false)
	}); n != 0 {
		t.Errorf("meter hot path allocates %.1f/op", n)
	}
}
