package telemetry

import (
	"math"
	"sync/atomic"
)

// Log-linear bucket layout. Each power-of-two octave is split into histSub
// linear sub-buckets, so any recorded value within the covered range
// [2^histMinExp, 2^histMaxExp) is represented by its bucket midpoint with a
// relative error of at most 1/(2*histSub) = 3.125%. The range spans ~7.6 µs
// to ~2048 s, comfortably bracketing every response time the simulator or
// the live stack can produce; values outside it land in the underflow or
// overflow bucket.
const (
	histSub     = 16
	histMinExp  = -17
	histMaxExp  = 11
	histOctaves = histMaxExp - histMinExp
	// +2: one underflow bucket below 2^histMinExp, one overflow at the top.
	histBuckets = histOctaves*histSub + 2
)

// Histogram is a fixed-size log-linear histogram for response-time
// distributions. Observe is lock-free (atomic bucket increments into a
// pre-allocated array) and allocation-free whether the registry is enabled
// or not; a nil receiver is a valid no-op, so disabled instrumentation
// costs two loads per call site.
type Histogram struct {
	reg     *Registry
	count   atomic.Uint64
	sumBits atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value (seconds).
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.reg.enabled.Load() {
		return
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// bucketIndex maps a value to its bucket. NaN and non-positive values land
// in the underflow bucket (index 0).
func bucketIndex(v float64) int {
	if !(v > 0) {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	oct := exp - 1             // v in [2^oct, 2^(oct+1))
	if oct < histMinExp {
		return 0
	}
	if oct >= histMaxExp {
		return histBuckets - 1
	}
	sub := int((2*frac - 1) * histSub)
	if sub > histSub-1 {
		sub = histSub - 1
	}
	return 1 + (oct-histMinExp)*histSub + sub
}

// bucketUpper returns the exclusive upper bound of bucket i (+Inf for the
// overflow bucket).
func bucketUpper(i int) float64 {
	if i <= 0 {
		return math.Ldexp(1, histMinExp)
	}
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	oct := (i-1)/histSub + histMinExp
	sub := (i - 1) % histSub
	return math.Ldexp(1+float64(sub+1)/histSub, oct)
}

// bucketLower returns the inclusive lower bound of bucket i.
func bucketLower(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i >= histBuckets-1 {
		return math.Ldexp(1, histMaxExp)
	}
	oct := (i-1)/histSub + histMinExp
	sub := (i - 1) % histSub
	return math.Ldexp(1+float64(sub)/histSub, oct)
}

// snapshot copies the bucket counts (a consistent-enough view for
// exposition; individual buckets are atomically read).
func (h *Histogram) snapshot() (buckets [histBuckets]uint64, count uint64, sum float64) {
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		count += buckets[i]
	}
	return buckets, count, h.Sum()
}

// Quantile estimates the p-quantile (0 < p < 1) of the recorded
// distribution as the midpoint of the bucket containing that rank. Within
// the covered range the estimate's relative error is bounded by
// 1/(2*histSub) = 3.125% plus the rank discretisation of the bucket width.
// It returns NaN when the histogram is empty.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return math.NaN()
	}
	buckets, total, _ := h.snapshot()
	if total == 0 {
		return math.NaN()
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var acc uint64
	for i, n := range buckets {
		acc += n
		if acc >= rank {
			switch i {
			case 0:
				return bucketUpper(0) / 2
			case histBuckets - 1:
				return bucketLower(histBuckets - 1)
			default:
				return (bucketLower(i) + bucketUpper(i)) / 2
			}
		}
	}
	return math.NaN() // unreachable
}
