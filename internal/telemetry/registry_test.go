package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestHotPathZeroAlloc pins the allocation discipline the package promises:
// instrument updates never allocate, whether the registry is disabled,
// enabled, or the instrument is a nil no-op. This is the same pin
// internal/trace carries for span recording.
func TestHotPathZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_ctr", "test counter")
	g := reg.Gauge("t_gauge", "test gauge")
	h := reg.Histogram("t_hist", "test histogram")

	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram

	cases := []struct {
		name string
		fn   func()
	}{
		{"counter-inc", func() { c.Inc() }},
		{"counter-add", func() { c.Add(3) }},
		{"gauge-set", func() { g.Set(1.5) }},
		{"gauge-add", func() { g.Add(-0.5) }},
		{"hist-observe", func() { h.Observe(0.042) }},
		{"nil-counter", func() { nilC.Inc() }},
		{"nil-gauge", func() { nilG.Set(1) }},
		{"nil-hist", func() { nilH.Observe(1) }},
	}
	for _, enabled := range []bool{true, false} {
		reg.SetEnabled(enabled)
		for _, tc := range cases {
			if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
				t.Errorf("enabled=%v %s: %v allocs/op, want 0", enabled, tc.name, n)
			}
		}
	}
	reg.SetEnabled(true)
}

func TestDisabledDropsUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_ctr", "c")
	g := reg.Gauge("t_gauge", "g")
	h := reg.Histogram("t_hist", "h")
	reg.SetEnabled(false)
	c.Inc()
	g.Set(7)
	h.Observe(0.1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled registry recorded updates: ctr=%d gauge=%v hist=%d",
			c.Value(), g.Value(), h.Count())
	}
	reg.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("re-enabled counter = %d, want 1", c.Value())
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("t_total", "h", "tier", "app", "server", "app-0")
	b := reg.Counter("t_total", "h", "server", "app-0", "tier", "app") // reordered labels
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("aliased counter value = %d, want 1", b.Value())
	}
	if reg.Families() != 1 {
		t.Fatalf("families = %d, want 1", reg.Families())
	}
	// A second labelled series joins the same family.
	reg.Counter("t_total", "h", "tier", "db", "server", "db-0")
	if reg.Families() != 1 {
		t.Fatalf("families after second series = %d, want 1", reg.Families())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_thing", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("t_thing", "h")
}

func TestNilRegistryConstructors(t *testing.T) {
	var reg *Registry
	if c := reg.Counter("x", "h"); c != nil {
		t.Fatal("nil registry returned non-nil counter")
	}
	if g := reg.Gauge("x", "h"); g != nil {
		t.Fatal("nil registry returned non-nil gauge")
	}
	if h := reg.Histogram("x", "h"); h != nil {
		t.Fatal("nil registry returned non-nil histogram")
	}
	reg.GaugeFunc("x", "h", func() float64 { return 1 })
	reg.Collect("y", "h", KindGauge, func(emit func(float64, ...string)) {})
	if reg.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v len=%d", err, sb.Len())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_total", "h")
	h := reg.Histogram("t_rt", "h")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

func TestLabelEscaping(t *testing.T) {
	got := labelKey([]string{"path", `a\b"c` + "\n"})
	want := `{path="a\\b\"c\n"}`
	if got != want {
		t.Fatalf("labelKey = %q, want %q", got, want)
	}
}
