package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed exposition sample line.
type PromSample struct {
	Name   string
	Labels string // canonical `{k="v",...}` form, "" when unlabelled
	Value  float64
	TS     int64
	HasTS  bool
}

// PromFamily is one parsed metric family: its metadata plus every sample
// whose base name belongs to it (histogram _bucket/_sum/_count lines fold
// into their parent family).
type PromFamily struct {
	Name, Help, Type string
	Samples          []PromSample
}

// ParseProm parses the Prometheus text exposition format (version 0.0.4,
// plus the OpenMetrics # EOF terminator) strictly enough to round-trip the
// package's own output: unknown comment lines are skipped, malformed sample
// or label syntax is an error, and histogram suffixes attach to the family
// declared by their # TYPE line. It exists so tests — including the live
// /metrics endpoint's — can verify the exposition is well-formed without an
// external Prometheus dependency.
func ParseProm(r io.Reader) ([]PromFamily, error) {
	var (
		fams   []PromFamily
		byName = map[string]*PromFamily{}
	)
	fam := func(name string) *PromFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		fams = append(fams, PromFamily{Name: name})
		f := &fams[len(fams)-1]
		byName[name] = f
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "# EOF":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			f := fam(rest[0])
			if len(rest) == 2 {
				f.Help = rest[1]
			}
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(rest) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE", lineNo)
			}
			switch rest[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", lineNo, rest[1])
			}
			fam(rest[0]).Type = rest[1]
		case strings.HasPrefix(line, "#"):
			continue // other comments are legal and ignored
		default:
			s, err := parsePromSample(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			base := s.Name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				trimmed := strings.TrimSuffix(s.Name, suf)
				if trimmed != s.Name {
					if f, ok := byName[trimmed]; ok && f.Type == "histogram" {
						base = trimmed
					}
					break
				}
			}
			f := fam(base)
			f.Samples = append(f.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// parsePromSample parses `name{labels} value [timestamp]`.
func parsePromSample(line string) (PromSample, error) {
	var s PromSample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		canon, err := canonLabels(rest[i+1 : j])
		if err != nil {
			return s, err
		}
		s.Labels = canon
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return s, fmt.Errorf("missing value in %q", line)
		}
		s.Name = fields[0]
		rest = strings.TrimSpace(fields[1])
	}
	if s.Name == "" || !validMetricName(s.Name) {
		return s, fmt.Errorf("bad metric name in %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want `value [timestamp]`, got %q", rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		ts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return s, fmt.Errorf("bad timestamp %q: %w", fields[1], err)
		}
		s.TS, s.HasTS = ts, true
	}
	return s, nil
}

// canonLabels validates `k="v",...` and re-renders it sorted by key.
func canonLabels(in string) (string, error) {
	if strings.TrimSpace(in) == "" {
		return "", nil
	}
	type kv struct{ k, v string }
	var pairs []kv
	rest := in
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 1 {
			return "", fmt.Errorf("bad label pair in %q", in)
		}
		k := strings.TrimSpace(rest[:eq])
		if !validLabelName(k) {
			return "", fmt.Errorf("bad label name %q", k)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return "", fmt.Errorf("unquoted label value in %q", in)
		}
		rest = rest[1:]
		var b strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return "", fmt.Errorf("unterminated label value in %q", in)
		}
		pairs = append(pairs, kv{k, b.String()})
		rest = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		rest = strings.TrimSpace(rest)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String(), nil
}

func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func validLabelName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}
