package telemetry

import (
	"math"
	"sort"
	"testing"

	"conscale/internal/rng"
)

// TestBucketBoundsPartition verifies the log-linear layout tiles the covered
// range: consecutive buckets share a boundary and every value maps into the
// bucket whose [lower, upper) range contains it.
func TestBucketBoundsPartition(t *testing.T) {
	for i := 1; i < histBuckets-1; i++ {
		lo, hi := bucketLower(i), bucketUpper(i)
		if !(lo < hi) {
			t.Fatalf("bucket %d: lower %v >= upper %v", i, lo, hi)
		}
		if i > 1 && bucketUpper(i-1) != lo {
			t.Fatalf("bucket %d: gap — upper(%d)=%v, lower(%d)=%v", i, i-1, bucketUpper(i-1), i, lo)
		}
		for _, v := range []float64{lo, (lo + hi) / 2, math.Nextafter(hi, 0)} {
			if got := bucketIndex(v); got != i {
				t.Fatalf("bucketIndex(%v) = %d, want %d [%v, %v)", v, got, i, lo, hi)
			}
		}
	}
	// Edge routing.
	if bucketIndex(0) != 0 || bucketIndex(-1) != 0 || bucketIndex(math.NaN()) != 0 {
		t.Fatal("non-positive / NaN values must land in the underflow bucket")
	}
	if bucketIndex(math.Ldexp(1, histMaxExp)) != histBuckets-1 {
		t.Fatal("2^histMaxExp must land in the overflow bucket")
	}
	if bucketIndex(math.Ldexp(1, histMinExp)) != 1 {
		t.Fatal("2^histMinExp must land in the first covered bucket")
	}
}

// TestHistogramRelativeErrorBound drives lognormal response times through
// the histogram and checks the documented bound: any in-range observation is
// reconstructed (as its bucket midpoint) within 1/(2*histSub) = 3.125%
// relative error.
func TestHistogramRelativeErrorBound(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_rt", "h")
	src := rng.New(42)
	const bound = 1.0 / (2 * histSub)
	for i := 0; i < 20000; i++ {
		v := src.LogNormal(0.05, 1.2) // mean 50 ms, heavy spread
		idx := bucketIndex(v)
		if idx == 0 || idx == histBuckets-1 {
			continue // outside the covered range: bound does not apply
		}
		mid := (bucketLower(idx) + bucketUpper(idx)) / 2
		if relErr := math.Abs(mid-v) / v; relErr > bound {
			t.Fatalf("value %v bucket %d midpoint %v: rel err %.4f > %.4f",
				v, idx, mid, relErr, bound)
		}
		h.Observe(v)
	}
}

// TestHistogramQuantileAccuracy compares histogram quantiles against the
// exact order statistics of the same stream.
func TestHistogramQuantileAccuracy(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_rt", "h")
	src := rng.New(7)
	const n = 50000
	exact := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := src.LogNormal(0.08, 0.8)
		h.Observe(v)
		exact = append(exact, v)
	}
	sort.Float64s(exact)
	for _, p := range []float64{0.5, 0.95, 0.99} {
		want := exact[int(math.Ceil(p*float64(n)))-1]
		got := h.Quantile(p)
		// Bucket midpoint resolution plus rank discretisation: allow 2x the
		// per-value bound.
		if relErr := math.Abs(got-want) / want; relErr > 2.0/(2*histSub) {
			t.Errorf("p%v: histogram %v vs exact %v (rel err %.4f)", p*100, got, want, relErr)
		}
	}
}

func TestHistogramSumCountAndEmpty(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_rt", "h")
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	vals := []float64{0.001, 0.25, 0.25, 3.0}
	var sum float64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count() != uint64(len(vals)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(vals))
	}
	if math.Abs(h.Sum()-sum) > 1e-12 {
		t.Fatalf("sum = %v, want %v", h.Sum(), sum)
	}
	var nilH *Histogram
	if nilH.Count() != 0 || nilH.Sum() != 0 || !math.IsNaN(nilH.Quantile(0.9)) {
		t.Fatal("nil histogram accessors not inert")
	}
}
