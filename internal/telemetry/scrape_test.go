package telemetry

import (
	"strings"
	"testing"

	"conscale/internal/des"
	"conscale/internal/mgmt"
)

// TestScraperTimeline runs a scraper over a toy simulation and checks the
// timeline: one timestamped block per interval, metadata only on the first,
// terminated by # EOF, and the whole stream parses.
func TestScraperTimeline(t *testing.T) {
	eng := des.New()
	reg := NewRegistry()
	c := reg.Counter("test_ticks_total", "Ticks seen.")
	eng.Every(des.Second, func() { c.Inc() })

	s := NewScraper(eng, reg, 5*des.Second)
	s.Start()
	eng.RunUntil(20 * des.Second)
	s.Stop()

	if s.Scrapes() != 4 {
		t.Fatalf("scrapes = %d, want 4", s.Scrapes())
	}
	var sb strings.Builder
	if err := s.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatal("timeline missing # EOF terminator")
	}
	if n := strings.Count(out, "# TYPE test_ticks_total"); n != 1 {
		t.Fatalf("metadata repeated %d times, want once (first scrape only)", n)
	}
	fams, err := ParseProm(strings.NewReader(out))
	if err != nil {
		t.Fatalf("timeline failed to parse: %v", err)
	}
	var samples []PromSample
	for _, f := range fams {
		if f.Name == "test_ticks_total" {
			samples = f.Samples
		}
	}
	if len(samples) != 4 {
		t.Fatalf("timeline has %d samples, want 4", len(samples))
	}
	// Every sample carries its virtual-clock millisecond timestamp, and the
	// counter grows one tick per second of simulated time. At the shared
	// instant t=5k the scrape event was scheduled before that second's tick,
	// so the snapshot deterministically sees one tick fewer.
	for i, s := range samples {
		wantTS := int64(5000 * (i + 1))
		if !s.HasTS || s.TS != wantTS {
			t.Fatalf("sample %d: ts=%d (has=%v), want %d", i, s.TS, s.HasTS, wantTS)
		}
		if want := float64(5*(i+1) - 1); s.Value != want {
			t.Fatalf("sample %d: value=%v, want %v", i, s.Value, want)
		}
	}
}

// TestScraperIntervalRetune changes the cadence mid-run through the mgmt
// store, as a live operator would.
func TestScraperIntervalRetune(t *testing.T) {
	eng := des.New()
	reg := NewRegistry()
	reg.Counter("test_ticks_total", "h").Inc()
	s := NewScraper(eng, reg, 10*des.Second)

	st := mgmt.NewStore()
	reg.RegisterMgmt(st)
	s.RegisterMgmt(st)

	if v, err := st.Get("telemetry.scrape_interval"); err != nil || v != "10" {
		t.Fatalf("scrape_interval = %q, %v; want \"10\"", v, err)
	}
	s.Start()
	eng.RunUntil(20 * des.Second) // two scrapes at 10 s cadence
	if err := st.Set("telemetry.scrape_interval", "2"); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(40 * des.Second) // next tick at 30 s, then every 2 s
	s.Stop()
	// 10, 20, 30, 32, 34, 36, 38, 40 = 8 scrapes.
	if s.Scrapes() != 8 {
		t.Fatalf("scrapes = %d, want 8", s.Scrapes())
	}
	if err := st.Set("telemetry.scrape_interval", "-3"); err == nil {
		t.Fatal("negative interval accepted")
	}
}

// TestMgmtEnabledToggle pauses scraping through telemetry.enabled while the
// tick chain keeps running.
func TestMgmtEnabledToggle(t *testing.T) {
	eng := des.New()
	reg := NewRegistry()
	reg.Counter("test_ticks_total", "h")
	s := NewScraper(eng, reg, des.Second)
	st := mgmt.NewStore()
	reg.RegisterMgmt(st)

	s.Start()
	eng.RunUntil(3 * des.Second)
	if err := st.Set("telemetry.enabled", "false"); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(6 * des.Second)
	if err := st.Set("telemetry.enabled", "true"); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(8 * des.Second)
	s.Stop()
	if s.Scrapes() != 5 { // 1,2,3 then paused, then 7,8
		t.Fatalf("scrapes = %d, want 5", s.Scrapes())
	}
	if v, _ := st.Get("telemetry.enabled"); v != "true" {
		t.Fatalf("telemetry.enabled = %q, want true", v)
	}
	if err := st.Set("telemetry.enabled", "maybe"); err == nil {
		t.Fatal("non-boolean enabled value accepted")
	}
}
