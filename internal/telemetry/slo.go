package telemetry

import (
	"fmt"

	"conscale/internal/des"
	"conscale/internal/trace"
)

// SLOConfig parameterises the multi-window burn-rate monitor. The paper's
// quality target — p99 response time under 300 ms — becomes an error-budget
// SLO: a request is "bad" when it errors or exceeds Target, the budget is
// 1-Objective of all requests, and an alert raises when the budget is being
// consumed Burn times faster than sustainable over both a fast window (for
// reaction speed) and a slow window (to suppress blips). This is the
// two-window form of Google-SRE burn-rate alerting, run on the simulated
// clock so detection latencies are exactly reproducible.
type SLOConfig struct {
	// Target is the per-request response-time bound (seconds).
	Target float64
	// Objective is the fraction of requests that must meet Target
	// (0.99 = "99% of requests under Target", i.e. p99 < Target).
	Objective float64
	// FastWindow / SlowWindow are the two rolling windows (seconds of
	// simulated time) whose burn rates must BOTH exceed Burn to raise.
	FastWindow des.Time
	SlowWindow des.Time
	// Burn is the alerting burn-rate threshold. The alert clears when the
	// fast-window burn drops back under it.
	Burn float64
}

// DefaultSLOConfig returns the monitor used throughout the experiments:
// p99 < 300 ms, 15 s fast / 60 s slow windows, burn threshold 4.
func DefaultSLOConfig() SLOConfig {
	return SLOConfig{
		Target:     0.3,
		Objective:  0.99,
		FastWindow: 15 * des.Second,
		SlowWindow: 60 * des.Second,
		Burn:       4,
	}
}

// Alert is one raised burn-rate episode.
type Alert struct {
	Start des.Time
	// End is the clear time; for an alert still active when the run ended
	// it holds the last observation time and Active stays true.
	End    des.Time
	Active bool
	// PeakBurn is the highest fast-window burn seen while raised.
	PeakBurn float64
}

// SLOMonitor ingests per-request outcomes on the simulation goroutine and
// maintains rolling good/bad counts in per-second buckets. It is a pure
// observer: it draws no randomness and schedules nothing, so arming it
// cannot perturb a run. All methods are nil-safe.
type SLOMonitor struct {
	cfg   SLOConfig
	audit *trace.Audit

	// Per-second ring buffers, indexed by absolute second. base is the
	// second good[0]/bad[0] describe; cur is the latest observed second.
	good, bad []uint64
	base, cur int

	// Rolling sums over the two windows (in whole seconds).
	fastW, slowW                         int
	fastGood, fastBad, slowGood, slowBad uint64

	alerts []Alert

	// sheds counts the bad observations attributed to admission-policy
	// drops. Sheds already burn the error budget through Observe (a shed
	// request completes ok=false, so "bad" catches it without special
	// casing); this split exists so reports can say how much of the burn
	// was deliberate load shedding versus organic slowness.
	sheds uint64

	// Optional registry instruments (nil until Register).
	goodC, badC, alertsC, shedsC *Counter
	fastG, slowG, activeG        *Gauge
}

// NewSLOMonitor builds a monitor; zero fields fall back to DefaultSLOConfig.
func NewSLOMonitor(cfg SLOConfig) *SLOMonitor {
	def := DefaultSLOConfig()
	if cfg.Target <= 0 {
		cfg.Target = def.Target
	}
	if cfg.Objective <= 0 || cfg.Objective >= 1 {
		cfg.Objective = def.Objective
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = def.FastWindow
	}
	if cfg.SlowWindow < cfg.FastWindow {
		cfg.SlowWindow = def.SlowWindow
	}
	if cfg.SlowWindow < cfg.FastWindow {
		cfg.SlowWindow = cfg.FastWindow
	}
	if cfg.Burn <= 0 {
		cfg.Burn = def.Burn
	}
	m := &SLOMonitor{
		cfg:   cfg,
		fastW: int(cfg.FastWindow),
		slowW: int(cfg.SlowWindow),
		base:  -1,
		cur:   -1,
	}
	if m.fastW < 1 {
		m.fastW = 1
	}
	if m.slowW < m.fastW {
		m.slowW = m.fastW
	}
	return m
}

// Config returns the effective (default-filled) configuration.
func (m *SLOMonitor) Config() SLOConfig { return m.cfg }

// SetAudit routes alert transitions into the controller audit trail, so SLO
// alerts line up on the same clock as the scaling decisions they precede.
func (m *SLOMonitor) SetAudit(a *trace.Audit) {
	if m != nil {
		m.audit = a
	}
}

// Register publishes the monitor's state as registry metrics.
func (m *SLOMonitor) Register(reg *Registry) {
	if m == nil || reg == nil {
		return
	}
	m.goodC = reg.Counter("conscale_slo_good_total", "Requests meeting the SLO target.")
	m.badC = reg.Counter("conscale_slo_bad_total", "Requests missing the SLO target (slow or errored).")
	m.alertsC = reg.Counter("conscale_slo_alerts_total", "Burn-rate alert raise transitions.")
	m.shedsC = reg.Counter("conscale_slo_sheds_total", "Budget-burning requests attributed to admission drops.")
	m.fastG = reg.Gauge("conscale_slo_burn_fast", "Fast-window error-budget burn rate.")
	m.slowG = reg.Gauge("conscale_slo_burn_slow", "Slow-window error-budget burn rate.")
	m.activeG = reg.Gauge("conscale_slo_alert_active", "1 while a burn-rate alert is raised.")
}

// Observe ingests one completed request: its finish time, response time in
// seconds, and whether it succeeded. Calls must have non-decreasing now
// (simulation order).
func (m *SLOMonitor) Observe(now des.Time, rt float64, ok bool) {
	if m == nil {
		return
	}
	bad := !ok || rt > m.cfg.Target
	m.advance(int(now))
	i := m.cur - m.base
	if bad {
		m.bad[i]++
		m.fastBad++
		m.slowBad++
		m.badC.Inc()
	} else {
		m.good[i]++
		m.fastGood++
		m.slowGood++
		m.goodC.Inc()
	}

	budget := 1 - m.cfg.Objective
	fastBurn := burnRate(m.fastGood, m.fastBad, budget)
	slowBurn := burnRate(m.slowGood, m.slowBad, budget)
	m.fastG.Set(fastBurn)
	m.slowG.Set(slowBurn)

	active := len(m.alerts) > 0 && m.alerts[len(m.alerts)-1].Active
	switch {
	case !active && fastBurn >= m.cfg.Burn && slowBurn >= m.cfg.Burn:
		m.alerts = append(m.alerts, Alert{Start: now, End: now, Active: true, PeakBurn: fastBurn})
		m.alertsC.Inc()
		m.activeG.Set(1)
		m.audit.Record(trace.AuditEvent{
			Time: now, Kind: trace.AuditSLOAlert, Tier: "client",
			Cause: fmt.Sprintf("burn fast=%.1f slow=%.1f >= %.1f (budget %.2g)",
				fastBurn, slowBurn, m.cfg.Burn, budget),
			Value: fastBurn,
		})
	case active && fastBurn < m.cfg.Burn:
		al := &m.alerts[len(m.alerts)-1]
		al.End = now
		al.Active = false
		m.activeG.Set(0)
		m.audit.Record(trace.AuditEvent{
			Time: now, Kind: trace.AuditSLOClear, Tier: "client",
			Cause: fmt.Sprintf("burn fast=%.1f < %.1f", fastBurn, m.cfg.Burn),
			Value: fastBurn,
		})
	case active:
		al := &m.alerts[len(m.alerts)-1]
		al.End = now
		if fastBurn > al.PeakBurn {
			al.PeakBurn = fastBurn
		}
	}
}

// ObserveShed attributes one budget-burning request to an admission drop.
// It does NOT burn budget itself — the shed request's failed completion
// already flowed through Observe as ok=false and counted as bad there;
// this only maintains the deliberate-vs-organic split.
func (m *SLOMonitor) ObserveShed() {
	if m == nil {
		return
	}
	m.sheds++
	m.shedsC.Inc()
}

// Sheds returns how many budget-burning requests were admission drops.
func (m *SLOMonitor) Sheds() uint64 {
	if m == nil {
		return 0
	}
	return m.sheds
}

// advance rolls the per-second buckets forward to cover second sec,
// retiring buckets that fall out of each window's horizon.
func (m *SLOMonitor) advance(sec int) {
	if m.base < 0 {
		m.base, m.cur = sec, sec
		m.good = append(m.good, 0)
		m.bad = append(m.bad, 0)
		return
	}
	if sec < m.cur {
		sec = m.cur // defensive: the DES clock never goes backwards
	}
	for s := m.cur + 1; s <= sec; s++ {
		m.good = append(m.good, 0)
		m.bad = append(m.bad, 0)
		m.cur = s
		if i := s - m.fastW - m.base; i >= 0 {
			m.fastGood -= m.good[i]
			m.fastBad -= m.bad[i]
		}
		if i := s - m.slowW - m.base; i >= 0 {
			m.slowGood -= m.good[i]
			m.slowBad -= m.bad[i]
		}
	}
	// Trim buckets older than the slow window so long runs stay O(window).
	if drop := m.cur - m.slowW - m.base; drop > 4096 {
		m.good = append(m.good[:0:0], m.good[drop:]...)
		m.bad = append(m.bad[:0:0], m.bad[drop:]...)
		m.base += drop
	}
}

// burnRate maps a window's bad fraction onto budget multiples; an empty
// window burns nothing.
func burnRate(good, bad uint64, budget float64) float64 {
	total := good + bad
	if total == 0 || budget <= 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / budget
}

// Alerts returns a copy of the alert episodes (simulation goroutine only).
func (m *SLOMonitor) Alerts() []Alert {
	if m == nil {
		return nil
	}
	out := make([]Alert, len(m.alerts))
	copy(out, m.alerts)
	return out
}

// ActiveAlert reports whether an alert is currently raised.
func (m *SLOMonitor) ActiveAlert() bool {
	return m != nil && len(m.alerts) > 0 && m.alerts[len(m.alerts)-1].Active
}
