package telemetry

import (
	"fmt"
	"strconv"

	"conscale/internal/des"
	"conscale/internal/mgmt"
)

// RegisterMgmt exposes the registry's master switch on a management store as
// "telemetry.enabled" (GET/SET true|false), mirroring the runtime toggles
// the trace subsystem exposes.
func (r *Registry) RegisterMgmt(st *mgmt.Store) {
	if r == nil || st == nil {
		return
	}
	st.Register("telemetry.enabled",
		func() string { return strconv.FormatBool(r.Enabled()) },
		func(v string) error {
			on, err := strconv.ParseBool(v)
			if err != nil {
				return fmt.Errorf("telemetry.enabled: %w", err)
			}
			r.SetEnabled(on)
			return nil
		})
}

// RegisterMgmt exposes the scrape cadence as "telemetry.scrape_interval"
// (seconds, GET/SET); the running tick chain adopts a new value at its next
// fire.
func (s *Scraper) RegisterMgmt(st *mgmt.Store) {
	if s == nil || st == nil {
		return
	}
	st.Register("telemetry.scrape_interval",
		func() string { return strconv.FormatFloat(float64(s.Interval()), 'g', -1, 64) },
		func(v string) error {
			d, err := strconv.ParseFloat(v, 64)
			if err != nil || d <= 0 {
				return fmt.Errorf("telemetry.scrape_interval: want positive seconds, got %q", v)
			}
			s.SetInterval(des.Time(d))
			return nil
		})
}
