package telemetry

import (
	"bufio"
	"io"
	"strconv"
)

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): one # HELP / # TYPE block per family followed by its
// sample lines, histograms as cumulative le-buckets (non-empty buckets
// only, +Inf always) plus _sum and _count. Output order is deterministic:
// families in registration order, static series in registration order, then
// collector emissions. A disabled registry renders nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	return r.writeText(w, 0, false, true)
}

// writeText is the shared renderer. withTS appends the given millisecond
// timestamp to every sample line (the scrape-timeline form); withMeta
// controls the HELP/TYPE header lines.
func (r *Registry) writeText(w io.Writer, tsMillis int64, withTS, withMeta bool) error {
	if r == nil || !r.enabled.Load() {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range r.fams {
		if withMeta {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(f.help)
			bw.WriteByte('\n')
			bw.WriteString("# TYPE ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(f.kind.String())
			bw.WriteByte('\n')
		}
		for _, s := range f.series {
			writeSeries(bw, f, s, tsMillis, withTS)
		}
		emit := func(value float64, labels ...string) {
			writeSample(bw, f.name, labelKey(labels), value, tsMillis, withTS)
		}
		for _, coll := range f.collectors {
			coll(emit)
		}
	}
	return bw.Flush()
}

func writeSeries(bw *bufio.Writer, f *family, s *series, tsMillis int64, withTS bool) {
	switch {
	case s.fn != nil:
		writeSample(bw, f.name, s.labels, s.fn(), tsMillis, withTS)
	case s.ctr != nil:
		writeSample(bw, f.name, s.labels, float64(s.ctr.Value()), tsMillis, withTS)
	case s.gauge != nil:
		writeSample(bw, f.name, s.labels, s.gauge.Value(), tsMillis, withTS)
	case s.hist != nil:
		writeHistogram(bw, f.name, s.labels, s.hist, tsMillis, withTS)
	}
}

// writeHistogram renders the cumulative bucket form. Only non-empty buckets
// get a line (the full 450-bucket layout would drown the exposition), plus
// the mandatory +Inf bucket; cumulative counts keep the output a valid
// Prometheus histogram regardless of which buckets are elided.
func writeHistogram(bw *bufio.Writer, name, labels string, h *Histogram, tsMillis int64, withTS bool) {
	buckets, count, sum := h.snapshot()
	var cum uint64
	for i, n := range buckets {
		cum += n
		if n == 0 || i == histBuckets-1 {
			continue
		}
		writeSample(bw, name+"_bucket", mergeLabels(labels, "le", formatFloat(bucketUpper(i))), float64(cum), tsMillis, withTS)
	}
	writeSample(bw, name+"_bucket", mergeLabels(labels, "le", "+Inf"), float64(count), tsMillis, withTS)
	writeSample(bw, name+"_sum", labels, sum, tsMillis, withTS)
	writeSample(bw, name+"_count", labels, float64(count), tsMillis, withTS)
}

// mergeLabels appends one extra label pair to a pre-rendered label string.
func mergeLabels(labels, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

func writeSample(bw *bufio.Writer, name, labels string, value float64, tsMillis int64, withTS bool) {
	bw.WriteString(name)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(value))
	if withTS {
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(tsMillis, 10))
	}
	bw.WriteByte('\n')
}

// formatFloat renders a sample value the way Prometheus expects (shortest
// round-trippable representation).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
