package telemetry

import (
	"io"
	"math"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func buildTestRegistry() *Registry {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "Requests handled.", "tier", "app")
	c.Add(41)
	c.Inc()
	g := reg.Gauge("test_queue_depth", "Accept queue depth.", "server", "app-0")
	g.Set(7)
	h := reg.Histogram("test_rt_seconds", "Response time.", "tier", "app")
	for _, v := range []float64{0.01, 0.02, 0.02, 0.3, 1.5} {
		h.Observe(v)
	}
	reg.GaugeFunc("test_capacity", "Provisioned capacity.", func() float64 { return 3 })
	reg.Collect("test_inflight", "Per-backend in-flight.", KindGauge, func(emit func(float64, ...string)) {
		emit(2, "backend", "app-0")
		emit(5, "backend", "app-1")
	})
	return reg
}

// TestWritePromRoundTrip renders the registry and parses it back, checking
// family metadata, sample values, and the histogram's cumulative invariants
// survive the trip.
func TestWritePromRoundTrip(t *testing.T) {
	reg := buildTestRegistry()
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	checkExposition(t, sb.String(), false)
}

// checkExposition parses a rendered exposition and verifies the invariants
// shared by the plain and timestamped forms.
func checkExposition(t *testing.T, text string, wantTS bool) {
	t.Helper()
	fams, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition failed to parse: %v\n%s", err, text)
	}
	byName := map[string]PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	ctr, ok := byName["test_requests_total"]
	if !ok || ctr.Type != "counter" || ctr.Help != "Requests handled." {
		t.Fatalf("counter family mangled: %+v", ctr)
	}
	if len(ctr.Samples) != 1 || ctr.Samples[0].Value != 42 || ctr.Samples[0].Labels != `{tier="app"}` {
		t.Fatalf("counter sample mangled: %+v", ctr.Samples)
	}

	if g := byName["test_queue_depth"]; g.Type != "gauge" || len(g.Samples) != 1 || g.Samples[0].Value != 7 {
		t.Fatalf("gauge family mangled: %+v", g)
	}
	if gf := byName["test_capacity"]; len(gf.Samples) != 1 || gf.Samples[0].Value != 3 {
		t.Fatalf("gauge-func family mangled: %+v", gf)
	}

	infl := byName["test_inflight"]
	if len(infl.Samples) != 2 {
		t.Fatalf("collector emitted %d samples, want 2", len(infl.Samples))
	}
	if infl.Samples[0].Labels != `{backend="app-0"}` || infl.Samples[1].Value != 5 {
		t.Fatalf("collector samples mangled: %+v", infl.Samples)
	}

	hist, ok := byName["test_rt_seconds"]
	if !ok || hist.Type != "histogram" {
		t.Fatalf("histogram family mangled: %+v", hist)
	}
	var (
		bucketVals []float64
		les        []float64
		sum, count float64
		haveInf    bool
	)
	for _, s := range hist.Samples {
		switch s.Name {
		case "test_rt_seconds_bucket":
			bucketVals = append(bucketVals, s.Value)
			le := leOf(t, s.Labels)
			if le == "+Inf" {
				haveInf = true
				les = append(les, math.Inf(1))
			} else {
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("unparsable le %q", le)
				}
				les = append(les, f)
			}
		case "test_rt_seconds_sum":
			sum = s.Value
		case "test_rt_seconds_count":
			count = s.Value
		}
	}
	if !haveInf {
		t.Fatal("histogram missing the +Inf bucket")
	}
	if count != 5 {
		t.Fatalf("histogram count = %v, want 5", count)
	}
	if wantSum := 0.01 + 0.02 + 0.02 + 0.3 + 1.5; sum < wantSum-1e-9 || sum > wantSum+1e-9 {
		t.Fatalf("histogram sum = %v, want %v", sum, wantSum)
	}
	if !sort.Float64sAreSorted(les) {
		t.Fatalf("le bounds not ascending: %v", les)
	}
	if !sort.Float64sAreSorted(bucketVals) {
		t.Fatalf("cumulative bucket counts not monotone: %v", bucketVals)
	}
	if bucketVals[len(bucketVals)-1] != count {
		t.Fatalf("+Inf bucket %v != count %v", bucketVals[len(bucketVals)-1], count)
	}

	for _, f := range fams {
		for _, s := range f.Samples {
			if s.HasTS != wantTS {
				t.Fatalf("sample %s%s: HasTS=%v, want %v", s.Name, s.Labels, s.HasTS, wantTS)
			}
		}
	}
}

func leOf(t *testing.T, labels string) string {
	t.Helper()
	const marker = `le="`
	i := strings.Index(labels, marker)
	if i < 0 {
		t.Fatalf("bucket sample without le label: %s", labels)
	}
	rest := labels[i+len(marker):]
	return rest[:strings.IndexByte(rest, '"')]
}

// TestHandlerServesProm exercises the live-mode face over real HTTP.
func TestHandlerServesProm(t *testing.T) {
	reg := buildTestRegistry()
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q, want text format 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	checkExposition(t, string(body), false)
}

func TestDisabledRegistryRendersNothing(t *testing.T) {
	reg := buildTestRegistry()
	reg.SetEnabled(false)
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("disabled registry rendered %d bytes", sb.Len())
	}
}

func TestParserRejectsMalformed(t *testing.T) {
	bad := []string{
		"metric{le=\"0.1\" 3\n",         // unterminated label set... actually missing }
		"9metric 3\n",                   // bad name
		"metric three\n",                // bad value
		"metric 3 4 5\n",                // trailing garbage
		"metric{le=unquoted} 3\n",       // unquoted label value
		"# TYPE metric exponentiator\n", // unknown type
	}
	for _, in := range bad {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("ParseProm accepted malformed input %q", in)
		}
	}
}
