package telemetry

import (
	"bytes"
	"io"
	"math"
	"sync/atomic"

	"conscale/internal/des"
)

// Scraper snapshots a registry at a fixed simulated-time interval into an
// OpenMetrics-style timeline: the first scrape carries the # HELP / # TYPE
// metadata, every sample line carries its virtual-clock timestamp in
// milliseconds, and WriteOpenMetrics terminates the stream with # EOF.
//
// A scrape only reads registry state (instrument values, gauge callbacks,
// collectors), draws no randomness, and mutates nothing the simulation can
// observe, so arming a scraper cannot perturb a run: the timeline CSV of an
// enabled-telemetry run is byte-identical to a disabled run's.
type Scraper struct {
	reg *Registry
	eng *des.Engine

	// intervalBits holds the des.Time interval as float64 bits so a
	// management agent can retune the cadence live; the new interval takes
	// effect when the next tick schedules its successor.
	intervalBits atomic.Uint64
	scrapes      atomic.Uint64
	stopped      bool
	started      bool

	buf bytes.Buffer
}

// NewScraper couples a registry to an engine at the given interval
// (non-positive defaults to 5 s of virtual time).
func NewScraper(eng *des.Engine, reg *Registry, every des.Time) *Scraper {
	if every <= 0 {
		every = 5 * des.Second
	}
	s := &Scraper{reg: reg, eng: eng}
	s.intervalBits.Store(math.Float64bits(float64(every)))
	return s
}

// Interval returns the live scrape cadence.
func (s *Scraper) Interval() des.Time {
	if s == nil {
		return 0
	}
	return des.Time(math.Float64frombits(s.intervalBits.Load()))
}

// SetInterval retunes the cadence (safe from any goroutine; non-positive
// values are ignored). The running tick chain picks it up at its next fire.
func (s *Scraper) SetInterval(d des.Time) {
	if s == nil || d <= 0 {
		return
	}
	s.intervalBits.Store(math.Float64bits(float64(d)))
}

// Start arms the scrape chain. The first scrape fires one interval from
// now. Start is idempotent.
func (s *Scraper) Start() {
	if s == nil || s.started {
		return
	}
	s.started = true
	s.stopped = false
	s.schedule()
}

// Stop disarms the chain; the pending tick becomes a no-op.
func (s *Scraper) Stop() {
	if s == nil {
		return
	}
	s.stopped = true
	s.started = false
}

func (s *Scraper) schedule() {
	s.eng.After(s.Interval(), func() {
		if s.stopped {
			return
		}
		s.scrapeOnce()
		s.schedule()
	})
}

// scrapeOnce appends one timestamped exposition block to the timeline.
func (s *Scraper) scrapeOnce() {
	if !s.reg.Enabled() {
		return // paused via telemetry.enabled; the chain keeps ticking
	}
	ts := int64(math.Round(float64(s.eng.Now()) * 1000))
	first := s.scrapes.Load() == 0
	s.reg.writeText(&s.buf, ts, true, first) //nolint:errcheck // bytes.Buffer cannot fail
	s.scrapes.Add(1)
}

// Scrapes returns how many snapshots have been taken.
func (s *Scraper) Scrapes() int {
	if s == nil {
		return 0
	}
	return int(s.scrapes.Load())
}

// WriteOpenMetrics writes the accumulated timeline followed by the
// OpenMetrics end-of-stream marker.
func (s *Scraper) WriteOpenMetrics(w io.Writer) error {
	if s == nil {
		return nil
	}
	if _, err := w.Write(s.buf.Bytes()); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}
