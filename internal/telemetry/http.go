package telemetry

import "net/http"

// Handler serves the registry in the Prometheus text exposition format —
// the live-mode face of the same registry the sim-time scraper snapshots.
// Mount it at /metrics and point a stock Prometheus scrape config at it
// (see the README quickstart). A nil registry serves an empty exposition.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteProm(w) //nolint:errcheck // client disconnects are not actionable
	})
}
