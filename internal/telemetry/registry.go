// Package telemetry is the reproduction's continuous signal surface: a
// concurrency-safe metrics registry (counters, gauges, and log-linear
// histograms with bounded relative error), a deterministic sim-time scraper
// that snapshots the registry into an OpenMetrics-style timeline, a
// Prometheus text-format exposition endpoint for live mode, and a
// multi-window SLO burn-rate monitor over the paper's p99 < 300 ms target.
//
// The package follows the same observation discipline as internal/trace:
// every hot-path method is nil-receiver safe and allocation-free when the
// registry is disabled (pinned by an AllocsPerRun test), instrumentation
// only ever *reads* simulation state — it never draws randomness and never
// mutates scheduling — so an enabled-telemetry run is byte-identical to a
// disabled one on the timeline CSV. The registry itself is dual-clock: in
// simulation mode the Scraper snapshots it on virtual time; in live mode
// Handler serves the identical registry over real HTTP.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family for exposition.
type Kind uint8

// The metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Collector emits a family's dynamic series at collection time (per-VM
// gauges whose population changes as the cluster scales). It runs under the
// registry's read lock: it must not register new metrics, and it must emit
// in a deterministic order (sort map keys) so exposition output is stable.
type Collector func(emit func(value float64, labels ...string))

// series is one static instrument inside a family.
type series struct {
	labels string // pre-rendered `{k="v",...}` or ""
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64 // CounterFunc / GaugeFunc
}

// family groups every series sharing one metric name.
type family struct {
	name, help string
	kind       Kind
	series     []*series
	collectors []Collector
}

// Registry holds metric families. All methods are safe for concurrent use;
// a nil *Registry is a valid, inert receiver whose constructors return nil
// instruments (whose methods are in turn no-ops). Registration is
// idempotent: asking for an existing (name, labels) instrument returns the
// original, so per-VM instruments survive re-registration.
type Registry struct {
	enabled atomic.Bool

	mu     sync.RWMutex
	fams   []*family
	byName map[string]*family
	byKey  map[string]*series
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{
		byName: make(map[string]*family),
		byKey:  make(map[string]*series),
	}
	r.enabled.Store(true)
	return r
}

// SetEnabled flips the registry live (safe from any goroutine). While
// disabled every hot-path update is dropped without allocating and the
// exposition output is empty.
func (r *Registry) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Enabled reports the live switch.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// labelKey renders variadic key/value pairs into a canonical (sorted)
// Prometheus label string. Panics on odd pair counts: label sets are wired
// at registration time, so a mismatch is a programming error.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: odd label key/value count")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// register finds or creates the (name, labels) series in a family of the
// given kind.
func (r *Registry) register(name, help string, kind Kind, labels []string) *series {
	ls := labelKey(labels)
	key := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		if f := r.byName[name]; f != nil && f.kind != kind {
			panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.kind, kind))
		}
		return s
	}
	f := r.family(name, help, kind)
	s := &series{labels: ls}
	f.series = append(f.series, s)
	r.byKey[key] = s
	return s
}

// family finds or creates the named family (caller holds the write lock).
func (r *Registry) family(name, help string, kind Kind) *family {
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.kind, kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// Counter registers (or finds) a monotonically increasing counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.register(name, help, KindCounter, labels)
	if s.ctr == nil {
		s.ctr = &Counter{reg: r}
	}
	return s.ctr
}

// Gauge registers (or finds) a settable gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.register(name, help, KindGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{reg: r}
	}
	return s.gauge
}

// Histogram registers (or finds) a log-linear response-time histogram.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.register(name, help, KindHistogram, labels)
	if s.hist == nil {
		s.hist = &Histogram{reg: r}
	}
	return s.hist
}

// GaugeFunc registers a gauge evaluated at collection time. fn must be safe
// to call from the scraping goroutine and must only read state.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil || fn == nil {
		return
	}
	r.register(name, help, KindGauge, labels).fn = fn
}

// CounterFunc registers a counter whose cumulative value is read from fn at
// collection time (lifetime totals an existing component already tracks).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil || fn == nil {
		return
	}
	r.register(name, help, KindCounter, labels).fn = fn
}

// Collect registers a dynamic family: fn re-emits the current series set on
// every collection, which is how per-VM metrics follow scale-out/in without
// unregistration bookkeeping.
func (r *Registry) Collect(name, help string, kind Kind, fn Collector) {
	if r == nil || fn == nil {
		return
	}
	if kind == KindHistogram {
		panic("telemetry: histogram collectors are not supported")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kind)
	f.collectors = append(f.collectors, fn)
}

// Families returns the number of registered metric families.
func (r *Registry) Families() int {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.fams)
}

// Counter is a monotonically increasing counter. Nil receivers and disabled
// registries make every method an allocation-free no-op.
type Counter struct {
	reg *Registry
	n   atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	if c == nil || !c.reg.enabled.Load() {
		return
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a settable instantaneous value. Nil receivers and disabled
// registries make every method an allocation-free no-op.
type Gauge struct {
	reg  *Registry
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.reg.enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add offsets the gauge by delta (lock-free).
func (g *Gauge) Add(delta float64) {
	if g == nil || !g.reg.enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
