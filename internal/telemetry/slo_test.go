package telemetry

import (
	"testing"

	"conscale/internal/des"
	"conscale/internal/trace"
)

// feed pushes rps requests per second with the given bad fraction over
// [from, to) seconds of simulated time.
func feed(m *SLOMonitor, from, to des.Time, rps int, badFrac float64) {
	for sec := from; sec < to; sec += des.Second {
		bad := int(badFrac * float64(rps))
		for i := 0; i < rps; i++ {
			rt := 0.05
			if i < bad {
				rt = 0.8 // over the 300 ms target
			}
			m.Observe(sec, rt, true)
		}
	}
}

// TestSLOAlertRaisesOnBurst checks the two-window mechanics: a healthy
// baseline raises nothing, a hard latency burst raises once both windows
// burn, and recovery clears the alert once the fast window drains.
func TestSLOAlertRaisesOnBurst(t *testing.T) {
	m := NewSLOMonitor(SLOConfig{})
	audit := trace.NewAudit()
	m.SetAudit(audit)
	cfg := m.Config()
	if cfg.Target != 0.3 || cfg.Objective != 0.99 || cfg.Burn != 4 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}

	// 120 s healthy: bad fraction 0 — no alert possible.
	feed(m, 0, 120*des.Second, 50, 0)
	if len(m.Alerts()) != 0 {
		t.Fatalf("healthy traffic raised %d alerts", len(m.Alerts()))
	}

	// Burst: 50% of requests breach the target. Burn = 0.5/0.01 = 50 >> 4.
	// The slow (60 s) window is the laggard: it needs enough bad seconds for
	// its average to cross 4 * 0.01 = 4% bad.
	feed(m, 120*des.Second, 150*des.Second, 50, 0.5)
	alerts := m.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("burst raised %d alerts, want 1", len(alerts))
	}
	if !alerts[0].Active {
		t.Fatal("alert should still be active mid-burst")
	}
	// The slow window needs ~5 bad seconds (60 * 4% / 50%) to cross; the
	// alert must raise within the first 10 s of the burst.
	if alerts[0].Start < 120*des.Second || alerts[0].Start > 130*des.Second {
		t.Fatalf("alert start = %v, want within [120, 130] s", alerts[0].Start)
	}
	if alerts[0].PeakBurn < 4 {
		t.Fatalf("peak burn = %v, want >= 4", alerts[0].PeakBurn)
	}

	// Recovery: healthy traffic drains the 15 s fast window and clears.
	feed(m, 150*des.Second, 200*des.Second, 50, 0)
	alerts = m.Alerts()
	if len(alerts) != 1 || alerts[0].Active {
		t.Fatalf("alert did not clear: %+v", alerts)
	}
	if alerts[0].End < 150*des.Second || alerts[0].End > 170*des.Second {
		t.Fatalf("alert end = %v, want within [150, 170] s", alerts[0].End)
	}
	if m.ActiveAlert() {
		t.Fatal("ActiveAlert after clear")
	}

	// Both transitions audited with the new kinds.
	var raised, cleared int
	for _, e := range audit.Events() {
		switch e.Kind {
		case trace.AuditSLOAlert:
			raised++
			if e.Tier != "client" || e.Value < 4 {
				t.Fatalf("bad alert audit event: %+v", e)
			}
		case trace.AuditSLOClear:
			cleared++
		}
	}
	if raised != 1 || cleared != 1 {
		t.Fatalf("audit transitions raised=%d cleared=%d, want 1/1", raised, cleared)
	}
}

// TestSLOShortBlipSuppressed checks the reason for the slow window: a blip
// shorter than the slow window's crossing point must not page.
func TestSLOShortBlipSuppressed(t *testing.T) {
	m := NewSLOMonitor(SLOConfig{})
	feed(m, 0, 120*des.Second, 50, 0)
	// 2 s at 50% bad: fast window burns hot, but the slow window average is
	// 2*0.5/60 = 1.7% bad → burn 1.7 < 4.
	feed(m, 120*des.Second, 122*des.Second, 50, 0.5)
	feed(m, 122*des.Second, 180*des.Second, 50, 0)
	if n := len(m.Alerts()); n != 0 {
		t.Fatalf("short blip raised %d alerts, want 0", n)
	}
}

// TestSLOErrorsCountAsBad checks the error path: failures burn budget even
// when fast.
func TestSLOErrorsCountAsBad(t *testing.T) {
	m := NewSLOMonitor(SLOConfig{})
	for sec := des.Time(0); sec < 120*des.Second; sec += des.Second {
		for i := 0; i < 50; i++ {
			m.Observe(sec, 0.01, i >= 25) // half the requests error
		}
	}
	if len(m.Alerts()) != 1 {
		t.Fatalf("error storm raised %d alerts, want 1", len(m.Alerts()))
	}
}

// TestSLORegistryMetrics checks the registered instruments track the
// monitor.
func TestSLORegistryMetrics(t *testing.T) {
	reg := NewRegistry()
	m := NewSLOMonitor(SLOConfig{})
	m.Register(reg)
	feed(m, 0, 100*des.Second, 10, 0.5)
	good := reg.Counter("conscale_slo_good_total", "")
	bad := reg.Counter("conscale_slo_bad_total", "")
	if good.Value() != 500 || bad.Value() != 500 {
		t.Fatalf("good/bad = %d/%d, want 500/500", good.Value(), bad.Value())
	}
	if reg.Gauge("conscale_slo_alert_active", "").Value() != 1 {
		t.Fatal("alert_active gauge not set during alert")
	}
	if reg.Counter("conscale_slo_alerts_total", "").Value() != 1 {
		t.Fatal("alerts_total counter not incremented")
	}
	if reg.Gauge("conscale_slo_burn_fast", "").Value() < 4 {
		t.Fatal("burn_fast gauge not tracking")
	}
}

// TestSLONilSafety: a nil monitor ignores everything.
func TestSLONilSafety(t *testing.T) {
	var m *SLOMonitor
	m.Observe(0, 1, true)
	m.SetAudit(nil)
	m.Register(nil)
	if m.Alerts() != nil || m.ActiveAlert() {
		t.Fatal("nil monitor not inert")
	}
}

// TestSLOCountsSheds: a shed burns budget through the ordinary
// Observe(ok=false) path; ObserveShed only maintains the
// deliberate-vs-organic attribution split on top.
func TestSLOCountsSheds(t *testing.T) {
	reg := NewRegistry()
	m := NewSLOMonitor(SLOConfig{})
	m.Register(reg)
	for sec := des.Time(0); sec < 120*des.Second; sec += des.Second {
		for i := 0; i < 50; i++ {
			shed := i >= 25 // half the traffic is dropped at admission
			m.Observe(sec, 0, !shed)
			if shed {
				m.ObserveShed()
			}
		}
	}
	if len(m.Alerts()) != 1 {
		t.Fatalf("a 50%% shed storm raised %d alerts, want 1 — sheds must burn budget", len(m.Alerts()))
	}
	if m.Sheds() != 25*120 {
		t.Fatalf("sheds = %d, want %d", m.Sheds(), 25*120)
	}
	if got := reg.Counter("conscale_slo_sheds_total", "").Value(); got != 25*120 {
		t.Fatalf("conscale_slo_sheds_total = %d, want %d", got, 25*120)
	}
	if got := reg.Counter("conscale_slo_bad_total", "").Value(); got < 25*120 {
		t.Fatalf("bad_total = %d — shed requests did not count against the budget", got)
	}

	// Nil safety for the new surface.
	var nilM *SLOMonitor
	nilM.ObserveShed()
	if nilM.Sheds() != 0 {
		t.Fatal("nil monitor not inert for sheds")
	}
}
