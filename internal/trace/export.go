package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"conscale/internal/des"
)

// ChromeEvent is one entry of the Chrome trace-event format ("X" complete
// events for spans and segments, "i" instant events for audit entries).
// The format is what Perfetto and chrome://tracing load directly:
// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  uint64         `json:"pid"`
	Tid  uint64         `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object envelope of the trace-event format.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(t des.Time) float64 { return float64(t) * 1e6 }

// BuildChromeTrace converts span trees plus the audit trail into the
// trace-event document. Each request becomes one pid (its root span ID);
// each span of the tree gets its own tid, depth-first, so the waterfall
// nests naturally in the viewer. Audit events land on pid 0 as global
// instants.
func BuildChromeTrace(roots []*Span, audit []AuditEvent) ChromeTrace {
	doc := ChromeTrace{DisplayTimeUnit: "ms", TraceEvents: []ChromeEvent{}}
	for _, root := range roots {
		if root == nil {
			continue
		}
		pid := root.ID
		tid := uint64(0)
		root.Walk(func(sp *Span, depth int) {
			tid++
			name := sp.Server
			if name == "" {
				name = "unrouted"
			}
			if sp.Op != "" {
				name = sp.Op + "@" + name
			}
			ev := ChromeEvent{
				Name: name,
				Cat:  "span",
				Ph:   "X",
				Ts:   usec(sp.Start),
				Dur:  usec(sp.End - sp.Start),
				Pid:  pid,
				Tid:  tid,
				Args: map[string]any{
					"outcome": sp.Outcome.String(),
					"tier":    TierOf(sp.Server).String(),
				},
			}
			if sp.LB != "" {
				ev.Args["lb"] = sp.LB
				ev.Args["pick_in_flight"] = sp.PickInFlight
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
			for _, seg := range sp.Segs {
				doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
					Name: seg.Kind.String(),
					Cat:  "seg",
					Ph:   "X",
					Ts:   usec(seg.Start),
					Dur:  usec(seg.End - seg.Start),
					Pid:  pid,
					Tid:  tid,
				})
			}
		})
	}
	for _, e := range audit {
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: e.Kind.String(),
			Cat:  "audit",
			Ph:   "i",
			Ts:   usec(e.Time),
			S:    "g",
			Args: map[string]any{
				"tier":   e.Tier,
				"cause":  e.Cause,
				"detail": e.Detail,
				"value":  e.Value,
			},
		})
	}
	return doc
}

// WriteChromeTrace writes the Perfetto-loadable JSON document.
func WriteChromeTrace(w io.Writer, roots []*Span, audit []AuditEvent) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(BuildChromeTrace(roots, audit))
}

// segLetter maps each segment kind to its waterfall glyph.
var segLetter = [NumSegKinds]byte{
	SegQueue:    'q',
	SegPoolWait: 'p',
	SegCPUWait:  'w',
	SegCPU:      'C',
	SegDiskWait: 'k',
	SegDisk:     'D',
	SegDwell:    's',
	SegNet:      'n',
}

// WaterfallLegend explains the glyphs of WriteWaterfall.
const WaterfallLegend = "q=queue p=pool-wait w=cpu-wait C=cpu k=disk-wait D=disk s=dwell n=net .=downstream"

// WriteWaterfall renders one span tree as an ASCII waterfall: one bar per
// span, scaled to the root's wall time, each column showing the dominant
// segment kind of that slice ('.' where the span was blocked on a child).
func WriteWaterfall(w io.Writer, root *Span) error {
	if root == nil {
		return nil
	}
	const width = 64
	span := float64(root.End - root.Start)
	if span <= 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "trace #%d %s %s rt=%.1fms  [%s]\n",
		root.ID, root.Op, root.Outcome, span*1000, WaterfallLegend); err != nil {
		return err
	}
	var werr error
	root.Walk(func(sp *Span, depth int) {
		if werr != nil {
			return
		}
		bar := make([]byte, width)
		for i := range bar {
			bar[i] = ' '
		}
		col := func(t des.Time) int {
			c := int(float64(t-root.Start) / span * width)
			if c < 0 {
				c = 0
			}
			if c > width {
				c = width
			}
			return c
		}
		for i, hi := col(sp.Start), col(sp.End); i < hi; i++ {
			bar[i] = '.'
		}
		for _, seg := range sp.Segs {
			lo, hi := col(seg.Start), col(seg.End)
			if hi == lo && hi < width {
				hi = lo + 1
			}
			for i := lo; i < hi && i < width; i++ {
				bar[i] = segLetter[seg.Kind]
			}
		}
		name := sp.Server
		if name == "" {
			name = "(unrouted)"
		}
		wait, svc := 0.0, 0.0
		for _, seg := range sp.Segs {
			d := float64(seg.End - seg.Start)
			if seg.Kind.IsWait() {
				wait += d
			} else {
				svc += d
			}
		}
		_, werr = fmt.Fprintf(w, "  %s%-*s |%s| wait %.1fms svc %.1fms\n",
			strings.Repeat("  ", depth), 14-2*depth, name, bar, wait*1000, svc*1000)
	})
	return werr
}

// WriteBlameCSV writes the blame table in long form: one row per
// (window, class, tier, component) with its mean per-request milliseconds
// and its share of the class's response time.
func WriteBlameCSV(w io.Writer, label string, rows []BlameRow) error {
	if _, err := fmt.Fprintln(w, "mode,window_s,class,requests,sheds,rt_ms,tier,component,ms,share"); err != nil {
		return err
	}
	for _, r := range rows {
		for tier := TierID(0); tier < NumTiers; tier++ {
			for kind := SegKind(0); kind < NumSegKinds; kind++ {
				ms := r.Comp[tier][kind] * 1000
				if ms < 1e-4 {
					continue
				}
				share := 0.0
				if r.RT > 0 {
					share = r.Comp[tier][kind] / r.RT
				}
				if _, err := fmt.Fprintf(w, "%s,%.0f,%s,%d,%d,%.2f,%s,%s,%.3f,%.4f\n",
					label, float64(r.Window), r.Class, r.Requests, r.Sheds, r.RT*1000,
					tier, kind, ms, share); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// FormatSimTime renders a simulated timestamp as mm:ss.mmm (minutes grow
// past two digits as needed) — the human-readable clock shared by the
// audit CSV and the forensics episode reports, so rows from both can be
// eyeballed side by side.
func FormatSimTime(t des.Time) string {
	sign := ""
	s := float64(t)
	if s < 0 {
		sign, s = "-", -s
	}
	min := int(s) / 60
	return fmt.Sprintf("%s%02d:%06.3f", sign, min, s-float64(min*60))
}

// WriteAuditCSV writes the controller decision trail as CSV. time_s is
// the raw simulated-seconds clock; time_hms repeats it as mm:ss.mmm for
// eyeballing against episode reports.
func WriteAuditCSV(w io.Writer, events []AuditEvent) error {
	if _, err := fmt.Fprintln(w, "time_s,time_hms,kind,tier,cause,detail,qlower,qupper,value"); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%.3f,%s,%s,%s,%s,%s,%d,%d,%.3f\n",
			float64(e.Time), FormatSimTime(e.Time), e.Kind, e.Tier, csvField(e.Cause), csvField(e.Detail),
			e.Qlower, e.Qupper, e.Value); err != nil {
			return err
		}
	}
	return nil
}

// csvField keeps annotation strings CSV-safe (causes contain no quotes;
// commas become semicolons rather than dragging in full quoting).
func csvField(s string) string { return strings.ReplaceAll(s, ",", ";") }
