package trace

import (
	"fmt"
	"sync/atomic"

	"conscale/internal/des"
)

// AuditKind labels one Decision Controller action class.
type AuditKind uint8

// The audited controller actions. Every scaling, estimation, pool, and
// repair decision lands here with its cause, on the same simulated clock
// as the request spans, so latency episodes can be lined up against the
// decisions that caused or cured them.
const (
	// AuditThresholdTrigger fires when a sustained CPU breach (or SLA tail
	// breach) arms a scale-out.
	AuditThresholdTrigger AuditKind = iota
	// AuditCooldownSkip records a trigger that was suppressed by a pending
	// scale or an active cooldown.
	AuditCooldownSkip
	// AuditScaleOutLaunch marks a VM launch (preparation period starts).
	AuditScaleOutLaunch
	// AuditScaleOutReady marks the launched VM entering service.
	AuditScaleOutReady
	// AuditScaleOutDenied marks a launch refused at tier capacity.
	AuditScaleOutDenied
	// AuditScaleUp marks vertical scaling (a live VM gained a vCPU).
	AuditScaleUp
	// AuditScaleIn marks a VM retirement.
	AuditScaleIn
	// AuditPoolResize marks a soft-resource actuation (thread pool or
	// connection pool); Value carries the new setting.
	AuditPoolResize
	// AuditSCTEstimate records one refreshed per-server SCT estimate with
	// its rational range [Qlower, Qupper].
	AuditSCTEstimate
	// AuditRepair marks the dark-tier repair path re-provisioning a tier
	// emptied by external faults.
	AuditRepair
	// AuditFault records a chaos fault activation (the disturbance the
	// controller is reacting to).
	AuditFault
	// AuditSLOAlert marks an SLO burn-rate alert raising: both burn
	// windows crossed the threshold (Value carries the fast-window burn).
	AuditSLOAlert
	// AuditSLOClear marks the alert clearing (fast-window burn back under
	// the threshold).
	AuditSLOClear
	// AuditTwinDrift marks the analytical twin flagging sustained
	// model/measurement divergence (Value carries the RT relative error
	// at the crossing; Cause classifies it against forensics episodes).
	AuditTwinDrift
	// AuditTwinClear marks the twin's drift flag clearing (Value carries
	// the episode's worst relative error).
	AuditTwinClear
)

// String implements fmt.Stringer.
func (k AuditKind) String() string {
	switch k {
	case AuditThresholdTrigger:
		return "threshold-trigger"
	case AuditCooldownSkip:
		return "cooldown-skip"
	case AuditScaleOutLaunch:
		return "scale-out-launch"
	case AuditScaleOutReady:
		return "scale-out-ready"
	case AuditScaleOutDenied:
		return "scale-out-denied"
	case AuditScaleUp:
		return "scale-up"
	case AuditScaleIn:
		return "scale-in"
	case AuditPoolResize:
		return "pool-resize"
	case AuditSCTEstimate:
		return "sct-estimate"
	case AuditRepair:
		return "repair"
	case AuditFault:
		return "fault"
	case AuditSLOAlert:
		return "slo-alert"
	case AuditSLOClear:
		return "slo-clear"
	case AuditTwinDrift:
		return "twin-drift"
	case AuditTwinClear:
		return "twin-clear"
	default:
		return "audit?"
	}
}

// AuditEvent is one annotated controller action.
type AuditEvent struct {
	Time des.Time
	Kind AuditKind
	// Tier names the acted-on tier ("tomcat", "mysql", ...).
	Tier string
	// Cause explains why the controller acted (the trigger condition).
	Cause string
	// Detail names what was acted on (server name, setting transition).
	Detail string
	// Qlower/Qupper carry the rational range of AuditSCTEstimate events.
	Qlower, Qupper int
	// Value carries the event's scalar: triggering CPU, new pool size,
	// new core count, or estimated plateau throughput, per Kind.
	Value float64
}

// String renders the event for logs.
func (e AuditEvent) String() string {
	s := fmt.Sprintf("[%7.1fs] %-17s %-9s", float64(e.Time), e.Kind, e.Tier)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	if e.Cause != "" {
		s += " (" + e.Cause + ")"
	}
	return s
}

// Audit is the append-only controller decision trail. Record runs on the
// simulation goroutine; the enable switch and the event counter are
// atomics so a management agent can toggle and poll it live. A nil *Audit
// is a valid, inert receiver.
type Audit struct {
	enabled  atomic.Bool
	count    atomic.Uint64
	events   []AuditEvent
	observer func(AuditEvent)
}

// NewAudit returns an enabled, empty trail.
func NewAudit() *Audit {
	a := &Audit{}
	a.enabled.Store(true)
	return a
}

// SetEnabled flips recording live (safe from any goroutine).
func (a *Audit) SetEnabled(on bool) {
	if a != nil {
		a.enabled.Store(on)
	}
}

// Enabled reports the live switch.
func (a *Audit) Enabled() bool { return a != nil && a.enabled.Load() }

// SetObserver installs a tap called synchronously from Record with every
// event that lands on the trail (simulation goroutine only — set it
// before the run starts). The forensics flight recorder uses this to see
// decisions, faults, and SCT estimates live without polling; the observer
// must only read, never schedule or draw randomness.
func (a *Audit) SetObserver(fn func(AuditEvent)) {
	if a != nil {
		a.observer = fn
	}
}

// Record appends one event (no-op when nil or disabled).
func (a *Audit) Record(e AuditEvent) {
	if a == nil || !a.enabled.Load() {
		return
	}
	a.events = append(a.events, e)
	a.count.Add(1)
	if a.observer != nil {
		a.observer(e)
	}
}

// Len returns the recorded event count (safe from any goroutine).
func (a *Audit) Len() int {
	if a == nil {
		return 0
	}
	return int(a.count.Load())
}

// Events returns a copy of the trail (simulation goroutine only).
func (a *Audit) Events() []AuditEvent {
	if a == nil {
		return nil
	}
	out := make([]AuditEvent, len(a.events))
	copy(out, a.events)
	return out
}
