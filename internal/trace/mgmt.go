package trace

import (
	"fmt"
	"strconv"
	"strings"

	"conscale/internal/mgmt"
)

// RegisterMgmt exposes the tracer's live controls and counters through a
// management Store (the same JMX-substitute path that reconfigures pools):
//
//	trace.enabled  RW  "true"/"false" — the head-sampling master switch
//	trace.sample   RW  sampling probability in [0, 1]
//	trace.started  RO  requests offered to the sampler
//	trace.sampled  RO  requests traced
//	audit.enabled  RW  controller audit trail switch
//	audit.events   RO  recorded audit event count
//
// The setters only touch the tracer's atomics, so an Agent can drive them
// from its connection goroutines while the simulation runs.
func (t *Tracer) RegisterMgmt(s *mgmt.Store) {
	if t == nil || s == nil {
		return
	}
	s.Register("trace.enabled",
		func() string { return strconv.FormatBool(t.Enabled()) },
		func(v string) error {
			on, err := strconv.ParseBool(strings.TrimSpace(v))
			if err != nil {
				return fmt.Errorf("trace.enabled: %w", err)
			}
			t.SetEnabled(on)
			return nil
		})
	s.Register("trace.sample",
		func() string { return strconv.FormatFloat(t.SampleRate(), 'g', -1, 64) },
		func(v string) error {
			r, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return fmt.Errorf("trace.sample: %w", err)
			}
			if r < 0 || r > 1 {
				return fmt.Errorf("trace.sample: %v outside [0, 1]", r)
			}
			t.SetSampleRate(r)
			return nil
		})
	s.Register("trace.started", func() string {
		started, _, _, _ := t.Stats()
		return strconv.FormatUint(started, 10)
	}, nil)
	s.Register("trace.sampled", func() string {
		_, sampled, _, _ := t.Stats()
		return strconv.FormatUint(sampled, 10)
	}, nil)
	a := t.Audit()
	s.Register("audit.enabled",
		func() string { return strconv.FormatBool(a.Enabled()) },
		func(v string) error {
			on, err := strconv.ParseBool(strings.TrimSpace(v))
			if err != nil {
				return fmt.Errorf("audit.enabled: %w", err)
			}
			a.SetEnabled(on)
			return nil
		})
	s.Register("audit.events", func() string {
		return strconv.Itoa(a.Len())
	}, nil)
}
