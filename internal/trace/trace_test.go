package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"conscale/internal/des"
)

// endToEnd plays one synthetic request through a tracer: net edge, queue
// wait, CPU burst, a pool-waited downstream DB call with disk service, and
// a dwell, ending at start+rt.
func endToEnd(tr *Tracer, start, rt des.Time, ok bool) *Span {
	root := tr.StartRequest("browse", start)
	if root == nil {
		return nil
	}
	root.AddSeg(SegNet, start, start+1)
	root.EnterServer("web1", start+1)
	root.NotePick("lb-web", 2)
	root.Admitted(start + 2)
	root.AddProc(SegCPUWait, SegCPU, start+2, 1, start+4)
	root.AddSeg(SegPoolWait, start+4, start+5)
	child := root.StartChild(start + 5)
	child.EnterServer("mysql1", start+5)
	child.Admitted(start + 5)
	child.AddProc(SegDiskWait, SegDisk, start+5, 1, start+7)
	child.Finish(start+7, OutcomeOK)
	root.AddSeg(SegDwell, start+7, start+8)
	tr.EndRequest(root, start+rt, ok)
	return root
}

func TestDisabledTracerHotPathIsAllocationFree(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	tr.SetEnabled(false)
	hot := func() {
		sp := tr.StartRequest("browse", 1)
		sp.EnterServer("web1", 1)
		sp.NotePick("lb", 3)
		sp.Admitted(2)
		sp.AddSeg(SegDwell, 2, 3)
		sp.AddProc(SegCPUWait, SegCPU, 2, 1, 3)
		child := sp.StartChild(3)
		child.EnterServer("mysql1", 3)
		child.Finish(4, OutcomeOK)
		sp.Finish(4, OutcomeOK)
		tr.EndRequest(sp, 4, true)
	}
	if allocs := testing.AllocsPerRun(1000, hot); allocs != 0 {
		t.Fatalf("disabled tracer hot path allocates %.1f/op, want 0", allocs)
	}
	tr = nil // a nil tracer must be just as free
	if allocs := testing.AllocsPerRun(1000, hot); allocs != 0 {
		t.Fatalf("nil tracer hot path allocates %.1f/op, want 0", allocs)
	}
}

func TestSamplingIsDeterministicPerSeed(t *testing.T) {
	a := New(Config{Seed: 9, SampleRate: 0.5})
	b := New(Config{Seed: 9, SampleRate: 0.5})
	c := New(Config{Seed: 10, SampleRate: 0.5})
	var pa, pb, pc []bool
	for i := 0; i < 256; i++ {
		pa = append(pa, a.StartRequest("x", des.Time(i)) != nil)
		pb = append(pb, b.StartRequest("x", des.Time(i)) != nil)
		pc = append(pc, c.StartRequest("x", des.Time(i)) != nil)
	}
	same, diff := true, false
	for i := range pa {
		same = same && pa[i] == pb[i]
		diff = diff || pa[i] != pc[i]
	}
	if !same {
		t.Fatal("same seed sampled different requests")
	}
	if !diff {
		t.Fatal("different seeds sampled identically")
	}
}

func TestSamplingStreamSurvivesLiveRateChanges(t *testing.T) {
	// The sampler draws unconditionally past the enable gate, so a tracer
	// whose rate was parked at 0 for a while makes the same decisions
	// afterwards as one that never changed.
	a := New(Config{Seed: 3, SampleRate: 0.5})
	b := New(Config{Seed: 3, SampleRate: 0.5})
	for i := 0; i < 100; i++ {
		a.StartRequest("x", 0)
	}
	b.SetSampleRate(0)
	for i := 0; i < 100; i++ {
		if b.StartRequest("x", 0) != nil {
			t.Fatal("rate 0 sampled a request")
		}
	}
	b.SetSampleRate(0.5)
	for i := 0; i < 100; i++ {
		if (a.StartRequest("x", 0) != nil) != (b.StartRequest("x", 0) != nil) {
			t.Fatalf("streams diverged at draw %d after rate change", i)
		}
	}
}

func TestReservoirKeepsSlowestRequests(t *testing.T) {
	tr := New(Config{SampleRate: 1, Reservoir: 3})
	for _, rt := range []des.Time{10, 30, 20, 50, 9, 40, 15} {
		endToEnd(tr, 100, rt, true)
	}
	slow := tr.Slowest()
	if len(slow) != 3 {
		t.Fatalf("reservoir holds %d trees, want 3", len(slow))
	}
	want := []des.Time{50, 40, 30}
	for i, sp := range slow {
		if sp.RT() != want[i] {
			t.Fatalf("slowest[%d].RT = %v, want %v", i, sp.RT(), want[i])
		}
	}
}

func TestSpanPoolRecyclesTrees(t *testing.T) {
	tr := New(Config{SampleRate: 1, Reservoir: -1}) // keep nothing
	root := tr.StartRequest("a", 0)
	child := root.StartChild(1)
	child.AddSeg(SegCPU, 1, 2)
	tr.EndRequest(root, 3, true)

	// Both spans must come back from the pool, fully reset.
	again := tr.StartRequest("b", 10)
	kid := again.StartChild(11)
	if again != root && again != child {
		t.Fatal("root span not recycled")
	}
	if kid != root && kid != child {
		t.Fatal("child span not recycled")
	}
	if len(kid.Segs) != 0 || len(kid.Children) != 0 || kid.Outcome != OutcomeOpen {
		t.Fatalf("recycled span not reset: %+v", kid)
	}
	if kid.Admit >= 0 {
		t.Fatal("recycled span claims prior admission")
	}
}

func TestAbandonedQueueWaitIsBooked(t *testing.T) {
	// A request dropped before thread-pool admission spent its server life
	// in the accept queue; the decomposition must say so.
	tr := New(Config{SampleRate: 1})
	sp := tr.StartRequest("browse", 0)
	sp.EnterServer("web1", 1)
	tr.EndRequest(sp, 6, false)
	if sp.Outcome != OutcomeFailed {
		t.Fatalf("outcome = %v", sp.Outcome)
	}
	var queued des.Time
	for _, seg := range sp.Segs {
		if seg.Kind == SegQueue {
			queued += seg.End - seg.Start
		}
	}
	if queued != 5 {
		t.Fatalf("booked queue wait = %v, want 5", queued)
	}
}

func TestSegmentsClampedToSpanEnd(t *testing.T) {
	// Dwell is booked to its full scheduled length at entry; a kill mid-
	// dwell must not leave the segment claiming time past the span's end.
	tr := New(Config{SampleRate: 1})
	sp := tr.StartRequest("browse", 0)
	sp.EnterServer("web1", 0)
	sp.Admitted(0)
	sp.AddSeg(SegDwell, 1, 10)
	tr.EndRequest(sp, 4, false)
	for _, seg := range sp.Segs {
		if seg.End > sp.End || seg.Start > seg.End {
			t.Fatalf("segment %+v overshoots span end %v", seg, sp.End)
		}
	}
}

func TestBlameTableWindowsAndClasses(t *testing.T) {
	tr := New(Config{SampleRate: 1, BlameWindow: 10 * des.Second})
	// 40 requests ending in window [0,10), 10 in [10,20).
	for i := 0; i < 40; i++ {
		endToEnd(tr, 0, des.Time(1+i)/10, true)
	}
	for i := 0; i < 10; i++ {
		endToEnd(tr, 11, des.Time(1+i)/10, true)
	}
	rows := tr.BlameTable()
	if len(rows) == 0 {
		t.Fatal("empty table")
	}
	wins := map[des.Time][]BlameRow{}
	for _, r := range rows {
		wins[r.Window] = append(wins[r.Window], r)
	}
	if len(wins) != 2 {
		t.Fatalf("windows = %v, want 0 and 10", len(wins))
	}
	classes := map[string]bool{}
	for _, r := range wins[0] {
		classes[r.Class] = true
		if r.Class == "mean" && r.Requests != 40 {
			t.Fatalf("window 0 mean class has %d requests", r.Requests)
		}
		// Every synthetic request visited the DB tier's disk.
		if r.Comp[TierDB][SegDisk] <= 0 {
			t.Fatalf("DB disk time missing from %+v", r)
		}
	}
	for _, want := range []string{"mean", "p50", "p95", "p99"} {
		if !classes[want] {
			t.Fatalf("window 0 missing class %q (have %v)", want, classes)
		}
	}
	if _, ok := BlameSummary(rows, "mean", 0, 20*des.Second); !ok {
		t.Fatal("summary empty")
	}
	sum, _ := BlameSummary(rows, "mean", 0, 20*des.Second)
	if sum.Requests != 50 {
		t.Fatalf("summary population = %d, want 50", sum.Requests)
	}
}

func TestChromeTraceSchema(t *testing.T) {
	tr := New(Config{SampleRate: 1, Reservoir: 4})
	endToEnd(tr, 5, 9, true)
	audit := []AuditEvent{{Time: 7, Kind: AuditThresholdTrigger, Tier: "tomcat", Cause: "cpu=0.93 > 0.90 for 3 checks"}}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Slowest(), audit); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events")
	}
	spans, segs, instants := 0, 0, 0
	for _, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing %q: %v", key, ev)
			}
		}
		switch ev["ph"] {
		case "X":
			if ev["cat"] == "span" {
				spans++
				if _, ok := ev["args"].(map[string]any)["outcome"]; !ok {
					t.Fatalf("span without outcome arg: %v", ev)
				}
			} else {
				segs++
			}
			if d, ok := ev["dur"].(float64); ok && d < 0 {
				t.Fatalf("negative duration: %v", ev)
			}
		case "i":
			instants++
			if ev["s"] != "g" {
				t.Fatalf("instant not global scope: %v", ev)
			}
			if ev["cat"] != "audit" {
				t.Fatalf("instant not audit: %v", ev)
			}
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	if spans != 2 { // root + DB child
		t.Fatalf("span events = %d, want 2", spans)
	}
	if segs == 0 || instants != 1 {
		t.Fatalf("segs=%d instants=%d", segs, instants)
	}
}

func TestWaterfallRendersTree(t *testing.T) {
	tr := New(Config{SampleRate: 1, Reservoir: 1})
	endToEnd(tr, 0, 9, true)
	var buf bytes.Buffer
	if err := WriteWaterfall(&buf, tr.Slowest()[0]); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"browse", "rt=9000.0ms", "web1", "mysql1", "C", "D", "wait"} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
	if err := WriteWaterfall(&buf, nil); err != nil {
		t.Fatal("nil root must be a no-op")
	}
}

func TestBlameAndAuditCSV(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	endToEnd(tr, 0, 9, true)
	var buf bytes.Buffer
	if err := WriteBlameCSV(&buf, "conscale", tr.BlameTable()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "mode,window_s,class,requests,sheds,rt_ms,tier,component,ms,share" {
		t.Fatalf("header: %s", lines[0])
	}
	if len(lines) < 2 || !strings.HasPrefix(lines[1], "conscale,") {
		t.Fatalf("no data rows:\n%s", buf.String())
	}

	buf.Reset()
	events := []AuditEvent{{Time: 1, Kind: AuditSCTEstimate, Tier: "mysql",
		Cause: "estimator refresh, again", Qlower: 10, Qupper: 20, Value: 400}}
	if err := WriteAuditCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time_s,time_hms,kind,tier,cause,detail,qlower,qupper,value" {
		t.Fatalf("header: %s", lines[0])
	}
	if strings.Count(lines[1], ",") != 8 {
		t.Fatalf("cause comma not escaped: %s", lines[1])
	}
	if !strings.HasPrefix(lines[1], "1.000,00:01.000,") {
		t.Fatalf("sim-time columns: %s", lines[1])
	}
}

func TestFormatSimTime(t *testing.T) {
	cases := []struct {
		in   des.Time
		want string
	}{
		{0, "00:00.000"},
		{1, "00:01.000"},
		{61.5, "01:01.500"},
		{245.678, "04:05.678"},
		{-3.25, "-00:03.250"},
		{7200.001, "120:00.001"},
	}
	for _, c := range cases {
		if got := FormatSimTime(c.in); got != c.want {
			t.Errorf("FormatSimTime(%v) = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestAuditRecordingAndToggle(t *testing.T) {
	a := NewAudit()
	a.Record(AuditEvent{Time: 1, Kind: AuditScaleOutLaunch, Tier: "tomcat", Cause: "x"})
	a.SetEnabled(false)
	a.Record(AuditEvent{Time: 2, Kind: AuditScaleIn, Tier: "tomcat", Cause: "y"})
	a.SetEnabled(true)
	a.Record(AuditEvent{Time: 3, Kind: AuditScaleOutReady, Tier: "tomcat", Cause: "x"})
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (disabled window skipped)", a.Len())
	}
	evs := a.Events()
	if len(evs) != 2 || evs[0].Time != 1 || evs[1].Time != 3 {
		t.Fatalf("events = %+v", evs)
	}
	var nilAudit *Audit
	nilAudit.Record(AuditEvent{}) // must not panic
	if nilAudit.Len() != 0 || nilAudit.Events() != nil || nilAudit.Enabled() {
		t.Fatal("nil audit misbehaves")
	}
}

func TestTierOfAndSegKinds(t *testing.T) {
	cases := map[string]TierID{
		"web1": TierWeb, "tomcat12": TierApp, "memcached1": TierCache,
		"mysql3": TierDB, "": TierClient, "zebra": TierClient,
	}
	for name, want := range cases {
		if got := TierOf(name); got != want {
			t.Fatalf("TierOf(%q) = %v, want %v", name, got, want)
		}
	}
	waits := 0
	for k := SegKind(0); k < NumSegKinds; k++ {
		if k.String() == "seg?" {
			t.Fatalf("kind %d unnamed", k)
		}
		if k.IsWait() {
			waits++
		}
	}
	if waits != 6 { // queue, pool, cpu-wait, disk-wait, net, shed
		t.Fatalf("wait kinds = %d", waits)
	}
}

func TestTracerStatsAndOutcomes(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	endToEnd(tr, 0, 9, true)
	endToEnd(tr, 10, 9, false)
	started, sampled, completed, failed := tr.Stats()
	if started != 2 || sampled != 2 || completed != 1 || failed != 1 {
		t.Fatalf("stats = %d/%d/%d/%d", started, sampled, completed, failed)
	}
	tr.SetEnabled(false)
	if tr.StartRequest("x", 20) != nil {
		t.Fatal("disabled tracer sampled")
	}
	if s, _, _, _ := tr.Stats(); s != 2 {
		t.Fatal("disabled offers counted")
	}
}
