package trace

import (
	"strconv"
	"sync"
	"testing"

	"conscale/internal/des"
	"conscale/internal/mgmt"
)

func TestRegisterMgmtKeysAndValidation(t *testing.T) {
	tr := New(Config{SampleRate: 0.25})
	store := mgmt.NewStore()
	tr.RegisterMgmt(store)

	for _, key := range []string{"trace.enabled", "trace.sample", "trace.started",
		"trace.sampled", "audit.enabled", "audit.events"} {
		if _, err := store.Get(key); err != nil {
			t.Fatalf("GET %s: %v", key, err)
		}
	}
	if v, _ := store.Get("trace.sample"); v != "0.25" {
		t.Fatalf("trace.sample = %q", v)
	}
	if err := store.Set("trace.sample", "1.5"); err == nil {
		t.Fatal("out-of-range sample rate accepted")
	}
	if err := store.Set("trace.sample", "bogus"); err == nil {
		t.Fatal("non-numeric sample rate accepted")
	}
	if err := store.Set("trace.started", "7"); err == nil {
		t.Fatal("read-only counter writable")
	}
	if err := store.Set("trace.enabled", "false"); err != nil {
		t.Fatal(err)
	}
	if tr.Enabled() {
		t.Fatal("SET trace.enabled false did not stick")
	}
	if err := store.Set("audit.enabled", "false"); err != nil {
		t.Fatal(err)
	}
	if tr.Audit().Enabled() {
		t.Fatal("SET audit.enabled false did not stick")
	}

	// Nil receivers register nothing and must not panic.
	var nilTracer *Tracer
	nilTracer.RegisterMgmt(store)
	tr.RegisterMgmt(nil)
}

func TestMgmtAgentConcurrentWithTracing(t *testing.T) {
	// The live-toggle contract: Agent connection goroutines flip and poll
	// the tracer while the simulation goroutine traces. Run under -race
	// this pins the atomics discipline of the mgmt surface.
	tr := New(Config{Seed: 5, SampleRate: 0.5, Reservoir: 4})
	store := mgmt.NewStore()
	tr.RegisterMgmt(store)
	agent, err := mgmt.NewAgent("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	const requests = 3000
	done := make(chan struct{})
	go func() { // the "simulation" goroutine
		defer close(done)
		for i := 0; i < requests; i++ {
			now := des.Time(i)
			sp := tr.StartRequest("browse", now)
			sp.EnterServer("web1", now)
			sp.Admitted(now)
			sp.AddProc(SegCPUWait, SegCPU, now, 0.5, now+1)
			tr.EndRequest(sp, now+1, true)
			tr.Audit().Record(AuditEvent{Time: now, Kind: AuditSCTEstimate,
				Tier: "mysql", Cause: "estimator refresh"})
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := mgmt.Dial(agent.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < 100; i++ {
				switch g % 2 {
				case 0: // toggler
					if err := cl.Set("trace.enabled", strconv.FormatBool(i%2 == 0)); err != nil {
						t.Error(err)
						return
					}
					if err := cl.Set("trace.sample", []string{"0.1", "0.9"}[i%2]); err != nil {
						t.Error(err)
						return
					}
				case 1: // poller
					for _, key := range []string{"trace.started", "trace.sampled", "audit.events", "trace.enabled"} {
						if _, err := cl.Get(key); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	<-done

	tr.SetEnabled(true)
	tr.SetSampleRate(1)
	if sp := tr.StartRequest("browse", requests); sp == nil {
		t.Fatal("tracer unusable after concurrent toggling")
	} else {
		tr.EndRequest(sp, requests+1, true)
	}
	if started, sampled, _, _ := tr.Stats(); started == 0 || sampled == 0 {
		t.Fatal("no requests traced during the concurrent phase")
	}
	if tr.Audit().Len() != requests {
		t.Fatalf("audit recorded %d of %d events", tr.Audit().Len(), requests)
	}
}
